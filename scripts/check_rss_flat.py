#!/usr/bin/env python3
"""Assert the peak-RSS relationship between two rss-gate runs.

The CI memory gate runs `bench/perf_sweep --rss-points N --rss-trials T`
twice with the grid held fixed and the trial count 10x'd, then checks
that the streaming result path's memory ceiling stayed flat:

    check_rss_flat.py base.log scaled.log --max-ratio 1.3

A second invocation contrasts the legacy materialized path at the same
size, which must NOT be flat relative to streaming:

    check_rss_flat.py stream.log materialize.log --min-ratio 3.0

Each log must contain a peak-RSS figure in one of two forms:

    Maximum resident set size (kbytes): 17204      (GNU time -v)
    rss-gate: ... peak_rss_mb=16.8                 (the gate itself)

Both come from getrusage(RUSAGE_SELF).ru_maxrss, so they are
interchangeable; the self-reported line keeps the gate working on
runners without GNU time installed.
"""

import argparse
import re
import sys

TIME_V_RE = re.compile(r"Maximum resident set size \(kbytes\):\s*(\d+)")
SELF_RE = re.compile(r"peak_rss_mb=([0-9]+(?:\.[0-9]+)?)")


def peak_rss_mb(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    m = TIME_V_RE.search(text)
    if m:
        return int(m.group(1)) / 1024.0
    m = SELF_RE.search(text)
    if m:
        return float(m.group(1))
    print(f"check_rss_flat: {path}: no peak-RSS figure found "
          "(expected GNU time -v output or an rss-gate line)",
          file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(
        description="compare peak RSS across two rss-gate logs")
    parser.add_argument("base", help="baseline run log")
    parser.add_argument("scaled", help="scaled-up run log")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="fail if scaled/base exceeds this")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail if scaled/base is below this")
    args = parser.parse_args()
    if args.max_ratio is None and args.min_ratio is None:
        parser.error("give at least one of --max-ratio / --min-ratio")

    base = peak_rss_mb(args.base)
    scaled = peak_rss_mb(args.scaled)
    if base <= 0:
        print(f"check_rss_flat: {args.base}: non-positive peak RSS",
              file=sys.stderr)
        sys.exit(1)
    ratio = scaled / base
    print(f"check_rss_flat: base={base:.1f} MiB scaled={scaled:.1f} MiB "
          f"ratio={ratio:.2f}")

    ok = True
    if args.max_ratio is not None and ratio > args.max_ratio:
        print(f"check_rss_flat: ratio {ratio:.2f} exceeds "
              f"--max-ratio {args.max_ratio} — the memory ceiling is "
              "no longer flat", file=sys.stderr)
        ok = False
    if args.min_ratio is not None and ratio < args.min_ratio:
        print(f"check_rss_flat: ratio {ratio:.2f} is below "
              f"--min-ratio {args.min_ratio} — the contrast run should "
              "use strictly more memory", file=sys.stderr)
        ok = False
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
