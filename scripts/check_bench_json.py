#!/usr/bin/env python3
"""Validate BENCH_*.json perf reports emitted by bench/perf_kernel and
bench/perf_sweep (via the src/exp JSON reporter).

Fails (exit 1) on malformed JSON, an empty sweep, missing/empty metric
summaries, or non-finite values — so the CI perf-smoke job catches a
silently broken benchmark even though it never gates on absolute speed.

Usage:
    check_bench_json.py [--require METRIC]... [--min-ratio M:F]... FILE...

Every --require METRIC must appear in at least one point of every FILE,
with a finite mean and count >= 1.

Every --min-ratio METRIC:FLOOR is a coarse perf-regression guard: the
metric must appear in at least one point of every FILE, and every point
that reports it must have mean >= FLOOR. Floors are committed well below
locally measured values so shared-runner noise never trips them; a trip
means the speedup mechanism itself regressed.
"""

import argparse
import json
import math
import sys

SUMMARY_KEYS = ("count", "mean", "stddev", "min", "max", "p50", "p90",
                "p99")


def fail(path, msg):
    print(f"check_bench_json: {path}: {msg}", file=sys.stderr)
    return False


def check_summary(path, metric, summary):
    for key in SUMMARY_KEYS:
        if key not in summary:
            return fail(path, f"metric '{metric}' missing '{key}'")
        value = summary[key]
        if value is None or not isinstance(value, (int, float)):
            return fail(
                path, f"metric '{metric}' has non-numeric '{key}': "
                f"{value!r} (NaN/Inf serialize to null)")
        if not math.isfinite(value):
            return fail(path, f"metric '{metric}' has non-finite '{key}'")
    if summary["count"] < 1:
        return fail(path, f"metric '{metric}' has count < 1")
    return True


def parse_min_ratio(spec):
    metric, sep, floor = spec.rpartition(":")
    if not sep or not metric:
        raise argparse.ArgumentTypeError(
            f"--min-ratio wants METRIC:FLOOR, got {spec!r}")
    try:
        return metric, float(floor)
    except ValueError as e:
        raise argparse.ArgumentTypeError(
            f"--min-ratio floor not a number: {spec!r}") from e


def check_file(path, required, min_ratios):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or malformed JSON: {e}")

    if not isinstance(doc, dict) or not doc.get("scenario"):
        return fail(path, "missing 'scenario'")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        return fail(path, "empty or missing 'points'")

    seen = set()
    ok = True
    for i, point in enumerate(points):
        metrics = point.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            ok = fail(path, f"point {i} has no metrics")
            continue
        for name, summary in metrics.items():
            seen.add(name)
            ok = check_summary(path, name, summary) and ok
            for metric, floor in min_ratios:
                if name != metric:
                    continue
                mean = summary.get("mean")
                if isinstance(mean, (int, float)) and mean < floor:
                    ok = fail(
                        path, f"point {i}: '{metric}' mean {mean:.3f} "
                        f"below committed floor {floor}")

    for metric in required:
        if metric not in seen:
            ok = fail(path, f"required metric '{metric}' absent")
    for metric, _ in min_ratios:
        if metric not in seen:
            ok = fail(path, f"--min-ratio metric '{metric}' absent")
    if ok:
        print(f"check_bench_json: {path}: OK "
              f"({doc['scenario']}, {len(points)} points, "
              f"{len(seen)} metrics)")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--require", action="append", default=[],
                        metavar="METRIC",
                        help="metric that must be present in every file")
    parser.add_argument("--min-ratio", action="append", default=[],
                        metavar="METRIC:FLOOR", type=parse_min_ratio,
                        help="regression floor: every point reporting "
                             "METRIC must have mean >= FLOOR")
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args()

    ok = True
    for path in args.files:
        ok = check_file(path, args.require, args.min_ratio) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
