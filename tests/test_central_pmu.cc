/**
 * @file
 * Tests for the central PMU's guardband / throttle orchestration on a
 * full chip: throttle-on-PHI, release-on-settle, level upgrades,
 * secure-mode, P-state transitions at turbo.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;

ChipConfig
noJitter(ChipConfig cfg)
{
    cfg.pmu.vr.commandJitter = 0;
    return cfg;
}

TEST(CentralPmu, PhiAssertsThrottleUntilRampSettles)
{
    Simulation sim(noJitter(pinnedCannonLake(1.4)));
    Chip &chip = sim.chip();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    p.loop(InstClass::k512Heavy, 600, 100);
    thr.setProgram(std::move(p));
    thr.start();
    // Immediately after the PHI starts the core must be throttled.
    sim.eq().runUntil(fromNanoseconds(100));
    EXPECT_TRUE(chip.core(0).throttle().throttled());
    // After the ramp (~10 us at these parameters) it must be released.
    sim.eq().runUntil(fromMicroseconds(20));
    EXPECT_FALSE(chip.core(0).throttle().throttled());
    EXPECT_EQ(chip.pmu().grantedLevel(0), 4);
}

TEST(CentralPmu, VoltageRisesByGuardband)
{
    Simulation sim(noJitter(pinnedCannonLake(1.4)));
    Chip &chip = sim.chip();
    double v0 = chip.vccVolts();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    p.loop(InstClass::k256Heavy, 600, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.eq().runUntil(fromMicroseconds(30));
    double expected =
        chip.pmu().guardbandModel().gbVolts(3, chip.freqGhz());
    EXPECT_NEAR(chip.vccVolts() - v0, expected, 1e-4);
}

TEST(CentralPmu, NonPhiNeverThrottles)
{
    Simulation sim(noJitter(pinnedCannonLake(1.4)));
    Chip &chip = sim.chip();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    p.loop(InstClass::kScalar64, 1000, 100);
    p.loop(InstClass::k128Light, 1000, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_EQ(chip.core(0).throttle().assertCount(), 0u);
    EXPECT_EQ(chip.pmu().voltageRequests(), 0u);
}

TEST(CentralPmu, SecondPhiAtSameLevelNotThrottled)
{
    Simulation sim(noJitter(pinnedCannonLake(1.4)));
    Chip &chip = sim.chip();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    p.loop(InstClass::k256Heavy, 400, 100);
    p.idle(fromMicroseconds(50)); // well inside the 650 us reset-time
    p.loop(InstClass::k256Heavy, 400, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    // Only the first loop requested a transition.
    EXPECT_EQ(chip.pmu().voltageRequests(), 1u);
}

TEST(CentralPmu, HigherLevelPhiUpgradesGuardband)
{
    Simulation sim(noJitter(pinnedCannonLake(1.4)));
    Chip &chip = sim.chip();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    p.loop(InstClass::k128Heavy, 400, 100);
    p.idle(fromMicroseconds(50));
    p.loop(InstClass::k512Heavy, 400, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_EQ(chip.pmu().voltageRequests(), 2u);
    EXPECT_EQ(chip.pmu().grantedLevel(0), 4);
}

TEST(CentralPmu, LowerLevelAfterHigherNotThrottled)
{
    Simulation sim(noJitter(pinnedCannonLake(1.4)));
    Chip &chip = sim.chip();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    p.loop(InstClass::k512Heavy, 400, 100);
    p.idle(fromMicroseconds(50));
    p.loop(InstClass::k128Heavy, 400, 100); // voltage already covers it
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_EQ(chip.pmu().voltageRequests(), 1u);
}

TEST(CentralPmu, SecureModeNeverThrottlesNorTransitions)
{
    ChipConfig cfg = noJitter(pinnedCannonLake(1.4));
    cfg.pmu.secureMode = true;
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    double v0 = chip.vccVolts();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    p.loop(InstClass::k512Heavy, 600, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_EQ(chip.core(0).throttle().assertCount(), 0u);
    EXPECT_EQ(chip.pmu().voltageRequests(), 0u);
    EXPECT_DOUBLE_EQ(chip.vccVolts(), v0);
    // Secure-mode voltage already includes the worst-case guardband.
    double base = chip.pmu().guardbandModel().baseVolts(chip.freqGhz());
    EXPECT_GT(v0, base);
}

TEST(CentralPmu, TurboAvx2TriggersPstateReduction)
{
    // Fig. 7b shape: at max turbo, starting AVX2 forces a frequency
    // reduction within tens of microseconds (current limit, not heat).
    ChipConfig cfg = noJitter(presets::cannonLake());
    cfg.pmu.governor.policy = GovernorPolicy::kPerformance;
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    double f0 = chip.freqGhz();
    EXPECT_NEAR(f0, 3.2, 1e-9);
    // Two cores run AVX2-heavy.
    for (int c = 0; c < 2; ++c) {
        Program p;
        p.loop(InstClass::k256Heavy, 200000, 100);
        chip.core(c).thread(0).setProgram(std::move(p));
        chip.core(c).thread(0).start();
    }
    sim.eq().runUntil(fromMicroseconds(200));
    EXPECT_LT(chip.freqGhz(), f0);
    EXPECT_LE(chip.freqGhz(), cfg.pmu.pstate.licenseMaxGhz[1] + 1e-9);
    EXPECT_GE(chip.pmu().pstateTransitions(), 1u);
    // Current must now be within the mobile Iccmax (29 A).
    EXPECT_LE(chip.iccAmps(), cfg.pmu.limits.iccMaxAmps + 0.5);
}

TEST(CentralPmu, FixedLowFrequencyNeverChangesFrequency)
{
    // Fig. 6 conclusion 2: at low pinned frequency only the voltage
    // moves, never the clock.
    Simulation sim(noJitter(pinnedCannonLake(1.4)));
    Chip &chip = sim.chip();
    HwThread &thr = chip.core(0).thread(0);
    Program p;
    for (int i = 0; i < 5; ++i) {
        p.loop(InstClass::k512Heavy, 400, 100);
        p.idle(fromMicroseconds(100));
    }
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_DOUBLE_EQ(chip.freqGhz(), 1.4);
    EXPECT_EQ(chip.pmu().pstateTransitions(), 0u);
}

TEST(CentralPmu, GovernorWriteTakesEffectAfterLatency)
{
    ChipConfig cfg = noJitter(pinnedCannonLake(1.4));
    cfg.pmu.governor.applyLatency = fromMicroseconds(100);
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    chip.pmu().writeGovernor(GovernorPolicy::kUserspace, 2.0);
    sim.eq().runUntil(fromMicroseconds(50));
    EXPECT_DOUBLE_EQ(chip.freqGhz(), 1.4);
    // Upclock also waits for the (non-license) upclock delay + P-state.
    sim.eq().runUntil(fromMilliseconds(5));
    EXPECT_DOUBLE_EQ(chip.freqGhz(), 2.0);
}

} // namespace
} // namespace ich
