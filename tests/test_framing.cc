/**
 * @file
 * Tests for the framed reliable-transfer layer (§6.3 strategies).
 */

#include <gtest/gtest.h>

#include "channels/framing.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

BitVec
pseudoRandomBits(std::size_t n, unsigned seed)
{
    BitVec bits;
    unsigned x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    return bits;
}

ChannelConfig
channelConfig(double irq_rate = 0.0)
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 71;
    cfg.noise.interruptRatePerSec = irq_rate;
    return cfg;
}

TEST(Framing, CodeRates)
{
    IccThreadCovert ch(channelConfig());
    FramingConfig cfg;
    cfg.fec = FecScheme::kNone;
    EXPECT_DOUBLE_EQ(FramedLink(ch, cfg).codeRate(), 1.0);
    cfg.fec = FecScheme::kRepetition3;
    EXPECT_DOUBLE_EQ(FramedLink(ch, cfg).codeRate(), 3.0);
    cfg.fec = FecScheme::kHamming74;
    EXPECT_DOUBLE_EQ(FramedLink(ch, cfg).codeRate(), 1.75);
}

TEST(Framing, NoiselessTransferExact)
{
    IccThreadCovert ch(channelConfig());
    FramingConfig cfg;
    cfg.fec = FecScheme::kNone;
    cfg.frameBits = 32;
    FramedLink link(ch, cfg);
    BitVec payload = pseudoRandomBits(100, 5); // 4 frames, last partial
    FramedResult res = link.transfer(payload);
    EXPECT_TRUE(res.success);
    EXPECT_EQ(res.payload, payload);
    EXPECT_EQ(res.framesDelivered, 4);
    EXPECT_EQ(res.framesSent, 4); // no retries needed
    EXPECT_GT(res.goodputBps, 1000.0);
}

TEST(Framing, RetriesRecoverUnderNoise)
{
    IccThreadCovert ch(channelConfig(6000.0));
    FramingConfig cfg;
    cfg.fec = FecScheme::kRepetition3;
    cfg.frameBits = 32;
    cfg.maxAttempts = 6;
    FramedLink link(ch, cfg);
    BitVec payload = pseudoRandomBits(96, 9);
    FramedResult res = link.transfer(payload);
    EXPECT_TRUE(res.success);
    EXPECT_EQ(res.payload, payload);
    EXPECT_GE(res.framesSent, res.framesDelivered);
}

TEST(Framing, GoodputBelowRawThroughput)
{
    IccThreadCovert ch(channelConfig());
    FramingConfig cfg;
    cfg.fec = FecScheme::kHamming74;
    FramedLink link(ch, cfg);
    FramedResult res = link.transfer(pseudoRandomBits(64, 3));
    EXPECT_TRUE(res.success);
    // Header + CRC + 7/4 code: goodput must be below the raw channel
    // rate but in the same order of magnitude.
    EXPECT_LT(res.goodputBps, ch.ratedThroughputBps());
    EXPECT_GT(res.goodputBps, ch.ratedThroughputBps() / 4.0);
}

TEST(Framing, FailureReportedWhenRetriesExhausted)
{
    // An absurdly hostile system: decode windows almost always hit.
    ChannelConfig ccfg = channelConfig(50000.0);
    ccfg.noise.contextSwitchRatePerSec = 20000.0;
    IccThreadCovert ch(ccfg);
    FramingConfig cfg;
    cfg.fec = FecScheme::kNone;
    cfg.maxAttempts = 1;
    FramedLink link(ch, cfg);
    FramedResult res = link.transfer(pseudoRandomBits(128, 7));
    EXPECT_FALSE(res.success);
    EXPECT_TRUE(res.payload.empty());
    EXPECT_GT(res.rawBerObserved, 0.0);
}

TEST(Framing, SchemeNames)
{
    EXPECT_STREQ(toString(FecScheme::kNone), "none");
    EXPECT_STREQ(toString(FecScheme::kHamming74), "hamming(7,4)");
}

} // namespace
} // namespace ich
