/**
 * @file
 * Tests for the SweepRunner: determinism from the base seed,
 * parallel-equals-serial equivalence, overrides, and error handling.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "channels/thread_channel.hh"
#include "chip/presets.hh"
#include "common/rng.hh"
#include "exp/report.hh"
#include "exp/runner.hh"

namespace ich
{
namespace exp
{
namespace
{

/** Cheap stochastic trial: metrics depend only on (point, seed). */
ScenarioSpec
rngSpec()
{
    ScenarioSpec spec;
    spec.name = "rng-grid";
    spec.description = "pure-Rng grid for runner tests";
    spec.axes = {axis("mu", {0.0, 5.0, 9.0}), axis("sigma", {1.0, 3.0})};
    spec.trials = 4;
    spec.baseSeed = 123;
    spec.run = [](const TrialContext &ctx) {
        Rng rng(ctx.seed);
        double acc = 0.0;
        for (int i = 0; i < 100; ++i)
            acc += rng.normal(ctx.point.get("mu"),
                              ctx.point.get("sigma"));
        MetricMap m;
        m["sum"] = acc;
        m["first_uniform"] = Rng(ctx.seed).uniform();
        return m;
    };
    return spec;
}

TEST(Runner, ResolveJobs)
{
    EXPECT_EQ(resolveJobs(4), 4);
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_GE(resolveJobs(-3), 1);
}

TEST(Runner, ShapeAndSeedSchedule)
{
    RunnerOptions opts;
    opts.jobs = 1;
    SweepResult r = SweepRunner(opts).run(rngSpec());
    EXPECT_EQ(r.points.size(), 6u);
    EXPECT_EQ(r.trials.size(), 24u);
    EXPECT_EQ(r.aggregates.size(), 6u);
    for (std::size_t i = 0; i < r.trials.size(); ++i) {
        EXPECT_EQ(r.trials[i].pointIndex, i / 4);
        EXPECT_EQ(r.trials[i].trial, static_cast<int>(i % 4));
        EXPECT_EQ(r.trials[i].seed, deriveTrialSeed(123, i));
    }
    for (const auto &pa : r.aggregates)
        EXPECT_EQ(pa.metrics.at("sum").count, 4u);
}

TEST(Runner, SameSeedSameAggregates)
{
    RunnerOptions opts;
    opts.jobs = 2;
    SweepResult a = SweepRunner(opts).run(rngSpec());
    SweepResult b = SweepRunner(opts).run(rngSpec());
    EXPECT_EQ(jsonReport(a), jsonReport(b));
}

TEST(Runner, DifferentSeedDiffers)
{
    RunnerOptions opts;
    opts.jobs = 1;
    opts.seed = 999;
    SweepResult a = SweepRunner(RunnerOptions{}).run(rngSpec());
    SweepResult b = SweepRunner(opts).run(rngSpec());
    EXPECT_EQ(b.baseSeed, 999u);
    EXPECT_NE(jsonReport(a), jsonReport(b));
}

TEST(Runner, ParallelEqualsSerialByteIdentical)
{
    RunnerOptions serial;
    serial.jobs = 1;
    RunnerOptions parallel;
    parallel.jobs = 4;
    SweepResult a = SweepRunner(serial).run(rngSpec());
    SweepResult b = SweepRunner(parallel).run(rngSpec());
    EXPECT_EQ(a.jobs, 1);
    EXPECT_EQ(b.jobs, 4);
    EXPECT_EQ(jsonReport(a), jsonReport(b));
    EXPECT_EQ(csvReport(a), csvReport(b));
    EXPECT_EQ(textReport(a), textReport(b));
}

// End-to-end: a real covert-channel trial grid must also aggregate
// identically on 1 and 4 workers (the Simulation is seed-reproducible).
TEST(Runner, ParallelEqualsSerialWithRealSimulation)
{
    ScenarioSpec spec;
    spec.name = "sim-grid";
    spec.axes = {axis("irq_per_s", {0.0, 4000.0})};
    spec.trials = 2;
    spec.baseSeed = 7;
    spec.run = [](const TrialContext &ctx) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = ctx.seed;
        cfg.noise.interruptRatePerSec = ctx.point.get("irq_per_s");
        IccThreadCovert ch(cfg);
        BitVec bits;
        for (int i = 0; i < 16; ++i)
            bits.push_back(i & 1);
        TransmitResult r = ch.transmit(bits);
        MetricMap m;
        m["ber"] = r.ber;
        m["throughput_bps"] = r.throughputBps;
        return m;
    };

    RunnerOptions serial;
    serial.jobs = 1;
    RunnerOptions parallel;
    parallel.jobs = 4;
    SweepResult a = SweepRunner(serial).run(spec);
    SweepResult b = SweepRunner(parallel).run(spec);
    EXPECT_EQ(jsonReport(a), jsonReport(b));
}

TEST(Runner, TrialsAndSeedOverride)
{
    RunnerOptions opts;
    opts.jobs = 1;
    opts.trials = 1;
    opts.seed = 55;
    SweepResult r = SweepRunner(opts).run(rngSpec());
    EXPECT_EQ(r.trialsPerPoint, 1);
    EXPECT_EQ(r.baseSeed, 55u);
    EXPECT_EQ(r.trials.size(), 6u);
}

TEST(Runner, ProgressReachesTotal)
{
    std::atomic<std::size_t> last{0};
    RunnerOptions opts;
    opts.jobs = 3;
    opts.progress = [&](std::size_t done, std::size_t total) {
        EXPECT_LE(done, total);
        last = done;
    };
    SweepRunner(opts).run(rngSpec());
    EXPECT_EQ(last.load(), 24u);
}

TEST(Runner, TrialExceptionPropagates)
{
    ScenarioSpec spec;
    spec.name = "boom";
    spec.axes = {axis("x", {1.0, 2.0, 3.0})};
    spec.run = [](const TrialContext &ctx) -> MetricMap {
        if (ctx.point.get("x") == 2.0)
            throw std::runtime_error("kaboom");
        return {};
    };
    RunnerOptions opts;
    opts.jobs = 2;
    try {
        SweepRunner(opts).run(spec);
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("kaboom"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("x=2"), std::string::npos);
    }
}

TEST(Runner, NonStdExceptionDoesNotTerminate)
{
    ScenarioSpec spec;
    spec.name = "weird-throw";
    spec.run = [](const TrialContext &) -> MetricMap { throw 42; };
    RunnerOptions opts;
    opts.jobs = 2;
    try {
        SweepRunner(opts).run(spec);
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unknown exception"),
                  std::string::npos);
    }
}

TEST(Runner, RejectsMissingTrialFnAndBadTrials)
{
    ScenarioSpec spec;
    spec.name = "no-fn";
    EXPECT_THROW(SweepRunner().run(spec), std::invalid_argument);

    ScenarioSpec ok = rngSpec();
    RunnerOptions opts;
    opts.trials = 0;
    EXPECT_THROW(SweepRunner(opts).run(ok), std::invalid_argument);
}

} // namespace
} // namespace exp
} // namespace ich
