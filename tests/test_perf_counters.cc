/**
 * @file
 * Tests for performance-counter accrual, including the Fig. 11 invariant:
 * throttled iterations show ~75% undelivered IDQ slots, unthrottled ~0.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;
using test::quietChip;

TEST(PerfCounters, NormalizationHelper)
{
    EXPECT_DOUBLE_EQ(PerfCounters::normalizedNotDelivered(300, 100),
                     0.75);
    EXPECT_DOUBLE_EQ(PerfCounters::normalizedNotDelivered(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(PerfCounters::normalizedNotDelivered(10, 0), 0.0);
}

TEST(PerfCounters, ClkUnhaltedMatchesLoopCycles)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::k256Heavy, 100, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    // 100 iterations * 101 cycles.
    EXPECT_NEAR(static_cast<double>(thr.counters().clkUnhalted()),
                10100.0, 20.0);
}

TEST(PerfCounters, InstRetiredCountsBodyPlusBranch)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::k256Heavy, 100, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_NEAR(static_cast<double>(thr.counters().instRetired()),
                100.0 * 101.0, 5.0);
}

TEST(PerfCounters, IdleAccruesNothing)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.idle(fromMicroseconds(100));
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_EQ(thr.counters().clkUnhalted(), 0u);
}

TEST(PerfCounters, UnthrottledLoopHasNoUndeliveredSlots)
{
    Simulation sim(quietChip(1.0)); // secure mode: never throttled
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::k512Heavy, 200, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_EQ(thr.counters().idqUopsNotDelivered(), 0u);
}

// Fig. 11 / Key Conclusion 5: during the throttled portion of a PHI loop
// the IDQ delivers nothing in ~75% of cycles.
TEST(PerfCounters, ThrottledWindowShows75PctUndelivered)
{
    ChipConfig cfg = pinnedCannonLake(1.0);
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg);
    HwThread &thr = sim.chip().core(0).thread(0);
    // Short 512b loop: almost entirely inside the throttling period.
    Program p;
    p.loop(InstClass::k512Heavy, 10, 100);
    thr.setProgram(std::move(p));

    thr.start();
    sim.run();
    auto clk = thr.counters().clkUnhalted();
    auto idq = thr.counters().idqUopsNotDelivered();
    double norm = PerfCounters::normalizedNotDelivered(idq, clk);
    EXPECT_GT(norm, 0.70);
    EXPECT_LE(norm, 0.76);
}

TEST(PerfCounters, MixedLoopUndeliveredBetweenBounds)
{
    ChipConfig cfg = pinnedCannonLake(1.0);
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg);
    HwThread &thr = sim.chip().core(0).thread(0);
    // Long loop: throttled prefix + unthrottled tail.
    Program p;
    p.loop(InstClass::k512Heavy, 600, 100); // ~60 us @1GHz unthrottled
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    double norm = PerfCounters::normalizedNotDelivered(
        thr.counters().idqUopsNotDelivered(),
        thr.counters().clkUnhalted());
    EXPECT_GT(norm, 0.02);
    EXPECT_LT(norm, 0.70);
}

TEST(PerfCounters, ResetClearsCounters)
{
    PerfCounters pc;
    pc.accrue(100.0, 50.0, 10.0);
    EXPECT_EQ(pc.clkUnhalted(), 100u);
    pc.reset();
    EXPECT_EQ(pc.clkUnhalted(), 0u);
    EXPECT_EQ(pc.instRetired(), 0u);
    EXPECT_EQ(pc.idqUopsNotDelivered(), 0u);
}

} // namespace
} // namespace ich
