/**
 * @file
 * Tests for TP calibration / nearest-mean decoding (Fig. 3 ranges,
 * Fig. 13 distributions).
 */

#include <gtest/gtest.h>

#include "channels/calibration.hh"

namespace ich
{
namespace
{

Calibration
fourLevelCal()
{
    std::vector<int> symbols;
    std::vector<double> tps;
    double means[4] = {12.0, 10.5, 9.0, 6.0};
    for (int s = 0; s < 4; ++s) {
        for (int r = 0; r < 5; ++r) {
            symbols.push_back(s);
            tps.push_back(means[s] + 0.05 * r - 0.1);
        }
    }
    return Calibration::fit(symbols, tps);
}

TEST(Calibration, FitComputesPerSymbolMeans)
{
    Calibration cal = fourLevelCal();
    EXPECT_NEAR(cal.meanUs(0), 12.0, 0.1);
    EXPECT_NEAR(cal.meanUs(3), 6.0, 0.1);
    EXPECT_GT(cal.stddevUs(0), 0.0);
}

TEST(Calibration, DecodeNearestMean)
{
    Calibration cal = fourLevelCal();
    EXPECT_EQ(cal.decode(12.1), 0);
    EXPECT_EQ(cal.decode(10.4), 1);
    EXPECT_EQ(cal.decode(8.8), 2);
    EXPECT_EQ(cal.decode(5.0), 3);
}

TEST(Calibration, DecodeAtMidpointConsistent)
{
    Calibration cal = fourLevelCal();
    // Just either side of the 9.0/6.0 midpoint (7.5).
    EXPECT_EQ(cal.decode(7.6), 2);
    EXPECT_EQ(cal.decode(7.4), 3);
}

TEST(Calibration, MinSeparation)
{
    Calibration cal = fourLevelCal();
    EXPECT_NEAR(cal.minSeparationUs(), 1.5, 0.15);
}

TEST(Calibration, FitRejectsBadInput)
{
    EXPECT_THROW(Calibration::fit({}, {}), std::invalid_argument);
    EXPECT_THROW(Calibration::fit({0}, {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(Calibration::fit({7}, {1.0}), std::invalid_argument);
    // All four symbols must be present.
    EXPECT_THROW(Calibration::fit({0, 1, 2}, {1.0, 2.0, 3.0}),
                 std::invalid_argument);
}

} // namespace
} // namespace ich
