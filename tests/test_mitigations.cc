/**
 * @file
 * Mitigation tests mirroring Table 1 (paper §7): which mitigation kills
 * which channel, and the secure-mode power overhead.
 */

#include <gtest/gtest.h>

#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"
#include "mitigations/mitigations.hh"

namespace ich
{
namespace
{

ChannelConfig
withChip(ChipConfig chip)
{
    ChannelConfig cfg;
    cfg.chip = std::move(chip);
    cfg.seed = 37;
    return cfg;
}

constexpr double kDeadUs = 0.25;  // below measurement jitter
constexpr double kAliveUs = 0.5;

TEST(Mitigations, ConfigTransformsSetFlags)
{
    ChipConfig base = presets::cannonLake();
    EXPECT_TRUE(mitigations::withPerCoreVr(base).pmu.perCoreVr);
    EXPECT_EQ(mitigations::withPerCoreVr(base).pmu.vr.kind,
              VrKind::kLowDropout);
    EXPECT_TRUE(mitigations::withImprovedThrottling(base)
                    .core.throttle.perThread);
    EXPECT_TRUE(mitigations::withSecureMode(base).pmu.secureMode);
}

// Table 1 row 1: per-core VR — partial for thread/SMT, full for cores.
TEST(Mitigations, PerCoreVrKillsCoresPartialElsewhere)
{
    ChipConfig m = mitigations::withPerCoreVr(presets::cannonLake());
    IccCoresCovert cores(withChip(m));
    EXPECT_LT(cores.calibration().minSeparationUs(), 0.1);

    // Thread channel: levels compressed by ~2 orders of magnitude
    // (LDO ramps in <0.5 us) but not exactly zero — "partial".
    IccThreadCovert thread_base(withChip(presets::cannonLake()));
    IccThreadCovert thread_ldo(withChip(m));
    double base_sep = thread_base.calibration().minSeparationUs();
    double ldo_sep = thread_ldo.calibration().minSeparationUs();
    EXPECT_LT(ldo_sep, base_sep / 10.0);
}

// Table 1 row 2: improved throttling — kills SMT only.
TEST(Mitigations, ImprovedThrottlingKillsSmtOnly)
{
    ChipConfig m =
        mitigations::withImprovedThrottling(presets::cannonLake());
    IccSMTcovert smt(withChip(m));
    EXPECT_LT(smt.calibration().minSeparationUs(), kDeadUs);

    IccThreadCovert thread(withChip(m));
    EXPECT_GT(thread.calibration().minSeparationUs(), kAliveUs);

    IccCoresCovert cores(withChip(m));
    EXPECT_GT(cores.calibration().minSeparationUs(), kAliveUs);
}

// Table 1 row 3: secure mode — kills all three.
TEST(Mitigations, SecureModeKillsAllThree)
{
    ChipConfig m = mitigations::withSecureMode(presets::cannonLake());
    IccThreadCovert thread(withChip(m));
    EXPECT_LT(thread.calibration().minSeparationUs(), kDeadUs);
    IccSMTcovert smt(withChip(m));
    EXPECT_LT(smt.calibration().minSeparationUs(), kDeadUs);
    IccCoresCovert cores(withChip(m));
    EXPECT_LT(cores.calibration().minSeparationUs(), kDeadUs);
}

// §7: secure mode costs up to ~4% (AVX2 systems) / ~11% (AVX-512).
TEST(Mitigations, SecureModeOverheadInPaperRange)
{
    ChipConfig cfg = presets::cannonLake();
    double avx2 = mitigations::secureModePowerOverheadPct(cfg, 2.2, 3);
    double avx512 = mitigations::secureModePowerOverheadPct(cfg, 2.2, 4);
    EXPECT_GT(avx2, 2.0);
    EXPECT_LT(avx2, 6.0);
    EXPECT_GT(avx512, avx2);
    EXPECT_LT(avx512, 12.0);
}

TEST(Mitigations, SecureModeBurnsMorePower)
{
    // The guardband is pinned high, so idle rail voltage (and power)
    // exceeds the baseline chip's.
    Simulation base(presets::cannonLake());
    Simulation secure(mitigations::withSecureMode(presets::cannonLake()));
    EXPECT_GT(secure.chip().vccVolts(), base.chip().vccVolts());
    EXPECT_GT(secure.chip().powerWatts(), base.chip().powerWatts());
}

TEST(Mitigations, OverheadDescriptions)
{
    EXPECT_NE(mitigations::overheadDescription("per-core-vr")
                  .find("area"),
              std::string::npos);
    EXPECT_NE(mitigations::overheadDescription("secure-mode")
                  .find("power"),
              std::string::npos);
}

} // namespace
} // namespace ich
