/**
 * @file
 * Tests for the shared harness CLI: flag parsing, validation, and the
 * mapping onto runner options.
 */

#include <gtest/gtest.h>

#include "exp/cli.hh"

namespace ich
{
namespace exp
{
namespace
{

CliOptions
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "harness");
    return parseCli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, Defaults)
{
    CliOptions cli = parse({});
    EXPECT_EQ(cli.jobs, 0);
    EXPECT_FALSE(cli.seed.has_value());
    EXPECT_FALSE(cli.trials.has_value());
    EXPECT_FALSE(cli.json);
    EXPECT_FALSE(cli.csv);
    EXPECT_EQ(cli.outDir, "results");
    EXPECT_FALSE(cli.list);
    EXPECT_FALSE(cli.help);
    EXPECT_TRUE(cli.scenarios.empty());
}

TEST(Cli, AllFlags)
{
    CliOptions cli = parse({"--jobs", "8", "--seed", "42", "--trials",
                            "16", "--json", "--csv", "--list", "--help",
                            "sweep-a", "sweep-b"});
    EXPECT_EQ(cli.jobs, 8);
    EXPECT_EQ(cli.seed, std::uint64_t{42});
    EXPECT_EQ(cli.trials, 16);
    EXPECT_TRUE(cli.json);
    EXPECT_TRUE(cli.csv);
    EXPECT_TRUE(cli.list);
    EXPECT_TRUE(cli.help);
    EXPECT_EQ(cli.scenarios,
              (std::vector<std::string>{"sweep-a", "sweep-b"}));
}

TEST(Cli, ShortFlags)
{
    CliOptions cli = parse({"-j", "3"});
    EXPECT_EQ(cli.jobs, 3);
    EXPECT_TRUE(parse({"-h"}).help);
}

TEST(Cli, OutImpliesMachineReports)
{
    CliOptions cli = parse({"--out", "run7"});
    EXPECT_EQ(cli.outDir, "run7");
    EXPECT_TRUE(cli.json);
    EXPECT_TRUE(cli.csv);

    // Explicit format selection is not widened by --out, in either
    // flag order.
    CliOptions only_json = parse({"--json", "--out", "run8"});
    EXPECT_TRUE(only_json.json);
    EXPECT_FALSE(only_json.csv);
    CliOptions only_json_after = parse({"--out", "run8", "--json"});
    EXPECT_TRUE(only_json_after.json);
    EXPECT_FALSE(only_json_after.csv);
}

TEST(Cli, Rejections)
{
    EXPECT_THROW(parse({"--jobs"}), std::invalid_argument);
    EXPECT_THROW(parse({"--jobs", "zero"}), std::invalid_argument);
    EXPECT_THROW(parse({"--jobs", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"--jobs", "12x"}), std::invalid_argument);
    EXPECT_THROW(parse({"--seed", "-4"}), std::invalid_argument);
    EXPECT_THROW(parse({"--trials", "0"}), std::invalid_argument);
    EXPECT_THROW(parse({"--out", ""}), std::invalid_argument);
    EXPECT_THROW(parse({"--frobnicate"}), std::invalid_argument);
}

TEST(Cli, ToRunnerOptions)
{
    RunnerOptions opts =
        toRunnerOptions(parse({"--jobs", "5", "--seed", "9"}));
    EXPECT_EQ(opts.jobs, 5);
    EXPECT_EQ(opts.seed, std::uint64_t{9});
    EXPECT_FALSE(opts.trials.has_value());
}

TEST(Cli, WantScenario)
{
    CliOptions all = parse({});
    EXPECT_TRUE(wantScenario(all, "anything"));

    CliOptions some = parse({"a1", "a3"});
    EXPECT_TRUE(wantScenario(some, "a1"));
    EXPECT_FALSE(wantScenario(some, "a2"));
}

TEST(Cli, UsageMentionsEveryFlag)
{
    std::string usage = cliUsage("prog");
    for (const char *flag : {"--jobs", "--seed", "--trials", "--json",
                             "--csv", "--out", "--list", "--help"})
        EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

} // namespace
} // namespace exp
} // namespace ich
