/**
 * @file
 * Tests for the SVID serialization bus — the root cause of
 * Multi-Throttling-Cores (paper §4.3.1).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "pdn/svid.hh"

namespace ich
{
namespace
{

VrConfig
testConfig()
{
    VrConfig cfg;
    cfg.slewVoltsPerSecond = 1000.0;
    cfg.commandLatency = fromMicroseconds(1.0);
    cfg.settleTime = fromMicroseconds(0.5);
    return cfg;
}

TEST(Svid, SingleTransactionCompletes)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    Svid svid(eq, vr);
    bool done = false;
    svid.submit(0.760, true, [&] { done = true; });
    EXPECT_TRUE(svid.busy());
    EXPECT_EQ(svid.upTransitionsInFlight(), 1);
    eq.runToCompletion();
    EXPECT_TRUE(done);
    EXPECT_FALSE(svid.busy());
    EXPECT_EQ(svid.upTransitionsInFlight(), 0);
    EXPECT_EQ(svid.completedTransactions(), 1u);
}

TEST(Svid, TransactionsAreSerialized)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    Svid svid(eq, vr);
    std::vector<std::pair<int, Time>> done;
    svid.submit(0.760, true, [&] { done.push_back({1, eq.now()}); });
    svid.submit(0.770, true, [&] { done.push_back({2, eq.now()}); });
    EXPECT_EQ(svid.upTransitionsInFlight(), 2);
    eq.runToCompletion();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].first, 1);
    EXPECT_EQ(done[1].first, 2);
    // First: 1+10+0.5 = 11.5 us. Second starts only after the first:
    // +1+10+0.5 = 23 us total.
    EXPECT_EQ(done[0].second, fromMicroseconds(11.5));
    EXPECT_EQ(done[1].second, fromMicroseconds(23.0));
    EXPECT_DOUBLE_EQ(vr.volts(), 0.770);
}

TEST(Svid, SecondRequesterWaitsForFirst_CrossCoreExacerbation)
{
    // The Multi-Throttling-Cores shape: a transaction submitted shortly
    // after another completes later than it would alone.
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    Svid svid(eq, vr);
    Time second_done = 0;
    svid.submit(0.758, true); // "sender", 8 mV
    eq.runUntil(fromNanoseconds(200)); // a few hundred cycles later
    svid.submit(0.762, true, [&] { second_done = eq.now(); });
    eq.runToCompletion();
    // Alone from 0.750->0.762 would take 1+12+0.5 = 13.5 us. Queued
    // behind the sender's 9.5 us transaction it finishes much later.
    EXPECT_GT(second_done, fromMicroseconds(14.0));
}

TEST(Svid, DownTransitionsDoNotCountAsUp)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.770);
    Svid svid(eq, vr);
    svid.submit(0.750, false);
    EXPECT_EQ(svid.upTransitionsInFlight(), 0);
    EXPECT_TRUE(svid.busy());
    eq.runToCompletion();
    EXPECT_DOUBLE_EQ(vr.volts(), 0.750);
}

TEST(Svid, MixedQueueCountsOnlyUps)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    Svid svid(eq, vr);
    svid.submit(0.760, true);
    svid.submit(0.755, false);
    svid.submit(0.765, true);
    EXPECT_EQ(svid.upTransitionsInFlight(), 2);
    eq.runToCompletion();
    EXPECT_EQ(svid.upTransitionsInFlight(), 0);
    EXPECT_EQ(svid.completedTransactions(), 3u);
}

TEST(Svid, CallbackMaySubmitMore)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    Svid svid(eq, vr);
    bool chained = false;
    svid.submit(0.760, true, [&] {
        svid.submit(0.770, true, [&] { chained = true; });
    });
    eq.runToCompletion();
    EXPECT_TRUE(chained);
    EXPECT_DOUBLE_EQ(vr.volts(), 0.770);
}

} // namespace
} // namespace ich
