/**
 * @file
 * Tests for the 2-bit symbol ↔ instruction-class mapping (Figure 3).
 */

#include <gtest/gtest.h>

#include "channels/levels.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

TEST(Levels, PackUnpackRoundTrip)
{
    for (int b1 = 0; b1 <= 1; ++b1) {
        for (int b0 = 0; b0 <= 1; ++b0) {
            int s = packSymbol(b1, b0);
            auto bits = unpackSymbol(s);
            EXPECT_EQ(bits[0], b1);
            EXPECT_EQ(bits[1], b0);
        }
    }
}

TEST(Levels, SymbolValuesCoverRange)
{
    EXPECT_EQ(packSymbol(0, 0), 0);
    EXPECT_EQ(packSymbol(0, 1), 1);
    EXPECT_EQ(packSymbol(1, 0), 2);
    EXPECT_EQ(packSymbol(1, 1), 3);
}

TEST(Levels, Avx512MapMatchesFigure3)
{
    SymbolMap map = symbolMapFor(presets::cannonLake());
    EXPECT_EQ(map.symbolClasses[0], InstClass::k128Heavy); // 00 → L4
    EXPECT_EQ(map.symbolClasses[1], InstClass::k256Light); // 01 → L3
    EXPECT_EQ(map.symbolClasses[2], InstClass::k256Heavy); // 10 → L2
    EXPECT_EQ(map.symbolClasses[3], InstClass::k512Heavy); // 11 → L1
    EXPECT_EQ(map.threadProbe, InstClass::k512Heavy);
    EXPECT_EQ(map.smtProbe, InstClass::kScalar64);
    EXPECT_EQ(map.coresProbe, InstClass::k128Heavy);
}

TEST(Levels, Avx2MapUsesDistinctLevels)
{
    for (const auto &cfg :
         {presets::coffeeLake(), presets::haswell()}) {
        SymbolMap map = symbolMapFor(cfg);
        // Four distinct guardband levels are required for 2 bits.
        std::set<int> levels;
        for (auto cls : map.symbolClasses)
            levels.insert(traits(cls).guardbandLevel);
        EXPECT_EQ(levels.size(), 4u);
        // No 512b classes on AVX2-only parts.
        for (auto cls : map.symbolClasses)
            EXPECT_LT(traits(cls).widthBits, 512);
        EXPECT_LT(traits(map.threadProbe).widthBits, 512);
    }
}

TEST(Levels, SymbolLevelsStrictlyIncrease)
{
    for (const auto &cfg :
         {presets::cannonLake(), presets::coffeeLake()}) {
        SymbolMap map = symbolMapFor(cfg);
        for (int s = 1; s < kNumSymbols; ++s)
            EXPECT_GT(traits(map.symbolClasses[s]).guardbandLevel,
                      traits(map.symbolClasses[s - 1]).guardbandLevel);
    }
}

} // namespace
} // namespace ich
