/**
 * @file
 * IccThreadCovert end-to-end tests (paper §4.1, §6.2).
 */

#include <gtest/gtest.h>

#include "channels/thread_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

ChannelConfig
baseConfig(ChipConfig chip)
{
    ChannelConfig cfg;
    cfg.chip = std::move(chip);
    cfg.seed = 7;
    return cfg;
}

TEST(ThreadChannel, NoiselessRoundTripIsErrorFree)
{
    IccThreadCovert ch(baseConfig(presets::cannonLake()));
    BitVec bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.receivedBits, bits);
    EXPECT_EQ(res.bitErrors, 0u);
    EXPECT_DOUBLE_EQ(res.ber, 0.0);
}

TEST(ThreadChannel, ThroughputMatchesPaperScale)
{
    IccThreadCovert ch(baseConfig(presets::cannonLake()));
    // §6.2: ~2.9 Kbps (2 bits per <40 us TX + 650 us reset).
    EXPECT_GT(ch.ratedThroughputBps(), 2500.0);
    EXPECT_LT(ch.ratedThroughputBps(), 3100.0);
    TransmitResult res = ch.transmit({1, 0, 1, 0});
    EXPECT_NEAR(res.throughputBps, ch.ratedThroughputBps(), 1.0);
}

TEST(ThreadChannel, CalibrationLevelsOrderedAndSeparated)
{
    IccThreadCovert ch(baseConfig(presets::cannonLake()));
    const Calibration &cal = ch.calibration();
    // Higher symbol = higher sender intensity = *shorter* probe TP
    // (voltage already ramped further).
    for (int s = 1; s < kNumSymbols; ++s)
        EXPECT_LT(cal.meanUs(s), cal.meanUs(s - 1));
    // Decodable separation (>2K TSC cycles ≈ 0.9 us at 2.2 GHz).
    EXPECT_GT(cal.minSeparationUs(), 0.8);
}

TEST(ThreadChannel, AllSymbolsSurviveLongPayload)
{
    IccThreadCovert ch(baseConfig(presets::cannonLake()));
    BitVec bits;
    for (int i = 0; i < 64; ++i)
        bits.push_back((i * 7 + 3) % 3 == 0 ? 1 : 0);
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.bitErrors, 0u);
    EXPECT_EQ(res.tpUs.size(), 32u);
}

TEST(ThreadChannel, WorksOnAvx2OnlyCoffeeLake)
{
    IccThreadCovert ch(baseConfig(presets::coffeeLake()));
    BitVec bits = {1, 1, 0, 1, 0, 0, 1, 0};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(ThreadChannel, WorksOnHaswellFivr)
{
    // Haswell's FIVR shrinks the TPs but the levels stay separable.
    IccThreadCovert ch(baseConfig(presets::haswell()));
    BitVec bits = {0, 1, 1, 0, 1, 0};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(ThreadChannel, OddBitCountPadsSilently)
{
    IccThreadCovert ch(baseConfig(presets::cannonLake()));
    BitVec bits = {1, 0, 1};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.receivedBits.size(), 3u);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(ThreadChannel, DeterministicAcrossIdenticalRuns)
{
    ChannelConfig cfg = baseConfig(presets::cannonLake());
    IccThreadCovert a(cfg), b(cfg);
    BitVec bits = {1, 0, 0, 1, 1, 1};
    auto ra = a.transmit(bits);
    auto rb = b.transmit(bits);
    EXPECT_EQ(ra.tpUs, rb.tpUs);
}

} // namespace
} // namespace ich
