/**
 * @file
 * Tests for the software governor model (paper §5.7).
 */

#include <gtest/gtest.h>

#include "pmu/governor.hh"

namespace ich
{
namespace
{

TEST(Governor, PerformanceRequestsMaxTurbo)
{
    GovernorConfig cfg;
    cfg.policy = GovernorPolicy::kPerformance;
    Governor gov(cfg);
    EXPECT_DOUBLE_EQ(gov.requestGhz(0.8, 3.2), 3.2);
}

TEST(Governor, PowersaveRequestsMin)
{
    GovernorConfig cfg;
    cfg.policy = GovernorPolicy::kPowersave;
    Governor gov(cfg);
    EXPECT_DOUBLE_EQ(gov.requestGhz(0.8, 3.2), 0.8);
}

TEST(Governor, UserspacePinsFrequency)
{
    GovernorConfig cfg;
    cfg.policy = GovernorPolicy::kUserspace;
    cfg.userspaceGhz = 1.4;
    Governor gov(cfg);
    EXPECT_DOUBLE_EQ(gov.requestGhz(0.8, 3.2), 1.4);
}

TEST(Governor, SettersUpdateState)
{
    Governor gov(GovernorConfig{});
    gov.setPolicy(GovernorPolicy::kPowersave);
    EXPECT_EQ(gov.policy(), GovernorPolicy::kPowersave);
    gov.setPolicy(GovernorPolicy::kUserspace);
    gov.setUserspaceGhz(2.0);
    EXPECT_DOUBLE_EQ(gov.requestGhz(0.8, 3.2), 2.0);
}

} // namespace
} // namespace ich
