/**
 * @file
 * DFScovert baseline tests (paper §6.2: ~20 b/s governor-modulation
 * channel — the slowest of the compared channels).
 */

#include <gtest/gtest.h>

#include "baselines/dfscovert.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

DfsCovertConfig
baseConfig()
{
    DfsCovertConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 29;
    return cfg;
}

TEST(DfsCovert, RoundTripErrorFree)
{
    DfsCovert dc(baseConfig());
    BitVec bits = {1, 0, 0, 1, 1};
    TransmitResult res = dc.transmit(bits);
    EXPECT_EQ(res.receivedBits, bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(DfsCovert, ThroughputNearPaperValue)
{
    // Fig. 12b: DFScovert ≈ 20 b/s.
    DfsCovert dc(baseConfig());
    EXPECT_GT(dc.ratedThroughputBps(), 15.0);
    EXPECT_LT(dc.ratedThroughputBps(), 25.0);
}

TEST(DfsCovert, GovernorLatencyDominatesBitTime)
{
    DfsCovertConfig cfg = baseConfig();
    // A bit cannot be faster than the governor apply path.
    EXPECT_GT(cfg.bitTime, cfg.governorApplyLatency);
}

TEST(DfsCovert, LongRunsDecodeCorrectly)
{
    DfsCovert dc(baseConfig());
    BitVec bits = {0, 0, 1, 1, 1, 0};
    EXPECT_EQ(dc.transmit(bits).bitErrors, 0u);
}

} // namespace
} // namespace ich
