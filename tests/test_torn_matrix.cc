/**
 * @file
 * The torn-write matrix: truncate a recorded chunk file and a recorded
 * column store at EVERY byte offset and assert the recovery contract at
 * each one — readers recover exactly the whole-frame (whole-point)
 * prefix, the torn flag is set iff leftover bytes follow it, and
 * adoption (openAppend / ColumnStoreWriter::beginSweep) continues the
 * file to a result bit-identical to the never-torn run.
 *
 * This subsumes the old single-offset torn-tail tests: a kill can tear
 * a write at any byte, so the contract is only meaningful if it holds
 * at all of them.
 *
 * Also pins the corruption/tear distinction the torture campaign
 * (bench/torture_crashpoints) forced: a corrupted frame *length* must
 * not masquerade as a torn tail when intact frames follow it, and the
 * frame CRC covers the header, so kind/length bit-flips are loud.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/colstore.hh"
#include "exp/resume.hh"
#include "exp/scenario.hh"
#include "state/chunkio.hh"

namespace ich
{
namespace
{

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string &name)
        : path(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string file(const std::string &name) const
    {
        return (path / name).string();
    }
};

std::uint64_t
bitsOf(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof b);
    return b;
}

void
copyTruncated(const std::string &src, const std::string &dst,
              std::uint64_t len)
{
    fs::copy_file(src, dst, fs::copy_options::overwrite_existing);
    fs::resize_file(dst, len);
}

void
patchU32(const std::string &path, std::uint64_t offset, std::uint32_t v)
{
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>(v >> (8 * i));
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(bytes, 4);
}

void
flipBitAt(const std::string &path, std::uint64_t offset, int bit)
{
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ (1 << bit));
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

// ----------------------------------------------------- chunk-io matrix

TEST(TornMatrix, ChunkFileEveryTruncationOffset)
{
    TempDir dir("torn_matrix_chunkio");
    std::string master = dir.file("master.bin");

    const std::vector<state::Buffer> bodies = {
        {1, 2, 3, 4, 5},
        {},
        {9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
    };
    {
        state::ChunkFileWriter w;
        w.create(master, /*durable=*/false);
        for (std::size_t i = 0; i < bodies.size(); ++i)
            w.append(static_cast<std::uint32_t>(10 + i), bodies[i]);
        w.close();
    }

    // Ground truth: the byte offset just past each frame.
    std::vector<std::uint64_t> frame_ends;
    {
        state::ChunkFileScanner scan(master);
        state::ChunkFrame frame;
        while (scan.next(frame))
            frame_ends.push_back(scan.validBytes());
        ASSERT_FALSE(scan.tornTail());
        ASSERT_EQ(frame_ends.size(), bodies.size());
    }
    const std::uint64_t full = fs::file_size(master);
    ASSERT_EQ(frame_ends.back(), full);

    const state::Buffer repair_body = {0xEE, 0xFF};
    for (std::uint64_t cut = 0; cut < full; ++cut) {
        SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                     std::to_string(full) + " bytes");
        std::string path = dir.file("cut.bin");
        copyTruncated(master, path, cut);

        std::size_t whole = 0;
        while (whole < frame_ends.size() && frame_ends[whole] <= cut)
            ++whole;
        std::uint64_t prefix = whole == 0 ? 0 : frame_ends[whole - 1];

        {
            state::ChunkFileScanner scan(path);
            state::ChunkFrame frame;
            std::size_t decoded = 0;
            while (scan.next(frame)) {
                ASSERT_LT(decoded, bodies.size());
                EXPECT_EQ(frame.kind, 10 + decoded);
                EXPECT_EQ(frame.body, bodies[decoded]);
                ++decoded;
            }
            EXPECT_EQ(decoded, whole);
            EXPECT_EQ(scan.tornTail(), cut != prefix);
            EXPECT_EQ(scan.validBytes(), prefix);
        }

        // Adoption: truncate the tear, append a frame, rescan — the
        // prefix plus the new frame, nothing else.
        {
            state::ChunkFileWriter w;
            w.openAppend(path, prefix, false);
            w.append(77, repair_body);
            w.close();
        }
        state::ChunkFileScanner scan(path);
        state::ChunkFrame frame;
        for (std::size_t i = 0; i < whole; ++i) {
            ASSERT_TRUE(scan.next(frame));
            EXPECT_EQ(frame.kind, 10 + i);
            EXPECT_EQ(frame.body, bodies[i]);
        }
        ASSERT_TRUE(scan.next(frame));
        EXPECT_EQ(frame.kind, 77u);
        EXPECT_EQ(frame.body, repair_body);
        EXPECT_FALSE(scan.next(frame));
        EXPECT_FALSE(scan.tornTail());
    }
}

// A tear is only legitimate at the very end of a file: a corrupted
// length field that "tears" mid-file with intact frames after it must
// be loud, or those frames would be dropped silently.
TEST(TornMatrix, CorruptLengthSwallowingFramesIsLoudNotTorn)
{
    TempDir dir("torn_matrix_len");
    std::string path = dir.file("frames.bin");
    {
        state::ChunkFileWriter w;
        w.create(path, false);
        w.append(1, {1, 2, 3});
        w.append(2, {4, 5, 6});
        w.append(3, {7, 8, 9});
        w.close();
    }
    // Frame 0's bodyLen claims more bytes than the file holds: the
    // apparent tear is followed by the two intact frames.
    patchU32(path, 8, 0x00FFFFFFu);

    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    EXPECT_THROW(scan.next(frame), state::ArchiveError);
}

// The frame CRC covers the header: a single flipped bit in the kind or
// length field fails the checksum instead of redefining the frame.
TEST(TornMatrix, HeaderBitFlipsFailTheFrameCrc)
{
    TempDir dir("torn_matrix_hdr");
    std::string master = dir.file("master.bin");
    {
        state::ChunkFileWriter w;
        w.create(master, false);
        w.append(2, {1, 2, 3, 4});
        // A second frame keeps the flipped length in-bounds; a flip on
        // a lone final frame reads as a torn tail instead, which
        // adoption truncates and recomputes — equally safe.
        w.append(5, {6, 7, 8, 9});
        w.close();
    }
    // kind low bit (2 -> 3: the colstore data -> footer confusion) and
    // a length bit small enough to keep the frame in-bounds.
    struct Flip {
        std::uint64_t offset;
        int bit;
    };
    for (Flip flip : {Flip{4, 0}, Flip{8, 1}}) {
        SCOPED_TRACE("flip byte " + std::to_string(flip.offset) +
                     " bit " + std::to_string(flip.bit));
        std::string path = dir.file("flip.bin");
        fs::copy_file(master, path,
                      fs::copy_options::overwrite_existing);
        flipBitAt(path, flip.offset, flip.bit);

        state::ChunkFileScanner scan(path);
        state::ChunkFrame frame;
        EXPECT_THROW(scan.next(frame), state::ArchiveError);
    }
}

// ----------------------------------------------------- colstore matrix

exp::SweepMeta
storeMeta()
{
    exp::ScenarioSpec spec;
    spec.name = "torn-matrix-grid";
    spec.description = "torn-write matrix sweep";
    spec.axes = {exp::axis("x", {1.0, 2.0, 3.0})};
    exp::SweepMeta meta;
    meta.scenario = spec.name;
    meta.description = spec.description;
    meta.baseSeed = 7;
    meta.trialsPerPoint = 2;
    meta.points = exp::expandPoints(spec);
    meta.gridFp = exp::gridFingerprint(meta.points);
    return meta;
}

std::vector<exp::TrialRecord>
storeRecords(const exp::SweepMeta &meta, std::size_t idx)
{
    std::vector<exp::TrialRecord> recs;
    for (int t = 0; t < meta.trialsPerPoint; ++t) {
        exp::TrialRecord rec;
        rec.pointIndex = idx;
        rec.trial = t;
        rec.seed = exp::deriveTrialSeed(
            meta.baseSeed,
            idx * static_cast<std::size_t>(meta.trialsPerPoint) +
                static_cast<std::size_t>(t));
        rec.metrics["ber"] =
            (idx == 0 && t == 0) ? -0.0 : 0.25 * (idx + 1) + 0.01 * t;
        rec.metrics["tp"] = (idx == 1 && t == 1)
                                ? 3.0e-310
                                : 1e5 / (1.0 + idx + t);
        recs.push_back(std::move(rec));
    }
    return recs;
}

void
expectBitEqual(const std::vector<exp::TrialRecord> &a,
               const std::vector<exp::TrialRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pointIndex, b[i].pointIndex);
        EXPECT_EQ(a[i].trial, b[i].trial);
        EXPECT_EQ(a[i].seed, b[i].seed);
        ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
        auto ia = a[i].metrics.begin();
        auto ib = b[i].metrics.begin();
        for (; ia != a[i].metrics.end(); ++ia, ++ib) {
            EXPECT_EQ(ia->first, ib->first);
            EXPECT_EQ(bitsOf(ia->second), bitsOf(ib->second));
        }
    }
}

TEST(TornMatrix, ColumnStoreEveryTruncationOffset)
{
    TempDir dir("torn_matrix_colstore");
    std::string master = dir.file("master.colstore");
    exp::SweepMeta meta = storeMeta();

    {
        // Durable mode: one data frame per point, so every truncation
        // lands either between points or inside the last one.
        exp::ColumnStoreWriter::Options opts;
        opts.durable = true;
        exp::ColumnStoreWriter w(master, opts);
        w.beginSweep(meta);
        for (std::size_t idx = 0; idx < meta.numPoints(); ++idx) {
            auto recs = storeRecords(meta, idx);
            w.acceptPoint(idx, recs.data(), recs.size());
        }
        w.endSweep();
    }

    // Ground truth: the header frame's end and each data frame's end.
    std::uint64_t header_end = 0;
    std::vector<std::uint64_t> data_ends;
    {
        state::ChunkFileScanner scan(master);
        state::ChunkFrame frame;
        while (scan.next(frame)) {
            if (frame.kind == exp::kColChunkHeader)
                header_end = scan.validBytes();
            else if (frame.kind == exp::kColChunkData)
                data_ends.push_back(scan.validBytes());
        }
        ASSERT_GT(header_end, 0u);
        ASSERT_EQ(data_ends.size(), meta.numPoints());
    }
    const std::uint64_t full = fs::file_size(master);

    for (std::uint64_t cut = 0; cut < full; ++cut) {
        SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                     std::to_string(full) + " bytes");
        std::string path = dir.file("cut.colstore");
        copyTruncated(master, path, cut);

        if (cut < header_end) {
            // Not even a whole header: the reader must refuse loudly —
            // there is no sweep identity to trust.
            EXPECT_THROW(exp::ColumnStoreReader r(path),
                         state::ArchiveError);
            continue;
        }

        std::size_t whole = 0;
        while (whole < data_ends.size() && data_ends[whole] <= cut)
            ++whole;

        {
            exp::ColumnStoreReader r(path);
            EXPECT_TRUE(r.matches(meta));
            EXPECT_EQ(r.completedPoints(), whole);
            for (std::size_t idx = 0; idx < whole; ++idx)
                expectBitEqual(r.readPoint(idx),
                               storeRecords(meta, idx));
        }

        // Adoption is the resume path: beginSweep() truncates the tear,
        // the missing points are recomputed, and the result must be
        // bit-identical to the never-torn store.
        {
            exp::ColumnStoreWriter::Options opts;
            opts.durable = true;
            exp::ColumnStoreWriter w(path, opts);
            w.beginSweep(meta);
            EXPECT_EQ(w.adoptedPoints(), whole);
            for (std::size_t idx = whole; idx < meta.numPoints(); ++idx) {
                auto recs = storeRecords(meta, idx);
                w.acceptPoint(idx, recs.data(), recs.size());
            }
            w.endSweep();
        }
        exp::ColumnStoreReader full_reader(path);
        EXPECT_FALSE(full_reader.tornTail());
        EXPECT_TRUE(full_reader.cleanFooter());
        ASSERT_EQ(full_reader.completedPoints(), meta.numPoints());
        for (std::size_t idx = 0; idx < meta.numPoints(); ++idx)
            expectBitEqual(full_reader.readPoint(idx),
                           storeRecords(meta, idx));
    }
}

} // namespace
} // namespace ich
