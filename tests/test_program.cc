/**
 * @file
 * Tests for Program construction.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace ich
{
namespace
{

TEST(Program, BuildersAppendSteps)
{
    Program p;
    EXPECT_TRUE(p.empty());
    p.loop(InstClass::k256Heavy, 100)
        .waitUntilTsc(12345)
        .idle(fromMicroseconds(5))
        .mark(7)
        .call([] {});
    EXPECT_EQ(p.size(), 5u);
    EXPECT_TRUE(std::holds_alternative<LoopStep>(p.step(0)));
    EXPECT_TRUE(std::holds_alternative<WaitUntilTscStep>(p.step(1)));
    EXPECT_TRUE(std::holds_alternative<IdleStep>(p.step(2)));
    EXPECT_TRUE(std::holds_alternative<MarkStep>(p.step(3)));
    EXPECT_TRUE(std::holds_alternative<CallStep>(p.step(4)));
}

TEST(Program, LoopStepCarriesKernel)
{
    Program p;
    p.loop(InstClass::k512Heavy, 42, 7);
    const auto &step = std::get<LoopStep>(p.step(0));
    EXPECT_EQ(step.kernel.cls, InstClass::k512Heavy);
    EXPECT_EQ(step.kernel.iterations, 42u);
    EXPECT_EQ(step.kernel.unroll, 7);
    EXPECT_EQ(step.recordEveryIterations, 0u);
}

TEST(Program, ChunkedLoopCarriesRecordingInfo)
{
    Program p;
    p.loopChunked(InstClass::kScalar64, 1000, 100, /*tag=*/3, 20);
    const auto &step = std::get<LoopStep>(p.step(0));
    EXPECT_EQ(step.recordEveryIterations, 100u);
    EXPECT_EQ(step.tag, 3);
    EXPECT_EQ(step.kernel.unroll, 20);
}

TEST(Program, MarkCarriesTag)
{
    Program p;
    p.mark(99);
    EXPECT_EQ(std::get<MarkStep>(p.step(0)).tag, 99);
}

TEST(Program, OutOfRangeStepThrows)
{
    Program p;
    p.mark(1);
    EXPECT_THROW(p.step(5), std::out_of_range);
}

} // namespace
} // namespace ich
