/**
 * @file
 * Reset-time / hysteresis tests (paper §4.1.2): the guardband stays for
 * 650 µs after the last PHI, then decays to baseline; PHIs within the
 * window are not throttled again.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;

ChipConfig
cfg14()
{
    ChipConfig cfg = pinnedCannonLake(1.4);
    cfg.pmu.vr.commandJitter = 0;
    return cfg;
}

TEST(Hysteresis, GuardbandHeldWithinResetTime)
{
    Simulation sim(cfg14());
    Chip &chip = sim.chip();
    Program p;
    p.loop(InstClass::k512Heavy, 400, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.run(fromMilliseconds(5));
    // Kernel ends well before 650 us; level held at +600 us...
    EXPECT_EQ(chip.pmu().grantedLevel(0), 4);
}

TEST(Hysteresis, GuardbandDecaysAfterResetTime)
{
    Simulation sim(cfg14());
    Chip &chip = sim.chip();
    double v0 = chip.vccVolts();
    Program p;
    p.loop(InstClass::k512Heavy, 400, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    // Past kernel end (~40 us) + 650 us + down-ramp (~12 us).
    sim.eq().runUntil(fromMicroseconds(740));
    EXPECT_EQ(chip.pmu().grantedLevel(0), 0);
    EXPECT_NEAR(chip.vccVolts(), v0, 1e-4);
}

TEST(Hysteresis, RepeatedPhiWithinWindowKeepsLevel)
{
    Simulation sim(cfg14());
    Chip &chip = sim.chip();
    Program p;
    for (int i = 0; i < 4; ++i) {
        p.loop(InstClass::k512Heavy, 200, 100);
        p.idle(fromMicroseconds(400)); // < 650 us gaps
    }
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.run(fromMilliseconds(10));
    // Only the first loop should have requested a transition.
    EXPECT_EQ(chip.pmu().voltageRequests(), 1u);
}

TEST(Hysteresis, PhiAfterWindowThrottlesAgain)
{
    Simulation sim(cfg14());
    Chip &chip = sim.chip();
    Program p;
    p.loop(InstClass::k512Heavy, 200, 100);
    p.idle(fromMicroseconds(800)); // > reset-time
    p.loop(InstClass::k512Heavy, 200, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.run(fromMilliseconds(10));
    EXPECT_EQ(chip.pmu().voltageRequests(), 2u);
}

TEST(Hysteresis, LongKernelKeepsGuardbandAlive)
{
    // A PHI loop running longer than the reset-time must not decay
    // mid-execution (its activity keeps the level alive).
    Simulation sim(cfg14());
    Chip &chip = sim.chip();
    Program p;
    // ~2.9 ms at 1.4 GHz: 40000 iterations * 101 cycles.
    p.loop(InstClass::k512Heavy, 40000, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMilliseconds(2));
    EXPECT_EQ(chip.pmu().grantedLevel(0), 4);
}

TEST(Hysteresis, PerCoreDecayIndependent)
{
    Simulation sim(cfg14());
    Chip &chip = sim.chip();
    // Core 0 runs a PHI once; core 1 keeps running PHIs.
    Program p0;
    p0.loop(InstClass::k256Heavy, 200, 100);
    Program p1;
    for (int i = 0; i < 8; ++i) {
        p1.loop(InstClass::k256Heavy, 200, 100);
        p1.idle(fromMicroseconds(300));
    }
    chip.core(0).thread(0).setProgram(std::move(p0));
    chip.core(1).thread(0).setProgram(std::move(p1));
    chip.core(0).thread(0).start();
    chip.core(1).thread(0).start();
    sim.eq().runUntil(fromMilliseconds(1.5));
    EXPECT_EQ(chip.pmu().grantedLevel(0), 0); // decayed
    EXPECT_EQ(chip.pmu().grantedLevel(1), 3); // still held
}

} // namespace
} // namespace ich
