/**
 * @file
 * Tests for the deterministic RNG wrapper.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace ich
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalZeroStddevReturnsMean)
{
    Rng rng(7);
    EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, NormalAtLeastClamps)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i)
        EXPECT_GE(rng.normalAtLeast(0.0, 10.0, 1.0), 1.0);
}

TEST(Rng, ExponentialInterarrivalMeanApproximatesRate)
{
    Rng rng(11);
    double rate = 1000.0; // 1000/s => mean 1 ms
    double sum_us = 0.0;
    int n = 5000;
    for (int i = 0; i < n; ++i)
        sum_us += toMicroseconds(rng.exponentialInterarrival(rate));
    double mean_us = sum_us / n;
    EXPECT_NEAR(mean_us, 1000.0, 100.0);
}

TEST(Rng, ExponentialZeroRateNeverFires)
{
    Rng rng(11);
    EXPECT_EQ(rng.exponentialInterarrival(0.0), ~Time{0});
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(3);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(5);
    Rng b = a.fork();
    // The fork must not replay the parent's stream.
    Rng a2(5);
    a2.fork();
    double pa = a.uniform();
    double pb = b.uniform();
    EXPECT_NE(pa, pb);
    // Determinism: same construction yields same fork.
    EXPECT_DOUBLE_EQ(a2.uniform(), pa);
}

} // namespace
} // namespace ich
