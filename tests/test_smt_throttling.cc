/**
 * @file
 * Multi-Throttling-SMT tests (paper §4.2/§5.6): a PHI on one SMT thread
 * throttles its sibling; the sibling's slowdown window length depends on
 * the PHI's intensity; the improved-throttling mitigation removes the
 * cross-thread effect.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;

/**
 * Run a PHI of @p cls on T0 while T1 times a chunked scalar loop;
 * return the sibling's total excess latency (µs).
 */
double
siblingExcessUs(const ChipConfig &cfg, InstClass cls)
{
    Simulation sim(cfg);
    Chip &chip = sim.chip();

    Program tx;
    tx.idle(fromMicroseconds(20));
    tx.loop(cls, 400, 100);

    double iter_cycles =
        makeKernel(InstClass::kScalar64, 1, 20).cyclesPerIteration();
    double iter_us = iter_cycles * cyclePicos(1.4) * 1e-6;
    auto iters = static_cast<std::uint64_t>(300.0 / iter_us);
    Program rx;
    rx.loopChunked(InstClass::kScalar64, iters, 200, 0, 20);

    chip.core(0).thread(0).setProgram(std::move(tx));
    chip.core(0).thread(1).setProgram(std::move(rx));
    chip.core(0).thread(1).start();
    chip.core(0).thread(0).start();
    sim.run(fromMilliseconds(2));

    double nominal = 200 * iter_us * 1.001;
    double excess = 0.0;
    const auto &recs = chip.core(0).thread(1).records();
    for (std::size_t i = 1; i < recs.size(); ++i) {
        double chunk = toMicroseconds(recs[i].time - recs[i - 1].time);
        if (chunk > nominal)
            excess += chunk - nominal;
    }
    return excess;
}

ChipConfig
cfg14()
{
    ChipConfig cfg = pinnedCannonLake(1.4);
    cfg.pmu.vr.commandJitter = 0;
    return cfg;
}

TEST(SmtThrottling, SiblingThrottledByPhi)
{
    double excess = siblingExcessUs(cfg14(), InstClass::k512Heavy);
    EXPECT_GT(excess, 3.0); // multi-microsecond stall window
}

TEST(SmtThrottling, SiblingExcessScalesWithIntensity)
{
    double e128 = siblingExcessUs(cfg14(), InstClass::k128Heavy);
    double e256l = siblingExcessUs(cfg14(), InstClass::k256Light);
    double e256 = siblingExcessUs(cfg14(), InstClass::k256Heavy);
    double e512 = siblingExcessUs(cfg14(), InstClass::k512Heavy);
    EXPECT_LT(e128, e256l);
    EXPECT_LT(e256l, e256);
    EXPECT_LT(e256, e512);
}

TEST(SmtThrottling, ScalarSenderCausesNoExcess)
{
    double excess = siblingExcessUs(cfg14(), InstClass::kScalar64);
    EXPECT_NEAR(excess, 0.0, 0.5);
}

TEST(SmtThrottling, ImprovedThrottlingSparesSibling)
{
    ChipConfig cfg = cfg14();
    cfg.core.throttle.perThread = true; // §7 mitigation
    double excess = siblingExcessUs(cfg, InstClass::k512Heavy);
    EXPECT_NEAR(excess, 0.0, 0.5);
}

TEST(SmtThrottling, SecureModeSparesSibling)
{
    ChipConfig cfg = cfg14();
    cfg.pmu.secureMode = true;
    double excess = siblingExcessUs(cfg, InstClass::k512Heavy);
    EXPECT_NEAR(excess, 0.0, 0.5);
}

// The initiating thread itself still observes throttling under improved
// throttling (its own PHI uops are blocked) — this is why the mitigation
// does not kill IccThreadCovert (Table 1).
TEST(SmtThrottling, ImprovedThrottlingStillThrottlesInitiator)
{
    ChipConfig cfg = cfg14();
    cfg.core.throttle.perThread = true;
    double tp =
        test::throttlePeriodUs(cfg, InstClass::k512Heavy, 1.4);
    EXPECT_GT(tp, 1.0);
}

} // namespace
} // namespace ich
