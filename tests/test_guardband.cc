/**
 * @file
 * Tests for the guardband model (Equation 1 over the level table).
 */

#include <gtest/gtest.h>

#include "pmu/guardband.hh"

namespace ich
{
namespace
{

GuardbandModel
model()
{
    return GuardbandModel(LoadLine(1.9e-3), VfCurve{0.55, 0.10});
}

TEST(GuardbandModel, FiveLevels)
{
    EXPECT_EQ(model().numLevels(), 5);
}

TEST(GuardbandModel, LevelZeroIsFree)
{
    GuardbandModel gb = model();
    EXPECT_DOUBLE_EQ(gb.levelCdynNf(0), 0.0);
    EXPECT_DOUBLE_EQ(gb.gbVolts(0, 2.0), 0.0);
}

TEST(GuardbandModel, LevelsStrictlyIncreasing)
{
    GuardbandModel gb = model();
    for (int l = 1; l < gb.numLevels(); ++l) {
        EXPECT_GT(gb.levelCdynNf(l), gb.levelCdynNf(l - 1));
        EXPECT_GT(gb.gbVolts(l, 1.4), gb.gbVolts(l - 1, 1.4));
    }
}

TEST(GuardbandModel, LevelCdynMatchesClassTable)
{
    GuardbandModel gb = model();
    for (auto cls : kAllInstClasses) {
        const InstTraits &tr = traits(cls);
        EXPECT_GE(gb.levelCdynNf(tr.guardbandLevel), tr.deltaCdynNf);
    }
    EXPECT_DOUBLE_EQ(gb.levelCdynNf(4),
                     traits(InstClass::k512Heavy).deltaCdynNf);
}

TEST(GuardbandModel, GuardbandGrowsWithFrequency)
{
    GuardbandModel gb = model();
    // Equation 1: ΔV ∝ Vcc(f)·f, so strictly increasing in f.
    EXPECT_LT(gb.gbVolts(3, 1.0), gb.gbVolts(3, 1.2));
    EXPECT_LT(gb.gbVolts(3, 1.2), gb.gbVolts(3, 1.4));
}

TEST(GuardbandModel, BaseVoltsFollowsVfCurve)
{
    GuardbandModel gb = model();
    EXPECT_DOUBLE_EQ(gb.baseVolts(1.0), 0.65);
    EXPECT_DOUBLE_EQ(gb.baseVolts(2.2), 0.77);
}

TEST(GuardbandModel, OutOfRangeLevelThrows)
{
    GuardbandModel gb = model();
    EXPECT_THROW(gb.levelCdynNf(-1), std::out_of_range);
    EXPECT_THROW(gb.levelCdynNf(5), std::out_of_range);
}

TEST(GuardbandModel, MagnitudesInPaperRange)
{
    GuardbandModel gb = model();
    // Per-core guardbands at client frequencies are single-digit to
    // low-tens of mV (Fig. 6: ~8 mV/core for AVX2 at 2 GHz).
    double avx2 = gb.gbVolts(3, 2.0) * 1000.0;
    EXPECT_GT(avx2, 4.0);
    EXPECT_LT(avx2, 12.0);
    double avx512 = gb.gbVolts(4, 2.0) * 1000.0;
    EXPECT_GT(avx512, avx2);
    EXPECT_LT(avx512, 25.0);
}

} // namespace
} // namespace ich
