/**
 * @file
 * Tests for loop-kernel cycle arithmetic.
 */

#include <gtest/gtest.h>

#include "isa/kernel.hh"

namespace ich
{
namespace
{

TEST(Kernel, CyclesPerIterationVector)
{
    Kernel k = makeKernel(InstClass::k256Heavy, 10, 100);
    // 100 instructions at IPC 1 + 1 loop-overhead cycle.
    EXPECT_DOUBLE_EQ(k.cyclesPerIteration(), 101.0);
}

TEST(Kernel, CyclesPerIterationScalarIpc2)
{
    Kernel k = makeKernel(InstClass::kScalar64, 10, 100);
    EXPECT_DOUBLE_EQ(k.cyclesPerIteration(), 51.0);
}

TEST(Kernel, TotalCyclesScalesWithIterations)
{
    Kernel k = makeKernel(InstClass::k256Heavy, 1000, 100);
    EXPECT_DOUBLE_EQ(k.totalCycles(), 101000.0);
}

TEST(Kernel, TotalInstructionsIncludesBranch)
{
    Kernel k = makeKernel(InstClass::k128Heavy, 5, 10);
    EXPECT_EQ(k.totalInstructions(), 55u);
}

TEST(Kernel, UnrollChangesIterationCost)
{
    Kernel a = makeKernel(InstClass::k256Heavy, 1, 50);
    Kernel b = makeKernel(InstClass::k256Heavy, 1, 300);
    EXPECT_LT(a.cyclesPerIteration(), b.cyclesPerIteration());
    EXPECT_DOUBLE_EQ(b.cyclesPerIteration(), 301.0);
}

} // namespace
} // namespace ich
