/**
 * @file
 * Golden-file tests for the JSON/CSV/text reporters, plus the JSON
 * writer primitives and writeReports() round-trip.
 *
 * The golden fixture's metrics are binary-exact doubles that depend
 * only on the grid point, so every summary statistic (mean, stddev,
 * percentiles) renders exactly and the expected documents can be
 * written out verbatim.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/exp.hh"

namespace ich
{
namespace exp
{
namespace
{

/** 2-point, 2-trial fixture with point-only (trial-invariant) metrics. */
SweepResult
goldenResult()
{
    ScenarioSpec spec;
    spec.name = "golden";
    spec.description = "reporter fixture";
    spec.axes = {axisLabeledValues("k", {{"lo", 1.0}, {"hi", 2.0}})};
    spec.trials = 2;
    spec.baseSeed = 5;
    spec.run = [](const TrialContext &ctx) {
        MetricMap m;
        m["val"] = ctx.point.get("k") * 10.0;
        m["ber"] = ctx.point.get("k") * 0.25;
        return m;
    };
    RunnerOptions opts;
    opts.jobs = 1;
    return SweepRunner(opts).run(spec);
}

TEST(JsonWriter, PrimitivesAndEscaping)
{
    JsonWriter w;
    w.beginObject();
    w.key("s").value("a\"b\\c\nd");
    w.key("n").value(1.5);
    w.key("i").value(-3);
    w.key("u").value(std::uint64_t{18446744073709551615ull});
    w.key("t").value(true);
    w.key("z").null();
    w.key("arr").beginArray().value(1).value(2).endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n"
                       "  \"s\": \"a\\\"b\\\\c\\nd\",\n"
                       "  \"n\": 1.5,\n"
                       "  \"i\": -3,\n"
                       "  \"u\": 18446744073709551615,\n"
                       "  \"t\": true,\n"
                       "  \"z\": null,\n"
                       "  \"arr\": [\n"
                       "    1,\n"
                       "    2\n"
                       "  ]\n"
                       "}\n");
}

TEST(JsonWriter, NumberFormattingIsStable)
{
    EXPECT_EQ(JsonWriter::number(0.1), "0.1");
    EXPECT_EQ(JsonWriter::number(2816.9014084507), "2816.901408");
    EXPECT_EQ(JsonWriter::number(1.0 / 0.0), "null");
    EXPECT_EQ(JsonWriter::number(0.0 / 0.0), "null");
}

TEST(Report, GoldenJson)
{
    std::string json = jsonReport(goldenResult(), /*include_trials=*/true);

    std::ostringstream want;
    want << "{\n"
            "  \"scenario\": \"golden\",\n"
            "  \"description\": \"reporter fixture\",\n"
            "  \"base_seed\": 5,\n"
            "  \"trials_per_point\": 2,\n"
            "  \"points\": [\n";
    auto point = [&](const char *label, const char *value,
                     const char *ber, const char *val, bool last) {
        want << "    {\n"
                "      \"params\": {\n"
                "        \"k\": {\n"
                "          \"value\": " << value << ",\n"
                "          \"label\": \"" << label << "\"\n"
                "        }\n"
                "      },\n"
                "      \"metrics\": {\n";
        auto metric = [&](const char *name, const char *v, bool m_last) {
            want << "        \"" << name << "\": {\n"
                    "          \"count\": 2,\n"
                    "          \"mean\": " << v << ",\n"
                    "          \"stddev\": 0,\n"
                    "          \"min\": " << v << ",\n"
                    "          \"max\": " << v << ",\n"
                    "          \"p50\": " << v << ",\n"
                    "          \"p90\": " << v << ",\n"
                    "          \"p99\": " << v << "\n"
                    "        }" << (m_last ? "\n" : ",\n");
        };
        metric("ber", ber, false);
        metric("val", val, true);
        want << "      }\n"
                "    }" << (last ? "\n" : ",\n");
    };
    point("lo", "1", "0.25", "10", false);
    point("hi", "2", "0.5", "20", true);
    want << "  ],\n"
            "  \"rollups\": {\n"
            "    \"ber\": {\n"
            "      \"count\": 4,\n"
            "      \"mean\": 0.375,\n"
            "      \"stddev\": 0.1443375673,\n"
            "      \"min\": 0.25,\n"
            "      \"max\": 0.5,\n"
            "      \"p50\": 0.375,\n"
            "      \"p90\": 0.5,\n"
            "      \"p99\": 0.5\n"
            "    },\n"
            "    \"val\": {\n"
            "      \"count\": 4,\n"
            "      \"mean\": 15,\n"
            "      \"stddev\": 5.773502692,\n"
            "      \"min\": 10,\n"
            "      \"max\": 20,\n"
            "      \"p50\": 15,\n"
            "      \"p90\": 20,\n"
            "      \"p99\": 20\n"
            "    }\n"
            "  },\n"
            "  \"trials\": [\n";
    for (int i = 0; i < 4; ++i) {
        const char *val = i < 2 ? "10" : "20";
        const char *ber = i < 2 ? "0.25" : "0.5";
        want << "    {\n"
                "      \"point\": " << (i / 2) << ",\n"
                "      \"trial\": " << (i % 2) << ",\n"
                "      \"seed\": " << deriveTrialSeed(5, i) << ",\n"
                "      \"metrics\": {\n"
                "        \"ber\": " << ber << ",\n"
                "        \"val\": " << val << "\n"
                "      }\n"
                "    }" << (i == 3 ? "\n" : ",\n");
    }
    want << "  ]\n"
            "}\n";
    EXPECT_EQ(json, want.str());
}

TEST(Report, GoldenSeedsInJson)
{
    // The fixture's derived seeds, pinned as decimal literals: if the
    // seed schedule drifts, recorded sweeps stop being reproducible.
    std::string json = jsonReport(goldenResult());
    EXPECT_NE(json.find("\"seed\": 7134611160154358618"),
              std::string::npos);
    EXPECT_NE(json.find("\"seed\": 13877614986023876344"),
              std::string::npos);
    EXPECT_NE(json.find("\"seed\": 4292726422858613063"),
              std::string::npos);
    EXPECT_NE(json.find("\"seed\": 1832488697174800709"),
              std::string::npos);
}

TEST(Report, GoldenCsv)
{
    EXPECT_EQ(csvReport(goldenResult()),
              "k,ber_mean,ber_stddev,val_mean,val_stddev\n"
              "lo,0.25,0,10,0\n"
              "hi,0.5,0,20,0\n");
}

TEST(Report, TextShapeAndCells)
{
    std::string text = textReport(goldenResult());
    // Header with axis + metric columns, one row per point, seed note.
    EXPECT_NE(text.find("k "), std::string::npos);
    EXPECT_NE(text.find("ber"), std::string::npos);
    EXPECT_NE(text.find("val"), std::string::npos);
    EXPECT_NE(text.find("lo"), std::string::npos);
    EXPECT_NE(text.find("0.25 ±0"), std::string::npos);
    EXPECT_NE(text.find("20 ±0"), std::string::npos);
    EXPECT_NE(text.find("(2 trials/point, base seed 5)"),
              std::string::npos);

    // Single-trial sweeps show the raw value, no ± and no seed note.
    RunnerOptions opts;
    opts.jobs = 1;
    opts.trials = 1;
    ScenarioSpec spec;
    spec.name = "single";
    spec.axes = {axis("x", {3.0})};
    spec.baseSeed = 5;
    spec.run = [](const TrialContext &ctx) {
        return MetricMap{{"m", ctx.point.get("x")}};
    };
    std::string single = textReport(SweepRunner(opts).run(spec));
    EXPECT_EQ(single.find("±"), std::string::npos);
    EXPECT_EQ(single.find("trials/point"), std::string::npos);
}

TEST(Report, CsvEscapesReservedCharacters)
{
    ScenarioSpec spec;
    spec.name = "escapes";
    spec.axes = {axisLabeledValues("who", {{"a,b \"c\"", 0.0}})};
    spec.run = [](const TrialContext &) {
        return MetricMap{{"x", 1.0}};
    };
    RunnerOptions opts;
    opts.jobs = 1;
    std::string csv = csvReport(SweepRunner(opts).run(spec));
    EXPECT_NE(csv.find("\"a,b \"\"c\"\"\""), std::string::npos);
}

TEST(Report, WriteReportsRoundTrip)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) / "ich_exp_report" /
                   "nested";
    SweepResult result = goldenResult();
    ReportPaths paths = writeReports(result, dir.string());

    std::ifstream jf(paths.json, std::ios::binary);
    std::stringstream jbuf;
    jbuf << jf.rdbuf();
    EXPECT_EQ(jbuf.str(), jsonReport(result));

    std::ifstream cf(paths.csv, std::ios::binary);
    std::stringstream cbuf;
    cbuf << cf.rdbuf();
    EXPECT_EQ(cbuf.str(), csvReport(result));

    fs::remove_all(fs::path(::testing::TempDir()) / "ich_exp_report");
}

TEST(Report, WriteReportsHonorsFormatSelection)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) / "ich_report_opts";
    fs::remove_all(dir);
    SweepResult result = goldenResult();

    ReportOptions opts;
    opts.json = false;
    ReportPaths paths = writeReports(result, dir.string(), opts);
    EXPECT_TRUE(paths.json.empty());
    EXPECT_FALSE(paths.csv.empty());
    EXPECT_FALSE(fs::exists(dir / "golden.json"));
    EXPECT_TRUE(fs::exists(dir / "golden.csv"));

    opts.json = true;
    opts.csv = false;
    opts.includeTrials = false;
    paths = writeReports(result, dir.string(), opts);
    EXPECT_FALSE(paths.json.empty());
    EXPECT_TRUE(paths.csv.empty());
    std::ifstream jf(paths.json, std::ios::binary);
    std::stringstream jbuf;
    jbuf << jf.rdbuf();
    EXPECT_EQ(jbuf.str(), jsonReport(result, /*include_trials=*/false));
    fs::remove_all(dir);
}

/** Captures the SweepMeta a streaming run publishes. */
class MetaCapture final : public ResultSink
{
  public:
    void beginSweep(const SweepMeta &meta) override { meta_ = meta; }
    void acceptPoint(std::size_t, const TrialRecord *,
                     std::size_t) override
    {
    }
    void endSweep() override {}
    SweepMeta meta_;
};

// The acceptance criterion of the streaming redesign: every report
// format rendered from the store-backed view must be byte-identical to
// the same report rendered from the materialized SweepResult.
TEST(Report, StoreBackedViewIsByteIdenticalToMaterialized)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) / "ich_store_view";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string store_path = (dir / "golden.colstore").string();

    ScenarioSpec spec;
    spec.name = "golden";
    spec.description = "reporter fixture";
    spec.axes = {axisLabeledValues("k", {{"lo", 1.0}, {"hi", 2.0}})};
    spec.trials = 2;
    spec.baseSeed = 5;
    spec.run = [](const TrialContext &ctx) {
        MetricMap m;
        m["val"] = ctx.point.get("k") * 10.0;
        m["ber"] = ctx.point.get("k") * 0.25;
        return m;
    };

    MetaCapture meta;
    MaterializeSink mat;
    StreamingAggregator agg;
    ColumnStoreWriter store(store_path);
    TeeSink tee({&meta, &mat, &agg, &store});
    RunnerOptions opts;
    opts.jobs = 2; // completion order must not matter
    SweepRunner(opts).runStreaming(spec, tee);

    SweepResult result = mat.take();
    result.aggregates = aggregate(result.points, result.trials);

    ColumnStoreReader reader(store_path);
    StoreSweepView view{meta.meta_, agg, reader};

    EXPECT_EQ(textReport(view), textReport(result));
    EXPECT_EQ(jsonReport(view), jsonReport(result));
    EXPECT_EQ(jsonReport(view, false), jsonReport(result, false));
    EXPECT_EQ(csvReport(view), csvReport(result));

    // writeReports over the view produces byte-identical files too.
    ReportPaths from_view =
        writeReports(view, (dir / "view").string());
    ReportPaths from_result =
        writeReports(result, (dir / "mat").string());
    for (auto pair : {std::make_pair(from_view.json, from_result.json),
                      std::make_pair(from_view.csv, from_result.csv)}) {
        std::ifstream a(pair.first, std::ios::binary);
        std::ifstream b(pair.second, std::ios::binary);
        std::stringstream abuf, bbuf;
        abuf << a.rdbuf();
        bbuf << b.rdbuf();
        EXPECT_EQ(abuf.str(), bbuf.str());
        EXPECT_FALSE(abuf.str().empty());
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace exp
} // namespace ich
