/**
 * @file
 * PowerT baseline tests (paper §6.2: ~122 b/s power-limit channel).
 */

#include <gtest/gtest.h>

#include "baselines/powert.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

PowerTConfig
baseConfig()
{
    PowerTConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 31;
    return cfg;
}

TEST(PowerT, RoundTripErrorFree)
{
    PowerT pt(baseConfig());
    BitVec bits = {1, 0, 1, 0, 1, 1, 0};
    TransmitResult res = pt.transmit(bits);
    EXPECT_EQ(res.receivedBits, bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(PowerT, ThroughputNearPaperValue)
{
    // Fig. 12b: PowerT ≈ 122 b/s.
    PowerT pt(baseConfig());
    EXPECT_GT(pt.ratedThroughputBps(), 100.0);
    EXPECT_LT(pt.ratedThroughputBps(), 145.0);
}

TEST(PowerT, ChoosesLimitBetweenIdleAndBurn)
{
    PowerT pt(baseConfig());
    pt.transmit({1}); // forces limit selection
    EXPECT_GT(pt.chosenLimitWatts(), 1.0);
    EXPECT_LT(pt.chosenLimitWatts(), 50.0);
}

TEST(PowerT, BitTimeCoversTwoEvaluations)
{
    // The controller needs at least one evaluation to react in each
    // direction; the bit time must cover that cadence.
    PowerTConfig cfg = baseConfig();
    EXPECT_GE(cfg.bitTime, 2 * cfg.evalInterval);
}

} // namespace
} // namespace ich
