/**
 * @file
 * Chip-level tests: TSC invariance, activity reporting, measurement
 * points, power-gate integration (Fig. 8b/c first-iteration delta).
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;
using test::quietChip;

TEST(Chip, TscCountsAtBaseClockRegardlessOfCoreFreq)
{
    for (double f : {1.0, 2.2}) {
        Simulation sim(quietChip(f));
        Chip &chip = sim.chip();
        sim.eq().runUntil(fromMicroseconds(100));
        // 100 us at tscGhz=2.2 => 220000 cycles, independent of f.
        EXPECT_NEAR(static_cast<double>(chip.tscNow()), 220000.0, 2.0);
    }
}

TEST(Chip, TscRoundTrips)
{
    Simulation sim(quietChip());
    Chip &chip = sim.chip();
    Cycles c = 123456;
    Time t = chip.tscToTime(c);
    sim.eq().runUntil(t);
    EXPECT_NEAR(static_cast<double>(chip.tscNow()),
                static_cast<double>(c), 2.0);
}

TEST(Chip, CoreActivityReportsRunningClass)
{
    Simulation sim(quietChip(1.0));
    Chip &chip = sim.chip();
    Program p;
    p.loop(InstClass::k256Heavy, 1000, 100);
    chip.core(1).thread(0).setProgram(std::move(p));
    chip.core(1).thread(0).start();
    sim.eq().runUntil(fromMicroseconds(10));
    auto act = chip.coreActivity();
    EXPECT_FALSE(act[0].active);
    EXPECT_TRUE(act[1].active);
    EXPECT_DOUBLE_EQ(act[1].cdynNf,
                     chip.config().core.cdynBaseNf +
                         traits(InstClass::k256Heavy).deltaCdynNf);
    EXPECT_EQ(act[1].activeGbLevel, 3);
}

TEST(Chip, IccGrowsWithActivity)
{
    Simulation sim(quietChip(1.0));
    Chip &chip = sim.chip();
    double icc_idle = chip.iccAmps();
    Program p;
    p.loop(InstClass::k512Heavy, 2000, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMicroseconds(20));
    EXPECT_GT(chip.iccAmps(), icc_idle);
    EXPECT_GT(chip.powerWatts(), 0.0);
}

TEST(Chip, TjCelsiusAdvancesThermalState)
{
    Simulation sim(quietChip(1.0));
    Chip &chip = sim.chip();
    Program p;
    p.loop(InstClass::k512Heavy, 2000000, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMilliseconds(50));
    double t = chip.tjCelsius();
    EXPECT_GT(t, chip.thermal().config().ambientCelsius);
    EXPECT_LT(t, chip.thermal().config().tjMaxCelsius);
}

// Fig. 8b: on parts with an AVX power gate, the first iteration of an
// AVX2 loop is ~8-15 ns longer than subsequent iterations.
TEST(Chip, FirstAvxIterationPaysGateWakeup)
{
    ChipConfig cfg = quietChip(3.0); // secure mode: isolate the PG cost
    Simulation sim(cfg);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loopChunked(InstClass::k256Heavy, 3, 1, /*tag=*/0, 300);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    const auto &recs = thr.records();
    ASSERT_EQ(recs.size(), 3u);
    // records are per-iteration completion times; start was at ~0.
    Time it1 = recs[0].time;
    Time it2 = recs[1].time - recs[0].time;
    Time it3 = recs[2].time - recs[1].time;
    double d1 = toNanoseconds(it1) - toNanoseconds(it2);
    EXPECT_GE(d1, 7.0);  // wake-up cost visible on iteration 1
    EXPECT_LE(d1, 16.0);
    EXPECT_NEAR(toNanoseconds(it2), toNanoseconds(it3), 0.5);
}

// Fig. 8c: Haswell has no AVX power gate — all iterations equal.
TEST(Chip, HaswellHasNoFirstIterationDelta)
{
    ChipConfig cfg = presets::haswell();
    cfg.pmu.secureMode = true;
    cfg.pmu.vr.commandJitter = 0;
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 3.0;
    Simulation sim(cfg);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loopChunked(InstClass::k256Heavy, 3, 1, 0, 300);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    const auto &recs = thr.records();
    Time it1 = recs[0].time;
    Time it2 = recs[1].time - recs[0].time;
    EXPECT_NEAR(toNanoseconds(it1), toNanoseconds(it2), 1.0);
}

TEST(Chip, ThrottleAssertReleaseBalance)
{
    Simulation sim(pinnedCannonLake(1.4));
    Chip &chip = sim.chip();
    Program p;
    for (int i = 0; i < 3; ++i) {
        p.loop(InstClass::k512Heavy, 400, 100);
        p.idle(fromMicroseconds(800)); // past reset-time each round
    }
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.run(fromMilliseconds(10));
    EXPECT_FALSE(chip.core(0).throttle().throttled());
    EXPECT_EQ(chip.core(0).throttle().assertCount(), 3u);
}

} // namespace
} // namespace ich
