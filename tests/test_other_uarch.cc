/**
 * @file
 * Other-microarchitecture tests (paper §7 "IChannels on other
 * Microarchitectures"): the authors confirmed that naively porting
 * IChannels to recent AMD processors does not work — AMD parts use
 * per-core LDO regulators, removing both the shared-rail serialization
 * and the slow multi-microsecond ramps the channels need.
 */

#include <gtest/gtest.h>

#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

ChannelConfig
zenConfig()
{
    ChannelConfig cfg;
    cfg.chip = presets::zenLike();
    cfg.freqGhz = 2.0;
    cfg.seed = 91;
    return cfg;
}

TEST(OtherUarch, ZenPresetShape)
{
    ChipConfig cfg = presets::zenLike();
    EXPECT_TRUE(cfg.pmu.perCoreVr);
    EXPECT_EQ(cfg.pmu.vr.kind, VrKind::kLowDropout);
    EXPECT_FALSE(presets::hasAvx512(cfg));
}

TEST(OtherUarch, NaiveCrossCorePortFails)
{
    // No shared rail to serialize on: the receiver's timing carries no
    // information about the sender's class.
    IccCoresCovert ch(zenConfig());
    EXPECT_LT(ch.calibration().minSeparationUs(), 0.1);
}

TEST(OtherUarch, NaiveThreadPortBuriedInJitter)
{
    // LDO ramps are tens of nanoseconds: level spacing falls at/below
    // the measurement jitter, so intensity levels are not decodable.
    IccThreadCovert ch(zenConfig());
    EXPECT_LT(ch.calibration().minSeparationUs(), 0.05);
}

TEST(OtherUarch, NaiveSmtPortBuriedInJitter)
{
    IccSMTcovert ch(zenConfig());
    EXPECT_LT(ch.calibration().minSeparationUs(), 0.05);
}

TEST(OtherUarch, ZenStillHasFastVoltageTransitions)
{
    // The insight transfer the paper suggests: the mechanisms exist
    // (guardbands still move), they are just much faster/per-core —
    // adapting IChannels needs finer probes, not a different idea.
    Simulation sim(presets::zenLike());
    Chip &chip = sim.chip();
    double v0 = chip.pmu().voltsDomain(0);
    Program p;
    p.loop(InstClass::k256Heavy, 2000, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMicroseconds(5));
    EXPECT_GT(chip.pmu().voltsDomain(0), v0); // its own domain ramped
    // Another core's domain is untouched.
    EXPECT_NEAR(chip.pmu().voltsDomain(1),
                chip.pmu().guardbandModel().baseVolts(chip.freqGhz()),
                1e-6);
}

} // namespace
} // namespace ich
