/**
 * @file
 * IccCoresCovert end-to-end tests (paper §4.3).
 */

#include <gtest/gtest.h>

#include "channels/cores_channel.hh"
#include "chip/presets.hh"
#include "mitigations/mitigations.hh"

namespace ich
{
namespace
{

ChannelConfig
baseConfig()
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 13;
    return cfg;
}

TEST(CoresChannel, RequiresTwoCores)
{
    ChannelConfig cfg = baseConfig();
    cfg.chip.numCores = 1;
    EXPECT_THROW(IccCoresCovert{cfg}, std::invalid_argument);
}

TEST(CoresChannel, NoiselessRoundTripIsErrorFree)
{
    IccCoresCovert ch(baseConfig());
    BitVec bits = {0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.receivedBits, bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(CoresChannel, CalibrationLevelsIncreaseWithSenderIntensity)
{
    IccCoresCovert ch(baseConfig());
    const Calibration &cal = ch.calibration();
    // Receiver waits for the sender's transition: higher sender level
    // => later release => longer probe.
    for (int s = 1; s < kNumSymbols; ++s)
        EXPECT_GT(cal.meanUs(s), cal.meanUs(s - 1));
    EXPECT_GT(cal.minSeparationUs(), 0.5);
}

TEST(CoresChannel, ThroughputMatchesPaperScale)
{
    IccCoresCovert ch(baseConfig());
    EXPECT_GT(ch.ratedThroughputBps(), 2500.0);
    EXPECT_LT(ch.ratedThroughputBps(), 3100.0);
}

TEST(CoresChannel, WorksOnEightCoreCoffeeLake)
{
    ChannelConfig cfg;
    cfg.chip = presets::coffeeLake();
    cfg.seed = 5;
    IccCoresCovert ch(cfg);
    BitVec bits = {1, 0, 0, 1, 1, 0};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(CoresChannel, PerCoreVrKillsChannel)
{
    ChannelConfig cfg = baseConfig();
    cfg.chip = mitigations::withPerCoreVr(cfg.chip);
    IccCoresCovert ch(cfg);
    const Calibration &cal = ch.calibration();
    // Independent rails: receiver timing independent of sender level.
    EXPECT_LT(cal.minSeparationUs(), 0.1);
}

TEST(CoresChannel, SecureModeKillsChannel)
{
    ChannelConfig cfg = baseConfig();
    cfg.chip = mitigations::withSecureMode(cfg.chip);
    IccCoresCovert ch(cfg);
    const Calibration &cal = ch.calibration();
    EXPECT_LT(cal.minSeparationUs(), 0.05);
}

} // namespace
} // namespace ich
