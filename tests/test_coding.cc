/**
 * @file
 * Tests for the error-control coding helpers (§6.3).
 */

#include <gtest/gtest.h>

#include "channels/coding.hh"

namespace ich
{
namespace
{

TEST(Coding, BytesBitsRoundTrip)
{
    std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0xA5, 0x3C};
    BitVec bits = bytesToBits(bytes);
    EXPECT_EQ(bits.size(), 32u);
    EXPECT_EQ(bitsToBytes(bits), bytes);
}

TEST(Coding, BitsLsbFirst)
{
    BitVec bits = bytesToBits({0x01});
    EXPECT_EQ(bits[0], 1);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(bits[i], 0);
}

TEST(Coding, RepetitionRoundTrip)
{
    BitVec bits = {1, 0, 1, 1, 0};
    BitVec coded = repetitionEncode(bits, 3);
    EXPECT_EQ(coded.size(), 15u);
    EXPECT_EQ(repetitionDecode(coded, 3), bits);
}

TEST(Coding, RepetitionMajorityCorrectsMinorityErrors)
{
    BitVec bits = {1, 0};
    BitVec coded = repetitionEncode(bits, 5);
    coded[0] ^= 1; // 1 error in first group
    coded[6] ^= 1;
    coded[7] ^= 1; // 2 errors in second group of 5
    EXPECT_EQ(repetitionDecode(coded, 5), bits);
}

TEST(Coding, RepetitionRejectsBadK)
{
    EXPECT_THROW(repetitionEncode({1}, 0), std::invalid_argument);
    EXPECT_THROW(repetitionDecode({1}, 0), std::invalid_argument);
}

TEST(Coding, HammingRoundTripAllNibbles)
{
    for (int n = 0; n < 16; ++n) {
        BitVec bits = {static_cast<std::uint8_t>(n & 1),
                       static_cast<std::uint8_t>((n >> 1) & 1),
                       static_cast<std::uint8_t>((n >> 2) & 1),
                       static_cast<std::uint8_t>((n >> 3) & 1)};
        EXPECT_EQ(hammingDecode(hammingEncode(bits)), bits);
    }
}

TEST(Coding, HammingCorrectsAnySingleBitError)
{
    BitVec bits = {1, 0, 1, 1, 0, 1, 0, 0}; // two nibbles
    BitVec coded = hammingEncode(bits);
    ASSERT_EQ(coded.size(), 14u);
    for (std::size_t flip = 0; flip < coded.size(); ++flip) {
        BitVec corrupted = coded;
        corrupted[flip] ^= 1;
        EXPECT_EQ(hammingDecode(corrupted), bits)
            << "flip at " << flip;
    }
}

TEST(Coding, HammingPadsPartialNibble)
{
    BitVec bits = {1, 0, 1}; // 3 bits: padded to a nibble
    BitVec decoded = hammingDecode(hammingEncode(bits));
    ASSERT_GE(decoded.size(), 3u);
    EXPECT_EQ(decoded[0], 1);
    EXPECT_EQ(decoded[1], 0);
    EXPECT_EQ(decoded[2], 1);
}

TEST(Coding, Crc16KnownProperties)
{
    BitVec a = {1, 0, 1, 1, 0, 0, 1, 0};
    BitVec b = a;
    EXPECT_EQ(crc16(a), crc16(b));
    b[3] ^= 1;
    EXPECT_NE(crc16(a), crc16(b));
    // Empty input: initial value.
    EXPECT_EQ(crc16({}), 0xFFFF);
}

TEST(Coding, HammingDistance)
{
    EXPECT_EQ(hammingDistance({1, 0, 1}, {1, 1, 1}), 1u);
    EXPECT_EQ(hammingDistance({1, 0}, {1, 0}), 0u);
    EXPECT_EQ(hammingDistance({1, 1, 1}, {0, 0}), 2u); // shorter size
}


TEST(Coding, InterleaveRoundTrip)
{
    BitVec bits;
    for (int i = 0; i < 29; ++i) // deliberately not a multiple of depth
        bits.push_back((i * 7) % 3 == 0 ? 1 : 0);
    for (int depth : {1, 2, 4, 7}) {
        BitVec inter = interleave(bits, depth);
        EXPECT_EQ(inter.size(), bits.size());
        EXPECT_EQ(deinterleave(inter, depth), bits) << depth;
    }
}

TEST(Coding, InterleaveSpreadsAdjacentErrors)
{
    // A 2-bit burst in the interleaved stream lands in different
    // Hamming blocks after deinterleaving, so Hamming(7,4) corrects it.
    // Adjacent transmitted bits sit ceil(n/depth) apart in the
    // codeword, so depth 2 over 14 coded bits gives stride 7 — exactly
    // one Hamming block.
    BitVec bits = {1, 0, 1, 1, 0, 1, 0, 0}; // two nibbles -> 14 coded
    BitVec coded = hammingEncode(bits);
    BitVec sent = interleave(coded, 2);
    sent[4] ^= 1;
    sent[5] ^= 1; // adjacent burst (one covert symbol error)
    BitVec back = deinterleave(sent, 2);
    EXPECT_EQ(hammingDecode(back), bits);
}

TEST(Coding, InterleaveRejectsBadDepth)
{
    EXPECT_THROW(interleave({1}, 0), std::invalid_argument);
    EXPECT_THROW(deinterleave({1}, 0), std::invalid_argument);
}

} // namespace
} // namespace ich
