/**
 * @file
 * Tests for P-state helpers and license mapping (paper §5.3).
 */

#include <gtest/gtest.h>

#include "pmu/pstate.hh"

namespace ich
{
namespace
{

TEST(Pstate, LicenseForGbLevel)
{
    EXPECT_EQ(licenseForGbLevel(0), 0); // scalar / 128b-light
    EXPECT_EQ(licenseForGbLevel(1), 0); // 128b-heavy
    EXPECT_EQ(licenseForGbLevel(2), 1); // 256b-light → LVL1
    EXPECT_EQ(licenseForGbLevel(3), 1); // 256b-heavy / 512b-light
    EXPECT_EQ(licenseForGbLevel(4), 2); // 512b-heavy → LVL2
}

TEST(Pstate, SnapDownToBin)
{
    std::vector<double> bins = {0.8, 1.0, 1.2, 1.4};
    EXPECT_DOUBLE_EQ(snapDownToBin(1.4, bins), 1.4);
    EXPECT_DOUBLE_EQ(snapDownToBin(1.35, bins), 1.2);
    EXPECT_DOUBLE_EQ(snapDownToBin(5.0, bins), 1.4);
    EXPECT_DOUBLE_EQ(snapDownToBin(0.5, bins), 0.8); // clamp to lowest
}

TEST(Pstate, SnapHandlesFloatNoise)
{
    std::vector<double> bins = {0.8, 1.0, 1.2};
    EXPECT_DOUBLE_EQ(snapDownToBin(1.2 - 1e-12, bins), 1.2);
}

} // namespace
} // namespace ich
