/**
 * @file
 * Channel accuracy under system noise (paper §6.3, Fig. 14): BER stays
 * low under interrupt/context-switch noise, grows with concurrent
 * App-PHI injection rate, and error-control coding recovers payloads.
 */

#include <gtest/gtest.h>

#include "channels/thread_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

BitVec
pseudoRandomBits(std::size_t n, unsigned seed = 1)
{
    BitVec bits;
    unsigned x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    return bits;
}

ChannelConfig
baseConfig()
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 21;
    return cfg;
}

TEST(ChannelNoise, ModerateInterruptNoiseKeepsBerLow)
{
    ChannelConfig cfg = baseConfig();
    cfg.noise.interruptRatePerSec = 1000.0;
    IccThreadCovert ch(cfg);
    TransmitResult res = ch.transmit(pseudoRandomBits(60));
    // Fig. 14a: BER < ~0.08 even in noisy systems.
    EXPECT_LT(res.ber, 0.10);
}

TEST(ChannelNoise, BerGrowsWithInterruptRate)
{
    double ber_low, ber_high;
    {
        ChannelConfig cfg = baseConfig();
        cfg.noise.interruptRatePerSec = 100.0;
        IccThreadCovert ch(cfg);
        ber_low = ch.transmit(pseudoRandomBits(80)).ber;
    }
    {
        ChannelConfig cfg = baseConfig();
        cfg.noise.interruptRatePerSec = 20000.0;
        IccThreadCovert ch(cfg);
        ber_high = ch.transmit(pseudoRandomBits(80)).ber;
    }
    EXPECT_LE(ber_low, ber_high);
    EXPECT_GT(ber_high, 0.0); // dense noise must cause some errors
}

TEST(ChannelNoise, AppPhiNoiseCausesErrors)
{
    ChannelConfig cfg = baseConfig();
    cfg.app.phiRatePerSec = 10000.0; // Fig. 14c rightmost point
    IccThreadCovert ch(cfg);
    TransmitResult res = ch.transmit(pseudoRandomBits(60));
    EXPECT_GT(res.ber, 0.01);
}

TEST(ChannelNoise, AppPhiBerGrowsWithRate)
{
    double ber_lo, ber_hi;
    {
        ChannelConfig cfg = baseConfig();
        cfg.app.phiRatePerSec = 10.0;
        IccThreadCovert ch(cfg);
        ber_lo = ch.transmit(pseudoRandomBits(60)).ber;
    }
    {
        ChannelConfig cfg = baseConfig();
        cfg.app.phiRatePerSec = 10000.0;
        IccThreadCovert ch(cfg);
        ber_hi = ch.transmit(pseudoRandomBits(60)).ber;
    }
    EXPECT_LE(ber_lo, ber_hi);
}

TEST(ChannelNoise, RepetitionCodingRecoversPayload)
{
    ChannelConfig cfg = baseConfig();
    cfg.noise.interruptRatePerSec = 4000.0;
    cfg.noise.contextSwitchRatePerSec = 500.0;
    IccThreadCovert ch(cfg);

    BitVec payload = pseudoRandomBits(24, 3);
    BitVec coded = repetitionEncode(payload, 5);
    TransmitResult res = ch.transmit(coded);
    BitVec decoded = repetitionDecode(res.receivedBits, 5);
    // §6.3: repetition/averaging recovers the secret under noise.
    EXPECT_EQ(decoded, payload);
}

// Fig. 14b property: a colliding app PHI causes decode errors exactly
// when its power level exceeds the channel's symbol level.
TEST(ChannelNoise, CollidingBurstErrorMatrix)
{
    SymbolMap map = symbolMapFor(presets::cannonLake());
    for (int app_s : {0, 3}) {
        for (int ich_s : {0, 3}) {
            ChannelConfig cfg = baseConfig();
            cfg.burst.enabled = true;
            cfg.burst.cls = map.symbolClasses[app_s];
            IccThreadCovert ch(cfg);
            std::vector<int> symbols(8, ich_s);
            std::vector<double> tp = ch.runSymbols(symbols, true);
            std::size_t errors = 0;
            for (double v : tp)
                if (ch.calibration().decode(v) != ich_s)
                    ++errors;
            if (app_s > ich_s)
                EXPECT_GT(errors, 4u)
                    << "app " << app_s << " ich " << ich_s;
            else
                EXPECT_EQ(errors, 0u)
                    << "app " << app_s << " ich " << ich_s;
        }
    }
}

TEST(ChannelNoise, CrcDetectsResidualErrors)
{
    ChannelConfig cfg = baseConfig();
    cfg.noise.interruptRatePerSec = 20000.0;
    cfg.noise.contextSwitchRatePerSec = 2000.0;
    IccThreadCovert ch(cfg);
    BitVec payload = pseudoRandomBits(64, 9);
    TransmitResult res = ch.transmit(payload);
    if (res.bitErrors > 0)
        EXPECT_NE(crc16(res.receivedBits), crc16(payload));
    else
        EXPECT_EQ(crc16(res.receivedBits), crc16(payload));
}

} // namespace
} // namespace ich
