/**
 * @file
 * Tests for the Simulation wrapper (run-to-done semantics, horizons,
 * seed isolation).
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::quietChip;

TEST(Simulation, RunStopsWhenAllProgramsDone)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::kScalar64, 1000, 100); // ~51 us
    thr.setProgram(std::move(p));
    thr.start();
    Time end = sim.run(fromSeconds(1.0));
    EXPECT_TRUE(thr.done());
    EXPECT_LT(end, fromMicroseconds(100));
}

TEST(Simulation, RunRespectsHorizon)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::kScalar64, 100000, 100); // ~5.1 ms
    thr.setProgram(std::move(p));
    thr.start();
    sim.run(fromMicroseconds(100));
    EXPECT_FALSE(thr.done());
}

TEST(Simulation, RunWithNoProgramsReturnsImmediately)
{
    Simulation sim(quietChip(1.0));
    Time end = sim.run(fromSeconds(1.0));
    // Only housekeeping events (decay scheduling etc.) may run.
    EXPECT_LT(end, fromSeconds(1.0));
}

TEST(Simulation, RunForAdvancesExactly)
{
    Simulation sim(quietChip(1.0));
    sim.runFor(fromMicroseconds(123));
    EXPECT_EQ(sim.eq().now(), fromMicroseconds(123));
    sim.runFor(fromMicroseconds(77));
    EXPECT_EQ(sim.eq().now(), fromMicroseconds(200));
}

TEST(Simulation, IndependentInstancesDoNotInterfere)
{
    Simulation a(quietChip(1.0), 1);
    Simulation b(quietChip(1.0), 2);
    a.runFor(fromMicroseconds(500));
    EXPECT_EQ(b.eq().now(), 0u);
    EXPECT_EQ(a.eq().now(), fromMicroseconds(500));
}

TEST(Simulation, MultiThreadProgramsAllComplete)
{
    Simulation sim(quietChip(1.0));
    Chip &chip = sim.chip();
    for (int c = 0; c < chip.coreCount(); ++c) {
        for (int t = 0; t < chip.core(c).numThreads(); ++t) {
            Program p;
            p.loop(InstClass::kScalar64, 100 * (c + t + 1), 100);
            chip.core(c).thread(t).setProgram(std::move(p));
            chip.core(c).thread(t).start();
        }
    }
    sim.run(fromSeconds(1.0));
    for (int c = 0; c < chip.coreCount(); ++c)
        for (int t = 0; t < chip.core(c).numThreads(); ++t)
            EXPECT_TRUE(chip.core(c).thread(t).done());
}

} // namespace
} // namespace ich
