/**
 * @file
 * Tests for the streaming ResultSink API: the sink call contract,
 * completion-order independence, and — the load-bearing property of the
 * whole redesign — bit-identity between the streaming path
 * (runStreaming + StreamingAggregator) and the materialized path
 * (run + serial aggregate()).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"

namespace ich
{
namespace exp
{
namespace
{

std::uint64_t
bitsOf(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof b);
    return b;
}

void
expectSummaryBitEqual(const MetricSummary &a, const MetricSummary &b)
{
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(bitsOf(a.mean), bitsOf(b.mean));
    EXPECT_EQ(bitsOf(a.stddev), bitsOf(b.stddev));
    EXPECT_EQ(bitsOf(a.min), bitsOf(b.min));
    EXPECT_EQ(bitsOf(a.max), bitsOf(b.max));
    EXPECT_EQ(bitsOf(a.p50), bitsOf(b.p50));
    EXPECT_EQ(bitsOf(a.p90), bitsOf(b.p90));
    EXPECT_EQ(bitsOf(a.p99), bitsOf(b.p99));
}

void
expectAggregatesBitEqual(const std::vector<PointAggregate> &a,
                         const std::vector<PointAggregate> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
        auto ia = a[i].metrics.begin();
        auto ib = b[i].metrics.begin();
        for (; ia != a[i].metrics.end(); ++ia, ++ib) {
            EXPECT_EQ(ia->first, ib->first);
            expectSummaryBitEqual(ia->second, ib->second);
        }
    }
}

/** Stochastic grid whose metrics depend only on (point, seed). */
ScenarioSpec
rngSpec()
{
    ScenarioSpec spec;
    spec.name = "sink-grid";
    spec.description = "pure-Rng grid for sink tests";
    spec.axes = {axis("mu", {0.0, 5.0, 9.0}), axis("sigma", {1.0, 3.0})};
    spec.trials = 3;
    spec.baseSeed = 321;
    spec.run = [](const TrialContext &ctx) {
        Rng rng(ctx.seed);
        double acc = 0.0;
        for (int i = 0; i < 64; ++i)
            acc += rng.normal(ctx.point.get("mu"),
                              ctx.point.get("sigma"));
        MetricMap m;
        m["sum"] = acc;
        return m;
    };
    return spec;
}

/** Records the sink call sequence for contract checks. */
class ContractSink final : public ResultSink
{
  public:
    void beginSweep(const SweepMeta &meta) override
    {
        ++begins;
        meta_ = meta;
    }
    void acceptPoint(std::size_t point_idx, const TrialRecord *records,
                     std::size_t count) override
    {
        EXPECT_EQ(begins, 1);
        EXPECT_EQ(ends, 0);
        EXPECT_LT(point_idx, meta_.numPoints());
        EXPECT_EQ(count,
                  static_cast<std::size_t>(meta_.trialsPerPoint));
        for (std::size_t t = 0; t < count; ++t) {
            EXPECT_EQ(records[t].pointIndex, point_idx);
            EXPECT_EQ(records[t].trial, static_cast<int>(t));
        }
        seen.push_back(point_idx);
    }
    void endSweep() override { ++ends; }

    int begins = 0;
    int ends = 0;
    std::vector<std::size_t> seen;
    SweepMeta meta_;
};

TEST(Sink, RunStreamingHonorsTheContract)
{
    ContractSink sink;
    RunnerOptions opts;
    opts.jobs = 3;
    StreamStats stats = SweepRunner(opts).runStreaming(rngSpec(), sink);
    EXPECT_EQ(sink.begins, 1);
    EXPECT_EQ(sink.ends, 1);
    EXPECT_EQ(sink.seen.size(), 6u);
    EXPECT_EQ(stats.points, 6u);
    EXPECT_EQ(stats.resumedPoints, 0u);
    EXPECT_EQ(stats.jobs, 3);
    EXPECT_EQ(sink.meta_.scenario, "sink-grid");
    EXPECT_EQ(sink.meta_.trialsPerPoint, 3);
    EXPECT_EQ(sink.meta_.baseSeed, 321u);
}

TEST(Sink, FailedSweepNeverEndsTheSink)
{
    ScenarioSpec spec;
    spec.name = "boom";
    spec.axes = {axis("x", {1.0, 2.0})};
    spec.run = [](const TrialContext &ctx) -> MetricMap {
        if (ctx.point.get("x") == 2.0)
            throw std::runtime_error("kaboom");
        return {{"m", 1.0}};
    };
    ContractSink sink;
    RunnerOptions opts;
    opts.jobs = 1;
    EXPECT_THROW(SweepRunner(opts).runStreaming(spec, sink),
                 std::runtime_error);
    EXPECT_EQ(sink.begins, 1);
    EXPECT_EQ(sink.ends, 0);
}

TEST(Sink, MaterializeSinkRebuildsTheLegacyResult)
{
    ScenarioSpec spec = rngSpec();
    RunnerOptions opts;
    opts.jobs = 1;
    SweepResult direct = SweepRunner(opts).run(spec);

    MaterializeSink sink;
    SweepRunner(opts).runStreaming(spec, sink);
    SweepResult streamed = sink.take();
    streamed.aggregates = aggregate(streamed.points, streamed.trials);

    EXPECT_EQ(jsonReport(direct), jsonReport(streamed));
    EXPECT_EQ(csvReport(direct), csvReport(streamed));
    EXPECT_EQ(textReport(direct), textReport(streamed));
}

TEST(Sink, MaterializeSinkIsCompletionOrderIndependent)
{
    SweepMeta meta;
    meta.scenario = "ooo";
    meta.baseSeed = 1;
    meta.trialsPerPoint = 1;
    meta.points.resize(3);

    auto rec = [](std::size_t idx) {
        TrialRecord r;
        r.pointIndex = idx;
        r.trial = 0;
        r.seed = 100 + idx;
        r.metrics["m"] = 1.0 * idx;
        return r;
    };

    MaterializeSink in_order;
    in_order.beginSweep(meta);
    for (std::size_t idx : {0u, 1u, 2u}) {
        TrialRecord r = rec(idx);
        in_order.acceptPoint(idx, &r, 1);
    }
    in_order.endSweep();

    MaterializeSink reversed;
    reversed.beginSweep(meta);
    for (std::size_t idx : {2u, 1u, 0u}) {
        TrialRecord r = rec(idx);
        reversed.acceptPoint(idx, &r, 1);
    }
    reversed.endSweep();

    SweepResult a = in_order.take();
    SweepResult b = reversed.take();
    ASSERT_EQ(a.trials.size(), b.trials.size());
    for (std::size_t i = 0; i < a.trials.size(); ++i) {
        EXPECT_EQ(a.trials[i].pointIndex, i);
        EXPECT_EQ(b.trials[i].pointIndex, i);
        EXPECT_EQ(bitsOf(a.trials[i].metrics.at("m")),
                  bitsOf(b.trials[i].metrics.at("m")));
    }
}

TEST(Sink, StreamingAggregatorIsBitIdenticalToSerialAggregate)
{
    ScenarioSpec spec = rngSpec();
    RunnerOptions opts;
    opts.jobs = 4; // points complete out of order under a pool
    MaterializeSink mat;
    StreamingAggregator agg;
    TeeSink tee({&mat, &agg});
    SweepRunner(opts).runStreaming(spec, tee);

    SweepResult result = mat.take();
    std::vector<PointAggregate> oracle =
        aggregate(result.points, result.trials);
    expectAggregatesBitEqual(agg.aggregates(), oracle);
    EXPECT_EQ(agg.completedPoints(), 6u);
    EXPECT_EQ(agg.metricNames(),
              std::vector<std::string>{"sum"});
}

TEST(Sink, StreamingPathMatchesAcrossJobCounts)
{
    ScenarioSpec spec = rngSpec();
    RunnerOptions serial;
    serial.jobs = 1;
    RunnerOptions parallel;
    parallel.jobs = 4;

    StreamingAggregator a;
    SweepRunner(serial).runStreaming(spec, a);
    StreamingAggregator b;
    SweepRunner(parallel).runStreaming(spec, b);
    expectAggregatesBitEqual(a.aggregates(), b.aggregates());
}

TEST(Sink, TeeForwardsEveryCallInOrder)
{
    ContractSink first;
    ContractSink second;
    TeeSink tee({&first, &second});

    SweepMeta meta;
    meta.scenario = "tee";
    meta.trialsPerPoint = 1;
    meta.points.resize(2);
    tee.beginSweep(meta);
    TrialRecord r;
    r.pointIndex = 1;
    r.trial = 0;
    tee.acceptPoint(1, &r, 1);
    tee.endSweep();

    for (const ContractSink *s : {&first, &second}) {
        EXPECT_EQ(s->begins, 1);
        EXPECT_EQ(s->ends, 1);
        EXPECT_EQ(s->seen, std::vector<std::size_t>{1});
    }
}

} // namespace
} // namespace exp
} // namespace ich
