/**
 * @file
 * Tests for the text-table emitter.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace ich
{
namespace
{

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"1"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2"});
    std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
}

TEST(Table, FmtFormatsPrecision)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

} // namespace
} // namespace ich
