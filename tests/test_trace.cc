/**
 * @file
 * Tests for Trace: query semantics (binary-search fast path vs the
 * legacy scan), and the columnar save/load path on the shared chunk
 * framing — bit-exact round trips, torn-tail prefix recovery, loud
 * rejection of corrupt or alien files.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "measure/trace.hh"
#include "state/chunkio.hh"

namespace ich
{
namespace
{

TEST(Trace, EmptyTraceDefaults)
{
    Trace t("x");
    EXPECT_EQ(t.size(), 0u);
    EXPECT_DOUBLE_EQ(t.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(t.meanValue(), 0.0);
    EXPECT_DOUBLE_EQ(t.valueAt(100), 0.0);
}

TEST(Trace, MinMaxMean)
{
    Trace t("x");
    t.add(0, 1.0);
    t.add(10, 3.0);
    t.add(20, 2.0);
    EXPECT_DOUBLE_EQ(t.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(t.maxValue(), 3.0);
    EXPECT_DOUBLE_EQ(t.meanValue(), 2.0);
}

TEST(Trace, ValueAtReturnsLastSampleBefore)
{
    Trace t("x");
    t.add(fromMicroseconds(10), 1.0);
    t.add(fromMicroseconds(20), 2.0);
    EXPECT_DOUBLE_EQ(t.valueAt(fromMicroseconds(5)), 0.0);
    EXPECT_DOUBLE_EQ(t.valueAt(fromMicroseconds(15)), 1.0);
    EXPECT_DOUBLE_EQ(t.valueAt(fromMicroseconds(25)), 2.0);
}

TEST(Trace, ToRowsDecimates)
{
    Trace t("x");
    for (int i = 0; i < 1000; ++i)
        t.add(fromMicroseconds(i), i);
    std::string rows = t.toRows(100);
    // ~100 rows of "time value".
    std::size_t lines = std::count(rows.begin(), rows.end(), '\n');
    EXPECT_GE(lines, 90u);
    EXPECT_LE(lines, 110u);
}

TEST(Trace, SortedValueAtMatchesTheLegacyScanEverywhere)
{
    // Duplicated timestamps and irregular spacing: the binary search
    // must return exactly what the historical linear scan returned.
    Trace t("x");
    std::vector<Time> times = {5, 5, 7, 20, 20, 20, 31, 90};
    for (std::size_t i = 0; i < times.size(); ++i)
        t.add(times[i], 1.0 + static_cast<double>(i));
    ASSERT_TRUE(t.sorted());

    auto legacy = [&](Time q) {
        double v = 0.0;
        for (const auto &p : t.points()) {
            if (p.time > q)
                break;
            v = p.value;
        }
        return v;
    };
    for (Time q = 0; q <= 95; ++q)
        EXPECT_DOUBLE_EQ(t.valueAt(q), legacy(q)) << "at t=" << q;
}

TEST(Trace, OutOfOrderSamplesKeepLegacySemantics)
{
    Trace t("x");
    t.add(20, 2.0);
    t.add(10, 1.0); // out of order: DAQ never does this, hand code can
    EXPECT_FALSE(t.sorted());
    // Historical scan stops at the first later sample.
    EXPECT_DOUBLE_EQ(t.valueAt(15), 0.0);
    EXPECT_DOUBLE_EQ(t.valueAt(25), 1.0);
}

TEST(Trace, ColumnarSaveLoadRoundTripsBitExactly)
{
    namespace fs = std::filesystem;
    std::string path =
        (fs::path(::testing::TempDir()) / "trace_roundtrip.trc").string();

    Trace t("vcc_core");
    t.add(0, -0.0);
    t.add(fromMicroseconds(1), 3.0e-310); // subnormal
    for (int i = 2; i < 500; ++i)
        t.add(fromMicroseconds(i), 0.731 + 1e-4 * i);
    t.saveColumnar(path);

    Trace loaded = Trace::loadColumnar(path);
    EXPECT_EQ(loaded.name(), "vcc_core");
    ASSERT_EQ(loaded.size(), t.size());
    EXPECT_TRUE(loaded.sorted());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(loaded.points()[i].time, t.points()[i].time);
        std::uint64_t a, b;
        std::memcpy(&a, &loaded.points()[i].value, sizeof a);
        std::memcpy(&b, &t.points()[i].value, sizeof b);
        EXPECT_EQ(a, b);
    }
    fs::remove(path);
}

TEST(Trace, ColumnarTornTailRecoversThePrefix)
{
    namespace fs = std::filesystem;
    std::string path =
        (fs::path(::testing::TempDir()) / "trace_torn.trc").string();

    Trace t("torn");
    for (int i = 0; i < 100; ++i)
        t.add(fromMicroseconds(i), 1.0 * i);
    t.saveColumnar(path);
    // Kill mid-append: a partial frame after the intact ones.
    {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f.write("ICKF\x02\x00\x00\x00", 8);
    }

    Trace loaded = Trace::loadColumnar(path);
    EXPECT_EQ(loaded.size(), 100u);

    fs::remove(path);
}

TEST(Trace, ColumnarCorruptionAndAlienFilesAreRejected)
{
    namespace fs = std::filesystem;
    std::string path =
        (fs::path(::testing::TempDir()) / "trace_corrupt.trc").string();

    Trace t("c");
    for (int i = 0; i < 10; ++i)
        t.add(fromMicroseconds(i), 1.0 * i);
    t.saveColumnar(path);
    {
        // Flip a byte inside the first frame's body: CRC must catch it.
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(14);
        char c = 0x7F;
        f.write(&c, 1);
    }
    EXPECT_THROW(Trace::loadColumnar(path), state::ArchiveError);

    // A chunk file whose header is not a trace header.
    state::ChunkFileWriter w;
    w.create(path, false);
    w.append(kTraceChunkHeader, {1, 2, 3, 4, 5, 6, 7, 8});
    w.close();
    EXPECT_THROW(Trace::loadColumnar(path), state::ArchiveError);

    EXPECT_THROW(Trace::loadColumnar(path + ".absent"),
                 state::ArchiveError);
    fs::remove(path);
}

} // namespace
} // namespace ich
