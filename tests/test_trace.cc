/**
 * @file
 * Tests for Trace.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "measure/trace.hh"

namespace ich
{
namespace
{

TEST(Trace, EmptyTraceDefaults)
{
    Trace t("x");
    EXPECT_EQ(t.size(), 0u);
    EXPECT_DOUBLE_EQ(t.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(t.meanValue(), 0.0);
    EXPECT_DOUBLE_EQ(t.valueAt(100), 0.0);
}

TEST(Trace, MinMaxMean)
{
    Trace t("x");
    t.add(0, 1.0);
    t.add(10, 3.0);
    t.add(20, 2.0);
    EXPECT_DOUBLE_EQ(t.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(t.maxValue(), 3.0);
    EXPECT_DOUBLE_EQ(t.meanValue(), 2.0);
}

TEST(Trace, ValueAtReturnsLastSampleBefore)
{
    Trace t("x");
    t.add(fromMicroseconds(10), 1.0);
    t.add(fromMicroseconds(20), 2.0);
    EXPECT_DOUBLE_EQ(t.valueAt(fromMicroseconds(5)), 0.0);
    EXPECT_DOUBLE_EQ(t.valueAt(fromMicroseconds(15)), 1.0);
    EXPECT_DOUBLE_EQ(t.valueAt(fromMicroseconds(25)), 2.0);
}

TEST(Trace, ToRowsDecimates)
{
    Trace t("x");
    for (int i = 0; i < 1000; ++i)
        t.add(fromMicroseconds(i), i);
    std::string rows = t.toRows(100);
    // ~100 rows of "time value".
    std::size_t lines = std::count(rows.begin(), rows.end(), '\n');
    EXPECT_GE(lines, 90u);
    EXPECT_LE(lines, 110u);
}

} // namespace
} // namespace ich
