/**
 * @file
 * Tests for the leveled logger.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

namespace ich
{
namespace
{

class LogTest : public ::testing::Test
{
  protected:
    void TearDown() override { Log::setLevel(LogLevel::kNone); }
};

TEST_F(LogTest, DefaultLevelIsNone)
{
    EXPECT_EQ(Log::level(), LogLevel::kNone);
}

TEST_F(LogTest, SetLevelRoundTrips)
{
    Log::setLevel(LogLevel::kTrace);
    EXPECT_EQ(Log::level(), LogLevel::kTrace);
    Log::setLevel(LogLevel::kWarn);
    EXPECT_EQ(Log::level(), LogLevel::kWarn);
}

TEST_F(LogTest, WriteBelowLevelIsSilentAndSafe)
{
    Log::setLevel(LogLevel::kNone);
    // Must not crash or emit when disabled.
    Log::write(LogLevel::kInfo, fromMicroseconds(10), "hidden");
    Log::setLevel(LogLevel::kInfo);
    Log::write(LogLevel::kInfo, fromMicroseconds(10), "shown");
    Log::write(LogLevel::kTrace, fromMicroseconds(10), "hidden too");
    SUCCEED();
}

} // namespace
} // namespace ich
