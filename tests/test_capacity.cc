/**
 * @file
 * Tests for the empirical channel-capacity estimator (Millen [72]).
 */

#include <gtest/gtest.h>

#include "channels/capacity.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"
#include "mitigations/mitigations.hh"

namespace ich
{
namespace
{

SymbolSamples
syntheticSamples(double separation, double jitter_steps)
{
    // Symbol s clusters at s*separation with small deterministic spread.
    SymbolSamples samples;
    for (int s = 0; s < kNumSymbols; ++s)
        for (int i = 0; i < 32; ++i)
            samples[s].push_back(s * separation +
                                 (i % 5) * jitter_steps);
    return samples;
}

TEST(Capacity, PerfectlySeparableGivesTwoBits)
{
    SymbolSamples samples = syntheticSamples(10.0, 0.1);
    double mi = CapacityEstimator::mutualInformationBits(samples);
    EXPECT_NEAR(mi, 2.0, 0.01);
}

TEST(Capacity, IdenticalDistributionsGiveZeroBits)
{
    SymbolSamples samples = syntheticSamples(0.0, 0.1);
    double mi = CapacityEstimator::mutualInformationBits(samples);
    EXPECT_NEAR(mi, 0.0, 0.05);
}

TEST(Capacity, DegenerateConstantGivesZero)
{
    SymbolSamples samples;
    for (int s = 0; s < kNumSymbols; ++s)
        samples[s].assign(8, 5.0);
    EXPECT_DOUBLE_EQ(
        CapacityEstimator::mutualInformationBits(samples), 0.0);
}

TEST(Capacity, OverlapReducesInformation)
{
    double clean = CapacityEstimator::mutualInformationBits(
        syntheticSamples(10.0, 0.1));
    // Step 0.5 with separation 1.0 makes adjacent symbols share exact
    // sample values: genuinely overlapping distributions.
    double noisy = CapacityEstimator::mutualInformationBits(
        syntheticSamples(1.0, 0.5));
    EXPECT_LT(noisy, clean);
    EXPECT_GT(noisy, 0.0);
}

TEST(Capacity, RejectsBadInput)
{
    SymbolSamples empty;
    empty[0].push_back(1.0); // others empty
    EXPECT_THROW(CapacityEstimator::mutualInformationBits(empty),
                 std::invalid_argument);
    EXPECT_THROW(CapacityEstimator::mutualInformationBits(
                     syntheticSamples(1.0, 0.1), 1),
                 std::invalid_argument);
}

TEST(Capacity, RealChannelCarriesNearTwoBits)
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 101;
    IccThreadCovert ch(cfg);
    SymbolSamples samples = CapacityEstimator::measure(ch, 16);
    double mi = CapacityEstimator::mutualInformationBits(samples, 48);
    EXPECT_GT(mi, 1.9);
    double bps =
        CapacityEstimator::capacityBps(samples, cfg.period, 48);
    EXPECT_GT(bps, 2600.0); // ≈ 2 bits / 710 us ≈ 2.8 kb/s
    EXPECT_LT(bps, 2900.0);
}

TEST(Capacity, SecureModeLeavesOnlyPowerGateResidue)
{
    // Secure mode kills the 2-bit intensity channel, but the ~10 ns AVX
    // power-gate wake-up still separates the one non-AVX symbol (00 =
    // 128b_Heavy) from the three AVX ones: at most H(1/4, 3/4) ≈ 0.811
    // bits survive — and only because our simulated receiver has no
    // timing-noise floor at the nanosecond scale.
    ChannelConfig cfg;
    cfg.chip = mitigations::withSecureMode(presets::cannonLake());
    cfg.seed = 102;
    IccThreadCovert ch(cfg);
    SymbolSamples samples = CapacityEstimator::measure(ch, 12);
    double mi = CapacityEstimator::mutualInformationBits(samples, 32);
    EXPECT_LT(mi, 0.85);

    // Disabling the AVX power gate removes the residue entirely.
    ChannelConfig no_pg = cfg;
    no_pg.chip.core.avxGate.present = false;
    IccThreadCovert ch2(no_pg);
    SymbolSamples s2 = CapacityEstimator::measure(ch2, 12);
    EXPECT_LT(CapacityEstimator::mutualInformationBits(s2, 32), 0.05);
}

TEST(Capacity, NoiseReducesCapacity)
{
    ChannelConfig clean_cfg;
    clean_cfg.chip = presets::cannonLake();
    clean_cfg.seed = 103;
    IccThreadCovert clean(clean_cfg);
    double mi_clean = CapacityEstimator::mutualInformationBits(
        CapacityEstimator::measure(clean, 12), 32);

    ChannelConfig noisy_cfg = clean_cfg;
    noisy_cfg.app.phiRatePerSec = 10000.0;
    noisy_cfg.noise.contextSwitchRatePerSec = 10000.0;
    IccThreadCovert noisy(noisy_cfg);
    double mi_noisy = CapacityEstimator::mutualInformationBits(
        CapacityEstimator::measure(noisy, 12), 32);
    EXPECT_LT(mi_noisy, mi_clean);
}

} // namespace
} // namespace ich
