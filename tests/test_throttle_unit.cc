/**
 * @file
 * Tests for the throttle unit (paper §5.6, Fig. 11, Key Conclusion 5 and
 * the §7 "Improved Core Throttling" mitigation).
 */

#include <gtest/gtest.h>

#include "cpu/throttle_unit.hh"

namespace ich
{
namespace
{

TEST(ThrottleUnit, UnthrottledHasFactorOne)
{
    ThrottleUnit tu(ThrottleConfig{});
    EXPECT_FALSE(tu.throttled());
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(0, InstClass::k256Heavy), 1.0);
    EXPECT_DOUBLE_EQ(tu.notDeliveredFraction(0, InstClass::k256Heavy),
                     0.0);
}

TEST(ThrottleUnit, ClassicThrottlingBlocksBothSmtThreads)
{
    ThrottleUnit tu(ThrottleConfig{});
    tu.assertThrottle(ThrottleReason::kVoltageRamp, /*initiator=*/0);
    // Key Conclusion 5: 1-of-4 delivery, shared IDQ interface.
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(0, InstClass::k256Heavy), 4.0);
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(1, InstClass::kScalar64), 4.0);
    EXPECT_DOUBLE_EQ(tu.notDeliveredFraction(1, InstClass::kScalar64),
                     0.75);
}

TEST(ThrottleUnit, DeassertRestoresFullSpeed)
{
    ThrottleUnit tu(ThrottleConfig{});
    tu.assertThrottle(ThrottleReason::kVoltageRamp, 0);
    tu.deassertThrottle(ThrottleReason::kVoltageRamp);
    EXPECT_FALSE(tu.throttled());
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(1, InstClass::kScalar64), 1.0);
}

TEST(ThrottleUnit, NestedAssertionsCount)
{
    ThrottleUnit tu(ThrottleConfig{});
    tu.assertThrottle(ThrottleReason::kVoltageRamp, 0);
    tu.assertThrottle(ThrottleReason::kVoltageRamp, 0);
    tu.deassertThrottle(ThrottleReason::kVoltageRamp);
    EXPECT_TRUE(tu.throttled());
    tu.deassertThrottle(ThrottleReason::kVoltageRamp);
    EXPECT_FALSE(tu.throttled());
}

TEST(ThrottleUnit, UnbalancedDeassertThrows)
{
    ThrottleUnit tu(ThrottleConfig{});
    EXPECT_THROW(tu.deassertThrottle(ThrottleReason::kVoltageRamp),
                 std::logic_error);
}

TEST(ThrottleUnit, ReasonsIndependent)
{
    ThrottleUnit tu(ThrottleConfig{});
    tu.assertThrottle(ThrottleReason::kPstate, 0);
    EXPECT_TRUE(tu.throttledFor(ThrottleReason::kPstate));
    EXPECT_FALSE(tu.throttledFor(ThrottleReason::kVoltageRamp));
    tu.deassertThrottle(ThrottleReason::kPstate);
    EXPECT_FALSE(tu.throttled());
}

TEST(ThrottleUnit, ImprovedThrottlingSparesSiblingThread)
{
    ThrottleConfig cfg;
    cfg.perThread = true;
    ThrottleUnit tu(cfg);
    tu.assertThrottle(ThrottleReason::kVoltageRamp, /*initiator=*/0);
    // §7: only the initiating thread's PHI uops are blocked.
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(0, InstClass::k256Heavy), 4.0);
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(1, InstClass::kScalar64), 1.0);
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(1, InstClass::k256Heavy), 1.0);
}

TEST(ThrottleUnit, ImprovedThrottlingSparesNonPhiUops)
{
    ThrottleConfig cfg;
    cfg.perThread = true;
    ThrottleUnit tu(cfg);
    tu.assertThrottle(ThrottleReason::kVoltageRamp, 0);
    // The initiating thread's non-PHI uops are not blocked either.
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(0, InstClass::kScalar64), 1.0);
}

TEST(ThrottleUnit, PstateHaltsEvenWithImprovedThrottling)
{
    ThrottleConfig cfg;
    cfg.perThread = true;
    ThrottleUnit tu(cfg);
    tu.assertThrottle(ThrottleReason::kPstate, 0);
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(1, InstClass::kScalar64), 4.0);
}

TEST(ThrottleUnit, WindowConfigControlsFactor)
{
    ThrottleConfig cfg;
    cfg.windowCycles = 8;
    ThrottleUnit tu(cfg);
    tu.assertThrottle(ThrottleReason::kVoltageRamp, 0);
    EXPECT_DOUBLE_EQ(tu.slowdownFactor(0, InstClass::k256Heavy), 8.0);
    EXPECT_DOUBLE_EQ(tu.notDeliveredFraction(0, InstClass::k256Heavy),
                     7.0 / 8.0);
}

} // namespace
} // namespace ich
