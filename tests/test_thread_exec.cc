/**
 * @file
 * Tests for the hardware-thread execution engine: exact loop timing,
 * step sequencing, rdtsc marks, chunk records, TSC waits, idle steps,
 * stall injection.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::kernelPicos;
using test::quietChip;

TEST(ThreadExec, LoopTakesExactUnthrottledTime)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    // 128b-heavy: a PHI-free-of-AVX-gate class, so no wake-up stall
    // blurs the analytic timing.
    p.loop(InstClass::k128Heavy, 100, 100); // 10100 cycles @1GHz
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    ASSERT_EQ(thr.records().size(), 2u);
    Time dur = thr.records()[1].time - thr.records()[0].time;
    Time expect = kernelPicos(makeKernel(InstClass::k128Heavy, 100, 100),
                              1.0);
    EXPECT_NEAR(static_cast<double>(dur), static_cast<double>(expect),
                2000.0); // within 2 ns of analytic
}

TEST(ThreadExec, ScalarLoopRunsAtIpc2)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loop(InstClass::kScalar64, 100, 100); // 51 cyc/iter
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    Time dur = thr.records()[1].time - thr.records()[0].time;
    EXPECT_NEAR(toMicroseconds(dur), 5.1, 0.01);
}

TEST(ThreadExec, StepsExecuteInOrder)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    int called = 0;
    Program p;
    p.mark(0);
    p.loop(InstClass::kScalar64, 10, 10);
    p.call([&] { called = 1; });
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_EQ(called, 1);
    EXPECT_TRUE(thr.done());
    ASSERT_EQ(thr.records().size(), 2u);
    EXPECT_LT(thr.records()[0].time, thr.records()[1].time);
}

TEST(ThreadExec, WaitUntilTscResumesOnTime)
{
    Simulation sim(quietChip(1.0));
    Chip &chip = sim.chip();
    HwThread &thr = chip.core(0).thread(0);
    Cycles target = static_cast<Cycles>(100.0 * chip.config().tscGhz *
                                        1e3); // 100 us
    Program p;
    p.waitUntilTsc(target);
    p.mark(0);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    ASSERT_EQ(thr.records().size(), 1u);
    EXPECT_NEAR(toMicroseconds(thr.records()[0].time), 100.0, 0.1);
    EXPECT_GE(thr.records()[0].tsc, target);
}

TEST(ThreadExec, IdleStepLastsExactly)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.idle(fromMicroseconds(42));
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    Time dur = thr.records()[1].time - thr.records()[0].time;
    EXPECT_NEAR(toMicroseconds(dur), 42.0, 0.01);
}

TEST(ThreadExec, ChunkRecordsEvenlySpaced)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loopChunked(InstClass::kScalar64, 1000, 100, /*tag=*/5, 20);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    // 1000/100 = 10 records; each chunk = 100 * 11 cycles = 1.1 us @1GHz.
    ASSERT_EQ(thr.records().size(), 10u);
    for (std::size_t i = 1; i < thr.records().size(); ++i) {
        Time gap = thr.records()[i].time - thr.records()[i - 1].time;
        EXPECT_NEAR(toMicroseconds(gap), 1.1, 0.02);
        EXPECT_EQ(thr.records()[i].tag, 5);
    }
    EXPECT_EQ(thr.records().back().iterationsDone, 1000u);
}

TEST(ThreadExec, StallDelaysProgress)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loop(InstClass::kScalar64, 1000, 100); // 51 us unthrottled
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    // Inject a 10 us stall mid-loop.
    sim.eq().schedule(fromMicroseconds(20), [&] {
        thr.stallFor(fromMicroseconds(10));
    });
    sim.run();
    Time dur = thr.records()[1].time - thr.records()[0].time;
    EXPECT_NEAR(toMicroseconds(dur), 61.0, 0.1);
}

TEST(ThreadExec, OverlappingStallsExtendNotAdd)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loop(InstClass::kScalar64, 1000, 100);
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.eq().schedule(fromMicroseconds(20), [&] {
        thr.stallFor(fromMicroseconds(10)); // until 30us
        thr.stallFor(fromMicroseconds(4));  // until 24us — subsumed
    });
    sim.run();
    Time dur = thr.records()[1].time - thr.records()[0].time;
    EXPECT_NEAR(toMicroseconds(dur), 61.0, 0.1);
}

TEST(ThreadExec, DoneAfterProgramAndRestartable)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_TRUE(thr.done());
    // Install and run a second program on the same thread.
    Program q;
    q.mark(1);
    thr.setProgram(std::move(q));
    EXPECT_FALSE(thr.started());
}

TEST(ThreadExec, ActiveNowReflectsStepKind)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::k256Heavy, 1000, 100); // ~101 us @1GHz
    p.idle(fromMicroseconds(50));
    thr.setProgram(std::move(p));
    thr.start();
    sim.eq().runUntil(fromMicroseconds(50));
    EXPECT_TRUE(thr.activeNow());
    EXPECT_EQ(thr.currentClass(), InstClass::k256Heavy);
    sim.eq().runUntil(fromMicroseconds(120));
    EXPECT_FALSE(thr.activeNow());
    EXPECT_FALSE(thr.currentClass().has_value());
}

TEST(ThreadExec, FrequencyScalesLoopDuration)
{
    for (double f : {1.0, 2.0}) {
        Simulation sim(quietChip(f));
        HwThread &thr = sim.chip().core(0).thread(0);
        Program p;
        p.mark(0);
        p.loop(InstClass::k256Heavy, 100, 100);
        p.mark(1);
        thr.setProgram(std::move(p));
        thr.start();
        sim.run();
        Time dur = thr.records()[1].time - thr.records()[0].time;
        EXPECT_NEAR(toMicroseconds(dur), 10.1 / f, 0.05);
    }
}

} // namespace
} // namespace ich
