/**
 * @file
 * Tests for Summary and Histogram.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace ich
{
namespace
{

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001); // sample stddev
}

TEST(Summary, QuantileInterpolates)
{
    Summary s;
    for (int i = 1; i <= 5; ++i)
        s.add(i); // 1..5
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Summary, QuantileAfterMoreAddsResorts)
{
    Summary s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);
    s.add(0.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndDensity)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 5; ++i)
        h.add(2.5);
    for (int i = 0; i < 5; ++i)
        h.add(7.5);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.binCount(2), 5u);
    EXPECT_EQ(h.binCount(7), 5u);
    EXPECT_DOUBLE_EQ(h.density(2), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binLo(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binHi(3), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, ToStringSkipsEmptyBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(1.5);
    std::string s = h.toString("label");
    EXPECT_NE(s.find("# label"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
}

} // namespace
} // namespace ich
