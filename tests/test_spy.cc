/**
 * @file
 * Instruction-class side-channel spy tests (paper §6.5).
 */

#include <gtest/gtest.h>

#include "channels/spy.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

ChannelConfig
baseConfig()
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 17;
    return cfg;
}

TEST(Spy, RejectsThreadVantage)
{
    EXPECT_THROW(InstructionSpy(baseConfig(), ChannelKind::kThread),
                 std::invalid_argument);
}

TEST(Spy, RejectsChipsWithoutResources)
{
    ChannelConfig cfg = baseConfig();
    cfg.chip = presets::coffeeLake(); // no SMT
    EXPECT_THROW(InstructionSpy(cfg, ChannelKind::kSmt),
                 std::invalid_argument);
    ChannelConfig one = baseConfig();
    one.chip.numCores = 1;
    EXPECT_THROW(InstructionSpy(one, ChannelKind::kCores),
                 std::invalid_argument);
}

TEST(Spy, SmtVantageInfersVictimLevels)
{
    InstructionSpy spy(baseConfig(), ChannelKind::kSmt);
    std::vector<InstClass> victim = {
        InstClass::k512Heavy, InstClass::kScalar64,
        InstClass::k256Heavy, InstClass::k128Heavy,
        InstClass::k256Light, InstClass::k512Heavy,
        InstClass::kScalar64, InstClass::k256Heavy,
    };
    SpyResult res = spy.observe(victim);
    ASSERT_EQ(res.inferredLevels.size(), victim.size());
    EXPECT_GE(res.levelAccuracy, 0.85);
}

TEST(Spy, CoresVantageInfersVictimLevels)
{
    InstructionSpy spy(baseConfig(), ChannelKind::kCores);
    std::vector<InstClass> victim = {
        InstClass::k256Heavy, InstClass::k512Heavy,
        InstClass::k128Heavy, InstClass::kScalar64,
        InstClass::k512Heavy, InstClass::k256Light,
    };
    SpyResult res = spy.observe(victim);
    EXPECT_GE(res.levelAccuracy, 0.80);
}

TEST(Spy, SharedLevelClassesIndistinguishable)
{
    // 256b-heavy and 512b-light share a guardband level: the spy sees
    // the *level*, not the exact class — inferred levels must match.
    InstructionSpy spy(baseConfig(), ChannelKind::kSmt);
    SpyResult res = spy.observe(
        {InstClass::k256Heavy, InstClass::k512Light});
    ASSERT_EQ(res.inferredLevels.size(), 2u);
    EXPECT_EQ(res.actualLevels[0], res.actualLevels[1]);
    EXPECT_EQ(res.inferredLevels[0], res.inferredLevels[1]);
}

TEST(Spy, ImprovedThrottlingBlindsSmtSpy)
{
    ChannelConfig cfg = baseConfig();
    cfg.chip.core.throttle.perThread = true;
    InstructionSpy spy(cfg, ChannelKind::kSmt);
    std::vector<InstClass> victim = {
        InstClass::k512Heavy, InstClass::kScalar64,
        InstClass::k256Heavy, InstClass::k128Heavy,
        InstClass::k512Heavy, InstClass::k256Light,
        InstClass::kScalar64, InstClass::k128Heavy,
        InstClass::k256Heavy, InstClass::k512Heavy,
    };
    SpyResult res = spy.observe(victim);
    // With no cross-thread signal the spy cannot beat chance by much.
    EXPECT_LT(res.levelAccuracy, 0.6);
}

} // namespace
} // namespace ich
