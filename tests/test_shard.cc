/**
 * @file
 * Tests for the multi-process sweep sharding subsystem (src/shard/):
 * the CRC-framed wire protocol must round-trip every message bit-exactly
 * and reject corruption loudly; the Maglev ring must balance warm keys
 * and move only a disabled worker's keys; and a sharded sweep must be
 * byte-identical to a serial in-process run — including when a worker
 * is killed -9 mid-sweep, and when the sweep resumes from a truncated
 * result store.
 *
 * This binary supplies its own main(): it doubles as the shard worker
 * (the coordinator fork/execs /proc/self/exe with --shard-worker), so
 * the scenario registry below is shared between the gtest process and
 * every spawned worker.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "chip/presets.hh"
#include "chip/simulation.hh"
#include "exp/exp.hh"
#include "shard/shard.hh"
#include "state/state.hh"

namespace ich
{
namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kWarmSeed = 0x5EEDu;

// ------------------------------------------------------- test scenarios

/** Pure-arithmetic trial: cheap, deterministic, and seed-sensitive. */
exp::MetricMap
mathTrial(const exp::TrialContext &ctx)
{
    double x = ctx.point.get("x");
    double y = ctx.point.get("y");
    std::uint64_t h = ctx.seed;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    exp::MetricMap m;
    m["mix"] = static_cast<double>(h >> 11) * 0x1p-42 + x * y;
    m["sum"] = x + y + static_cast<double>(ctx.trial);
    return m;
}

exp::ScenarioSpec
mathSpec()
{
    exp::ScenarioSpec spec;
    spec.name = "shard-math";
    spec.description = "arithmetic-only shard unit scenario";
    spec.axes = {
        exp::axis("x", {1.0, 2.0, 3.0, 4.0}),
        exp::axis("y", {0.5, 1.5, 2.5}),
    };
    spec.trials = 2;
    spec.baseSeed = 42;
    spec.run = mathTrial;
    return spec;
}

ChipConfig
chipFor(const std::string &label)
{
    ChipConfig cfg = label == "server" ? presets::skylakeServer()
                                       : presets::cannonLake();
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 1.4;
    return cfg;
}

/** The expensive part a warm snapshot amortizes: bursts + PDN settle. */
std::unique_ptr<Simulation>
warmChip(const std::string &label)
{
    auto sim = std::make_unique<Simulation>(chipFor(label), kWarmSeed);
    Program p;
    p.loop(InstClass::k256Heavy, 400, 100);
    HwThread &thr = sim->chip().core(0).thread(0);
    thr.setProgram(std::move(p));
    thr.start();
    sim->run(fromSeconds(0.2));
    state::quiesce(*sim);
    return sim;
}

/** Warm-forked probe trial: the SweepRunner contract, unchanged. */
exp::MetricMap
warmTrial(const exp::TrialContext &ctx)
{
    std::unique_ptr<Simulation> sim =
        ctx.warmSnapshot ? state::restore(*ctx.warmSnapshot)
                         : warmChip(ctx.point.label("chip"));
    sim->rng().seed(ctx.seed);

    std::uint64_t iters =
        static_cast<std::uint64_t>(ctx.point.get("probe_iters"));
    HwThread &thr = sim->chip().core(0).thread(0);
    Program p;
    p.mark(1);
    p.loop(InstClass::k256Heavy, iters, 100);
    p.mark(2);
    thr.setProgram(std::move(p));
    thr.start();
    sim->run(fromSeconds(0.5));

    const auto &recs = thr.records();
    exp::MetricMap m;
    m["probe_us"] = toMicroseconds(recs.back().time - recs.front().time);
    m["volts"] = sim->chip().vccVolts();
    return m;
}

/** Desktop + server presets sharing warm state per chip. */
exp::ScenarioSpec
warmSpec()
{
    exp::ScenarioSpec spec;
    spec.name = "shard-warm";
    spec.description = "warm-snapshot shard unit scenario";
    spec.axes = {
        exp::axisLabeled("chip", {"desktop", "server"}),
        exp::axis("probe_iters", {200.0, 400.0, 600.0}),
    };
    spec.trials = 2;
    spec.baseSeed = 7;
    spec.run = warmTrial;
    spec.warmup = [](const exp::ParamPoint &pt) {
        auto sim = warmChip(pt.label("chip"));
        return state::snapshot(*sim);
    };
    spec.warmupKey = [](const exp::ParamPoint &pt) {
        return pt.label("chip");
    };
    return spec;
}

/** A trial that deterministically throws on one grid point. */
exp::ScenarioSpec
errorSpec()
{
    exp::ScenarioSpec spec;
    spec.name = "shard-error";
    spec.description = "deterministic trial failure";
    spec.axes = {exp::axis("x", {1.0, 2.0, 3.0, 4.0})};
    spec.trials = 1;
    spec.baseSeed = 5;
    spec.run = [](const exp::TrialContext &ctx) {
        if (ctx.point.get("x") == 3.0)
            throw std::runtime_error("injected trial failure at x=3");
        exp::MetricMap m;
        m["x2"] = ctx.point.get("x") * 2.0;
        return m;
    };
    return spec;
}

/** Shared by the gtest process and every --shard-worker re-exec. */
const exp::ScenarioRegistry &
testRegistry()
{
    static const exp::ScenarioRegistry reg = [] {
        exp::ScenarioRegistry r;
        r.add(mathSpec());
        r.add(warmSpec());
        r.add(errorSpec());
        return r;
    }();
    return reg;
}

// --------------------------------------------------------------- helpers

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string &name)
        : path(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

std::string
serialJson(const exp::ScenarioSpec &spec)
{
    exp::RunnerOptions opts;
    opts.jobs = 1;
    return exp::jsonReport(exp::SweepRunner(opts).run(spec), true);
}

shard::ShardOptions
shardOpts(const TempDir &scratch, int workers = 2)
{
    shard::ShardOptions opts;
    opts.workers = workers;
    opts.scratchDir = (scratch.path / "scratch").string();
    return opts;
}

// -------------------------------------------------------------- protocol

TEST(ShardProtocol, MessagesRoundTripThroughTheDecoder)
{
    shard::HelloMsg hello;
    hello.scenario = "shard-math";
    hello.baseSeed = 0xDEADBEEFCAFEull;
    hello.trialsPerPoint = 3;
    hello.numPoints = 12;
    hello.gridFp = 0x1234567890ABCDEFull;

    shard::ResultMsg result;
    result.pointIndex = 7;
    exp::TrialRecord rec;
    rec.pointIndex = 7;
    rec.trial = 1;
    rec.seed = 99;
    rec.metrics["x"] = 0.1 + 0.2;
    rec.metrics["y"] = -0.0;
    rec.metrics["z"] = 3.0e-310; // subnormal
    result.trials = {rec, rec};

    shard::SnapshotMsg snap;
    snap.key = "wb-250";
    snap.bytes = {0x00, 0xFF, 0x41, 0x7E};

    // One stream carrying every message type, fed to the incremental
    // decoder in awkward 7-byte chunks (pipe reads are arbitrary).
    shard::Buffer stream;
    auto append = [&stream](shard::MsgType t, const shard::Buffer &p) {
        shard::Buffer f = shard::encodeFrame(t, p);
        stream.insert(stream.end(), f.begin(), f.end());
    };
    append(shard::MsgType::kHello, shard::encodeHello(hello));
    append(shard::MsgType::kHelloAck,
           shard::encodeHelloAck({4321, hello.gridFp}));
    append(shard::MsgType::kAssign, shard::encodeAssign({{11}}));
    append(shard::MsgType::kSnapshotPut, shard::encodeSnapshot(snap));
    append(shard::MsgType::kResult, shard::encodeResult(result));
    append(shard::MsgType::kHeartbeat, shard::encodeHeartbeat({5}));
    append(shard::MsgType::kShutdown, {});
    append(shard::MsgType::kWorkerError,
           shard::encodeError({"it broke"}));

    shard::FrameDecoder dec;
    std::vector<shard::Frame> frames;
    for (std::size_t i = 0; i < stream.size(); i += 7) {
        dec.feed(stream.data() + i, std::min<std::size_t>(7, stream.size() - i));
        shard::Frame f;
        while (dec.next(f))
            frames.push_back(f);
    }
    ASSERT_EQ(frames.size(), 8u);

    shard::HelloMsg h2 = shard::decodeHello(frames[0].payload);
    EXPECT_EQ(h2.scenario, hello.scenario);
    EXPECT_EQ(h2.baseSeed, hello.baseSeed);
    EXPECT_EQ(h2.trialsPerPoint, hello.trialsPerPoint);
    EXPECT_EQ(h2.numPoints, hello.numPoints);
    EXPECT_EQ(h2.gridFp, hello.gridFp);

    shard::HelloAckMsg a2 = shard::decodeHelloAck(frames[1].payload);
    EXPECT_EQ(a2.pid, 4321);
    EXPECT_EQ(a2.gridFp, hello.gridFp);

    shard::AssignMsg asg = shard::decodeAssign(frames[2].payload);
    ASSERT_EQ(asg.pointIndices.size(), 1u);
    EXPECT_EQ(asg.pointIndices[0], 11u);

    shard::SnapshotMsg s2 = shard::decodeSnapshot(frames[3].payload);
    EXPECT_EQ(s2.key, snap.key);
    EXPECT_EQ(s2.bytes, snap.bytes);

    shard::ResultMsg r2 = shard::decodeResult(frames[4].payload);
    EXPECT_EQ(r2.pointIndex, 7u);
    ASSERT_EQ(r2.trials.size(), 2u);
    const exp::MetricMap &m = r2.trials[0].metrics;
    EXPECT_EQ(r2.trials[0].seed, 99u);
    EXPECT_EQ(m.at("x"), 0.1 + 0.2);         // bit-exact, not approximate
    EXPECT_TRUE(std::signbit(m.at("y")));    // -0.0 survives
    EXPECT_EQ(m.at("z"), 3.0e-310);          // subnormal survives

    EXPECT_EQ(shard::decodeHeartbeat(frames[5].payload).pointIndex, 5u);
    EXPECT_EQ(frames[6].type, shard::MsgType::kShutdown);
    EXPECT_EQ(shard::decodeError(frames[7].payload).message, "it broke");
}

TEST(ShardProtocol, AssignBatchesRoundTrip)
{
    shard::AssignMsg m;
    m.pointIndices = {3, 0, 0xFFFFFFFFFFFFull, 7, 7};
    shard::AssignMsg back = shard::decodeAssign(shard::encodeAssign(m));
    EXPECT_EQ(back.pointIndices, m.pointIndices);

    shard::AssignMsg empty;
    EXPECT_TRUE(
        shard::decodeAssign(shard::encodeAssign(empty)).pointIndices
            .empty());
}

TEST(ShardProtocol, GarbledPayloadFailsTheCrc)
{
    shard::Buffer f =
        shard::encodeFrame(shard::MsgType::kAssign,
                           shard::encodeAssign({{3}}));
    f[shard::kFrameHeaderBytes] ^= 0x01; // flip one payload bit

    shard::FrameDecoder dec;
    dec.feed(f.data(), f.size());
    shard::Frame out;
    EXPECT_THROW(dec.next(out), shard::ProtocolError);
}

TEST(ShardProtocol, BadMagicAndOversizedLengthAreRejected)
{
    shard::Buffer good =
        shard::encodeFrame(shard::MsgType::kHeartbeat,
                           shard::encodeHeartbeat({1}));

    shard::Buffer bad_magic = good;
    bad_magic[0] ^= 0xFF;
    {
        shard::FrameDecoder dec;
        dec.feed(bad_magic.data(), bad_magic.size());
        shard::Frame out;
        EXPECT_THROW(dec.next(out), shard::ProtocolError);
    }

    shard::Buffer oversized = good;
    // payloadLen lives at bytes [8, 16); make it absurd.
    for (int i = 8; i < 16; ++i)
        oversized[static_cast<std::size_t>(i)] = 0xFF;
    {
        shard::FrameDecoder dec;
        dec.feed(oversized.data(), oversized.size());
        shard::Frame out;
        EXPECT_THROW(dec.next(out), shard::ProtocolError);
    }
}

TEST(ShardProtocol, TruncatedStreamNeedsMoreBytesButReadFrameThrows)
{
    shard::Buffer f =
        shard::encodeFrame(shard::MsgType::kAssign,
                           shard::encodeAssign({{9}}));

    // The incremental decoder treats a partial frame as "not yet".
    shard::FrameDecoder dec;
    dec.feed(f.data(), f.size() - 3);
    shard::Frame out;
    EXPECT_FALSE(dec.next(out));

    // The blocking reader sees the same bytes end in EOF: loud error.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], f.data(), f.size() - 3),
              static_cast<ssize_t>(f.size() - 3));
    ::close(fds[1]);
    EXPECT_THROW(shard::readFrame(fds[0]), shard::ProtocolError);
    ::close(fds[0]);
}

TEST(ShardProtocol, TruncatedPayloadFieldsAreBoundsChecked)
{
    shard::Buffer payload = shard::encodeHello({});
    payload.resize(payload.size() / 2);
    EXPECT_THROW(shard::decodeHello(payload), shard::ProtocolError);
}

// -------------------------------------------------------------- hash ring

TEST(ShardHashRing, BalancesSlotsAcrossWorkers)
{
    shard::HashRing ring(4);
    std::vector<int> owned(4, 0);
    for (std::uint32_t b : ring.table())
        ++owned.at(b);
    for (int n : owned) {
        EXPECT_GE(n, 60) << "Maglev table should be near-even";
        EXPECT_LE(n, 95);
    }
}

TEST(ShardHashRing, LookupIsDeterministicAcrossInstances)
{
    shard::HashRing a(4), b(4);
    for (int i = 0; i < 64; ++i) {
        std::string key = "warm-key-" + std::to_string(i);
        EXPECT_EQ(a.lookup(key), b.lookup(key));
    }
}

TEST(ShardHashRing, DisableMovesOnlyTheDisabledWorkersKeys)
{
    shard::HashRing ring(4);
    std::vector<std::pair<std::string, std::size_t>> before;
    for (int i = 0; i < 200; ++i) {
        std::string key = "k" + std::to_string(i);
        before.emplace_back(key, ring.lookup(key));
    }
    ring.disable(2);
    EXPECT_EQ(ring.enabledCount(), 3u);
    // Maglev disruption is minimal, not zero: on a rebuild a few percent
    // of the surviving workers' slots may move too. What matters for the
    // warm caches is that the bulk of keys stay put.
    int kept = 0, moved = 0, orphaned = 0;
    for (const auto &[key, owner] : before) {
        std::size_t now = ring.lookup(key);
        EXPECT_NE(now, 2u);
        if (owner == 2)
            ++orphaned;
        else if (now == owner)
            ++kept;
        else
            ++moved;
    }
    EXPECT_GT(orphaned, 0) << "fixture should cover the disabled worker";
    EXPECT_LT(moved, (kept + moved) / 5)
        << "far too many surviving keys moved on a single disable";
}

TEST(ShardHashRing, DisablingTheLastWorkerThrows)
{
    shard::HashRing ring(2);
    ring.disable(0);
    EXPECT_THROW(ring.disable(1), std::logic_error);
}

// ------------------------------------------------------------ end to end

TEST(ShardSweep, ByteIdenticalToSerialRun)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_math");
    exp::SweepResult sharded =
        shard::runSharded(spec, shardOpts(dir));
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

// Batching is a pure framing optimization: several points per kAssign
// frame must produce the same bytes as one per frame (which in turn
// matches the serial run).
TEST(ShardSweep, FixedAssignBatchIsByteIdentical)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_batch");
    shard::ShardOptions opts = shardOpts(dir);
    opts.assignBatch = 4;
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

// A worker killed partway through a batch loses at most the unreported
// batch: reassignment + scratch scavenging still converge on the same
// bytes.
TEST(ShardSweep, SurvivesAWorkerKilledMidBatch)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_batch_kill");
    shard::ShardOptions opts = shardOpts(dir);
    opts.assignBatch = 3;
    opts.testKillWorker0AfterUnits = 2; // dies starting its batch's 2nd
    opts.maxUnitAttempts = 5;
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

// The streaming front end: sharded completion order feeding a
// StreamingAggregator must still render byte-identical to a serial
// materialized run.
TEST(ShardSweep, StreamingShardedRunIsByteIdenticalToSerial)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_stream");
    exp::MaterializeSink mat;
    exp::StreamingAggregator agg;
    exp::TeeSink tee({&mat, &agg});
    exp::StreamStats stats =
        shard::runShardedStreaming(spec, shardOpts(dir), tee);
    exp::SweepResult streamed = mat.take();
    streamed.aggregates = agg.aggregates();
    EXPECT_EQ(stats.points, streamed.points.size());
    EXPECT_EQ(exp::jsonReport(streamed, true), serialJson(spec));
}

TEST(ShardSweep, WarmSweepIsByteIdenticalAndCleansItsScratch)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-warm");
    TempDir dir("shard_warm");
    shard::ShardOptions opts = shardOpts(dir);
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
    // Clean exit removes the per-run scratch tree (and the scratch root
    // itself when nothing else lives there).
    EXPECT_FALSE(fs::exists(opts.scratchDir));
}

TEST(ShardSweep, MoreWorkersThanWarmKeysStillByteIdentical)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-warm");
    TempDir dir("shard_warm3");
    exp::SweepResult sharded =
        shard::runSharded(spec, shardOpts(dir, 3));
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

TEST(ShardSweep, SurvivesAWorkerKilledMidSweep)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_kill");
    shard::ShardOptions opts = shardOpts(dir);
    // Worker 0 raise(SIGKILL)s while starting its 2nd unit, in every
    // incarnation, until its spawn budget disables the slot. Each
    // incarnation completes one unit first, so attempts spread across
    // units — but give the retry budget slack anyway: this test is
    // about reassignment, not about the abort threshold.
    opts.testKillWorker0AfterUnits = 2;
    opts.maxUnitAttempts = 5;
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

TEST(ShardSweep, TrialExceptionAbortsTheSweep)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-error");
    TempDir dir("shard_error");
    EXPECT_THROW(shard::runSharded(spec, shardOpts(dir)),
                 std::runtime_error);
}

// Heartbeat liveness under batching: workers heartbeat at every point
// start (not once per batch), so a tight stall timeout must not reap a
// healthy worker that is quietly grinding through a large batch.
TEST(ShardSweep, BatchedHealthyWorkersBeatATightStallTimeout)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_liveness");
    shard::ShardOptions opts = shardOpts(dir);
    opts.assignBatch = 4;       // several points per frame
    opts.stallTimeoutMs = 2000; // 15x tighter than the default
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

// A live-but-wedged worker emits no EOF, so only the stall watchdog can
// reap it. The scripted hang wedges worker 0 at its first point start;
// the watchdog must kill it and the respawn/reassign machinery must
// still converge byte-identically.
TEST(ShardSweep, StallWatchdogReapsAHungWorker)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_hang");
    shard::ShardOptions opts = shardOpts(dir);
    opts.stallTimeoutMs = 300;
    opts.maxUnitAttempts = 6;
    // Each respawn re-arms the plan, so every incarnation of slot 0
    // hangs again until the spawn budget disables the slot.
    opts.testWorker0FaultSpec =
        "site=shard.point-start:op=point:occ=1:fault=hang";
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

// The classic lost window: a worker dies after syncing its scratch
// store but before reporting results. Scavenging must recover the
// synced points without recomputing them into different bytes.
TEST(ShardSweep, SurvivesACrashBetweenScratchSyncAndResult)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_postsync");
    shard::ShardOptions opts = shardOpts(dir);
    opts.maxUnitAttempts = 6;
    opts.testWorker0FaultSpec =
        "site=shard.post-sync:op=point:occ=1:fault=crash";
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

// A result frame torn mid-write must fail the coordinator-side CRC or
// framing check, never deliver a half-decoded record; the unit is
// reassigned and the sweep converges.
TEST(ShardSweep, SurvivesATornResultFrame)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-math");
    TempDir dir("shard_tornframe");
    shard::ShardOptions opts = shardOpts(dir);
    opts.maxUnitAttempts = 6;
    opts.testWorker0FaultSpec =
        "seed=17;site=shard.result-frame:op=point:occ=1:fault=torn";
    exp::SweepResult sharded = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(sharded, true), serialJson(spec));
}

TEST(ShardSweep, ResumesFromATruncatedStoreByteIdentically)
{
    const exp::ScenarioSpec &spec = *testRegistry().find("shard-warm");
    TempDir dir("shard_resume");
    shard::ShardOptions opts = shardOpts(dir);
    opts.resumeDir = (dir.path / "out").string();

    std::string uninterrupted = serialJson(spec);
    exp::SweepResult first = shard::runSharded(spec, opts);
    EXPECT_EQ(exp::jsonReport(first, true), uninterrupted);

    // Keep only two completed points, as if the coordinator died.
    std::string mpath = exp::resultStorePath(opts.resumeDir, spec.name);
    exp::ResumeManifest m;
    ASSERT_TRUE(exp::loadManifest(mpath, m));
    while (m.points.size() > 2)
        m.points.erase(std::prev(m.points.end()));
    exp::writeManifest(mpath, m);

    exp::SweepResult resumed = shard::runSharded(spec, opts);
    EXPECT_EQ(resumed.resumedPoints, 2u);
    EXPECT_EQ(exp::jsonReport(resumed, true), uninterrupted);
}

} // namespace
} // namespace ich

/**
 * gtest needs a custom main here: when the coordinator re-execs this
 * binary with --shard-worker, harnessSetup turns the process into a
 * protocol worker against the test registry and returns its exit code.
 */
int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--shard-worker") {
            ich::exp::CliOptions cli;
            int rc = ich::exp::harnessSetup(argc, argv,
                                            ich::testRegistry(), cli);
            return rc >= 0 ? rc : 1;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
