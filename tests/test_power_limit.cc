/**
 * @file
 * Tests for the RAPL-style power limiter (PowerT substrate).
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "common/ticker.hh"
#include "pmu/power_limit.hh"

namespace ich
{
namespace
{

TEST(PowerLimiter, DisabledNeverEvaluates)
{
    EventQueue eq;
    Ticker ticker(eq);
    PowerLimitConfig cfg; // enabled = false
    PowerLimiter pl(ticker, cfg, {1.0, 2.0, 3.0}, [] { return 100.0; },
                    nullptr);
    eq.runUntil(fromMilliseconds(100));
    EXPECT_EQ(pl.evaluations(), 0u);
    EXPECT_DOUBLE_EQ(pl.capGhz(), 3.0);
}

TEST(PowerLimiter, OverBudgetLowersCapEachInterval)
{
    EventQueue eq;
    Ticker ticker(eq);
    PowerLimitConfig cfg;
    cfg.enabled = true;
    cfg.limitWatts = 10.0;
    cfg.evalInterval = fromMilliseconds(4);
    int changes = 0;
    PowerLimiter pl(ticker, cfg, {1.0, 2.0, 3.0}, [] { return 20.0; },
                    [&] { ++changes; });
    eq.runUntil(fromMilliseconds(4.5));
    EXPECT_DOUBLE_EQ(pl.capGhz(), 2.0);
    eq.runUntil(fromMilliseconds(8.5));
    EXPECT_DOUBLE_EQ(pl.capGhz(), 1.0);
    eq.runUntil(fromMilliseconds(20));
    EXPECT_DOUBLE_EQ(pl.capGhz(), 1.0); // floor
    EXPECT_EQ(changes, 2);
}

TEST(PowerLimiter, UnderBudgetRaisesCapWithHysteresis)
{
    EventQueue eq;
    Ticker ticker(eq);
    PowerLimitConfig cfg;
    cfg.enabled = true;
    cfg.limitWatts = 10.0;
    cfg.evalInterval = fromMilliseconds(4);
    cfg.raiseBelowFraction = 0.85;
    double power = 20.0;
    PowerLimiter pl(ticker, cfg, {1.0, 2.0, 3.0}, [&] { return power; },
                    nullptr);
    eq.runUntil(fromMilliseconds(4.5));
    ASSERT_DOUBLE_EQ(pl.capGhz(), 2.0);
    // 9 W is under the limit but above 0.85*10 => hold.
    power = 9.0;
    eq.runUntil(fromMilliseconds(8.5));
    EXPECT_DOUBLE_EQ(pl.capGhz(), 2.0);
    // 5 W is comfortably under => raise.
    power = 5.0;
    eq.runUntil(fromMilliseconds(12.5));
    EXPECT_DOUBLE_EQ(pl.capGhz(), 3.0);
}

TEST(PowerLimiter, EmptyBinsThrow)
{
    EventQueue eq;
    Ticker ticker(eq);
    EXPECT_THROW(PowerLimiter(ticker, PowerLimitConfig{}, {}, nullptr,
                              nullptr),
                 std::invalid_argument);
}

} // namespace
} // namespace ich
