/**
 * @file
 * Multi-Throttling-Cores tests (paper §4.3/§5.5): PHIs on two cores
 * within a few hundred cycles exacerbate each other's throttling
 * periods because the central PMU serializes voltage transitions; the
 * receiver's TP depends on the *sender's* class; per-core VRs remove
 * the effect.
 */

#include <gtest/gtest.h>

#include "mitigations/mitigations.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;

ChipConfig
cfg14()
{
    ChipConfig cfg = pinnedCannonLake(1.4);
    cfg.pmu.vr.commandJitter = 0;
    return cfg;
}

/**
 * Core 0 runs @p sender_cls at t=epoch; core 1 starts @p probe_cls
 * @p skew_ns later and times it. Returns the probe duration (µs).
 */
double
probeUs(const ChipConfig &cfg, InstClass sender_cls, InstClass probe_cls,
        double skew_ns)
{
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    double tsc_per_ns = cfg.tscGhz;
    Cycles epoch = static_cast<Cycles>(50000.0 * tsc_per_ns); // 50 us

    Program tx;
    tx.waitUntilTsc(epoch);
    tx.loop(sender_cls, 400, 100);

    Program rx;
    rx.waitUntilTsc(epoch + static_cast<Cycles>(skew_ns * tsc_per_ns));
    rx.mark(0);
    rx.loop(probe_cls, 100, 100);
    rx.mark(1);

    chip.core(0).thread(0).setProgram(std::move(tx));
    chip.core(1).thread(0).setProgram(std::move(rx));
    chip.core(0).thread(0).start();
    chip.core(1).thread(0).start();
    sim.run(fromMilliseconds(3));
    const auto &recs = chip.core(1).thread(0).records();
    return toMicroseconds(recs.at(1).time - recs.at(0).time);
}

TEST(CrossCore, ConcurrentPhiExtendsProbe)
{
    // Probe alone (sender runs scalar => no transition).
    double alone =
        probeUs(cfg14(), InstClass::kScalar64, InstClass::k128Heavy, 150);
    double with_sender =
        probeUs(cfg14(), InstClass::k512Heavy, InstClass::k128Heavy, 150);
    EXPECT_GT(with_sender, alone + 3.0);
}

TEST(CrossCore, ProbeTpReflectsSenderIntensity)
{
    double p128 =
        probeUs(cfg14(), InstClass::k128Heavy, InstClass::k128Heavy, 150);
    double p256l =
        probeUs(cfg14(), InstClass::k256Light, InstClass::k128Heavy, 150);
    double p256 =
        probeUs(cfg14(), InstClass::k256Heavy, InstClass::k128Heavy, 150);
    double p512 =
        probeUs(cfg14(), InstClass::k512Heavy, InstClass::k128Heavy, 150);
    EXPECT_LT(p128, p256l);
    EXPECT_LT(p256l, p256);
    EXPECT_LT(p256, p512);
    // Separation must exceed the paper's 2K-TSC-cycle decodability bar.
    EXPECT_GT(p256l - p128, 0.5);
}

TEST(CrossCore, EffectRequiresTemporalOverlap)
{
    // §4.3.1: the exacerbation happens when the PHIs land within a few
    // hundred cycles. If the receiver starts long after the sender's
    // transition settled, its TP no longer depends on the sender class.
    double near_512 =
        probeUs(cfg14(), InstClass::k512Heavy, InstClass::k128Heavy, 150);
    double far_512 = probeUs(cfg14(), InstClass::k512Heavy,
                             InstClass::k128Heavy, 100000); // 100 us
    double far_128 = probeUs(cfg14(), InstClass::k128Heavy,
                             InstClass::k128Heavy, 100000);
    EXPECT_GT(near_512, far_512 + 2.0);
    // Far probes: the sender's level is already granted (hysteresis),
    // so only the probe's own (constant) ramp shows.
    EXPECT_NEAR(far_512, far_128, 0.4);
}

TEST(CrossCore, SenderTpAlsoExacerbated)
{
    ChipConfig cfg = cfg14();
    // Sender alone.
    double solo = test::loopFromBaselineUs(cfg, InstClass::k256Heavy);
    // Sender with a concurrent receiver PHI on the other core.
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    Cycles epoch = static_cast<Cycles>(50000.0 * cfg.tscGhz);
    Program tx;
    tx.waitUntilTsc(epoch);
    tx.mark(0);
    tx.loop(InstClass::k256Heavy, 400, 100);
    tx.mark(1);
    Program rx;
    rx.waitUntilTsc(epoch + static_cast<Cycles>(150 * cfg.tscGhz));
    rx.loop(InstClass::k256Heavy, 400, 100);
    chip.core(0).thread(0).setProgram(std::move(tx));
    chip.core(1).thread(0).setProgram(std::move(rx));
    chip.core(0).thread(0).start();
    chip.core(1).thread(0).start();
    sim.run(fromMilliseconds(3));
    const auto &recs = chip.core(0).thread(0).records();
    double with_rx =
        toMicroseconds(recs.at(1).time - recs.at(0).time);
    EXPECT_GT(with_rx, solo + 2.0);
}

TEST(CrossCore, PerCoreVrEliminatesCrossCoreEffect)
{
    ChipConfig cfg = mitigations::withPerCoreVr(cfg14());
    cfg.pmu.vr.commandJitter = 0;
    double p128 =
        probeUs(cfg, InstClass::k128Heavy, InstClass::k128Heavy, 150);
    double p512 =
        probeUs(cfg, InstClass::k512Heavy, InstClass::k128Heavy, 150);
    // Independent rails: the probe's timing no longer depends on the
    // sender's class (§7, Table 1: full mitigation of IccCoresCovert).
    EXPECT_NEAR(p128, p512, 0.15);
}

TEST(CrossCore, VoltageIncludesBothCoresGuardbands)
{
    ChipConfig cfg = cfg14();
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    double v0 = chip.vccVolts();
    for (int c = 0; c < 2; ++c) {
        Program p;
        p.loop(InstClass::k256Heavy, 2000, 100);
        chip.core(c).thread(0).setProgram(std::move(p));
        chip.core(c).thread(0).start();
    }
    sim.eq().runUntil(fromMicroseconds(60));
    double gb1 = chip.pmu().guardbandModel().gbVolts(3, 1.4);
    // Fig. 6: per-core guardbands add on the shared rail.
    EXPECT_NEAR(chip.vccVolts() - v0, 2.0 * gb1, 1e-4);
}

} // namespace
} // namespace ich
