/**
 * @file
 * Fast-forward (inline Ticker pump) vs the legacy stepped PDN path.
 *
 * Simulation::setLegacyPdnEvents(true) restores the fully stepped
 * dispatch — every rate-group fire popped through the event queue — as
 * the byte-identity oracle for the fast-forward pump. The two paths
 * must agree on *everything observable*: end times, records, counters,
 * throttle/P-state/SVID statistics, delivered ticks, executed-event
 * counts, and snapshot bytes; and the pump must actually engage on the
 * PDN-heavy mixes it exists for (ffFires > 0). Skips must be
 * suppressed by non-tick events — throttle flips, VR completions,
 * decay checks — without the planner predicting anything.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "detect/detector.hh"
#include "state/state.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;
using test::quietChip;

/** Everything observable about one run. */
struct RunSig {
    std::vector<Record> records; ///< all threads, concatenated
    std::vector<std::uint64_t> counters;
    Time end = 0;
    std::uint64_t executed = 0;
    std::uint64_t ticks = 0;
    std::uint64_t throttleAsserts = 0;
    std::uint64_t pstates = 0;
    std::uint64_t voltageRequests = 0;
    std::uint64_t svidCompleted = 0;
    double tjC = 0.0;
    double volts = 0.0;
    double freq = 0.0;
};

void
collect(Simulation &sim, RunSig &sig)
{
    Chip &chip = sim.chip();
    sig.end = sim.eq().now();
    sig.executed = sim.eq().executedEvents();
    sig.ticks = chip.ticker().ticksDelivered();
    sig.pstates = chip.pmu().pstateTransitions();
    sig.voltageRequests = chip.pmu().voltageRequests();
    for (int d = 0; d < chip.pmu().numDomains(); ++d)
        sig.svidCompleted += chip.pmu().svid(d).completedTransactions();
    sig.tjC = chip.thermal().celsius();
    sig.volts = chip.vccVolts();
    sig.freq = chip.freqGhz();
    for (int c = 0; c < chip.coreCount(); ++c) {
        sig.throttleAsserts += chip.core(c).throttle().assertCount();
        for (int t = 0; t < chip.core(c).numThreads(); ++t) {
            const HwThread &thr = chip.core(c).thread(t);
            for (const Record &rec : thr.records())
                sig.records.push_back(rec);
            sig.counters.push_back(thr.counters().clkUnhalted());
            sig.counters.push_back(thr.counters().instRetired());
            sig.counters.push_back(thr.counters().idqUopsNotDelivered());
        }
    }
}

void
expectEqualSigs(const RunSig &a, const RunSig &b)
{
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.pstates, b.pstates);
    EXPECT_EQ(a.voltageRequests, b.voltageRequests);
    EXPECT_EQ(a.svidCompleted, b.svidCompleted);
    EXPECT_EQ(a.throttleAsserts, b.throttleAsserts);
    EXPECT_EQ(a.tjC, b.tjC);
    EXPECT_EQ(a.volts, b.volts);
    EXPECT_EQ(a.freq, b.freq);
    EXPECT_EQ(a.counters, b.counters);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].tag, b.records[i].tag) << "record " << i;
        EXPECT_EQ(a.records[i].tsc, b.records[i].tsc) << "record " << i;
        EXPECT_EQ(a.records[i].time, b.records[i].time) << "record " << i;
        EXPECT_EQ(a.records[i].iterationsDone,
                  b.records[i].iterationsDone)
            << "record " << i;
    }
}

/** PDN-heavy base: every periodic subsystem on the Ticker. */
ChipConfig
tickHeavy(double freq_ghz)
{
    ChipConfig cfg = pinnedCannonLake(freq_ghz);
    cfg.pmu.powerLimit.enabled = true;
    cfg.pmu.powerLimit.evalInterval = fromMicroseconds(200);
    cfg.pmu.governor.evalInterval = fromMicroseconds(50);
    cfg.thermal.sampleInterval = fromMicroseconds(20);
    return cfg;
}

/** Install a chunked loop of @p cls on (core, smt) and start it. */
void
startChunked(Simulation &sim, int core, int smt, InstClass cls,
             std::uint64_t iters, std::uint64_t every, int tag)
{
    HwThread &thr = sim.chip().core(core).thread(smt);
    Program p;
    p.mark(tag * 100);
    p.loopChunked(cls, iters, every, tag);
    p.mark(tag * 100 + 1);
    thr.setProgram(std::move(p));
    thr.start();
}

/**
 * Run @p setup once fast-forwarded, once stepped, and demand identical
 * observables. Also requires the pump to have engaged in the
 * fast-forward run and to have stayed off in the stepped run.
 */
void
expectFastForwardMatchesStepped(
    const ChipConfig &cfg, std::uint64_t seed,
    const std::function<void(Simulation &)> &setup, RunSig *out = nullptr)
{
    RunSig sigs[2];
    for (int legacy = 0; legacy < 2; ++legacy) {
        Simulation sim(cfg, seed);
        sim.setLegacyPdnEvents(legacy != 0);
        setup(sim);
        sim.run(fromSeconds(1.0));
        collect(sim, sigs[legacy]);
        if (legacy == 0)
            EXPECT_GT(sim.chip().ticker().ffFires(), 0u)
                << "pump never engaged on a PDN-heavy mix";
        else
            EXPECT_EQ(sim.chip().ticker().ffFires(), 0u);
    }
    expectEqualSigs(sigs[0], sigs[1]);
    if (out != nullptr)
        *out = sigs[0];
}

TEST(FastForward, PdnHeavyPhiLoopByteIdentical)
{
    // fig06-style: a PHI kernel provoking guardband up-transitions and
    // voltage-ramp throttling, under the full periodic mix.
    RunSig sig;
    expectFastForwardMatchesStepped(
        tickHeavy(2.0), 7,
        [](Simulation &sim) {
            startChunked(sim, 0, 0, InstClass::k512Heavy, 4000, 10, 1);
        },
        &sig);
    EXPECT_GT(sig.throttleAsserts, 0u);
    EXPECT_GT(sig.svidCompleted, 0u);
}

TEST(FastForward, CrossCorePhiByteIdentical)
{
    // fig09-style: concurrent PHIs on both cores serialize through the
    // shared SVID bus (Multi-Throttling-Cores) while the pump runs.
    RunSig sig;
    expectFastForwardMatchesStepped(
        tickHeavy(2.0), 11,
        [](Simulation &sim) {
            startChunked(sim, 0, 0, InstClass::k512Heavy, 3000, 10, 1);
            startChunked(sim, 1, 0, InstClass::k256Heavy, 6000, 10, 2);
        },
        &sig);
    EXPECT_GT(sig.voltageRequests, 1u);
}

TEST(FastForward, ThrottleFlipsMidSkipByteIdentical)
{
    // fig07-style: a tight RAPL budget flips the frequency cap back and
    // forth, so P-state transitions repeatedly interrupt the tick runs
    // the pump would otherwise skip through.
    ChipConfig cfg = tickHeavy(3.0);
    cfg.pmu.powerLimit.limitWatts = 4.0;
    RunSig sig;
    expectFastForwardMatchesStepped(
        cfg, 13,
        [](Simulation &sim) {
            startChunked(sim, 0, 0, InstClass::k512Heavy, 6000, 10, 1);
            startChunked(sim, 1, 0, InstClass::k512Heavy, 6000, 10, 2);
        },
        &sig);
    EXPECT_GT(sig.pstates, 1u);
}

TEST(FastForward, DetectorBankAttachedByteIdentical)
{
    // A DetectorBank rides the Ticker (transient members): its samples
    // are delivered by the inline pump too, and its verdict must not
    // depend on the dispatch mechanism.
    exp::MetricMap metrics[2];
    RunSig sigs[2];
    for (int legacy = 0; legacy < 2; ++legacy) {
        Simulation sim(tickHeavy(2.0), 17);
        sim.setLegacyPdnEvents(legacy != 0);
        detect::DetectorBank bank(sim.chip(), detect::DetectConfig{});
        startChunked(sim, 0, 0, InstClass::k512Heavy, 4000, 10, 1);
        sim.run(fromSeconds(1.0));
        collect(sim, sigs[legacy]);
        metrics[legacy] = bank.metrics();
        if (legacy == 0) {
            EXPECT_GT(sim.chip().ticker().ffFires(), 0u);
        }
    }
    expectEqualSigs(sigs[0], sigs[1]);
    EXPECT_EQ(metrics[0], metrics[1]);
}

TEST(FastForward, SnapshotBytesIdenticalAcrossModes)
{
    // The pump credits executed events and burns insertion sequences
    // exactly as the stepped path does, so a quiesced fast-forward run
    // must serialize byte-for-byte like its stepped twin.
    state::Buffer snaps[2];
    for (int legacy = 0; legacy < 2; ++legacy) {
        Simulation sim(tickHeavy(2.0), 19);
        sim.setLegacyPdnEvents(legacy != 0);
        startChunked(sim, 0, 0, InstClass::k256Heavy, 3000, 10, 1);
        sim.run(fromSeconds(1.0));
        state::quiesce(sim);
        snaps[legacy] = state::snapshot(sim);
    }
    ASSERT_EQ(snaps[0].size(), snaps[1].size());
    EXPECT_EQ(snaps[0], snaps[1]);
}

TEST(FastForward, SnapshotRestoreMidHorizonByteIdentical)
{
    // Snapshot mid-run — tick groups armed, decay timers pending — and
    // demand the restored sim continues byte-identically under the
    // pump, and that a stepped continuation agrees too.
    ChipConfig cfg = tickHeavy(2.0);
    Simulation original(cfg, 23);
    startChunked(original, 0, 0, InstClass::k256Heavy, 3000, 10, 1);
    original.run(fromSeconds(1.0));
    state::quiesce(original);
    EXPECT_GT(original.chip().ticker().ffFires(), 0u);

    state::Buffer snap = state::snapshot(original);
    std::unique_ptr<Simulation> restored = state::restore(snap);
    std::unique_ptr<Simulation> stepped = state::restore(snap);
    stepped->setLegacyPdnEvents(true);

    RunSig cont[3];
    Simulation *sims[3] = {&original, restored.get(), stepped.get()};
    for (int i = 0; i < 3; ++i) {
        startChunked(*sims[i], 0, 0, InstClass::k512Heavy, 2500, 10, 2);
        sims[i]->runFor(fromMilliseconds(2));
        collect(*sims[i], cont[i]);
    }
    expectEqualSigs(cont[0], cont[1]);
    expectEqualSigs(cont[0], cont[2]);
}

TEST(FastForward, RunForPumpsByteIdentical)
{
    // runFor() (the duration-bounded entry used by figure harnesses and
    // detector campaigns) must pump identically to its stepped twin,
    // including the final partial span up to an off-grid cut time.
    RunSig sigs[2];
    const Time cut = fromMicroseconds(731); // not a multiple of any rate
    for (int legacy = 0; legacy < 2; ++legacy) {
        Simulation sim(tickHeavy(2.0), 29);
        sim.setLegacyPdnEvents(legacy != 0);
        startChunked(sim, 0, 0, InstClass::k512Heavy, 50000, 10, 1);
        sim.runFor(cut);
        EXPECT_EQ(sim.eq().now(), cut);
        collect(sim, sigs[legacy]);
        if (legacy == 0) {
            EXPECT_GT(sim.chip().ticker().ffFires(), 0u);
        }
    }
    expectEqualSigs(sigs[0], sigs[1]);
}

TEST(FastForward, InterestingTimeQueries)
{
    // Quiet chip, no periodic subsystems: nothing is committed.
    Simulation quiet(quietChip(1.4), 31);
    EXPECT_EQ(quiet.chip().nextInterestingTime(), kTimeNever);

    // Tick-heavy chip: the earliest armed group is the thermal sampler.
    Simulation sim(tickHeavy(2.0), 31);
    EXPECT_EQ(sim.chip().ticker().nextGroupDue(), fromMicroseconds(20));
    EXPECT_EQ(sim.chip().nextInterestingTime(), fromMicroseconds(20));

    // A PHI start commits a VR transaction and a decay deadline; the
    // SVID completion must be reported and must match the VR's.
    CentralPmu &pmu = sim.chip().pmu();
    startChunked(sim, 0, 0, InstClass::k512Heavy, 4000, 10, 1);
    sim.runFor(fromNanoseconds(100));
    ASSERT_TRUE(pmu.svid(0).busy());
    Time vr_done = pmu.svid(0).vr().nextInterestingTime();
    EXPECT_NE(vr_done, kTimeNever);
    EXPECT_EQ(pmu.svid(0).nextInterestingTime(), vr_done);
    EXPECT_LE(pmu.nextInterestingTime(), vr_done);
    EXPECT_LE(sim.chip().nextInterestingTime(), vr_done);
    // Whatever the chip reports next is a real queued event: the pump
    // can never fire a tick past it.
    EXPECT_GE(sim.chip().nextInterestingTime(), sim.eq().now());

    // Closed-form grid queries.
    const PowerLimitConfig &pl = sim.chip().pmu().config().powerLimit;
    ASSERT_TRUE(pl.enabled);
    EXPECT_EQ(sim.chip().thermal().nextSampleAfter(fromMicroseconds(20)),
              fromMicroseconds(40));
    PowerLimitConfig off;
    (void)off; // default disabled
    ThermalModel lazy{ThermalConfig{}};
    EXPECT_EQ(lazy.nextSampleAfter(0), kTimeNever);
}

TEST(FastForward, PlannerCountsSpansAndSuppressions)
{
    Simulation sim(tickHeavy(2.0), 37);
    startChunked(sim, 0, 0, InstClass::k512Heavy, 4000, 10, 1);
    sim.run(fromSeconds(1.0));
    const HorizonPlanner &planner = sim.chip().planner();
    EXPECT_GT(planner.fires(), 0u);
    EXPECT_GT(planner.spans(), 0u);
    // Every non-tick dispatch in run() counts as a suppressed skip —
    // VR completions, decay checks, chunk boundaries all occurred.
    EXPECT_GT(planner.suppressions(), 0u);
    EXPECT_EQ(planner.fires(), sim.chip().ticker().ffFires());
}

} // namespace
} // namespace ich
