/**
 * @file
 * Tests for the DAQ sampler (the NI-DAQ stand-in, Fig. 5).
 */

#include <gtest/gtest.h>

#include "measure/daq.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

using test::quietChip;

TEST(Daq, RejectsZeroInterval)
{
    EventQueue eq;
    Ticker ticker(eq);
    EXPECT_THROW(Daq(ticker, 0), std::invalid_argument);
}

TEST(Daq, SamplesAtRequestedRate)
{
    EventQueue eq;
    Ticker ticker(eq);
    Daq daq(ticker, fromMicroseconds(10));
    int ch = daq.addChannel("const", [] { return 1.5; });
    daq.start(fromMicroseconds(100));
    eq.runUntil(fromMicroseconds(200));
    // Samples at t = 0,10,...,100 => 11 points.
    EXPECT_EQ(daq.trace(ch).size(), 11u);
    EXPECT_DOUBLE_EQ(daq.trace(ch).meanValue(), 1.5);
    EXPECT_FALSE(daq.running());
}

TEST(Daq, MultiChannelSampling)
{
    EventQueue eq;
    Ticker ticker(eq);
    Daq daq(ticker, fromMicroseconds(5));
    daq.addChannel("a", [] { return 1.0; });
    daq.addChannel("b", [&eq] { return toMicroseconds(eq.now()); });
    daq.start(fromMicroseconds(50));
    eq.runUntil(fromMicroseconds(60));
    EXPECT_EQ(daq.channels(), 2);
    EXPECT_DOUBLE_EQ(daq.trace("a").meanValue(), 1.0);
    EXPECT_DOUBLE_EQ(daq.trace("b").maxValue(), 50.0);
    EXPECT_THROW(daq.trace("missing"), std::out_of_range);
}

TEST(Daq, StopHaltsSampling)
{
    EventQueue eq;
    Ticker ticker(eq);
    Daq daq(ticker, fromMicroseconds(10));
    int ch = daq.addChannel("x", [] { return 0.0; });
    daq.start(fromSeconds(1));
    eq.runUntil(fromMicroseconds(35));
    daq.stop();
    auto n = daq.trace(ch).size();
    eq.runUntil(fromMicroseconds(500));
    EXPECT_EQ(daq.trace(ch).size(), n);
}

TEST(Daq, CapturesChipVoltageTransient)
{
    ChipConfig cfg = test::pinnedCannonLake(1.4);
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    Daq daq(sim.chip().ticker(), fromNanoseconds(286)); // ~3.5 MS/s (NI-PCIe-6376)
    int ch = daq.addChannel("vcc", [&] { return chip.vccVolts(); });
    daq.start(fromMicroseconds(40));
    Program p;
    p.loop(InstClass::k512Heavy, 400, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.run(fromMicroseconds(45));
    const Trace &t = daq.trace(ch);
    EXPECT_GT(t.maxValue(), t.minValue()); // ramp captured
    EXPECT_GT(t.size(), 100u);
}

} // namespace
} // namespace ich
