/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef ICH_TESTS_TEST_UTIL_HH
#define ICH_TESTS_TEST_UTIL_HH

#include "chip/presets.hh"
#include "chip/simulation.hh"

namespace ich
{
namespace test
{

/** Cannon Lake pinned to a fixed frequency (the paper's PoC setup). */
inline ChipConfig
pinnedCannonLake(double freq_ghz = 1.4)
{
    ChipConfig cfg = presets::cannonLake();
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = freq_ghz;
    return cfg;
}

/**
 * A chip where power management never interferes with execution timing
 * (secure mode pins the guardband; no transitions, no throttling) —
 * for pure execution-model tests.
 */
inline ChipConfig
quietChip(double freq_ghz = 1.4, int smt = 2)
{
    ChipConfig cfg = pinnedCannonLake(freq_ghz);
    cfg.pmu.secureMode = true;
    cfg.pmu.vr.commandJitter = 0;
    cfg.core.smtThreads = smt;
    // Neutralize turbo licenses too: execution-model tests must see no
    // power-management interference at any pinned frequency.
    double top = cfg.pmu.pstate.binsGhz.back();
    cfg.pmu.pstate.licenseMaxGhz = {top, top, top};
    return cfg;
}

/** Expected unthrottled duration of a kernel at @p freq_ghz, in ps. */
inline Time
kernelPicos(const Kernel &k, double freq_ghz)
{
    return static_cast<Time>(k.totalCycles() * cyclePicos(freq_ghz));
}

/**
 * Measured duration (µs) of a probe loop of @p probe executed right
 * after a loop of @p prelude on core 0 / SMT 0 (the Fig. 10b setup).
 * The chip starts from baseline voltage.
 */
inline double
probeAfterUs(const ChipConfig &cfg, InstClass prelude, InstClass probe,
             std::uint64_t prelude_iters = 400,
             std::uint64_t probe_iters = 100, std::uint64_t seed = 1)
{
    Simulation sim(cfg, seed);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(prelude, prelude_iters, 100);
    p.mark(0);
    p.loop(probe, probe_iters, 100);
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    const auto &recs = thr.records();
    return toMicroseconds(recs.at(1).time - recs.at(0).time);
}

/**
 * Measured duration (µs) of a single loop of @p cls from baseline on
 * core 0 / SMT 0 (the Fig. 10a setup, one core).
 */
inline double
loopFromBaselineUs(const ChipConfig &cfg, InstClass cls,
                   std::uint64_t iters = 400, std::uint64_t seed = 1)
{
    Simulation sim(cfg, seed);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loop(cls, iters, 100);
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    const auto &recs = thr.records();
    return toMicroseconds(recs.at(1).time - recs.at(0).time);
}

/**
 * Throttling-period estimate (µs) for a loop of @p cls from baseline:
 * measured time minus unthrottled time. While throttled the loop still
 * progresses at 1/4 rate, so this equals 3/4 of the raw throttle window
 * — a fixed scale factor that preserves ordering and level separation.
 */
inline double
throttlePeriodUs(const ChipConfig &cfg, InstClass cls, double freq_ghz,
                 std::uint64_t iters = 400, std::uint64_t seed = 1)
{
    double measured = loopFromBaselineUs(cfg, cls, iters, seed);
    double nominal =
        toMicroseconds(kernelPicos(makeKernel(cls, iters, 100), freq_ghz));
    return measured - nominal;
}

} // namespace test
} // namespace ich

#endif // ICH_TESTS_TEST_UTIL_HH
