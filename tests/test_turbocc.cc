/**
 * @file
 * TurboCC baseline tests (paper §3, §6.2): a working but slow cross-core
 * frequency channel (~61 b/s), and the Key Conclusion 2 evidence that
 * the frequency drop is current-driven, not thermal.
 */

#include <gtest/gtest.h>

#include "baselines/turbocc.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

TurboCCConfig
baseConfig()
{
    TurboCCConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 23;
    return cfg;
}

TEST(TurboCC, RoundTripErrorFree)
{
    TurboCC tc(baseConfig());
    BitVec bits = {1, 0, 1, 1, 0, 1};
    TransmitResult res = tc.transmit(bits);
    EXPECT_EQ(res.receivedBits, bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(TurboCC, ThroughputNearPaperValue)
{
    // Fig. 12b: TurboCC ≈ 61 b/s.
    TurboCC tc(baseConfig());
    EXPECT_GT(tc.ratedThroughputBps(), 45.0);
    EXPECT_LT(tc.ratedThroughputBps(), 80.0);
}

TEST(TurboCC, FrequencyDropIsNotThermal)
{
    // Key Conclusion 2: the license-driven frequency drop happens while
    // the junction temperature is far below Tjmax.
    ChipConfig cfg = presets::cannonLake();
    cfg.pmu.governor.policy = GovernorPolicy::kPerformance;
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    Program p;
    p.loop(InstClass::k256Heavy, 100000, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMilliseconds(2));
    EXPECT_LT(chip.freqGhz(), cfg.pmu.pstate.binsGhz.back());
    EXPECT_LT(chip.tjCelsius(),
              chip.thermal().config().tjMaxCelsius - 20.0);
}

TEST(TurboCC, FrequencyRestoresAfterLicenseRelease)
{
    ChipConfig cfg = presets::cannonLake();
    cfg.pmu.governor.policy = GovernorPolicy::kPerformance;
    Simulation sim(cfg);
    Chip &chip = sim.chip();
    double f_max = chip.freqGhz();
    Program p;
    p.loop(InstClass::k256Heavy, 50000, 100); // ~2 ms at lic1 freq
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMilliseconds(3));
    EXPECT_LT(chip.freqGhz(), f_max);
    // Decay (650 us) + license release delay (~12 ms) later: restored.
    sim.eq().runUntil(fromMilliseconds(25));
    EXPECT_NEAR(chip.freqGhz(), f_max, 1e-9);
}

} // namespace
} // namespace ich
