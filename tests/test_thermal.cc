/**
 * @file
 * Tests for the RC thermal model, including the Key Conclusion 2
 * timescale separation: thermals move in seconds, throttling in
 * microseconds.
 */

#include <gtest/gtest.h>

#include "thermal/thermal_model.hh"

namespace ich
{
namespace
{

TEST(Thermal, StartsAtAmbient)
{
    ThermalConfig cfg;
    ThermalModel tm(cfg);
    EXPECT_DOUBLE_EQ(tm.celsius(), cfg.ambientCelsius);
    EXPECT_FALSE(tm.overTjMax());
}

TEST(Thermal, ConvergesToSteadyState)
{
    ThermalConfig cfg;
    cfg.ambientCelsius = 35.0;
    cfg.rThermal = 1.4;
    cfg.cThermal = 2.0;
    ThermalModel tm(cfg);
    double watts = 18.0;
    double t_inf = 35.0 + watts * 1.4; // 60.2 C
    tm.update(fromSeconds(60.0), watts);
    EXPECT_NEAR(tm.celsius(), t_inf, 0.1);
}

TEST(Thermal, MicrosecondPowerBurstBarelyMovesTemperature)
{
    // Key Conclusion 2: a PHI burst of tens of microseconds cannot be a
    // thermal event — temperature rises by millidegrees at most.
    ThermalModel tm(ThermalConfig{});
    tm.update(fromMicroseconds(50), 30.0);
    EXPECT_LT(tm.celsius() - 35.0, 0.01);
}

TEST(Thermal, MonotoneRiseUnderConstantPower)
{
    ThermalModel tm(ThermalConfig{});
    double prev = tm.celsius();
    for (int s = 1; s <= 5; ++s) {
        tm.update(fromSeconds(s), 20.0);
        EXPECT_GT(tm.celsius(), prev);
        prev = tm.celsius();
    }
}

TEST(Thermal, CoolsBackTowardAmbient)
{
    ThermalModel tm(ThermalConfig{});
    tm.update(fromSeconds(20), 25.0);
    double hot = tm.celsius();
    tm.update(fromSeconds(60), 0.0);
    EXPECT_LT(tm.celsius(), hot);
    EXPECT_NEAR(tm.celsius(), 35.0, 1.0);
}

TEST(Thermal, TypicalClientLoadStaysFarBelowTjmax)
{
    // Fig. 7b: junction temperature sits near 60 C while Tjmax is 100 C.
    ThermalModel tm(ThermalConfig{});
    tm.update(fromSeconds(120), 18.0);
    EXPECT_GT(tm.celsius(), 55.0);
    EXPECT_LT(tm.celsius(), 65.0);
    EXPECT_FALSE(tm.overTjMax());
}

TEST(Thermal, NonAdvancingUpdateKeepsState)
{
    ThermalModel tm(ThermalConfig{});
    tm.update(fromSeconds(10), 20.0);
    double t = tm.celsius();
    tm.update(fromSeconds(10), 99.0); // same timestamp: no integration
    EXPECT_DOUBLE_EQ(tm.celsius(), t);
}

} // namespace
} // namespace ich
