/**
 * @file
 * Execution-engine edge cases: degenerate programs, boundary kernel
 * sizes, restarts, stalls on inactive threads.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::quietChip;

TEST(EngineEdges, EmptyProgramCompletesImmediately)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    thr.setProgram(Program{});
    thr.start();
    EXPECT_TRUE(thr.done());
    sim.run();
    EXPECT_EQ(thr.records().size(), 0u);
}

TEST(EngineEdges, ZeroIterationLoopIsInstant)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loop(InstClass::k256Heavy, 0, 100);
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    ASSERT_EQ(thr.records().size(), 2u);
    EXPECT_LE(thr.records()[1].time - thr.records()[0].time,
              fromNanoseconds(20)); // at most a PG wake-up
}

TEST(EngineEdges, SingleIterationLoop)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loop(InstClass::k128Heavy, 1, 100); // 101 cycles @1 GHz
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    Time dur = thr.records()[1].time - thr.records()[0].time;
    EXPECT_NEAR(toNanoseconds(dur), 101.0, 1.5);
}

TEST(EngineEdges, MarksOnlyProgram)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    for (int i = 0; i < 5; ++i)
        p.mark(i);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    ASSERT_EQ(thr.records().size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(thr.records()[i].tag, i);
}

TEST(EngineEdges, WaitUntilPastTscCompletesImmediately)
{
    Simulation sim(quietChip(1.0));
    sim.eq().runUntil(fromMicroseconds(100));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.waitUntilTsc(1); // long in the past
    p.mark(0);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run(fromMicroseconds(200));
    ASSERT_EQ(thr.records().size(), 1u);
    EXPECT_NEAR(toMicroseconds(thr.records()[0].time), 100.0, 0.1);
}

TEST(EngineEdges, StallOnIdleThreadHarmless)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.idle(fromMicroseconds(50));
    p.mark(0);
    thr.setProgram(std::move(p));
    thr.start();
    sim.eq().schedule(fromMicroseconds(10), [&] {
        thr.stallFor(fromMicroseconds(5)); // during the idle step
    });
    sim.run();
    // Idle duration unaffected (no instructions to stall).
    EXPECT_NEAR(toMicroseconds(thr.records()[0].time), 50.0, 0.2);
}

TEST(EngineEdges, ChunkLargerThanLoopYieldsNoRecords)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loopChunked(InstClass::kScalar64, 100, 500, 0, 20);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    EXPECT_TRUE(thr.done());
    EXPECT_EQ(thr.records().size(), 0u);
}

TEST(EngineEdges, SequentialProgramsOnSameThread)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p1;
    p1.mark(1);
    thr.setProgram(std::move(p1));
    thr.start();
    sim.run();
    ASSERT_TRUE(thr.done());

    Program p2;
    p2.loop(InstClass::k128Heavy, 10, 10);
    p2.mark(2);
    thr.setProgram(std::move(p2));
    thr.start();
    sim.run();
    ASSERT_EQ(thr.records().size(), 1u); // setProgram cleared records
    EXPECT_EQ(thr.records()[0].tag, 2);
}

TEST(EngineEdges, CallStepCanInstallWorkElsewhere)
{
    Simulation sim(quietChip(1.0));
    Chip &chip = sim.chip();
    HwThread &t0 = chip.core(0).thread(0);
    HwThread &t1 = chip.core(1).thread(0);
    Program p;
    p.idle(fromMicroseconds(10));
    p.call([&] {
        Program q;
        q.mark(9);
        t1.setProgram(std::move(q));
        t1.start();
    });
    t0.setProgram(std::move(p));
    t0.start();
    sim.run();
    ASSERT_EQ(t1.records().size(), 1u);
    EXPECT_NEAR(toMicroseconds(t1.records()[0].time), 10.0, 0.1);
}

TEST(EngineEdges, HugeLoopCompletesWithFewEvents)
{
    // 10^8 cycles of simulated work must not cost per-cycle events.
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::kScalar64, 2000000, 100); // ~102 ms @1 GHz
    thr.setProgram(std::move(p));
    thr.start();
    sim.run(fromSeconds(1));
    EXPECT_TRUE(thr.done());
    EXPECT_LT(sim.eq().executedEvents(), 1000u);
}

} // namespace
} // namespace ich
