/**
 * @file
 * Tests for the aggregation layer: per-point metric summaries,
 * whole-sweep rollups, and metric-name discovery.
 */

#include <gtest/gtest.h>

#include "exp/aggregate.hh"

namespace ich
{
namespace exp
{
namespace
{

std::vector<ParamPoint>
twoPoints()
{
    ParamPoint a;
    a.set("x", {1.0, "1"});
    ParamPoint b;
    b.set("x", {2.0, "2"});
    return {a, b};
}

TrialRecord
record(std::size_t point, int trial, MetricMap metrics)
{
    TrialRecord r;
    r.pointIndex = point;
    r.trial = trial;
    r.metrics = std::move(metrics);
    return r;
}

TEST(MetricSummaryT, FromSamples)
{
    MetricSummary m = MetricSummary::fromSamples({2, 4, 4, 4, 5, 5, 7, 9});
    EXPECT_EQ(m.count, 8u);
    EXPECT_DOUBLE_EQ(m.mean, 5.0);
    EXPECT_NEAR(m.stddev, 2.138, 0.001);
    EXPECT_DOUBLE_EQ(m.min, 2.0);
    EXPECT_DOUBLE_EQ(m.max, 9.0);
    EXPECT_DOUBLE_EQ(m.p50, 4.5);
    EXPECT_NEAR(m.p90, 7.6, 1e-9);
    EXPECT_NEAR(m.p99, 8.86, 1e-9);
}

TEST(MetricSummaryT, EmptyAndSingle)
{
    MetricSummary empty = MetricSummary::fromSamples({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.mean, 0.0);

    MetricSummary one = MetricSummary::fromSamples({3.5});
    EXPECT_EQ(one.count, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 3.5);
    EXPECT_DOUBLE_EQ(one.stddev, 0.0);
    EXPECT_DOUBLE_EQ(one.p99, 3.5);
}

TEST(Aggregate, GroupsByPointAndMetric)
{
    auto points = twoPoints();
    std::vector<TrialRecord> trials = {
        record(0, 0, {{"ber", 0.1}, {"bps", 100.0}}),
        record(0, 1, {{"ber", 0.3}, {"bps", 200.0}}),
        record(1, 0, {{"ber", 0.0}}),
    };
    auto aggs = aggregate(points, trials);
    ASSERT_EQ(aggs.size(), 2u);
    EXPECT_DOUBLE_EQ(aggs[0].metrics.at("ber").mean, 0.2);
    EXPECT_DOUBLE_EQ(aggs[0].metrics.at("bps").mean, 150.0);
    EXPECT_EQ(aggs[1].metrics.at("ber").count, 1u);
    EXPECT_EQ(aggs[1].metrics.count("bps"), 0u);
}

TEST(Aggregate, RejectsOutOfRangePoint)
{
    auto points = twoPoints();
    std::vector<TrialRecord> trials = {record(7, 0, {{"m", 1.0}})};
    EXPECT_THROW(aggregate(points, trials), std::out_of_range);
}

TEST(Aggregate, RollupAndMetricNames)
{
    SweepResult r;
    r.points = twoPoints();
    r.trials = {
        record(0, 0, {{"ber", 0.1}}),
        record(0, 1, {{"ber", 0.3}, {"extra", 5.0}}),
        record(1, 0, {{"ber", 0.2}}),
    };
    r.aggregates = aggregate(r.points, r.trials);

    MetricSummary all = rollup(r, "ber");
    EXPECT_EQ(all.count, 3u);
    EXPECT_NEAR(all.mean, 0.2, 1e-12);

    EXPECT_EQ(metricNames(r),
              (std::vector<std::string>{"ber", "extra"}));

    EXPECT_EQ(rollup(r, "absent").count, 0u);
}

TEST(Aggregate, SweepResultPointMetricAccessor)
{
    SweepResult r;
    r.points = {ParamPoint{}};
    r.trials = {record(0, 0, {{"m", 2.0}})};
    r.aggregates = aggregate(r.points, r.trials);
    EXPECT_DOUBLE_EQ(r.pointMetric(0, "m").mean, 2.0);
    EXPECT_THROW(r.pointMetric(0, "absent"), std::out_of_range);
    EXPECT_THROW(r.pointMetric(1, "m"), std::out_of_range);
    SweepResult empty;
    EXPECT_THROW(empty.pointMetric(0, "m"), std::out_of_range);
}

} // namespace
} // namespace exp
} // namespace ich
