/**
 * @file
 * IccSMTcovert end-to-end tests (paper §4.2, §6.1: evaluated on Cannon
 * Lake only — Coffee Lake i7-9700K has no SMT).
 */

#include <gtest/gtest.h>

#include "channels/smt_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

ChannelConfig
baseConfig()
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 11;
    return cfg;
}

TEST(SmtChannel, RequiresSmtPreset)
{
    ChannelConfig cfg;
    cfg.chip = presets::coffeeLake(); // no SMT
    EXPECT_THROW(IccSMTcovert{cfg}, std::invalid_argument);
}

TEST(SmtChannel, NoiselessRoundTripIsErrorFree)
{
    IccSMTcovert ch(baseConfig());
    BitVec bits = {1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 1};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.receivedBits, bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(SmtChannel, CalibrationLevelsIncreaseWithIntensity)
{
    IccSMTcovert ch(baseConfig());
    const Calibration &cal = ch.calibration();
    // The sibling's stall window grows with the sender's intensity:
    // higher symbol => longer excess.
    for (int s = 1; s < kNumSymbols; ++s)
        EXPECT_GT(cal.meanUs(s), cal.meanUs(s - 1));
    EXPECT_GT(cal.minSeparationUs(), 0.5);
}

TEST(SmtChannel, ThroughputMatchesPaperScale)
{
    IccSMTcovert ch(baseConfig());
    EXPECT_GT(ch.ratedThroughputBps(), 2500.0);
    EXPECT_LT(ch.ratedThroughputBps(), 3100.0);
}

TEST(SmtChannel, WorksOnHaswellSmt)
{
    ChannelConfig cfg;
    cfg.chip = presets::haswell();
    cfg.seed = 3;
    IccSMTcovert ch(cfg);
    BitVec bits = {1, 1, 0, 0, 1, 0};
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(SmtChannel, ImprovedThrottlingKillsChannel)
{
    ChannelConfig cfg = baseConfig();
    cfg.chip.core.throttle.perThread = true; // §7 mitigation
    IccSMTcovert ch(cfg);
    const Calibration &cal = ch.calibration();
    // No sibling-visible stall: all levels collapse to ~0 excess.
    EXPECT_LT(cal.minSeparationUs(), 0.2);
}

} // namespace
} // namespace ich
