/**
 * @file
 * Server-processor tests (paper §6.4: server parts share the client core
 * microarchitecture, so at least one IChannels channel affects them).
 */

#include <gtest/gtest.h>

#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

ChannelConfig
serverConfig()
{
    ChannelConfig cfg;
    cfg.chip = presets::skylakeServer();
    cfg.freqGhz = 2.1;
    cfg.seed = 83;
    return cfg;
}

TEST(ServerPreset, Shape)
{
    ChipConfig cfg = presets::skylakeServer();
    EXPECT_EQ(cfg.numCores, 16);
    EXPECT_EQ(cfg.core.smtThreads, 2);
    EXPECT_TRUE(presets::hasAvx512(cfg));
    EXPECT_EQ(cfg.pmu.vr.kind, VrKind::kIntegrated);
    EXPECT_GT(cfg.pmu.limits.iccMaxAmps, 100.0); // server-class VR
}

TEST(ServerPreset, ConstructsAndIdles)
{
    Simulation sim(presets::skylakeServer());
    sim.runFor(fromMicroseconds(200));
    EXPECT_GT(sim.chip().vccVolts(), 0.5);
    EXPECT_EQ(sim.chip().coreCount(), 16);
}

TEST(ServerPreset, ThreadChannelWorks)
{
    IccThreadCovert ch(serverConfig());
    BitVec bits = {1, 0, 1, 1, 0, 0, 1, 0};
    EXPECT_EQ(ch.transmit(bits).bitErrors, 0u);
}

TEST(ServerPreset, SmtChannelWorks)
{
    IccSMTcovert ch(serverConfig());
    BitVec bits = {0, 1, 1, 0, 1, 0};
    EXPECT_EQ(ch.transmit(bits).bitErrors, 0u);
}

TEST(ServerPreset, CoresChannelWorks)
{
    IccCoresCovert ch(serverConfig());
    BitVec bits = {1, 1, 0, 0, 1, 0};
    EXPECT_EQ(ch.transmit(bits).bitErrors, 0u);
}

TEST(ServerPreset, ManyIdleCoresDoNotPerturbChannel)
{
    // 14 idle cores sit on the same rail; the channel between cores 0/1
    // stays as clean as on the 2-core mobile part.
    IccCoresCovert server(serverConfig());
    double sep = server.calibration().minSeparationUs();
    EXPECT_GT(sep, 0.25);
}

} // namespace
} // namespace ich
