/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, tie-breaking,
 * cancellation, horizon semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/event_queue.hh"

namespace ich
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTimestampOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); }, /*priority=*/5);
    eq.schedule(100, [&] { order.push_back(2); }, /*priority=*/0);
    eq.schedule(100, [&] { order.push_back(3); }, /*priority=*/5);
    eq.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, SchedulingIntoThePastThrows)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runToCompletion();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(100, [&] { fired = true; });
    eq.deschedule(id);
    eq.runToCompletion();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    EventId id = eq.schedule(100, [] {});
    eq.deschedule(id);
    eq.deschedule(id); // no-op
    eq.deschedule(9999); // unknown id: no-op
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(5000);
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventQueue, RunUntilExecutesOnlyDueEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runUntil(150);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(eq.now(), 150u);
    eq.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> reschedule = [&] {
        if (++count < 5)
            eq.scheduleIn(10, reschedule);
    };
    eq.scheduleIn(10, reschedule);
    eq.runToCompletion();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, RunToCompletionStopsAtHorizon)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(100, [] {});
    eq.schedule(2000, [&] { late = true; });
    eq.runToCompletion(1000);
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    eq.schedule(10, [] {});
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutedEventsCounterCountsOnlyFired)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.deschedule(id);
    eq.runToCompletion();
    EXPECT_EQ(eq.executedEvents(), 1u);
}

TEST(EventQueue, CancelledHeadDoesNotBlockRunUntil)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(100, [] {});
    eq.schedule(200, [&] { fired = true; });
    eq.deschedule(id);
    eq.runUntil(250);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, DescheduleOfCurrentlyDispatchingEventIsNoOp)
{
    EventQueue eq;
    EventId self = EventQueue::kInvalidEvent;
    bool later = false;
    self = eq.schedule(100, [&] {
        // The event is already off the queue; its handle is stale.
        eq.deschedule(self);
    });
    eq.schedule(200, [&] { later = true; });
    eq.runToCompletion();
    EXPECT_TRUE(later);
    EXPECT_EQ(eq.executedEvents(), 2u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleAfterFireIsStaleEvenWhenSlotIsReused)
{
    EventQueue eq;
    EventId first = eq.schedule(10, [] {});
    ASSERT_TRUE(eq.runOne());
    // The fired event's slot is free; the next schedule reuses it with a
    // fresh generation, so the stale handle must not cancel it.
    bool fired = false;
    EventId second = eq.schedule(20, [&] { fired = true; });
    EXPECT_NE(first, second);
    eq.deschedule(first);
    EXPECT_EQ(eq.size(), 1u);
    eq.runToCompletion();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, DescheduleDuringDispatchCannotKillSlotReuser)
{
    EventQueue eq;
    EventId self = EventQueue::kInvalidEvent;
    bool successor = false;
    self = eq.schedule(100, [&] {
        // The new event may reuse the dispatching event's slot; the
        // stale self-handle must not touch it.
        eq.scheduleIn(50, [&] { successor = true; });
        eq.deschedule(self);
    });
    eq.runToCompletion();
    EXPECT_TRUE(successor);
}

TEST(EventQueue, ManySameTimestampEventsOrderedAcrossPriorities)
{
    EventQueue eq;
    std::vector<std::pair<int, int>> order; // (priority, insertion idx)
    for (int i = 0; i < 100; ++i) {
        int prio = i % 10;
        eq.schedule(500, [&order, prio, i] { order.emplace_back(prio, i); },
                    prio);
    }
    eq.runToCompletion();
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t k = 1; k < order.size(); ++k) {
        // Sorted by priority; equal priorities keep insertion order.
        EXPECT_LE(order[k - 1].first, order[k].first);
        if (order[k - 1].first == order[k].first) {
            EXPECT_LT(order[k - 1].second, order[k].second);
        }
    }
}

TEST(EventQueue, PoolReusesSlotsAcrossThousandsOfScheduleCancelCycles)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int cycle = 0; cycle < 5000; ++cycle) {
        EventId keep = eq.schedule(eq.now() + 5, [&] { ++fired; });
        EventId kill = eq.schedule(eq.now() + 6, [&] { ++fired; });
        eq.deschedule(kill);
        EXPECT_EQ(eq.size(), 1u);
        eq.runUntil(eq.now() + 10);
        EXPECT_TRUE(eq.empty());
        (void)keep;
    }
    EXPECT_EQ(fired, 5000u);
    EXPECT_EQ(eq.executedEvents(), 5000u);
    // Steady-state churn recycles a handful of slots; the pool must not
    // have grown beyond its first slab.
    EXPECT_LE(eq.poolCapacity(), 256u);
}

TEST(EventQueue, PoolGrowsUnderBurstThenDrainsCorrectly)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 5000; ++i)
        ids.push_back(eq.schedule(1000 + i, [&order, i] {
            order.push_back(i);
        }));
    for (int i = 1; i < 5000; i += 2)
        eq.deschedule(ids[i]);
    EXPECT_EQ(eq.size(), 2500u);
    EXPECT_GE(eq.poolCapacity(), 5000u);
    eq.runToCompletion();
    ASSERT_EQ(order.size(), 2500u);
    for (std::size_t k = 0; k < order.size(); ++k)
        EXPECT_EQ(order[k], static_cast<int>(2 * k));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ThrowingCallbackDoesNotLeakItsSlot)
{
    EventQueue eq;
    eq.schedule(10, [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(eq.runOne(), std::runtime_error);
    EXPECT_TRUE(eq.empty());
    bool fired = false;
    eq.schedule(20, [&] { fired = true; });
    eq.runToCompletion();
    EXPECT_TRUE(fired);
    // The thrower's slot was recycled, not leaked.
    EXPECT_LE(eq.poolCapacity(), 256u);
}

TEST(EventQueue, HandlesStayUniqueAcrossSlotReuse)
{
    EventQueue eq;
    std::vector<EventId> seen;
    for (int i = 0; i < 1000; ++i) {
        EventId id = eq.schedule(eq.now() + 1, [] {});
        for (EventId old : seen)
            EXPECT_NE(id, old);
        seen.push_back(id);
        eq.runOne();
    }
}

TEST(EventQueue, RescheduleMovesEventLater)
{
    EventQueue eq;
    std::vector<int> order;
    EventId a = eq.schedule(10, [&] { order.push_back(0); });
    eq.schedule(20, [&] { order.push_back(1); });
    eq.schedule(30, [&] { order.push_back(2); });
    // Sift-down retarget: 10 -> 25 lands between the other two.
    EXPECT_TRUE(eq.reschedule(a, 25));
    EXPECT_EQ(eq.size(), 3u);
    eq.runToCompletion();
    ASSERT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(EventQueue, RescheduleMovesEventEarlier)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&] { order.push_back(1); });
    eq.schedule(30, [&] { order.push_back(2); });
    EventId a = eq.schedule(40, [&] { order.push_back(0); });
    // Sift-up retarget: 40 -> 10 becomes the new head.
    EXPECT_TRUE(eq.reschedule(a, 10));
    eq.runToCompletion();
    ASSERT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RescheduleKeepsHandleValidAndCallback)
{
    EventQueue eq;
    int fired = 0;
    EventId a = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.reschedule(a, 50));
    EXPECT_TRUE(eq.reschedule(a, 30)); // same handle, repeatedly
    Time when;
    std::int32_t prio;
    std::uint64_t seq;
    ASSERT_TRUE(eq.pendingInfo(a, when, prio, seq));
    EXPECT_EQ(when, 30u);
    eq.deschedule(a); // handle still cancels the (moved) event
    eq.runUntil(100);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RescheduleAssignsFreshInsertionSequence)
{
    // A retargeted event ties with a later-scheduled event at the same
    // timestamp exactly as a deschedule+schedule pair would: it fires
    // after it.
    EventQueue eq;
    std::vector<int> order;
    EventId a = eq.schedule(10, [&] { order.push_back(0); });
    eq.schedule(40, [&] { order.push_back(1); });
    EXPECT_TRUE(eq.reschedule(a, 40));
    eq.runToCompletion();
    ASSERT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(EventQueue, RescheduleStaleIdIsRejected)
{
    EventQueue eq;
    EventId a = eq.schedule(10, [] {});
    eq.deschedule(a);
    EXPECT_FALSE(eq.reschedule(a, 20)); // cancelled
    bool fired = false;
    EventId b = eq.schedule(5, [&] { fired = true; });
    eq.runOne();
    EXPECT_TRUE(fired);
    EXPECT_FALSE(eq.reschedule(b, 30)); // already fired
    EXPECT_FALSE(eq.reschedule(EventQueue::kInvalidEvent, 30));
    eq.runToCompletion();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RescheduleDuringDispatchIsRejected)
{
    // The dispatching event's handle is stale inside its own callback —
    // callers fall back to a fresh schedule, and the old handle cannot
    // resurrect or clobber anything.
    EventQueue eq;
    int fired = 0;
    EventId a = 0;
    a = eq.schedule(10, [&] {
        ++fired;
        EXPECT_FALSE(eq.reschedule(a, 50));
    });
    eq.runToCompletion();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RescheduleIntoThePastThrows)
{
    EventQueue eq;
    EventId a = eq.schedule(100, [] {});
    eq.runUntil(50);
    EXPECT_THROW(eq.reschedule(a, 10), std::logic_error);
    eq.deschedule(a);
}

TEST(EventQueue, RescheduleStressAgainstTombstones)
{
    // Interleave reschedules with cancels so retargets sift across a
    // heap full of live entries and tombstones; ordering must stay
    // exactly (time, priority, seq).
    EventQueue eq;
    std::vector<std::pair<Time, int>> fired;
    std::vector<EventId> ids;
    for (int i = 0; i < 300; ++i)
        ids.push_back(eq.schedule(100 + 7 * ((i * 37) % 100),
                                  [&fired, i, &eq] {
                                      fired.push_back({eq.now(), i});
                                  }));
    for (int i = 0; i < 300; i += 3)
        eq.deschedule(ids[i]);
    for (int i = 1; i < 300; i += 3)
        EXPECT_TRUE(eq.reschedule(ids[i], 100 + 11 * ((i * 53) % 90)));
    eq.runToCompletion();
    EXPECT_EQ(fired.size(), 200u);
    for (std::size_t k = 1; k < fired.size(); ++k)
        EXPECT_LE(fired[k - 1].first, fired[k].first);
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace ich
