/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, tie-breaking,
 * cancellation, horizon semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"

namespace ich
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTimestampOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); }, /*priority=*/5);
    eq.schedule(100, [&] { order.push_back(2); }, /*priority=*/0);
    eq.schedule(100, [&] { order.push_back(3); }, /*priority=*/5);
    eq.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, SchedulingIntoThePastThrows)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runToCompletion();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(100, [&] { fired = true; });
    eq.deschedule(id);
    eq.runToCompletion();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    EventId id = eq.schedule(100, [] {});
    eq.deschedule(id);
    eq.deschedule(id); // no-op
    eq.deschedule(9999); // unknown id: no-op
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(5000);
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventQueue, RunUntilExecutesOnlyDueEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.runUntil(150);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(eq.now(), 150u);
    eq.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> reschedule = [&] {
        if (++count < 5)
            eq.scheduleIn(10, reschedule);
    };
    eq.scheduleIn(10, reschedule);
    eq.runToCompletion();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, RunToCompletionStopsAtHorizon)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(100, [] {});
    eq.schedule(2000, [&] { late = true; });
    eq.runToCompletion(1000);
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    eq.schedule(10, [] {});
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutedEventsCounterCountsOnlyFired)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.deschedule(id);
    eq.runToCompletion();
    EXPECT_EQ(eq.executedEvents(), 1u);
}

TEST(EventQueue, CancelledHeadDoesNotBlockRunUntil)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(100, [] {});
    eq.schedule(200, [&] { fired = true; });
    eq.deschedule(id);
    eq.runUntil(250);
    EXPECT_TRUE(fired);
}

} // namespace
} // namespace ich
