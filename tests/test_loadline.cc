/**
 * @file
 * Tests for the load-line model and Equation 1 (paper §2, Fig. 2).
 */

#include <gtest/gtest.h>

#include "pdn/loadline.hh"

namespace ich
{
namespace
{

TEST(LoadLine, VccLoadDropsWithCurrent)
{
    LoadLine ll(1.9e-3);
    EXPECT_DOUBLE_EQ(ll.vccLoad(1.0, 0.0), 1.0);
    EXPECT_NEAR(ll.vccLoad(1.0, 10.0), 1.0 - 0.019, 1e-12);
    EXPECT_GT(ll.vccLoad(1.0, 10.0), ll.vccLoad(1.0, 50.0));
}

TEST(LoadLine, DroopIsLinear)
{
    LoadLine ll(2.0e-3);
    EXPECT_DOUBLE_EQ(ll.droop(20.0), 0.04);
    EXPECT_DOUBLE_EQ(ll.droop(40.0), 2.0 * ll.droop(20.0));
}

TEST(LoadLine, RequiredVccKeepsLoadAboveVccmin)
{
    LoadLine ll(1.9e-3);
    double vccmin = 0.65;
    double icc_virus = 30.0;
    double vcc = ll.requiredVcc(vccmin, icc_virus);
    EXPECT_GE(ll.vccLoad(vcc, icc_virus), vccmin - 1e-12);
    EXPECT_NEAR(ll.vccLoad(vcc, icc_virus), vccmin, 1e-12);
}

// Equation 1 property: ΔV proportional to each factor.
TEST(LoadLine, GuardbandProportionalToCdyn)
{
    LoadLine ll(1.9e-3);
    double g1 = ll.guardband(1e-9, 0.8, 2e9);
    double g2 = ll.guardband(2e-9, 0.8, 2e9);
    EXPECT_NEAR(g2, 2.0 * g1, 1e-15);
}

TEST(LoadLine, GuardbandProportionalToFrequency)
{
    LoadLine ll(1.9e-3);
    double g1 = ll.guardband(2e-9, 0.8, 1e9);
    double g2 = ll.guardband(2e-9, 0.8, 3e9);
    EXPECT_NEAR(g2, 3.0 * g1, 1e-15);
}

TEST(LoadLine, GuardbandProportionalToVoltage)
{
    LoadLine ll(1.9e-3);
    double g1 = ll.guardband(2e-9, 0.5, 2e9);
    double g2 = ll.guardband(2e-9, 1.0, 2e9);
    EXPECT_NEAR(g2, 2.0 * g1, 1e-15);
}

TEST(LoadLine, GuardbandProportionalToRll)
{
    LoadLine a(1.0e-3), b(2.0e-3);
    EXPECT_NEAR(b.guardband(2e-9, 0.8, 2e9),
                2.0 * a.guardband(2e-9, 0.8, 2e9), 1e-15);
}

// Calibration anchor: AVX2 (ΔCdyn ≈ 2.7 nF) at 2 GHz / 0.788 V with
// RLL = 1.9 mΩ gives the ~8 mV step of Fig. 6.
TEST(LoadLine, Fig6GuardbandAnchor)
{
    LoadLine ll(1.9e-3);
    double gb = ll.guardband(2.7e-9, 0.788, 2e9);
    EXPECT_NEAR(gb * 1000.0, 8.0, 0.3); // mV
}

} // namespace
} // namespace ich
