/**
 * @file
 * Multi-level throttling characterization tests (paper §5.5, Fig. 10,
 * Key Conclusion 4) — the core phenomenon behind IccThreadCovert.
 */

#include <gtest/gtest.h>

#include <map>

#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;
using test::probeAfterUs;
using test::throttlePeriodUs;

ChipConfig
cfgAt(double freq)
{
    ChipConfig cfg = pinnedCannonLake(freq);
    cfg.pmu.vr.commandJitter = 0;
    return cfg;
}

// Fig. 10a: TP grows with the computational intensity of the class.
TEST(MultiLevel, TpGrowsWithIntensity)
{
    double prev = -1.0;
    for (auto cls : kAllInstClasses) {
        double tp = throttlePeriodUs(cfgAt(1.4), cls, 1.4);
        EXPECT_GE(tp, prev - 0.05)
            << "class " << toString(cls);
        if (traits(cls).guardbandLevel > 0)
            EXPECT_GT(tp, 0.5);
        prev = tp;
    }
}

// Fig. 10a: TP grows with core frequency (Equation 1: ΔV ∝ V·F).
TEST(MultiLevel, TpGrowsWithFrequency)
{
    std::vector<double> freqs = {1.0, 1.2, 1.4};
    double prev = 0.0;
    for (double f : freqs) {
        double tp = throttlePeriodUs(cfgAt(f), InstClass::k512Heavy, f);
        EXPECT_GT(tp, prev);
        prev = tp;
    }
}

// Fig. 10a: non-PHI classes show no throttling period.
TEST(MultiLevel, Level0ClassesNotThrottled)
{
    EXPECT_NEAR(throttlePeriodUs(cfgAt(1.4), InstClass::kScalar64, 1.4),
                0.0, 0.1);
    EXPECT_NEAR(throttlePeriodUs(cfgAt(1.4), InstClass::k128Light, 1.4),
                0.0, 0.1);
}

// Fig. 10b: the TP of a 512b_Heavy probe *decreases* as the preceding
// class's intensity increases (voltage already partially ramped).
TEST(MultiLevel, ProbeTpDecreasesWithPrecedingIntensity)
{
    double prev = 1e9;
    for (auto prelude : kAllInstClasses) {
        double us = probeAfterUs(cfgAt(1.4), prelude,
                                 InstClass::k512Heavy);
        EXPECT_LE(us, prev + 0.05) << "prelude " << toString(prelude);
        prev = us;
    }
}

// Fig. 10b / Key Conclusion 4: the probe TPs collapse onto exactly five
// distinct levels across the seven preceding classes.
TEST(MultiLevel, FiveDistinctProbeLevels)
{
    std::map<int, double> by_level;
    for (auto prelude : kAllInstClasses) {
        double us = probeAfterUs(cfgAt(1.4), prelude,
                                 InstClass::k512Heavy);
        int lvl = traits(prelude).guardbandLevel;
        if (by_level.count(lvl))
            EXPECT_NEAR(by_level[lvl], us, 0.2)
                << "same level must give same TP";
        else
            by_level[lvl] = us;
    }
    EXPECT_EQ(by_level.size(), 5u);
    // Adjacent levels separated by >2K TSC cycles (~0.9 us at 2.2 GHz),
    // the paper's decodability criterion (§6.3).
    double prev = 1e9;
    for (auto &[lvl, us] : by_level) {
        if (prev < 1e8)
            EXPECT_GT(prev - us, 0.8);
        prev = us;
    }
}

// Same-level prelude leaves (almost) nothing to ramp: probe runs
// unthrottled.
TEST(MultiLevel, SameLevelPreludeRemovesThrottle)
{
    double after_512h = probeAfterUs(cfgAt(1.4), InstClass::k512Heavy,
                                     InstClass::k512Heavy);
    Kernel probe = makeKernel(InstClass::k512Heavy, 100, 100);
    double nominal =
        toMicroseconds(test::kernelPicos(probe, 1.4));
    EXPECT_NEAR(after_512h, nominal, 0.2);
}

// Cross-generation comparison (Fig. 8a): Haswell's FIVR ramps faster,
// so its TP is shorter than the MBVR parts' at the same conditions.
TEST(MultiLevel, HaswellShorterTpThanCannonLake)
{
    ChipConfig hsw = presets::haswell();
    hsw.pmu.governor.policy = GovernorPolicy::kUserspace;
    hsw.pmu.governor.userspaceGhz = 1.4;
    hsw.pmu.vr.commandJitter = 0;
    double tp_hsw = throttlePeriodUs(hsw, InstClass::k256Heavy, 1.4);
    double tp_cnl =
        throttlePeriodUs(cfgAt(1.4), InstClass::k256Heavy, 1.4);
    EXPECT_LT(tp_hsw, tp_cnl);
    EXPECT_GT(tp_hsw, 0.1);
}

// Two cores running PHIs: longer TP than one core (Fig. 10a right half).
TEST(MultiLevel, TwoCorePhiExtendsTp)
{
    ChipConfig cfg = cfgAt(1.0);
    // One core alone.
    double solo = throttlePeriodUs(cfg, InstClass::k256Heavy, 1.0);

    // Two cores starting the same PHI simultaneously.
    Simulation sim(cfg);
    for (int c = 0; c < 2; ++c) {
        Program p;
        p.mark(0);
        p.loop(InstClass::k256Heavy, 400, 100);
        p.mark(1);
        sim.chip().core(c).thread(0).setProgram(std::move(p));
    }
    sim.chip().core(0).thread(0).start();
    sim.chip().core(1).thread(0).start();
    sim.run();
    const auto &recs = sim.chip().core(0).thread(0).records();
    double both = toMicroseconds(recs.at(1).time - recs.at(0).time) -
                  toMicroseconds(test::kernelPicos(
                      makeKernel(InstClass::k256Heavy, 400, 100), 1.0));
    EXPECT_GT(both, solo * 1.5);
}

} // namespace
} // namespace ich
