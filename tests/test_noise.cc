/**
 * @file
 * Tests for the OS noise injector (§6.3).
 */

#include <gtest/gtest.h>

#include "os/noise.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

using test::quietChip;

TEST(Noise, ZeroRatesInjectNothing)
{
    Simulation sim(quietChip(1.0));
    NoiseInjector inj(sim.chip(), sim.rng(), NoiseConfig{}, 0, 0);
    inj.start(fromMilliseconds(10));
    sim.runFor(fromMilliseconds(10));
    EXPECT_EQ(inj.interruptsInjected(), 0u);
    EXPECT_EQ(inj.contextSwitchesInjected(), 0u);
}

TEST(Noise, InterruptRateApproximatelyRespected)
{
    Simulation sim(quietChip(1.0));
    NoiseConfig cfg;
    cfg.interruptRatePerSec = 10000.0;
    NoiseInjector inj(sim.chip(), sim.rng(), cfg, 0, 0);
    inj.start(fromMilliseconds(100));
    sim.runFor(fromMilliseconds(100));
    // Expect ~1000 in 100 ms.
    EXPECT_GT(inj.interruptsInjected(), 700u);
    EXPECT_LT(inj.interruptsInjected(), 1300u);
}

TEST(Noise, StallsExtendRunningLoop)
{
    Simulation sim(quietChip(1.0));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loop(InstClass::kScalar64, 2000, 100); // 102 us unthrottled
    p.mark(1);
    thr.setProgram(std::move(p));

    NoiseConfig cfg;
    cfg.contextSwitchRatePerSec = 5000.0; // dense: ~0.5 events in 102us…
    cfg.interruptRatePerSec = 20000.0;
    NoiseInjector inj(sim.chip(), sim.rng(), cfg, 0, 0);
    inj.start(fromMilliseconds(5));
    thr.start();
    sim.run(fromMilliseconds(5));
    double dur =
        toMicroseconds(thr.records()[1].time - thr.records()[0].time);
    EXPECT_GT(dur, 102.5); // stalls made it measurably longer
}

TEST(Noise, DeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        Simulation sim(quietChip(1.0), seed);
        NoiseConfig cfg;
        cfg.interruptRatePerSec = 5000.0;
        NoiseInjector inj(sim.chip(), sim.rng(), cfg, 0, 0);
        inj.start(fromMilliseconds(50));
        sim.runFor(fromMilliseconds(50));
        return inj.interruptsInjected();
    };
    EXPECT_EQ(run(7), run(7));
}

TEST(Noise, StopsAtUntil)
{
    Simulation sim(quietChip(1.0));
    NoiseConfig cfg;
    cfg.interruptRatePerSec = 100000.0;
    NoiseInjector inj(sim.chip(), sim.rng(), cfg, 0, 0);
    inj.start(fromMicroseconds(100));
    sim.runFor(fromMilliseconds(5));
    auto count = inj.interruptsInjected();
    sim.runFor(fromMilliseconds(5));
    EXPECT_EQ(inj.interruptsInjected(), count);
}

} // namespace
} // namespace ich
