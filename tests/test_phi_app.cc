/**
 * @file
 * Tests for the concurrent PHI-injecting application (§6.3, Fig. 14c).
 */

#include <gtest/gtest.h>

#include "os/phi_app.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;

TEST(PhiApp, ZeroRateInjectsNothing)
{
    Simulation sim(pinnedCannonLake());
    PhiApp app(sim.chip(), sim.rng(), PhiAppConfig{}, 1, 0);
    app.start(fromMilliseconds(10));
    sim.runFor(fromMilliseconds(10));
    EXPECT_EQ(app.burstsInjected(), 0u);
}

TEST(PhiApp, BurstsPerturbRailVoltage)
{
    ChipConfig cfg = pinnedCannonLake(1.4);
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg);
    double v0 = sim.chip().vccVolts();
    PhiAppConfig app_cfg;
    app_cfg.phiRatePerSec = 5000.0;
    PhiApp app(sim.chip(), sim.rng(), app_cfg, 1, 0);
    app.start(fromMilliseconds(20));
    sim.runFor(fromMilliseconds(2));
    EXPECT_GT(app.burstsInjected(), 0u);
    // At 5000 bursts/s the hysteresis keeps a guardband almost always.
    EXPECT_GT(sim.chip().vccVolts(), v0 + 0.0005);
}

TEST(PhiApp, RateApproximatelyRespected)
{
    Simulation sim(pinnedCannonLake());
    PhiAppConfig cfg;
    cfg.phiRatePerSec = 1000.0;
    PhiApp app(sim.chip(), sim.rng(), cfg, 1, 0);
    app.start(fromMilliseconds(100));
    sim.runFor(fromMilliseconds(100));
    EXPECT_GT(app.burstsInjected(), 60u);
    EXPECT_LT(app.burstsInjected(), 140u);
}

TEST(PhiApp, GuardbandDecaysAfterBurstsStop)
{
    ChipConfig cfg = pinnedCannonLake(1.4);
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg);
    double v0 = sim.chip().vccVolts();
    PhiAppConfig app_cfg;
    app_cfg.phiRatePerSec = 2000.0;
    PhiApp app(sim.chip(), sim.rng(), app_cfg, 0, 0);
    app.start(fromMilliseconds(5));
    // Run far past the stop + reset-time: voltage back at baseline.
    sim.runFor(fromMilliseconds(7));
    EXPECT_NEAR(sim.chip().vccVolts(), v0, 1e-4);
}

} // namespace
} // namespace ich
