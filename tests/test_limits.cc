/**
 * @file
 * Tests for the electrical-limit projections (paper §5.3 / Fig. 7a):
 * the desktop part trips Vccmax with AVX2 at 4.9 GHz, the mobile part
 * trips Iccmax with AVX2 at 3.1 GHz.
 */

#include <gtest/gtest.h>

#include "chip/presets.hh"
#include "pmu/guardband.hh"
#include "pmu/limits.hh"

namespace ich
{
namespace
{

std::vector<CoreActivity>
activeCores(const ChipConfig &cfg, int n, InstClass cls)
{
    std::vector<CoreActivity> act(cfg.numCores);
    for (int i = 0; i < n; ++i) {
        act[i].active = true;
        act[i].cdynNf = cfg.core.cdynBaseNf + traits(cls).deltaCdynNf;
        act[i].gbLevel = traits(cls).guardbandLevel;
    }
    return act;
}

struct Models {
    GuardbandModel gb;
    ChipPowerModel pm;
    explicit Models(const ChipConfig &cfg)
        : gb(LoadLine(cfg.pmu.rllOhm), cfg.pmu.vf),
          pm(gb, cfg.pmu.leakagePerCoreAmps, cfg.numCores)
    {
    }
};

TEST(Limits, DesktopAvx2At49GhzExceedsVccmax)
{
    ChipConfig cfg = presets::coffeeLake();
    Models m(cfg);
    auto act = activeCores(cfg, 1, InstClass::k256Heavy);
    double v49 = m.pm.vTargetVolts(4.9, act);
    double v48 = m.pm.vTargetVolts(4.8, act);
    EXPECT_GT(v49, cfg.pmu.limits.vccMaxVolts);  // Fig. 7a violation
    EXPECT_LE(v48, cfg.pmu.limits.vccMaxVolts);  // 4.8 GHz is safe
}

TEST(Limits, DesktopNonAvxAt49GhzWithinVccmax)
{
    ChipConfig cfg = presets::coffeeLake();
    Models m(cfg);
    auto act = activeCores(cfg, 1, InstClass::kScalar64);
    EXPECT_LE(m.pm.vTargetVolts(4.9, act), cfg.pmu.limits.vccMaxVolts);
}

TEST(Limits, DesktopCurrentWellBelowIccmax)
{
    ChipConfig cfg = presets::coffeeLake();
    Models m(cfg);
    auto act = activeCores(cfg, 1, InstClass::k256Heavy);
    double v = m.pm.vTargetVolts(4.9, act);
    EXPECT_LT(m.pm.iccAmps(4.9, v, act), cfg.pmu.limits.iccMaxAmps);
}

TEST(Limits, MobileAvx2At31GhzExceedsIccmax)
{
    ChipConfig cfg = presets::cannonLake();
    Models m(cfg);
    auto act = activeCores(cfg, 2, InstClass::k256Heavy);
    double v31 = m.pm.vTargetVolts(3.1, act);
    double v22 = m.pm.vTargetVolts(2.2, act);
    EXPECT_GT(m.pm.iccAmps(3.1, v31, act), cfg.pmu.limits.iccMaxAmps);
    EXPECT_LE(m.pm.iccAmps(2.2, v22, act), cfg.pmu.limits.iccMaxAmps);
    // Voltage stays within limits on the mobile part (Fig. 7a).
    EXPECT_LE(v31, cfg.pmu.limits.vccMaxVolts);
}

TEST(Limits, MobileNonAvxAt31GhzWithinLimits)
{
    ChipConfig cfg = presets::cannonLake();
    Models m(cfg);
    auto act = activeCores(cfg, 2, InstClass::kScalar64);
    double v = m.pm.vTargetVolts(3.1, act);
    EXPECT_LE(m.pm.iccAmps(3.1, v, act), cfg.pmu.limits.iccMaxAmps);
    EXPECT_LE(v, cfg.pmu.limits.vccMaxVolts);
}

TEST(Limits, MaxFreqRespectsBothLimits)
{
    ChipConfig cfg = presets::cannonLake();
    Models m(cfg);
    auto act = activeCores(cfg, 2, InstClass::k256Heavy);
    double f = m.pm.maxFreqGhz(act, cfg.pmu.limits,
                               cfg.pmu.pstate.binsGhz);
    EXPECT_LT(f, 3.1);
    EXPECT_GE(f, 2.2);
    double v = m.pm.vTargetVolts(f, act);
    EXPECT_LE(m.pm.iccAmps(f, v, act), cfg.pmu.limits.iccMaxAmps);
}

TEST(Limits, MaxFreqFallsBackToLowestBin)
{
    ChipConfig cfg = presets::cannonLake();
    Models m(cfg);
    auto act = activeCores(cfg, 2, InstClass::k512Heavy);
    ElectricalLimits tight{0.5, 1.0}; // impossible limits
    double f = m.pm.maxFreqGhz(act, tight, cfg.pmu.pstate.binsGhz);
    EXPECT_DOUBLE_EQ(f, cfg.pmu.pstate.binsGhz.front());
}

TEST(Limits, EmptyBinsThrow)
{
    ChipConfig cfg = presets::cannonLake();
    Models m(cfg);
    EXPECT_THROW(m.pm.maxFreqGhz({}, cfg.pmu.limits, {}),
                 std::invalid_argument);
}

TEST(Limits, PowerGrowsWithActivity)
{
    ChipConfig cfg = presets::cannonLake();
    Models m(cfg);
    double p_idle =
        m.pm.powerWatts(2.2, std::vector<CoreActivity>(cfg.numCores));
    double p1 = m.pm.powerWatts(2.2,
                                activeCores(cfg, 1, InstClass::k256Heavy));
    double p2 = m.pm.powerWatts(2.2,
                                activeCores(cfg, 2, InstClass::k256Heavy));
    EXPECT_LT(p_idle, p1);
    EXPECT_LT(p1, p2);
}

} // namespace
} // namespace ich
