/**
 * @file
 * Cross-module integration and property tests: full-payload exfiltration
 * with framing, parameterized sweeps over presets × channels, throughput
 * ratios vs. all baselines (Fig. 12), determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/dfscovert.hh"
#include "baselines/netspectre.hh"
#include "baselines/powert.hh"
#include "baselines/turbocc.hh"
#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

ChannelConfig
cfgFor(const std::string &preset)
{
    ChannelConfig cfg;
    if (preset == "haswell")
        cfg.chip = presets::haswell();
    else if (preset == "coffeelake")
        cfg.chip = presets::coffeeLake();
    else
        cfg.chip = presets::cannonLake();
    cfg.seed = 41;
    return cfg;
}

// ---------------------------------------------------------------------
// Parameterized sweep: every channel on every preset that supports it
// must transfer a payload error-free without noise (the Fig. 13
// low-noise regime).
// ---------------------------------------------------------------------
using ChannelCase = std::tuple<std::string, ChannelKind>;

class ChannelMatrix : public ::testing::TestWithParam<ChannelCase>
{
};

TEST_P(ChannelMatrix, NoiselessPayloadErrorFree)
{
    auto [preset, kind] = GetParam();
    ChannelConfig cfg = cfgFor(preset);
    auto ch = makeChannel(kind, cfg);
    BitVec bits = {1, 0, 1, 1, 0, 0, 1, 0, 0, 1};
    TransmitResult res = ch->transmit(bits);
    EXPECT_EQ(res.bitErrors, 0u) << preset << "/" << toString(kind);
    EXPECT_GT(res.throughputBps, 2500.0);
}

INSTANTIATE_TEST_SUITE_P(
    PresetsTimesChannels, ChannelMatrix,
    ::testing::Values(
        ChannelCase{"cannonlake", ChannelKind::kThread},
        ChannelCase{"cannonlake", ChannelKind::kSmt},
        ChannelCase{"cannonlake", ChannelKind::kCores},
        ChannelCase{"coffeelake", ChannelKind::kThread},
        ChannelCase{"coffeelake", ChannelKind::kCores},
        ChannelCase{"haswell", ChannelKind::kThread},
        ChannelCase{"haswell", ChannelKind::kSmt},
        ChannelCase{"haswell", ChannelKind::kCores}),
    [](const ::testing::TestParamInfo<ChannelCase> &info) {
        std::string name = std::get<0>(info.param);
        name += "_";
        name += toString(std::get<1>(info.param));
        return name;
    });

// ---------------------------------------------------------------------
// Fig. 12 throughput ratios.
// ---------------------------------------------------------------------
TEST(Integration, Fig12ThroughputRatios)
{
    ChannelConfig cfg = cfgFor("cannonlake");
    IccCoresCovert ich(cfg);
    double ich_bps = ich.ratedThroughputBps();

    NetSpectre ns(cfg);
    EXPECT_NEAR(ich_bps / ns.ratedThroughputBps(), 2.0, 0.05);

    TurboCCConfig tcfg;
    tcfg.chip = presets::cannonLake();
    TurboCC tc(tcfg);
    double r_turbo = ich_bps / tc.ratedThroughputBps();
    EXPECT_GT(r_turbo, 35.0); // paper: 47x
    EXPECT_LT(r_turbo, 60.0);

    DfsCovertConfig dcfg;
    dcfg.chip = presets::cannonLake();
    DfsCovert dc(dcfg);
    double r_dfs = ich_bps / dc.ratedThroughputBps();
    EXPECT_GT(r_dfs, 110.0); // paper: 145x
    EXPECT_LT(r_dfs, 180.0);

    PowerTConfig pcfg;
    pcfg.chip = presets::cannonLake();
    PowerT pt(pcfg);
    double r_pow = ich_bps / pt.ratedThroughputBps();
    EXPECT_GT(r_pow, 20.0); // paper: 24x
    EXPECT_LT(r_pow, 30.0);
}

// ---------------------------------------------------------------------
// End-to-end "exfiltrate a key" scenario with framing + CRC.
// ---------------------------------------------------------------------
TEST(Integration, ExfiltrateKeyWithCrc)
{
    ChannelConfig cfg = cfgFor("cannonlake");
    IccCoresCovert ch(cfg);
    std::vector<std::uint8_t> key = {0xDE, 0xAD, 0xBE, 0xEF,
                                     0x01, 0x23, 0x45, 0x67};
    BitVec bits = bytesToBits(key);
    TransmitResult res = ch.transmit(bits);
    EXPECT_EQ(res.bitErrors, 0u);
    EXPECT_EQ(bitsToBytes(res.receivedBits), key);
    EXPECT_EQ(crc16(res.receivedBits), crc16(bits));
}

// ---------------------------------------------------------------------
// Determinism: identical configuration and seed => identical traces.
// ---------------------------------------------------------------------
TEST(Integration, FullRunsDeterministic)
{
    auto run = [] {
        ChannelConfig cfg = cfgFor("cannonlake");
        cfg.noise.interruptRatePerSec = 2000.0;
        IccSMTcovert ch(cfg);
        return ch.transmit({1, 0, 1, 1, 0, 0, 1, 0});
    };
    TransmitResult a = run();
    TransmitResult b = run();
    EXPECT_EQ(a.tpUs, b.tpUs);
    EXPECT_EQ(a.receivedBits, b.receivedBits);
}

// ---------------------------------------------------------------------
// Property sweep: per-symbol TP means are monotone in symbol level on
// all presets for the thread channel.
// ---------------------------------------------------------------------
class ThreadMonotone : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ThreadMonotone, TpMonotoneInSymbol)
{
    ChannelConfig cfg = cfgFor(GetParam());
    IccThreadCovert ch(cfg);
    const Calibration &cal = ch.calibration();
    for (int s = 1; s < kNumSymbols; ++s)
        EXPECT_LT(cal.meanUs(s), cal.meanUs(s - 1));
}

INSTANTIATE_TEST_SUITE_P(AllPresets, ThreadMonotone,
                         ::testing::Values("cannonlake", "coffeelake",
                                           "haswell"));

} // namespace
} // namespace ich
