/**
 * @file
 * Tests for the instruction-class taxonomy (paper §4/§5.5): seven
 * classes, five guardband levels, monotone intensity.
 */

#include <gtest/gtest.h>

#include "isa/inst_class.hh"

namespace ich
{
namespace
{

TEST(InstClass, SevenClasses)
{
    EXPECT_EQ(kNumInstClasses, 7);
    EXPECT_EQ(kAllInstClasses.size(), 7u);
}

TEST(InstClass, FiveGuardbandLevels)
{
    // Paper Key Conclusion 4: at least five throttling levels.
    EXPECT_EQ(numGuardbandLevels(), 5);
}

TEST(InstClass, LevelsMonotoneInIntensityOrder)
{
    int prev = -1;
    for (auto cls : kAllInstClasses) {
        EXPECT_GE(traits(cls).guardbandLevel, prev);
        prev = traits(cls).guardbandLevel;
    }
}

TEST(InstClass, CdynMonotoneWithLevel)
{
    for (auto a : kAllInstClasses) {
        for (auto b : kAllInstClasses) {
            if (traits(a).guardbandLevel < traits(b).guardbandLevel)
                EXPECT_LT(traits(a).deltaCdynNf, traits(b).deltaCdynNf);
        }
    }
}

TEST(InstClass, SharedLevels)
{
    // 64b and 128b-light share level 0; 256b-heavy and 512b-light share
    // level 3 — seven classes onto five levels.
    EXPECT_EQ(traits(InstClass::kScalar64).guardbandLevel,
              traits(InstClass::k128Light).guardbandLevel);
    EXPECT_EQ(traits(InstClass::k256Heavy).guardbandLevel,
              traits(InstClass::k512Light).guardbandLevel);
}

TEST(InstClass, PhiPredicate)
{
    EXPECT_FALSE(isPhi(InstClass::kScalar64));
    EXPECT_FALSE(isPhi(InstClass::k128Light));
    EXPECT_TRUE(isPhi(InstClass::k128Heavy));
    EXPECT_TRUE(isPhi(InstClass::k512Heavy));
}

TEST(InstClass, HeavyFlagMatchesNames)
{
    EXPECT_TRUE(traits(InstClass::k256Heavy).heavy);
    EXPECT_FALSE(traits(InstClass::k256Light).heavy);
    EXPECT_EQ(toString(InstClass::k256Heavy), "256b_Heavy");
    EXPECT_EQ(toString(InstClass::kScalar64), "64b");
}

TEST(InstClass, AvxUnitUsage)
{
    // 256-bit and wider use the power-gated AVX unit.
    EXPECT_FALSE(traits(InstClass::kScalar64).usesAvxUnit);
    EXPECT_FALSE(traits(InstClass::k128Heavy).usesAvxUnit);
    EXPECT_TRUE(traits(InstClass::k256Light).usesAvxUnit);
    EXPECT_TRUE(traits(InstClass::k512Heavy).usesAvxUnit);
}

TEST(InstClass, ScalarHasDoubleIpc)
{
    EXPECT_DOUBLE_EQ(traits(InstClass::kScalar64).baseIpc, 2.0);
    EXPECT_DOUBLE_EQ(traits(InstClass::k512Heavy).baseIpc, 1.0);
}

TEST(InstClass, WidthsMatch)
{
    EXPECT_EQ(traits(InstClass::kScalar64).widthBits, 64);
    EXPECT_EQ(traits(InstClass::k128Light).widthBits, 128);
    EXPECT_EQ(traits(InstClass::k512Heavy).widthBits, 512);
}

} // namespace
} // namespace ich
