/**
 * @file
 * Tests for the power-gate model (paper §5.4 / Key Conclusion 3: opening
 * the AVX gate costs 8–15 ns, ~0.1% of a throttling period).
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "pdn/power_gate.hh"

namespace ich
{
namespace
{

TEST(PowerGate, StartsClosedWhenPresent)
{
    EventQueue eq;
    Rng rng(1);
    PowerGate pg(eq, rng, PowerGateConfig{});
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, OpenChargesWakeLatencyOnce)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    PowerGate pg(eq, rng, cfg);
    Time stall = pg.open();
    EXPECT_GE(stall, cfg.wakeLatencyMin);
    EXPECT_LE(stall, cfg.wakeLatencyMax);
    EXPECT_FALSE(pg.closed());
    EXPECT_EQ(pg.open(), 0u); // already open
    EXPECT_EQ(pg.openCount(), 1u);
}

TEST(PowerGate, AbsentGateNeverStalls_HaswellCase)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.present = false; // Haswell predates the AVX power gate
    PowerGate pg(eq, rng, cfg);
    EXPECT_FALSE(pg.closed());
    EXPECT_EQ(pg.open(), 0u);
    EXPECT_EQ(pg.openCount(), 0u);
}

TEST(PowerGate, ClosesAfterIdleDelay)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);
    pg.open();
    eq.runUntil(fromMicroseconds(31));
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, TouchDefersClose)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);
    pg.open();
    eq.runUntil(fromMicroseconds(20));
    pg.touch(); // used again at t=20us
    eq.runUntil(fromMicroseconds(40));
    EXPECT_FALSE(pg.closed()); // close deferred to t=50us
    eq.runUntil(fromMicroseconds(51));
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, ReopenAfterCloseStallsAgain)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);
    pg.open();
    eq.runUntil(fromMicroseconds(40));
    ASSERT_TRUE(pg.closed());
    EXPECT_GT(pg.open(), 0u);
    EXPECT_EQ(pg.openCount(), 2u);
}

// Regression: the idle-close countdown used to run from the *start* of
// a use period (the open() call), so a kernel longer than idleCloseDelay
// had its gate closed underneath it and the next kernel absorbed a
// spurious wake stall. beginUse()/endUse() pin the gate for the whole
// kernel; the countdown starts at the end of use.
TEST(PowerGate, StaysOpenWhileInUse_FirstPeriodTruncationFix)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);

    // A 100 us kernel: much longer than the 30 us idle-close delay.
    EXPECT_GT(pg.beginUse(), 0u);
    eq.runUntil(fromMicroseconds(100));
    EXPECT_FALSE(pg.closed()); // pinned: no mid-kernel close
    pg.endUse();

    // Countdown runs from the end of use: still open 20 us later...
    eq.runUntil(fromMicroseconds(120));
    EXPECT_FALSE(pg.closed());
    EXPECT_EQ(pg.beginUse(), 0u); // back-to-back kernel: no spurious stall
    pg.endUse();
    EXPECT_EQ(pg.openCount(), 1u);

    // ...and the gate closes once the unit has been idle for the delay.
    eq.runUntil(fromMicroseconds(151));
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, NestedUsersKeepTheGateOpen_SmtSharing)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);

    pg.beginUse(); // SMT thread 0
    pg.beginUse(); // SMT thread 1
    EXPECT_EQ(pg.users(), 2);
    eq.runUntil(fromMicroseconds(50));
    pg.endUse(); // thread 0 done; thread 1 still executing
    eq.runUntil(fromMicroseconds(100));
    EXPECT_FALSE(pg.closed());
    pg.endUse();
    eq.runUntil(fromMicroseconds(131));
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, LazyCloseNeedsNoEvents)
{
    EventQueue eq;
    Rng rng(1);
    PowerGate pg(eq, rng, PowerGateConfig{});
    pg.open();
    pg.touch();
    pg.beginUse();
    pg.endUse();
    // The gate owns no timer events: idle closes are evaluated lazily.
    EXPECT_TRUE(eq.empty());
}

// Key Conclusion 3: the wake-up is ~0.1% of a 12-15 us throttle period.
TEST(PowerGate, WakeLatencyTinyVsThrottlePeriod)
{
    EventQueue eq;
    Rng rng(1);
    PowerGate pg(eq, rng, PowerGateConfig{});
    Time stall = pg.open();
    double frac = static_cast<double>(stall) /
                  static_cast<double>(fromMicroseconds(12.0));
    EXPECT_LT(frac, 0.002);
}

} // namespace
} // namespace ich
