/**
 * @file
 * Tests for the power-gate model (paper §5.4 / Key Conclusion 3: opening
 * the AVX gate costs 8–15 ns, ~0.1% of a throttling period).
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "pdn/power_gate.hh"

namespace ich
{
namespace
{

TEST(PowerGate, StartsClosedWhenPresent)
{
    EventQueue eq;
    Rng rng(1);
    PowerGate pg(eq, rng, PowerGateConfig{});
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, OpenChargesWakeLatencyOnce)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    PowerGate pg(eq, rng, cfg);
    Time stall = pg.open();
    EXPECT_GE(stall, cfg.wakeLatencyMin);
    EXPECT_LE(stall, cfg.wakeLatencyMax);
    EXPECT_FALSE(pg.closed());
    EXPECT_EQ(pg.open(), 0u); // already open
    EXPECT_EQ(pg.openCount(), 1u);
}

TEST(PowerGate, AbsentGateNeverStalls_HaswellCase)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.present = false; // Haswell predates the AVX power gate
    PowerGate pg(eq, rng, cfg);
    EXPECT_FALSE(pg.closed());
    EXPECT_EQ(pg.open(), 0u);
    EXPECT_EQ(pg.openCount(), 0u);
}

TEST(PowerGate, ClosesAfterIdleDelay)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);
    pg.open();
    eq.runUntil(fromMicroseconds(31));
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, TouchDefersClose)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);
    pg.open();
    eq.runUntil(fromMicroseconds(20));
    pg.touch(); // used again at t=20us
    eq.runUntil(fromMicroseconds(40));
    EXPECT_FALSE(pg.closed()); // close deferred to t=50us
    eq.runUntil(fromMicroseconds(51));
    EXPECT_TRUE(pg.closed());
}

TEST(PowerGate, ReopenAfterCloseStallsAgain)
{
    EventQueue eq;
    Rng rng(1);
    PowerGateConfig cfg;
    cfg.idleCloseDelay = fromMicroseconds(30);
    PowerGate pg(eq, rng, cfg);
    pg.open();
    eq.runUntil(fromMicroseconds(40));
    ASSERT_TRUE(pg.closed());
    EXPECT_GT(pg.open(), 0u);
    EXPECT_EQ(pg.openCount(), 2u);
}

// Key Conclusion 3: the wake-up is ~0.1% of a 12-15 us throttle period.
TEST(PowerGate, WakeLatencyTinyVsThrottlePeriod)
{
    EventQueue eq;
    Rng rng(1);
    PowerGate pg(eq, rng, PowerGateConfig{});
    Time stall = pg.open();
    double frac = static_cast<double>(stall) /
                  static_cast<double>(fromMicroseconds(12.0));
    EXPECT_LT(frac, 0.002);
}

} // namespace
} // namespace ich
