/**
 * @file
 * Analytic chunk-record batching vs the per-chunk event-driven path.
 *
 * The batched materializer must be bit-identical to the legacy
 * one-event-per-chunk path — records are data, not timing — under every
 * rate disturbance the chip can produce: throttle transitions mid-kernel,
 * AVX-gate wake stalls, SMT co-runs, a frequency step mid-loop
 * (Chip::beforeFreqChange invalidation), and OS noise stalls. Mid-run
 * readers must see exactly the per-chunk prefix through the flushing
 * records() accessor, and chunk records must survive a tick-heavy
 * snapshot/restore byte-identically.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "os/noise.hh"
#include "state/state.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

using test::pinnedCannonLake;
using test::quietChip;

/** Everything observable about one run. */
struct RunSig {
    std::vector<Record> records; ///< all threads, concatenated
    std::vector<std::uint64_t> counters;
    Time end = 0;
    std::uint64_t throttleAsserts = 0;
    std::uint64_t pstates = 0;
};

void
collect(Simulation &sim, RunSig &sig)
{
    Chip &chip = sim.chip();
    sig.end = sim.eq().now();
    sig.pstates = chip.pmu().pstateTransitions();
    for (int c = 0; c < chip.coreCount(); ++c) {
        sig.throttleAsserts += chip.core(c).throttle().assertCount();
        for (int t = 0; t < chip.core(c).numThreads(); ++t) {
            const HwThread &thr = chip.core(c).thread(t);
            for (const Record &rec : thr.records())
                sig.records.push_back(rec);
            sig.counters.push_back(thr.counters().clkUnhalted());
            sig.counters.push_back(thr.counters().instRetired());
            sig.counters.push_back(thr.counters().idqUopsNotDelivered());
        }
    }
}

void
expectEqualSigs(const RunSig &a, const RunSig &b)
{
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.pstates, b.pstates);
    EXPECT_EQ(a.throttleAsserts, b.throttleAsserts);
    EXPECT_EQ(a.counters, b.counters);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].tag, b.records[i].tag) << "record " << i;
        EXPECT_EQ(a.records[i].tsc, b.records[i].tsc) << "record " << i;
        EXPECT_EQ(a.records[i].time, b.records[i].time) << "record " << i;
        EXPECT_EQ(a.records[i].iterationsDone,
                  b.records[i].iterationsDone)
            << "record " << i;
    }
}

/**
 * Run @p setup (install programs, optional perturbations) twice — once
 * with analytic batching, once with the per-chunk event path — and
 * demand byte-identical results. The setup callback receives the
 * simulation and the legacy flag to apply to every thread it starts.
 */
void
expectBatchedMatchesPerChunk(
    const ChipConfig &cfg, std::uint64_t seed,
    const std::function<void(Simulation &, bool)> &setup,
    RunSig *out = nullptr)
{
    RunSig sigs[2];
    for (int legacy = 0; legacy < 2; ++legacy) {
        Simulation sim(cfg, seed);
        setup(sim, legacy != 0);
        sim.run(fromSeconds(1.0));
        collect(sim, sigs[legacy]);
    }
    ASSERT_FALSE(sigs[0].records.empty());
    expectEqualSigs(sigs[0], sigs[1]);
    if (out != nullptr)
        *out = sigs[0];
}

/** Install a chunked loop of @p cls on (core, smt) and start it. */
void
startChunked(Simulation &sim, bool legacy, int core, int smt,
             InstClass cls, std::uint64_t iters, std::uint64_t every,
             int tag)
{
    HwThread &thr = sim.chip().core(core).thread(smt);
    thr.setLegacyChunkEvents(legacy);
    Program p;
    p.mark(tag * 100);
    p.loopChunked(cls, iters, every, tag);
    p.mark(tag * 100 + 1);
    thr.setProgram(std::move(p));
    thr.start();
}

TEST(RecordBatching, UncontendedLoopByteIdentical)
{
    expectBatchedMatchesPerChunk(
        quietChip(1.4), 7, [](Simulation &sim, bool legacy) {
            startChunked(sim, legacy, 0, 0, InstClass::kScalar64, 5000,
                         10, 1);
        });
}

TEST(RecordBatching, ThrottleTransitionsMidKernelByteIdentical)
{
    // Non-secure chip: the PHI kernel provokes guardband up-transitions
    // and voltage-ramp throttling mid-loop (rate changes both ways).
    RunSig sig;
    expectBatchedMatchesPerChunk(
        pinnedCannonLake(2.0), 11,
        [](Simulation &sim, bool legacy) {
            startChunked(sim, legacy, 0, 0, InstClass::k512Heavy, 4000,
                         10, 1);
        },
        &sig);
    EXPECT_GT(sig.throttleAsserts, 0u);
}

TEST(RecordBatching, AvxGateStallByteIdentical)
{
    // Idle past the AVX gate's close so the chunked kernel's entry pays
    // a wake stall (stallUntil_ splits the first materialized segment).
    expectBatchedMatchesPerChunk(
        pinnedCannonLake(2.0), 13, [](Simulation &sim, bool legacy) {
            HwThread &thr = sim.chip().core(0).thread(0);
            thr.setLegacyChunkEvents(legacy);
            Program p;
            p.loop(InstClass::k512Heavy, 200, 100);
            p.idle(fromMicroseconds(80)); // beyond the gate idle-close
            p.loopChunked(InstClass::k512Heavy, 3000, 10, 2);
            thr.setProgram(std::move(p));
            thr.start();
        });
}

TEST(RecordBatching, SmtCoRunByteIdentical)
{
    // Receiver measures continuously on SMT 1 while the sender's PHI
    // bursts on SMT 0 flip the shared throttle and the AVX gate.
    expectBatchedMatchesPerChunk(
        pinnedCannonLake(2.0), 17, [](Simulation &sim, bool legacy) {
            HwThread &tx = sim.chip().core(0).thread(0);
            tx.setLegacyChunkEvents(legacy);
            Program p;
            for (int k = 0; k < 4; ++k) {
                p.loop(InstClass::k256Heavy, 800, 100);
                p.idle(fromMicroseconds(120));
            }
            tx.setProgram(std::move(p));
            startChunked(sim, legacy, 0, 1, InstClass::kScalar64, 40000,
                         64, 3);
            tx.start();
        });
}

TEST(RecordBatching, FrequencyStepMidLoopByteIdentical)
{
    // A governor write mid-loop forces a P-state transition: the PLL
    // change must flush pending analytic records at the old rate
    // (Chip::beforeFreqChange) before the new rate becomes visible.
    RunSig sig;
    expectBatchedMatchesPerChunk(
        pinnedCannonLake(3.0), 19,
        [](Simulation &sim, bool legacy) {
            startChunked(sim, legacy, 0, 0, InstClass::kScalar64, 30000,
                         10, 4);
            sim.eq().schedule(fromMicroseconds(120), [&sim] {
                sim.chip().pmu().writeGovernor(GovernorPolicy::kUserspace,
                                               1.8);
            });
            sim.eq().schedule(fromMicroseconds(400), [&sim] {
                sim.chip().pmu().writeGovernor(GovernorPolicy::kUserspace,
                                               3.0);
            });
        },
        &sig);
    // The scenario is only meaningful if the PLL actually stepped.
    EXPECT_GE(sig.pstates, 2u);
}

TEST(RecordBatching, FrequencyUpstepTailCrossingByteIdentical)
{
    // Regression: a record boundary crossed *within the accrual tail*
    // of a frequency change (old-rate crossing beyond the transition
    // end, new-rate crossing before it). The per-chunk path sleeps
    // until its old boundary time and emits the overshot record at the
    // deassert refresh; the analytic path must do the same — never
    // re-derive a crossing at accrue-time rates.
    for (std::uint64_t every : {std::uint64_t{100}, std::uint64_t{250}}) {
        RunSig sig;
        expectBatchedMatchesPerChunk(
            pinnedCannonLake(1.0), 43,
            [every](Simulation &sim, bool legacy) {
                startChunked(sim, legacy, 0, 0, InstClass::kScalar64,
                             20000, every, 4);
                sim.eq().schedule(fromMicroseconds(100), [&sim] {
                    sim.chip().pmu().writeGovernor(
                        GovernorPolicy::kUserspace, 3.0);
                });
            },
            &sig);
        EXPECT_GE(sig.pstates, 1u) << "recordEvery=" << every;
    }
}

TEST(RecordBatching, NoiseStallsByteIdentical)
{
    // fig14-style OS noise: interrupt/context-switch stalls re-anchor
    // the recurrence at random times.
    ChipConfig cfg = pinnedCannonLake(2.0);
    RunSig sigs[2];
    for (int legacy = 0; legacy < 2; ++legacy) {
        Simulation sim(cfg, 23);
        startChunked(sim, legacy != 0, 0, 0, InstClass::k256Heavy, 8000,
                     10, 5);
        NoiseConfig ncfg;
        ncfg.interruptRatePerSec = 80000.0;
        ncfg.contextSwitchRatePerSec = 9000.0;
        NoiseInjector noise(sim.chip(), sim.rng(), ncfg, 0, 0);
        noise.start(fromSeconds(1.0));
        sim.run(fromSeconds(1.0));
        sigs[legacy] = RunSig{};
        collect(sim, sigs[legacy]);
        if (legacy) {
            ASSERT_FALSE(sigs[0].records.empty());
            expectEqualSigs(sigs[0], sigs[1]);
        }
    }
}

TEST(RecordBatching, MidRunReadersSeePerChunkPrefix)
{
    // Cut both runs at an arbitrary mid-loop time: the flushing
    // records()/counters() accessors must expose exactly the records
    // and accruals the per-chunk path had emitted by then.
    ChipConfig cfg = quietChip(1.4);
    RunSig sigs[2];
    const Time cut = fromMicroseconds(173);
    for (int legacy = 0; legacy < 2; ++legacy) {
        Simulation sim(cfg, 29);
        startChunked(sim, legacy != 0, 0, 0, InstClass::kScalar64, 50000,
                     10, 6);
        sim.eq().runUntil(cut);
        collect(sim, sigs[legacy]);
    }
    ASSERT_FALSE(sigs[0].records.empty());
    // The loop is far from done: these really are mid-run reads.
    EXPECT_LT(sigs[0].records.back().iterationsDone, 50000u);
    expectEqualSigs(sigs[0], sigs[1]);
}

TEST(RecordBatching, MidRunReadDoesNotPerturbContinuation)
{
    // Reading records mid-run (which flushes pending materialization)
    // must not change anything downstream.
    ChipConfig cfg = pinnedCannonLake(2.0);
    RunSig sigs[2];
    for (int probe = 0; probe < 2; ++probe) {
        Simulation sim(cfg, 31);
        startChunked(sim, false, 0, 0, InstClass::k512Heavy, 4000, 10, 7);
        if (probe) {
            sim.eq().schedule(fromMicroseconds(40), [&sim] {
                // Touch every flushing accessor.
                HwThread &thr = sim.chip().core(0).thread(0);
                (void)thr.records().size();
                (void)thr.counters().clkUnhalted();
                (void)thr.loopIterationsDone();
            });
        }
        sim.run(fromSeconds(1.0));
        collect(sim, sigs[probe]);
    }
    expectEqualSigs(sigs[0], sigs[1]);
}

TEST(RecordBatching, TickHeavySnapshotRestoreByteIdentical)
{
    // Chunk records produced by the analytic path must round-trip a
    // tick-heavy snapshot (RAPL window + ondemand governor + thermal
    // sampling all on the Ticker) and the restored simulation must
    // continue byte-identically through another chunked program.
    ChipConfig cfg = pinnedCannonLake(2.0);
    cfg.pmu.powerLimit.enabled = true;
    cfg.pmu.powerLimit.evalInterval = fromMicroseconds(200);
    cfg.pmu.governor.evalInterval = fromMicroseconds(50);
    cfg.thermal.sampleInterval = fromMicroseconds(20);

    Simulation original(cfg, 37);
    startChunked(original, false, 0, 0, InstClass::k256Heavy, 3000, 10,
                 8);
    original.run(fromSeconds(1.0));
    state::quiesce(original);
    ASSERT_FALSE(original.chip().core(0).thread(0).records().empty());

    state::Buffer snap = state::snapshot(original);
    std::unique_ptr<Simulation> restored = state::restore(snap);

    // Saved records round-trip bit-exactly.
    RunSig before, after;
    collect(original, before);
    collect(*restored, after);
    expectEqualSigs(before, after);

    // Continuation stays byte-identical (fresh chunked program on both).
    RunSig cont[2];
    Simulation *sims[2] = {&original, restored.get()};
    for (int i = 0; i < 2; ++i) {
        startChunked(*sims[i], false, 0, 0, InstClass::kScalar64, 4000,
                     10, 9);
        sims[i]->runFor(fromMilliseconds(2));
        cont[i] = RunSig{};
        collect(*sims[i], cont[i]);
    }
    expectEqualSigs(cont[0], cont[1]);
}

TEST(RecordBatching, SetProgramReservesRecordCapacity)
{
    Simulation sim(quietChip(1.4));
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.mark(0);
    p.loopChunked(InstClass::kScalar64, 1000, 10, 1);
    p.mark(1);
    thr.setProgram(std::move(p));
    // 100 chunk records + 2 marks, reserved before the run starts.
    EXPECT_GE(thr.records().capacity(), 102u);
    thr.start();
    const Record *data_before = thr.records().data();
    sim.run();
    EXPECT_EQ(thr.records().size(), 102u);
    // No regrowth happened inside the hot loop.
    EXPECT_EQ(thr.records().data(), data_before);
}

} // namespace
} // namespace ich
