/**
 * @file
 * Parameterized property suites sweeping invariants across presets,
 * frequencies, classes and coding parameters.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "channels/coding.hh"
#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

ChipConfig
presetByName(const std::string &name)
{
    if (name == "haswell")
        return presets::haswell();
    if (name == "coffeelake")
        return presets::coffeeLake();
    if (name == "skylake-server" || name == "skylake_server")
        return presets::skylakeServer();
    return presets::cannonLake();
}

// ---------------------------------------------------------------------
// Property: throttling period is monotone non-decreasing in guardband
// level on every preset at every frequency (Fig. 10a generalized).
// ---------------------------------------------------------------------
using PresetFreq = std::tuple<std::string, double>;

class TpMonotoneProperty : public ::testing::TestWithParam<PresetFreq>
{
};

TEST_P(TpMonotoneProperty, TpMonotoneInLevel)
{
    auto [name, freq] = GetParam();
    ChipConfig cfg = presetByName(name);
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = freq;
    cfg.pmu.vr.commandJitter = 0;

    double prev_tp = -1.0;
    int prev_lvl = -1;
    for (auto cls : kAllInstClasses) {
        double tp = test::throttlePeriodUs(cfg, cls, freq);
        int lvl = traits(cls).guardbandLevel;
        if (lvl > prev_lvl)
            EXPECT_GT(tp, prev_tp - 0.02) << toString(cls);
        else
            EXPECT_NEAR(tp, prev_tp, 0.1) << toString(cls);
        prev_tp = tp;
        prev_lvl = lvl;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TpMonotoneProperty,
    ::testing::Values(PresetFreq{"cannonlake", 1.0},
                      PresetFreq{"cannonlake", 1.4},
                      PresetFreq{"cannonlake", 2.0},
                      PresetFreq{"coffeelake", 1.4},
                      PresetFreq{"coffeelake", 2.4},
                      PresetFreq{"haswell", 1.4},
                      PresetFreq{"skylake-server", 1.4}),
    [](const ::testing::TestParamInfo<PresetFreq> &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_" +
               std::to_string(
                   static_cast<int>(std::get<1>(info.param) * 10));
    });

// ---------------------------------------------------------------------
// Property: the guardband (Equation 1) scales linearly with frequency x
// base voltage on every preset.
// ---------------------------------------------------------------------
class GuardbandScaling : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GuardbandScaling, LinearInVTimesF)
{
    ChipConfig cfg = presetByName(GetParam());
    GuardbandModel gb(LoadLine(cfg.pmu.rllOhm), cfg.pmu.vf);
    for (int lvl = 1; lvl < gb.numLevels(); ++lvl) {
        double g1 = gb.gbVolts(lvl, 1.0);
        double g2 = gb.gbVolts(lvl, 2.0);
        double expected_ratio =
            (gb.baseVolts(2.0) * 2.0) / (gb.baseVolts(1.0) * 1.0);
        EXPECT_NEAR(g2 / g1, expected_ratio, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Presets, GuardbandScaling,
                         ::testing::Values("cannonlake", "coffeelake",
                                           "haswell", "skylake_server"));

// ---------------------------------------------------------------------
// Property: repetition and Hamming codes round-trip random payloads of
// many sizes, and repetition-k corrects any floor((k-1)/2) errors per
// group.
// ---------------------------------------------------------------------
using CodingCase = std::tuple<int, int>; // (payload bits, k)

class RepetitionProperty : public ::testing::TestWithParam<CodingCase>
{
};

TEST_P(RepetitionProperty, RoundTripAndCorrection)
{
    auto [n, k] = GetParam();
    BitVec bits;
    unsigned x = static_cast<unsigned>(n * 31 + k);
    for (int i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    BitVec coded = repetitionEncode(bits, k);
    EXPECT_EQ(repetitionDecode(coded, k), bits);

    // Flip floor((k-1)/2) bits in each group: still decodable.
    BitVec corrupted = coded;
    int flips = (k - 1) / 2;
    for (int g = 0; g < n; ++g)
        for (int f = 0; f < flips; ++f)
            corrupted[static_cast<std::size_t>(g) * k + f] ^= 1;
    EXPECT_EQ(repetitionDecode(corrupted, k), bits);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RepetitionProperty,
                         ::testing::Combine(::testing::Values(1, 7, 32,
                                                              129),
                                            ::testing::Values(1, 3, 5,
                                                              7)));

class HammingProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HammingProperty, RoundTripRandomPayload)
{
    int n = GetParam();
    BitVec bits;
    unsigned x = static_cast<unsigned>(n) * 2654435761u;
    for (int i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    BitVec decoded = hammingDecode(hammingEncode(bits));
    decoded.resize(bits.size());
    EXPECT_EQ(decoded, bits);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HammingProperty,
                         ::testing::Values(4, 8, 12, 64, 100, 256));

// ---------------------------------------------------------------------
// Property: simultaneous PHI requests from N cores all release exactly
// when the SVID queue drains, and the rail ends at the sum of all
// guardbands (server preset stress).
// ---------------------------------------------------------------------
class SvidStress : public ::testing::TestWithParam<int>
{
};

TEST_P(SvidStress, NCoreSimultaneousRequests)
{
    int n = GetParam();
    ChipConfig cfg = presets::skylakeServer();
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 1.4;
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg, 17);
    Chip &chip = sim.chip();
    double v0 = chip.vccVolts();

    for (int c = 0; c < n; ++c) {
        Program p;
        p.mark(0);
        p.loop(InstClass::k256Heavy, 600, 100);
        p.mark(1);
        chip.core(c).thread(0).setProgram(std::move(p));
    }
    for (int c = 0; c < n; ++c)
        chip.core(c).thread(0).start();
    sim.run(fromMilliseconds(5));

    // All cores' guardbands granted, rail at the additive target.
    double gb1 = chip.pmu().guardbandModel().gbVolts(3, 1.4);
    EXPECT_NEAR(chip.vccVolts() - v0, n * gb1, 1e-4);
    for (int c = 0; c < n; ++c)
        EXPECT_EQ(chip.pmu().grantedLevel(c), 3);

    // All requesting cores are released together when the SVID queue
    // drains, so their completions cluster tightly — and every one of
    // them ran longer than a solo core would (mutual exacerbation, with
    // total ramp time growing with N).
    Time first_done = ~Time{0}, last_done = 0;
    for (int c = 0; c < n; ++c) {
        const auto &recs = chip.core(c).thread(0).records();
        ASSERT_EQ(recs.size(), 2u);
        Time dur = recs[1].time - recs[0].time;
        double solo_us = 3.0; // 256bH @1.4 GHz solo TP is ~3.6 us
        double nominal_us = toMicroseconds(test::kernelPicos(
            makeKernel(InstClass::k256Heavy, 600, 100), 1.4));
        EXPECT_GT(toMicroseconds(dur), nominal_us + solo_us * 0.75 * n /
                                           2.0);
        first_done = std::min(first_done, recs[1].time);
        last_done = std::max(last_done, recs[1].time);
    }
    EXPECT_LT(toMicroseconds(last_done - first_done), 3.0);
}

INSTANTIATE_TEST_SUITE_P(Cores, SvidStress, ::testing::Values(2, 4, 8));

// ---------------------------------------------------------------------
// Property: channel results are identical across repeated construction
// for every channel kind (determinism).
// ---------------------------------------------------------------------
class Determinism : public ::testing::TestWithParam<ChannelKind>
{
};

TEST_P(Determinism, SameSeedSameTps)
{
    auto make = [&]() {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = 1234;
        cfg.noise.interruptRatePerSec = 3000.0;
        return cfg;
    };
    auto run = [&](const ChannelConfig &cfg) {
        std::unique_ptr<CovertChannel> ch;
        switch (GetParam()) {
          case ChannelKind::kThread:
            ch = std::make_unique<IccThreadCovert>(cfg);
            break;
          case ChannelKind::kSmt:
            ch = std::make_unique<IccSMTcovert>(cfg);
            break;
          case ChannelKind::kCores:
            ch = std::make_unique<IccCoresCovert>(cfg);
            break;
        }
        return ch->transmit({1, 0, 1, 1, 0, 0});
    };
    TransmitResult a = run(make());
    TransmitResult b = run(make());
    EXPECT_EQ(a.tpUs, b.tpUs);
    EXPECT_EQ(a.receivedBits, b.receivedBits);
}

INSTANTIATE_TEST_SUITE_P(Kinds, Determinism,
                         ::testing::Values(ChannelKind::kThread,
                                           ChannelKind::kSmt,
                                           ChannelKind::kCores),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

} // namespace
} // namespace ich
