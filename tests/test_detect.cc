/**
 * @file
 * Tests for the online covert-channel detection subsystem (src/detect/):
 * count-min/Nitrosketch accuracy bounds on synthetic streams, detector
 * determinism (trial-level, --jobs, --shard), snapshot byte-identity
 * with a DetectorBank attached through the SnapshotHooks/RestoreHooks
 * extension points, attacker-vs-honest score separation, and the
 * adaptive attacker's sub-budget behavior.
 *
 * This binary supplies its own main(): like test_shard, it doubles as
 * the shard worker (the coordinator fork/execs /proc/self/exe with
 * --shard-worker), so the registry below is shared between the gtest
 * process and every spawned worker.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "chip/presets.hh"
#include "chip/simulation.hh"
#include "detect/detector.hh"
#include "detect/sketch.hh"
#include "detect/tenant.hh"
#include "exp/exp.hh"
#include "shard/shard.hh"
#include "state/state.hh"

namespace ich
{
namespace
{

namespace fs = std::filesystem;

/** Small, fast co-residency trial config shared by the tests. */
detect::TenantConfig
smallTenantConfig(std::uint64_t seed, bool attacker)
{
    detect::TenantConfig cfg;
    cfg.seed = seed;
    cfg.attackerPresent = attacker;
    cfg.payloadBits = 16;
    cfg.honestTenants = 2;
    return cfg;
}

exp::ScenarioSpec
detectSpec()
{
    exp::ScenarioSpec spec;
    spec.name = "detect-tenant";
    spec.description = "detector-vs-attacker unit scenario";
    spec.axes = {exp::axisLabeledValues(
        "attacker", {{"honest", 0.0}, {"attacker", 1.0}})};
    spec.trials = 2;
    spec.baseSeed = 7;
    spec.run = [](const exp::TrialContext &ctx) {
        return detect::runTenantTrial(
                   smallTenantConfig(ctx.seed,
                                     ctx.point.getInt("attacker") == 1))
            .metrics;
    };
    return spec;
}

} // namespace

/** Worker-visible registry (must be reachable from main()). */
const exp::ScenarioRegistry &
detectTestRegistry()
{
    static const exp::ScenarioRegistry reg = [] {
        exp::ScenarioRegistry r;
        r.add(detectSpec());
        return r;
    }();
    return reg;
}

namespace
{

// ------------------------------------------------------ count-min sketch

TEST(CountMinSketch, ExactModeBoundsTheDominantKey)
{
    detect::CountMinSketch cm(4, 512, 1.0, 0xFEEDu);
    constexpr std::uint64_t kHeavy = 0xAB;
    for (int i = 0; i < 600; ++i)
        cm.update(kHeavy);
    for (std::uint64_t k = 1000; k < 1100; ++k)
        for (int i = 0; i < 4; ++i)
            cm.update(k);

    // Count-min never underestimates, and with 700 keys' worth of mass
    // spread over 512 counters per row the overestimate on the heavy
    // key stays small.
    EXPECT_GE(cm.estimate(kHeavy), 600.0);
    EXPECT_LE(cm.estimate(kHeavy), 600.0 * 1.10);
    for (std::uint64_t k = 1000; k < 1100; ++k)
        EXPECT_GE(cm.estimate(k), 4.0);
    EXPECT_DOUBLE_EQ(cm.totalWeight(), 600.0 + 400.0);
    EXPECT_EQ(cm.updates(), 1000u);
}

TEST(CountMinSketch, NitrosketchSamplingTracksTheExactSketch)
{
    // Same stream, 25% per-row update probability: counters get w/p on
    // sampled rows, so estimates stay unbiased; with 600 updates on the
    // heavy key the realized estimate must land near the exact count.
    detect::CountMinSketch cm(4, 512, 0.25, 0xFEEDu);
    constexpr std::uint64_t kHeavy = 0xAB;
    for (int i = 0; i < 600; ++i)
        cm.update(kHeavy);
    for (std::uint64_t k = 1000; k < 1100; ++k)
        for (int i = 0; i < 4; ++i)
            cm.update(k);

    EXPECT_NEAR(cm.estimate(kHeavy), 600.0, 600.0 * 0.25);
    EXPECT_DOUBLE_EQ(cm.totalWeight(), 1000.0); // exact by construction
    EXPECT_EQ(cm.updates(), 1000u);
}

TEST(CountMinSketch, RejectsBadGeometry)
{
    EXPECT_THROW(detect::CountMinSketch(0, 16, 1.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(detect::CountMinSketch(2, 16, 0.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(detect::CountMinSketch(2, 16, 1.5, 1),
                 std::invalid_argument);
}

// ----------------------------------------------------- tenant campaigns

TEST(DetectTenant, ScoresSeparateAttackerFromHonestNoise)
{
    // Payload long enough for the sketch to pass its minUpdates
    // warm-up (a 16-bit transfer ends before 48 stream updates arrive).
    detect::TenantConfig cfg;
    cfg.seed = 11;
    cfg.payloadBits = 32;
    cfg.attackerPresent = false;
    detect::TenantResult honest = detect::runTenantTrial(cfg);
    cfg.attackerPresent = true;
    detect::TenantResult attacked = detect::runTenantTrial(cfg);

    EXPECT_GT(attacked.metrics.at("det_sketch_score"),
              honest.metrics.at("det_sketch_score"));
    EXPECT_GT(attacked.metrics.at("det_cusum_score"),
              honest.metrics.at("det_cusum_score"));
    // The attacker-present trial carries the channel's own metrics; the
    // honest arm must not.
    EXPECT_EQ(attacked.metrics.count("throughput_bps"), 1u);
    EXPECT_EQ(honest.metrics.count("throughput_bps"), 0u);
    EXPECT_GT(attacked.metrics.at("det_samples"), 0.0);
    EXPECT_GT(honest.metrics.at("det_samples"), 0.0);
}

TEST(DetectTenant, TrialsAreBitwiseDeterministic)
{
    for (bool attacker : {false, true}) {
        detect::TenantResult a =
            detect::runTenantTrial(smallTenantConfig(23, attacker));
        detect::TenantResult b =
            detect::runTenantTrial(smallTenantConfig(23, attacker));
        EXPECT_EQ(a.metrics, b.metrics);
    }
}

TEST(DetectTenant, JobsAreByteIdentical)
{
    const exp::ScenarioSpec &spec =
        *detectTestRegistry().find("detect-tenant");
    exp::RunnerOptions serial;
    serial.jobs = 1;
    exp::RunnerOptions pooled;
    pooled.jobs = 4;
    EXPECT_EQ(exp::jsonReport(exp::SweepRunner(serial).run(spec), true),
              exp::jsonReport(exp::SweepRunner(pooled).run(spec), true));
}

TEST(DetectTenant, ShardedSweepIsByteIdenticalToSerial)
{
    const exp::ScenarioSpec &spec =
        *detectTestRegistry().find("detect-tenant");
    fs::path scratch =
        fs::path(::testing::TempDir()) / "detect_shard_scratch";
    fs::remove_all(scratch);
    fs::create_directories(scratch);

    shard::ShardOptions opts;
    opts.workers = 2;
    opts.scratchDir = scratch.string();
    exp::SweepResult sharded = shard::runSharded(spec, opts);

    exp::RunnerOptions serial;
    serial.jobs = 1;
    EXPECT_EQ(exp::jsonReport(sharded, true),
              exp::jsonReport(exp::SweepRunner(serial).run(spec), true));
    fs::remove_all(scratch);
}

TEST(DetectTenant, AdaptiveAttackerStaysUnderTheBudget)
{
    detect::TenantConfig base;
    base.seed = 5;
    base.payloadBits = 32;
    // Budget chosen between the full-duty sketch score (~0.22) and the
    // low-duty floor, so the bisection has to actually back off.
    detect::FrontierPoint p =
        detect::adaptiveDutySearch(base, "sketch", 0.15, /*iters=*/3);
    ASSERT_TRUE(p.feasible);
    EXPECT_LE(p.score, 0.15);
    EXPECT_LT(p.duty, 1.0);
    EXPECT_GT(p.duty, 0.0);
    EXPECT_GT(p.throughputBps, 0.0);
}

// -------------------------------------------- snapshot composition

/** PHI work on two cores; returns after the programs complete. */
void
driveWork(Simulation &sim, int marker)
{
    Chip &chip = sim.chip();
    for (int c = 0; c < 2; ++c) {
        Program p;
        p.mark(marker + c);
        p.loop(InstClass::k256Heavy, 2000, 100);
        p.idle(fromMicroseconds(30));
        p.loop(InstClass::k128Heavy, 1000, 100);
        HwThread &thr = chip.core(c).thread(0);
        thr.setProgram(std::move(p));
        thr.start();
    }
    sim.run(fromSeconds(1.0));
    state::quiesce(sim);
}

/**
 * Bit-exact rendering of the chip's *physics* — everything a program
 * or a channel could observe, but none of the event-queue bookkeeping
 * (executed-event counts, insertion sequences), which legitimately
 * differs when a detector bank adds its own observation ticks.
 */
std::string
physicsSignature(Simulation &sim)
{
    Chip &chip = sim.chip(); // tjCelsius() integrates lazily: non-const
    std::string sig;
    char buf[256];
    auto add = [&sig, &buf](int n) {
        sig.append(buf, static_cast<std::size_t>(n));
    };
    add(std::snprintf(buf, sizeof buf, "freq=%a volts=%a icc=%a tj=%a\n",
                      chip.freqGhz(), chip.vccVolts(), chip.iccAmps(),
                      chip.tjCelsius()));
    const CentralPmu &pmu = chip.pmu();
    add(std::snprintf(
        buf, sizeof buf, "pstates=%llu vreqs=%llu\n",
        static_cast<unsigned long long>(pmu.pstateTransitions()),
        static_cast<unsigned long long>(pmu.voltageRequests())));
    for (int c = 0; c < chip.coreCount(); ++c) {
        const Core &core = chip.core(c);
        add(std::snprintf(buf, sizeof buf, "core%d asserts=%llu gb=%d\n",
                          c,
                          static_cast<unsigned long long>(
                              core.throttle().assertCount()),
                          pmu.grantedLevel(c)));
        for (int t = 0; t < core.numThreads(); ++t) {
            const PerfCounters &pc = core.thread(t).counters();
            add(std::snprintf(
                buf, sizeof buf, " t%d clk=%llu inst=%llu\n", t,
                static_cast<unsigned long long>(pc.clkUnhalted()),
                static_cast<unsigned long long>(pc.instRetired())));
        }
    }
    return sig;
}

state::SnapshotHooks
saveHooks(detect::DetectorBank &bank)
{
    state::SnapshotHooks hooks;
    hooks.save = [&bank](state::ArchiveWriter &w, state::SaveContext &ctx) {
        bank.saveSections(w, ctx);
    };
    return hooks;
}

TEST(DetectSnapshot, BankRestoresByteIdentically)
{
    detect::DetectConfig dcfg;
    Simulation sim(presets::coffeeLake(), 99);
    detect::DetectorBank bank(sim.chip(), dcfg);
    driveWork(sim, 100);
    ASSERT_GT(bank.detector(0).samples(), 0u);

    state::Buffer snap = state::snapshot(sim, saveHooks(bank));

    // Restore with the hook pair: the bank must re-attach before the
    // core sections (Ticker persistent-member contract) and restore its
    // own sections after them.
    std::unique_ptr<detect::DetectorBank> bank2;
    state::RestoreHooks rhooks;
    rhooks.attach = [&](Simulation &s) {
        bank2 = std::make_unique<detect::DetectorBank>(s.chip(), dcfg);
    };
    rhooks.restore = [&](Simulation &, state::ArchiveReader &ar,
                         state::RestoreContext &ctx) {
        bank2->restoreSections(ar, ctx);
    };
    std::unique_ptr<Simulation> sim2 = state::restore(snap, rhooks);
    ASSERT_TRUE(bank2);

    // Identical observable detector state right after the restore...
    EXPECT_EQ(bank.metrics(), bank2->metrics());
    EXPECT_EQ(bank.detector(0).samples(), bank2->detector(0).samples());

    // ...and identical continuation: drive the same fresh work on
    // both, then compare physics and detector state bit-exactly.
    driveWork(sim, 300);
    driveWork(*sim2, 300);
    EXPECT_EQ(physicsSignature(sim), physicsSignature(*sim2));
    EXPECT_EQ(bank.metrics(), bank2->metrics());

    // The bank detaches cleanly: a detached sim snapshots without hooks.
    bank2.reset();
    EXPECT_NO_THROW(state::snapshot(*sim2));
}

TEST(DetectSnapshot, AttachedBankNeverPerturbsThePhysics)
{
    // A sim that never had a bank and one carrying a full bank must
    // execute identical physics — detectors are pure observers.
    Simulation plain(presets::coffeeLake(), 123);
    driveWork(plain, 100);

    Simulation watched(presets::coffeeLake(), 123);
    detect::DetectorBank bank(watched.chip(), detect::DetectConfig{});
    driveWork(watched, 100);

    EXPECT_EQ(physicsSignature(watched), physicsSignature(plain));
    EXPECT_GT(bank.detector(0).samples(), 0u);
}

} // namespace
} // namespace ich

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--shard-worker") {
            ich::exp::CliOptions cli;
            int rc = ich::exp::harnessSetup(
                argc, argv, ich::detectTestRegistry(), cli);
            return rc >= 0 ? rc : 1;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
