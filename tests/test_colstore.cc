/**
 * @file
 * Tests for the CRC-framed chunk layer (state/chunkio.hh) and the
 * columnar result store built on it (exp/colstore.hh): bit-exact round
 * trips, torn-tail recovery to a whole-point prefix, adoption of an
 * interrupted store, and loud rejection of corrupt or conflicting data.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exp/colstore.hh"
#include "exp/resume.hh"
#include "exp/scenario.hh"
#include "state/chunkio.hh"

namespace ich
{
namespace
{

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string &name)
        : path(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string file(const std::string &name) const
    {
        return (path / name).string();
    }
};

std::uint64_t
bitsOf(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof b);
    return b;
}

void
flipByteAt(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

// ------------------------------------------------------- chunk framing

TEST(ChunkIo, RoundTripFrames)
{
    TempDir dir("chunkio_roundtrip");
    std::string path = dir.file("frames.bin");

    state::Buffer a = {1, 2, 3, 4, 5};
    state::Buffer b; // empty body is legal
    state::Buffer c(1000, 0xAB);
    {
        state::ChunkFileWriter w;
        w.create(path, /*durable=*/false);
        w.append(7, a);
        w.append(8, b);
        w.append(9, c);
        w.close();
    }

    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    ASSERT_TRUE(scan.next(frame));
    EXPECT_EQ(frame.kind, 7u);
    EXPECT_EQ(frame.body, a);
    ASSERT_TRUE(scan.next(frame));
    EXPECT_EQ(frame.kind, 8u);
    EXPECT_TRUE(frame.body.empty());
    ASSERT_TRUE(scan.next(frame));
    EXPECT_EQ(frame.kind, 9u);
    EXPECT_EQ(frame.body, c);
    EXPECT_FALSE(scan.next(frame));
    EXPECT_FALSE(scan.tornTail());
    EXPECT_EQ(scan.validBytes(), scan.fileSize());
}

// Torn-tail detection and reopen-truncation are covered exhaustively —
// at every byte offset — by tests/test_torn_matrix.cc.

TEST(ChunkIo, CorruptBodyIsRejectedNotTreatedAsTorn)
{
    TempDir dir("chunkio_corrupt");
    std::string path = dir.file("frames.bin");
    state::Buffer body = {1, 2, 3, 4, 5, 6, 7, 8};
    {
        state::ChunkFileWriter w;
        w.create(path, false);
        w.append(1, body);
        w.close();
    }
    flipByteAt(path, 12 + 2); // inside the body: CRC must catch it

    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    EXPECT_THROW(scan.next(frame), state::ArchiveError);
}

TEST(ChunkIo, BadMagicIsRejected)
{
    TempDir dir("chunkio_magic");
    std::string path = dir.file("frames.bin");
    {
        state::ChunkFileWriter w;
        w.create(path, false);
        w.append(1, {9, 9});
        w.close();
    }
    flipByteAt(path, 0);

    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    EXPECT_THROW(scan.next(frame), state::ArchiveError);
}

// ------------------------------------------------------- column store

exp::SweepMeta
makeMeta(int trials = 2, std::uint64_t seed = 42)
{
    exp::ScenarioSpec spec;
    spec.name = "colstore-grid";
    spec.description = "store round-trip grid";
    spec.axes = {exp::axis("x", {1.0, 2.0, 3.0})};
    exp::SweepMeta meta;
    meta.scenario = spec.name;
    meta.description = spec.description;
    meta.baseSeed = seed;
    meta.trialsPerPoint = trials;
    meta.points = exp::expandPoints(spec);
    meta.gridFp = exp::gridFingerprint(meta.points);
    return meta;
}

/** Trials of one point, with bit-pattern-hostile values on point 0. */
std::vector<exp::TrialRecord>
makeRecords(const exp::SweepMeta &meta, std::size_t point_idx)
{
    std::vector<exp::TrialRecord> recs;
    for (int t = 0; t < meta.trialsPerPoint; ++t) {
        exp::TrialRecord rec;
        rec.pointIndex = point_idx;
        rec.trial = t;
        rec.seed = exp::deriveTrialSeed(
            meta.baseSeed,
            point_idx * static_cast<std::size_t>(meta.trialsPerPoint) +
                static_cast<std::size_t>(t));
        if (point_idx == 0 && t == 0) {
            rec.metrics["ber"] = -0.0;       // sign must survive
            rec.metrics["tp"] = 3.0e-310;    // subnormal
        } else {
            rec.metrics["ber"] = 0.1 + 0.2 * point_idx + 0.01 * t;
            rec.metrics["tp"] = 1e6 / (1.0 + point_idx + t);
        }
        recs.push_back(std::move(rec));
    }
    return recs;
}

void
expectBitEqual(const std::vector<exp::TrialRecord> &a,
               const std::vector<exp::TrialRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pointIndex, b[i].pointIndex);
        EXPECT_EQ(a[i].trial, b[i].trial);
        EXPECT_EQ(a[i].seed, b[i].seed);
        ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
        auto ia = a[i].metrics.begin();
        auto ib = b[i].metrics.begin();
        for (; ia != a[i].metrics.end(); ++ia, ++ib) {
            EXPECT_EQ(ia->first, ib->first);
            EXPECT_EQ(bitsOf(ia->second), bitsOf(ib->second));
        }
    }
}

TEST(ColStore, WriteReadRoundTripIsBitExact)
{
    TempDir dir("colstore_roundtrip");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();

    exp::ColumnStoreWriter w(path);
    w.beginSweep(meta);
    // Completion order is not index order — the store must not care.
    for (std::size_t idx : {2u, 0u, 1u}) {
        auto recs = makeRecords(meta, idx);
        w.acceptPoint(idx, recs.data(), recs.size());
    }
    w.endSweep();

    exp::ColumnStoreReader r(path);
    EXPECT_EQ(r.scenario(), meta.scenario);
    EXPECT_EQ(r.description(), meta.description);
    EXPECT_EQ(r.baseSeed(), meta.baseSeed);
    EXPECT_EQ(r.trialsPerPoint(), meta.trialsPerPoint);
    EXPECT_EQ(r.numPoints(), meta.numPoints());
    EXPECT_EQ(r.gridFp(), meta.gridFp);
    EXPECT_TRUE(r.matches(meta));
    EXPECT_TRUE(r.cleanFooter());
    EXPECT_FALSE(r.tornTail());
    EXPECT_EQ(r.completedPoints(), 3u);
    EXPECT_EQ(r.totalRecords(), 6u);

    // forEachPoint visits ascending point order regardless of
    // completion order, and every value round-trips bit-exactly.
    std::vector<std::size_t> order;
    r.forEachPoint([&](std::size_t idx,
                       const std::vector<exp::TrialRecord> &recs) {
        order.push_back(idx);
        expectBitEqual(recs, makeRecords(meta, idx));
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));

    EXPECT_TRUE(r.hasPoint(1));
    EXPECT_FALSE(r.hasPoint(3));
    expectBitEqual(r.readPoint(0), makeRecords(meta, 0));
    EXPECT_THROW(r.readPoint(3), std::out_of_range);
}

TEST(ColStore, MatchesIgnoresDescriptionButNotIdentity)
{
    TempDir dir("colstore_matches");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();
    {
        exp::ColumnStoreWriter w(path);
        w.beginSweep(meta);
        w.endSweep();
    }
    exp::ColumnStoreReader r(path);

    exp::SweepMeta reworded = meta;
    reworded.description = "same sweep, new words";
    EXPECT_TRUE(r.matches(reworded));

    exp::SweepMeta other_seed = meta;
    other_seed.baseSeed = 43;
    EXPECT_FALSE(r.matches(other_seed));

    exp::SweepMeta other_grid = meta;
    other_grid.gridFp ^= 1;
    EXPECT_FALSE(r.matches(other_grid));

    exp::SweepMeta other_trials = meta;
    other_trials.trialsPerPoint = 3;
    EXPECT_FALSE(r.matches(other_trials));
}

TEST(ColStore, InterruptedStoreIsReadableWithoutFooter)
{
    TempDir dir("colstore_interrupted");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();

    {
        exp::ColumnStoreWriter::Options opts;
        opts.durable = true;
        exp::ColumnStoreWriter w(path, opts);
        w.beginSweep(meta);
        for (std::size_t idx : {0u, 1u}) {
            auto recs = makeRecords(meta, idx);
            w.acceptPoint(idx, recs.data(), recs.size());
        }
        // No endSweep(): the sweep was interrupted.
    }

    exp::ColumnStoreReader r(path);
    EXPECT_FALSE(r.cleanFooter());
    EXPECT_EQ(r.completedPoints(), 2u);
    expectBitEqual(r.readPoint(1), makeRecords(meta, 1));
}

TEST(ColStore, AdoptionContinuesAnInterruptedStore)
{
    TempDir dir("colstore_adopt");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();

    {
        exp::ColumnStoreWriter::Options opts;
        opts.durable = true;
        exp::ColumnStoreWriter w(path, opts);
        w.beginSweep(meta);
        for (std::size_t idx : {0u, 1u}) {
            auto recs = makeRecords(meta, idx);
            w.acceptPoint(idx, recs.data(), recs.size());
        }
    }
    {
        exp::ColumnStoreWriter w(path);
        w.beginSweep(meta);
        EXPECT_EQ(w.adoptedPoints(), 2u);
        auto recs = makeRecords(meta, 2);
        w.acceptPoint(2, recs.data(), recs.size());
        w.endSweep();
    }

    exp::ColumnStoreReader r(path);
    EXPECT_TRUE(r.cleanFooter());
    EXPECT_EQ(r.completedPoints(), 3u);
    for (std::size_t idx = 0; idx < 3; ++idx)
        expectBitEqual(r.readPoint(idx), makeRecords(meta, idx));
}

TEST(ColStore, DifferentSweepRecreatesTheFile)
{
    TempDir dir("colstore_recreate");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta old_meta = makeMeta(2, 42);
    {
        exp::ColumnStoreWriter w(path);
        w.beginSweep(old_meta);
        auto recs = makeRecords(old_meta, 0);
        w.acceptPoint(0, recs.data(), recs.size());
        w.endSweep();
    }

    exp::SweepMeta new_meta = makeMeta(2, 99);
    exp::ColumnStoreWriter w(path);
    w.beginSweep(new_meta);
    EXPECT_EQ(w.adoptedPoints(), 0u);
    auto recs = makeRecords(new_meta, 1);
    w.acceptPoint(1, recs.data(), recs.size());
    w.endSweep();

    exp::ColumnStoreReader r(path);
    EXPECT_TRUE(r.matches(new_meta));
    EXPECT_FALSE(r.matches(old_meta));
    EXPECT_EQ(r.completedPoints(), 1u);
    EXPECT_TRUE(r.hasPoint(1));
    EXPECT_FALSE(r.hasPoint(0));
}

// Truncation recovery is covered at every byte offset (including
// adoption back to a bit-identical store) by tests/test_torn_matrix.cc.

TEST(ColStore, CorruptDataChunkIsRejected)
{
    TempDir dir("colstore_corrupt");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();
    {
        exp::ColumnStoreWriter w(path);
        w.beginSweep(meta);
        for (std::size_t idx : {0u, 1u, 2u}) {
            auto recs = makeRecords(meta, idx);
            w.acceptPoint(idx, recs.data(), recs.size());
        }
        w.endSweep();
    }

    // Find the data frame and flip a byte inside its body.
    std::uint64_t data_off = 0;
    {
        state::ChunkFileScanner scan(path);
        state::ChunkFrame frame;
        while (scan.next(frame)) {
            if (frame.kind == exp::kColChunkData) {
                data_off = scan.lastFrameOffset();
                break;
            }
        }
        ASSERT_GT(data_off, 0u);
    }
    flipByteAt(path, data_off + 12 + 8); // 12-byte frame head, then body

    EXPECT_THROW(exp::ColumnStoreReader r(path), state::ArchiveError);
}

TEST(ColStore, IdenticalDuplicatePointsDedupe)
{
    TempDir dir("colstore_dup_ok");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();
    exp::ColumnStoreWriter w(path);
    w.beginSweep(meta);
    auto recs = makeRecords(meta, 1);
    // A crashed worker can legitimately complete the same point twice.
    w.acceptPoint(1, recs.data(), recs.size());
    w.acceptPoint(1, recs.data(), recs.size());
    w.endSweep();

    exp::ColumnStoreReader r(path);
    EXPECT_EQ(r.completedPoints(), 1u);
    expectBitEqual(r.readPoint(1), recs);
}

TEST(ColStore, ConflictingDuplicatePointsAreRejected)
{
    TempDir dir("colstore_dup_bad");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();
    exp::ColumnStoreWriter w(path);
    w.beginSweep(meta);
    auto recs = makeRecords(meta, 1);
    w.acceptPoint(1, recs.data(), recs.size());
    recs[0].metrics["ber"] = 0.5; // different bits for the same point
    w.acceptPoint(1, recs.data(), recs.size());
    w.endSweep();

    EXPECT_THROW(exp::ColumnStoreReader r(path), state::ArchiveError);
}

TEST(ColStore, RowsOutOfTrialOrderAreRejected)
{
    TempDir dir("colstore_order");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();
    exp::ColumnStoreWriter w(path);
    w.beginSweep(meta);
    auto recs = makeRecords(meta, 0);
    std::swap(recs[0], recs[1]); // trial 1 before trial 0
    w.acceptPoint(0, recs.data(), recs.size());
    w.endSweep();

    EXPECT_THROW(exp::ColumnStoreReader r(path), state::ArchiveError);
}

TEST(ColStore, SparseMetricColumnsRoundTrip)
{
    TempDir dir("colstore_sparse");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();

    // Trials emit different metric sets: the presence bitmap must keep
    // every (row, column) association exact.
    std::vector<exp::TrialRecord> recs(2);
    recs[0].pointIndex = 0;
    recs[0].trial = 0;
    recs[0].seed = 11;
    recs[0].metrics["only_first"] = 1.5;
    recs[0].metrics["shared"] = 2.5;
    recs[1].pointIndex = 0;
    recs[1].trial = 1;
    recs[1].seed = 12;
    recs[1].metrics["shared"] = 3.5;
    recs[1].metrics["only_second"] = 4.5;

    exp::ColumnStoreWriter w(path);
    w.beginSweep(meta);
    w.acceptPoint(0, recs.data(), recs.size());
    w.endSweep();

    exp::ColumnStoreReader r(path);
    expectBitEqual(r.readPoint(0), recs);
}

TEST(ColStore, EncodeColumnStoreMatchesTheWriterFormat)
{
    TempDir dir("colstore_encode");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();

    std::map<std::size_t, std::vector<exp::TrialRecord>> points;
    for (std::size_t idx = 0; idx < 3; ++idx)
        points[idx] = makeRecords(meta, idx);

    state::Buffer buf = exp::encodeColumnStore(storeHeader(meta), points);
    state::atomicWriteFile(path, buf);

    exp::ColumnStoreReader r(path);
    EXPECT_TRUE(r.matches(meta));
    EXPECT_TRUE(r.cleanFooter());
    EXPECT_EQ(r.completedPoints(), 3u);
    for (std::size_t idx = 0; idx < 3; ++idx)
        expectBitEqual(r.readPoint(idx), points[idx]);
}

TEST(ColStore, EmptyStoreRoundTrips)
{
    TempDir dir("colstore_empty");
    std::string path = dir.file("sweep.colstore");
    exp::SweepMeta meta = makeMeta();
    {
        exp::ColumnStoreWriter w(path);
        w.beginSweep(meta);
        w.endSweep();
    }
    exp::ColumnStoreReader r(path);
    EXPECT_TRUE(r.matches(meta));
    EXPECT_TRUE(r.cleanFooter());
    EXPECT_EQ(r.completedPoints(), 0u);
    EXPECT_EQ(r.totalRecords(), 0u);
}

TEST(ColStore, MissingFileAndMissingHeaderAreRejected)
{
    TempDir dir("colstore_nofile");
    EXPECT_THROW(exp::ColumnStoreReader r(dir.file("absent.colstore")),
                 state::ArchiveError);

    // A chunk file that is not a column store (no header chunk first).
    std::string path = dir.file("alien.colstore");
    state::ChunkFileWriter w;
    w.create(path, false);
    w.append(exp::kColChunkData, {1, 2, 3, 4});
    w.close();
    EXPECT_THROW(exp::ColumnStoreReader r(path), state::ArchiveError);
}

} // namespace
} // namespace ich
