/**
 * @file
 * Tests for the declarative scenario layer: axes, sweep expansion,
 * per-trial seed derivation, and the scenario registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "exp/scenario.hh"

namespace ich
{
namespace exp
{
namespace
{

ScenarioSpec
twoAxisSpec(SweepStyle style)
{
    ScenarioSpec spec;
    spec.name = "two-axis";
    spec.style = style;
    spec.axes = {axis("a", {1.0, 2.0}), axis("b", {10.0, 20.0})};
    spec.run = [](const TrialContext &) { return MetricMap{}; };
    return spec;
}

TEST(ParamPoint, GetLabelAndMissing)
{
    ParamPoint p;
    p.set("x", {2.5, "two-and-a-half"});
    EXPECT_DOUBLE_EQ(p.get("x"), 2.5);
    EXPECT_EQ(p.label("x"), "two-and-a-half");
    EXPECT_TRUE(p.has("x"));
    EXPECT_FALSE(p.has("y"));
    EXPECT_THROW(p.get("y"), std::out_of_range);
    EXPECT_THROW(p.label("y"), std::out_of_range);
}

TEST(ParamPoint, GetIntRoundsAndToString)
{
    ParamPoint p;
    p.set("k", {2.0, "L2"});
    p.set("r", {100.0, "100"});
    EXPECT_EQ(p.getInt("k"), 2);
    EXPECT_EQ(p.toString(), "k=L2 r=100");
}

TEST(Axis, NumericLabelsDefaultToCompactValue)
{
    ParamAxis a = axis("rate", {1.0, 0.5, 10000.0});
    ASSERT_EQ(a.values.size(), 3u);
    EXPECT_EQ(a.values[0].label, "1");
    EXPECT_EQ(a.values[1].label, "0.5");
    EXPECT_EQ(a.values[2].label, "10000");
}

TEST(Axis, LabeledVariants)
{
    ParamAxis a = axisLabeled("kind", {"x", "y", "z"});
    ASSERT_EQ(a.values.size(), 3u);
    EXPECT_DOUBLE_EQ(a.values[2].value, 2.0);
    EXPECT_EQ(a.values[2].label, "z");

    ParamAxis b = axisLabeledValues("fec", {{"none", 0.0}, {"rep3", 7.0}});
    EXPECT_DOUBLE_EQ(b.values[1].value, 7.0);
    EXPECT_EQ(b.values[1].label, "rep3");
}

TEST(Expand, CartesianFirstAxisOutermost)
{
    auto points = expandPoints(twoAxisSpec(SweepStyle::kCartesian));
    ASSERT_EQ(points.size(), 4u);
    // Same order as nested for-loops: a outermost, b fastest.
    EXPECT_DOUBLE_EQ(points[0].get("a"), 1.0);
    EXPECT_DOUBLE_EQ(points[0].get("b"), 10.0);
    EXPECT_DOUBLE_EQ(points[1].get("a"), 1.0);
    EXPECT_DOUBLE_EQ(points[1].get("b"), 20.0);
    EXPECT_DOUBLE_EQ(points[2].get("a"), 2.0);
    EXPECT_DOUBLE_EQ(points[2].get("b"), 10.0);
    EXPECT_DOUBLE_EQ(points[3].get("a"), 2.0);
    EXPECT_DOUBLE_EQ(points[3].get("b"), 20.0);
}

TEST(Expand, ZipIteratesInLockstep)
{
    auto points = expandPoints(twoAxisSpec(SweepStyle::kZip));
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].get("a"), 1.0);
    EXPECT_DOUBLE_EQ(points[0].get("b"), 10.0);
    EXPECT_DOUBLE_EQ(points[1].get("a"), 2.0);
    EXPECT_DOUBLE_EQ(points[1].get("b"), 20.0);
}

TEST(Expand, ZipRejectsUnequalLengths)
{
    ScenarioSpec spec = twoAxisSpec(SweepStyle::kZip);
    spec.axes[1] = axis("b", {10.0});
    EXPECT_THROW(expandPoints(spec), std::invalid_argument);
}

TEST(Expand, EmptyAxisRejected)
{
    ScenarioSpec spec = twoAxisSpec(SweepStyle::kCartesian);
    spec.axes[0].values.clear();
    EXPECT_THROW(expandPoints(spec), std::invalid_argument);
}

TEST(Expand, NoAxesYieldsOneEmptyPoint)
{
    ScenarioSpec spec;
    spec.name = "pointless";
    auto points = expandPoints(spec);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].entries().empty());
}

TEST(Seeds, DeterministicAndDistinct)
{
    // Stability contract: these exact values anchor reproducibility of
    // every published sweep; changing the derivation is a breaking
    // change to recorded results.
    EXPECT_EQ(deriveTrialSeed(1, 0), 10451216379200822465ull);
    EXPECT_EQ(deriveTrialSeed(1, 1), 13757245211066428519ull);
    EXPECT_EQ(deriveTrialSeed(1, 2), 17911839290282890590ull);
    EXPECT_NE(deriveTrialSeed(1, 0), deriveTrialSeed(2, 0));

    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {1ull, 42ull, 2021ull})
        for (std::uint64_t idx = 0; idx < 100; ++idx)
            seen.insert(deriveTrialSeed(base, idx));
    EXPECT_EQ(seen.size(), 300u); // no collisions across small grids
}

TEST(Registry, AddFindListDuplicates)
{
    ScenarioRegistry reg;
    ScenarioSpec s1;
    s1.name = "first";
    ScenarioSpec s2;
    s2.name = "second";
    reg.add(s1);
    reg.add(s2);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_NE(reg.find("first"), nullptr);
    EXPECT_EQ(reg.find("absent"), nullptr);
    EXPECT_EQ(reg.names(), (std::vector<std::string>{"first", "second"}));
    EXPECT_THROW(reg.add(s1), std::invalid_argument);
    ScenarioSpec anon;
    EXPECT_THROW(reg.add(anon), std::invalid_argument);
}

} // namespace
} // namespace exp
} // namespace ich
