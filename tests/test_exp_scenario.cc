/**
 * @file
 * Tests for the declarative scenario layer: axes, sweep expansion,
 * per-trial seed derivation, and the scenario registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "exp/scenario.hh"

namespace ich
{
namespace exp
{
namespace
{

ScenarioSpec
twoAxisSpec(SweepStyle style)
{
    ScenarioSpec spec;
    spec.name = "two-axis";
    spec.style = style;
    spec.axes = {axis("a", {1.0, 2.0}), axis("b", {10.0, 20.0})};
    spec.run = [](const TrialContext &) { return MetricMap{}; };
    return spec;
}

TEST(ParamPoint, GetLabelAndMissing)
{
    ParamPoint p;
    p.set("x", {2.5, "two-and-a-half"});
    EXPECT_DOUBLE_EQ(p.get("x"), 2.5);
    EXPECT_EQ(p.label("x"), "two-and-a-half");
    EXPECT_TRUE(p.has("x"));
    EXPECT_FALSE(p.has("y"));
    EXPECT_THROW(p.get("y"), std::out_of_range);
    EXPECT_THROW(p.label("y"), std::out_of_range);
}

TEST(ParamPoint, GetIntRoundsAndToString)
{
    ParamPoint p;
    p.set("k", {2.0, "L2"});
    p.set("r", {100.0, "100"});
    EXPECT_EQ(p.getInt("k"), 2);
    EXPECT_EQ(p.toString(), "k=L2 r=100");
}

TEST(Axis, NumericLabelsDefaultToCompactValue)
{
    ParamAxis a = axis("rate", {1.0, 0.5, 10000.0});
    ASSERT_EQ(a.values.size(), 3u);
    EXPECT_EQ(a.values[0].label, "1");
    EXPECT_EQ(a.values[1].label, "0.5");
    EXPECT_EQ(a.values[2].label, "10000");
}

TEST(Axis, LabeledVariants)
{
    ParamAxis a = axisLabeled("kind", {"x", "y", "z"});
    ASSERT_EQ(a.values.size(), 3u);
    EXPECT_DOUBLE_EQ(a.values[2].value, 2.0);
    EXPECT_EQ(a.values[2].label, "z");

    ParamAxis b = axisLabeledValues("fec", {{"none", 0.0}, {"rep3", 7.0}});
    EXPECT_DOUBLE_EQ(b.values[1].value, 7.0);
    EXPECT_EQ(b.values[1].label, "rep3");
}

TEST(Expand, CartesianFirstAxisOutermost)
{
    auto points = expandPoints(twoAxisSpec(SweepStyle::kCartesian));
    ASSERT_EQ(points.size(), 4u);
    // Same order as nested for-loops: a outermost, b fastest.
    EXPECT_DOUBLE_EQ(points[0].get("a"), 1.0);
    EXPECT_DOUBLE_EQ(points[0].get("b"), 10.0);
    EXPECT_DOUBLE_EQ(points[1].get("a"), 1.0);
    EXPECT_DOUBLE_EQ(points[1].get("b"), 20.0);
    EXPECT_DOUBLE_EQ(points[2].get("a"), 2.0);
    EXPECT_DOUBLE_EQ(points[2].get("b"), 10.0);
    EXPECT_DOUBLE_EQ(points[3].get("a"), 2.0);
    EXPECT_DOUBLE_EQ(points[3].get("b"), 20.0);
}

TEST(Expand, ZipIteratesInLockstep)
{
    auto points = expandPoints(twoAxisSpec(SweepStyle::kZip));
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].get("a"), 1.0);
    EXPECT_DOUBLE_EQ(points[0].get("b"), 10.0);
    EXPECT_DOUBLE_EQ(points[1].get("a"), 2.0);
    EXPECT_DOUBLE_EQ(points[1].get("b"), 20.0);
}

TEST(Expand, ZipRejectsUnequalLengths)
{
    ScenarioSpec spec = twoAxisSpec(SweepStyle::kZip);
    spec.axes[1] = axis("b", {10.0});
    EXPECT_THROW(expandPoints(spec), std::invalid_argument);
}

TEST(Expand, EmptyAxisRejected)
{
    ScenarioSpec spec = twoAxisSpec(SweepStyle::kCartesian);
    spec.axes[0].values.clear();
    EXPECT_THROW(expandPoints(spec), std::invalid_argument);
}

TEST(Expand, NoAxesYieldsOneEmptyPoint)
{
    ScenarioSpec spec;
    spec.name = "pointless";
    auto points = expandPoints(spec);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].entries().empty());
}

TEST(Seeds, DeterministicAndDistinct)
{
    // Stability contract: these exact values anchor reproducibility of
    // every published sweep; changing the derivation is a breaking
    // change to recorded results.
    EXPECT_EQ(deriveTrialSeed(1, 0), 10451216379200822465ull);
    EXPECT_EQ(deriveTrialSeed(1, 1), 13757245211066428519ull);
    EXPECT_EQ(deriveTrialSeed(1, 2), 17911839290282890590ull);
    EXPECT_NE(deriveTrialSeed(1, 0), deriveTrialSeed(2, 0));

    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {1ull, 42ull, 2021ull})
        for (std::uint64_t idx = 0; idx < 100; ++idx)
            seen.insert(deriveTrialSeed(base, idx));
    EXPECT_EQ(seen.size(), 300u); // no collisions across small grids
}

TEST(Interning, PointsShareAxisStrings)
{
    // Axis names and labels are interned: every point of a grid refers
    // to one canonical std::string, so the per-point memory term is a
    // few pointers, not two heap strings per axis.
    ScenarioSpec spec;
    spec.name = "intern";
    spec.axes = {axis("alpha-axis-with-a-long-name", {1.25, 2.5}),
                 axisLabeled("beta", {"category-one", "category-two"})};
    std::vector<ParamPoint> pts = expandPoints(spec);
    ASSERT_EQ(pts.size(), 4u);
    const std::string &n0 = pts[0].entries()[0].name;
    const std::string &n3 = pts[3].entries()[0].name;
    EXPECT_EQ(&n0, &n3); // same canonical string object
    const std::string &l0 = pts[0].entries()[1].value.label;
    const std::string &l2 = pts[2].entries()[1].value.label;
    EXPECT_EQ(&l0, &l2);
    // Re-interning an equal string from elsewhere lands on the pool copy.
    EXPECT_EQ(&internString("category-one"), &l0);
    // Interned handles still compare by content through the public API.
    EXPECT_EQ(pts[0].label("beta"), "category-one");
    EXPECT_DOUBLE_EQ(pts[0].get("alpha-axis-with-a-long-name"), 1.25);
}

TEST(Registry, AddFindListDuplicates)
{
    ScenarioRegistry reg;
    ScenarioSpec s1;
    s1.name = "first";
    ScenarioSpec s2;
    s2.name = "second";
    reg.add(s1);
    reg.add(s2);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_NE(reg.find("first"), nullptr);
    EXPECT_EQ(reg.find("absent"), nullptr);
    EXPECT_EQ(reg.names(), (std::vector<std::string>{"first", "second"}));
    EXPECT_THROW(reg.add(s1), std::invalid_argument);
    ScenarioSpec anon;
    EXPECT_THROW(reg.add(anon), std::invalid_argument);
}

} // namespace
} // namespace exp
} // namespace ich
