/**
 * @file
 * Tests for the voltage-regulator slew model: ramp timing, mid-ramp
 * queries, retargeting, PDN parameterizations.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "pdn/vr.hh"

namespace ich
{
namespace
{

VrConfig
testConfig()
{
    VrConfig cfg;
    cfg.slewVoltsPerSecond = 1000.0; // 1 mV/us
    cfg.commandLatency = fromMicroseconds(1.0);
    cfg.settleTime = fromMicroseconds(0.5);
    return cfg;
}

TEST(VoltageRegulator, InitialVoltageStable)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.75);
    EXPECT_DOUBLE_EQ(vr.volts(), 0.75);
    EXPECT_FALSE(vr.busy());
    eq.runUntil(fromMicroseconds(100));
    EXPECT_DOUBLE_EQ(vr.volts(), 0.75);
}

TEST(VoltageRegulator, RampCompletesAtSlewRate)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    bool done = false;
    vr.setTarget(0.760, [&] { done = true; }); // +10 mV
    EXPECT_TRUE(vr.busy());
    // Expected: 1 us command + 10 us ramp + 0.5 us settle = 11.5 us.
    eq.runUntil(fromMicroseconds(11.4));
    EXPECT_FALSE(done);
    eq.runUntil(fromMicroseconds(11.6));
    EXPECT_TRUE(done);
    EXPECT_FALSE(vr.busy());
    EXPECT_DOUBLE_EQ(vr.volts(), 0.760);
}

TEST(VoltageRegulator, MidRampVoltageInterpolates)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    vr.setTarget(0.760);
    // At t = 6 us: 1 us command + 5 us of ramping => +5 mV.
    eq.runUntil(fromMicroseconds(6.0));
    EXPECT_NEAR(vr.volts(), 0.755, 1e-4);
}

TEST(VoltageRegulator, DuringCommandLatencyVoltageUnchanged)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    vr.setTarget(0.760);
    eq.runUntil(fromNanoseconds(900));
    EXPECT_DOUBLE_EQ(vr.volts(), 0.750);
}

TEST(VoltageRegulator, DownRampSymmetric)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.760);
    bool done = false;
    vr.setTarget(0.750, [&] { done = true; });
    eq.runUntil(fromMicroseconds(11.6));
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(vr.volts(), 0.750);
}

TEST(VoltageRegulator, TransitionTimePrediction)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    Time t = vr.transitionTime(0.760);
    EXPECT_EQ(t, fromMicroseconds(11.5));
}

TEST(VoltageRegulator, RetargetMidRampStartsFromInstantaneous)
{
    EventQueue eq;
    VoltageRegulator vr(eq, testConfig(), 0.750);
    vr.setTarget(0.760);
    eq.runUntil(fromMicroseconds(6.0)); // at ~0.755
    bool done = false;
    vr.setTarget(0.750, [&] { done = true; });
    // ~5 mV back down: 1 + 5 + 0.5 = 6.5 us more.
    eq.runUntil(fromMicroseconds(13.0));
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(vr.volts(), 0.750);
}

TEST(VoltageRegulator, PdnPresetsOrderedBySpeed)
{
    EventQueue eq;
    VoltageRegulator mb(eq, VrConfig::motherboard(), 0.75, "mb");
    VoltageRegulator ivr(eq, VrConfig::integrated(), 0.75, "ivr");
    VoltageRegulator ldo(eq, VrConfig::lowDropout(), 0.75, "ldo");
    Time t_mb = mb.transitionTime(0.76);
    Time t_ivr = ivr.transitionTime(0.76);
    Time t_ldo = ldo.transitionTime(0.76);
    EXPECT_GT(t_mb, t_ivr);  // Haswell FIVR faster than MBVR (Fig. 8a)
    EXPECT_GT(t_ivr, t_ldo); // LDO fastest (§7 mitigation)
    EXPECT_LT(t_ldo, fromMicroseconds(0.5)); // paper: <0.5 us
}

TEST(VoltageRegulator, JitterRequiresRng)
{
    EventQueue eq;
    VrConfig cfg = testConfig();
    cfg.commandJitter = fromNanoseconds(300);
    Rng rng(1);
    VoltageRegulator vr(eq, cfg, 0.75, "vr", &rng);
    Time base = fromMicroseconds(11.5);
    // With jitter, completion lands in [base, base+0.3us]; run repeated
    // transitions and check spread.
    Time first_done = 0;
    bool done = false;
    vr.setTarget(0.76, [&] { done = true; });
    while (!done)
        eq.runOne();
    first_done = eq.now();
    EXPECT_GE(first_done, base);
    EXPECT_LE(first_done, base + fromNanoseconds(301));
}

} // namespace
} // namespace ich
