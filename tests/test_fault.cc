/**
 * @file
 * Tests for the seeded fault-injection layer (src/fault/) and the
 * io::FileOps seam it drives: plan-spec parsing, occurrence counting,
 * and end-to-end in-process injection through the chunkio/archive
 * stack (EINTR must be retried transparently, errors must throw loudly
 * with path and site, torn/bitflip corruption must be caught by the
 * frame CRC). Crash/hang kinds are exercised out-of-process by
 * bench/torture_crashpoints; in-process tests stick to survivable
 * faults.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exp/colstore.hh"
#include "exp/resume.hh"
#include "fault/fault.hh"
#include "state/archive.hh"
#include "state/chunkio.hh"

namespace ich
{
namespace
{

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string &name)
        : path(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string file(const std::string &name) const
    {
        return (path / name).string();
    }
};

/** Every test leaves the process disarmed, pass or fail. */
struct Disarmed {
    ~Disarmed() { fault::disarm(); }
};

// ------------------------------------------------------------- parsing

TEST(FaultPlan, ParsesSeedAndRules)
{
    fault::Plan plan = fault::parsePlan(
        "seed=99;site=chunk.write:op=write:occ=3:fault=torn:arg=7;"
        "site=archive.read:op=read:occ=0:fault=eintr:path=warm");
    EXPECT_EQ(plan.seed, 99u);
    ASSERT_EQ(plan.rules.size(), 2u);
    EXPECT_EQ(plan.rules[0].site, "chunk.write");
    EXPECT_EQ(plan.rules[0].op, "write");
    EXPECT_EQ(plan.rules[0].occ, 3u);
    EXPECT_EQ(plan.rules[0].kind, fault::Kind::kTorn);
    EXPECT_EQ(plan.rules[0].arg, 7u);
    EXPECT_EQ(plan.rules[1].site, "archive.read");
    EXPECT_EQ(plan.rules[1].occ, 0u);
    EXPECT_EQ(plan.rules[1].kind, fault::Kind::kEintr);
    EXPECT_EQ(plan.rules[1].arg, fault::kNoArg);
    EXPECT_EQ(plan.rules[1].pathSub, "warm");
}

TEST(FaultPlan, DefaultsAndWildcards)
{
    fault::Plan plan = fault::parsePlan("site=*:fault=crash");
    EXPECT_EQ(plan.seed, 1u);
    ASSERT_EQ(plan.rules.size(), 1u);
    EXPECT_EQ(plan.rules[0].site, "*");
    EXPECT_EQ(plan.rules[0].op, "*");
    EXPECT_EQ(plan.rules[0].occ, 1u); // default: first matching call
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(fault::parsePlan(""), std::invalid_argument);
    EXPECT_THROW(fault::parsePlan("site=x"), std::invalid_argument);
    EXPECT_THROW(fault::parsePlan("fault=crash"), std::invalid_argument);
    EXPECT_THROW(fault::parsePlan("site=x:fault=nosuchkind"),
                 std::invalid_argument);
    EXPECT_THROW(fault::parsePlan("site=x:fault=crash:occ=bogus"),
                 std::invalid_argument);
    EXPECT_THROW(fault::parsePlan("site=x:fault=crash:unknown=1"),
                 std::invalid_argument);
}

// ---------------------------------------------------------- occurrence

TEST(FaultPlan, OccurrenceClockFiresTheNthCallOnce)
{
    Disarmed guard;
    fault::arm(fault::parsePlan("site=s:op=write:occ=3:fault=eio"));
    fault::Decision d;
    EXPECT_FALSE(fault::decide("s", "write", "f", d));
    EXPECT_FALSE(fault::decide("s", "write", "f", d));
    EXPECT_TRUE(fault::decide("s", "write", "f", d));
    EXPECT_EQ(d.kind, fault::Kind::kEio);
    // One-shot: the 4th and later calls pass through.
    EXPECT_FALSE(fault::decide("s", "write", "f", d));
    EXPECT_FALSE(fault::decide("s", "write", "f", d));
}

TEST(FaultPlan, OccurrenceZeroFiresEveryCall)
{
    Disarmed guard;
    fault::arm(fault::parsePlan("site=s:op=write:occ=0:fault=eintr"));
    fault::Decision d;
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(fault::decide("s", "write", "f", d));
}

TEST(FaultPlan, SiteOpAndPathFiltersAreRespected)
{
    Disarmed guard;
    fault::arm(fault::parsePlan(
        "site=s:op=write:occ=1:fault=eio:path=target"));
    fault::Decision d;
    EXPECT_FALSE(fault::decide("other", "write", "target", d));
    EXPECT_FALSE(fault::decide("s", "fsync", "target", d));
    EXPECT_FALSE(fault::decide("s", "write", "elsewhere", d));
    // Non-matching calls must not advance the occurrence clock.
    EXPECT_TRUE(fault::decide("s", "write", "a/target/b", d));
}

TEST(FaultPlan, RearmRestartsTheOccurrenceClock)
{
    Disarmed guard;
    fault::Plan plan =
        fault::parsePlan("site=s:op=write:occ=1:fault=eio");
    fault::arm(plan);
    fault::Decision d;
    EXPECT_TRUE(fault::decide("s", "write", "f", d));
    EXPECT_FALSE(fault::decide("s", "write", "f", d));
    fault::arm(plan); // a respawned worker re-arms the same spec
    EXPECT_TRUE(fault::decide("s", "write", "f", d));
}

TEST(FaultPlan, DisarmRestoresTheFreeSeam)
{
    Disarmed guard;
    EXPECT_FALSE(fault::active());
    fault::arm(fault::parsePlan("site=s:fault=crash"));
    EXPECT_TRUE(fault::active());
    EXPECT_EQ(fault::armedSpec(), "site=s:fault=crash");
    fault::disarm();
    EXPECT_FALSE(fault::active());
    EXPECT_TRUE(fault::armedSpec().empty());
}

TEST(FaultPlan, SeededDrawsAreDeterministic)
{
    Disarmed guard;
    fault::arm(fault::parsePlan("seed=5;site=s:op=write:occ=1:fault=torn"));
    fault::Decision d1;
    ASSERT_TRUE(fault::decide("s", "write", "f", d1));
    fault::arm(fault::parsePlan("seed=5;site=s:op=write:occ=1:fault=torn"));
    fault::Decision d2;
    ASSERT_TRUE(fault::decide("s", "write", "f", d2));
    EXPECT_EQ(d1.draw, d2.draw);

    fault::arm(fault::parsePlan("seed=6;site=s:op=write:occ=1:fault=torn"));
    fault::Decision d3;
    ASSERT_TRUE(fault::decide("s", "write", "f", d3));
    EXPECT_NE(d1.draw, d3.draw); // different seed, different tear
}

// ------------------------------------------------- end-to-end injection

TEST(FaultSeam, EintrOnWriteIsRetriedTransparently)
{
    Disarmed guard;
    TempDir dir("fault_eintr");
    fault::arm(fault::parsePlan(
        "site=chunk.write:op=write:occ=1:fault=eintr"));

    std::string path = dir.file("frames.bin");
    state::ChunkFileWriter w;
    w.create(path, false);
    w.append(1, {1, 2, 3, 4});
    w.close();
    fault::disarm();

    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    ASSERT_TRUE(scan.next(frame));
    EXPECT_EQ(frame.body, (state::Buffer{1, 2, 3, 4}));
}

TEST(FaultSeam, ShortWritesAreContinuedNotLost)
{
    Disarmed guard;
    TempDir dir("fault_short");
    // Every write is short: the writeAll loop must still land every
    // byte by continuing from where the kernel stopped.
    fault::arm(fault::parsePlan(
        "site=chunk.write:op=write:occ=0:fault=short"));

    std::string path = dir.file("frames.bin");
    state::Buffer body(300, 0x5A);
    state::ChunkFileWriter w;
    w.create(path, false);
    w.append(9, body);
    w.close();
    fault::disarm();

    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    ASSERT_TRUE(scan.next(frame));
    EXPECT_EQ(frame.body, body);
}

TEST(FaultSeam, WriteReturningZeroThrowsInsteadOfSpinning)
{
    Disarmed guard;
    TempDir dir("fault_zero");
    fault::arm(fault::parsePlan(
        "site=chunk.write:op=write:occ=1:fault=short:arg=0"));

    state::ChunkFileWriter w;
    w.create(dir.file("frames.bin"), false);
    EXPECT_THROW(w.append(1, {1, 2, 3}), state::ArchiveError);
}

TEST(FaultSeam, EnospcThrowsLoudlyWithPathAndSite)
{
    Disarmed guard;
    TempDir dir("fault_enospc");
    fault::arm(fault::parsePlan(
        "site=chunk.write:op=write:occ=1:fault=enospc"));

    std::string path = dir.file("frames.bin");
    state::ChunkFileWriter w;
    w.create(path, false);
    try {
        w.append(1, {1, 2, 3});
        FAIL() << "append must throw on ENOSPC";
    } catch (const state::ArchiveError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("chunk.write"), std::string::npos) << msg;
    }
}

TEST(FaultSeam, FsyncErrorThrowsAndFsyncDropIsSilent)
{
    Disarmed guard;
    TempDir dir("fault_fsync");
    {
        fault::arm(fault::parsePlan(
            "site=chunk.write:op=fsync:occ=1:fault=eio"));
        state::ChunkFileWriter w;
        w.create(dir.file("a.bin"), /*durable=*/true);
        EXPECT_THROW(w.append(1, {1}), state::ArchiveError);
    }
    {
        // A dropped fsync lies about durability; with no crash after
        // it the bytes still land, so the write path must not fail.
        fault::arm(fault::parsePlan(
            "site=chunk.write:op=fsync:occ=0:fault=fsync-drop"));
        state::ChunkFileWriter w;
        w.create(dir.file("b.bin"), /*durable=*/true);
        w.append(1, {7, 7});
        w.close();
        fault::disarm();
        state::ChunkFileScanner scan(dir.file("b.bin"));
        state::ChunkFrame frame;
        ASSERT_TRUE(scan.next(frame));
        EXPECT_EQ(frame.body, (state::Buffer{7, 7}));
    }
}

TEST(FaultSeam, BitflipCorruptionIsCaughtByTheFrameCrc)
{
    Disarmed guard;
    TempDir dir("fault_bitflip");
    std::string path = dir.file("frames.bin");
    fault::arm(fault::parsePlan(
        "seed=3;site=chunk.write:op=write:occ=1:fault=bitflip"));

    state::ChunkFileWriter w;
    w.create(path, false);
    w.append(1, state::Buffer(64, 0x11)); // flipped in flight
    w.close();
    fault::disarm();

    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    EXPECT_THROW(scan.next(frame), state::ArchiveError);
}

TEST(FaultSeam, ArchiveWriteErrorsCarryPathAndSite)
{
    Disarmed guard;
    TempDir dir("fault_archive");
    std::string path = dir.file("x.snap");
    fault::arm(fault::parsePlan(
        "site=archive.write:op=write:occ=1:fault=enospc"));
    try {
        state::atomicWriteFile(path, {1, 2, 3});
        FAIL() << "atomicWriteFile must throw on ENOSPC";
    } catch (const state::ArchiveError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("archive.write"), std::string::npos) << msg;
        EXPECT_NE(msg.find(dir.file("x.snap")), std::string::npos) << msg;
    }
    fault::disarm();
    // The failed atomic write must leave no file behind — neither the
    // target nor its temporary.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::is_empty(dir.path));
}

TEST(FaultSeam, ArchiveReadEintrIsRetried)
{
    Disarmed guard;
    TempDir dir("fault_archive_read");
    std::string path = dir.file("x.snap");
    state::atomicWriteFile(path, {9, 9, 9, 9});

    fault::arm(fault::parsePlan(
        "site=archive.read:op=read:occ=1:fault=eintr"));
    state::Buffer got = state::readFile(path);
    EXPECT_EQ(got, (state::Buffer{9, 9, 9, 9}));
}

TEST(FaultSeam, DurableColstorePointSurvivesInjectedTornWrite)
{
    // The whole contract in one in-process pass: tear the 3rd append
    // (without the SIGKILL half — arg only truncates what hits disk
    // when the process dies; here we emulate the aftermath by flipping
    // to a plain short+error), then verify the reader recovers the
    // whole-point prefix. The full kill-and-recover version runs in
    // bench/torture_crashpoints; this pins the in-process seam wiring.
    Disarmed guard;
    TempDir dir("fault_colstore");
    std::string path = dir.file("sweep.colstore");

    exp::ScenarioSpec spec;
    spec.name = "fault-grid";
    spec.axes = {exp::axis("x", {1.0, 2.0, 3.0})};
    exp::SweepMeta meta;
    meta.scenario = spec.name;
    meta.baseSeed = 1;
    meta.trialsPerPoint = 1;
    meta.points = exp::expandPoints(spec);
    meta.gridFp = exp::gridFingerprint(meta.points);

    auto recordFor = [&](std::size_t idx) {
        exp::TrialRecord rec;
        rec.pointIndex = idx;
        rec.trial = 0;
        rec.seed = exp::deriveTrialSeed(meta.baseSeed, idx);
        rec.metrics["m"] = 1.5 * (idx + 1);
        return rec;
    };

    // ENOSPC on the header append: beginSweep must fail loudly, not
    // produce a store that silently lacks its identity.
    fault::arm(fault::parsePlan(
        "site=chunk.write:op=write:occ=1:fault=enospc"));
    {
        exp::ColumnStoreWriter::Options opts;
        opts.durable = true;
        exp::ColumnStoreWriter w(path, opts);
        EXPECT_THROW(w.beginSweep(meta), state::ArchiveError);
    }
    fault::disarm();

    // Clean run through an EINTR storm: several writes interrupted
    // (staggered one-shot rules — occ=0 would interrupt every retry
    // too and livelock, which no real kernel does), result
    // byte-identical to a fault-free store.
    fs::remove(path);
    fault::arm(fault::parsePlan(
        "site=chunk.write:op=write:occ=1:fault=eintr;"
        "site=chunk.write:op=write:occ=2:fault=eintr;"
        "site=chunk.write:op=write:occ=4:fault=eintr"));
    {
        exp::ColumnStoreWriter::Options opts;
        opts.durable = true;
        exp::ColumnStoreWriter w(path, opts);
        w.beginSweep(meta);
        for (std::size_t idx = 0; idx < meta.numPoints(); ++idx) {
            exp::TrialRecord rec = recordFor(idx);
            w.acceptPoint(idx, &rec, 1);
        }
        w.endSweep();
    }
    fault::disarm();

    exp::ColumnStoreReader r(path);
    EXPECT_TRUE(r.cleanFooter());
    ASSERT_EQ(r.completedPoints(), meta.numPoints());
    for (std::size_t idx = 0; idx < meta.numPoints(); ++idx) {
        auto recs = r.readPoint(idx);
        ASSERT_EQ(recs.size(), 1u);
        EXPECT_EQ(recs[0].seed, recordFor(idx).seed);
        EXPECT_EQ(recs[0].metrics.at("m"), recordFor(idx).metrics["m"]);
    }
}

// ------------------------------------------------------- counting mode

TEST(FaultCounting, DecideRecordsSiteOpCounts)
{
    // Counting mode is wired via ICH_FAULT_COUNT_FILE + armFromEnv()
    // and dumps at process exit, which a unit test can't observe
    // in-process; what it CAN pin is that counting does not fire any
    // fault (the victim must complete its fault-free recording run).
    Disarmed guard;
    TempDir dir("fault_count");
    ::setenv("ICH_FAULT_COUNT_FILE", dir.file("counts").c_str(), 1);
    ::unsetenv("ICH_FAULT_PLAN");
    fault::armFromEnv();
    ::unsetenv("ICH_FAULT_COUNT_FILE");
    EXPECT_TRUE(fault::active());

    fault::Decision d;
    EXPECT_FALSE(fault::decide("s", "write", "f", d));
    EXPECT_FALSE(fault::decide("s", "write", "f", d));
    EXPECT_FALSE(fault::decide("t", "fsync", "f", d));
}

} // namespace
} // namespace ich
