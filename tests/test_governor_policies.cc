/**
 * @file
 * §5.7 tests: software-level power-management policies do not affect the
 * hardware throttling mechanism — IChannels persists under userspace,
 * powersave and performance governors, because throttling is implemented
 * inside the core for nanosecond response and has no software disable.
 */

#include <gtest/gtest.h>

#include "channels/thread_channel.hh"
#include "test_util.hh"

namespace ich
{
namespace
{

class GovernorPolicies
    : public ::testing::TestWithParam<GovernorPolicy>
{
};

TEST_P(GovernorPolicies, ThrottlingMechanismPersists)
{
    ChipConfig cfg = presets::cannonLake();
    cfg.pmu.governor.policy = GetParam();
    cfg.pmu.governor.userspaceGhz = 1.4;
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg, 7);
    Chip &chip = sim.chip();

    // Let any initial P-state settle, then run a PHI.
    sim.runFor(fromMilliseconds(1));
    Program p;
    p.loop(InstClass::k256Heavy, 400, 100);
    chip.core(0).thread(0).setProgram(std::move(p));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(sim.eq().now() + fromNanoseconds(200));
    // Hardware throttle asserted within nanoseconds, regardless of the
    // software policy in force.
    EXPECT_TRUE(chip.core(0).throttle().throttled())
        << "policy " << static_cast<int>(GetParam());
    sim.run(sim.eq().now() + fromMilliseconds(2));
    EXPECT_GT(chip.pmu().voltageRequests(), 0u);
}

TEST_P(GovernorPolicies, CovertChannelWorksUnderPolicy)
{
    // The PoC pins a userspace frequency, but the side-effect itself is
    // policy-independent; under powersave the chip simply sits at the
    // min frequency (which is itself a fixed frequency).
    if (GetParam() == GovernorPolicy::kPerformance) {
        // At max turbo the license machinery moves the clock mid-run;
        // the paper's PoC avoids this by pinning, and so do we: verify
        // the channel still decodes at the *license-capped* pin instead.
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.freqGhz = 1.8; // = LVL2 license cap: no mid-run transitions
        cfg.seed = 11;
        IccThreadCovert ch(cfg);
        EXPECT_EQ(ch.transmit({1, 0, 1, 1, 0, 0}).bitErrors, 0u);
        return;
    }
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.chip.pmu.governor.policy = GetParam();
    cfg.freqGhz = GetParam() == GovernorPolicy::kPowersave
                      ? cfg.chip.pmu.pstate.minGhz
                      : 1.4;
    cfg.seed = 11;
    IccThreadCovert ch(cfg);
    EXPECT_EQ(ch.transmit({1, 0, 1, 1, 0, 0}).bitErrors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, GovernorPolicies,
    ::testing::Values(GovernorPolicy::kUserspace,
                      GovernorPolicy::kPowersave,
                      GovernorPolicy::kPerformance),
    [](const ::testing::TestParamInfo<GovernorPolicy> &info) {
        switch (info.param) {
          case GovernorPolicy::kUserspace:
            return std::string("userspace");
          case GovernorPolicy::kPowersave:
            return std::string("powersave");
          case GovernorPolicy::kPerformance:
            return std::string("performance");
        }
        return std::string("unknown");
    });

} // namespace
} // namespace ich
