/**
 * @file
 * Tests for the StateArchive container: typed round trips, section
 * indexing, and — critically for the resume/corruption story — clean
 * ArchiveError diagnostics for truncation, bit-rot (CRC), version skew
 * and reader/writer type drift. None of these may be UB (the ASan CI
 * job runs this file too).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "state/archive.hh"

namespace ich
{
namespace
{

using state::ArchiveError;
using state::ArchiveReader;
using state::ArchiveWriter;
using state::Buffer;
using state::SectionReader;

Buffer
sampleArchive()
{
    ArchiveWriter w;
    w.beginSection("alpha");
    w.putBool(true);
    w.putU8(0xAB);
    w.putU32(0xDEADBEEFu);
    w.putU64(0x0123456789ABCDEFull);
    w.putI32(-42);
    w.putF64(1.0 / 3.0);
    w.putString("hello archive");
    w.endSection();
    w.beginSection("beta");
    w.putU64(7);
    w.endSection();
    return w.finish();
}

TEST(StateArchive, RoundTripsEveryType)
{
    ArchiveReader r(sampleArchive());
    SectionReader s = r.open("alpha");
    EXPECT_TRUE(s.getBool());
    EXPECT_EQ(s.getU8(), 0xAB);
    EXPECT_EQ(s.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(s.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(s.getI32(), -42);
    EXPECT_EQ(s.getF64(), 1.0 / 3.0);
    EXPECT_EQ(s.getString(), "hello archive");
    EXPECT_EQ(s.remaining(), 0u);

    SectionReader b = r.open("beta");
    EXPECT_EQ(b.getU64(), 7u);
}

TEST(StateArchive, DoublesRoundTripBitExactly)
{
    ArchiveWriter w;
    w.beginSection("f");
    w.putF64(0.1 + 0.2);
    w.putF64(-0.0);
    w.putF64(std::numeric_limits<double>::denorm_min());
    w.putF64(std::numeric_limits<double>::infinity());
    w.endSection();
    ArchiveReader r(w.finish());
    SectionReader s = r.open("f");
    EXPECT_EQ(s.getF64(), 0.1 + 0.2);
    double neg_zero = s.getF64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(s.getF64(), std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(s.getF64(), std::numeric_limits<double>::infinity());
}

TEST(StateArchive, SectionListingAndMissingSection)
{
    ArchiveReader r(sampleArchive());
    EXPECT_TRUE(r.has("alpha"));
    EXPECT_FALSE(r.has("gamma"));
    auto names = r.sectionNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_THROW(r.open("gamma"), ArchiveError);
}

TEST(StateArchive, TypeTagMismatchThrows)
{
    ArchiveReader r(sampleArchive());
    SectionReader s = r.open("beta");
    // Section holds a u64; asking for a string must fail loudly.
    EXPECT_THROW(s.getString(), ArchiveError);
}

TEST(StateArchive, ReadingPastSectionEndThrows)
{
    ArchiveReader r(sampleArchive());
    SectionReader s = r.open("beta");
    EXPECT_EQ(s.getU64(), 7u);
    EXPECT_THROW(s.getU64(), ArchiveError);
}

TEST(StateArchive, EveryTruncationThrowsCleanly)
{
    Buffer full = sampleArchive();
    for (std::size_t len = 0; len < full.size(); ++len) {
        Buffer cut(full.begin(), full.begin() + len);
        EXPECT_THROW(ArchiveReader r(std::move(cut)), ArchiveError)
            << "truncation to " << len << " bytes not detected";
    }
}

TEST(StateArchive, BitRotFailsTheCrc)
{
    Buffer full = sampleArchive();
    // Flip one bit in every payload byte position in turn.
    for (std::size_t i = 20; i < full.size(); ++i) {
        Buffer bad = full;
        bad[i] ^= 0x01;
        EXPECT_THROW(ArchiveReader r(std::move(bad)), ArchiveError)
            << "bit flip at " << i << " not detected";
    }
}

TEST(StateArchive, VersionMismatchNamesBothVersions)
{
    Buffer bad = sampleArchive();
    bad[4] = 0x7F; // version field (little-endian u32 at offset 4)
    try {
        ArchiveReader r(std::move(bad));
        FAIL() << "version mismatch not detected";
    } catch (const ArchiveError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(StateArchive, BadMagicThrows)
{
    Buffer bad = sampleArchive();
    bad[0] = 'X';
    EXPECT_THROW(ArchiveReader r(std::move(bad)), ArchiveError);
}

TEST(StateArchive, AtomicFileWriteLeavesNoTemp)
{
    std::string path = ::testing::TempDir() + "archive_atomic.snap";
    ArchiveWriter w;
    w.beginSection("s");
    w.putU32(99);
    w.endSection();
    w.writeFile(path);

    // The temp staging file must be gone after the rename.
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);

    ArchiveReader r = ArchiveReader::fromFile(path);
    EXPECT_EQ(r.open("s").getU32(), 99u);
    std::remove(path.c_str());
}

TEST(StateArchive, ValueOutsideSectionThrows)
{
    ArchiveWriter w;
    EXPECT_THROW(w.putU32(1), ArchiveError);
    w.beginSection("s");
    EXPECT_THROW(w.beginSection("t"), ArchiveError);
    w.endSection();
    EXPECT_THROW(w.endSection(), ArchiveError);
}

} // namespace
} // namespace ich
