/**
 * @file
 * NetSpectre baseline tests (paper §3, Fig. 12a: IChannels achieves 2×
 * its throughput because NetSpectre sends 1 bit per transaction).
 */

#include <gtest/gtest.h>

#include "baselines/netspectre.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"

namespace ich
{
namespace
{

ChannelConfig
baseConfig()
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 19;
    return cfg;
}

TEST(NetSpectre, RoundTripErrorFree)
{
    NetSpectre ns(baseConfig());
    BitVec bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 0};
    TransmitResult res = ns.transmit(bits);
    EXPECT_EQ(res.receivedBits, bits);
    EXPECT_EQ(res.bitErrors, 0u);
}

TEST(NetSpectre, OneBitPerTransaction)
{
    NetSpectre ns(baseConfig());
    TransmitResult res = ns.transmit({1, 0, 1, 0});
    // 4 bits => 4 transactions => 4 TP samples.
    EXPECT_EQ(res.tpUs.size(), 4u);
}

TEST(NetSpectre, IChannelsDoublesThroughput)
{
    // Fig. 12a: same transaction pacing, two bits instead of one.
    ChannelConfig cfg = baseConfig();
    NetSpectre ns(cfg);
    IccThreadCovert ich(cfg);
    EXPECT_NEAR(ich.ratedThroughputBps() / ns.ratedThroughputBps(), 2.0,
                0.01);
}

TEST(NetSpectre, ThroughputNearPaperValue)
{
    // Table 2 lists NetSpectre's gadget at ~1.5 kb/s.
    NetSpectre ns(baseConfig());
    EXPECT_GT(ns.ratedThroughputBps(), 1200.0);
    EXPECT_LT(ns.ratedThroughputBps(), 1600.0);
}

TEST(NetSpectre, AlternatingAndRunsPatterns)
{
    NetSpectre ns(baseConfig());
    BitVec runs = {1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0};
    EXPECT_EQ(ns.transmit(runs).bitErrors, 0u);
}

} // namespace
} // namespace ich
