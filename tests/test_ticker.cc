/**
 * @file
 * Tests for the rate-grouped tick scheduler: deterministic same-rate
 * member ordering, register/unregister during dispatch, coprime mixed
 * rates (one event per group per period), the CoalescedTimer pattern,
 * and snapshot round-trips of tick-heavy simulations.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chip/presets.hh"
#include "chip/simulation.hh"
#include "common/event_queue.hh"
#include "common/ticker.hh"
#include "state/state.hh"

namespace ich
{
namespace
{

/** Records (name, tick time) into a shared journal. */
struct Recorder final : Clocked {
    std::string name;
    std::vector<std::pair<std::string, Time>> *journal = nullptr;
    std::uint64_t ticks = 0;

    void
    tick(Time now) override
    {
        ++ticks;
        if (journal)
            journal->emplace_back(name, now);
    }
    const char *tickName() const override { return name.c_str(); }
};

TEST(Ticker, SameRateMembersTickInRegistrationOrder)
{
    EventQueue eq;
    Ticker ticker(eq);
    std::vector<std::pair<std::string, Time>> journal;
    Recorder a, b, c;
    a.name = "a";
    b.name = "b";
    c.name = "c";
    for (Recorder *r : {&a, &b, &c}) {
        r->journal = &journal;
        ticker.add(*r, TickRate{100, 0, 0});
    }
    EXPECT_EQ(ticker.groupCount(), 1u);
    EXPECT_EQ(ticker.memberCount(), 3u);

    eq.runUntil(250);
    ASSERT_EQ(journal.size(), 6u); // ticks at 100 and 200
    const char *expect[] = {"a", "b", "c", "a", "b", "c"};
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(journal[i].first, expect[i]);
        EXPECT_EQ(journal[i].second, Time{100} * (1 + i / 3));
    }
    // One event per period for the whole group, not one per member.
    EXPECT_EQ(eq.executedEvents(), 2u);
}

TEST(Ticker, MixedCoprimeRatesEachKeepTheirGrid)
{
    EventQueue eq;
    Ticker ticker(eq);
    Recorder three, seven;
    ticker.add(three, TickRate{3, 0, 0});
    ticker.add(seven, TickRate{7, 0, 0});
    EXPECT_EQ(ticker.groupCount(), 2u);

    eq.runUntil(21 * 10); // LCM * 10
    EXPECT_EQ(three.ticks, 70u);
    EXPECT_EQ(seven.ticks, 30u);
    // Coincident grid points (21, 42, ...) still cost one event per
    // group: total = 70 + 30.
    EXPECT_EQ(eq.executedEvents(), 100u);
    EXPECT_EQ(ticker.ticksDelivered(), 100u);
}

TEST(Ticker, PhaseAndPrioritySplitGroups)
{
    EventQueue eq;
    Ticker ticker(eq);
    std::vector<std::pair<std::string, Time>> journal;
    Recorder on_grid, shifted, low_prio;
    on_grid.name = "grid";
    shifted.name = "shift";
    low_prio.name = "late";
    on_grid.journal = shifted.journal = low_prio.journal = &journal;
    ticker.add(on_grid, TickRate{100, 0, 0});
    ticker.add(shifted, TickRate{100, 40, 0});
    ticker.add(low_prio, TickRate{100, 0, 5}); // same time, lower prio
    EXPECT_EQ(ticker.groupCount(), 3u);

    eq.runUntil(100);
    ASSERT_EQ(journal.size(), 3u);
    EXPECT_EQ(journal[0].first, "shift"); // t=40
    EXPECT_EQ(journal[1].first, "grid");  // t=100, priority 0
    EXPECT_EQ(journal[2].first, "late");  // t=100, priority 5
}

TEST(Ticker, FirstTickStrictlyAfterRegistration)
{
    EventQueue eq;
    Ticker ticker(eq);
    eq.runUntil(100); // now exactly on the would-be grid point
    Recorder r;
    ticker.add(r, TickRate{100, 0, 0});
    eq.runUntil(100);
    EXPECT_EQ(r.ticks, 0u); // not at registration time itself
    eq.runUntil(200);
    EXPECT_EQ(r.ticks, 1u);
}

/** Member that adds another member to its own group while ticking. */
struct SelfExpanding final : Clocked {
    Ticker *ticker = nullptr;
    Recorder *spawn = nullptr;
    bool done = false;

    void
    tick(Time) override
    {
        if (!done) {
            done = true;
            ticker->add(*spawn, TickRate{100, 0, 0});
        }
    }
};

TEST(Ticker, JoiningAGroupAtItsFireTimestampTicksNextPeriod)
{
    // Regression: a member added to an existing group from an event
    // ordered *before* the group's pending event at the same timestamp
    // must not be ticked at its registration time.
    EventQueue eq;
    Ticker ticker(eq);
    Recorder a, b;
    ticker.add(a, TickRate{100, 0, 0});
    // Scheduled now for t=200: lower seq than the group's t=200 event
    // (which is armed at t=100), so it dispatches first at t=200.
    eq.schedule(200, [&] { ticker.add(b, TickRate{100, 0, 0}); });
    eq.runUntil(200);
    EXPECT_EQ(a.ticks, 2u);
    EXPECT_EQ(b.ticks, 0u); // strictly after registration only
    eq.runUntil(300);
    EXPECT_EQ(b.ticks, 1u);
}

TEST(Ticker, MemberAddedDuringDispatchTicksNextPeriod)
{
    EventQueue eq;
    Ticker ticker(eq);
    SelfExpanding grower;
    Recorder spawned;
    grower.ticker = &ticker;
    grower.spawn = &spawned;
    ticker.add(grower, TickRate{100, 0, 0});

    eq.runUntil(100);
    EXPECT_EQ(spawned.ticks, 0u); // not ticked in the pass that added it
    eq.runUntil(200);
    EXPECT_EQ(spawned.ticks, 1u);
}

/** Member that removes itself (and optionally a peer) while ticking. */
struct SelfRemoving final : Clocked {
    Ticker *ticker = nullptr;
    Clocked *also = nullptr;
    std::uint64_t ticks = 0;

    void
    tick(Time) override
    {
        ++ticks;
        ticker->remove(*this);
        if (also)
            ticker->remove(*also);
    }
};

TEST(Ticker, UnregisterDuringDispatchSkipsAndStops)
{
    EventQueue eq;
    Ticker ticker(eq);
    SelfRemoving first;
    Recorder victim; // registered after `first`; removed mid-pass
    Recorder survivor;
    first.ticker = &ticker;
    first.also = &victim;
    ticker.add(first, TickRate{50, 0, 0});
    ticker.add(victim, TickRate{50, 0, 0});
    ticker.add(survivor, TickRate{50, 0, 0});

    eq.runUntil(200);
    EXPECT_EQ(first.ticks, 1u);   // removed itself after the first pass
    EXPECT_EQ(victim.ticks, 0u);  // removed before its slot in the pass
    EXPECT_EQ(survivor.ticks, 4u);
    EXPECT_EQ(ticker.memberCount(), 1u);
    EXPECT_FALSE(ticker.contains(first));
    EXPECT_TRUE(ticker.contains(survivor));
}

TEST(Ticker, EmptiedGroupStopsSchedulingAndRevives)
{
    EventQueue eq;
    Ticker ticker(eq);
    Recorder r;
    ticker.add(r, TickRate{10, 0, 0});
    eq.runUntil(25);
    EXPECT_EQ(r.ticks, 2u);
    ticker.remove(r);
    EXPECT_TRUE(eq.empty()); // the group event was descheduled
    eq.runUntil(95);
    ticker.add(r, TickRate{10, 0, 0});
    eq.runUntil(110);
    EXPECT_EQ(r.ticks, 4u); // revived on the grid: 100, 110
}

TEST(Ticker, ZeroPeriodRejected)
{
    EventQueue eq;
    Ticker ticker(eq);
    Recorder r;
    EXPECT_THROW(ticker.add(r, TickRate{0, 0, 0}),
                 std::invalid_argument);
}

TEST(CoalescedTimer, ExtendingDeadlineCostsNoHeapTraffic)
{
    EventQueue eq;
    Time deadline = 100;
    std::uint64_t fired_at = 0;
    CoalescedTimer timer;
    // Owner callback: re-check the true deadline, re-arm if early.
    struct Owner {
        EventQueue &eq;
        CoalescedTimer &timer;
        Time &deadline;
        std::uint64_t &fired_at;
        void
        fire()
        {
            timer.fired();
            if (eq.now() < deadline) {
                timer.arm(eq, deadline, [this] { fire(); });
                return;
            }
            fired_at = eq.now();
        }
    } owner{eq, timer, deadline, fired_at};

    timer.arm(eq, deadline, [&owner] { owner.fire(); });
    eq.runUntil(50);
    // Deadline extensions while pending are free no-ops.
    deadline = 300;
    timer.arm(eq, deadline, [&owner] { owner.fire(); });
    deadline = 500;
    timer.arm(eq, deadline, [&owner] { owner.fire(); });
    EXPECT_TRUE(timer.pending());

    eq.runToCompletion();
    // The early event at 100 re-armed at the then-current deadline; the
    // observable fire happened exactly at the final deadline.
    EXPECT_EQ(fired_at, 500u);
    EXPECT_FALSE(timer.pending());
}

TEST(CoalescedTimer, RetargetMovesPendingDeadlineInPlace)
{
    // retarget() moves the deadline both directions via
    // EventQueue::reschedule — one pending event throughout, and the
    // fire happens exactly at the last requested time.
    EventQueue eq;
    std::vector<Time> fires;
    CoalescedTimer timer;
    auto cb = [&] {
        timer.fired();
        fires.push_back(eq.now());
    };
    timer.retarget(eq, 100, cb);
    EXPECT_EQ(eq.size(), 1u);
    timer.retarget(eq, 300, cb); // later
    EXPECT_EQ(eq.size(), 1u);
    timer.retarget(eq, 40, cb); // earlier
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_TRUE(timer.pending());
    eq.runToCompletion();
    ASSERT_EQ(fires, (std::vector<Time>{40}));
    EXPECT_FALSE(timer.pending());

    // After the fire the handle is stale: retarget schedules fresh.
    timer.retarget(eq, 90, cb);
    EXPECT_TRUE(timer.pending());
    eq.runToCompletion();
    ASSERT_EQ(fires, (std::vector<Time>{40, 90}));
}

TEST(CoalescedTimer, RetargetAfterCancelSchedulesFresh)
{
    EventQueue eq;
    int fired = 0;
    CoalescedTimer timer;
    auto cb = [&] {
        timer.fired();
        ++fired;
    };
    timer.retarget(eq, 100, cb);
    timer.cancel(eq);
    EXPECT_FALSE(timer.pending());
    timer.retarget(eq, 200, cb);
    eq.runToCompletion();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 200u);
}

// ---------------------------------------------------------------- snapshots

/** Tick-heavy configuration: every periodic subsystem enabled. */
ChipConfig
tickHeavy(ChipConfig cfg)
{
    cfg.pmu.powerLimit.enabled = true;
    cfg.pmu.powerLimit.evalInterval = fromMicroseconds(200);
    cfg.pmu.governor.evalInterval = fromMicroseconds(70);
    cfg.thermal.sampleInterval = fromMicroseconds(50);
    return cfg;
}

void
runPhiBursts(Simulation &sim)
{
    Chip &chip = sim.chip();
    for (int c = 0; c < chip.coreCount(); ++c) {
        Program p;
        p.loop(InstClass::k256Heavy, 2500, 100);
        p.idle(fromMicroseconds(35));
        p.loop(InstClass::k256Light, 1200, 100);
        chip.core(c).thread(0).setProgram(std::move(p));
        chip.core(c).thread(0).start();
    }
    sim.run(fromSeconds(1.0));
    state::quiesce(sim);
}

/** %a-format doubles: equal strings iff the runs are byte-identical. */
std::string
tickSignature(Simulation &sim, Time duration)
{
    sim.runFor(duration);
    char buf[256];
    int n = std::snprintf(
        buf, sizeof buf,
        "now=%llu exec=%llu pend=%zu ticks=%llu f=%a v=%a tj=%a cap=%a",
        static_cast<unsigned long long>(sim.eq().now()),
        static_cast<unsigned long long>(sim.eq().executedEvents()),
        sim.eq().size(),
        static_cast<unsigned long long>(
            sim.chip().ticker().ticksDelivered()),
        sim.chip().freqGhz(), sim.chip().vccVolts(), sim.chip().tjCelsius(),
        sim.chip().pmu().config().powerLimit.limitWatts);
    return std::string(buf, static_cast<std::size_t>(n));
}

void
expectTickHeavyRoundTrip(ChipConfig cfg, std::uint64_t seed)
{
    Simulation original(tickHeavy(std::move(cfg)), seed);
    runPhiBursts(original);
    ASSERT_GT(original.chip().ticker().ticksDelivered(), 0u);

    state::Buffer snap = state::snapshot(original);
    auto restored = state::restore(snap);
    ASSERT_EQ(restored->eq().now(), original.eq().now());
    ASSERT_EQ(restored->eq().size(), original.eq().size());
    EXPECT_EQ(restored->chip().ticker().ticksDelivered(),
              original.chip().ticker().ticksDelivered());

    // Byte-identical continuation through several tick periods.
    EXPECT_EQ(tickSignature(original, fromMilliseconds(3)),
              tickSignature(*restored, fromMilliseconds(3)));
}

TEST(TickerSnapshot, DesktopTickHeavyRunRestoresByteIdentically)
{
    expectTickHeavyRoundTrip(presets::coffeeLake(), 42);
}

TEST(TickerSnapshot, ServerTickHeavyRunRestoresByteIdentically)
{
    expectTickHeavyRoundTrip(presets::skylakeServer(), 1234);
}

TEST(TickerSnapshot, AttachedDaqFailsTheSaveLoudly)
{
    EventQueue eq;
    Ticker ticker(eq);
    Recorder persistent;
    ticker.add(persistent, TickRate{100, 0, 0});
    Recorder sampler;
    sampler.name = "sampler";
    ticker.add(sampler, TickRate{100, 0, 0},
               Ticker::Ownership::kTransient);

    state::ArchiveWriter w;
    state::SaveContext ctx(w, eq);
    w.beginSection("ticker");
    try {
        ticker.saveState(ctx);
        FAIL() << "transient member accepted by saveState";
    } catch (const state::ArchiveError &e) {
        EXPECT_NE(std::string(e.what()).find("sampler"),
                  std::string::npos);
    }
}

} // namespace
} // namespace ich
