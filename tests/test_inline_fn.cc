/**
 * @file
 * Unit tests for InlineFn: inline vs heap storage selection, move
 * semantics, destruction of captured state, and signature support.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

#include "common/inline_fn.hh"

namespace ich
{
namespace
{

using Fn = InlineFn<void()>;

TEST(InlineFn, DefaultConstructedIsEmpty)
{
    Fn fn;
    EXPECT_FALSE(fn);
    EXPECT_FALSE(fn.isInline());
    Fn null_fn(nullptr);
    EXPECT_FALSE(null_fn);
}

TEST(InlineFn, SmallCaptureStoredInline)
{
    int hits = 0;
    int *p = &hits;
    auto lam = [p] { ++*p; };
    static_assert(Fn::fits<decltype(lam)>(),
                  "pointer capture must fit inline");
    Fn fn(lam);
    EXPECT_TRUE(fn);
    EXPECT_TRUE(fn.isInline());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeapAndStillWorks)
{
    std::array<std::uint64_t, 32> payload{}; // 256 bytes > inline buffer
    payload[31] = 42;
    int out = 0;
    auto lam = [payload, &out] {
        out = static_cast<int>(payload[31]);
    };
    static_assert(!Fn::fits<decltype(lam)>(),
                  "capture chosen to exceed the inline buffer");
    Fn fn(lam);
    EXPECT_TRUE(fn);
    EXPECT_FALSE(fn.isInline());
    fn();
    EXPECT_EQ(out, 42);
}

TEST(InlineFn, DestroysCapturedStateOnResetAndDestruction)
{
    auto token = std::make_shared<int>(7);
    {
        Fn fn([token] { (void)*token; });
        EXPECT_EQ(token.use_count(), 2);
        fn.reset();
        EXPECT_EQ(token.use_count(), 1);
    }
    {
        Fn fn([token] { (void)*token; });
        EXPECT_EQ(token.use_count(), 2);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFn, MoveTransfersCallableAndEmptiesSource)
{
    auto token = std::make_shared<int>(0);
    Fn a([token] { ++*token; });
    Fn b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): probing moved-from
    EXPECT_TRUE(b);
    b();
    EXPECT_EQ(*token, 1);
    // Move does not duplicate the capture.
    EXPECT_EQ(token.use_count(), 2);

    Fn c;
    c = std::move(b);
    c();
    EXPECT_EQ(*token, 2);
    c.reset();
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFn, MoveAssignmentDestroysPreviousCallable)
{
    auto old_token = std::make_shared<int>(0);
    auto new_token = std::make_shared<int>(0);
    Fn fn([old_token] { ++*old_token; });
    fn = Fn([new_token] { ++*new_token; });
    EXPECT_EQ(old_token.use_count(), 1);
    fn();
    EXPECT_EQ(*new_token, 1);
    EXPECT_EQ(*old_token, 0);
}

TEST(InlineFn, WrapsCopyableLvalueCallables)
{
    int calls = 0;
    std::function<void()> src = [&calls] { ++calls; };
    Fn fn(src); // copies; src stays usable
    fn();
    src();
    EXPECT_EQ(calls, 2);
}

TEST(InlineFn, SupportsArgumentsAndReturnValues)
{
    InlineFn<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_TRUE(add.isInline());
    EXPECT_EQ(add(2, 3), 5);

    int state = 10;
    InlineFn<int(int), 16> scaled([&state](int x) { return state * x; });
    EXPECT_EQ(scaled(4), 40);
}

TEST(InlineFn, FitsRespectsConfiguredCapacity)
{
    struct Big {
        char data[24] = {};
        void operator()() {}
    };
    static_assert(InlineFn<void(), 24>::fits<Big>(), "24B fits in 24B");
    static_assert(!InlineFn<void(), 16>::fits<Big>(), "24B exceeds 16B");
    InlineFn<void(), 16> fn{Big{}};
    EXPECT_FALSE(fn.isInline());
    fn();
}

} // namespace
} // namespace ich
