/**
 * @file
 * Tests for warm-state forking and resumable sweeps in the SweepRunner:
 * a sweep forked from warm snapshots must be byte-identical to the same
 * sweep run cold; --jobs must stay result-invariant with warmups; and a
 * sweep resumed from its columnar result store must reproduce an
 * uninterrupted run exactly, with a torn store recovering its intact
 * whole-point prefix.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "chip/presets.hh"
#include "chip/simulation.hh"
#include "exp/exp.hh"
#include "state/state.hh"

namespace ich
{
namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kWarmSeed = 0xD1CEu;

ChipConfig
scenarioChip(double slew_mv_per_us)
{
    ChipConfig cfg = presets::cannonLake();
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 1.4;
    cfg.pmu.vr.slewVoltsPerSecond = slew_mv_per_us * 1000.0;
    cfg.pmu.vr.commandJitter = fromNanoseconds(50); // exercise the Rng
    return cfg;
}

/** The expensive part: PHI bursts, then settle the PDN. */
std::unique_ptr<Simulation>
warmSimulation(double slew_mv_per_us)
{
    auto sim =
        std::make_unique<Simulation>(scenarioChip(slew_mv_per_us),
                                     kWarmSeed);
    for (int c = 0; c < sim->chip().coreCount(); ++c) {
        Program p;
        p.loop(InstClass::k256Heavy, 1200, 100);
        p.idle(fromMicroseconds(30));
        p.loop(InstClass::k512Heavy, 600, 100);
        HwThread &thr = sim->chip().core(c).thread(0);
        thr.setProgram(std::move(p));
        thr.start();
    }
    sim->run(fromSeconds(1.0));
    state::quiesce(*sim);
    return sim;
}

/** The measured part: seeded per trial, forked or cold-rebuilt. */
exp::MetricMap
measuredTrial(const exp::TrialContext &ctx)
{
    double slew = ctx.point.get("slew_mV_per_us");
    std::unique_ptr<Simulation> sim =
        ctx.warmSnapshot ? state::restore(*ctx.warmSnapshot)
                         : warmSimulation(slew);
    sim->rng().seed(ctx.seed);

    std::uint64_t iters =
        static_cast<std::uint64_t>(ctx.point.get("probe_iters"));
    HwThread &thr = sim->chip().core(0).thread(0);
    Program p;
    p.mark(1);
    p.loop(InstClass::k256Heavy, iters, 100);
    p.mark(2);
    thr.setProgram(std::move(p));
    thr.start();
    sim->run(fromSeconds(1.0));

    const auto &recs = thr.records();
    exp::MetricMap m;
    m["probe_us"] = toMicroseconds(recs.back().time - recs.front().time);
    m["volts"] = sim->chip().vccVolts();
    m["clk"] = static_cast<double>(thr.counters().clkUnhalted());
    return m;
}

/** Two-axis spec; warm state depends only on the slew axis. */
exp::ScenarioSpec
warmForkSpec(bool with_warmup)
{
    exp::ScenarioSpec spec;
    spec.name = "resume-test";
    spec.description = "warm-fork/resume unit scenario";
    spec.axes = {
        exp::axis("slew_mV_per_us", {1.0, 2.5}),
        exp::axis("probe_iters", {400.0, 800.0, 1200.0}),
    };
    spec.trials = 2;
    spec.baseSeed = 99;
    spec.run = measuredTrial;
    if (with_warmup) {
        spec.warmup = [](const exp::ParamPoint &pt) {
            auto sim = warmSimulation(pt.get("slew_mV_per_us"));
            return state::snapshot(*sim);
        };
        spec.warmupKey = [](const exp::ParamPoint &pt) {
            return pt.label("slew_mV_per_us");
        };
    }
    return spec;
}

std::string
runToJson(const exp::ScenarioSpec &spec, exp::RunnerOptions opts)
{
    exp::SweepResult result = exp::SweepRunner(opts).run(spec);
    return exp::jsonReport(result, /*include_trials=*/true);
}

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string &name)
        : path(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

TEST(WarmFork, ForkedSweepIsByteIdenticalToColdSweep)
{
    exp::RunnerOptions opts;
    opts.jobs = 1;
    std::string cold = runToJson(warmForkSpec(false), opts);
    std::string warm = runToJson(warmForkSpec(true), opts);
    EXPECT_EQ(cold, warm);
}

TEST(WarmFork, JobsInvarianceHoldsWithWarmups)
{
    exp::ScenarioSpec spec = warmForkSpec(true);
    exp::RunnerOptions j1;
    j1.jobs = 1;
    exp::RunnerOptions j4;
    j4.jobs = 4;
    EXPECT_EQ(runToJson(spec, j1), runToJson(spec, j4));
}

TEST(Resume, CompletedSweepResumesInstantlyAndIdentically)
{
    TempDir dir("resume_complete");
    exp::ScenarioSpec spec = warmForkSpec(true);
    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.resumeDir = dir.path.string();

    std::string first = runToJson(spec, opts);

    exp::SweepResult again = exp::SweepRunner(opts).run(spec);
    EXPECT_EQ(again.resumedPoints, again.points.size());
    EXPECT_EQ(exp::jsonReport(again, true), first);
}

TEST(Resume, InterruptedSweepResumesByteIdentically)
{
    TempDir dir("resume_interrupted");
    exp::ScenarioSpec spec = warmForkSpec(true);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.resumeDir = dir.path.string();

    std::string uninterrupted = runToJson(spec, opts);

    // Simulate the interruption: keep only the first two completed
    // points in the store, as if the run was killed mid-sweep.
    std::string mpath =
        exp::resultStorePath(dir.path.string(), spec.name);
    exp::ResumeManifest m;
    ASSERT_TRUE(exp::loadManifest(mpath, m));
    while (m.points.size() > 2)
        m.points.erase(std::prev(m.points.end()));
    exp::writeManifest(mpath, m);

    exp::SweepResult resumed = exp::SweepRunner(opts).run(spec);
    EXPECT_EQ(resumed.resumedPoints, 2u);
    EXPECT_EQ(exp::jsonReport(resumed, true), uninterrupted);
}

TEST(Resume, WarmSnapshotCacheIsReusedOnlyWithAMatchingManifest)
{
    TempDir dir("resume_warmcache");
    exp::ScenarioSpec spec = warmForkSpec(true);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.resumeDir = dir.path.string();

    std::string first = runToJson(spec, opts);
    std::vector<fs::path> snaps;
    for (const auto &entry : fs::directory_iterator(dir.path))
        if (entry.path().extension() == ".snap")
            snaps.push_back(entry.path());
    EXPECT_EQ(snaps.size(), 2u); // one per unique slew value
    auto mtimes = [&snaps]() {
        std::vector<fs::file_time_type> t;
        for (const auto &p : snaps)
            t.push_back(fs::last_write_time(p));
        return t;
    };

    // Interrupted restart (store present and matching): the cached
    // snapshots are trusted — reused in place, not rewritten.
    std::string mpath =
        exp::resultStorePath(dir.path.string(), spec.name);
    exp::ResumeManifest m;
    ASSERT_TRUE(exp::loadManifest(mpath, m));
    m.points.erase(m.points.begin());
    exp::writeManifest(mpath, m);
    auto before = mtimes();
    EXPECT_EQ(runToJson(spec, opts), first);
    EXPECT_EQ(mtimes(), before);

    // Without a store vouching for the directory, the cache could
    // have been produced by a different warmup: it must be recomputed
    // (rewritten), and the results still match a fresh run.
    fs::remove(mpath);
    EXPECT_EQ(runToJson(spec, opts), first);
    EXPECT_NE(mtimes(), before);
}

TEST(Resume, MismatchedManifestRestartsFromScratch)
{
    TempDir dir("resume_mismatch");
    exp::ScenarioSpec spec = warmForkSpec(true);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.resumeDir = dir.path.string();
    runToJson(spec, opts);

    exp::ScenarioSpec reseeded = spec;
    reseeded.baseSeed = 1234; // different sweep now
    exp::SweepResult result = exp::SweepRunner(opts).run(reseeded);
    EXPECT_EQ(result.resumedPoints, 0u);
}

TEST(Resume, ManifestWritesLeaveNoTempFiles)
{
    TempDir dir("resume_atomic");
    exp::ScenarioSpec spec = warmForkSpec(true);
    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.resumeDir = dir.path.string();
    runToJson(spec, opts);

    for (const auto &entry : fs::directory_iterator(dir.path))
        EXPECT_NE(entry.path().extension(), ".tmp")
            << "leftover staging file: " << entry.path();
}

TEST(Resume, TruncatedStoreRecoversItsWholePointPrefix)
{
    TempDir dir("resume_truncated");
    exp::ScenarioSpec spec = warmForkSpec(true);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.resumeDir = dir.path.string();
    std::string full = runToJson(spec, opts);

    std::string mpath =
        exp::resultStorePath(dir.path.string(), spec.name);
    std::ifstream in(mpath, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(mpath, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2);
    out.close();

    exp::ResumeManifest m;
    bool loaded = exp::loadManifest(mpath, m);
    // A truncated store is a torn tail: the intact whole-point prefix
    // loads (or, cut inside the header, nothing does); both are safe.
    // The sweep must reproduce the full result either way.
    if (loaded) {
        EXPECT_LT(m.points.size(), spec.axes[0].values.size() *
                                       spec.axes[1].values.size());
    }
    exp::SweepResult resumed = exp::SweepRunner(opts).run(spec);
    EXPECT_EQ(resumed.resumedPoints, loaded ? m.points.size() : 0u);
    EXPECT_EQ(exp::jsonReport(resumed, true), full);
}

exp::ResumeManifest
mergeFixture()
{
    exp::ResumeManifest m;
    m.scenario = "merge";
    m.baseSeed = 11;
    m.trialsPerPoint = 1;
    m.numPoints = 4;
    m.gridFp = 0xFEEDu;
    return m;
}

exp::TrialRecord
mergeRecord(std::size_t point, double value)
{
    exp::TrialRecord rec;
    rec.pointIndex = point;
    rec.trial = 0;
    rec.seed = 100 + point;
    rec.metrics["v"] = value;
    return rec;
}

TEST(ManifestMerge, DisjointPointsMergeAndReportAddedIndices)
{
    exp::ResumeManifest dst = mergeFixture();
    dst.points[0] = {mergeRecord(0, 1.5)};
    exp::ResumeManifest src = mergeFixture();
    src.points[2] = {mergeRecord(2, 2.5)};
    src.points[1] = {mergeRecord(1, 3.5)};

    std::vector<std::size_t> added = exp::mergeManifest(dst, src);
    EXPECT_EQ(added, (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(dst.points.size(), 3u);
    EXPECT_EQ(dst.points.at(2).at(0).metrics.at("v"), 2.5);
}

TEST(ManifestMerge, IdenticalDuplicatesDedupeSilently)
{
    exp::ResumeManifest dst = mergeFixture();
    dst.points[1] = {mergeRecord(1, 0.1 + 0.2)};
    exp::ResumeManifest src = mergeFixture();
    src.points[1] = {mergeRecord(1, 0.1 + 0.2)};

    std::vector<std::size_t> added = exp::mergeManifest(dst, src);
    EXPECT_TRUE(added.empty());
    EXPECT_EQ(dst.points.size(), 1u);
}

TEST(ManifestMerge, ConflictingMetricBitsThrow)
{
    exp::ResumeManifest dst = mergeFixture();
    dst.points[1] = {mergeRecord(1, 0.3)};
    exp::ResumeManifest src = mergeFixture();
    src.points[1] = {mergeRecord(1, 0.1 + 0.2)}; // != 0.3 in bits

    EXPECT_THROW(exp::mergeManifest(dst, src), std::runtime_error);
}

TEST(ManifestMerge, MismatchedSweepHeadersThrow)
{
    exp::ResumeManifest dst = mergeFixture();
    exp::ResumeManifest src = mergeFixture();
    src.baseSeed = 12; // a different sweep entirely
    src.points[0] = {mergeRecord(0, 1.0)};

    EXPECT_THROW(exp::mergeManifest(dst, src), std::runtime_error);
}

TEST(Resume, ManifestRoundTripsBitExactMetrics)
{
    exp::ResumeManifest m;
    m.scenario = "bits";
    m.baseSeed = 3;
    m.trialsPerPoint = 1;
    m.numPoints = 1;
    m.gridFp = 0xABCDu;
    exp::TrialRecord rec;
    rec.pointIndex = 0;
    rec.trial = 0;
    rec.seed = 77;
    rec.metrics["x"] = 0.1 + 0.2;
    rec.metrics["y"] = -0.0;
    rec.metrics["z"] = 3.0e-310; // subnormal
    m.points[0] = {rec};

    std::string path =
        (fs::path(::testing::TempDir()) / "bits.colstore").string();
    exp::writeManifest(path, m);
    exp::ResumeManifest back;
    ASSERT_TRUE(exp::loadManifest(path, back));
    ASSERT_TRUE(back.matches(m));
    const auto &metrics = back.points.at(0).at(0).metrics;
    EXPECT_EQ(metrics.at("x"), 0.1 + 0.2);
    EXPECT_EQ(metrics.at("y"), 0.0);
    EXPECT_TRUE(std::signbit(metrics.at("y")));
    EXPECT_EQ(metrics.at("z"), 3.0e-310);
    std::remove(path.c_str());
}

} // namespace
} // namespace ich
