/**
 * @file
 * Tests for the three processor presets (§5.1 systems).
 */

#include <gtest/gtest.h>

#include "chip/presets.hh"
#include "chip/simulation.hh"

namespace ich
{
namespace
{

TEST(Presets, CannonLakeShape)
{
    ChipConfig cfg = presets::cannonLake();
    EXPECT_EQ(cfg.numCores, 2);
    EXPECT_EQ(cfg.core.smtThreads, 2);
    EXPECT_TRUE(cfg.core.avxGate.present);
    EXPECT_TRUE(presets::hasAvx512(cfg));
    EXPECT_DOUBLE_EQ(cfg.pmu.limits.vccMaxVolts, 1.15);
    EXPECT_DOUBLE_EQ(cfg.pmu.limits.iccMaxAmps, 29.0);
    EXPECT_EQ(cfg.pmu.vr.kind, VrKind::kMotherboard);
}

TEST(Presets, CoffeeLakeShape)
{
    ChipConfig cfg = presets::coffeeLake();
    EXPECT_EQ(cfg.numCores, 8);
    EXPECT_EQ(cfg.core.smtThreads, 1); // i7-9700K has no SMT
    EXPECT_TRUE(cfg.core.avxGate.present);
    EXPECT_FALSE(presets::hasAvx512(cfg));
    EXPECT_DOUBLE_EQ(cfg.pmu.limits.vccMaxVolts, 1.27);
    EXPECT_DOUBLE_EQ(cfg.pmu.limits.iccMaxAmps, 100.0);
}

TEST(Presets, HaswellShape)
{
    ChipConfig cfg = presets::haswell();
    EXPECT_EQ(cfg.numCores, 4);
    EXPECT_EQ(cfg.core.smtThreads, 2);
    EXPECT_FALSE(cfg.core.avxGate.present); // pre-Skylake
    EXPECT_FALSE(presets::hasAvx512(cfg));
    EXPECT_EQ(cfg.pmu.vr.kind, VrKind::kIntegrated); // FIVR
}

TEST(Presets, HaswellVrFasterThanMbvrParts)
{
    EXPECT_GT(presets::haswell().pmu.vr.slewVoltsPerSecond,
              presets::cannonLake().pmu.vr.slewVoltsPerSecond);
}

TEST(Presets, FrequencyBinsAscendAndCoverTurbo)
{
    for (const auto &cfg : {presets::haswell(), presets::coffeeLake(),
                            presets::cannonLake()}) {
        const auto &bins = cfg.pmu.pstate.binsGhz;
        ASSERT_GE(bins.size(), 2u);
        for (std::size_t i = 1; i < bins.size(); ++i)
            EXPECT_GT(bins[i], bins[i - 1]);
        EXPECT_GE(bins.back(), cfg.pmu.pstate.licenseMaxGhz[0] - 1e-9);
        EXPECT_GT(cfg.pmu.pstate.licenseMaxGhz[0],
                  cfg.pmu.pstate.licenseMaxGhz[1]);
        EXPECT_GT(cfg.pmu.pstate.licenseMaxGhz[1],
                  cfg.pmu.pstate.licenseMaxGhz[2]);
    }
}

TEST(Presets, AllPresetsConstructAndIdle)
{
    for (const auto &cfg : {presets::haswell(), presets::coffeeLake(),
                            presets::cannonLake()}) {
        Simulation sim(cfg);
        sim.runFor(fromMicroseconds(100));
        EXPECT_GT(sim.chip().vccVolts(), 0.5);
        EXPECT_LT(sim.chip().vccVolts(), 1.4);
        EXPECT_GT(sim.chip().freqGhz(), 0.7);
    }
}

TEST(Presets, Fig6VoltageAnchor)
{
    // Coffee Lake at 2 GHz: base voltage near the paper's 788 mV.
    ChipConfig cfg = presets::coffeeLake();
    EXPECT_NEAR(cfg.pmu.vf.volts(2.0), 0.788, 0.02);
}

} // namespace
} // namespace ich
