/**
 * @file
 * Snapshot/restore determinism tests: a simulation restored from a
 * quiesce-point snapshot must continue byte-identically to the
 * simulation it was saved from — records, counters, PMU stats, rail
 * voltage, frequency, temperature and event accounting — for both the
 * desktop (Coffee Lake) and server (Skylake-SP) presets. Plus the
 * failure modes: snapshotting mid-program, untracked events, and
 * corrupt archives must raise clean errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "chip/presets.hh"
#include "chip/simulation.hh"
#include "state/state.hh"

namespace ich
{
namespace
{

/** Warm-up: PHI bursts on every core, run to completion, then settle. */
void
warmUp(Simulation &sim)
{
    Chip &chip = sim.chip();
    for (int c = 0; c < chip.coreCount(); ++c) {
        Program p;
        p.loop(InstClass::k256Heavy, 3000, 100);
        p.idle(fromMicroseconds(40));
        p.loop(InstClass::k256Light, 1500, 100);
        HwThread &thr = chip.core(c).thread(0);
        thr.setProgram(std::move(p));
        thr.start();
    }
    sim.run(fromSeconds(1.0));
    state::quiesce(sim);
}

/**
 * Continuation phase: drive fresh PHI work (plus the throttling and
 * decay machinery it provokes) and render everything observable into a
 * string. %a formatting keeps doubles bit-exact, so two signatures are
 * equal iff the runs were byte-identical.
 */
std::string
continuationSignature(Simulation &sim, Time duration)
{
    Chip &chip = sim.chip();
    for (int c = 0; c < chip.coreCount(); ++c) {
        Program p;
        p.mark(100 + c);
        p.loop(InstClass::k256Heavy, 2000, 100);
        p.idle(fromMicroseconds(25));
        p.loopChunked(InstClass::kScalar64, 4000, 500, 200 + c, 100);
        HwThread &thr = chip.core(c).thread(0);
        thr.setProgram(std::move(p));
        thr.start();
    }
    sim.runFor(duration);

    std::string sig;
    char buf[256];
    auto add = [&sig, &buf](int n) {
        sig.append(buf, static_cast<std::size_t>(n));
    };
    add(std::snprintf(buf, sizeof buf,
                      "now=%llu executed=%llu pending=%zu\n",
                      static_cast<unsigned long long>(sim.eq().now()),
                      static_cast<unsigned long long>(
                          sim.eq().executedEvents()),
                      sim.eq().size()));
    add(std::snprintf(buf, sizeof buf,
                      "freq=%a volts=%a icc=%a tj=%a\n", chip.freqGhz(),
                      chip.vccVolts(), chip.iccAmps(), chip.tjCelsius()));
    const CentralPmu &pmu = chip.pmu();
    add(std::snprintf(buf, sizeof buf, "pstates=%llu vreqs=%llu\n",
                      static_cast<unsigned long long>(
                          pmu.pstateTransitions()),
                      static_cast<unsigned long long>(
                          pmu.voltageRequests())));
    for (int c = 0; c < chip.coreCount(); ++c) {
        const Core &core = chip.core(c);
        add(std::snprintf(buf, sizeof buf, "core%d asserts=%llu gb=%d\n",
                          c,
                          static_cast<unsigned long long>(
                              core.throttle().assertCount()),
                          pmu.grantedLevel(c)));
        for (int t = 0; t < core.numThreads(); ++t) {
            const HwThread &thr = core.thread(t);
            const PerfCounters &pc = thr.counters();
            add(std::snprintf(
                buf, sizeof buf, " t%d clk=%llu inst=%llu idq=%llu\n", t,
                static_cast<unsigned long long>(pc.clkUnhalted()),
                static_cast<unsigned long long>(pc.instRetired()),
                static_cast<unsigned long long>(
                    pc.idqUopsNotDelivered())));
            for (const Record &rec : thr.records())
                add(std::snprintf(
                    buf, sizeof buf, " rec %d %llu %llu %llu\n", rec.tag,
                    static_cast<unsigned long long>(rec.tsc),
                    static_cast<unsigned long long>(rec.time),
                    static_cast<unsigned long long>(
                        rec.iterationsDone)));
        }
    }
    return sig;
}

void
expectByteIdenticalRestore(ChipConfig cfg, std::uint64_t seed)
{
    // A nonzero command jitter makes the PDN consume random numbers, so
    // this also proves the Rng stream restores mid-sequence.
    cfg.pmu.vr.commandJitter = fromNanoseconds(100);

    Simulation original(cfg, seed);
    warmUp(original);
    state::Buffer snap = state::snapshot(original);

    std::unique_ptr<Simulation> restored = state::restore(snap);
    ASSERT_EQ(restored->eq().now(), original.eq().now());
    ASSERT_EQ(restored->eq().size(), original.eq().size());

    std::string sig_original =
        continuationSignature(original, fromMilliseconds(20));
    std::string sig_restored =
        continuationSignature(*restored, fromMilliseconds(20));
    EXPECT_EQ(sig_original, sig_restored);
}

TEST(Snapshot, DesktopPresetRestoresByteIdentically)
{
    expectByteIdenticalRestore(presets::coffeeLake(), 42);
}

TEST(Snapshot, ServerPresetRestoresByteIdentically)
{
    expectByteIdenticalRestore(presets::skylakeServer(), 1234);
}

TEST(Snapshot, PinnedFrequencyPresetRestoresByteIdentically)
{
    ChipConfig cfg = presets::cannonLake();
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 1.4;
    expectByteIdenticalRestore(cfg, 7);
}

TEST(Snapshot, SnapshotOfRestoredSimulationAlsoRestores)
{
    // Snapshot chains: warm -> snap -> restore -> run -> quiesce ->
    // snap again; the second-generation restore must still track.
    Simulation sim(presets::coffeeLake(), 5);
    warmUp(sim);
    auto gen1 = state::restore(state::snapshot(sim));
    std::string sig1 = continuationSignature(*gen1, fromMilliseconds(5));
    state::quiesce(*gen1);
    auto gen2 = state::restore(state::snapshot(*gen1));
    EXPECT_EQ(gen2->eq().now(), gen1->eq().now());
    // Different phases, so sig1 != sig2 is expected; what matters is
    // that the second generation quiesced, snapshotted and restored
    // without tripping any census/consistency check — and still runs.
    std::string sig2 = continuationSignature(*gen2, fromMilliseconds(5));
    EXPECT_NE(sig2, sig1);
}

TEST(Snapshot, MidProgramSnapshotThrows)
{
    Simulation sim(presets::coffeeLake(), 9);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::k256Heavy, 2'000'000, 100);
    thr.setProgram(std::move(p));
    thr.start();
    sim.runFor(fromMicroseconds(50));
    EXPECT_FALSE(state::isQuiesced(sim));
    EXPECT_THROW(state::snapshot(sim), std::runtime_error);
}

TEST(Snapshot, UntrackedEventFailsTheCensus)
{
    Simulation sim(presets::coffeeLake(), 9);
    warmUp(sim);
    // An anonymous event (like a NoiseInjector or Daq would schedule)
    // has no owner to re-arm it: the census must reject the snapshot.
    sim.eq().scheduleIn(fromMicroseconds(5), [] {});
    try {
        state::snapshot(sim);
        FAIL() << "census accepted an untracked event";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("tracked"),
                  std::string::npos);
    }
}

TEST(Snapshot, QuiesceTimesOutWithReason)
{
    Simulation sim(presets::coffeeLake(), 9);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(InstClass::kScalar64, 50'000'000, 100); // ~seconds of work
    thr.setProgram(std::move(p));
    thr.start();
    try {
        state::quiesce(sim, fromMicroseconds(100));
        FAIL() << "quiesce should have timed out";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("executing"),
                  std::string::npos);
    }
}

TEST(Snapshot, CorruptSnapshotsFailCleanlyInRestore)
{
    Simulation sim(presets::coffeeLake(), 11);
    warmUp(sim);
    state::Buffer snap = state::snapshot(sim);

    // Truncations at a spread of lengths.
    for (std::size_t len : {std::size_t{0}, std::size_t{10},
                            snap.size() / 2, snap.size() - 1}) {
        state::Buffer cut(snap.begin(), snap.begin() + len);
        EXPECT_THROW(state::restore(cut), state::ArchiveError);
    }
    // Payload bit-rot.
    state::Buffer rot = snap;
    rot[rot.size() / 2] ^= 0x40;
    EXPECT_THROW(state::restore(rot), state::ArchiveError);
    // Version skew.
    state::Buffer ver = snap;
    ver[4] ^= 0x02;
    EXPECT_THROW(state::restore(ver), state::ArchiveError);
    // The pristine buffer still restores afterwards.
    EXPECT_NO_THROW(state::restore(snap));
}

TEST(Snapshot, SnapshotFileRoundTrip)
{
    std::string path = ::testing::TempDir() + "sim_roundtrip.snap";
    Simulation sim(presets::coffeeLake(), 21);
    warmUp(sim);
    state::snapshotToFile(sim, path);
    auto restored = state::restoreFromFile(path);
    EXPECT_EQ(continuationSignature(sim, fromMilliseconds(10)),
              continuationSignature(*restored, fromMilliseconds(10)));
    std::remove(path.c_str());
}

TEST(Snapshot, RestoredRngContinuesTheStream)
{
    ChipConfig cfg = presets::coffeeLake();
    Simulation sim(cfg, 77);
    warmUp(sim);
    auto restored = state::restore(state::snapshot(sim));
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(sim.rng().uniformInt(0, 1u << 30),
                  restored->rng().uniformInt(0, 1u << 30));
}

} // namespace
} // namespace ich
