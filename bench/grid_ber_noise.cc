/**
 * @file
 * New scenario enabled by the exp:: subsystem: a full BER ×
 * noise-intensity grid across all three IChannels covert channels, with
 * multiple seeded trials per grid point.
 *
 * The per-figure harness structure made this impractical — each figure
 * file hard-coded one channel and one serial loop, so a 3-channel ×
 * 5-intensity × N-trial grid (45+ independent simulations) had nowhere
 * to live and would have run serially. On the SweepRunner the grid is
 * one declarative spec and fans out across --jobs workers.
 *
 * The "intensity" axis scales a mixed OS-noise profile (interrupts +
 * context switches + concurrent App-PHI bursts at a 10:1:1 ratio), a
 * harsher setting than Fig. 14's one-source-at-a-time sweeps.
 */

#include <cstdio>

#include "bench_util.hh"
#include "exp/exp.hh"

using namespace ich;

namespace
{

exp::ScenarioRegistry
buildScenarios()
{
    exp::ScenarioRegistry reg;

    exp::ScenarioSpec grid;
    grid.name = "grid-ber-noise";
    grid.description = "BER/throughput grid: channel kind x mixed-noise "
                       "intensity (irq+ctx+App-PHI)";
    grid.axes = {
        exp::axisLabeledValues(
            "channel",
            {{toString(ChannelKind::kThread),
              static_cast<double>(ChannelKind::kThread)},
             {toString(ChannelKind::kSmt),
              static_cast<double>(ChannelKind::kSmt)},
             {toString(ChannelKind::kCores),
              static_cast<double>(ChannelKind::kCores)}}),
        exp::axis("noise_events_per_s",
                  {0.0, 100.0, 1000.0, 5000.0, 10000.0}),
    };
    grid.trials = 3;
    grid.baseSeed = 2021;
    grid.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = ctx.seed;
        double rate = ctx.point.get("noise_events_per_s");
        cfg.noise.interruptRatePerSec = rate;
        cfg.noise.contextSwitchRatePerSec = rate / 10.0;
        cfg.app.phiRatePerSec = rate / 10.0;
        auto ch = makeChannel(
            static_cast<ChannelKind>(ctx.point.getInt("channel")), cfg);
        TransmitResult r =
            ch->transmit(bench::lcgPayload(64, 0xFEED));
        exp::MetricMap m;
        m["ber"] = r.ber;
        m["throughput_bps"] = r.throughputBps;
        m["bit_errors"] = static_cast<double>(r.bitErrors);
        return m;
    };
    reg.add(std::move(grid));

    return reg;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ScenarioRegistry reg = buildScenarios();
    exp::CliOptions cli;
    int rc = exp::harnessSetup(argc, argv, reg, cli);
    if (rc >= 0)
        return rc;

    bench::banner("Grid", "BER x noise-intensity grid, all channels");

    exp::SweepResult res =
        exp::runAndReport(*reg.find("grid-ber-noise"), cli);

    exp::MetricSummary ber = exp::rollup(res, "ber");
    std::printf("rollup: overall BER mean %.4f (p90 %.4f, max %.4f) "
                "across %zu trials\n",
                ber.mean, ber.p90, ber.max, ber.count);
    std::printf("-> the thread/SMT channels degrade gracefully with "
                "mixed noise while the cross-core channel feels the "
                "shared-rail contention first; per-point spreads come "
                "from the seeded trial repetitions.\n");
    return 0;
}
