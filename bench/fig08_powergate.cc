/**
 * @file
 * Figure 8 reproduction: AVX throttling is not due to power gating.
 *
 * (a) Distribution of the AVX2 throttling period on Haswell, Coffee
 *     Lake and Cannon Lake (Haswell's FIVR ramps faster => shorter TP).
 * (b/c) Execution-time delta of the first three iterations of a
 *     300-instruction VMULPD loop: Coffee Lake pays the 8-15 ns AVX
 *     power-gate wake-up on iteration 1 only; Haswell (no AVX gate)
 *     shows no delta. The wake-up is ~0.1% of the 10+ us TP.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace ich;

namespace
{

ChipConfig
pinnedPreset(ChipConfig cfg, double freq)
{
    return bench::pinned(std::move(cfg), freq);
}

Summary
tpDistribution(const ChipConfig &cfg, int trials)
{
    Summary s;
    for (int i = 0; i < trials; ++i)
        s.add(bench::throttlePeriodUs(cfg, InstClass::k256Heavy, 400,
                                      1000 + i));
    return s;
}

/** Per-iteration times (ns) of a 300-inst VMULPD (256b heavy) loop. */
std::vector<double>
iterationNs(const ChipConfig &base, double freq)
{
    ChipConfig cfg = base;
    cfg.pmu.secureMode = true; // isolate the gate cost from ramps
    cfg.pmu.vr.commandJitter = 0;
    double top = cfg.pmu.pstate.binsGhz.back();
    cfg.pmu.pstate.licenseMaxGhz = {top, top, top};
    cfg = bench::pinned(std::move(cfg), freq);
    Simulation sim(cfg, 7);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loopChunked(InstClass::k256Heavy, 3, 1, 0, 300);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    const auto &r = thr.records();
    std::vector<double> ns;
    Time prev = 0;
    for (const auto &rec : r) {
        ns.push_back(toNanoseconds(rec.time - prev));
        prev = rec.time;
    }
    return ns;
}

} // namespace

int
main()
{
    bench::banner("Figure 8",
                  "throttling period distribution & power-gate wake-up");

    std::printf("(a) AVX2 throttling-period distribution at stock "
                "frequency (40 trials each)\n");
    Table ta({"system", "TP_p10_us", "TP_median_us", "TP_p90_us"});
    struct Sys {
        const char *name;
        ChipConfig cfg;
        double freq;
    };
    std::vector<Sys> systems = {
        {"Haswell (FIVR)", presets::haswell(), 3.5},
        {"CoffeeLake (MBVR)", presets::coffeeLake(), 3.6},
        {"CannonLake (MBVR)", presets::cannonLake(), 2.2},
    };
    for (auto &sys : systems) {
        Summary s =
            tpDistribution(pinnedPreset(sys.cfg, sys.freq), 40);
        ta.addRow({sys.name, Table::fmt(s.quantile(0.1), 2),
                   Table::fmt(s.quantile(0.5), 2),
                   Table::fmt(s.quantile(0.9), 2)});
    }
    std::printf("%s", ta.toString().c_str());
    std::printf("expected shape: Haswell < Coffee Lake / Cannon Lake "
                "(faster FIVR ramp)\n\n");

    std::printf("(b/c) iteration-time delta vs. steady state, 300-inst "
                "VMULPD loop @3 GHz\n");
    Table tb({"system", "iter1_delta_ns", "iter2_delta_ns",
              "iter3_delta_ns"});
    for (auto &sys :
         {Sys{"CoffeeLake (AVX PG)", presets::coffeeLake(), 3.0},
          Sys{"Haswell (no AVX PG)", presets::haswell(), 3.0}}) {
        auto ns = iterationNs(sys.cfg, sys.freq);
        double steady = ns.at(2);
        tb.addRow({sys.name, Table::fmt(ns.at(0) - steady, 1),
                   Table::fmt(ns.at(1) - steady, 1),
                   Table::fmt(ns.at(2) - steady, 1)});
    }
    std::printf("%s", tb.toString().c_str());

    double tp_us = bench::throttlePeriodUs(
        pinnedPreset(presets::coffeeLake(), 3.0), InstClass::k256Heavy);
    std::printf("\nKey Conclusion 3: the ~10 ns gate wake-up is ~%.2f%% "
                "of the %.1f us throttling period.\n",
                100.0 * 10.0 / (tp_us * 1000.0), tp_us);
    return 0;
}
