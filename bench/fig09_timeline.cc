/**
 * @file
 * Figure 9 reproduction: timeline of power gate, IPC, frequency and Vcc
 * while an AVX2 loop activates the current-management mechanisms.
 *
 * (a) Low pinned frequency: di/dt-avoidance path — core throttled (IPC
 *     1/4) while the guardband ramps; frequency untouched.
 * (b) Nanosecond zoom on the AVX power-gate opening.
 * (c) Max turbo: Vccmax/Iccmax protection path — P-state transition
 *     lowers frequency and retargets voltage.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "measure/daq.hh"

using namespace ich;

namespace
{

/** IPC proxy: 1.0 unthrottled, 0.25 during throttling. */
double
ipcOf(Chip &chip)
{
    const auto &tu = chip.core(0).throttle();
    return 1.0 / tu.slowdownFactor(0, InstClass::k256Heavy);
}

void
runTimeline(const ChipConfig &cfg, const char *label, double span_us)
{
    Simulation sim(cfg, 3);
    Chip &chip = sim.chip();
    double v0 = chip.vccVolts();

    Program p;
    p.idle(fromMicroseconds(5));
    p.loop(InstClass::k256Heavy, 2000, 100);
    chip.core(0).thread(0).setProgram(std::move(p));

    Daq daq(sim.chip().ticker(), fromMicroseconds(1));
    daq.addChannel("ipc", [&] { return ipcOf(chip); });
    daq.addChannel("vcc_mV", [&] {
        return (chip.vccVolts() - v0) * 1000.0;
    });
    daq.addChannel("freq_GHz", [&] { return chip.freqGhz(); });
    daq.addChannel("pg_open", [&] {
        return chip.core(0).avxGate().closed() ? 0.0 : 1.0;
    });
    daq.start(fromMicroseconds(span_us));
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMicroseconds(span_us));

    std::printf("%s\n", label);
    Table t({"t_us", "IPC", "Vcc_delta_mV", "freq_GHz", "avx_pg_open"});
    for (double us = 1.0; us <= span_us; us += span_us / 16.0) {
        Time tm = fromMicroseconds(us);
        t.addRow({Table::fmt(us, 0), Table::fmt(daq.trace("ipc").valueAt(tm), 2),
                  Table::fmt(daq.trace("vcc_mV").valueAt(tm), 2),
                  Table::fmt(daq.trace("freq_GHz").valueAt(tm), 2),
                  Table::fmt(daq.trace("pg_open").valueAt(tm), 0)});
    }
    std::printf("%s\n", t.toString().c_str());
}

} // namespace

int
main()
{
    bench::banner("Figure 9",
                  "PG / IPC / frequency / Vcc during AVX2 activation");

    // (a) guardband path at pinned low frequency.
    ChipConfig low = bench::pinned(presets::cannonLake(), 2.0);
    low.pmu.vr.commandJitter = 0;
    runTimeline(low, "(a) pinned 2 GHz: throttle + guardband ramp "
                     "(frequency flat)",
                40.0);

    // (b) nanosecond zoom: the power gate opens in ~10 ns, *before* the
    // multi-microsecond throttling window even begins to matter.
    {
        ChipConfig cfg = low;
        Simulation sim(cfg, 3);
        Chip &chip = sim.chip();
        Program p;
        p.loop(InstClass::k256Heavy, 50, 100);
        chip.core(0).thread(0).setProgram(std::move(p));
        Daq daq(sim.chip().ticker(), fromNanoseconds(2));
        daq.addChannel("pg_open", [&] {
            return chip.core(0).avxGate().closed() ? 0.0 : 1.0;
        });
        daq.start(fromNanoseconds(40));
        chip.core(0).thread(0).start();
        sim.eq().runUntil(fromNanoseconds(40));
        const Trace &pg = daq.trace("pg_open");
        double t_open = -1.0;
        for (const auto &pt : pg.points()) {
            if (pt.value > 0.5) {
                t_open = toNanoseconds(pt.time);
                break;
            }
        }
        std::printf("(b) ns zoom: AVX power gate observed open by t = "
                    "%.0f ns (wake-up 8-15 ns)\n\n",
                    t_open);
    }

    // (c) limit-protection path at max turbo.
    ChipConfig turbo = presets::cannonLake();
    turbo.pmu.governor.policy = GovernorPolicy::kPerformance;
    turbo.pmu.vr.commandJitter = 0;
    runTimeline(turbo, "(c) max turbo: P-state transition path "
                       "(frequency steps down)",
                60.0);

    std::printf("expected shapes: (a) IPC dips to 0.25 while Vcc ramps, "
                "freq flat;\n(c) freq drops within tens of us; "
                "(b) PG opens in ~10 ns.\n");
    return 0;
}
