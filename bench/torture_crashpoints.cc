/**
 * @file
 * torture_crashpoints — CrashMonkey-style crash-consistency campaign
 * over the durability stack (state/chunkio, exp/colstore, exp/resume,
 * the shard protocol).
 *
 * The harness first runs each victim workload fault-free in counting
 * mode (ICH_FAULT_COUNT_FILE) to discover every injectable fault point
 * — each (site, op) pair and how often it is reached — then attacks
 * the points one cycle at a time: fork/exec the victim with a one-rule
 * fault::Plan in ICH_FAULT_PLAN (crash, torn write, bit flip, ENOSPC,
 * EINTR, short write, dropped fsync...), let the fault land, and then
 * run the *real* recovery path (reader adoption, --resume, coordinator
 * scavenge/reassign). The invariant asserted after every cycle:
 *
 *   recovery converges to a result bit-identical to the fault-free
 *   run, or the failure is loud — NEVER a silently wrong answer.
 *
 * Workloads:
 *   colstore   durable ColumnStoreWriter fed synthetic deterministic
 *              records (chunk.write open/write/fsync sites)
 *   resume     a real SweepRunner --resume sweep with warm snapshots;
 *              run fresh (archive.write + chunk.write sites) and
 *              pre-seeded from a truncated store (chunk.read +
 *              archive.read sites)
 *   shard      an in-process ShardCoordinator whose worker 0 is armed
 *              with scripted process faults at named protocol points
 *              (shard.post-hello, shard.point-start, shard.post-sync,
 *              shard.result-frame) and scratch-store I/O faults
 *
 * Modes: --quick (default; the CI campaign, fixed seeds, bounded
 * occurrence caps) and --full (ICH_TORTURE_FULL=1; every occurrence
 * plus torn-offset and bit-position sweeps). Every failing cycle
 * prints a copy-pasteable repro line.
 *
 * Internal modes (spawned by the harness itself):
 *   --victim NAME --dir D    run one victim workload (faults via env)
 *   --shard-cycle SPEC       run one shard cycle (repro aid)
 *   --shard-worker ...       shard worker re-exec (harnessSetup)
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include "exp/exp.hh"
#include "fault/fault.hh"
#include "shard/shard.hh"
#include "state/state.hh"

namespace ich
{
namespace
{

namespace fs = std::filesystem;

using PointMap = std::map<std::size_t, std::vector<exp::TrialRecord>>;

// ------------------------------------------------------------ workloads

/** Synthetic sweep identity for the colstore victim: 8 points. */
exp::ScenarioSpec
colstoreSpec()
{
    exp::ScenarioSpec spec;
    spec.name = "torture-colstore";
    spec.description = "synthetic durable-store torture workload";
    spec.axes = {
        exp::axis("x", {1.0, 2.0, 3.0, 4.0}),
        exp::axis("y", {0.25, 0.75}),
    };
    spec.trials = 2;
    spec.baseSeed = 0xC0FFEEull;
    return spec;
}

exp::SweepMeta
metaFor(const exp::ScenarioSpec &spec)
{
    exp::SweepMeta meta;
    meta.scenario = spec.name;
    meta.description = spec.description;
    meta.baseSeed = spec.baseSeed;
    meta.trialsPerPoint = spec.trials;
    meta.points = expandPoints(spec);
    meta.gridFp = exp::gridFingerprint(meta.points);
    return meta;
}

/**
 * Deterministic records for one point, including the bit-exactness
 * landmines (-0.0, subnormals) the store must round-trip.
 */
std::vector<exp::TrialRecord>
synthRecords(const exp::SweepMeta &meta, std::size_t idx)
{
    std::vector<exp::TrialRecord> recs;
    for (int t = 0; t < meta.trialsPerPoint; ++t) {
        std::uint64_t global =
            static_cast<std::uint64_t>(idx) *
                static_cast<std::uint64_t>(meta.trialsPerPoint) +
            static_cast<std::uint64_t>(t);
        exp::TrialRecord rec;
        rec.pointIndex = idx;
        rec.trial = t;
        rec.seed = exp::deriveTrialSeed(meta.baseSeed, global);
        rec.metrics["alpha"] =
            static_cast<double>(rec.seed >> 11) * 0x1p-42;
        rec.metrics["beta"] = t == 0 ? -0.0 : 3.0e-310 * (idx + 1.0);
        rec.metrics["gamma"] = meta.points[idx].get("x") *
                               meta.points[idx].get("y") +
                               static_cast<double>(t);
        recs.push_back(std::move(rec));
    }
    return recs;
}

PointMap
colstoreGolden()
{
    exp::SweepMeta meta = metaFor(colstoreSpec());
    PointMap golden;
    for (std::size_t i = 0; i < meta.points.size(); ++i)
        golden[i] = synthRecords(meta, i);
    return golden;
}

std::string
colstorePath(const std::string &dir)
{
    return dir + "/torture.colstore";
}

/** The colstore victim body: append every point durably. */
int
runVictimColstore(const std::string &dir)
{
    exp::SweepMeta meta = metaFor(colstoreSpec());
    exp::ColumnStoreWriter::Options opts;
    opts.durable = true;
    exp::ColumnStoreWriter writer(colstorePath(dir), opts);
    writer.beginSweep(meta);
    for (std::size_t i = 0; i < meta.points.size(); ++i) {
        std::vector<exp::TrialRecord> recs = synthRecords(meta, i);
        writer.acceptPoint(i, recs.data(), recs.size());
    }
    writer.endSweep();
    return 0;
}

/**
 * The resume victim: a real SweepRunner sweep with warm snapshots
 * (synthetic archives, so warmup hits archive.write/read without
 * simulating a chip) checkpointing into @p dir.
 */
exp::ScenarioSpec
resumeSpec()
{
    exp::ScenarioSpec spec;
    spec.name = "torture-resume";
    spec.description = "resumable-sweep torture workload";
    spec.axes = {
        exp::axis("k", {0.0, 1.0, 2.0}),
        exp::axis("j", {0.0, 1.0}),
    };
    spec.trials = 2;
    spec.baseSeed = 0xFEEDull;
    spec.warmupKey = [](const exp::ParamPoint &pt) {
        return "k" + std::to_string(pt.getInt("k"));
    };
    spec.warmup = [](const exp::ParamPoint &pt) {
        state::ArchiveWriter w;
        w.beginSection("warm");
        w.putU64(1000 + static_cast<std::uint64_t>(pt.getInt("k")) * 17);
        w.endSection();
        return w.finish();
    };
    spec.run = [](const exp::TrialContext &ctx) {
        std::uint64_t z = 0;
        if (ctx.warmSnapshot) {
            state::ArchiveReader ar(*ctx.warmSnapshot);
            state::SectionReader sec = ar.open("warm");
            z = sec.getU64();
        }
        std::uint64_t h = ctx.seed ^ (z * 0x9E3779B97F4A7C15ull);
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDull;
        h ^= h >> 33;
        exp::MetricMap m;
        m["mix"] = static_cast<double>(h >> 11) * 0x1p-42 +
                   ctx.point.get("j");
        m["neg"] = ctx.trial == 0 ? -0.0 : 2.0e-310;
        return m;
    };
    return spec;
}

std::string
runResumeSweep(const std::string &dir, exp::SweepResult *out = nullptr)
{
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.resumeDir = dir;
    exp::SweepResult res = exp::SweepRunner(opts).run(resumeSpec());
    if (out)
        *out = res;
    return exp::jsonReport(res, true);
}

int
runVictimResume(const std::string &dir)
{
    std::string json = runResumeSweep(dir);
    std::ofstream report(dir + "/report.json",
                         std::ios::binary | std::ios::trunc);
    report << json;
    report.close();
    return report ? 0 : 1;
}

/** Cheap, seed-sensitive shard scenario (worker re-exec registry). */
exp::ScenarioSpec
shardSpec()
{
    exp::ScenarioSpec spec;
    spec.name = "torture-shard";
    spec.description = "shard protocol torture workload";
    spec.axes = {
        exp::axis("x", {1.0, 2.0, 3.0}),
        exp::axis("y", {0.5, 1.5}),
    };
    spec.trials = 2;
    spec.baseSeed = 0xABCDull;
    spec.run = [](const exp::TrialContext &ctx) {
        std::uint64_t h = ctx.seed;
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDull;
        h ^= h >> 33;
        exp::MetricMap m;
        m["mix"] = static_cast<double>(h >> 11) * 0x1p-42 +
                   ctx.point.get("x") * ctx.point.get("y");
        m["sum"] = ctx.point.get("x") + static_cast<double>(ctx.trial);
        return m;
    };
    return spec;
}

const exp::ScenarioRegistry &
tortureRegistry()
{
    static const exp::ScenarioRegistry reg = [] {
        exp::ScenarioRegistry r;
        r.add(shardSpec());
        return r;
    }();
    return reg;
}

// -------------------------------------------------- bit-exact equality

bool
sameDouble(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

bool
sameRecords(const std::vector<exp::TrialRecord> &a,
            const std::vector<exp::TrialRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].pointIndex != b[i].pointIndex ||
            a[i].trial != b[i].trial || a[i].seed != b[i].seed)
            return false;
        if (a[i].metrics.size() != b[i].metrics.size())
            return false;
        auto it = b[i].metrics.begin();
        for (const auto &kv : a[i].metrics) {
            if (kv.first != it->first ||
                !sameDouble(kv.second, it->second))
                return false;
            ++it;
        }
    }
    return true;
}

// ------------------------------------------------------ victim control

struct VictimExit {
    bool signaled = false;
    int code = -1;
    int sig = 0;
};

std::string gSelfExe;

/**
 * fork/exec this binary in victim mode with one fault env var set.
 * stdout+stderr go to @p log_path (shown only on failure).
 */
VictimExit
runVictim(const std::string &victim, const std::string &dir,
          const char *env_key, const std::string &env_val,
          const std::string &log_path)
{
    pid_t pid = ::fork();
    if (pid < 0) {
        std::perror("fork");
        std::exit(2);
    }
    if (pid == 0) {
        ::unsetenv("ICH_FAULT_PLAN");
        ::unsetenv("ICH_FAULT_COUNT_FILE");
        if (env_key)
            ::setenv(env_key, env_val.c_str(), 1);
        int logfd = ::open(log_path.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (logfd >= 0) {
            ::dup2(logfd, 1);
            ::dup2(logfd, 2);
            ::close(logfd);
        }
        ::execl(gSelfExe.c_str(), gSelfExe.c_str(), "--victim",
                victim.c_str(), "--dir", dir.c_str(),
                static_cast<char *>(nullptr));
        std::perror("execl");
        ::_exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
        std::perror("waitpid");
        std::exit(2);
    }
    VictimExit ve;
    if (WIFSIGNALED(status)) {
        ve.signaled = true;
        ve.sig = WTERMSIG(status);
    } else {
        ve.code = WEXITSTATUS(status);
    }
    return ve;
}

// -------------------------------------------------------------- cycles

enum class Outcome {
    kIdentical, ///< recovery converged bit-identically
    kLoudAbort, ///< corruption was detected loudly, then recomputed
    kFail,      ///< invariant violated (silent divergence / no recovery)
};

struct CycleResult {
    Outcome outcome = Outcome::kFail;
    std::string detail;
};

struct Tally {
    std::size_t total = 0;
    std::size_t identical = 0;
    std::size_t loud = 0;
    std::vector<std::string> failures; ///< repro lines
};

/**
 * Decode every completed point of @p path. Returns false (leaving
 * @p out empty) when the reader aborts loudly; a missing file decodes
 * as zero points.
 */
bool
decodeStore(const std::string &path, PointMap &out, std::string &err)
{
    out.clear();
    if (!fs::exists(path))
        return true;
    try {
        exp::ColumnStoreReader reader(path);
        reader.forEachPoint(
            [&](std::size_t idx,
                const std::vector<exp::TrialRecord> &recs) {
                out[idx] = recs;
            });
        return true;
    } catch (const state::ArchiveError &e) {
        err = e.what();
        return false;
    }
}

/**
 * The colstore recovery path: adopt what survived (the production
 * mechanism — ColumnStoreWriter::beginSweep truncates the torn tail
 * and appends after the valid prefix), recompute the missing points,
 * and verify the final decode against @p golden. An unreadable store
 * (loud corruption) is deleted and rebuilt from scratch, exactly what
 * an operator does after the alarm.
 */
CycleResult
recoverColstore(const std::string &dir, const PointMap &golden,
                const VictimExit &ve)
{
    CycleResult res;
    const std::string path = colstorePath(dir);
    exp::SweepMeta meta = metaFor(colstoreSpec());

    PointMap have;
    std::string decode_err;
    bool decoded = decodeStore(path, have, decode_err);

    if (!ve.signaled && ve.code == 0) {
        // The victim claims success: the store must be complete and
        // bit-identical with no repair at all — anything else is a
        // silently wrong answer... unless the written bytes fail CRC,
        // which is the loud-corruption outcome (bitflip cycles).
        if (!decoded) {
            res.outcome = Outcome::kLoudAbort;
            res.detail = "reader aborted loudly: " + decode_err;
            fs::remove(path);
            have.clear();
        } else if (have.size() != golden.size()) {
            res.outcome = Outcome::kFail;
            res.detail = "victim exited 0 but store has " +
                         std::to_string(have.size()) + " of " +
                         std::to_string(golden.size()) + " points";
            return res;
        }
    } else if (!decoded) {
        // Crash/error cycles may leave an unreadable store only via
        // detected corruption — which is loud by construction.
        res.outcome = Outcome::kLoudAbort;
        res.detail = "reader aborted loudly: " + decode_err;
        fs::remove(path);
        have.clear();
    }

    // Silent-divergence check: every surviving point must already be
    // bit-identical to the fault-free run.
    for (const auto &kv : have) {
        auto it = golden.find(kv.first);
        if (it == golden.end() || !sameRecords(kv.second, it->second)) {
            res.outcome = Outcome::kFail;
            res.detail = "surviving point " + std::to_string(kv.first) +
                         " diverges from the fault-free run";
            return res;
        }
    }

    if (have.size() < golden.size()) {
        try {
            exp::ColumnStoreWriter::Options opts;
            opts.durable = true;
            exp::ColumnStoreWriter writer(path, opts);
            writer.beginSweep(meta); // adopts the valid prefix
            for (const auto &kv : golden)
                if (!have.count(kv.first))
                    writer.acceptPoint(kv.first, kv.second.data(),
                                       kv.second.size());
            writer.sync();
        } catch (const std::exception &e) {
            res.outcome = Outcome::kFail;
            res.detail = std::string("repair failed: ") + e.what();
            return res;
        }
    }

    PointMap final_points;
    std::string final_err;
    if (!decodeStore(path, final_points, final_err)) {
        res.outcome = Outcome::kFail;
        res.detail = "store unreadable after repair: " + final_err;
        return res;
    }
    if (final_points.size() != golden.size()) {
        res.outcome = Outcome::kFail;
        res.detail = "repair left " +
                     std::to_string(final_points.size()) + " of " +
                     std::to_string(golden.size()) + " points";
        return res;
    }
    for (const auto &kv : golden) {
        if (!sameRecords(final_points.at(kv.first), kv.second)) {
            res.outcome = Outcome::kFail;
            res.detail = "point " + std::to_string(kv.first) +
                         " not bit-identical after repair";
            return res;
        }
    }
    if (res.outcome != Outcome::kLoudAbort)
        res.outcome = Outcome::kIdentical;
    return res;
}

CycleResult
runColstoreCycle(const std::string &plan, const std::string &dir,
                 const PointMap &golden)
{
    fs::remove_all(dir);
    fs::create_directories(dir);
    VictimExit ve = runVictim("colstore", dir, "ICH_FAULT_PLAN", plan,
                              dir + "/victim.log");
    return recoverColstore(dir, golden, ve);
}

/**
 * Pre-seed a resume directory: run the sweep to completion, then trim
 * the checkpoint store to two points (as if the run died early), so
 * the victim's resume pass exercises the read-side sites.
 */
void
seedResumeDir(const std::string &dir)
{
    fs::remove_all(dir);
    fs::create_directories(dir);
    runResumeSweep(dir);
    std::string mpath =
        exp::resultStorePath(dir, resumeSpec().name);
    exp::ResumeManifest m;
    if (!exp::loadManifest(mpath, m)) {
        std::fprintf(stderr,
                     "torture: pre-seed manifest load failed\n");
        std::exit(2);
    }
    while (m.points.size() > 2)
        m.points.erase(std::prev(m.points.end()));
    exp::writeManifest(mpath, m);
}

CycleResult
runResumeCycle(const std::string &plan, const std::string &dir,
               bool pre_seed, const std::string &golden_json)
{
    if (pre_seed) {
        seedResumeDir(dir);
    } else {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    VictimExit ve = runVictim("resume", dir, "ICH_FAULT_PLAN", plan,
                              dir + "/victim.log");
    CycleResult res;
    if (!ve.signaled && ve.code == 0) {
        std::ifstream in(dir + "/report.json", std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        if (!in) {
            res.outcome = Outcome::kFail;
            res.detail = "victim exited 0 without a report";
            return res;
        }
        if (ss.str() != golden_json) {
            res.outcome = Outcome::kFail;
            res.detail =
                "victim report diverges from the fault-free run";
            return res;
        }
        res.outcome = Outcome::kIdentical;
        return res;
    }
    // The victim died or errored: the production recovery path is
    // simply re-running with --resume against the same directory.
    try {
        std::string recovered = runResumeSweep(dir);
        if (recovered != golden_json) {
            res.outcome = Outcome::kFail;
            res.detail =
                "resumed report diverges from the fault-free run";
            return res;
        }
        res.outcome = Outcome::kIdentical;
    } catch (const std::exception &e) {
        // --resume must absorb anything a crash can leave behind
        // (corrupt stores and snapshots are detected and recomputed),
        // so recovery refusing to run is an invariant violation.
        res.outcome = Outcome::kFail;
        res.detail = std::string("resume recovery threw: ") + e.what();
    }
    return res;
}

struct ShardCycle {
    std::string plan;
    int stallMs = 0; ///< 0: keep the ShardOptions default
    int maxUnitAttempts = 6;
};

CycleResult
runShardCycle(const ShardCycle &cycle, const std::string &dir,
              const std::string &golden_json)
{
    fs::remove_all(dir);
    fs::create_directories(dir);
    CycleResult res;
    shard::ShardOptions opts;
    opts.workers = 2;
    opts.scratchDir = dir + "/scratch";
    opts.binaryPath = gSelfExe;
    opts.maxUnitAttempts = cycle.maxUnitAttempts;
    opts.testWorker0FaultSpec = cycle.plan;
    if (cycle.stallMs > 0)
        opts.stallTimeoutMs = cycle.stallMs;
    try {
        exp::SweepResult sharded = shard::runSharded(shardSpec(), opts);
        if (exp::jsonReport(sharded, true) != golden_json) {
            res.outcome = Outcome::kFail;
            res.detail =
                "sharded report diverges from the fault-free run";
            return res;
        }
        res.outcome = Outcome::kIdentical;
    } catch (const std::exception &e) {
        // Worker crash/hang/slow/torn faults are all recoverable by
        // design (scavenge + reassign + respawn); an abort here means
        // the coordinator failed to recover.
        res.outcome = Outcome::kFail;
        res.detail = std::string("sharded sweep aborted: ") + e.what();
    }
    return res;
}

// --------------------------------------------------------- enumeration

/** (site, op) -> calls observed in one fault-free victim run. */
using CountMap = std::map<std::pair<std::string, std::string>,
                          std::uint64_t>;

CountMap
countVictim(const std::string &victim, const std::string &dir,
            bool pre_seed)
{
    if (pre_seed) {
        seedResumeDir(dir);
    } else {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    std::string counts_path = dir + "/counts.txt";
    VictimExit ve = runVictim(victim, dir, "ICH_FAULT_COUNT_FILE",
                              counts_path, dir + "/victim.log");
    if (ve.signaled || ve.code != 0) {
        std::fprintf(stderr,
                     "torture: fault-free %s victim failed (counting "
                     "mode) — see %s/victim.log\n",
                     victim.c_str(), dir.c_str());
        std::exit(2);
    }
    CountMap counts;
    std::ifstream in(counts_path);
    std::string site, op;
    std::uint64_t n;
    while (in >> site >> op >> n)
        counts[{site, op}] = n;
    if (counts.empty()) {
        std::fprintf(stderr,
                     "torture: %s victim produced no fault-point "
                     "counts\n",
                     victim.c_str());
        std::exit(2);
    }
    return counts;
}

struct Cycle {
    std::string workload; ///< colstore | resume | resume-seeded | shard
    std::string plan;
    ShardCycle shard; ///< when workload == "shard"
};

std::string
rulePlan(std::uint64_t seed, const std::string &site,
         const std::string &op, std::uint64_t occ,
         const std::string &kind, std::int64_t arg = -1)
{
    std::string plan = "seed=" + std::to_string(seed) +
                       ";site=" + site + ":op=" + op +
                       ":occ=" + std::to_string(occ) + ":fault=" + kind;
    if (arg >= 0)
        plan += ":arg=" + std::to_string(arg);
    return plan;
}

/**
 * Expand one (site, op) fault point into attack cycles: every kind in
 * @p kinds at every occurrence up to @p cap (full mode: uncapped, plus
 * seeded variants so torn offsets and flipped bits move around).
 */
void
expandCycles(std::vector<Cycle> &out, const std::string &workload,
             const std::string &site, const std::string &op,
             std::uint64_t count, std::uint64_t cap,
             const std::vector<std::string> &kinds, bool full,
             std::uint64_t &dropped)
{
    std::uint64_t limit = full ? count : std::min(count, cap);
    dropped += (count - limit) * kinds.size();
    for (std::uint64_t occ = 1; occ <= limit; ++occ) {
        for (const std::string &kind : kinds) {
            std::uint64_t seed = 0x7071ull + occ * 131 + out.size();
            Cycle c;
            c.workload = workload;
            c.plan = rulePlan(seed, site, op, occ, kind);
            out.push_back(c);
            if (full && (kind == "torn" || kind == "bitflip")) {
                // Sweep the tear offset / bit position via the seed:
                // same rule, different draws.
                for (int v = 1; v <= 3; ++v) {
                    Cycle cv;
                    cv.workload = workload;
                    cv.plan = rulePlan(seed + 7919ull * v, site, op,
                                       occ, kind);
                    out.push_back(cv);
                }
            }
        }
    }
}

std::vector<Cycle>
buildFileCycles(const CountMap &colstore_counts,
                const CountMap &resume_fresh_counts,
                const CountMap &resume_seeded_counts, bool full,
                std::uint64_t &dropped)
{
    const std::vector<std::string> write_kinds = {
        "crash", "torn", "bitflip", "enospc", "eintr", "short"};
    const std::vector<std::string> fsync_kinds = {"crash", "eio",
                                                  "fsync-drop"};
    const std::vector<std::string> open_kinds = {"crash", "enospc"};
    const std::vector<std::string> rename_kinds = {"crash", "eio"};
    const std::vector<std::string> read_kinds = {"eio", "eintr"};

    std::vector<Cycle> cycles;
    auto expand = [&](const std::string &workload, const CountMap &counts,
                      const std::string &site, const std::string &op,
                      std::uint64_t cap,
                      const std::vector<std::string> &kinds) {
        auto it = counts.find({site, op});
        if (it == counts.end() || it->second == 0)
            return;
        expandCycles(cycles, workload, site, op, it->second, cap, kinds,
                     full, dropped);
    };

    // colstore victim: the durable writer's own sites.
    expand("colstore", colstore_counts, "chunk.write", "open", 4,
           open_kinds);
    expand("colstore", colstore_counts, "chunk.write", "write", 16,
           write_kinds);
    expand("colstore", colstore_counts, "chunk.write", "fsync", 16,
           fsync_kinds);
    // The write()==0 pathology, explicitly (arg=0 short write).
    cycles.push_back(
        {"colstore",
         rulePlan(0x7071ull, "chunk.write", "write", 2, "short", 0),
         {}});

    // fresh resume victim: warm-snapshot archives + checkpoint store.
    expand("resume", resume_fresh_counts, "archive.write", "open", 4,
           open_kinds);
    expand("resume", resume_fresh_counts, "archive.write", "write", 8,
           write_kinds);
    expand("resume", resume_fresh_counts, "archive.write", "fsync", 8,
           fsync_kinds);
    expand("resume", resume_fresh_counts, "archive.write", "rename", 8,
           rename_kinds);
    expand("resume", resume_fresh_counts, "chunk.write", "write", 8,
           {"crash", "torn"});

    // pre-seeded resume victim: the read-side recovery sites.
    expand("resume-seeded", resume_seeded_counts, "chunk.read", "open",
           2, {"eio"});
    expand("resume-seeded", resume_seeded_counts, "chunk.read", "read",
           10, read_kinds);
    expand("resume-seeded", resume_seeded_counts, "archive.read",
           "open", 4, {"eio"});
    expand("resume-seeded", resume_seeded_counts, "archive.read",
           "read", 6, read_kinds);
    return cycles;
}

std::vector<ShardCycle>
buildShardCycles()
{
    auto plan = [](const std::string &rule, std::uint64_t seed) {
        return "seed=" + std::to_string(seed) + ";" + rule;
    };
    std::vector<ShardCycle> cycles;
    // Named protocol points: post-Hello, mid-Assign-batch (occ > 1
    // fires between points of a batch), after-scratch-sync-before-
    // Result, and a mid-frame tear of a result frame.
    cycles.push_back({plan("site=shard.post-hello:op=point:occ=1"
                           ":fault=crash", 11), 0, 6});
    cycles.push_back({plan("site=shard.post-hello:op=point:occ=1"
                           ":fault=hang", 12), 400, 6});
    cycles.push_back({plan("site=shard.point-start:op=point:occ=1"
                           ":fault=crash", 13), 0, 6});
    cycles.push_back({plan("site=shard.point-start:op=point:occ=3"
                           ":fault=crash", 14), 0, 6});
    cycles.push_back({plan("site=shard.point-start:op=point:occ=1"
                           ":fault=hang", 15), 400, 6});
    cycles.push_back({plan("site=shard.point-start:op=point:occ=2"
                           ":fault=slow:arg=50", 16), 0, 6});
    cycles.push_back({plan("site=shard.post-sync:op=point:occ=1"
                           ":fault=crash", 17), 0, 6});
    cycles.push_back({plan("site=shard.result-frame:op=point:occ=1"
                           ":fault=torn", 18), 0, 6});
    cycles.push_back({plan("site=shard.result-frame:op=point:occ=1"
                           ":fault=torn", 99), 0, 6});
    cycles.push_back({plan("site=shard.result-frame:op=point:occ=2"
                           ":fault=torn", 20), 0, 6});
    // Worker scratch-store I/O faults: a tear kills the worker mid-
    // append (scavenge + respawn), an error degrades scratch loudly
    // on stderr while the sweep still completes byte-identically.
    cycles.push_back({plan("site=chunk.write:op=write:occ=2"
                           ":fault=torn", 21), 0, 6});
    cycles.push_back({plan("site=chunk.write:op=write:occ=1"
                           ":fault=enospc", 22), 0, 6});
    cycles.push_back({plan("site=chunk.write:op=fsync:occ=1"
                           ":fault=eio", 23), 0, 6});
    return cycles;
}

// -------------------------------------------------------------- driver

void
reportCycle(Tally &tally, const CycleResult &res,
            const std::string &repro, bool verbose)
{
    ++tally.total;
    switch (res.outcome) {
      case Outcome::kIdentical:
        ++tally.identical;
        break;
      case Outcome::kLoudAbort:
        ++tally.loud;
        break;
      case Outcome::kFail:
        tally.failures.push_back(repro + "\n    " + res.detail);
        std::fprintf(stderr, "FAIL: %s\n  repro: %s\n",
                     res.detail.c_str(), repro.c_str());
        break;
    }
    if (verbose && res.outcome != Outcome::kFail)
        std::fprintf(stderr, "ok [%s]: %s\n",
                     res.outcome == Outcome::kIdentical ? "identical"
                                                        : "loud",
                     repro.c_str());
}

int
runCampaign(bool full, bool verbose)
{
    const std::string root =
        (fs::temp_directory_path() /
         ("ich-torture-" + std::to_string(::getpid())))
            .string();
    fs::remove_all(root);
    fs::create_directories(root);

    std::printf("torture_crashpoints: %s campaign (root %s)\n",
                full ? "full" : "quick", root.c_str());

    // Fault-free goldens and crash-point discovery.
    PointMap colstore_golden = colstoreGolden();
    const std::string resume_golden = [&] {
        std::string dir = root + "/golden-resume";
        fs::create_directories(dir);
        std::string json = runResumeSweep(dir);
        fs::remove_all(dir);
        return json;
    }();
    exp::RunnerOptions serial;
    serial.jobs = 1;
    const std::string shard_golden =
        exp::jsonReport(exp::SweepRunner(serial).run(shardSpec()), true);

    CountMap colstore_counts =
        countVictim("colstore", root + "/count-colstore", false);
    CountMap resume_fresh_counts =
        countVictim("resume", root + "/count-resume", false);
    CountMap resume_seeded_counts =
        countVictim("resume", root + "/count-resume-seeded", true);

    std::uint64_t dropped = 0;
    std::vector<Cycle> file_cycles =
        buildFileCycles(colstore_counts, resume_fresh_counts,
                        resume_seeded_counts, full, dropped);
    std::vector<ShardCycle> shard_cycles = buildShardCycles();

    std::size_t planned = file_cycles.size() + shard_cycles.size();
    std::printf("torture: %zu fault points planned (%zu file, %zu "
                "shard)%s\n",
                planned, file_cycles.size(), shard_cycles.size(),
                full ? "" : " — quick mode");
    if (dropped > 0)
        std::printf("torture: quick mode capped occurrence sweeps: %" PRIu64
                    " cycles skipped (run --full or ICH_TORTURE_FULL=1 "
                    "for every occurrence)\n",
                    dropped);

    Tally tally;
    const std::string cdir = root + "/cycle";
    for (const Cycle &c : file_cycles) {
        CycleResult res;
        std::string repro;
        if (c.workload == "colstore") {
            res = runColstoreCycle(c.plan, cdir, colstore_golden);
            repro = "ICH_FAULT_PLAN='" + c.plan + "' " + gSelfExe +
                    " --victim colstore --dir <dir>";
        } else {
            bool seeded = c.workload == "resume-seeded";
            res = runResumeCycle(c.plan, cdir, seeded, resume_golden);
            repro = "ICH_FAULT_PLAN='" + c.plan + "' " + gSelfExe +
                    " --victim resume --dir <dir>" +
                    (seeded ? "  # pre-seed: run once fault-free, trim "
                              "store to 2 points"
                            : "");
        }
        reportCycle(tally, res, repro, verbose);
    }
    for (const ShardCycle &sc : shard_cycles) {
        CycleResult res = runShardCycle(sc, cdir, shard_golden);
        std::string repro = gSelfExe + " --shard-cycle '" + sc.plan +
                            "'";
        if (sc.stallMs > 0)
            repro += " --stall " + std::to_string(sc.stallMs);
        reportCycle(tally, res, repro, verbose);
    }

    std::printf(
        "torture: %zu fault points exercised — %zu recovered "
        "bit-identically, %zu loud aborts (then recomputed), %zu "
        "invariant violations\n",
        tally.total, tally.identical, tally.loud,
        tally.failures.size());

    int rc = 0;
    if (!tally.failures.empty()) {
        std::fprintf(stderr, "\n%zu failing cycle(s):\n",
                     tally.failures.size());
        for (const std::string &f : tally.failures)
            std::fprintf(stderr, "  %s\n", f.c_str());
        rc = 1;
    }
    if (tally.total < 100) {
        std::fprintf(stderr,
                     "torture: only %zu fault points enumerated "
                     "(>= 100 required) — a victim workload shrank?\n",
                     tally.total);
        rc = 1;
    }
    if (rc == 0)
        fs::remove_all(root);
    else
        std::fprintf(stderr, "torture: artifacts kept in %s\n",
                     root.c_str());
    return rc;
}

} // namespace
} // namespace ich

int
main(int argc, char **argv)
{
    using namespace ich;
    gSelfExe = shard::selfExecutablePath();

    // Worker re-exec dispatch (the shard cycles fork/exec this binary).
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--shard-worker") {
            exp::CliOptions cli;
            int rc = exp::harnessSetup(argc, argv, tortureRegistry(),
                                       cli);
            return rc >= 0 ? rc : 1;
        }
    }

    std::string victim, dir, shard_cycle;
    int stall_ms = 0;
    bool full = std::getenv("ICH_TORTURE_FULL") != nullptr;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--victim")
            victim = next();
        else if (arg == "--dir")
            dir = next();
        else if (arg == "--shard-cycle")
            shard_cycle = next();
        else if (arg == "--stall")
            stall_ms = std::atoi(next().c_str());
        else if (arg == "--full")
            full = true;
        else if (arg == "--quick")
            full = false;
        else if (arg == "--verbose")
            verbose = true;
        else {
            std::fprintf(stderr,
                         "usage: torture_crashpoints [--quick|--full] "
                         "[--verbose]\n"
                         "       torture_crashpoints --victim "
                         "colstore|resume --dir DIR\n"
                         "       torture_crashpoints --shard-cycle "
                         "SPEC [--stall MS]\n");
            return 2;
        }
    }

    if (!victim.empty()) {
        if (dir.empty()) {
            std::fprintf(stderr, "--victim needs --dir\n");
            return 2;
        }
        try {
            fault::armFromEnv();
            if (victim == "colstore")
                return runVictimColstore(dir);
            if (victim == "resume")
                return runVictimResume(dir);
            std::fprintf(stderr, "unknown victim '%s'\n",
                         victim.c_str());
            return 2;
        } catch (const std::exception &e) {
            // A loud abort: the injected failure surfaced as an
            // exception instead of being masked.
            std::fprintf(stderr, "victim aborted: %s\n", e.what());
            return 1;
        }
    }

    if (!shard_cycle.empty()) {
        exp::RunnerOptions serial;
        serial.jobs = 1;
        std::string golden =
            exp::jsonReport(exp::SweepRunner(serial).run(shardSpec()),
                            true);
        ShardCycle sc;
        sc.plan = shard_cycle;
        sc.stallMs = stall_ms;
        std::string cdir =
            (std::filesystem::temp_directory_path() /
             ("ich-torture-cycle-" + std::to_string(::getpid())))
                .string();
        CycleResult res = runShardCycle(sc, cdir, golden);
        std::filesystem::remove_all(cdir);
        if (res.outcome == Outcome::kFail) {
            std::fprintf(stderr, "FAIL: %s\n", res.detail.c_str());
            return 1;
        }
        std::printf("ok: shard cycle recovered byte-identically\n");
        return 0;
    }

    return runCampaign(full, verbose);
}
