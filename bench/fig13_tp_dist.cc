/**
 * @file
 * Figure 13 reproduction: distribution of the receiver's throttling-
 * period measurement for each of the four levels L1-L4 in a low-noise
 * system — the ranges must not overlap (>2K TSC cycles apart).
 */

#include <cstdio>

#include "bench_util.hh"
#include "channels/thread_channel.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace ich;

int
main()
{
    bench::banner("Figure 13",
                  "receiver TP distribution per level, low noise");

    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 5;
    // Low-noise client system: <1000 events/s (§6.3).
    cfg.noise.interruptRatePerSec = 500.0;
    cfg.noise.contextSwitchRatePerSec = 100.0;
    IccThreadCovert ch(cfg);

    constexpr int kPerLevel = 100;
    std::vector<int> symbols;
    for (int r = 0; r < kPerLevel; ++r)
        for (int s = 0; s < kNumSymbols; ++s)
            symbols.push_back(s);
    std::vector<double> tp = ch.runSymbols(symbols, /*with_noise=*/true);

    std::array<Summary, kNumSymbols> per_level;
    for (std::size_t i = 0; i < symbols.size(); ++i)
        per_level[symbols[i]].add(tp[i]);

    double tsc_ghz = cfg.chip.tscGhz;
    Table t({"level", "symbol", "mean_us", "stddev_us", "p1_us", "p99_us",
             "mean_kcycles"});
    for (int s = 0; s < kNumSymbols; ++s) {
        const Summary &sum = per_level[s];
        t.addRow({"L" + std::to_string(4 - s),
                  std::string(s & 2 ? "1" : "0") + (s & 1 ? "1" : "0"),
                  Table::fmt(sum.mean(), 3), Table::fmt(sum.stddev(), 3),
                  Table::fmt(sum.quantile(0.01), 3),
                  Table::fmt(sum.quantile(0.99), 3),
                  Table::fmt(sum.mean() * tsc_ghz, 1)});
    }
    std::printf("%s\n", t.toString().c_str());

    // Overlap check between adjacent levels (sorted by mean).
    std::vector<int> order = {3, 2, 1, 0}; // increasing TP for thread ch.
    bool overlap = false;
    double min_gap_cycles = 1e12;
    for (std::size_t i = 1; i < order.size(); ++i) {
        double hi_of_lo = per_level[order[i - 1]].quantile(0.999);
        double lo_of_hi = per_level[order[i]].quantile(0.001);
        double gap_cycles = (lo_of_hi - hi_of_lo) * tsc_ghz * 1000.0;
        min_gap_cycles = std::min(min_gap_cycles, gap_cycles);
        if (lo_of_hi <= hi_of_lo)
            overlap = true;
    }
    std::printf("ranges overlap: %s; min inter-range gap: %.0f TSC "
                "cycles (paper: >2K)\n",
                overlap ? "YES (unexpected)" : "no", min_gap_cycles);

    // Print a compact histogram across all levels (cycles x1000).
    Histogram h(0.0, 40.0, 80);
    for (std::size_t i = 0; i < tp.size(); ++i)
        h.add(tp[i] * tsc_ghz); // kcycles
    std::printf("\nTP histogram (kcycles, count, density):\n%s",
                h.toString().c_str());
    return 0;
}
