/**
 * @file
 * Figure 11 reproduction: normalized IDQ_UOPS_NOT_DELIVERED during
 * throttled vs. unthrottled loop iterations — the evidence that the core
 * blocks the front-end→back-end interface 3 of every 4 cycles (Key
 * Conclusion 5), not a 4× clock reduction.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "cpu/perf_counters.hh"

using namespace ich;

int
main()
{
    bench::banner("Figure 11",
                  "undelivered IDQ slots, throttled vs unthrottled");

    ChipConfig cfg = bench::pinned(presets::cannonLake(), 1.4);
    cfg.pmu.vr.commandJitter = 0;
    Simulation sim(cfg, 1);
    HwThread &thr = sim.chip().core(0).thread(0);

    // AVX2 loop long enough to span the throttled prefix and a long
    // unthrottled tail; counters sampled per chunk of iterations.
    Program p;
    p.loopChunked(InstClass::k512Heavy, 4000, 10, /*tag=*/0, 100);
    thr.setProgram(std::move(p));

    // Sample counters at every chunk record by polling cumulative values.
    struct Sample {
        Time time;
        std::uint64_t clk;
        std::uint64_t idq;
    };
    std::vector<Sample> samples;
    // Poll on a fine grid (cheap: analytic counters).
    for (double us = 0.0; us < 120.0; us += 0.2) {
        sim.eq().schedule(fromMicroseconds(us), [&] {
            samples.push_back({sim.eq().now(),
                               thr.counters().clkUnhalted(),
                               thr.counters().idqUopsNotDelivered()});
        });
    }
    thr.start();
    sim.run(fromMicroseconds(150));

    Histogram throttled(0.0, 1.0, 20);
    Histogram unthrottled(0.0, 1.0, 20);
    for (std::size_t i = 1; i < samples.size(); ++i) {
        auto dclk = samples[i].clk - samples[i - 1].clk;
        auto didq = samples[i].idq - samples[i - 1].idq;
        if (dclk == 0)
            continue;
        double norm = PerfCounters::normalizedNotDelivered(didq, dclk);
        if (norm > 0.4)
            throttled.add(norm);
        else
            unthrottled.add(norm);
    }

    std::printf("throttled iterations (normalized undelivered "
                "fraction):\n%s\n",
                throttled.toString().c_str());
    std::printf("unthrottled iterations:\n%s\n",
                unthrottled.toString().c_str());

    Table t({"iteration kind", "samples", "modal undelivered fraction"});
    t.addRow({"throttled", std::to_string(throttled.total()), "~0.75"});
    t.addRow({"unthrottled", std::to_string(unthrottled.total()),
              "~0.00"});
    std::printf("%s", t.toString().c_str());
    std::printf("\nexpected: throttled mass near 0.75 (1-of-4 delivery "
                "cycles), unthrottled near 0.\n");
    return 0;
}
