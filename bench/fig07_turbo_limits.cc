/**
 * @file
 * Figure 7 reproduction: voltage/current limit protection at Turbo.
 *
 * (a) Projected Vcc and Icc for non-AVX vs. AVX2 at two Turbo
 *     frequencies on the desktop (i7-9700K) and mobile (i3-8121U)
 *     parts, flagged against Vccmax/Iccmax (projections computed with
 *     limit enforcement disabled — the paper's green-bordered bars).
 * (b) Time series on the mobile part across Non-AVX → AVX2 → AVX512
 *     phases at max Turbo: frequency steps down to keep Icc within
 *     29 A while the junction temperature stays far below Tjmax.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "measure/daq.hh"
#include "pmu/limits.hh"

using namespace ich;

namespace
{

std::vector<CoreActivity>
activity(const ChipConfig &cfg, int n, InstClass cls)
{
    std::vector<CoreActivity> act(cfg.numCores);
    for (int i = 0; i < n; ++i) {
        act[i].active = true;
        act[i].cdynNf = cfg.core.cdynBaseNf + traits(cls).deltaCdynNf;
        act[i].gbLevel = traits(cls).guardbandLevel;
    }
    return act;
}

void
projectRow(Table &t, const char *system, const ChipConfig &cfg,
           int cores, double freq, InstClass cls, const char *label)
{
    GuardbandModel gb(LoadLine(cfg.pmu.rllOhm), cfg.pmu.vf);
    ChipPowerModel pm(gb, cfg.pmu.leakagePerCoreAmps, cfg.numCores);
    auto act = activity(cfg, cores, cls);
    double v = pm.vTargetVolts(freq, act);
    double i = pm.iccAmps(freq, v, act);
    bool v_viol = v > cfg.pmu.limits.vccMaxVolts;
    bool i_viol = i > cfg.pmu.limits.iccMaxAmps;
    t.addRow({system, label, Table::fmt(freq, 1), Table::fmt(v, 3),
              Table::fmt(cfg.pmu.limits.vccMaxVolts, 2),
              v_viol ? "VIOLATION" : "ok", Table::fmt(i, 1),
              Table::fmt(cfg.pmu.limits.iccMaxAmps, 0),
              i_viol ? "VIOLATION" : "ok"});
}

} // namespace

int
main()
{
    bench::banner("Figure 7", "Vccmax/Iccmax limit protection at Turbo");

    // ------------------------------ (a) -------------------------------
    std::printf("(a) projected operating points (limits disabled, as the "
                "paper's projected bars)\n");
    Table ta({"system", "workload", "GHz", "Vcc_V", "Vccmax", "V-check",
              "Icc_A", "Iccmax", "I-check"});
    ChipConfig desk = presets::coffeeLake();
    projectRow(ta, "desktop i7-9700K", desk, 1, 4.9,
               InstClass::kScalar64, "Non-AVX");
    projectRow(ta, "desktop i7-9700K", desk, 1, 4.9,
               InstClass::k256Heavy, "AVX2");
    projectRow(ta, "desktop i7-9700K", desk, 1, 4.8,
               InstClass::k256Heavy, "AVX2");
    ChipConfig mob = presets::cannonLake();
    projectRow(ta, "mobile i3-8121U", mob, 2, 3.1, InstClass::kScalar64,
               "Non-AVX");
    projectRow(ta, "mobile i3-8121U", mob, 2, 3.1, InstClass::k256Heavy,
               "AVX2");
    projectRow(ta, "mobile i3-8121U", mob, 2, 2.2, InstClass::k256Heavy,
               "AVX2");
    std::printf("%s\n", ta.toString().c_str());
    std::printf("expected: desktop AVX2@4.9 violates Vccmax only; mobile "
                "AVX2@3.1 violates Iccmax only.\n\n");

    // ------------------------------ (b) -------------------------------
    std::printf("(b) mobile part at performance governor: Non-AVX -> "
                "AVX2 -> AVX512 phases\n");
    ChipConfig cfg = presets::cannonLake();
    cfg.pmu.governor.policy = GovernorPolicy::kPerformance;
    Simulation sim(cfg, 1);
    Chip &chip = sim.chip();

    auto phase = [&](Program &p, InstClass cls, double ms, double f) {
        double k_us = bench::nominalUs(makeKernel(cls, 1000, 100), f);
        int n = static_cast<int>(ms * 1000.0 / k_us);
        for (int i = 0; i < n; ++i)
            p.loop(cls, 1000, 100);
    };
    for (int c = 0; c < 2; ++c) {
        Program p;
        phase(p, InstClass::kScalar64, 4.0, 3.2);
        phase(p, InstClass::k256Heavy, 4.0, 2.6);
        phase(p, InstClass::k512Heavy, 4.0, 1.8);
        chip.core(c).thread(0).setProgram(std::move(p));
    }
    Daq daq(sim.chip().ticker(), fromMicroseconds(100));
    daq.addChannel("freq_GHz", [&] { return chip.freqGhz(); });
    daq.addChannel("vcc_V", [&] { return chip.vccVolts(); });
    daq.addChannel("icc_A", [&] { return chip.iccAmps(); });
    daq.addChannel("tj_C", [&] { return chip.tjCelsius(); });
    daq.start(fromMilliseconds(13));
    chip.core(0).thread(0).start();
    chip.core(1).thread(0).start();
    sim.eq().runUntil(fromMilliseconds(13));

    Table tb({"t_ms", "phase", "freq_GHz", "Vcc_V", "Icc_A", "Tj_C"});
    struct Pt {
        double ms;
        const char *phase;
    };
    for (const Pt &pt : {Pt{2.0, "Non-AVX"}, Pt{6.0, "AVX2"},
                         Pt{11.0, "AVX512"}}) {
        Time t = fromMilliseconds(pt.ms);
        tb.addRow({Table::fmt(pt.ms, 1), pt.phase,
                   Table::fmt(daq.trace("freq_GHz").valueAt(t), 2),
                   Table::fmt(daq.trace("vcc_V").valueAt(t), 3),
                   Table::fmt(daq.trace("icc_A").valueAt(t), 1),
                   Table::fmt(daq.trace("tj_C").valueAt(t), 1)});
    }
    std::printf("%s", tb.toString().c_str());
    std::printf("Icc max over run: %.1f A (limit 29 A); Tj max: %.1f C "
                "(Tjmax 100 C)\n",
                daq.trace("icc_A").maxValue(),
                daq.trace("tj_C").maxValue());
    std::printf("\nKey Conclusion 2: frequency steps are current/voltage-"
                "limit protection,\nnot thermal (Tj stays near ambient+"
                "20C, far below Tjmax).\n");
    return 0;
}
