/**
 * @file
 * Figure 10 reproduction: multi-level throttling on Cannon Lake.
 *
 * (a) Throttling period per instruction class at 1 / 1.2 / 1.4 GHz on
 *     one and two cores.
 * (b) Throttling period of a 512b_Heavy loop preceded by each class at
 *     1.4 GHz — the five levels L1..L5.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

using namespace ich;

int
main()
{
    bench::banner("Figure 10", "multi-level throttling periods");

    const std::vector<double> freqs = {1.0, 1.2, 1.4};

    std::printf("(a) TP (us) per class x frequency x active cores\n");
    Table ta({"class", "1GHz/1c", "1.2GHz/1c", "1.4GHz/1c", "1GHz/2c",
              "1.2GHz/2c", "1.4GHz/2c"});
    for (auto cls : kAllInstClasses) {
        std::vector<std::string> row = {toString(cls)};
        for (int cores : {1, 2}) {
            for (double f : freqs) {
                ChipConfig cfg =
                    bench::pinned(presets::cannonLake(), f);
                cfg.pmu.vr.commandJitter = 0;
                row.push_back(Table::fmt(
                    bench::throttlePeriodUs(cfg, cls, 400, 1, cores),
                    2));
            }
        }
        // Reorder: freq-major within core count already matches header.
        ta.addRow(row);
    }
    std::printf("%s", ta.toString().c_str());
    std::printf("expected shape: TP grows with class intensity, with "
                "frequency, and with core count.\n\n");

    std::printf("(b) TP of a 512b_Heavy loop preceded by each class "
                "(1.4 GHz, 1 core)\n");
    ChipConfig cfg = bench::pinned(presets::cannonLake(), 1.4);
    cfg.pmu.vr.commandJitter = 0;
    Table tb({"preceding class", "512bH probe us", "guardband level"});
    for (auto prelude : kAllInstClasses) {
        Simulation sim(cfg, 1);
        HwThread &thr = sim.chip().core(0).thread(0);
        Program p;
        p.loop(prelude, 400, 100);
        p.mark(0);
        p.loop(InstClass::k512Heavy, 100, 100);
        p.mark(1);
        thr.setProgram(std::move(p));
        thr.start();
        sim.run();
        const auto &r = thr.records();
        tb.addRow({toString(prelude),
                   Table::fmt(toMicroseconds(r.at(1).time - r.at(0).time),
                              2),
                   "L" + std::to_string(
                             5 - traits(prelude).guardbandLevel)});
    }
    std::printf("%s", tb.toString().c_str());
    std::printf("expected shape: probe TP decreases as the preceding "
                "class's intensity rises;\nseven classes collapse onto "
                "five distinct levels (Key Conclusion 4).\n");
    return 0;
}
