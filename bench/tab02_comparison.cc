/**
 * @file
 * Table 2 reproduction: comparison to state-of-the-art covert channels
 * exploiting throttling effects of current-management mechanisms, with
 * the bandwidth column measured on this implementation.
 */

#include <cstdio>

#include "baselines/netspectre.hh"
#include "baselines/turbocc.hh"
#include "bench_util.hh"
#include "channels/cores_channel.hh"
#include "common/table.hh"

using namespace ich;

int
main()
{
    bench::banner("Table 2", "comparison to NetSpectre and TurboCC");

    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 123;

    NetSpectre ns(cfg);
    double ns_bps = ns.ratedThroughputBps();

    TurboCCConfig tcfg;
    tcfg.chip = presets::cannonLake();
    TurboCC tc(tcfg);
    double tc_bps = tc.ratedThroughputBps();

    IccCoresCovert ich(cfg);
    double ich_bps = ich.ratedThroughputBps();

    Table t({"Proposal", "SameCore", "CrossSMT", "CrossCore", "BW",
             "User/Kernel", "Mechanism", "Turbo-indep", "RootCause",
             "Mitigations"});
    t.addRow({"NetSpectre [91]", "yes", "no", "no",
              Table::fmt(ns_bps / 1000.0, 1) + " kb/s", "U",
              "single-level thread throttling", "yes", "no", "no"});
    t.addRow({"TurboCC [57]", "no", "no", "yes",
              Table::fmt(tc_bps, 0) + " b/s", "K",
              "turbo frequency change", "no", "no", "no"});
    t.addRow({"IChannels", "yes", "yes", "yes",
              Table::fmt(ich_bps / 1000.0, 1) + " kb/s", "U",
              "multi-level thread/SMT/core (VR) throttling", "yes",
              "yes", "yes"});
    std::printf("%s\n", t.toString().c_str());
    std::printf("paper row values: NetSpectre 1.5 kb/s, TurboCC 61 b/s, "
                "IChannels 3 kb/s.\n");
    return 0;
}
