/**
 * @file
 * google-benchmark microbenchmarks of the simulator core: event-queue
 * throughput, thread-execution engine, covert-channel transaction cost.
 * These guard the simulator's performance (a covert-channel evaluation
 * simulates hundreds of milliseconds of chip time).
 */

#include <benchmark/benchmark.h>

#include "channels/thread_channel.hh"
#include "chip/presets.hh"
#include "chip/simulation.hh"
#include "common/event_queue.hh"

namespace
{

using namespace ich;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Time>(i + 1), [&sink] { ++sink; });
        eq.runToCompletion();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_LoopKernelExecution(benchmark::State &state)
{
    for (auto _ : state) {
        ChipConfig cfg = presets::cannonLake();
        cfg.pmu.secureMode = true;
        Simulation sim(cfg);
        HwThread &thr = sim.chip().core(0).thread(0);
        Program p;
        p.loop(InstClass::k256Heavy, 10000, 100);
        thr.setProgram(std::move(p));
        thr.start();
        sim.run();
        benchmark::DoNotOptimize(thr.counters().clkUnhalted());
    }
}
BENCHMARK(BM_LoopKernelExecution);

void
BM_ThrottledTransaction(benchmark::State &state)
{
    for (auto _ : state) {
        ChipConfig cfg = presets::cannonLake();
        cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
        cfg.pmu.governor.userspaceGhz = 1.4;
        Simulation sim(cfg);
        HwThread &thr = sim.chip().core(0).thread(0);
        Program p;
        p.loop(InstClass::k512Heavy, 400, 100);
        p.mark(0);
        p.loop(InstClass::k512Heavy, 100, 100);
        p.mark(1);
        thr.setProgram(std::move(p));
        thr.start();
        sim.run();
        benchmark::DoNotOptimize(thr.records().size());
    }
}
BENCHMARK(BM_ThrottledTransaction);

void
BM_CovertChannelBytePerSecond(benchmark::State &state)
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    IccThreadCovert ch(cfg);
    ch.calibration(); // exclude calibration from the loop
    BitVec byte = {1, 0, 1, 1, 0, 0, 1, 0};
    for (auto _ : state) {
        auto res = ch.transmit(byte);
        benchmark::DoNotOptimize(res.ber);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_CovertChannelBytePerSecond);

} // namespace

BENCHMARK_MAIN();
