/**
 * @file
 * Perf benchmark for the discrete-event kernel — the hot path under
 * every covert-channel trial and sweep point.
 *
 * Three workloads, reported as one sweep (scenario "BENCH_kernel", so
 * `--json --out DIR` writes DIR/BENCH_kernel.json):
 *
 *  - churn       self-rescheduling timer chains: pure schedule/fire
 *                throughput. Also replays the identical workload on an
 *                embedded copy of the pre-refactor queue
 *                (shared_ptr<Entry> + std::function + unordered_map) and
 *                reports the speedup ratio — the acceptance gate for the
 *                slab/4-ary-heap rewrite is speedup >= 2.
 *  - cancel_mix  schedule/deschedule-heavy traffic (timeout-style):
 *                half of each round's events are cancelled before firing.
 *  - sim_run     full Simulation::run of a preset chip with PHI loops on
 *                every core — end-to-end events/sec including the
 *                PMU/PDN machinery.
 *
 * A third scenario, "BENCH_record" (written to DIR/BENCH_record.json),
 * measures analytic chunk-record batching in HwThread against the
 * per-chunk event-driven path (kept in-tree behind
 * HwThread::setLegacyChunkEvents as the measured baseline, the same
 * embedded-baseline pattern speedup_vs_legacy uses for the queue):
 *
 *  - record_batch  uncontended chunked scalar loops on every core — the
 *                  pure batching effect. Both modes run the identical
 *                  simulation and the records, counters and end time
 *                  are asserted byte-identical; reports
 *                  record_speedup_vs_per_chunk (acceptance gate >= 1.3
 *                  in CI, >= 2 locally).
 *  - sim_record    the sim_run workload (PHI loops, OS noise, the full
 *                  PMU/PDN machinery) both ways — byte-identity across
 *                  throttle transitions and stalls, plus
 *                  work_events_per_sec: per-chunk-baseline events
 *                  retired per analytic-wall second, the successor
 *                  metric to sim_run events/s now that the boundary
 *                  events themselves are gone.
 *
 * A second scenario, "BENCH_tick" (written to DIR/BENCH_tick.json),
 * measures the rate-grouped Ticker against the pre-refactor
 * one-event-per-component pattern on periodic-heavy workloads:
 *
 *  - tick_groups synthetic clocked members spread over a few rate
 *                groups, driven once by the Ticker and once by
 *                per-member self-rescheduling event chains; reports
 *                events_per_simulated_ms for both and
 *                speedup_vs_per_event (the acceptance gate is >= 1.3).
 *  - sim_tick    full chip with every periodic subsystem enabled (RAPL
 *                window, ondemand governor evaluation, thermal
 *                sampling) plus a bank of 1 µs observers, ticker-driven
 *                vs per-event self-arming — the sim_run-style view of
 *                the same coalescing.
 *
 * Event counts scale down via ICH_PERF_EVENTS / ICH_PERF_TICKERS /
 * ICH_PERF_TICK_MS for CI smoke runs.
 * Workers are forced to 1: wall-clock metrics must not contend.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.hh"
#include "common/ticker.hh"
#include "exp/exp.hh"
#include "os/noise.hh"

using namespace ich;

namespace
{

// ------------------------------------------------------------------ legacy
// Verbatim-in-spirit copy of the pre-refactor EventQueue (PR 1 state):
// one shared_ptr allocation + one std::function (usually allocating) +
// one unordered_map insert per event. Kept here, not in src/, purely as
// the baseline the churn/cancel workloads are measured against.
namespace legacy
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    Time now() const { return now_; }

    EventId
    schedule(Time when, Callback cb, int priority = 0)
    {
        auto entry = std::make_shared<Entry>();
        entry->when = when;
        entry->priority = priority;
        entry->id = nextId_++;
        entry->cb = std::move(cb);
        byId_[entry->id] = entry;
        queue_.push(entry);
        ++liveEvents_;
        return entry->id;
    }

    EventId
    scheduleIn(Time delay, Callback cb, int priority = 0)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    void
    deschedule(EventId id)
    {
        auto it = byId_.find(id);
        if (it == byId_.end())
            return;
        if (auto entry = it->second.lock()) {
            if (!entry->cancelled) {
                entry->cancelled = true;
                --liveEvents_;
            }
        }
        byId_.erase(it);
    }

    bool empty() const { return liveEvents_ == 0; }
    std::uint64_t executedEvents() const { return executed_; }

    bool
    runOne()
    {
        while (!queue_.empty()) {
            auto entry = queue_.top();
            queue_.pop();
            if (entry->cancelled)
                continue;
            byId_.erase(entry->id);
            --liveEvents_;
            now_ = entry->when;
            ++executed_;
            entry->cb();
            return true;
        }
        return false;
    }

    void
    runToCompletion()
    {
        while (runOne()) {
        }
    }

  private:
    struct Entry {
        Time when;
        int priority;
        EventId id;
        Callback cb;
        bool cancelled = false;
    };

    struct EntryOrder {
        bool
        operator()(const std::shared_ptr<Entry> &a,
                   const std::shared_ptr<Entry> &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->id > b->id;
        }
    };

    Time now_ = 0;
    EventId nextId_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<std::shared_ptr<Entry>,
                        std::vector<std::shared_ptr<Entry>>,
                        EntryOrder> queue_;
    std::unordered_map<EventId, std::weak_ptr<Entry>> byId_;
};

} // namespace legacy

// --------------------------------------------------------------- workloads

using bench::envCount;
using bench::secondsSince;

/**
 * Self-rescheduling timer chains: @p chains pending events ping forward
 * with LCG-derived deltas until the fire budget is spent. The callback
 * is a 16-byte trivially-copyable functor — the same size class as the
 * simulator's real `[this, scalar]` captures, so neither queue is
 * penalized on callback storage; the measured difference is the
 * schedule/fire machinery itself. Returns events/sec.
 */
template <class Queue>
struct ChurnBench {
    Queue eq;
    std::uint64_t fired = 0;
    std::uint64_t total;
    std::vector<std::uint64_t> lcg;

    struct Fire {
        ChurnBench *b;
        unsigned c;
        void operator()() const
        {
            ++b->fired;
            b->arm(c);
        }
    };

    void
    arm(unsigned c)
    {
        if (fired >= total)
            return;
        std::uint64_t &l = lcg[c];
        l = l * 6364136223846793005ULL + 1442695040888963407ULL;
        eq.scheduleIn(1 + (l >> 33) % 1000, Fire{this, c});
    }
};

template <class Queue>
double
churnThroughput(std::uint64_t total_events, unsigned chains,
                std::uint64_t seed)
{
    ChurnBench<Queue> b;
    b.total = total_events;
    for (unsigned c = 0; c < chains; ++c)
        b.lcg.push_back(seed + c);
    for (unsigned c = 0; c < chains; ++c)
        b.arm(c);
    auto t0 = std::chrono::steady_clock::now();
    while (b.eq.runOne()) {
    }
    double dt = secondsSince(t0);
    return static_cast<double>(b.fired) / dt;
}

/**
 * Timeout-style traffic: rounds of @p batch scheduled events of which
 * every second one is descheduled before the round runs. Returns
 * (schedules + deschedules + fires) per second.
 */
template <class Queue>
double
cancelMixThroughput(std::uint64_t total_ops, unsigned batch,
                    std::uint64_t seed)
{
    Queue eq;
    std::uint64_t ops = 0;
    std::uint64_t lcg = seed;
    std::vector<typename Queue::EventId> ids;
    ids.reserve(batch);
    auto t0 = std::chrono::steady_clock::now();
    while (ops < total_ops) {
        ids.clear();
        for (unsigned i = 0; i < batch; ++i) {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            Time delta = 1 + (lcg >> 33) % 500;
            ids.push_back(eq.scheduleIn(delta, [] {}, i % 3));
            ++ops;
        }
        for (unsigned i = 0; i < batch; i += 2) {
            eq.deschedule(ids[i]);
            ++ops;
        }
        while (eq.runOne())
            ++ops;
    }
    return static_cast<double>(ops) / secondsSince(t0);
}

/**
 * Full chip simulation on the paper preset: chunked PHI loops on every
 * core (one boundary event per 10 iterations) under heavy OS noise, so
 * the run exercises the whole event mix — thread boundaries, stall
 * reschedules, PMU decay/licensing, VR transitions.
 */
exp::MetricMap
simRunMetrics(std::uint64_t iters, std::uint64_t seed)
{
    ChipConfig cfg = bench::pinned(presets::cannonLake(), 3.0);
    Simulation sim(cfg, seed);
    int cores = sim.chip().numCores();
    for (int c = 0; c < cores; ++c) {
        Program p;
        p.mark(0);
        p.loopChunked(InstClass::k512Heavy, iters,
                      /*record_every=*/10, /*tag=*/1);
        p.mark(2);
        sim.chip().core(c).thread(0).setProgram(std::move(p));
    }
    NoiseConfig ncfg;
    ncfg.interruptRatePerSec = 50000.0;
    ncfg.contextSwitchRatePerSec = 5000.0;
    NoiseInjector noise(sim.chip(), sim.rng(), ncfg, /*core=*/0,
                        /*smt=*/0);
    noise.start(fromSeconds(1.0));
    for (int c = 0; c < cores; ++c)
        sim.chip().core(c).thread(0).start();
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    double dt = secondsSince(t0);
    exp::MetricMap m;
    m["sim_events"] = static_cast<double>(sim.eq().executedEvents());
    m["sim_events_per_sec"] =
        static_cast<double>(sim.eq().executedEvents()) / dt;
    m["sim_wall_ms"] = dt * 1e3;
    return m;
}

// Adapter so churn/cancel templates see the same surface on both queues.
struct NewQueue : EventQueue {
    using EventId = ich::EventId;
};

// ----------------------------------------------------------- BENCH_record

/** One BENCH_record simulation run (analytic or per-chunk baseline). */
struct RecordRun {
    double wallSec = 0.0;
    std::uint64_t events = 0;
    Time endTime = 0;
    std::vector<Record> records;         ///< all threads, concatenated
    std::vector<std::uint64_t> counters; ///< clk/inst/idq per thread
};

RecordRun
recordRun(bool per_chunk, bool noisy, std::uint64_t iters,
          std::uint64_t seed)
{
    ChipConfig cfg = bench::pinned(presets::cannonLake(), 3.0);
    Simulation sim(cfg, seed);
    int cores = sim.chip().numCores();
    for (int c = 0; c < cores; ++c) {
        HwThread &thr = sim.chip().core(c).thread(0);
        thr.setLegacyChunkEvents(per_chunk);
        Program p;
        p.mark(0);
        // PHI loops provoke guardband transitions + throttling in the
        // noisy variant; the clean variant isolates pure batching.
        p.loopChunked(noisy ? InstClass::k512Heavy : InstClass::kScalar64,
                      iters, /*record_every=*/10, /*tag=*/1);
        p.mark(2);
        thr.setProgram(std::move(p));
    }
    std::unique_ptr<NoiseInjector> noise;
    if (noisy) {
        NoiseConfig ncfg;
        ncfg.interruptRatePerSec = 50000.0;
        ncfg.contextSwitchRatePerSec = 5000.0;
        noise = std::make_unique<NoiseInjector>(sim.chip(), sim.rng(),
                                                ncfg, /*core=*/0,
                                                /*smt=*/0);
        noise->start(fromSeconds(1.0));
    }
    for (int c = 0; c < cores; ++c)
        sim.chip().core(c).thread(0).start();
    auto t0 = std::chrono::steady_clock::now();
    RecordRun r;
    r.endTime = sim.run();
    r.wallSec = secondsSince(t0);
    r.events = sim.eq().executedEvents();
    for (int c = 0; c < cores; ++c) {
        const HwThread &thr = sim.chip().core(c).thread(0);
        for (const Record &rec : thr.records())
            r.records.push_back(rec);
        r.counters.push_back(thr.counters().clkUnhalted());
        r.counters.push_back(thr.counters().instRetired());
        r.counters.push_back(thr.counters().idqUopsNotDelivered());
    }
    return r;
}

/** Records are data, not timing: any drift from the per-chunk path is a
 *  correctness bug, so the bench refuses to report a speedup over
 *  non-identical output. */
void
requireIdenticalRuns(const RecordRun &analytic, const RecordRun &chunk)
{
    auto bail = [](const std::string &what) {
        throw std::runtime_error(
            "BENCH_record: analytic batching diverged from the "
            "per-chunk baseline (" + what + ")");
    };
    if (analytic.endTime != chunk.endTime)
        bail("end time " + std::to_string(analytic.endTime) + " vs " +
             std::to_string(chunk.endTime));
    if (analytic.counters != chunk.counters)
        bail("perf counters");
    if (analytic.records.size() != chunk.records.size())
        bail("record count " + std::to_string(analytic.records.size()) +
             " vs " + std::to_string(chunk.records.size()));
    for (std::size_t i = 0; i < analytic.records.size(); ++i) {
        const Record &a = analytic.records[i];
        const Record &b = chunk.records[i];
        if (a.tag != b.tag || a.tsc != b.tsc || a.time != b.time ||
            a.iterationsDone != b.iterationsDone)
            bail("record " + std::to_string(i));
    }
}

exp::MetricMap
recordMetrics(bool noisy, std::uint64_t iters, std::uint64_t seed)
{
    // Interleave repetitions and keep each mode's best wall time — the
    // usual minimum-estimator defense against scheduler noise on shared
    // boxes; identity is asserted on every repetition.
    RecordRun analytic = recordRun(/*per_chunk=*/false, noisy, iters,
                                   seed);
    RecordRun chunk = recordRun(/*per_chunk=*/true, noisy, iters, seed);
    requireIdenticalRuns(analytic, chunk);
    RecordRun analytic2 = recordRun(false, noisy, iters, seed);
    RecordRun chunk2 = recordRun(true, noisy, iters, seed);
    requireIdenticalRuns(analytic2, chunk2);
    analytic.wallSec = std::min(analytic.wallSec, analytic2.wallSec);
    chunk.wallSec = std::min(chunk.wallSec, chunk2.wallSec);

    double sim_ms = toSeconds(analytic.endTime) * 1e3;
    exp::MetricMap m;
    m["records"] = static_cast<double>(analytic.records.size());
    m["sim_events"] = static_cast<double>(analytic.events);
    m["per_chunk_sim_events"] = static_cast<double>(chunk.events);
    m["events_per_simulated_ms"] =
        static_cast<double>(analytic.events) / sim_ms;
    m["per_chunk_events_per_simulated_ms"] =
        static_cast<double>(chunk.events) / sim_ms;
    m["sim_wall_ms"] = analytic.wallSec * 1e3;
    m["record_speedup_vs_per_chunk"] = chunk.wallSec / analytic.wallSec;
    // The simulated work per wall second, priced in the events the
    // per-chunk path needed for it — directly comparable to the
    // pre-batching sim_run events/s trajectory in ROADMAP.md.
    m["work_events_per_sec"] =
        static_cast<double>(chunk.events) / analytic.wallSec;
    return m;
}

// ------------------------------------------------------------- BENCH_tick

/** Synthetic clocked component: a few flops of state math per tick. */
struct SynthTick final : Clocked {
    double acc = 0.0;
    std::uint64_t ticks = 0;
    Time period = 0;

    void
    tick(Time now) override
    {
        acc += static_cast<double>(now & 0xfff) * 1e-6;
        ++ticks;
    }
};

/** Self-rearming chain emulating the pre-Ticker per-component event. */
struct SelfArm {
    EventQueue *eq;
    SynthTick *m;
    Time horizon;
    void
    operator()() const
    {
        m->tick(eq->now());
        Time next = eq->now() + m->period;
        if (next <= horizon)
            eq->scheduleChecked(next, SelfArm{eq, m, horizon});
    }
};

/**
 * K members over four rate groups, simulated to @p horizon twice: once
 * Ticker-driven (one event per group per period), once with per-member
 * self-rescheduling chains (one heap pair per member per period). The
 * member work is identical; the measured difference is the scheduling
 * machinery the Ticker coalesces away.
 */
exp::MetricMap
tickGroupsMetrics(unsigned members, Time horizon)
{
    static constexpr Time kPeriods[] = {
        fromNanoseconds(800), fromNanoseconds(1000),
        fromNanoseconds(1600), fromNanoseconds(2000)};

    std::vector<SynthTick> viaTicker(members);
    std::uint64_t ticker_events = 0;
    std::uint64_t ticker_ticks = 0;
    double ticker_wall = 0.0;
    {
        EventQueue eq;
        Ticker ticker(eq);
        for (unsigned i = 0; i < members; ++i) {
            viaTicker[i].period = kPeriods[i % 4];
            ticker.add(viaTicker[i], TickRate{viaTicker[i].period, 0, 0});
        }
        auto t0 = std::chrono::steady_clock::now();
        eq.runUntil(horizon);
        ticker_wall = secondsSince(t0);
        ticker_events = eq.executedEvents();
        for (const SynthTick &t : viaTicker)
            ticker_ticks += t.ticks;
    }

    std::vector<SynthTick> viaEvents(members);
    std::uint64_t pe_events = 0;
    std::uint64_t pe_ticks = 0;
    double pe_wall = 0.0;
    {
        EventQueue eq;
        for (unsigned i = 0; i < members; ++i) {
            viaEvents[i].period = kPeriods[i % 4];
            eq.scheduleChecked(viaEvents[i].period,
                               SelfArm{&eq, &viaEvents[i], horizon});
        }
        auto t0 = std::chrono::steady_clock::now();
        eq.runUntil(horizon);
        pe_wall = secondsSince(t0);
        pe_events = eq.executedEvents();
        for (const SynthTick &t : viaEvents)
            pe_ticks += t.ticks;
    }

    // The speedup is only meaningful over *identical* work.
    if (ticker_ticks != pe_ticks)
        throw std::runtime_error(
            "BENCH_tick: grouped and per-event runs delivered different "
            "tick counts (" + std::to_string(ticker_ticks) + " vs " +
            std::to_string(pe_ticks) + ")");

    double sim_ms = toSeconds(horizon) * 1e3;
    exp::MetricMap m;
    m["events_per_sec"] =
        static_cast<double>(ticker_events) / ticker_wall;
    m["events_per_simulated_ms"] =
        static_cast<double>(ticker_events) / sim_ms;
    m["per_event_events_per_simulated_ms"] =
        static_cast<double>(pe_events) / sim_ms;
    m["ticks_per_sec"] = static_cast<double>(ticker_ticks) / ticker_wall;
    m["speedup_vs_per_event"] = pe_wall / ticker_wall;
    return m;
}

/** Chip-state observer (volts + frequency), tickable either way. */
struct ChipProbe final : Clocked {
    Chip *chip = nullptr;
    double acc = 0.0;

    void
    tick(Time) override
    {
        acc += chip->vccVolts() + chip->freqGhz();
    }
};

/** Self-rearming observer chain (endless; the run is program-bound). */
struct ProbeArm {
    EventQueue *eq;
    ChipProbe *p;
    Time period;
    void
    operator()() const
    {
        p->tick(eq->now());
        eq->scheduleChecked(eq->now() + period, *this);
    }
};

/**
 * Full chip with every periodic subsystem enabled — RAPL window,
 * ondemand governor evaluation, thermal sampling — plus a bank of 1 µs
 * observers, run to program completion. The simulated trajectory is
 * identical in both modes (observers only read); the wall-clock delta
 * is the periodic-event machinery.
 */
exp::MetricMap
simTickMetrics(std::uint64_t iters, unsigned probes, std::uint64_t seed)
{
    auto makeSim = [&] {
        ChipConfig cfg = bench::pinned(presets::cannonLake(), 3.0);
        cfg.pmu.powerLimit.enabled = true;
        cfg.pmu.powerLimit.evalInterval = fromMicroseconds(200);
        cfg.pmu.governor.evalInterval = fromMicroseconds(50);
        cfg.thermal.sampleInterval = fromMicroseconds(20);
        auto sim = std::make_unique<Simulation>(cfg, seed);
        for (int c = 0; c < sim->chip().coreCount(); ++c) {
            Program p;
            p.loopChunked(InstClass::k512Heavy, iters,
                          /*record_every=*/10, /*tag=*/1);
            sim->chip().core(c).thread(0).setProgram(std::move(p));
            sim->chip().core(c).thread(0).start();
        }
        return sim;
    };
    const Time probe_period = fromMicroseconds(1);

    auto sim_t = makeSim();
    std::vector<ChipProbe> obs_t(probes);
    for (ChipProbe &p : obs_t) {
        p.chip = &sim_t->chip();
        sim_t->chip().ticker().add(p, TickRate{probe_period, 0, 0},
                                   Ticker::Ownership::kTransient);
    }
    auto t0 = std::chrono::steady_clock::now();
    Time end_t = sim_t->run();
    double ticker_wall = secondsSince(t0);
    std::uint64_t ticker_events = sim_t->eq().executedEvents();

    auto sim_p = makeSim();
    std::vector<ChipProbe> obs_p(probes);
    for (ChipProbe &p : obs_p) {
        p.chip = &sim_p->chip();
        sim_p->eq().scheduleChecked(
            probe_period, ProbeArm{&sim_p->eq(), &p, probe_period});
    }
    t0 = std::chrono::steady_clock::now();
    Time end_p = sim_p->run();
    double pe_wall = secondsSince(t0);
    std::uint64_t pe_events = sim_p->eq().executedEvents();

    // Observers must not perturb the simulation: same end time or bust.
    if (end_t != end_p)
        throw std::runtime_error(
            "BENCH_tick: sim_tick grouped and per-event runs ended at "
            "different simulated times (" + std::to_string(end_t) +
            " vs " + std::to_string(end_p) + ")");

    double sim_ms = toSeconds(end_t) * 1e3;
    exp::MetricMap m;
    m["sim_events"] = static_cast<double>(ticker_events);
    m["sim_wall_ms"] = ticker_wall * 1e3;
    m["events_per_sec"] =
        static_cast<double>(ticker_events) / ticker_wall;
    m["events_per_simulated_ms"] =
        static_cast<double>(ticker_events) / sim_ms;
    m["per_event_events_per_simulated_ms"] =
        static_cast<double>(pe_events) / sim_ms;
    m["speedup_vs_per_event"] = pe_wall / ticker_wall;
    return m;
}

/**
 * Fast-forward pump vs fully stepped dispatch over the same PDN-heavy
 * chip (RAPL + governor + thermal periodic mix, observer bank, chunked
 * heavy programs). Both runs go through the Ticker; the only difference
 * is Simulation::setLegacyPdnEvents(). Every rep asserts the two modes
 * are indistinguishable in simulated outcome — end time, executed
 * events, delivered ticks, observer accumulators — so the reported
 * speedup is over bit-identical work by construction.
 */
exp::MetricMap
simFfMetrics(std::uint64_t iters, unsigned probes, std::uint64_t seed)
{
    struct RunOut {
        Time end = 0;
        std::uint64_t events = 0;
        std::uint64_t ticks = 0;
        std::uint64_t ffFires = 0;
        double probeAcc = 0.0;
        double wall = 0.0;
    };
    auto runOnce = [&](bool legacy) {
        ChipConfig cfg = bench::pinned(presets::cannonLake(), 3.0);
        cfg.pmu.powerLimit.enabled = true;
        cfg.pmu.powerLimit.evalInterval = fromMicroseconds(200);
        cfg.pmu.governor.evalInterval = fromMicroseconds(50);
        cfg.thermal.sampleInterval = fromMicroseconds(20);
        Simulation sim(cfg, seed);
        sim.setLegacyPdnEvents(legacy);
        for (int c = 0; c < sim.chip().coreCount(); ++c) {
            Program p;
            p.loopChunked(InstClass::k512Heavy, iters,
                          /*record_every=*/10, /*tag=*/1);
            sim.chip().core(c).thread(0).setProgram(std::move(p));
            sim.chip().core(c).thread(0).start();
        }
        // Staggered phases put every probe in its own rate group: the
        // stepped path pays one heap pop/push per probe per period,
        // which is exactly the fine-grained periodic traffic the pump
        // elides.
        const Time probe_period = fromMicroseconds(1);
        std::vector<ChipProbe> obs(probes);
        for (unsigned i = 0; i < probes; ++i) {
            obs[i].chip = &sim.chip();
            Time phase = probes > 0 ? (probe_period * i) / probes : 0;
            sim.chip().ticker().add(obs[i],
                                    TickRate{probe_period, phase, 0},
                                    Ticker::Ownership::kTransient);
        }
        RunOut out;
        auto t0 = std::chrono::steady_clock::now();
        out.end = sim.run();
        out.wall = secondsSince(t0);
        out.events = sim.eq().executedEvents();
        out.ticks = sim.chip().ticker().ticksDelivered();
        out.ffFires = sim.chip().ticker().ffFires();
        for (const ChipProbe &p : obs)
            out.probeAcc += p.acc;
        for (ChipProbe &p : obs)
            sim.chip().ticker().remove(p);
        return out;
    };

    RunOut ff, stepped;
    ff.wall = stepped.wall = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
        RunOut f = runOnce(/*legacy=*/false);
        RunOut s = runOnce(/*legacy=*/true);
        // Same simulated trajectory or the comparison is meaningless.
        if (f.end != s.end || f.events != s.events ||
            f.ticks != s.ticks || f.probeAcc != s.probeAcc)
            throw std::runtime_error(
                "BENCH_ff: fast-forward and stepped runs diverged "
                "(end " + std::to_string(f.end) + " vs " +
                std::to_string(s.end) + ", events " +
                std::to_string(f.events) + " vs " +
                std::to_string(s.events) + ")");
        if (f.ffFires == 0)
            throw std::runtime_error(
                "BENCH_ff: fast-forward mode never pumped a tick");
        if (s.ffFires != 0)
            throw std::runtime_error(
                "BENCH_ff: stepped oracle run pumped ticks");
        if (f.wall < ff.wall)
            ff = f;
        if (s.wall < stepped.wall)
            stepped = s;
    }

    double sim_ms = toSeconds(ff.end) * 1e3;
    exp::MetricMap m;
    m["sim_events"] = static_cast<double>(ff.events);
    m["sim_wall_ms"] = ff.wall * 1e3;
    m["stepped_wall_ms"] = stepped.wall * 1e3;
    m["events_per_sec"] = static_cast<double>(ff.events) / ff.wall;
    m["events_per_simulated_ms"] =
        static_cast<double>(ff.events) / sim_ms;
    m["ff_fires"] = static_cast<double>(ff.ffFires);
    m["ff_fire_fraction"] =
        static_cast<double>(ff.ffFires) / static_cast<double>(ff.events);
    m["speedup_vs_stepped"] = stepped.wall / ff.wall;
    return m;
}

exp::ScenarioRegistry
buildScenarios()
{
    // Defaults give stable numbers in ~seconds; CI smoke shrinks them.
    const std::uint64_t churn_events =
        envCount("ICH_PERF_EVENTS", 1000000);
    const std::uint64_t mix_ops = envCount("ICH_PERF_EVENTS", 1000000);
    const std::uint64_t sim_iters =
        envCount("ICH_PERF_SIM_ITERS", 20000);
    const unsigned chains = static_cast<unsigned>(
        envCount("ICH_PERF_CHAINS", 256));

    exp::ScenarioRegistry reg;
    exp::ScenarioSpec spec;
    spec.name = "BENCH_kernel";
    spec.description = "event-kernel perf: slab/4-ary-heap queue vs "
                       "legacy shared_ptr/std::function queue";
    spec.axes = {exp::axisLabeled("workload",
                                  {"churn", "cancel_mix", "sim_run"})};
    spec.trials = 3;
    spec.baseSeed = 99;
    spec.run = [=](const exp::TrialContext &ctx) {
        exp::MetricMap m;
        switch (ctx.point.getInt("workload")) {
        case 0: { // churn: the acceptance-gate workload
            double now_eps =
                churnThroughput<NewQueue>(churn_events, chains, ctx.seed);
            double legacy_eps = churnThroughput<legacy::EventQueue>(
                churn_events, chains, ctx.seed);
            m["events_per_sec"] = now_eps;
            m["legacy_events_per_sec"] = legacy_eps;
            m["speedup_vs_legacy"] = now_eps / legacy_eps;
            break;
        }
        case 1: { // cancel_mix
            double now_ops =
                cancelMixThroughput<NewQueue>(mix_ops, 256, ctx.seed);
            double legacy_ops = cancelMixThroughput<legacy::EventQueue>(
                mix_ops, 256, ctx.seed);
            m["events_per_sec"] = now_ops;
            m["legacy_events_per_sec"] = legacy_ops;
            m["speedup_vs_legacy"] = now_ops / legacy_ops;
            break;
        }
        default: // sim_run
            m = simRunMetrics(sim_iters, ctx.seed);
            m["events_per_sec"] = m["sim_events_per_sec"];
            break;
        }
        return m;
    };
    reg.add(std::move(spec));

    // Independent of ICH_PERF_SIM_ITERS: the byte-identity assertion and
    // the committed work_events_per_sec floor both want the full-size
    // run, which costs only tens of milliseconds either way.
    const std::uint64_t record_iters =
        envCount("ICH_PERF_RECORD_ITERS", 200000);

    exp::ScenarioSpec rec;
    rec.name = "BENCH_record";
    rec.description = "analytic chunk-record batching vs the per-chunk "
                      "event-driven boundary path";
    rec.axes = {exp::axisLabeled("workload",
                                 {"record_batch", "sim_record"})};
    rec.trials = 3;
    rec.baseSeed = 1234;
    rec.run = [=](const exp::TrialContext &ctx) {
        return recordMetrics(/*noisy=*/ctx.point.getInt("workload") == 1,
                             record_iters, ctx.seed);
    };
    reg.add(std::move(rec));

    const unsigned tick_members = static_cast<unsigned>(
        envCount("ICH_PERF_TICKERS", 256));
    const Time tick_horizon = fromMilliseconds(static_cast<double>(
        envCount("ICH_PERF_TICK_MS", 20)));
    const std::uint64_t tick_iters =
        envCount("ICH_PERF_SIM_ITERS", 20000);

    exp::ScenarioSpec tick;
    tick.name = "BENCH_tick";
    tick.description = "rate-grouped Ticker vs per-component periodic "
                       "self-rescheduling events";
    tick.axes = {exp::axisLabeled("workload",
                                  {"tick_groups", "sim_tick"})};
    tick.trials = 3;
    tick.baseSeed = 7;
    tick.run = [=](const exp::TrialContext &ctx) {
        if (ctx.point.getInt("workload") == 0)
            return tickGroupsMetrics(tick_members, tick_horizon);
        return simTickMetrics(tick_iters, /*probes=*/64, ctx.seed);
    };
    reg.add(std::move(tick));

    // Deliberately independent of ICH_PERF_SIM_ITERS: the ff-vs-stepped
    // ratio needs a few ms of simulated work to rise above wall-clock
    // noise (full size is still ~tens of ms; same policy as
    // BENCH_record).
    const std::uint64_t ff_iters = envCount("ICH_PERF_FF_ITERS", 20000);
    const unsigned ff_probes = static_cast<unsigned>(
        envCount("ICH_PERF_FF_PROBES", 64));

    exp::ScenarioSpec ff;
    ff.name = "BENCH_ff";
    ff.description = "chip-level fast-forward pump vs fully stepped "
                     "dispatch (bit-identical trajectories)";
    ff.axes = {exp::axisLabeled("workload", {"sim_ff"})};
    ff.trials = 3;
    ff.baseSeed = 11;
    ff.run = [=](const exp::TrialContext &ctx) {
        return simFfMetrics(ff_iters, ff_probes, ctx.seed);
    };
    reg.add(std::move(ff));
    return reg;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ScenarioRegistry reg = buildScenarios();
    exp::CliOptions cli;
    int rc = exp::harnessSetup(argc, argv, reg, cli);
    if (rc >= 0)
        return rc;
    // Wall-clock metrics: never run trials concurrently.
    cli.jobs = 1;

    bench::banner("BENCH_kernel",
                  "event-queue hot-path throughput (new vs legacy)");
    exp::SweepResult res = exp::runAndReport(*reg.find("BENCH_kernel"), cli);

    const auto &churn = res.aggregates.at(0).metrics;
    double speedup = churn.at("speedup_vs_legacy").mean;
    std::printf("\nchurn: %.2fM events/s new vs %.2fM events/s legacy "
                "-> %.2fx speedup\n",
                churn.at("events_per_sec").mean / 1e6,
                churn.at("legacy_events_per_sec").mean / 1e6, speedup);
    if (speedup < 2.0)
        std::printf("WARNING: speedup below the 2x refactor target\n");

    bench::banner("BENCH_record",
                  "analytic chunk-record batching vs per-chunk events");
    exp::SweepResult recres =
        exp::runAndReport(*reg.find("BENCH_record"), cli);
    const auto &rbatch = recres.aggregates.at(0).metrics;
    const auto &rsim = recres.aggregates.at(1).metrics;
    std::printf("\nrecord_batch: %.0f events/sim-ms batched vs %.0f "
                "per-chunk -> %.2fx wall speedup\n",
                rbatch.at("events_per_simulated_ms").mean,
                rbatch.at("per_chunk_events_per_simulated_ms").mean,
                rbatch.at("record_speedup_vs_per_chunk").mean);
    std::printf("sim_record:   %.2fx wall speedup, %.2fM work-events/s "
                "(records byte-identical in both)\n",
                rsim.at("record_speedup_vs_per_chunk").mean,
                rsim.at("work_events_per_sec").mean / 1e6);
    if (rbatch.at("record_speedup_vs_per_chunk").mean < 2.0)
        std::printf("WARNING: record batching below the 2x refactor "
                    "target\n");

    bench::banner("BENCH_tick",
                  "rate-grouped Ticker vs per-event periodic traffic");
    exp::SweepResult tick = exp::runAndReport(*reg.find("BENCH_tick"),
                                              cli);
    const auto &groups = tick.aggregates.at(0).metrics;
    const auto &simt = tick.aggregates.at(1).metrics;
    std::printf("\ntick_groups: %.0f events/sim-ms grouped vs %.0f "
                "per-event -> %.2fx wall speedup\n",
                groups.at("events_per_simulated_ms").mean,
                groups.at("per_event_events_per_simulated_ms").mean,
                groups.at("speedup_vs_per_event").mean);
    std::printf("sim_tick:    %.0f events/sim-ms grouped vs %.0f "
                "per-event -> %.2fx wall speedup\n",
                simt.at("events_per_simulated_ms").mean,
                simt.at("per_event_events_per_simulated_ms").mean,
                simt.at("speedup_vs_per_event").mean);
    if (groups.at("speedup_vs_per_event").mean < 1.3)
        std::printf("WARNING: tick_groups speedup below the 1.3x "
                    "refactor target\n");

    bench::banner("BENCH_ff",
                  "fast-forward pump vs fully stepped PDN/PMU dispatch");
    exp::SweepResult ffres = exp::runAndReport(*reg.find("BENCH_ff"),
                                               cli);
    const auto &ffm = ffres.aggregates.at(0).metrics;
    std::printf("\nsim_ff: %.1f ms ff vs %.1f ms stepped -> %.2fx wall "
                "speedup (%.0f%% of events pumped inline)\n",
                ffm.at("sim_wall_ms").mean,
                ffm.at("stepped_wall_ms").mean,
                ffm.at("speedup_vs_stepped").mean,
                ffm.at("ff_fire_fraction").mean * 100.0);
    if (ffm.at("speedup_vs_stepped").mean < 1.3)
        std::printf("WARNING: fast-forward speedup below the 1.3x "
                    "target\n");
    return 0;
}
