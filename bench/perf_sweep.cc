/**
 * @file
 * End-to-end sweep-throughput benchmarks.
 *
 * Two scenarios (each writes `<name>.json` under `--json --out DIR`):
 *
 *  - BENCH_sweep: one complete src/exp sweep — a thread-channel BER
 *    grid with real Simulation trials — per outer point, on an inner
 *    SweepRunner pinned to N workers; reports points/sec and
 *    trials/sec. The jobs axis shows how the worker pool scales now
 *    that the event kernel, not the allocator, is the bottleneck.
 *
 *  - BENCH_snapshot: the warm-state-forking benchmark. Each trial runs
 *    the same warmup-heavy inner sweep twice — cold (every trial
 *    re-simulates PDN settle + guardband ramp) and warm (one warmup per
 *    unique config, snapshotted via src/state and forked per trial) —
 *    verifies the two reports are byte-identical, and reports
 *    points/sec for both plus fork_speedup = warm/cold.
 *
 *  - BENCH_shard: multi-process sharding. Each trial runs a
 *    warmup-heavy inner sweep (several distinct warm keys) serially
 *    in-process and again across N `--shard`-style worker processes,
 *    verifies the reports are byte-identical, and reports
 *    shard_speedup = serial/sharded wall clock. Speedup tracks the
 *    machine's core count: on a 1-core CI box ~1.0x is the honest
 *    expectation and the benchmark is primarily a correctness +
 *    overhead gauge there.
 *
 * Extra flag (on top of the standard sweep CLI):
 *
 *   --grid small|large   grid preset; `large` widens the jobs axis and
 *                        the inner grids for scaling studies
 *                        (ROADMAP.md records the measured numbers)
 *
 * Inner workloads scale down via ICH_PERF_SWEEP_TRIALS,
 * ICH_PERF_SNAP_TRIALS, ICH_PERF_SNAP_BURSTS, ICH_PERF_SHARD_TRIALS
 * and ICH_PERF_SHARD_BURSTS for CI smoke runs. The outer runner is
 * forced to 1 worker: wall-clock metrics must not contend (the inner
 * pool is what is being measured).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "exp/exp.hh"
#include "shard/shard.hh"
#include "state/state.hh"

using namespace ich;

namespace
{

struct GridOptions {
    std::vector<double> jobsAxis;
    std::vector<double> noiseAxis;
    std::vector<double> payloadAxis;
    std::vector<double> probeAxis;
    std::vector<double> shardWorkersAxis;
    std::vector<double> warmBurstsAxis; ///< distinct warm keys (shard)
    std::vector<double> shardProbeAxis; ///< points per warm key (shard)
};

GridOptions
gridFor(const std::string &name)
{
    GridOptions g;
    if (name == "small") {
        g.jobsAxis = {1.0, 2.0, 4.0};
        g.noiseAxis = {0.0, 1000.0, 5000.0};
        g.payloadAxis = {16.0, 32.0};
        g.probeAxis = {300.0, 600.0, 900.0};
        g.shardWorkersAxis = {1.0, 2.0};
        g.warmBurstsAxis = {0.0, 250.0, 500.0, 750.0};
        g.shardProbeAxis = {100.0, 200.0, 300.0, 400.0,
                            500.0, 600.0, 700.0, 800.0};
    } else if (name == "large") {
        g.jobsAxis = {1.0, 2.0, 4.0, 8.0};
        g.noiseAxis = {0.0, 500.0, 1000.0, 5000.0, 10000.0};
        g.payloadAxis = {16.0, 32.0, 64.0};
        g.probeAxis = {200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0};
        g.shardWorkersAxis = {1.0, 2.0, 4.0};
        g.warmBurstsAxis = {0.0,    250.0,  500.0,  750.0,
                            1000.0, 1250.0, 1500.0, 1750.0};
        g.shardProbeAxis = {100.0, 200.0, 300.0,  400.0,
                            500.0, 600.0, 700.0,  800.0,
                            900.0, 1000.0, 1100.0, 1200.0};
    } else {
        throw std::invalid_argument("--grid: expected 'small' or "
                                    "'large', got '" + name + "'");
    }
    return g;
}

/** The measured workload: a small but real covert-channel sweep. */
exp::ScenarioSpec
innerSpec(const GridOptions &grid, int trials, std::uint64_t seed)
{
    exp::ScenarioSpec inner;
    inner.name = "inner-ber-grid";
    inner.description = "thread-channel BER vs noise (timing payload)";
    inner.axes = {
        exp::axis("noise_events_per_s", grid.noiseAxis),
        exp::axis("payload_bits", grid.payloadAxis),
    };
    inner.trials = trials;
    inner.baseSeed = seed;
    inner.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = ctx.seed;
        cfg.noise.interruptRatePerSec =
            ctx.point.get("noise_events_per_s");
        auto ch = makeChannel(ChannelKind::kThread, cfg);
        TransmitResult r = ch->transmit(bench::lcgPayload(
            static_cast<std::size_t>(ctx.point.get("payload_bits")),
            0xBEEF));
        exp::MetricMap m;
        m["ber"] = r.ber;
        m["throughput_bps"] = r.throughputBps;
        return m;
    };
    return inner;
}

// --------------------------------------------------- BENCH_snapshot

constexpr std::uint64_t kWarmSeed = 0x5EED0u;

/**
 * The warmup every trial of the snapshot benchmark depends on: PHI
 * burst cycles across both cores (guardband ramps, SVID queueing,
 * throttling, decay) followed by PDN settle. Deliberately the dominant
 * cost of a trial — exactly the work warm forking amortizes.
 */
std::unique_ptr<Simulation>
warmSimulation(int bursts)
{
    auto sim = std::make_unique<Simulation>(
        bench::pinned(presets::cannonLake(), 1.4), kWarmSeed);
    for (int c = 0; c < sim->chip().coreCount(); ++c) {
        Program p;
        for (int b = 0; b < bursts; ++b) {
            p.loop(InstClass::k256Heavy, 400, 100);
            p.idle(fromMicroseconds(700)); // let the hysteresis decay
            p.loop(InstClass::k512Heavy, 200, 100);
            p.idle(fromMicroseconds(700));
        }
        HwThread &thr = sim->chip().core(c).thread(0);
        thr.setProgram(std::move(p));
        thr.start();
    }
    sim->run(fromSeconds(10.0));
    state::quiesce(*sim);
    return sim;
}

/** Warmup-heavy inner sweep; cold when @p warm_fork is off. */
exp::ScenarioSpec
snapshotInnerSpec(const GridOptions &grid, bool warm_fork, int trials,
                  int bursts, std::uint64_t seed)
{
    exp::ScenarioSpec inner;
    inner.name = warm_fork ? "inner-warm-fork" : "inner-cold";
    inner.description = "throttle-period probe after a warmed chip";
    inner.axes = {exp::axis("probe_iters", grid.probeAxis)};
    inner.trials = trials;
    inner.baseSeed = seed;
    inner.run = [bursts](const exp::TrialContext &ctx) {
        std::unique_ptr<Simulation> sim =
            ctx.warmSnapshot ? state::restore(*ctx.warmSnapshot)
                             : warmSimulation(bursts);
        sim->rng().seed(ctx.seed);
        HwThread &thr = sim->chip().core(0).thread(0);
        Program p;
        p.mark(0);
        p.loop(InstClass::k256Heavy,
               static_cast<std::uint64_t>(ctx.point.get("probe_iters")),
               100);
        p.mark(1);
        thr.setProgram(std::move(p));
        thr.start();
        sim->run(fromSeconds(10.0));
        const auto &recs = thr.records();
        exp::MetricMap m;
        m["probe_us"] =
            toMicroseconds(recs.at(1).time - recs.at(0).time);
        m["volts"] = sim->chip().vccVolts();
        return m;
    };
    if (warm_fork) {
        inner.warmup = [bursts](const exp::ParamPoint &) {
            return state::snapshot(*warmSimulation(bursts));
        };
        // Warmup is probe-independent: one snapshot serves the grid.
        inner.warmupKey = [](const exp::ParamPoint &) {
            return std::string("shared");
        };
    }
    return inner;
}

// ------------------------------------------------------ BENCH_shard

/**
 * The sharded-sweep workload: warmup-heavy like the snapshot bench,
 * but with a warm_bursts axis so the grid has several *distinct* warm
 * keys — the consistent-hash ring then spreads warmups across worker
 * processes, which is where multi-process sharding wins.
 *
 * Registered in the registry (workers look it up by name and re-expand
 * it); the per-run base seed arrives via the coordinator handshake.
 */
exp::ScenarioSpec
shardInnerSpec(const GridOptions &grid, int trials, int base_bursts,
               std::uint64_t seed)
{
    exp::ScenarioSpec inner;
    inner.name = "BENCH_shard_inner";
    inner.description =
        "(internal) warmup-heavy workload for the sharding bench";
    inner.axes = {exp::axis("warm_bursts", grid.warmBurstsAxis),
                  exp::axis("probe_iters", grid.shardProbeAxis)};
    inner.trials = trials;
    inner.baseSeed = seed;
    inner.run = [base_bursts](const exp::TrialContext &ctx) {
        int bursts = base_bursts + ctx.point.getInt("warm_bursts");
        std::unique_ptr<Simulation> sim =
            ctx.warmSnapshot ? state::restore(*ctx.warmSnapshot)
                             : warmSimulation(bursts);
        sim->rng().seed(ctx.seed);
        HwThread &thr = sim->chip().core(0).thread(0);
        Program p;
        p.mark(0);
        p.loop(InstClass::k256Heavy,
               static_cast<std::uint64_t>(ctx.point.get("probe_iters")),
               100);
        p.mark(1);
        thr.setProgram(std::move(p));
        thr.start();
        sim->run(fromSeconds(10.0));
        const auto &recs = thr.records();
        exp::MetricMap m;
        m["probe_us"] =
            toMicroseconds(recs.at(1).time - recs.at(0).time);
        m["volts"] = sim->chip().vccVolts();
        return m;
    };
    inner.warmup = [base_bursts](const exp::ParamPoint &point) {
        return state::snapshot(*warmSimulation(
            base_bursts + point.getInt("warm_bursts")));
    };
    // One warm state per warm_bursts value: a handful of distinct keys
    // for the ring to place, shared across the probe axis.
    inner.warmupKey = [](const exp::ParamPoint &point) {
        return "wb-" + std::to_string(point.getInt("warm_bursts"));
    };
    return inner;
}

exp::ScenarioRegistry
buildScenarios(const GridOptions &grid, const std::string &grid_name)
{
    const int inner_trials = static_cast<int>(
        bench::envCount("ICH_PERF_SWEEP_TRIALS", 2));
    const int snap_trials = static_cast<int>(
        bench::envCount("ICH_PERF_SNAP_TRIALS", 2));
    const int snap_bursts = static_cast<int>(
        bench::envCount("ICH_PERF_SNAP_BURSTS", 96));
    const int shard_trials = static_cast<int>(
        bench::envCount("ICH_PERF_SHARD_TRIALS", 1));
    const int shard_bursts = static_cast<int>(
        bench::envCount("ICH_PERF_SHARD_BURSTS", 4000));

    exp::ScenarioRegistry reg;
    {
        exp::ScenarioSpec spec;
        spec.name = "BENCH_sweep";
        spec.description = "src/exp sweep throughput (points/sec) vs "
                           "inner worker count";
        spec.axes = {exp::axis("jobs", grid.jobsAxis)};
        spec.trials = 2;
        spec.baseSeed = 7;
        spec.run = [&grid, inner_trials](const exp::TrialContext &ctx) {
            exp::RunnerOptions opts;
            opts.jobs = ctx.point.getInt("jobs");
            exp::SweepRunner runner(opts);
            exp::ScenarioSpec inner =
                innerSpec(grid, inner_trials, ctx.seed);

            auto t0 = std::chrono::steady_clock::now();
            exp::SweepResult r = runner.run(inner);
            double dt = bench::secondsSince(t0);

            exp::MetricMap m;
            m["points_per_sec"] =
                static_cast<double>(r.points.size()) / dt;
            m["trials_per_sec"] =
                static_cast<double>(r.trials.size()) / dt;
            m["sweep_wall_ms"] = dt * 1e3;
            // Sanity tie-in so a broken inner sweep shows in the JSON.
            m["inner_trials"] = static_cast<double>(r.trials.size());
            return m;
        };
        reg.add(std::move(spec));
    }
    {
        exp::ScenarioSpec spec;
        spec.name = "BENCH_snapshot";
        spec.description = "warm-state forking: points/sec forked from "
                           "a snapshot vs re-simulated warmup";
        spec.axes = {exp::axis("jobs", grid.jobsAxis)};
        spec.trials = 2;
        spec.baseSeed = 11;
        spec.run = [&grid, snap_trials,
                    snap_bursts](const exp::TrialContext &ctx) {
            exp::RunnerOptions opts;
            opts.jobs = ctx.point.getInt("jobs");
            exp::SweepRunner runner(opts);

            exp::ScenarioSpec cold = snapshotInnerSpec(
                grid, false, snap_trials, snap_bursts, ctx.seed);
            exp::ScenarioSpec warm = snapshotInnerSpec(
                grid, true, snap_trials, snap_bursts, ctx.seed);

            auto t0 = std::chrono::steady_clock::now();
            exp::SweepResult rc = runner.run(cold);
            double cold_dt = bench::secondsSince(t0);
            t0 = std::chrono::steady_clock::now();
            exp::SweepResult rw = runner.run(warm);
            double warm_dt = bench::secondsSince(t0);

            // The fork is only a win if it is *exactly* the same sweep.
            rc.scenario = rw.scenario = "inner";
            if (exp::jsonReport(rc, true) != exp::jsonReport(rw, true))
                throw std::runtime_error(
                    "warm-forked sweep diverged from cold sweep");

            double n_points = static_cast<double>(rw.points.size());
            exp::MetricMap m;
            m["points_per_sec"] = n_points / warm_dt;
            m["cold_points_per_sec"] = n_points / cold_dt;
            m["fork_speedup"] = cold_dt / warm_dt;
            m["inner_trials"] = static_cast<double>(rw.trials.size());
            return m;
        };
        reg.add(std::move(spec));
    }
    {
        // The workload itself: registered so `--shard-worker` processes
        // can look it up by name; never driven directly from main().
        reg.add(shardInnerSpec(grid, snap_trials, shard_bursts, 17));
    }
    {
        exp::ScenarioSpec spec;
        spec.name = "BENCH_shard";
        spec.description = "multi-process sharding: sweep wall clock "
                           "with N worker processes vs in-process "
                           "serial (byte-identity checked)";
        spec.axes = {exp::axis("workers", grid.shardWorkersAxis)};
        spec.trials = shard_trials;
        spec.baseSeed = 13;
        spec.run = [&grid, grid_name, snap_trials,
                    shard_bursts](const exp::TrialContext &ctx) {
            exp::ScenarioSpec inner = shardInnerSpec(
                grid, snap_trials, shard_bursts, ctx.seed);

            auto t0 = std::chrono::steady_clock::now();
            exp::RunnerOptions serial_opts;
            serial_opts.jobs = 1;
            exp::SweepRunner serial_runner(serial_opts);
            exp::SweepResult rs = serial_runner.run(inner);
            double serial_dt = bench::secondsSince(t0);

            shard::ShardOptions sopts;
            sopts.workers = ctx.point.getInt("workers");
            sopts.workerArgs = {"--grid", grid_name};
            t0 = std::chrono::steady_clock::now();
            exp::SweepResult rw = shard::runSharded(inner, sopts);
            double shard_dt = bench::secondsSince(t0);

            // Sharding is only a win if it is *exactly* the same sweep.
            if (exp::jsonReport(rs, true) != exp::jsonReport(rw, true))
                throw std::runtime_error(
                    "sharded sweep diverged from serial sweep");

            double n_points = static_cast<double>(rw.points.size());
            exp::MetricMap m;
            m["points_per_sec"] = n_points / shard_dt;
            m["serial_points_per_sec"] = n_points / serial_dt;
            m["shard_speedup"] = serial_dt / shard_dt;
            m["inner_trials"] = static_cast<double>(rw.trials.size());
            return m;
        };
        reg.add(std::move(spec));
    }
    return reg;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-specific --grid flag before the standard CLI.
    std::string grid_name = "small";
    std::vector<const char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--grid") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --grid: missing value "
                                     "(small|large)\n");
                return 2;
            }
            grid_name = argv[++i];
        } else {
            args.push_back(argv[i]);
        }
    }
    GridOptions grid;
    try {
        grid = gridFor(grid_name);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    exp::ScenarioRegistry reg = buildScenarios(grid, grid_name);
    exp::CliOptions cli;
    int rc = exp::harnessSetup(static_cast<int>(args.size()),
                               args.data(), reg, cli);
    if (rc >= 0)
        return rc;
    // The inner pool is the subject of measurement; keep the outer serial.
    cli.jobs = 1;

    bench::banner("BENCH_sweep", "end-to-end src/exp sweep throughput (" +
                                     grid_name + " grid)");
    if (exp::wantScenario(cli, "BENCH_sweep")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_sweep"), cli);
        exp::MetricSummary pps = exp::rollup(res, "points_per_sec");
        std::printf("\nsweep throughput: mean %.2f points/s across jobs "
                    "settings (max %.2f)\n\n",
                    pps.mean, pps.max);
    }
    if (exp::wantScenario(cli, "BENCH_snapshot")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_snapshot"), cli);
        exp::MetricSummary speedup = exp::rollup(res, "fork_speedup");
        exp::MetricSummary warm = exp::rollup(res, "points_per_sec");
        std::printf("\nwarm-state forking: mean %.2fx over re-warming "
                    "(max %.2fx), %.2f points/s warm\n",
                    speedup.mean, speedup.max, warm.mean);
    }
    if (exp::wantScenario(cli, "BENCH_shard")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_shard"), cli);
        exp::MetricSummary speedup = exp::rollup(res, "shard_speedup");
        std::printf("\nmulti-process sharding: %.2fx over serial at "
                    "best worker count (mean %.2fx; 1 on a 1-core "
                    "box is expected)\n",
                    speedup.max, speedup.mean);
    }
    return 0;
}
