/**
 * @file
 * End-to-end sweep-throughput benchmarks.
 *
 * Two scenarios (each writes `<name>.json` under `--json --out DIR`):
 *
 *  - BENCH_sweep: one complete src/exp sweep — a thread-channel BER
 *    grid with real Simulation trials — per outer point, on an inner
 *    SweepRunner pinned to N workers; reports points/sec and
 *    trials/sec. The jobs axis shows how the worker pool scales now
 *    that the event kernel, not the allocator, is the bottleneck.
 *
 *  - BENCH_snapshot: the warm-state-forking benchmark. Each trial runs
 *    the same warmup-heavy inner sweep twice — cold (every trial
 *    re-simulates PDN settle + guardband ramp) and warm (one warmup per
 *    unique config, snapshotted via src/state and forked per trial) —
 *    verifies the two reports are byte-identical, and reports
 *    points/sec for both plus fork_speedup = warm/cold.
 *
 *  - BENCH_shard: multi-process sharding. Each trial runs a
 *    warmup-heavy inner sweep (several distinct warm keys) serially
 *    in-process and again across N `--shard`-style worker processes,
 *    verifies the reports are byte-identical, and reports
 *    shard_speedup = serial/sharded wall clock. Speedup tracks the
 *    machine's core count: on a 1-core CI box ~1.0x is the honest
 *    expectation and the benchmark is primarily a correctness +
 *    overhead gauge there.
 *
 *  - BENCH_detect: online-detection overhead. Each trial runs the same
 *    PHI-burst workload unwatched and with a full detect::DetectorBank
 *    riding the chip Ticker, and reports event-kernel events/s for
 *    both plus detect_overhead_ratio = on/off. CI gates the ratio at
 *    0.9: attaching the detectors must never cost the simulator more
 *    than a tenth of its throughput.
 *
 *  - BENCH_colstore: the columnar result store. Each trial streams a
 *    synthetic many-point sweep's records through a ColumnStoreWriter
 *    (spill throughput, on-disk size), re-opens the store and reads
 *    every point back (scan + decode throughput), verifies the
 *    read-back is bit-identical to the generated records, and reports
 *    the process peak RSS — the memory ceiling of the streaming path.
 *
 * Extra flags (on top of the standard sweep CLI):
 *
 *   --grid small|large     grid preset; `large` widens the jobs axis
 *                          and the inner grids for scaling studies
 *                          (ROADMAP.md records the measured numbers)
 *   --rss-points N         RSS-gate mode: run one N-point streaming
 *                          sweep (cheap math trials, records spilled to
 *                          the column store) and print the peak RSS,
 *                          then exit.
 *   --rss-trials T         trials per point in the gate sweep
 *                          (default 3). CI holds the grid fixed and
 *                          runs T and 10T — 10x the result records —
 *                          and scripts/check_rss_flat.py asserts the
 *                          streaming ceiling stays flat. (The grid
 *                          itself is input, not results: ParamPoints
 *                          cost ~190 B/point however results are
 *                          handled, so record growth is the axis that
 *                          isolates what the streaming path bounds.)
 *   --rss-materialize      RSS-gate mode, but through the legacy
 *                          materialized SweepResult path — the
 *                          O(total trials) baseline the gate contrasts.
 *
 * Inner workloads scale down via ICH_PERF_SWEEP_TRIALS,
 * ICH_PERF_SNAP_TRIALS, ICH_PERF_SNAP_BURSTS, ICH_PERF_SHARD_TRIALS,
 * ICH_PERF_SHARD_BURSTS, ICH_PERF_COLSTORE_POINTS and
 * ICH_PERF_COLSTORE_TRIALS for CI smoke runs. The outer runner is
 * forced to 1 worker: wall-clock metrics must not contend (the inner
 * pool is what is being measured).
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "detect/detector.hh"
#include "exp/exp.hh"
#include "shard/shard.hh"
#include "state/state.hh"

using namespace ich;

namespace
{

struct GridOptions {
    std::vector<double> jobsAxis;
    std::vector<double> noiseAxis;
    std::vector<double> payloadAxis;
    std::vector<double> probeAxis;
    std::vector<double> shardWorkersAxis;
    std::vector<double> warmBurstsAxis; ///< distinct warm keys (shard)
    std::vector<double> shardProbeAxis; ///< points per warm key (shard)
    std::vector<double> chunkRecordsAxis; ///< colstore flush thresholds
    std::vector<double> detectBurstsAxis; ///< PHI bursts (detect bench)
};

GridOptions
gridFor(const std::string &name)
{
    GridOptions g;
    if (name == "small") {
        g.jobsAxis = {1.0, 2.0, 4.0};
        g.noiseAxis = {0.0, 1000.0, 5000.0};
        g.payloadAxis = {16.0, 32.0};
        g.probeAxis = {300.0, 600.0, 900.0};
        g.shardWorkersAxis = {1.0, 2.0};
        g.warmBurstsAxis = {0.0, 250.0, 500.0, 750.0};
        g.shardProbeAxis = {100.0, 200.0, 300.0, 400.0,
                            500.0, 600.0, 700.0, 800.0};
        g.chunkRecordsAxis = {4096.0, 65536.0};
        g.detectBurstsAxis = {16.0, 48.0};
    } else if (name == "large") {
        g.jobsAxis = {1.0, 2.0, 4.0, 8.0};
        g.noiseAxis = {0.0, 500.0, 1000.0, 5000.0, 10000.0};
        g.payloadAxis = {16.0, 32.0, 64.0};
        g.probeAxis = {200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0};
        g.shardWorkersAxis = {1.0, 2.0, 4.0};
        g.warmBurstsAxis = {0.0,    250.0,  500.0,  750.0,
                            1000.0, 1250.0, 1500.0, 1750.0};
        g.shardProbeAxis = {100.0, 200.0, 300.0,  400.0,
                            500.0, 600.0, 700.0,  800.0,
                            900.0, 1000.0, 1100.0, 1200.0};
        g.chunkRecordsAxis = {1024.0, 4096.0, 16384.0, 65536.0};
        g.detectBurstsAxis = {16.0, 48.0, 96.0};
    } else {
        throw std::invalid_argument("--grid: expected 'small' or "
                                    "'large', got '" + name + "'");
    }
    return g;
}

/** The measured workload: a small but real covert-channel sweep. */
exp::ScenarioSpec
innerSpec(const GridOptions &grid, int trials, std::uint64_t seed)
{
    exp::ScenarioSpec inner;
    inner.name = "inner-ber-grid";
    inner.description = "thread-channel BER vs noise (timing payload)";
    inner.axes = {
        exp::axis("noise_events_per_s", grid.noiseAxis),
        exp::axis("payload_bits", grid.payloadAxis),
    };
    inner.trials = trials;
    inner.baseSeed = seed;
    inner.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = ctx.seed;
        cfg.noise.interruptRatePerSec =
            ctx.point.get("noise_events_per_s");
        auto ch = makeChannel(ChannelKind::kThread, cfg);
        TransmitResult r = ch->transmit(bench::lcgPayload(
            static_cast<std::size_t>(ctx.point.get("payload_bits")),
            0xBEEF));
        exp::MetricMap m;
        m["ber"] = r.ber;
        m["throughput_bps"] = r.throughputBps;
        return m;
    };
    return inner;
}

// --------------------------------------------------- BENCH_snapshot

constexpr std::uint64_t kWarmSeed = 0x5EED0u;

/**
 * The warmup every trial of the snapshot benchmark depends on: PHI
 * burst cycles across both cores (guardband ramps, SVID queueing,
 * throttling, decay) followed by PDN settle. Deliberately the dominant
 * cost of a trial — exactly the work warm forking amortizes.
 */
std::unique_ptr<Simulation>
warmSimulation(int bursts)
{
    auto sim = std::make_unique<Simulation>(
        bench::pinned(presets::cannonLake(), 1.4), kWarmSeed);
    for (int c = 0; c < sim->chip().coreCount(); ++c) {
        Program p;
        for (int b = 0; b < bursts; ++b) {
            p.loop(InstClass::k256Heavy, 400, 100);
            p.idle(fromMicroseconds(700)); // let the hysteresis decay
            p.loop(InstClass::k512Heavy, 200, 100);
            p.idle(fromMicroseconds(700));
        }
        HwThread &thr = sim->chip().core(c).thread(0);
        thr.setProgram(std::move(p));
        thr.start();
    }
    sim->run(fromSeconds(10.0));
    state::quiesce(*sim);
    return sim;
}

/** Warmup-heavy inner sweep; cold when @p warm_fork is off. */
exp::ScenarioSpec
snapshotInnerSpec(const GridOptions &grid, bool warm_fork, int trials,
                  int bursts, std::uint64_t seed)
{
    exp::ScenarioSpec inner;
    inner.name = warm_fork ? "inner-warm-fork" : "inner-cold";
    inner.description = "throttle-period probe after a warmed chip";
    inner.axes = {exp::axis("probe_iters", grid.probeAxis)};
    inner.trials = trials;
    inner.baseSeed = seed;
    inner.run = [bursts](const exp::TrialContext &ctx) {
        std::unique_ptr<Simulation> sim =
            ctx.warmSnapshot ? state::restore(*ctx.warmSnapshot)
                             : warmSimulation(bursts);
        sim->rng().seed(ctx.seed);
        HwThread &thr = sim->chip().core(0).thread(0);
        Program p;
        p.mark(0);
        p.loop(InstClass::k256Heavy,
               static_cast<std::uint64_t>(ctx.point.get("probe_iters")),
               100);
        p.mark(1);
        thr.setProgram(std::move(p));
        thr.start();
        sim->run(fromSeconds(10.0));
        const auto &recs = thr.records();
        exp::MetricMap m;
        m["probe_us"] =
            toMicroseconds(recs.at(1).time - recs.at(0).time);
        m["volts"] = sim->chip().vccVolts();
        return m;
    };
    if (warm_fork) {
        inner.warmup = [bursts](const exp::ParamPoint &) {
            return state::snapshot(*warmSimulation(bursts));
        };
        // Warmup is probe-independent: one snapshot serves the grid.
        inner.warmupKey = [](const exp::ParamPoint &) {
            return std::string("shared");
        };
    }
    return inner;
}

// ------------------------------------------------------ BENCH_shard

/**
 * The sharded-sweep workload: warmup-heavy like the snapshot bench,
 * but with a warm_bursts axis so the grid has several *distinct* warm
 * keys — the consistent-hash ring then spreads warmups across worker
 * processes, which is where multi-process sharding wins.
 *
 * Registered in the registry (workers look it up by name and re-expand
 * it); the per-run base seed arrives via the coordinator handshake.
 */
exp::ScenarioSpec
shardInnerSpec(const GridOptions &grid, int trials, int base_bursts,
               std::uint64_t seed)
{
    exp::ScenarioSpec inner;
    inner.name = "BENCH_shard_inner";
    inner.description =
        "(internal) warmup-heavy workload for the sharding bench";
    inner.axes = {exp::axis("warm_bursts", grid.warmBurstsAxis),
                  exp::axis("probe_iters", grid.shardProbeAxis)};
    inner.trials = trials;
    inner.baseSeed = seed;
    inner.run = [base_bursts](const exp::TrialContext &ctx) {
        int bursts = base_bursts + ctx.point.getInt("warm_bursts");
        std::unique_ptr<Simulation> sim =
            ctx.warmSnapshot ? state::restore(*ctx.warmSnapshot)
                             : warmSimulation(bursts);
        sim->rng().seed(ctx.seed);
        HwThread &thr = sim->chip().core(0).thread(0);
        Program p;
        p.mark(0);
        p.loop(InstClass::k256Heavy,
               static_cast<std::uint64_t>(ctx.point.get("probe_iters")),
               100);
        p.mark(1);
        thr.setProgram(std::move(p));
        thr.start();
        sim->run(fromSeconds(10.0));
        const auto &recs = thr.records();
        exp::MetricMap m;
        m["probe_us"] =
            toMicroseconds(recs.at(1).time - recs.at(0).time);
        m["volts"] = sim->chip().vccVolts();
        return m;
    };
    inner.warmup = [base_bursts](const exp::ParamPoint &point) {
        return state::snapshot(*warmSimulation(
            base_bursts + point.getInt("warm_bursts")));
    };
    // One warm state per warm_bursts value: a handful of distinct keys
    // for the ring to place, shared across the probe axis.
    inner.warmupKey = [](const exp::ParamPoint &point) {
        return "wb-" + std::to_string(point.getInt("warm_bursts"));
    };
    return inner;
}

// ---------------------------------------------------- BENCH_detect

/**
 * One measured run of the detection-overhead workload: PHI burst
 * cycles on every core, optionally watched by a full DetectorBank.
 * Returns event-kernel throughput (executed events per wall second) —
 * the detector ticks *add* events, so comparable on/off throughput
 * means the bank costs what its ticks cost and nothing more.
 */
double
detectArmEventsPerSec(bool with_bank, int bursts, std::uint64_t seed,
                      std::uint64_t *det_samples)
{
    Simulation sim(presets::cannonLake(), seed);
    std::unique_ptr<detect::DetectorBank> bank;
    if (with_bank)
        bank = std::make_unique<detect::DetectorBank>(
            sim.chip(), detect::DetectConfig{});
    for (int c = 0; c < sim.chip().coreCount(); ++c) {
        Program p;
        for (int b = 0; b < bursts; ++b) {
            p.loop(InstClass::k256Heavy, 400, 100);
            p.idle(fromMicroseconds(700)); // hysteresis decay
            p.loop(InstClass::k512Heavy, 200, 100);
            p.idle(fromMicroseconds(700));
        }
        HwThread &thr = sim.chip().core(c).thread(0);
        thr.setProgram(std::move(p));
        thr.start();
    }
    auto t0 = std::chrono::steady_clock::now();
    sim.run(fromSeconds(10.0));
    double dt = bench::secondsSince(t0);
    if (det_samples)
        *det_samples = with_bank ? bank->detector(0).samples() : 0;
    return static_cast<double>(sim.eq().executedEvents()) / dt;
}

// --------------------------------------------------- BENCH_colstore

/** Process peak RSS in MiB (ru_maxrss is KiB on Linux). */
double
peakRssMb()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/**
 * Identity of the synthetic store the colstore bench writes: a flat
 * one-axis grid, sized by the env knobs. The records are pure functions
 * of (base seed, global trial index), so the read-back phase can
 * regenerate them and assert bit-identity.
 */
exp::SweepMeta
colstoreMeta(std::size_t n_points, int tpp, std::uint64_t seed)
{
    exp::ScenarioSpec synth;
    synth.name = "colstore-synthetic";
    synth.description = "synthetic records for the column-store bench";
    std::vector<double> idx(n_points);
    for (std::size_t i = 0; i < n_points; ++i)
        idx[i] = static_cast<double>(i);
    synth.axes = {exp::axis("i", idx)};
    synth.trials = tpp;
    synth.baseSeed = seed;

    exp::SweepMeta meta;
    meta.scenario = synth.name;
    meta.description = synth.description;
    meta.baseSeed = seed;
    meta.trialsPerPoint = tpp;
    meta.points = exp::expandPoints(synth);
    meta.gridFp = exp::gridFingerprint(meta.points);
    return meta;
}

exp::TrialRecord
colstoreRecord(const exp::SweepMeta &meta, std::size_t point, int trial)
{
    exp::TrialRecord r;
    r.pointIndex = point;
    r.trial = trial;
    r.seed = exp::deriveTrialSeed(
        meta.baseSeed,
        static_cast<std::uint64_t>(point) * meta.trialsPerPoint + trial);
    Rng rng(r.seed);
    r.metrics["ber"] = rng.uniform();
    r.metrics["throughput_bps"] = rng.normal(1.0e6, 1.0e4);
    return r;
}

exp::ScenarioRegistry
buildScenarios(const GridOptions &grid, const std::string &grid_name)
{
    const int inner_trials = static_cast<int>(
        bench::envCount("ICH_PERF_SWEEP_TRIALS", 2));
    const int snap_trials = static_cast<int>(
        bench::envCount("ICH_PERF_SNAP_TRIALS", 2));
    const int snap_bursts = static_cast<int>(
        bench::envCount("ICH_PERF_SNAP_BURSTS", 96));
    const int shard_trials = static_cast<int>(
        bench::envCount("ICH_PERF_SHARD_TRIALS", 1));
    const int shard_bursts = static_cast<int>(
        bench::envCount("ICH_PERF_SHARD_BURSTS", 4000));

    exp::ScenarioRegistry reg;
    {
        exp::ScenarioSpec spec;
        spec.name = "BENCH_sweep";
        spec.description = "src/exp sweep throughput (points/sec) vs "
                           "inner worker count";
        spec.axes = {exp::axis("jobs", grid.jobsAxis)};
        spec.trials = 2;
        spec.baseSeed = 7;
        spec.run = [&grid, inner_trials](const exp::TrialContext &ctx) {
            exp::RunnerOptions opts;
            opts.jobs = ctx.point.getInt("jobs");
            exp::SweepRunner runner(opts);
            exp::ScenarioSpec inner =
                innerSpec(grid, inner_trials, ctx.seed);

            auto t0 = std::chrono::steady_clock::now();
            exp::SweepResult r = runner.run(inner);
            double dt = bench::secondsSince(t0);

            exp::MetricMap m;
            m["points_per_sec"] =
                static_cast<double>(r.points.size()) / dt;
            m["trials_per_sec"] =
                static_cast<double>(r.trials.size()) / dt;
            m["sweep_wall_ms"] = dt * 1e3;
            // Sanity tie-in so a broken inner sweep shows in the JSON.
            m["inner_trials"] = static_cast<double>(r.trials.size());
            return m;
        };
        reg.add(std::move(spec));
    }
    {
        exp::ScenarioSpec spec;
        spec.name = "BENCH_snapshot";
        spec.description = "warm-state forking: points/sec forked from "
                           "a snapshot vs re-simulated warmup";
        spec.axes = {exp::axis("jobs", grid.jobsAxis)};
        spec.trials = 2;
        spec.baseSeed = 11;
        spec.run = [&grid, snap_trials,
                    snap_bursts](const exp::TrialContext &ctx) {
            exp::RunnerOptions opts;
            opts.jobs = ctx.point.getInt("jobs");
            exp::SweepRunner runner(opts);

            exp::ScenarioSpec cold = snapshotInnerSpec(
                grid, false, snap_trials, snap_bursts, ctx.seed);
            exp::ScenarioSpec warm = snapshotInnerSpec(
                grid, true, snap_trials, snap_bursts, ctx.seed);

            auto t0 = std::chrono::steady_clock::now();
            exp::SweepResult rc = runner.run(cold);
            double cold_dt = bench::secondsSince(t0);
            t0 = std::chrono::steady_clock::now();
            exp::SweepResult rw = runner.run(warm);
            double warm_dt = bench::secondsSince(t0);

            // The fork is only a win if it is *exactly* the same sweep.
            rc.scenario = rw.scenario = "inner";
            if (exp::jsonReport(rc, true) != exp::jsonReport(rw, true))
                throw std::runtime_error(
                    "warm-forked sweep diverged from cold sweep");

            double n_points = static_cast<double>(rw.points.size());
            exp::MetricMap m;
            m["points_per_sec"] = n_points / warm_dt;
            m["cold_points_per_sec"] = n_points / cold_dt;
            m["fork_speedup"] = cold_dt / warm_dt;
            m["inner_trials"] = static_cast<double>(rw.trials.size());
            return m;
        };
        reg.add(std::move(spec));
    }
    {
        // The workload itself: registered so `--shard-worker` processes
        // can look it up by name; never driven directly from main().
        reg.add(shardInnerSpec(grid, snap_trials, shard_bursts, 17));
    }
    {
        exp::ScenarioSpec spec;
        spec.name = "BENCH_shard";
        spec.description = "multi-process sharding: sweep wall clock "
                           "with N worker processes vs in-process "
                           "serial (byte-identity checked)";
        spec.axes = {exp::axis("workers", grid.shardWorkersAxis)};
        spec.trials = shard_trials;
        spec.baseSeed = 13;
        spec.run = [&grid, grid_name, snap_trials,
                    shard_bursts](const exp::TrialContext &ctx) {
            exp::ScenarioSpec inner = shardInnerSpec(
                grid, snap_trials, shard_bursts, ctx.seed);

            auto t0 = std::chrono::steady_clock::now();
            exp::RunnerOptions serial_opts;
            serial_opts.jobs = 1;
            exp::SweepRunner serial_runner(serial_opts);
            exp::SweepResult rs = serial_runner.run(inner);
            double serial_dt = bench::secondsSince(t0);

            shard::ShardOptions sopts;
            sopts.workers = ctx.point.getInt("workers");
            sopts.workerArgs = {"--grid", grid_name};
            t0 = std::chrono::steady_clock::now();
            exp::SweepResult rw = shard::runSharded(inner, sopts);
            double shard_dt = bench::secondsSince(t0);

            // Sharding is only a win if it is *exactly* the same sweep.
            if (exp::jsonReport(rs, true) != exp::jsonReport(rw, true))
                throw std::runtime_error(
                    "sharded sweep diverged from serial sweep");

            double n_points = static_cast<double>(rw.points.size());
            exp::MetricMap m;
            m["points_per_sec"] = n_points / shard_dt;
            m["serial_points_per_sec"] = n_points / serial_dt;
            m["shard_speedup"] = serial_dt / shard_dt;
            m["inner_trials"] = static_cast<double>(rw.trials.size());
            return m;
        };
        reg.add(std::move(spec));
    }
    {
        exp::ScenarioSpec spec;
        spec.name = "BENCH_detect";
        spec.description = "online-detection overhead: event-kernel "
                           "events/s with a full DetectorBank attached "
                           "vs unwatched";
        spec.axes = {exp::axis("bursts", grid.detectBurstsAxis)};
        spec.trials = 2;
        spec.baseSeed = 29;
        spec.run = [](const exp::TrialContext &ctx) {
            int bursts = ctx.point.getInt("bursts");
            // Off first, on second, same seed: identical physics, the
            // only delta is the bank's observation ticks.
            double off =
                detectArmEventsPerSec(false, bursts, ctx.seed, nullptr);
            std::uint64_t det_samples = 0;
            double on = detectArmEventsPerSec(true, bursts, ctx.seed,
                                              &det_samples);
            exp::MetricMap m;
            m["off_events_per_sec"] = off;
            m["on_events_per_sec"] = on;
            m["detect_overhead_ratio"] = on / off;
            m["det_samples"] = static_cast<double>(det_samples);
            return m;
        };
        reg.add(std::move(spec));
    }
    {
        const std::size_t col_points =
            bench::envCount("ICH_PERF_COLSTORE_POINTS", 20000);
        const int col_tpp = static_cast<int>(
            bench::envCount("ICH_PERF_COLSTORE_TRIALS", 2));

        exp::ScenarioSpec spec;
        spec.name = "BENCH_colstore";
        spec.description = "columnar result store: spill + read-back "
                           "throughput and process peak RSS "
                           "(bit-identity checked)";
        spec.axes = {exp::axis("chunk_records", grid.chunkRecordsAxis)};
        spec.trials = 2;
        spec.baseSeed = 19;
        spec.run = [col_points, col_tpp](const exp::TrialContext &ctx) {
            namespace fs = std::filesystem;
            const fs::path path =
                fs::temp_directory_path() /
                ("ich_bench_colstore." + std::to_string(::getpid()) +
                 ".colstore");
            exp::SweepMeta meta =
                colstoreMeta(col_points, col_tpp, ctx.seed);

            exp::ColumnStoreWriter::Options wopts;
            wopts.chunkRecords = static_cast<std::size_t>(
                ctx.point.getInt("chunk_records"));
            std::vector<exp::TrialRecord> recs;
            auto t0 = std::chrono::steady_clock::now();
            {
                exp::ColumnStoreWriter w(path.string(), wopts);
                w.beginSweep(meta);
                for (std::size_t i = 0; i < col_points; ++i) {
                    recs.clear();
                    for (int t = 0; t < col_tpp; ++t)
                        recs.push_back(colstoreRecord(meta, i, t));
                    w.acceptPoint(i, recs.data(), recs.size());
                }
                w.endSweep();
            }
            double write_dt = bench::secondsSince(t0);
            double spill_mb =
                static_cast<double>(fs::file_size(path)) / 1.0e6;

            t0 = std::chrono::steady_clock::now();
            exp::ColumnStoreReader reader(path.string());
            double scan_dt = bench::secondsSince(t0);
            if (!reader.cleanFooter() || !reader.matches(meta) ||
                reader.completedPoints() != col_points)
                throw std::runtime_error(
                    "column store read-back lost the sweep");

            // The spill is only a win if what comes back is *exactly*
            // what went in.
            std::uint64_t rows = 0;
            t0 = std::chrono::steady_clock::now();
            reader.forEachPoint([&](std::size_t idx,
                                    const std::vector<exp::TrialRecord>
                                        &got) {
                for (std::size_t t = 0; t < got.size(); ++t) {
                    exp::TrialRecord want = colstoreRecord(
                        meta, idx, static_cast<int>(t));
                    if (got[t].seed != want.seed ||
                        got[t].metrics != want.metrics)
                        throw std::runtime_error(
                            "column store read-back diverged at point " +
                            std::to_string(idx));
                }
                rows += got.size();
            });
            double read_dt = bench::secondsSince(t0);
            fs::remove(path);

            double n_points = static_cast<double>(col_points);
            exp::MetricMap m;
            m["write_points_per_sec"] = n_points / write_dt;
            m["spill_mb"] = spill_mb;
            m["spill_mb_per_sec"] = spill_mb / write_dt;
            m["scan_points_per_sec"] = n_points / scan_dt;
            m["read_records_per_sec"] =
                static_cast<double>(rows) / read_dt;
            m["peak_rss_mb"] = peakRssMb();
            return m;
        };
        reg.add(std::move(spec));
    }
    return reg;
}

/**
 * RSS-gate mode (`--rss-points N [--rss-trials T]`): one synthetic
 * N-point streaming sweep with cheap math trials, records spilled
 * straight to the column store. CI runs the binary twice with the grid
 * held fixed and the trial count 10x'd — 10x the result records — and
 * scripts/check_rss_flat.py asserts the peak RSS ceiling stays flat:
 * the property the whole streaming redesign exists for. A second CI
 * check contrasts `--rss-materialize` (the legacy O(total trials)
 * SweepResult path) at the same size, which must NOT be flat.
 */
int
runRssGate(std::size_t n_points, int trials, bool materialize)
{
    namespace fs = std::filesystem;
    exp::ScenarioSpec spec;
    spec.name = "rss-gate";
    spec.description = "synthetic flat-memory gate workload";
    std::vector<double> idx(n_points);
    for (std::size_t i = 0; i < n_points; ++i)
        idx[i] = static_cast<double>(i);
    spec.axes = {exp::axis("i", idx)};
    spec.trials = trials;
    spec.baseSeed = 23;
    spec.run = [](const exp::TrialContext &ctx) {
        Rng rng(ctx.seed);
        exp::MetricMap m;
        m["a"] = rng.normal(0.0, 1.0);
        m["b"] = rng.normal(10.0, 2.0);
        return m;
    };

    exp::RunnerOptions opts;
    opts.jobs = 2;
    exp::SweepRunner runner(opts);
    std::size_t total_trials = 0;
    const fs::path path =
        fs::temp_directory_path() /
        ("ich_rss_gate." + std::to_string(::getpid()) + ".colstore");
    if (materialize) {
        exp::SweepResult res = runner.run(spec);
        total_trials = res.trials.size();
    } else {
        exp::ColumnStoreWriter sink(path.string());
        exp::StreamStats stats = runner.runStreaming(spec, sink);
        total_trials = stats.points *
                       static_cast<std::size_t>(spec.trials);
    }
    std::printf("rss-gate: mode=%s points=%zu trials=%zu "
                "peak_rss_mb=%.1f\n",
                materialize ? "materialize" : "stream", n_points,
                total_trials, peakRssMb());
    fs::remove(path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-specific flags before the standard CLI.
    std::string grid_name = "small";
    std::size_t rss_points = 0;
    int rss_trials = 3;
    bool rss_materialize = false;
    std::vector<const char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--grid") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --grid: missing value "
                                     "(small|large)\n");
                return 2;
            }
            grid_name = argv[++i];
        } else if (std::strcmp(argv[i], "--rss-points") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --rss-points: missing count\n");
                return 2;
            }
            rss_points = std::strtoull(argv[++i], nullptr, 10);
            if (rss_points == 0) {
                std::fprintf(stderr, "error: --rss-points: expected a "
                                     "positive point count\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--rss-trials") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --rss-trials: missing count\n");
                return 2;
            }
            rss_trials = std::atoi(argv[++i]);
            if (rss_trials < 1) {
                std::fprintf(stderr, "error: --rss-trials: expected a "
                                     "positive trial count\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--rss-materialize") == 0) {
            rss_materialize = true;
        } else {
            args.push_back(argv[i]);
        }
    }
    if (rss_points > 0)
        return runRssGate(rss_points, rss_trials, rss_materialize);
    if (rss_materialize) {
        std::fprintf(stderr,
                     "error: --rss-materialize requires --rss-points\n");
        return 2;
    }
    GridOptions grid;
    try {
        grid = gridFor(grid_name);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    exp::ScenarioRegistry reg = buildScenarios(grid, grid_name);
    exp::CliOptions cli;
    int rc = exp::harnessSetup(static_cast<int>(args.size()),
                               args.data(), reg, cli);
    if (rc >= 0)
        return rc;
    // The inner pool is the subject of measurement; keep the outer serial.
    cli.jobs = 1;

    bench::banner("BENCH_sweep", "end-to-end src/exp sweep throughput (" +
                                     grid_name + " grid)");
    if (exp::wantScenario(cli, "BENCH_sweep")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_sweep"), cli);
        exp::MetricSummary pps = exp::rollup(res, "points_per_sec");
        std::printf("\nsweep throughput: mean %.2f points/s across jobs "
                    "settings (max %.2f)\n\n",
                    pps.mean, pps.max);
    }
    if (exp::wantScenario(cli, "BENCH_snapshot")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_snapshot"), cli);
        exp::MetricSummary speedup = exp::rollup(res, "fork_speedup");
        exp::MetricSummary warm = exp::rollup(res, "points_per_sec");
        std::printf("\nwarm-state forking: mean %.2fx over re-warming "
                    "(max %.2fx), %.2f points/s warm\n",
                    speedup.mean, speedup.max, warm.mean);
    }
    if (exp::wantScenario(cli, "BENCH_shard")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_shard"), cli);
        exp::MetricSummary speedup = exp::rollup(res, "shard_speedup");
        std::printf("\nmulti-process sharding: %.2fx over serial at "
                    "best worker count (mean %.2fx; 1 on a 1-core "
                    "box is expected)\n",
                    speedup.max, speedup.mean);
    }
    if (exp::wantScenario(cli, "BENCH_detect")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_detect"), cli);
        exp::MetricSummary ratio =
            exp::rollup(res, "detect_overhead_ratio");
        exp::MetricSummary on = exp::rollup(res, "on_events_per_sec");
        std::printf("\nonline detection: %.2fx event throughput with "
                    "the bank attached (min %.2fx; 1.0 = free), "
                    "%.0f events/s watched\n",
                    ratio.mean, ratio.min, on.mean);
    }
    if (exp::wantScenario(cli, "BENCH_colstore")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("BENCH_colstore"), cli);
        exp::MetricSummary wr =
            exp::rollup(res, "write_points_per_sec");
        exp::MetricSummary rd =
            exp::rollup(res, "read_records_per_sec");
        exp::MetricSummary rss = exp::rollup(res, "peak_rss_mb");
        std::printf("\ncolumn store: %.0f points/s spilled (max %.0f), "
                    "%.0f records/s read back, peak RSS %.1f MiB\n",
                    wr.mean, wr.max, rd.mean, rss.max);
    }
    return 0;
}
