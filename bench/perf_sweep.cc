/**
 * @file
 * End-to-end sweep-throughput benchmark (scenario "BENCH_sweep", so
 * `--json --out DIR` writes DIR/BENCH_sweep.json).
 *
 * Each outer point runs one complete src/exp sweep — a thread-channel
 * BER grid with real Simulation trials — on an inner SweepRunner pinned
 * to N workers, and reports points/sec and trials/sec. The jobs axis
 * shows how the worker pool scales now that the event kernel, not the
 * allocator, is the bottleneck.
 *
 * Inner trial count scales down via ICH_PERF_SWEEP_TRIALS for CI smoke
 * runs. The outer runner is forced to 1 worker: wall-clock metrics must
 * not contend (the inner pool is what is being measured).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "exp/exp.hh"

using namespace ich;

namespace
{

/** The measured workload: a small but real covert-channel sweep. */
exp::ScenarioSpec
innerSpec(int trials, std::uint64_t seed)
{
    exp::ScenarioSpec inner;
    inner.name = "inner-ber-grid";
    inner.description = "thread-channel BER vs noise (timing payload)";
    inner.axes = {
        exp::axis("noise_events_per_s", {0.0, 1000.0, 5000.0}),
        exp::axis("payload_bits", {16.0, 32.0}),
    };
    inner.trials = trials;
    inner.baseSeed = seed;
    inner.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = ctx.seed;
        cfg.noise.interruptRatePerSec =
            ctx.point.get("noise_events_per_s");
        auto ch = makeChannel(ChannelKind::kThread, cfg);
        TransmitResult r = ch->transmit(bench::lcgPayload(
            static_cast<std::size_t>(ctx.point.get("payload_bits")),
            0xBEEF));
        exp::MetricMap m;
        m["ber"] = r.ber;
        m["throughput_bps"] = r.throughputBps;
        return m;
    };
    return inner;
}

exp::ScenarioRegistry
buildScenarios()
{
    const int inner_trials = static_cast<int>(
        bench::envCount("ICH_PERF_SWEEP_TRIALS", 2));

    exp::ScenarioRegistry reg;
    exp::ScenarioSpec spec;
    spec.name = "BENCH_sweep";
    spec.description = "src/exp sweep throughput (points/sec) vs inner "
                       "worker count";
    spec.axes = {exp::axis("jobs", {1.0, 2.0, 4.0})};
    spec.trials = 2;
    spec.baseSeed = 7;
    spec.run = [=](const exp::TrialContext &ctx) {
        exp::RunnerOptions opts;
        opts.jobs = ctx.point.getInt("jobs");
        exp::SweepRunner runner(opts);
        exp::ScenarioSpec inner = innerSpec(inner_trials, ctx.seed);

        auto t0 = std::chrono::steady_clock::now();
        exp::SweepResult r = runner.run(inner);
        double dt = bench::secondsSince(t0);

        exp::MetricMap m;
        m["points_per_sec"] = static_cast<double>(r.points.size()) / dt;
        m["trials_per_sec"] = static_cast<double>(r.trials.size()) / dt;
        m["sweep_wall_ms"] = dt * 1e3;
        // Sanity tie-in so a broken inner sweep is visible in the JSON.
        m["inner_trials"] = static_cast<double>(r.trials.size());
        return m;
    };
    reg.add(std::move(spec));
    return reg;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ScenarioRegistry reg = buildScenarios();
    exp::CliOptions cli;
    int rc = exp::harnessSetup(argc, argv, reg, cli);
    if (rc >= 0)
        return rc;
    // The inner pool is the subject of measurement; keep the outer serial.
    cli.jobs = 1;

    bench::banner("BENCH_sweep", "end-to-end src/exp sweep throughput");
    exp::SweepResult res = exp::runAndReport(*reg.find("BENCH_sweep"), cli);

    exp::MetricSummary pps = exp::rollup(res, "points_per_sec");
    std::printf("\nsweep throughput: mean %.2f points/s across jobs "
                "settings (max %.2f)\n",
                pps.mean, pps.max);
    return 0;
}
