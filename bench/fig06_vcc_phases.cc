/**
 * @file
 * Figure 6 reproduction: supply-voltage steps as cores enter/leave AVX2
 * phases at a pinned 2 GHz (far below base frequency), with the clock
 * frequency unchanged throughout.
 *
 * (a) Staggered synthetic AVX2 phases on two Coffee Lake cores.
 * (b) A calculix-like workload: alternating non-AVX / auto-vectorized
 *     AVX2 phases on both cores.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "measure/daq.hh"

using namespace ich;

namespace
{

/** Repeated AVX2 kernels spanning [start, end) (keeps hysteresis hot). */
void
addAvx2Phase(Program &p, double start_ms, double end_ms, double freq)
{
    // One kernel ≈ 100 us unthrottled; chain enough to cover the phase.
    double kernel_us = bench::nominalUs(
        makeKernel(InstClass::k256Heavy, 1000, 100), freq);
    int n = static_cast<int>((end_ms - start_ms) * 1000.0 / kernel_us);
    for (int i = 0; i < n; ++i)
        p.loop(InstClass::k256Heavy, 1000, 100);
}

} // namespace

int
main()
{
    bench::banner("Figure 6",
                  "Vcc delta & frequency vs. time, AVX2 phases @2 GHz");

    constexpr double kFreq = 2.0;
    ChipConfig cfg = bench::pinned(presets::coffeeLake(), kFreq);
    cfg.pmu.vr.commandJitter = 0;

    // ---------------- (a) staggered synthetic AVX2 phases -------------
    Simulation sim(cfg, 1);
    Chip &chip = sim.chip();
    double v0 = chip.vccVolts();

    // Core 1: AVX2 in [1, 5) ms. Core 0: AVX2 in [2, 5.3) ms.
    Program p1;
    p1.idle(fromMilliseconds(1.0));
    addAvx2Phase(p1, 1.0, 5.0, kFreq);
    Program p0;
    p0.idle(fromMilliseconds(2.0));
    addAvx2Phase(p0, 2.0, 5.3, kFreq);
    chip.core(1).thread(0).setProgram(std::move(p1));
    chip.core(0).thread(0).setProgram(std::move(p0));

    Daq daq(sim.chip().ticker(), fromMicroseconds(50));
    daq.addChannel("vcc_delta_mV", [&] {
        return (chip.vccVolts() - v0) * 1000.0;
    });
    daq.addChannel("freq_GHz", [&] { return chip.freqGhz(); });
    daq.start(fromMilliseconds(7));

    chip.core(1).thread(0).start();
    chip.core(0).thread(0).start();
    sim.eq().runUntil(fromMilliseconds(7));

    std::printf("(a) two cores, staggered AVX2 phases "
                "(core1: 1-5 ms, core0: 2-5.3 ms)\n");
    Table ta({"t_ms", "Vcc_delta_mV", "freq_GHz"});
    for (double ms : {0.5, 1.5, 2.5, 3.5, 4.5, 5.1, 5.8, 6.2, 6.9}) {
        Time t = fromMilliseconds(ms);
        ta.addRow({Table::fmt(ms, 1),
                   Table::fmt(daq.trace("vcc_delta_mV").valueAt(t), 2),
                   Table::fmt(daq.trace("freq_GHz").valueAt(t), 2)});
    }
    std::printf("%s", ta.toString().c_str());
    std::printf("expected shape: 0 -> ~8 mV (1 core) -> ~16-17 mV "
                "(2 cores) -> ~8 -> 0; frequency flat at 2 GHz\n\n");

    // ------------- (b) calculix-like phased workload -------------------
    Simulation sim_b(cfg, 2);
    Chip &chip_b = sim_b.chip();
    double v0b = chip_b.vccVolts();
    for (int c = 0; c < 2; ++c) {
        Program p;
        for (int rep = 0; rep < 3; ++rep) {
            // non-AVX phase ~1.5 ms, then AVX2 phase ~1.5 ms.
            p.loop(InstClass::kScalar64, 50000, 100);
            addAvx2Phase(p, 0.0, 1.5, kFreq);
        }
        chip_b.core(c).thread(0).setProgram(std::move(p));
    }
    Daq daq_b(sim_b.chip().ticker(), fromMicroseconds(50));
    daq_b.addChannel("vcc_delta_mV", [&] {
        return (chip_b.vccVolts() - v0b) * 1000.0;
    });
    daq_b.addChannel("freq_GHz", [&] { return chip_b.freqGhz(); });
    daq_b.start(fromMilliseconds(10));
    chip_b.core(0).thread(0).start();
    chip_b.core(1).thread(0).start();
    sim_b.eq().runUntil(fromMilliseconds(10));

    const Trace &vb = daq_b.trace("vcc_delta_mV");
    const Trace &fb = daq_b.trace("freq_GHz");
    std::printf("(b) 454.calculix-like alternating non-AVX/AVX2 phases, "
                "2 cores\n");
    std::printf("Vcc delta: min %.2f mV, max %.2f mV (oscillates with "
                "code phases)\n",
                vb.minValue(), vb.maxValue());
    std::printf("frequency: min %.2f GHz, max %.2f GHz (must be flat)\n\n",
                fb.minValue(), fb.maxValue());
    std::printf("Key Conclusion 1: voltage adjusts with the number of "
                "cores running PHIs;\nfrequency is untouched at low "
                "pinned frequency.\n");
    return 0;
}
