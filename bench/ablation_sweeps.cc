/**
 * @file
 * Ablation studies for the design choices DESIGN.md §4 calls out, as
 * declarative scenarios on the exp::SweepRunner (parallel across
 * --jobs workers; see --help for the shared harness flags).
 *
 * A1 — VR slew rate (the PDN knob separating Haswell/MBVR/LDO): how the
 *      thread channel's level separation scales with ramp speed, i.e.
 *      why the §7 LDO mitigation works.
 * A2 — Reset-time vs. transaction period: the hysteresis must fully
 *      decay between transactions; shortening the period below
 *      reset-time + TX + down-ramp corrupts the channel.
 * A3 — Throttle window (1-of-N IDQ delivery): signal magnitude on the
 *      SMT channel scales with N−1/N.
 * A4 — VR command jitter: decode robustness margin.
 * A5 — FEC scheme under heavy OS noise: goodput vs. reliability of the
 *      framed link (§6.3 strategies).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "channels/framing.hh"
#include "exp/exp.hh"

using namespace ich;

namespace
{

ChannelConfig
base(std::uint64_t seed)
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = seed;
    return cfg;
}

exp::ScenarioRegistry
buildScenarios()
{
    exp::ScenarioRegistry reg;

    exp::ScenarioSpec a1;
    a1.name = "a1-vr-slew";
    a1.description =
        "thread-channel level separation vs. VR slew rate (mV/us)";
    a1.axes = {exp::axis("slew_mV_per_us",
                         {0.5, 1.0, 2.5, 10.0, 50.0, 200.0})};
    a1.baseSeed = 61;
    a1.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg = base(ctx.seed);
        cfg.chip.pmu.vr.slewVoltsPerSecond =
            ctx.point.get("slew_mV_per_us") * 1000.0;
        IccThreadCovert ch(cfg);
        exp::MetricMap m;
        m["min_separation_us"] = ch.calibration().minSeparationUs();
        m["ber_40b"] = ch.transmit(bench::lcgPayload(40, 1)).ber;
        return m;
    };
    reg.add(std::move(a1));

    exp::ScenarioSpec a2;
    a2.name = "a2-period";
    a2.description =
        "BER vs. transaction period (reset-time fixed at 650 us)";
    a2.axes = {exp::axis("period_us",
                         {500.0, 620.0, 680.0, 710.0, 800.0})};
    a2.baseSeed = 62;
    a2.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg = base(ctx.seed);
        cfg.period = fromMicroseconds(ctx.point.get("period_us"));
        IccThreadCovert ch(cfg);
        exp::MetricMap m;
        m["rated_bps"] = ch.ratedThroughputBps();
        m["ber_60b"] = ch.transmit(bench::lcgPayload(60, 2)).ber;
        return m;
    };
    reg.add(std::move(a2));

    exp::ScenarioSpec a3;
    a3.name = "a3-throttle-window";
    a3.description =
        "SMT-channel signal vs. IDQ throttle window (1 of N cycles)";
    a3.axes = {exp::axis("window_N", {2.0, 4.0, 8.0})};
    a3.baseSeed = 63;
    a3.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg = base(ctx.seed);
        cfg.chip.core.throttle.windowCycles =
            ctx.point.getInt("window_N");
        IccSMTcovert ch(cfg);
        exp::MetricMap m;
        m["L1_mean_us"] = ch.calibration().meanUs(3);
        m["min_separation_us"] = ch.calibration().minSeparationUs();
        return m;
    };
    reg.add(std::move(a3));

    exp::ScenarioSpec a4;
    a4.name = "a4-cmd-jitter";
    a4.description = "BER vs. VR command jitter (ns)";
    a4.axes = {exp::axis("jitter_ns",
                         {0.0, 200.0, 500.0, 1000.0, 2000.0})};
    a4.baseSeed = 64;
    a4.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg = base(ctx.seed);
        cfg.chip.pmu.vr.commandJitter =
            fromNanoseconds(ctx.point.get("jitter_ns"));
        IccThreadCovert ch(cfg);
        exp::MetricMap m;
        m["ber_80b"] = ch.transmit(bench::lcgPayload(80, 3)).ber;
        return m;
    };
    reg.add(std::move(a4));

    exp::ScenarioSpec a5;
    a5.name = "a5-fec";
    a5.description = "framed link (64-bit frames, 4 attempts) under "
                     "8000 irq/s + 800 ctx/s";
    a5.axes = {exp::axisLabeledValues(
        "fec",
        {{toString(FecScheme::kNone),
          static_cast<double>(FecScheme::kNone)},
         {toString(FecScheme::kHamming74),
          static_cast<double>(FecScheme::kHamming74)},
         {toString(FecScheme::kRepetition3),
          static_cast<double>(FecScheme::kRepetition3)},
         {toString(FecScheme::kRepetition5),
          static_cast<double>(FecScheme::kRepetition5)}})};
    a5.baseSeed = 65;
    a5.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg = base(ctx.seed);
        cfg.noise.interruptRatePerSec = 8000.0;
        cfg.noise.contextSwitchRatePerSec = 800.0;
        IccThreadCovert ch(cfg);
        FramingConfig fcfg;
        fcfg.fec = static_cast<FecScheme>(ctx.point.getInt("fec"));
        FramedLink link(ch, fcfg);
        FramedResult r = link.transfer(bench::lcgPayload(128, 4));
        exp::MetricMap m;
        m["success"] = r.success ? 1.0 : 0.0;
        m["frames_sent"] = static_cast<double>(r.framesSent);
        m["goodput_bps"] = r.goodputBps;
        m["raw_ber"] = r.rawBerObserved;
        return m;
    };
    reg.add(std::move(a5));

    return reg;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ScenarioRegistry reg = buildScenarios();
    exp::CliOptions cli;
    int rc = exp::harnessSetup(argc, argv, reg, cli);
    if (rc >= 0)
        return rc;

    bench::banner("Ablations", "design-choice sensitivity sweeps");

    // Conclusion line per scenario, keyed by name so reordering or
    // inserting scenarios can't mispair table and commentary.
    const std::map<std::string, const char *> commentary = {
        {"a1-vr-slew",
         "-> separation shrinks ~1/slew; LDO-class slew (>=50 mV/us) "
         "pushes levels under the jitter floor (the §7 mitigation)."},
        {"a2-period",
         "-> periods below TX + reset-time + down-ramp leave the "
         "guardband elevated, compressing levels: the 650 us hysteresis "
         "bounds the channel rate."},
        {"a3-throttle-window",
         "-> the sibling's stall scales with (N-1)/N of the ramp time; "
         "the paper's measured N=4 gives 75% starvation."},
        {"a4-cmd-jitter",
         "-> levels are ~1 us apart, so errors appear once jitter "
         "approaches the level spacing."},
        {"a5-fec",
         "-> §6.3: coding + retransmission trades throughput for "
         "reliability; stronger codes need fewer retries."},
    };
    for (const auto &spec : reg.scenarios()) {
        if (!exp::wantScenario(cli, spec.name))
            continue;
        exp::runAndReport(spec, cli);
        auto it = commentary.find(spec.name);
        if (it != commentary.end())
            std::printf("%s\n\n", it->second);
    }
    return 0;
}
