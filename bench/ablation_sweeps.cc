/**
 * @file
 * Ablation studies for the design choices DESIGN.md §4 calls out.
 *
 * A1 — VR slew rate (the PDN knob separating Haswell/MBVR/LDO): how the
 *      thread channel's level separation scales with ramp speed, i.e.
 *      why the §7 LDO mitigation works.
 * A2 — Reset-time vs. transaction period: the hysteresis must fully
 *      decay between transactions; shortening the period below
 *      reset-time + TX + down-ramp corrupts the channel.
 * A3 — Throttle window (1-of-N IDQ delivery): signal magnitude on the
 *      SMT channel scales with N−1/N.
 * A4 — VR command jitter: decode robustness margin.
 * A5 — FEC scheme under heavy OS noise: goodput vs. reliability of the
 *      framed link (§6.3 strategies).
 */

#include <cstdio>

#include "bench_util.hh"
#include "channels/framing.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "common/table.hh"

using namespace ich;

namespace
{

BitVec
payload(std::size_t n, unsigned seed)
{
    BitVec bits;
    unsigned x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    return bits;
}

} // namespace

int
main()
{
    bench::banner("Ablations", "design-choice sensitivity sweeps");

    // ---------------- A1: VR slew rate ---------------------------------
    std::printf("A1: thread-channel level separation vs. VR slew rate\n");
    Table a1({"slew_mV_per_us", "min_separation_us", "BER(40 bits)"});
    for (double slew : {0.5, 1.0, 2.5, 10.0, 50.0, 200.0}) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.chip.pmu.vr.slewVoltsPerSecond = slew * 1000.0;
        cfg.seed = 61;
        IccThreadCovert ch(cfg);
        double sep = ch.calibration().minSeparationUs();
        double ber = ch.transmit(payload(40, 1)).ber;
        a1.addRow({Table::fmt(slew, 1), Table::fmt(sep, 3),
                   Table::fmt(ber, 3)});
    }
    std::printf("%s", a1.toString().c_str());
    std::printf("-> separation shrinks ~1/slew; LDO-class slew "
                "(>=50 mV/us) pushes levels under the jitter floor "
                "(the §7 mitigation).\n\n");

    // ---------------- A2: reset-time vs. period ------------------------
    std::printf("A2: BER vs. transaction period (reset-time fixed at "
                "650 us)\n");
    Table a2({"period_us", "rated_bps", "BER(60 bits)"});
    for (double period_us : {500.0, 620.0, 680.0, 710.0, 800.0}) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.period = fromMicroseconds(period_us);
        cfg.seed = 62;
        IccThreadCovert ch(cfg);
        a2.addRow({Table::fmt(period_us, 0),
                   Table::fmt(ch.ratedThroughputBps(), 0),
                   Table::fmt(ch.transmit(payload(60, 2)).ber, 3)});
    }
    std::printf("%s", a2.toString().c_str());
    std::printf("-> periods below TX + reset-time + down-ramp leave the "
                "guardband elevated, compressing levels: the 650 us "
                "hysteresis bounds the channel rate.\n\n");

    // ---------------- A3: throttle window ------------------------------
    std::printf("A3: SMT-channel signal vs. IDQ throttle window "
                "(deliver 1 of N cycles)\n");
    Table a3({"window_N", "L1_mean_us", "min_separation_us"});
    for (int window : {2, 4, 8}) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.chip.core.throttle.windowCycles = window;
        cfg.seed = 63;
        IccSMTcovert ch(cfg);
        a3.addRow({std::to_string(window),
                   Table::fmt(ch.calibration().meanUs(3), 2),
                   Table::fmt(ch.calibration().minSeparationUs(), 3)});
    }
    std::printf("%s", a3.toString().c_str());
    std::printf("-> the sibling's stall scales with (N-1)/N of the "
                "ramp time; the paper's measured N=4 gives 75%% "
                "starvation.\n\n");

    // ---------------- A4: command jitter -------------------------------
    std::printf("A4: BER vs. VR command jitter\n");
    Table a4({"jitter_ns", "BER(80 bits)"});
    for (double jitter_ns : {0.0, 200.0, 500.0, 1000.0, 2000.0}) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.chip.pmu.vr.commandJitter = fromNanoseconds(jitter_ns);
        cfg.seed = 64;
        IccThreadCovert ch(cfg);
        a4.addRow({Table::fmt(jitter_ns, 0),
                   Table::fmt(ch.transmit(payload(80, 3)).ber, 3)});
    }
    std::printf("%s", a4.toString().c_str());
    std::printf("-> levels are ~1 us apart, so errors appear once "
                "jitter approaches the level spacing.\n\n");

    // ---------------- A5: FEC under heavy noise ------------------------
    std::printf("A5: framed link (64-bit frames, 4 attempts) under "
                "8000 irq/s + 800 ctx/s\n");
    Table a5({"FEC", "success", "frames_sent", "goodput_bps",
              "raw_BER"});
    for (FecScheme fec :
         {FecScheme::kNone, FecScheme::kHamming74,
          FecScheme::kRepetition3, FecScheme::kRepetition5}) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.noise.interruptRatePerSec = 8000.0;
        cfg.noise.contextSwitchRatePerSec = 800.0;
        cfg.seed = 65;
        IccThreadCovert ch(cfg);
        FramingConfig fcfg;
        fcfg.fec = fec;
        FramedLink link(ch, fcfg);
        FramedResult r = link.transfer(payload(128, 4));
        a5.addRow({toString(fec), r.success ? "yes" : "NO",
                   std::to_string(r.framesSent),
                   Table::fmt(r.goodputBps, 0),
                   Table::fmt(r.rawBerObserved, 3)});
    }
    std::printf("%s", a5.toString().c_str());
    std::printf("-> §6.3: coding + retransmission trades throughput for "
                "reliability; stronger codes need fewer retries.\n");
    return 0;
}
