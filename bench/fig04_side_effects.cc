/**
 * @file
 * Figure 4 reproduction: the three throttling side-effects' bar charts.
 *
 * (a) Multi-Throttling-Thread: TP of a 512b_Heavy probe after an Inst0
 *     loop of each class (same hardware thread).
 * (b) Multi-Throttling-SMT: stall window observed by a 64b loop on the
 *     SMT sibling while Inst0 runs.
 * (c) Multi-Throttling-Cores: duration of a 128b_Heavy probe on core 1
 *     while core 0 runs Inst0 concurrently.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

using namespace ich;

namespace
{

constexpr double kFreq = 1.4;

ChipConfig
cfg()
{
    return bench::pinned(presets::cannonLake(), kFreq);
}

double
threadProbeUs(InstClass inst0)
{
    Simulation sim(cfg(), 1);
    HwThread &thr = sim.chip().core(0).thread(0);
    Program p;
    p.loop(inst0, 400, 100);
    p.mark(0);
    p.loop(InstClass::k512Heavy, 100, 100);
    p.mark(1);
    thr.setProgram(std::move(p));
    thr.start();
    sim.run();
    const auto &r = thr.records();
    return toMicroseconds(r.at(1).time - r.at(0).time);
}

double
smtSiblingExcessUs(InstClass inst0)
{
    Simulation sim(cfg(), 1);
    Chip &chip = sim.chip();
    Program tx;
    tx.idle(fromMicroseconds(20));
    tx.loop(inst0, 400, 100);
    double iter_cycles =
        makeKernel(InstClass::kScalar64, 1, 20).cyclesPerIteration();
    double iter_us = iter_cycles * cyclePicos(kFreq) * 1e-6;
    auto iters = static_cast<std::uint64_t>(300.0 / iter_us);
    Program rx;
    rx.loopChunked(InstClass::kScalar64, iters, 200, 0, 20);
    chip.core(0).thread(0).setProgram(std::move(tx));
    chip.core(0).thread(1).setProgram(std::move(rx));
    chip.core(0).thread(1).start();
    chip.core(0).thread(0).start();
    sim.run(fromMilliseconds(2));
    double nominal = 200 * iter_us * 1.001;
    double excess = 0.0;
    const auto &recs = chip.core(0).thread(1).records();
    for (std::size_t i = 1; i < recs.size(); ++i) {
        double chunk = toMicroseconds(recs[i].time - recs[i - 1].time);
        if (chunk > nominal)
            excess += chunk - nominal;
    }
    return excess;
}

double
crossCoreProbeUs(InstClass inst0)
{
    Simulation sim(cfg(), 1);
    Chip &chip = sim.chip();
    Cycles epoch = static_cast<Cycles>(50.0 * chip.config().tscGhz * 1e3);
    Program tx;
    tx.waitUntilTsc(epoch);
    tx.loop(inst0, 400, 100);
    Program rx;
    rx.waitUntilTsc(epoch + static_cast<Cycles>(
                                150.0 * chip.config().tscGhz));
    rx.mark(0);
    rx.loop(InstClass::k128Heavy, 100, 100);
    rx.mark(1);
    chip.core(0).thread(0).setProgram(std::move(tx));
    chip.core(1).thread(0).setProgram(std::move(rx));
    chip.core(0).thread(0).start();
    chip.core(1).thread(0).start();
    sim.run(fromMilliseconds(3));
    const auto &r = chip.core(1).thread(0).records();
    return toMicroseconds(r.at(1).time - r.at(0).time);
}

} // namespace

int
main()
{
    bench::banner("Figure 4",
                  "three multi-throttling side-effects vs. Inst0 class");

    Table t({"Inst0", "(a) same-thread 512bH probe us",
             "(b) SMT sibling stall us", "(c) cross-core 128bH probe us"});
    for (auto cls : kAllInstClasses) {
        t.addRow({toString(cls), Table::fmt(threadProbeUs(cls), 2),
                  Table::fmt(smtSiblingExcessUs(cls), 2),
                  Table::fmt(crossCoreProbeUs(cls), 2)});
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("Shapes to check against the paper:\n"
                " (a) probe TP DECREASES as Inst0 intensity increases\n"
                " (b) sibling stall INCREASES with Inst0 intensity\n"
                " (c) cross-core probe INCREASES with Inst0 intensity\n");
    return 0;
}
