/**
 * @file
 * Figure 2 reproduction: load-line (adaptive voltage positioning) model
 * with multi-level power-virus guardbands.
 *
 * Prints (a) Vccload vs. Icc for a single load-line, and (c) the
 * regulator set points for three virus levels, showing how the guardband
 * keeps Vccload >= Vccmin at each level's worst-case current while
 * respecting Vccmax.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "pdn/loadline.hh"
#include "pmu/guardband.hh"

int
main()
{
    using namespace ich;
    bench::banner("Figure 2", "load-line and multi-level guardbands");

    LoadLine ll(1.9e-3);
    double vccmin = 0.65;
    double vccmax = 1.15;

    std::printf("(a/b) Vccload = Vcc - RLL*Icc  (Vcc = 0.80 V, RLL = "
                "1.9 mOhm)\n");
    Table ta({"Icc_A", "Vccload_V", "droop_mV"});
    for (double icc : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
        ta.addRow({Table::fmt(icc, 0), Table::fmt(ll.vccLoad(0.80, icc), 4),
                   Table::fmt(ll.droop(icc) * 1000.0, 1)});
    }
    std::printf("%s\n", ta.toString().c_str());

    std::printf("(c) Three power-virus levels (1/2/4 active AVX2 cores "
                "at 2 GHz):\n");
    GuardbandModel gb(ll, VfCurve{0.55, 0.10});
    Table tc({"virus_level", "active_cores", "Icc_virus_A", "Vcc_set_V",
              "Vccload_at_virus_V", ">=Vccmin", "<=Vccmax"});
    double cdyn_core = 2.4 + 2.7; // base + AVX2 delta, nF
    for (int cores = 1; cores <= 4; cores *= 2) {
        double icc = cores * (cdyn_core * 1e-9 * 0.77 * 2e9 + 1.0);
        double vcc = ll.requiredVcc(vccmin, icc);
        double vload = ll.vccLoad(vcc, icc);
        tc.addRow({"VirusLevel" + std::to_string(cores == 1   ? 1
                                                 : cores == 2 ? 2
                                                              : 3),
                   std::to_string(cores), Table::fmt(icc, 1),
                   Table::fmt(vcc, 4), Table::fmt(vload, 4),
                   vload >= vccmin - 1e-9 ? "yes" : "NO",
                   vcc <= vccmax ? "yes" : "NO"});
    }
    std::printf("%s\n", tc.toString().c_str());

    std::printf("Guardband steps between levels (Equation 1, 2 GHz):\n");
    Table tg({"transition", "dV_mV"});
    for (int lvl = 1; lvl < gb.numLevels(); ++lvl) {
        tg.addRow({"L" + std::to_string(lvl - 1) + " -> L" +
                       std::to_string(lvl),
                   Table::fmt((gb.gbVolts(lvl, 2.0) -
                               gb.gbVolts(lvl - 1, 2.0)) *
                                  1000.0,
                              2)});
    }
    std::printf("%s", tg.toString().c_str());
    return 0;
}
