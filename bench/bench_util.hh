/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef ICH_BENCH_BENCH_UTIL_HH
#define ICH_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"
#include "chip/simulation.hh"
#include "isa/kernel.hh"

namespace ich
{
namespace bench
{

/**
 * Deterministic LCG-generated payload. One copy here instead of one per
 * harness; @p seed varies the bit pattern between experiments.
 */
inline BitVec
lcgPayload(std::size_t n, unsigned seed)
{
    BitVec bits;
    unsigned x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    return bits;
}


/** Preset pinned at a fixed frequency (the paper's PoC setup). */
inline ChipConfig
pinned(ChipConfig cfg, double freq_ghz)
{
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = freq_ghz;
    return cfg;
}

/** Unthrottled duration of a kernel, µs. */
inline double
nominalUs(const Kernel &k, double freq_ghz)
{
    return k.totalCycles() * cyclePicos(freq_ghz) * 1e-6;
}

/**
 * Throttling-period estimate (µs) of a loop of @p cls started from
 * baseline voltage on core 0 (measured minus unthrottled time; ≈ 3/4 of
 * the raw throttle window — a fixed scale factor).
 */
inline double
throttlePeriodUs(const ChipConfig &cfg, InstClass cls,
                 std::uint64_t iters = 400, std::uint64_t seed = 1,
                 int n_cores = 1)
{
    Simulation sim(cfg, seed);
    for (int c = 0; c < n_cores; ++c) {
        Program p;
        p.mark(0);
        p.loop(cls, iters, 100);
        p.mark(1);
        sim.chip().core(c).thread(0).setProgram(std::move(p));
    }
    for (int c = 0; c < n_cores; ++c)
        sim.chip().core(c).thread(0).start();
    sim.run();
    const auto &recs = sim.chip().core(0).thread(0).records();
    double measured = toMicroseconds(recs.at(1).time - recs.at(0).time);
    double freq = cfg.pmu.governor.userspaceGhz;
    return measured - nominalUs(makeKernel(cls, iters, 100), freq);
}

/** Wall-clock seconds elapsed since @p t0 (perf-harness timing). */
inline double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Unsigned env-var override for perf-harness iteration counts (the CI
 * smoke job shrinks them). Unset, empty, or malformed values — where
 * strtoull yields 0 — fall back to @p fallback, so a typo can never
 * produce a zero-length benchmark.
 */
inline std::uint64_t
envCount(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    std::uint64_t parsed = std::strtoull(v, nullptr, 10);
    return parsed > 0 ? parsed : fallback;
}

/** Banner for a bench harness. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("==========================================================="
                "=====\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("(simulated reproduction; see EXPERIMENTS.md for paper-vs-"
                "measured)\n");
    std::printf("==========================================================="
                "=====\n\n");
}

} // namespace bench
} // namespace ich

#endif // ICH_BENCH_BENCH_UTIL_HH
