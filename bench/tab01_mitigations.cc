/**
 * @file
 * Table 1 reproduction: effectiveness and overhead of the three
 * mitigations against the three IChannels covert channels.
 *
 * Effectiveness is *measured*: a channel counts as mitigated when its
 * calibrated level separation collapses below the measurement jitter
 * (no decodable signal), partially mitigated when separation shrinks by
 * more than 10x.
 */

#include <cstdio>

#include "bench_util.hh"
#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "common/table.hh"
#include "mitigations/mitigations.hh"

using namespace ich;

namespace
{

double
separation(ChannelKind kind, const ChipConfig &chip)
{
    ChannelConfig cfg;
    cfg.chip = chip;
    cfg.seed = 55;
    switch (kind) {
      case ChannelKind::kThread:
        return IccThreadCovert(cfg).calibration().minSeparationUs();
      case ChannelKind::kSmt:
        return IccSMTcovert(cfg).calibration().minSeparationUs();
      case ChannelKind::kCores:
        return IccCoresCovert(cfg).calibration().minSeparationUs();
    }
    return 0.0;
}

std::string
verdict(double baseline_us, double mitigated_us)
{
    if (mitigated_us < 0.25)
        return "mitigated";
    if (mitigated_us < baseline_us / 10.0)
        return "partial";
    return "not mitigated";
}

} // namespace

int
main()
{
    bench::banner("Table 1", "mitigation effectiveness and overhead");

    ChipConfig base = presets::cannonLake();
    const std::array<ChannelKind, 3> kinds = {
        ChannelKind::kThread, ChannelKind::kSmt, ChannelKind::kCores};

    std::array<double, 3> base_sep{};
    for (std::size_t i = 0; i < kinds.size(); ++i)
        base_sep[i] = separation(kinds[i], base);

    struct Mit {
        const char *name;
        ChipConfig cfg;
        std::string overhead;
    };
    std::vector<Mit> mits = {
        {"Per-core VR (LDO)", mitigations::withPerCoreVr(base),
         mitigations::overheadDescription("per-core-vr")},
        {"Improved Throttling", mitigations::withImprovedThrottling(base),
         mitigations::overheadDescription("improved-throttling")},
        {"Secure-Mode", mitigations::withSecureMode(base),
         mitigations::overheadDescription("secure-mode")},
    };

    Table t({"Mitigation", "IccThreadCovert", "IccSMTcovert",
             "IccCoresCovert", "Overhead"});
    t.addRow({"(baseline separation, us)", Table::fmt(base_sep[0], 2),
              Table::fmt(base_sep[1], 2), Table::fmt(base_sep[2], 2),
              "-"});
    for (auto &m : mits) {
        std::vector<std::string> row = {m.name};
        for (std::size_t i = 0; i < kinds.size(); ++i) {
            double sep = separation(kinds[i], m.cfg);
            row.push_back(verdict(base_sep[i], sep) + " (" +
                          Table::fmt(sep, 2) + "us)");
        }
        row.push_back(m.overhead);
        t.addRow(row);
    }
    std::printf("%s\n", t.toString().c_str());

    double avx2 = mitigations::secureModePowerOverheadPct(base, 2.2, 3);
    double avx512 = mitigations::secureModePowerOverheadPct(base, 2.2, 4);
    std::printf("measured secure-mode power overhead: %.1f%% (AVX2 "
                "worst-case) / %.1f%% (AVX-512 worst-case)\n",
                avx2, avx512);
    std::printf("paper: up to 4%% / 11%%.\n\n");
    std::printf("expected verdicts (paper Table 1):\n"
                "  Per-core VR:        partial / partial / mitigated\n"
                "  Improved Throttling: not / mitigated / not\n"
                "  Secure-Mode:        mitigated / mitigated / "
                "mitigated\n");
    return 0;
}
