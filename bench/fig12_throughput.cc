/**
 * @file
 * Figure 12 reproduction: covert-channel throughput comparison.
 *
 * (a) IccThreadCovert vs. NetSpectre (normalized — 2×).
 * (b) IccSMTcovert / IccCoresCovert vs. DFScovert, TurboCC, PowerT
 *     (paper: 145×, 47×, 24×).
 *
 * Every channel transfers a real payload; the reported throughput is
 * payload bits / simulated transfer time, and BER is shown to confirm
 * the channels actually work at that rate.
 */

#include <cstdio>

#include "baselines/dfscovert.hh"
#include "baselines/netspectre.hh"
#include "baselines/powert.hh"
#include "baselines/turbocc.hh"
#include "bench_util.hh"
#include "channels/capacity.hh"
#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "common/table.hh"

using namespace ich;

namespace
{

BitVec
payload(std::size_t n)
{
    BitVec bits;
    unsigned x = 0xC0FFEE;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    return bits;
}

} // namespace

int
main()
{
    bench::banner("Figure 12", "channel capacity vs. state of the art");

    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 99;

    Table t({"channel", "throughput_bps", "BER", "vs IccCores"});

    IccThreadCovert thread_ch(cfg);
    auto r_thread = thread_ch.transmit(payload(64));

    IccSMTcovert smt_ch(cfg);
    auto r_smt = smt_ch.transmit(payload(64));

    IccCoresCovert cores_ch(cfg);
    auto r_cores = cores_ch.transmit(payload(64));
    double ich_bps = r_cores.throughputBps;

    NetSpectre ns(cfg);
    auto r_ns = ns.transmit(payload(32));

    TurboCCConfig tcfg;
    tcfg.chip = presets::cannonLake();
    TurboCC tc(tcfg);
    auto r_tc = tc.transmit(payload(12));

    DfsCovertConfig dcfg;
    dcfg.chip = presets::cannonLake();
    DfsCovert dc(dcfg);
    auto r_dc = dc.transmit(payload(8));

    PowerTConfig pcfg;
    pcfg.chip = presets::cannonLake();
    PowerT pt(pcfg);
    auto r_pt = pt.transmit(payload(16));

    auto row = [&](const char *name, const TransmitResult &r) {
        t.addRow({name, Table::fmt(r.throughputBps, 0),
                  Table::fmt(r.ber, 3),
                  Table::fmt(ich_bps / r.throughputBps, 1) + "x"});
    };
    row("IccThreadCovert", r_thread);
    row("IccSMTcovert", r_smt);
    row("IccCoresCovert", r_cores);
    row("NetSpectre [91]", r_ns);
    row("TurboCC [57]", r_tc);
    row("DFScovert [5]", r_dc);
    row("PowerT [59]", r_pt);
    std::printf("%s", t.toString().c_str());

    // Information-theoretic cross-check ([72] Millen): the measured
    // symbol->TP mutual information supports the full 2 bits/transaction.
    std::printf("\nempirical channel capacity (I(X;Y), uniform input):\n");
    auto mi = [&](CovertChannel &ch) {
        return CapacityEstimator::mutualInformationBits(
            CapacityEstimator::measure(ch, 16), 48);
    };
    std::printf("  IccThreadCovert %.2f bits/txn, IccSMTcovert %.2f, "
                "IccCoresCovert %.2f (max 2.0)\n",
                mi(thread_ch), mi(smt_ch), mi(cores_ch));

    std::printf("\n(a) IccThreadCovert / NetSpectre = %.2fx   "
                "(paper: 2x)\n",
                r_thread.throughputBps / r_ns.throughputBps);
    std::printf("(b) IccCores / DFScovert = %.0fx (paper: 145x), "
                "/ TurboCC = %.0fx (paper: 47x), / PowerT = %.0fx "
                "(paper: 24x)\n",
                ich_bps / r_dc.throughputBps,
                ich_bps / r_tc.throughputBps,
                ich_bps / r_pt.throughputBps);
    return 0;
}
