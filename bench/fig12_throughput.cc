/**
 * @file
 * Figure 12 reproduction: covert-channel throughput comparison, as one
 * declarative channel sweep on the exp::SweepRunner.
 *
 * (a) IccThreadCovert vs. NetSpectre (normalized — 2×).
 * (b) IccSMTcovert / IccCoresCovert vs. DFScovert, TurboCC, PowerT
 *     (paper: 145×, 47×, 24×).
 *
 * Every channel transfers a real payload; the reported throughput is
 * payload bits / simulated transfer time, and BER is shown to confirm
 * the channels actually work at that rate.
 */

#include <cstdio>

#include "baselines/dfscovert.hh"
#include "baselines/netspectre.hh"
#include "baselines/powert.hh"
#include "baselines/turbocc.hh"
#include "bench_util.hh"
#include "channels/capacity.hh"
#include "exp/exp.hh"

using namespace ich;

namespace
{

enum Contender {
    kIccThread,
    kIccSmt,
    kIccCores,
    kNetSpectre,
    kTurboCC,
    kDfsCovert,
    kPowerT,
};

/** One contender transfer: (throughput, BER) for its usual payload. */
exp::MetricMap
runContender(int which, std::uint64_t seed)
{
    TransmitResult r;
    switch (which) {
    case kIccThread: {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = seed;
        r = IccThreadCovert(cfg).transmit(bench::lcgPayload(64, 0xC0FFEE));
        break;
    }
    case kIccSmt: {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = seed;
        r = IccSMTcovert(cfg).transmit(bench::lcgPayload(64, 0xC0FFEE));
        break;
    }
    case kIccCores: {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = seed;
        r = IccCoresCovert(cfg).transmit(bench::lcgPayload(64, 0xC0FFEE));
        break;
    }
    case kNetSpectre: {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = seed;
        r = NetSpectre(cfg).transmit(bench::lcgPayload(32, 0xC0FFEE));
        break;
    }
    case kTurboCC: {
        TurboCCConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = seed;
        r = TurboCC(cfg).transmit(bench::lcgPayload(12, 0xC0FFEE));
        break;
    }
    case kDfsCovert: {
        DfsCovertConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = seed;
        r = DfsCovert(cfg).transmit(bench::lcgPayload(8, 0xC0FFEE));
        break;
    }
    case kPowerT: {
        PowerTConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = seed;
        r = PowerT(cfg).transmit(bench::lcgPayload(16, 0xC0FFEE));
        break;
    }
    }
    exp::MetricMap m;
    m["throughput_bps"] = r.throughputBps;
    m["ber"] = r.ber;
    return m;
}

exp::ScenarioRegistry
buildScenarios()
{
    exp::ScenarioRegistry reg;
    exp::ScenarioSpec fig12;
    fig12.name = "fig12-throughput";
    fig12.description = "channel capacity vs. state of the art";
    fig12.axes = {exp::axisLabeledValues(
        "channel", {{"IccThreadCovert", kIccThread},
                    {"IccSMTcovert", kIccSmt},
                    {"IccCoresCovert", kIccCores},
                    {"NetSpectre [91]", kNetSpectre},
                    {"TurboCC [57]", kTurboCC},
                    {"DFScovert [5]", kDfsCovert},
                    {"PowerT [59]", kPowerT}})};
    fig12.baseSeed = 99;
    fig12.run = [](const exp::TrialContext &ctx) {
        return runContender(ctx.point.getInt("channel"), ctx.seed);
    };
    reg.add(std::move(fig12));
    return reg;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ScenarioRegistry reg = buildScenarios();
    exp::CliOptions cli;
    int rc = exp::harnessSetup(argc, argv, reg, cli);
    if (rc >= 0)
        return rc;

    bench::banner("Figure 12", "channel capacity vs. state of the art");

    exp::SweepResult res =
        exp::runAndReport(*reg.find("fig12-throughput"), cli);

    // Look up by the contender id stored in the grid point, so the
    // epilogue stays correct if the axis list is ever reordered.
    auto bps = [&](int which) {
        for (const auto &pa : res.aggregates)
            if (pa.point.getInt("channel") == which)
                return pa.metrics.at("throughput_bps").mean;
        throw std::out_of_range("fig12: no contender " +
                                std::to_string(which));
    };
    double ich_bps = bps(kIccCores);

    std::printf("speedup vs IccCoresCovert:\n");
    for (const auto &pa : res.aggregates) {
        std::printf("  %-18s %6.1fx\n",
                    pa.point.label("channel").c_str(),
                    ich_bps / pa.metrics.at("throughput_bps").mean);
    }

    // Information-theoretic cross-check ([72] Millen): the measured
    // symbol->TP mutual information supports the full 2 bits/transaction.
    // Live simulation, not a report — skipped when re-rendering from a
    // prior run's column store.
    if (!cli.renderFrom.empty())
        return 0;
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 99;
    IccThreadCovert thread_ch(cfg);
    IccSMTcovert smt_ch(cfg);
    IccCoresCovert cores_ch(cfg);
    auto mi = [&](CovertChannel &ch) {
        return CapacityEstimator::mutualInformationBits(
            CapacityEstimator::measure(ch, 16), 48);
    };
    std::printf("\nempirical channel capacity (I(X;Y), uniform input):\n");
    std::printf("  IccThreadCovert %.2f bits/txn, IccSMTcovert %.2f, "
                "IccCoresCovert %.2f (max 2.0)\n",
                mi(thread_ch), mi(smt_ch), mi(cores_ch));

    std::printf("\n(a) IccThreadCovert / NetSpectre = %.2fx   "
                "(paper: 2x)\n",
                bps(kIccThread) / bps(kNetSpectre));
    std::printf("(b) IccCores / DFScovert = %.0fx (paper: 145x), "
                "/ TurboCC = %.0fx (paper: 47x), / PowerT = %.0fx "
                "(paper: 24x)\n",
                ich_bps / bps(kDfsCovert), ich_bps / bps(kTurboCC),
                ich_bps / bps(kPowerT));
    return 0;
}
