/**
 * @file
 * Detector-vs-attacker ROC campaigns on the server preset — the arms
 * race ROADMAP item 4 asked for, as two declarative sweeps:
 *
 *  - roc-detect: N-tenant co-residency grid with the attacker present
 *    or absent at each (honest-rate, tenant-count) point. Every trial
 *    reports each detector's threshold-free peak score; the epilogue
 *    thresholds those scores post-hoc into per-detector ROC curves
 *    (TPR/FPR monotone in the threshold by construction, since one
 *    simulated trial serves every operating point) and their AUC.
 *
 *  - roc-frontier: the adaptive attacker. For a sweep of detector
 *    score budgets, bisect the duty cycle to the fastest channel that
 *    stays under the budget — the capacity-vs-detectability frontier.
 *
 * Harness flags (before the standard exp/ CLI):
 *
 *   --quick   CI-sized grids (fewer axis values, shorter payloads)
 *
 * Post-hoc re-rendering: run once with --stream (or --resume), then
 * re-render reports *and* the ROC epilogue from the column store with
 * `roc_detect --render-from DIR roc-detect` — no re-simulation; the
 * epilogue reads per-trial scores back through ColumnStoreReader.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "detect/tenant.hh"
#include "exp/exp.hh"

using namespace ich;

namespace
{

struct RocOptions {
    bool quick = false;
    int payloadBits() const { return quick ? 32 : 64; }
    int trials() const { return quick ? 2 : 3; }
    std::vector<double> honestRates() const
    {
        return quick ? std::vector<double>{2000.0}
                     : std::vector<double>{500.0, 2000.0, 8000.0};
    }
    std::vector<double> tenantCounts() const
    {
        return quick ? std::vector<double>{4.0}
                     : std::vector<double>{2.0, 6.0};
    }
    std::vector<double> budgets() const
    {
        return quick ? std::vector<double>{0.15}
                     : std::vector<double>{0.05, 0.10, 0.15, 0.20};
    }
    int frontierIters() const { return quick ? 3 : 5; }
};

detect::TenantConfig
tenantConfigFor(const exp::TrialContext &ctx, const RocOptions &opts)
{
    detect::TenantConfig cfg;
    cfg.seed = ctx.seed;
    cfg.payloadBits = opts.payloadBits();
    cfg.honestTenants = ctx.point.getInt("tenants");
    cfg.honestPhiRatePerSec = ctx.point.get("honest_rate");
    return cfg;
}

exp::ScenarioRegistry
buildScenarios(const RocOptions &opts)
{
    exp::ScenarioRegistry reg;

    exp::ScenarioSpec roc;
    roc.name = "roc-detect";
    roc.description =
        "detector scores: attacker-present vs honest co-residency";
    roc.axes = {
        exp::axisLabeledValues("attacker",
                               {{"honest", 0.0}, {"attacker", 1.0}}),
        exp::axis("honest_rate", opts.honestRates()),
        exp::axis("tenants", opts.tenantCounts()),
    };
    roc.trials = opts.trials();
    roc.baseSeed = 42;
    roc.run = [opts](const exp::TrialContext &ctx) {
        detect::TenantConfig cfg = tenantConfigFor(ctx, opts);
        cfg.attackerPresent = ctx.point.getInt("attacker") == 1;
        return detect::runTenantTrial(cfg).metrics;
    };
    reg.add(std::move(roc));

    exp::ScenarioSpec frontier;
    frontier.name = "roc-frontier";
    frontier.description =
        "adaptive attacker: capacity vs sketch-score budget";
    frontier.axes = {exp::axis("budget", opts.budgets())};
    frontier.trials = 1;
    frontier.baseSeed = 43;
    frontier.run = [opts](const exp::TrialContext &ctx) {
        detect::TenantConfig base;
        base.seed = ctx.seed;
        base.payloadBits = opts.payloadBits();
        detect::FrontierPoint p = detect::adaptiveDutySearch(
            base, "sketch", ctx.point.get("budget"),
            opts.frontierIters());
        exp::MetricMap m;
        m["duty"] = p.duty;
        m["score"] = p.score;
        m["throughput_bps"] = p.throughputBps;
        m["ber"] = p.ber;
        m["feasible"] = p.feasible ? 1.0 : 0.0;
        return m;
    };
    reg.add(std::move(frontier));

    return reg;
}

/** One trial's peak score with its ground-truth label. */
struct ScoreSample {
    double score;
    bool attacker;
};

/**
 * Per-trial scores for @p metric, labeled by the point's attacker
 * axis. Prefers the materialized trials; falls back to the column
 * store (the --stream and --render-from paths), so the ROC epilogue
 * never needs a re-simulation once a store exists.
 */
std::vector<ScoreSample>
collectScores(const exp::SweepResult &res, const exp::CliOptions &cli,
              const std::string &metric)
{
    std::vector<ScoreSample> out;
    auto fold = [&](const exp::TrialRecord &rec) {
        auto it = rec.metrics.find(metric);
        if (it == rec.metrics.end())
            return;
        bool attacker =
            res.points.at(rec.pointIndex).getInt("attacker") == 1;
        out.push_back({it->second, attacker});
    };
    if (!res.trials.empty()) {
        for (const auto &rec : res.trials)
            fold(rec);
        return out;
    }
    const std::string dir =
        cli.renderFrom.empty() ? cli.outDir : cli.renderFrom;
    exp::ColumnStoreReader reader(
        exp::resultStorePath(dir, res.scenario));
    reader.forEachPoint([&](std::size_t,
                            const std::vector<exp::TrialRecord> &recs) {
        for (const auto &rec : recs)
            fold(rec);
    });
    return out;
}

/** One ROC operating point. */
struct RocPoint {
    double threshold;
    double tpr;
    double fpr;
};

/**
 * Threshold the peak scores post-hoc: one ROC point per distinct
 * score, descending — TPR and FPR are non-decreasing along the curve
 * by construction.
 */
std::vector<RocPoint>
rocCurve(const std::vector<ScoreSample> &samples)
{
    std::vector<double> thresholds;
    for (const auto &s : samples)
        thresholds.push_back(s.score);
    std::sort(thresholds.begin(), thresholds.end(),
              std::greater<double>());
    thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                     thresholds.end());

    double n_pos = 0, n_neg = 0;
    for (const auto &s : samples)
        (s.attacker ? n_pos : n_neg) += 1.0;

    std::vector<RocPoint> curve;
    for (double t : thresholds) {
        double tp = 0, fp = 0;
        for (const auto &s : samples) {
            if (s.score >= t)
                (s.attacker ? tp : fp) += 1.0;
        }
        curve.push_back({t, n_pos > 0 ? tp / n_pos : 0.0,
                         n_neg > 0 ? fp / n_neg : 0.0});
    }
    return curve;
}

/** Mann-Whitney AUC: P(attacker score > honest score) + ties/2. */
double
auc(const std::vector<ScoreSample> &samples)
{
    double wins = 0, pairs = 0;
    for (const auto &a : samples) {
        if (!a.attacker)
            continue;
        for (const auto &b : samples) {
            if (b.attacker)
                continue;
            pairs += 1.0;
            if (a.score > b.score)
                wins += 1.0;
            else if (a.score == b.score)
                wins += 0.5;
        }
    }
    return pairs > 0 ? wins / pairs : 0.0;
}

/** Render the per-detector ROC epilogue; returns the best AUC. */
double
rocEpilogue(const exp::SweepResult &res, const exp::CliOptions &cli)
{
    const char *detectors[] = {"sketch", "cusum", "duty"};
    double best = 0.0;
    std::printf("ROC (thresholding det_*_score post-hoc; one sim per "
                "trial serves every threshold):\n");
    for (const char *d : detectors) {
        std::vector<ScoreSample> samples =
            collectScores(res, cli, std::string("det_") + d + "_score");
        if (samples.empty())
            continue;
        std::vector<RocPoint> curve = rocCurve(samples);
        bool monotone = true;
        for (std::size_t i = 1; i < curve.size(); ++i)
            if (curve[i].tpr < curve[i - 1].tpr ||
                curve[i].fpr < curve[i - 1].fpr)
                monotone = false;
        double a = auc(samples);
        best = std::max(best, a);
        std::printf("  %-6s AUC %.3f  monotone %s  curve:", d, a,
                    monotone ? "yes" : "NO");
        // Print up to 6 operating points spread over the curve.
        std::size_t step = std::max<std::size_t>(1, curve.size() / 6);
        for (std::size_t i = 0; i < curve.size(); i += step)
            std::printf(" (t=%.3g tpr=%.2f fpr=%.2f)", curve[i].threshold,
                        curve[i].tpr, curve[i].fpr);
        std::printf("\n");
        if (!monotone) {
            std::fprintf(stderr,
                         "error: %s ROC is not monotone in the "
                         "threshold\n",
                         d);
            std::exit(1);
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-specific flags before the standard CLI.
    RocOptions opts;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--quick") == 0)
            opts.quick = true;
        else
            args.push_back(argv[i]);
    }

    exp::ScenarioRegistry reg = buildScenarios(opts);
    exp::CliOptions cli;
    int rc = exp::harnessSetup(static_cast<int>(args.size()),
                               args.data(), reg, cli);
    if (rc >= 0)
        return rc;
    if (opts.quick)
        cli.shardWorkerArgs = {"--quick"};

    bench::banner("ROC campaigns",
                  "online detection vs the IChannels attacker");

    if (exp::wantScenario(cli, "roc-detect")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("roc-detect"), cli);
        double best = rocEpilogue(res, cli);
        std::printf("best detector AUC: %.3f\n\n", best);
        if (best < 0.55) {
            std::fprintf(stderr,
                         "error: no detector separates attacker-present "
                         "from honest noise (best AUC %.3f)\n",
                         best);
            return 1;
        }
    }

    if (exp::wantScenario(cli, "roc-frontier")) {
        exp::SweepResult res =
            exp::runAndReport(*reg.find("roc-frontier"), cli);
        std::printf("capacity-vs-detectability frontier (sketch "
                    "budget -> fastest sub-threshold channel):\n");
        for (const auto &pa : res.aggregates) {
            std::printf("  budget %.2f: duty %.3f  %.0f bps  ber %.3f  "
                        "score %.3f  %s\n",
                        pa.point.get("budget"),
                        pa.metrics.at("duty").mean,
                        pa.metrics.at("throughput_bps").mean,
                        pa.metrics.at("ber").mean,
                        pa.metrics.at("score").mean,
                        pa.metrics.at("feasible").mean > 0.0
                            ? "feasible"
                            : "INFEASIBLE");
        }
        std::printf("\n");
    }
    return 0;
}
