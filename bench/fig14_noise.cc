/**
 * @file
 * Figure 14 reproduction: channel accuracy under system noise, as three
 * declarative sweeps on the exp::SweepRunner.
 *
 * (a) BER vs. interrupt / context-switch rate (1..10,000 events/s).
 * (b) Error matrix: which (App-PHI level, IChannels level) pairs decode
 *     incorrectly — errors when the app's level exceeds the channel's.
 * (c) BER vs. concurrent App-PHI injection rate (10..10,000 /s).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "exp/exp.hh"

using namespace ich;

namespace
{

ChannelConfig
base(std::uint64_t seed)
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = seed;
    return cfg;
}

exp::ScenarioRegistry
buildScenarios()
{
    exp::ScenarioRegistry reg;

    exp::ScenarioSpec a;
    a.name = "fig14a-system-noise";
    a.description = "BER vs. system-event rate (160-bit payloads)";
    a.axes = {
        exp::axisLabeled("noise_type", {"interrupts", "ctx_switches"}),
        exp::axis("events_per_s",
                  {1.0, 10.0, 100.0, 1000.0, 10000.0}),
    };
    a.baseSeed = 77;
    a.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg = base(ctx.seed);
        double rate = ctx.point.get("events_per_s");
        unsigned payload_seed;
        if (ctx.point.getInt("noise_type") == 0) {
            cfg.noise.interruptRatePerSec = rate;
            payload_seed = 1;
        } else {
            cfg.noise.contextSwitchRatePerSec = rate;
            payload_seed = 2;
        }
        IccThreadCovert ch(cfg);
        exp::MetricMap m;
        m["ber"] = ch.transmit(bench::lcgPayload(160, payload_seed)).ber;
        return m;
    };
    reg.add(std::move(a));

    exp::ScenarioSpec b;
    b.name = "fig14b-error-matrix";
    b.description = "decode errors per (App-PHI level, IChannels level)";
    // Axes derived from kNumSymbols: symbol s is power level L(N-s),
    // encoding the 2-bit Gray-ish labels the paper uses (L4(00)..L1(11)).
    std::vector<std::pair<std::string, double>> app_levels;
    std::vector<std::pair<std::string, double>> ich_levels;
    for (int s = 0; s < kNumSymbols; ++s) {
        std::string level = "L" + std::to_string(kNumSymbols - s);
        app_levels.push_back({level, static_cast<double>(s)});
        std::string bits = std::string(1, '0' + ((s >> 1) & 1)) +
                           std::string(1, '0' + (s & 1));
        ich_levels.push_back({level + "(" + bits + ")",
                              static_cast<double>(s)});
    }
    b.axes = {
        exp::axisLabeledValues("app_level", app_levels),
        exp::axisLabeledValues("ich_level", ich_levels),
    };
    b.baseSeed = 77;
    SymbolMap map = symbolMapFor(presets::cannonLake());
    b.run = [map](const exp::TrialContext &ctx) {
        // Exactly one app PHI of a fixed level collides with each
        // transaction while the channel sends one fixed symbol.
        ChannelConfig cfg = base(ctx.seed);
        cfg.burst.enabled = true;
        cfg.burst.cls =
            map.symbolClasses[ctx.point.getInt("app_level")];
        IccThreadCovert ch(cfg);
        int ich_s = ctx.point.getInt("ich_level");
        std::vector<int> symbols(12, ich_s);
        std::vector<double> tp = ch.runSymbols(symbols, true);
        std::size_t errors = 0;
        for (double v : tp)
            if (ch.calibration().decode(v) != ich_s)
                ++errors;
        exp::MetricMap m;
        m["err_frac"] =
            static_cast<double>(errors) / static_cast<double>(tp.size());
        return m;
    };
    reg.add(std::move(b));

    exp::ScenarioSpec c;
    c.name = "fig14c-app-phi";
    c.description = "BER vs. App-PHI injection rate (random levels)";
    c.axes = {exp::axis("app_phis_per_s",
                        {10.0, 100.0, 1000.0, 10000.0})};
    c.baseSeed = 77;
    c.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg = base(ctx.seed);
        cfg.app.phiRatePerSec = ctx.point.get("app_phis_per_s");
        IccThreadCovert ch(cfg);
        exp::MetricMap m;
        m["ber"] = ch.transmit(bench::lcgPayload(160, 3)).ber;
        return m;
    };
    reg.add(std::move(c));

    return reg;
}

/** Render fig14b's flat sweep back into the paper's matrix shape. */
void
printErrorMatrix(const exp::SweepResult &res)
{
    // Cartesian order: app_level outermost, ich_level fastest; column
    // headers come from the first row's ich_level labels.
    std::vector<std::string> header = {"App-PHI \\ ICh-PHI"};
    for (int ich_s = 0; ich_s < kNumSymbols; ++ich_s)
        header.push_back(res.aggregates.at(ich_s).point.label("ich_level"));
    Table tb(header);
    for (int app_s = 0; app_s < kNumSymbols; ++app_s) {
        std::vector<std::string> row;
        for (int ich_s = 0; ich_s < kNumSymbols; ++ich_s) {
            const auto &pa = res.aggregates.at(
                static_cast<std::size_t>(app_s) * kNumSymbols + ich_s);
            if (ich_s == 0)
                row.push_back(pa.point.label("app_level"));
            row.push_back(pa.metrics.at("err_frac").mean > 0.25 ? "ERR"
                                                                : "ok");
        }
        tb.addRow(row);
    }
    std::printf("%s", tb.toString().c_str());
    std::printf("expected shape: errors (red cells in the paper) "
                "exactly where App level > ICh level.\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ScenarioRegistry reg = buildScenarios();
    exp::CliOptions cli;
    int rc = exp::harnessSetup(argc, argv, reg, cli);
    if (rc >= 0)
        return rc;

    bench::banner("Figure 14", "bit-error rate under system noise");

    if (exp::wantScenario(cli, "fig14a-system-noise")) {
        exp::runAndReport(*reg.find("fig14a-system-noise"), cli);
        std::printf("expected shape: BER low (<~0.08) even at 10^4 "
                    "events/s — the decode window is only microseconds "
                    "(§6.3).\n\n");
    }
    if (exp::wantScenario(cli, "fig14b-error-matrix")) {
        exp::SweepResult rb =
            exp::runAndReport(*reg.find("fig14b-error-matrix"), cli);
        printErrorMatrix(rb);
    }
    if (exp::wantScenario(cli, "fig14c-app-phi")) {
        exp::runAndReport(*reg.find("fig14c-app-phi"), cli);
        std::printf("expected shape: BER grows significantly with the "
                    "App-PHI rate (Fig. 14c).\n");
    }
    return 0;
}
