/**
 * @file
 * Figure 14 reproduction: channel accuracy under system noise.
 *
 * (a) BER vs. interrupt / context-switch rate (1..10,000 events/s).
 * (b) Error matrix: which (App-PHI level, IChannels level) pairs decode
 *     incorrectly — errors when the app's level exceeds the channel's.
 * (c) BER vs. concurrent App-PHI injection rate (10..10,000 /s).
 */

#include <cstdio>

#include "bench_util.hh"
#include "channels/thread_channel.hh"
#include "common/table.hh"

using namespace ich;

namespace
{

BitVec
payload(std::size_t n, unsigned seed)
{
    BitVec bits;
    unsigned x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    return bits;
}

ChannelConfig
base()
{
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.seed = 77;
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Figure 14", "bit-error rate under system noise");

    // ------------------------------ (a) -------------------------------
    std::printf("(a) BER vs. system-event rate (160-bit payloads)\n");
    Table ta({"events_per_s", "BER_interrupts", "BER_ctx_switches"});
    for (double rate : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
        ChannelConfig ci = base();
        ci.noise.interruptRatePerSec = rate;
        IccThreadCovert chi(ci);
        double ber_i = chi.transmit(payload(160, 1)).ber;

        ChannelConfig cc = base();
        cc.noise.contextSwitchRatePerSec = rate;
        IccThreadCovert chc(cc);
        double ber_c = chc.transmit(payload(160, 2)).ber;

        ta.addRow({Table::fmt(rate, 0), Table::fmt(ber_i, 4),
                   Table::fmt(ber_c, 4)});
    }
    std::printf("%s", ta.toString().c_str());
    std::printf("expected shape: BER low (<~0.08) even at 10^4 events/s "
                "— the decode window is only microseconds (§6.3).\n\n");

    // ------------------------------ (b) -------------------------------
    std::printf("(b) error matrix: App-PHI level vs. IChannels level\n");
    Table tb({"App-PHI \\ ICh-PHI", "L4(00)", "L3(01)", "L2(10)",
              "L1(11)"});
    SymbolMap map = symbolMapFor(presets::cannonLake());
    for (int app_s = 0; app_s < kNumSymbols; ++app_s) {
        std::vector<std::string> row = {
            "L" + std::to_string(4 - app_s)};
        for (int ich_s = 0; ich_s < kNumSymbols; ++ich_s) {
            // Exactly one app PHI of a fixed level collides with each
            // transaction while the channel sends one fixed symbol.
            ChannelConfig cfg = base();
            cfg.burst.enabled = true;
            cfg.burst.cls = map.symbolClasses[app_s];
            IccThreadCovert ch(cfg);
            std::vector<int> symbols(12, ich_s);
            std::vector<double> tp = ch.runSymbols(symbols, true);
            std::size_t errors = 0;
            for (double v : tp)
                if (ch.calibration().decode(v) != ich_s)
                    ++errors;
            row.push_back(errors > symbols.size() / 4 ? "ERR" : "ok");
        }
        tb.addRow(row);
    }
    std::printf("%s", tb.toString().c_str());
    std::printf("expected shape: errors (red cells in the paper) "
                "exactly where App level > ICh level.\n\n");

    // ------------------------------ (c) -------------------------------
    std::printf("(c) BER vs. App-PHI injection rate (random levels)\n");
    Table tc({"app_phis_per_s", "BER"});
    for (double rate : {10.0, 100.0, 1000.0, 10000.0}) {
        ChannelConfig cfg = base();
        cfg.app.phiRatePerSec = rate;
        IccThreadCovert ch(cfg);
        tc.addRow({Table::fmt(rate, 0),
                   Table::fmt(ch.transmit(payload(160, 3)).ber, 4)});
    }
    std::printf("%s", tc.toString().c_str());
    std::printf("expected shape: BER grows significantly with the "
                "App-PHI rate (Fig. 14c).\n");
    return 0;
}
