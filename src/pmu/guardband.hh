/**
 * @file
 * Adaptive voltage guardband model (paper §2, Equation 1).
 *
 * The processor defines multiple power-virus levels by the maximum dynamic
 * capacitance the current architectural state can draw. Moving to a higher
 * level adds a guardband ΔV = ΔCdyn · Vcc · F · RLL on top of the V/F
 * curve's base voltage. Guardbands are additive across cores because all
 * cores share one rail (Fig. 6: +8 mV, then +9 mV more as a second core
 * starts AVX2).
 */

#ifndef ICH_PMU_GUARDBAND_HH
#define ICH_PMU_GUARDBAND_HH

#include <vector>

#include "isa/inst_class.hh"
#include "pdn/loadline.hh"

namespace ich
{

/** Linear voltage/frequency operating curve: V(f) = v0 + k·f. */
struct VfCurve {
    double v0Volts = 0.55;
    double voltsPerGhz = 0.10;

    double
    volts(double freq_ghz) const
    {
        return v0Volts + voltsPerGhz * freq_ghz;
    }
};

/**
 * Maps guardband levels (0..4, from InstTraits) to voltage guardbands.
 */
class GuardbandModel
{
  public:
    GuardbandModel(const LoadLine &ll, const VfCurve &vf);

    /** Largest ΔCdyn (nF) among classes at @p level. */
    double levelCdynNf(int level) const;

    /**
     * Guardband voltage for one core at @p level when the rail sits at
     * the base voltage for @p freq_ghz (Equation 1).
     */
    double gbVolts(int level, double freq_ghz) const;

    /** Base (no-PHI) voltage at @p freq_ghz. */
    double baseVolts(double freq_ghz) const { return vf_.volts(freq_ghz); }

    /** Number of levels (5 for the modeled ISA). */
    int numLevels() const { return static_cast<int>(cdynNf_.size()); }

    const VfCurve &vfCurve() const { return vf_; }
    const LoadLine &loadLine() const { return ll_; }

  private:
    LoadLine ll_;
    VfCurve vf_;
    std::vector<double> cdynNf_; // per level, nF
};

} // namespace ich

#endif // ICH_PMU_GUARDBAND_HH
