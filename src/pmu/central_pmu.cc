#include "pmu/central_pmu.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "state/snapshot.hh"

namespace ich
{

namespace
{
constexpr double kGhzEps = 1e-6;
} // namespace

CentralPmu::CentralPmu(EventQueue &eq, Rng &rng, Ticker &ticker,
                       const PmuConfig &cfg, PmuHooks &hooks)
    : eq_(eq), rng_(rng), ticker_(ticker), cfg_(cfg), hooks_(hooks),
      gbModel_(LoadLine(cfg.rllOhm), cfg.vf),
      powerModel_(gbModel_, cfg.leakagePerCoreAmps, hooks.numCores()),
      governor_(cfg.governor)
{
    coreState_.assign(hooks_.numCores(), CoreState{});
    governorEval_.pmu = this;
    if (cfg_.governor.evalInterval > 0)
        ticker_.add(governorEval_,
                    TickRate{cfg_.governor.evalInterval, 0, 0});

    // Initial frequency: governor request clipped by limits at idle.
    double desired = governor_.requestGhz(cfg_.pstate.minGhz,
                                          cfg_.pstate.binsGhz.back());
    desired = snapDownToBin(desired, cfg_.pstate.binsGhz);
    std::vector<CoreActivity> idle(hooks_.numCores());
    if (cfg_.secureMode) {
        int top = gbModel_.numLevels() - 1;
        for (auto &a : idle)
            a.gbLevel = top;
        for (auto &cs : coreState_) {
            cs.granted = top;
            cs.pending = top;
        }
    }
    double limit = powerModel_.maxFreqGhz(idle, cfg_.limits,
                                          cfg_.pstate.binsGhz);
    freqGhz_ = std::min(desired, limit);

    // One VR/SVID per domain, initialized at the target for the initial
    // frequency (in secure mode this already includes the worst-case
    // guardband for every core).
    // Rails come up already settled at the initial operating point
    // (computeDomainTarget only needs coreState_ and the models).
    int domains = cfg_.perCoreVr ? hooks_.numCores() : 1;
    for (int d = 0; d < domains; ++d) {
        vrs_.push_back(std::make_unique<VoltageRegulator>(
            eq_, cfg_.vr, computeDomainTarget(d),
            "vr" + std::to_string(d), &rng_));
        svids_.push_back(std::make_unique<Svid>(eq_, *vrs_.back()));
    }

    powerLimiter_ = std::make_unique<PowerLimiter>(
        ticker_, cfg_.powerLimit, cfg_.pstate.binsGhz,
        [this] { return averagePowerSinceProbe(); },
        [this] { reevaluateFreq(); },
        [this] {
            // Highest bin whose projected power at the instantaneous
            // activity fits the budget.
            auto act = activityWithLevels();
            const auto &bins = cfg_.pstate.binsGhz;
            for (auto it = bins.rbegin(); it != bins.rend(); ++it)
                if (powerModel_.powerWatts(*it, act) <=
                    cfg_.powerLimit.limitWatts)
                    return *it;
            return bins.front();
        });
}

CentralPmu::~CentralPmu()
{
    if (cfg_.governor.evalInterval > 0)
        ticker_.remove(governorEval_);
}

int
CentralPmu::effectiveLevel(const CoreState &cs) const
{
    return std::max(cs.granted, cs.pending);
}

int
CentralPmu::maxLevelAllCores() const
{
    int lvl = 0;
    for (const auto &cs : coreState_)
        lvl = std::max(lvl, cs.licenseLevel);
    return lvl;
}

double
CentralPmu::computeDomainTarget(int domain) const
{
    double v = gbModel_.baseVolts(freqGhz_);
    for (CoreId c = 0; c < hooks_.numCores(); ++c) {
        if (domainOf(c) != domain)
            continue;
        v += gbModel_.gbVolts(effectiveLevel(coreState_[c]), freqGhz_);
    }
    return v;
}

std::vector<CoreActivity>
CentralPmu::activityWithLevels() const
{
    std::vector<CoreActivity> act = hooks_.coreActivity();
    for (CoreId c = 0;
         c < std::min<CoreId>(act.size(), coreState_.size()); ++c)
        act[c].gbLevel = effectiveLevel(coreState_[c]);
    return act;
}

double
CentralPmu::voltsDomain(int domain) const
{
    return vrs_.at(domain)->volts();
}

double
CentralPmu::iccAmps() const
{
    return powerModel_.iccAmps(freqGhz_, volts(), hooks_.coreActivity());
}

double
CentralPmu::powerWatts() const
{
    return volts() * iccAmps();
}

int
CentralPmu::grantedLevel(CoreId core) const
{
    return coreState_.at(core).granted;
}

void
CentralPmu::onPhiStart(CoreId core, int smt, InstClass cls)
{
    accrueEnergy();
    auto &cs = coreState_.at(core);
    int lvl = traits(cls).guardbandLevel;
    if (isPhi(cls)) {
        cs.lastPhi = eq_.now();
        cs.licenseLevel = std::max(cs.licenseLevel, lvl);
        scheduleDecay(core);
    }
    // In secure mode the rail is pinned at the worst-case guardband, so
    // no transition / throttle — but the turbo license still reacts.
    if (!cfg_.secureMode && lvl > effectiveLevel(cs)) {
        ++voltageRequests_;
        cs.pending = lvl;
        if (!cs.throttledForV) {
            cs.throttledForV = true;
            hooks_.assertCoreThrottle(core, ThrottleReason::kVoltageRamp,
                                      smt);
        }
        submitUpTransition(core, lvl, domainOf(core));
    }
    reevaluateFreq();
}

void
CentralPmu::submitUpTransition(CoreId core, int lvl, int domain)
{
    double target = computeDomainTarget(domain);
    svids_[domain]->submit(
        target, /*is_increase=*/true, [this, core, lvl, domain] {
            auto &cs = coreState_.at(core);
            cs.granted = std::max(cs.granted, lvl);
            if (cs.pending <= cs.granted)
                cs.pending = cs.granted;
            if (svids_[domain]->upTransitionsInFlight() == 0)
                releaseDomainThrottles(domain);
        });
}

void
CentralPmu::releaseDomainThrottles(int domain)
{
    for (CoreId c = 0; c < hooks_.numCores(); ++c) {
        if (domainOf(c) != domain)
            continue;
        auto &cs = coreState_[c];
        if (cs.throttledForV) {
            cs.throttledForV = false;
            hooks_.deassertCoreThrottle(c, ThrottleReason::kVoltageRamp);
        }
    }
}

void
CentralPmu::onKernelEnd(CoreId core, int smt, InstClass cls)
{
    (void)smt;
    auto &cs = coreState_.at(core);
    if (isPhi(cls)) {
        cs.lastPhi = eq_.now();
        scheduleDecay(core);
    }
}

void
CentralPmu::scheduleDecay(CoreId core)
{
    auto &cs = coreState_.at(core);
    // lastPhi only moves forward, so a pending check always fires no
    // later than the current deadline; decayCheck() re-checks and
    // re-arms. Extending the hysteresis window on every PHI is
    // therefore free — no deschedule/schedule pair per PHI.
    Time when = std::max(eq_.now() + fromMicroseconds(1),
                         cs.lastPhi + cfg_.resetTime);
    cs.decay.arm(eq_, when, [this, core] { decayCheck(core); });
}

void
CentralPmu::decayCheck(CoreId core)
{
    auto &cs = coreState_.at(core);
    cs.decay.fired();
    if (eq_.now() < cs.lastPhi + cfg_.resetTime) {
        scheduleDecay(core);
        return;
    }
    // A long-running PHI kernel keeps the guardband alive even though its
    // start stamp has aged past the reset-time.
    if (hooks_.coreActivity().at(core).activeGbLevel > 0) {
        cs.lastPhi = eq_.now();
        scheduleDecay(core);
        return;
    }
    if (cs.throttledForV) {
        // An up-transition is still in flight; retry one reset-time later.
        scheduleDecay(core);
        return;
    }
    bool license_held = cs.licenseLevel > 0;
    cs.licenseLevel = 0;
    if (cfg_.secureMode || (cs.granted == 0 && cs.pending == 0)) {
        if (license_held)
            reevaluateFreq(); // license relaxed
        return;
    }
    accrueEnergy();
    cs.granted = 0;
    cs.pending = 0;
    int domain = domainOf(core);
    svids_[domain]->submit(computeDomainTarget(domain),
                           /*is_increase=*/false);
    reevaluateFreq(); // license may have relaxed
}

void
CentralPmu::onActivityChanged()
{
    accrueEnergy();
    reevaluateFreq();
}

void
CentralPmu::writeGovernor(GovernorPolicy policy, double userspace_ghz)
{
    eq_.scheduleIn(governor_.applyLatency(),
                   [this, policy, userspace_ghz] {
                       governor_.setPolicy(policy);
                       governor_.setUserspaceGhz(userspace_ghz);
                       reevaluateFreq();
                   });
}

void
CentralPmu::reevaluateFreq()
{
    if (pstateInFlight_)
        return;
    double gov = governor_.requestGhz(cfg_.pstate.minGhz,
                                      cfg_.pstate.binsGhz.back());
    double cap = powerLimiter_->capGhz();
    int license = licenseForGbLevel(maxLevelAllCores());
    double license_cap = cfg_.pstate.licenseMaxGhz[license];

    double limit = powerModel_.maxFreqGhz(activityWithLevels(),
                                          cfg_.limits,
                                          cfg_.pstate.binsGhz);
    double nolicense = std::min(
        snapDownToBin(std::min(gov, cap), cfg_.pstate.binsGhz), limit);
    double desired = std::min(
        nolicense, snapDownToBin(license_cap, cfg_.pstate.binsGhz));

    if (desired < freqGhz_ - kGhzEps) {
        if (upclockEvent_ != EventQueue::kInvalidEvent) {
            eq_.deschedule(upclockEvent_);
            upclockEvent_ = EventQueue::kInvalidEvent;
        }
        // Remember whether the license was the (strictly) binding
        // constraint: its relaxation is slow (milliseconds).
        licenseCausedDownclock_ = desired < nolicense - kGhzEps;
        startPstateTransition(desired);
    } else if (desired > freqGhz_ + kGhzEps) {
        scheduleUpclock();
    }
}

void
CentralPmu::startPstateTransition(double target_ghz)
{
    assert(!pstateInFlight_);
    pstateInFlight_ = true;
    pstateDoneAt_ = eq_.now() + cfg_.pstate.transitionLatency;
    ++pstateCount_;
    for (CoreId c = 0; c < hooks_.numCores(); ++c)
        hooks_.assertCoreThrottle(c, ThrottleReason::kPstate, 0);
    auto cb = [this, target_ghz] {
        accrueEnergy();
        hooks_.beforeFreqChange();
        freqGhz_ = target_ghz;
        for (CoreId c = 0; c < hooks_.numCores(); ++c)
            hooks_.deassertCoreThrottle(c, ThrottleReason::kPstate);
        pstateInFlight_ = false;
        for (int d = 0; d < numDomains(); ++d) {
            double target = computeDomainTarget(d);
            svids_[d]->submit(target,
                              target > vrs_[d]->volts() + 1e-9);
        }
        reevaluateFreq();
    };
    // One event per P-state transition; transitions dominate throttled runs.
    eq_.scheduleInChecked(cfg_.pstate.transitionLatency, std::move(cb));
}

void
CentralPmu::scheduleUpclock()
{
    if (upclockEvent_ != EventQueue::kInvalidEvent)
        return;
    // A downclock that was license-caused relaxes only after the slow
    // license-release delay (what TurboCC modulates); other upclocks
    // (governor, power-cap) apply after a short settling delay.
    Time delay = licenseCausedDownclock_
                     ? cfg_.pstate.licenseReleaseDelay
                     : cfg_.upclockDelay;
    upclockEvent_ = eq_.scheduleIn(delay, [this] { upclockFired(); });
}

void
CentralPmu::upclockFired()
{
    upclockEvent_ = EventQueue::kInvalidEvent;
    if (pstateInFlight_)
        return;
    // Recompute; conditions may have changed while waiting.
    double gov = governor_.requestGhz(cfg_.pstate.minGhz,
                                      cfg_.pstate.binsGhz.back());
    double cap = powerLimiter_->capGhz();
    int license = licenseForGbLevel(maxLevelAllCores());
    double desired = std::min({gov, cap,
                               cfg_.pstate.licenseMaxGhz[license]});
    desired = snapDownToBin(desired, cfg_.pstate.binsGhz);
    desired = std::min(desired,
                       powerModel_.maxFreqGhz(activityWithLevels(),
                                              cfg_.limits,
                                              cfg_.pstate.binsGhz));
    if (desired > freqGhz_ + kGhzEps) {
        licenseCausedDownclock_ = false;
        startPstateTransition(desired);
    }
}

void
CentralPmu::saveState(state::SaveContext &ctx) const
{
    if (pstateInFlight_)
        throw state::ArchiveError("CentralPmu: snapshot while a P-state "
                                  "transition is in flight — quiesce "
                                  "first");
    state::ArchiveWriter &w = ctx.w();
    w.putF64(freqGhz_);
    w.putBool(licenseCausedDownclock_);
    w.putU64(pstateCount_);
    w.putU64(voltageRequests_);
    w.putU64(energyMark_);
    w.putF64(energyJoules_);
    w.putU64(probeMark_);
    w.putF64(probeEnergyJoules_);
    w.putU8(static_cast<std::uint8_t>(governor_.policy()));
    w.putF64(governor_.userspaceGhz());
    ctx.putEvent(upclockEvent_);
    w.putU32(static_cast<std::uint32_t>(coreState_.size()));
    for (const CoreState &cs : coreState_) {
        w.putI32(cs.granted);
        w.putI32(cs.pending);
        w.putI32(cs.licenseLevel);
        w.putBool(cs.throttledForV);
        w.putU64(cs.lastPhi);
        ctx.putEvent(cs.decay.id());
    }
    w.putU32(static_cast<std::uint32_t>(svids_.size()));
    for (const auto &svid : svids_)
        svid->saveState(ctx);
    powerLimiter_->saveState(ctx);
}

void
CentralPmu::restoreState(state::SectionReader &r,
                         state::RestoreContext &ctx)
{
    freqGhz_ = r.getF64();
    pstateInFlight_ = false;
    licenseCausedDownclock_ = r.getBool();
    pstateCount_ = r.getU64();
    voltageRequests_ = r.getU64();
    energyMark_ = r.getU64();
    energyJoules_ = r.getF64();
    probeMark_ = r.getU64();
    probeEnergyJoules_ = r.getF64();
    governor_.setPolicy(static_cast<GovernorPolicy>(r.getU8()));
    governor_.setUserspaceGhz(r.getF64());
    upclockEvent_ = EventQueue::kInvalidEvent;
    ctx.getEvent(r, [this](EventQueue &eq, Time when, int priority) {
        upclockEvent_ =
            eq.schedule(when, [this] { upclockFired(); }, priority);
    });
    if (r.getU32() != coreState_.size())
        throw state::ArchiveError("CentralPmu: core count mismatch");
    for (std::size_t c = 0; c < coreState_.size(); ++c) {
        CoreState &cs = coreState_[c];
        cs.granted = r.getI32();
        cs.pending = r.getI32();
        cs.licenseLevel = r.getI32();
        cs.throttledForV = r.getBool();
        cs.lastPhi = r.getU64();
        cs.decay = CoalescedTimer{};
        CoreId core = static_cast<CoreId>(c);
        ctx.getEvent(r, [this, core](EventQueue &eq, Time when,
                                     int priority) {
            coreState_[core].decay.adopt(eq.schedule(
                when, [this, core] { decayCheck(core); }, priority));
        });
    }
    if (r.getU32() != svids_.size())
        throw state::ArchiveError("CentralPmu: VR domain count mismatch");
    for (auto &svid : svids_)
        svid->restoreState(r, ctx);
    powerLimiter_->restoreState(r);
}

Time
CentralPmu::nextInterestingTime() const
{
    Time best = kTimeNever;
    if (pstateInFlight_)
        best = std::min(best, pstateDoneAt_);
    Time when;
    std::int32_t prio;
    std::uint64_t seq;
    if (upclockEvent_ != EventQueue::kInvalidEvent &&
        eq_.pendingInfo(upclockEvent_, when, prio, seq))
        best = std::min(best, when);
    for (const CoreState &cs : coreState_)
        if (cs.decay.id() != EventQueue::kInvalidEvent &&
            eq_.pendingInfo(cs.decay.id(), when, prio, seq))
            best = std::min(best, when);
    for (const auto &svid : svids_)
        best = std::min(best, svid->nextInterestingTime());
    return best;
}

void
CentralPmu::accrueEnergy()
{
    Time now = eq_.now();
    if (now <= energyMark_) {
        energyMark_ = now;
        return;
    }
    double watts = powerWatts();
    energyJoules_ += watts * toSeconds(now - energyMark_);
    energyMark_ = now;
}

double
CentralPmu::averagePowerSinceProbe()
{
    accrueEnergy();
    Time now = eq_.now();
    double joules = energyJoules_ - probeEnergyJoules_;
    double seconds = toSeconds(now - probeMark_);
    probeMark_ = now;
    probeEnergyJoules_ = energyJoules_;
    return seconds > 0.0 ? joules / seconds : 0.0;
}

} // namespace ich
