#include "pmu/limits.hh"

#include <stdexcept>

namespace ich
{

ChipPowerModel::ChipPowerModel(const GuardbandModel &gb,
                               double leakage_per_core_amps,
                               int num_cores)
    : gb_(gb), leakagePerCoreAmps_(leakage_per_core_amps),
      numCores_(num_cores)
{
}

double
ChipPowerModel::vTargetVolts(double freq_ghz,
                             const std::vector<CoreActivity> &act) const
{
    double v = gb_.baseVolts(freq_ghz);
    for (const auto &a : act)
        v += gb_.gbVolts(a.gbLevel, freq_ghz);
    return v;
}

double
ChipPowerModel::iccAmps(double freq_ghz, double volts,
                        const std::vector<CoreActivity> &act) const
{
    double icc = 0.0;
    for (const auto &a : act) {
        icc += leakagePerCoreAmps_;
        if (a.active)
            icc += a.cdynNf * 1e-9 * volts * freq_ghz * 1e9;
    }
    return icc;
}

double
ChipPowerModel::powerWatts(double freq_ghz,
                           const std::vector<CoreActivity> &act) const
{
    double v = vTargetVolts(freq_ghz, act);
    return v * iccAmps(freq_ghz, v, act);
}

double
ChipPowerModel::maxFreqGhz(const std::vector<CoreActivity> &act,
                           const ElectricalLimits &limits,
                           const std::vector<double> &bins_ghz) const
{
    if (bins_ghz.empty())
        throw std::invalid_argument("maxFreqGhz: no frequency bins");
    for (auto it = bins_ghz.rbegin(); it != bins_ghz.rend(); ++it) {
        double f = *it;
        double v = vTargetVolts(f, act);
        if (v > limits.vccMaxVolts)
            continue;
        if (iccAmps(f, v, act) > limits.iccMaxAmps)
            continue;
        return f;
    }
    return bins_ghz.front();
}

} // namespace ich
