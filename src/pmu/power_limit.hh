/**
 * @file
 * Running-average power limiter (RAPL PL1-style controller).
 *
 * Evaluates average package power every `evalInterval`; when over budget
 * it lowers the frequency cap one bin, when comfortably under it raises
 * the cap one bin. Its multi-millisecond reaction time is the mechanism
 * the PowerT baseline channel (Khatamifard et al., HPCA'19) modulates.
 * Disabled by default — IChannels itself does not depend on it.
 *
 * The evaluation window is driven by the shared Ticker (one rate-group
 * event instead of a self-rescheduled event per window), so the RAPL
 * tick coalesces with any other component at the same rate.
 */

#ifndef ICH_PMU_POWER_LIMIT_HH
#define ICH_PMU_POWER_LIMIT_HH

#include <functional>
#include <vector>

#include "common/ticker.hh"
#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/** Power-limit controller configuration. */
struct PowerLimitConfig {
    bool enabled = false;
    double limitWatts = 15.0;
    Time evalInterval = fromMilliseconds(4.0);
    /** Hysteresis: raise the cap only when below this fraction of PL. */
    double raiseBelowFraction = 0.85;
};

/**
 * Periodic controller. The owner supplies a callback returning average
 * power since the previous evaluation and is notified when the cap moves.
 */
class PowerLimiter : public Clocked
{
  public:
    using PowerProbe = std::function<double()>;
    using CapChanged = std::function<void()>;
    /** Highest frequency whose *projected* power fits the budget. */
    using SetpointProbe = std::function<double()>;

    PowerLimiter(Ticker &ticker, const PowerLimitConfig &cfg,
                 std::vector<double> bins_ghz, PowerProbe probe,
                 CapChanged on_change,
                 SetpointProbe setpoint = nullptr);
    ~PowerLimiter() override;

    /** Current frequency cap, GHz (top bin when unconstrained). */
    double capGhz() const;

    bool enabled() const { return cfg_.enabled; }

    /** Number of completed evaluations (tests). */
    std::uint64_t evaluations() const { return evals_; }

    /**
     * Fast-forward query: next RAPL window crossing strictly after
     * @p now (the Ticker fires the evaluation at k·evalInterval), or
     * kTimeNever when the limiter is disabled. Between crossings the
     * controller is inert — window energy accrues lazily in the PMU.
     */
    Time
    nextEvalAfter(Time now) const
    {
        if (!cfg_.enabled)
            return kTimeNever;
        return (now / cfg_.evalInterval + 1) * cfg_.evalInterval;
    }

    /** @name Clocked */
    ///@{
    void tick(Time now) override;
    const char *tickName() const override { return "rapl"; }
    ///@}

    /**
     * Snapshot hooks: controller state only — the evaluation clock
     * lives in the Ticker's rate-group section.
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    Ticker &ticker_;
    PowerLimitConfig cfg_;
    std::vector<double> binsGhz_;
    PowerProbe probe_;
    CapChanged onChange_;
    SetpointProbe setpoint_;
    std::size_t capIdx_;
    std::uint64_t evals_ = 0;

    void evaluate();
    std::size_t indexAtOrBelow(double ghz) const;
};

} // namespace ich

#endif // ICH_PMU_POWER_LIMIT_HH
