#include "pmu/guardband.hh"

#include <algorithm>
#include <stdexcept>

namespace ich
{

GuardbandModel::GuardbandModel(const LoadLine &ll, const VfCurve &vf)
    : ll_(ll), vf_(vf)
{
    cdynNf_.assign(numGuardbandLevels(), 0.0);
    for (auto cls : kAllInstClasses) {
        const InstTraits &tr = traits(cls);
        cdynNf_[tr.guardbandLevel] =
            std::max(cdynNf_[tr.guardbandLevel], tr.deltaCdynNf);
    }
}

double
GuardbandModel::levelCdynNf(int level) const
{
    if (level < 0 || level >= numLevels())
        throw std::out_of_range("GuardbandModel: bad level");
    return cdynNf_[level];
}

double
GuardbandModel::gbVolts(int level, double freq_ghz) const
{
    double dcdyn_farad = levelCdynNf(level) * 1e-9;
    return ll_.guardband(dcdyn_farad, baseVolts(freq_ghz),
                         freq_ghz * 1e9);
}

} // namespace ich
