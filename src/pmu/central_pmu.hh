/**
 * @file
 * Central power management unit (paper Figure 1, §2, §4, §5).
 *
 * Responsibilities modeled:
 *  - Adaptive voltage guardbands per core (Equation 1), additive across
 *    cores on a shared rail; requests serialized through the SVID bus so
 *    concurrent cross-core PHIs exacerbate each other's throttling
 *    periods (Multi-Throttling-Cores).
 *  - Core execution throttling while a guardband up-transition is in
 *    flight (Multi-Throttling-Thread / -SMT via the core ThrottleUnit).
 *  - 650 µs hysteresis (reset-time): the granted level decays only after
 *    the core has not executed a PHI for resetTime.
 *  - Iccmax/Vccmax limit protection and turbo licenses: P-state
 *    transitions with a multi-millisecond license-release delay.
 *  - Software governors and an optional RAPL-style power limiter.
 *  - secure-mode (§7): voltage pinned at the worst-case guardband, so no
 *    PHI ever triggers a transition or throttling.
 */

#ifndef ICH_PMU_CENTRAL_PMU_HH
#define ICH_PMU_CENTRAL_PMU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/ticker.hh"
#include "common/types.hh"
#include "cpu/throttle_unit.hh"
#include "isa/inst_class.hh"
#include "pdn/svid.hh"
#include "pdn/vr.hh"
#include "pmu/governor.hh"
#include "pmu/guardband.hh"
#include "pmu/limits.hh"
#include "pmu/power_limit.hh"
#include "pmu/pstate.hh"
#include "state/fwd.hh"

namespace ich
{

/** Chip services the PMU needs (implemented by Chip). */
class PmuHooks
{
  public:
    virtual ~PmuHooks() = default;

    virtual int numCores() const = 0;
    /** Accrue + assert + re-rate the given core's threads. */
    virtual void assertCoreThrottle(CoreId core, ThrottleReason reason,
                                    int initiator) = 0;
    virtual void deassertCoreThrottle(CoreId core,
                                      ThrottleReason reason) = 0;
    /** Per-core instantaneous activity (gbLevel filled by the PMU). */
    virtual std::vector<CoreActivity> coreActivity() const = 0;
    /**
     * The shared PLL is about to change frequency. Threads defer
     * chunk-record materialization analytically, replaying it on demand
     * at the *current* rate — so everything still pending must be
     * materialized at the old frequency before the new one becomes
     * visible. Called immediately before every freqGhz() change.
     */
    virtual void beforeFreqChange() = 0;
};

/** PMU configuration. */
struct PmuConfig {
    VfCurve vf;
    double rllOhm = 1.9e-3;
    ElectricalLimits limits;
    PstateConfig pstate;
    GovernorConfig governor;
    PowerLimitConfig powerLimit;
    VrConfig vr = VrConfig::motherboard();
    /** Mitigation: one VR domain per core instead of a shared rail. */
    bool perCoreVr = false;
    /** Mitigation: pin the worst-case guardband, never throttle. */
    bool secureMode = false;
    /** Hysteresis window keeping the guardband after the last PHI. */
    Time resetTime = fromMicroseconds(650);
    /** Delay before an upclock not caused by a license release. */
    Time upclockDelay = fromMicroseconds(200);
    double leakagePerCoreAmps = 1.0;
};

/** Central PMU. */
class CentralPmu
{
  public:
    CentralPmu(EventQueue &eq, Rng &rng, Ticker &ticker,
               const PmuConfig &cfg, PmuHooks &hooks);
    ~CentralPmu();

    CentralPmu(const CentralPmu &) = delete;
    CentralPmu &operator=(const CentralPmu &) = delete;

    /** @name Notifications from the execution model */
    ///@{
    void onPhiStart(CoreId core, int smt, InstClass cls);
    void onKernelEnd(CoreId core, int smt, InstClass cls);
    void onActivityChanged();
    ///@}

    /** @name State queries */
    ///@{
    double freqGhz() const { return freqGhz_; }
    bool pstateInFlight() const { return pstateInFlight_; }

    /** Rail voltage of @p domain (shared rail: domain 0). */
    double voltsDomain(int domain) const;
    double volts() const { return voltsDomain(0); }

    /** Instantaneous chip current / power at present activity. */
    double iccAmps() const;
    double powerWatts() const;

    int grantedLevel(CoreId core) const;
    int numDomains() const { return static_cast<int>(svids_.size()); }
    Svid &svid(int domain) { return *svids_.at(domain); }
    const Svid &svid(int domain) const { return *svids_.at(domain); }
    ///@}

    /** @name Software interface */
    ///@{
    /** Governor write; takes effect after the governor apply latency. */
    void writeGovernor(GovernorPolicy policy, double userspace_ghz);
    ///@}

    const GuardbandModel &guardbandModel() const { return gbModel_; }
    const ChipPowerModel &powerModel() const { return powerModel_; }
    const PmuConfig &config() const { return cfg_; }

    /** @name Stats (tests/benches) */
    ///@{
    std::uint64_t pstateTransitions() const { return pstateCount_; }
    std::uint64_t voltageRequests() const { return voltageRequests_; }
    ///@}

    /**
     * Fast-forward query: earliest deadline among the PMU's self-owned
     * discrete state changes — the pending P-state transition
     * completion, the pending upclock, per-core guardband decay checks,
     * and in-flight SVID/VR transactions. kTimeNever when quiescent.
     * Periodic governor/RAPL evaluations live in the Ticker's rate
     * groups (Ticker::nextGroupDue()); a pending writeGovernor() apply
     * is untracked and deliberately not reported — it bounds the
     * fast-forward pump naturally by surfacing at the event-queue head.
     */
    Time nextInterestingTime() const;

    /**
     * Snapshot hooks. Legal only at a quiesce point: no P-state
     * transition in flight, every SVID bus idle, no pending governor
     * write (writeGovernor's apply event is untracked and makes
     * snapshot() fail its event census). Guardband decay timers and the
     * pending upclock re-arm at their original absolute times on
     * restore; the RAPL window and periodic governor evaluation live in
     * the Ticker's rate-group clocks (their own snapshot section).
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    struct CoreState {
        int granted = 0;  ///< guardband level applied on the rail
        int pending = 0;  ///< highest requested level (>= granted)
        /**
         * Recent-PHI level driving the turbo license. Distinct from
         * granted: it tracks instruction activity (with the same
         * reset-time hysteresis) even in secure mode, where the rail
         * level is pinned (§5.3 footnote 11: licenses are separate from
         * the five guardband levels).
         */
        int licenseLevel = 0;
        bool throttledForV = false;
        Time lastPhi = 0;
        /**
         * Deadline-coalesced reset-time check: a PHI extending the
         * hysteresis deadline costs no heap operations while an earlier
         * check is pending — decayCheck() re-checks and re-arms.
         */
        CoalescedTimer decay;
    };

    /** Ondemand-style periodic governor/P-state evaluation (Ticker). */
    struct PeriodicEval final : Clocked {
        CentralPmu *pmu = nullptr;
        void
        tick(Time) override
        {
            pmu->accrueEnergy();
            pmu->reevaluateFreq();
        }
        const char *tickName() const override { return "governor"; }
    };

    EventQueue &eq_;
    Rng &rng_;
    Ticker &ticker_;
    PmuConfig cfg_;
    PmuHooks &hooks_;
    PeriodicEval governorEval_;

    GuardbandModel gbModel_;
    ChipPowerModel powerModel_;
    Governor governor_;

    std::vector<std::unique_ptr<VoltageRegulator>> vrs_;
    std::vector<std::unique_ptr<Svid>> svids_;
    std::vector<CoreState> coreState_;
    std::unique_ptr<PowerLimiter> powerLimiter_;

    double freqGhz_;
    bool pstateInFlight_ = false;
    /** Completion deadline of the in-flight P-state transition
     *  (diagnostic; meaningful only while pstateInFlight_). */
    Time pstateDoneAt_ = 0;
    /** Last downclock was license-caused: upclock waits for release. */
    bool licenseCausedDownclock_ = false;
    EventId upclockEvent_ = EventQueue::kInvalidEvent;
    std::uint64_t pstateCount_ = 0;
    std::uint64_t voltageRequests_ = 0;

    // Lazy energy integration for the power limiter / overhead benches.
    Time energyMark_ = 0;
    double energyJoules_ = 0.0;
    Time probeMark_ = 0;
    double probeEnergyJoules_ = 0.0;

    int domainOf(CoreId core) const { return cfg_.perCoreVr ? core : 0; }
    int effectiveLevel(const CoreState &cs) const;
    int maxLevelAllCores() const;
    double computeDomainTarget(int domain) const;
    std::vector<CoreActivity> activityWithLevels() const;
    void submitUpTransition(CoreId core, int lvl, int domain);
    void releaseDomainThrottles(int domain);
    void scheduleDecay(CoreId core);
    void decayCheck(CoreId core);
    void reevaluateFreq();
    void startPstateTransition(double target_ghz);
    void scheduleUpclock();
    void upclockFired();
    void accrueEnergy();
    double averagePowerSinceProbe();
};

} // namespace ich

#endif // ICH_PMU_CENTRAL_PMU_HH
