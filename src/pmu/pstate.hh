/**
 * @file
 * P-state (frequency bin) table and turbo-license mapping (paper §5.3).
 *
 * Intel exposes three turbo licenses (LVL{0,1,2}_TURBO_LICENSE) keyed to
 * the computational intensity of in-flight instructions; each license caps
 * the attainable turbo frequency. These license-driven caps are distinct
 * from the five guardband levels (§5.5, footnote 11). The license-release
 * delay (milliseconds) is what makes the TurboCC baseline slow.
 */

#ifndef ICH_PMU_PSTATE_HH
#define ICH_PMU_PSTATE_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace ich
{

/** P-state / turbo-license configuration. */
struct PstateConfig {
    /** Allowed frequency bins, GHz, ascending. */
    std::vector<double> binsGhz;
    /** Minimum operating frequency. */
    double minGhz = 0.8;
    /** Max turbo at license LVL0 / LVL1 / LVL2. */
    std::array<double, 3> licenseMaxGhz = {4.9, 4.3, 3.6};
    /** PLL relock + voltage retarget time; core throttled meanwhile. */
    Time transitionLatency = fromMicroseconds(10);
    /** Delay before re-raising frequency after a license relaxes. */
    Time licenseReleaseDelay = fromMilliseconds(12);
};

/** Map a guardband level (0..4) to a turbo license (0..2). */
int licenseForGbLevel(int gb_level);

/** Snap @p ghz to the nearest bin at or below it (lowest bin if none). */
double snapDownToBin(double ghz, const std::vector<double> &bins_ghz);

} // namespace ich

#endif // ICH_PMU_PSTATE_HH
