#include "pmu/pstate.hh"

#include <algorithm>

namespace ich
{

int
licenseForGbLevel(int gb_level)
{
    if (gb_level >= 4)
        return 2; // 512-bit heavy: LVL2
    if (gb_level >= 2)
        return 1; // 256-bit and up: LVL1
    return 0;
}

double
snapDownToBin(double ghz, const std::vector<double> &bins_ghz)
{
    double best = bins_ghz.empty() ? ghz : bins_ghz.front();
    for (double b : bins_ghz) {
        if (b <= ghz + 1e-9)
            best = std::max(best, b);
    }
    return best;
}

} // namespace ich
