#include "pmu/governor.hh"

// Governor is header-only; translation unit reserved for future policy
// logic (e.g. ondemand sampling).
