#include "pmu/power_limit.hh"

#include <stdexcept>
#include <utility>

#include "state/snapshot.hh"

namespace ich
{

PowerLimiter::PowerLimiter(Ticker &ticker, const PowerLimitConfig &cfg,
                           std::vector<double> bins_ghz, PowerProbe probe,
                           CapChanged on_change, SetpointProbe setpoint)
    : ticker_(ticker), cfg_(cfg), binsGhz_(std::move(bins_ghz)),
      probe_(std::move(probe)), onChange_(std::move(on_change)),
      setpoint_(std::move(setpoint))
{
    if (binsGhz_.empty())
        throw std::invalid_argument("PowerLimiter: no frequency bins");
    capIdx_ = binsGhz_.size() - 1;
    if (cfg_.enabled)
        ticker_.add(*this, TickRate{cfg_.evalInterval, 0, 0});
}

PowerLimiter::~PowerLimiter()
{
    if (cfg_.enabled)
        ticker_.remove(*this);
}

void
PowerLimiter::tick(Time)
{
    evaluate();
}

void
PowerLimiter::saveState(state::SaveContext &ctx) const
{
    ctx.w().putU64(capIdx_);
    ctx.w().putU64(evals_);
}

void
PowerLimiter::restoreState(state::SectionReader &r)
{
    capIdx_ = static_cast<std::size_t>(r.getU64());
    if (capIdx_ >= binsGhz_.size())
        throw state::ArchiveError("PowerLimiter: cap index out of range");
    evals_ = r.getU64();
}

double
PowerLimiter::capGhz() const
{
    return binsGhz_[capIdx_];
}

std::size_t
PowerLimiter::indexAtOrBelow(double ghz) const
{
    std::size_t idx = 0;
    for (std::size_t i = 0; i < binsGhz_.size(); ++i)
        if (binsGhz_[i] <= ghz + 1e-9)
            idx = i;
    return idx;
}

void
PowerLimiter::evaluate()
{
    ++evals_;
    double avg_watts = probe_ ? probe_() : 0.0;
    std::size_t old_idx = capIdx_;
    if (setpoint_) {
        // Setpoint controller (RAPL-style): jump to the highest bin
        // whose projected power at current activity fits the budget.
        std::size_t target = indexAtOrBelow(setpoint_());
        if (avg_watts > cfg_.limitWatts && target < capIdx_)
            capIdx_ = target;
        else if (avg_watts < cfg_.limitWatts * cfg_.raiseBelowFraction &&
                 target > capIdx_)
            capIdx_ = target;
    } else if (avg_watts > cfg_.limitWatts && capIdx_ > 0) {
        --capIdx_;
    } else if (avg_watts < cfg_.limitWatts * cfg_.raiseBelowFraction &&
               capIdx_ + 1 < binsGhz_.size()) {
        ++capIdx_;
    }
    if (capIdx_ != old_idx && onChange_)
        onChange_();
}

} // namespace ich
