/**
 * @file
 * Electrical design limits and the chip power/current projection model
 * (paper §2 "Voltage and Current Limit Protection", §5.3).
 *
 * Exceeding Iccmax can damage the VR or the chip; exceeding Vccmax is out
 * of spec. The PMU therefore reduces frequency so that the projected rail
 * voltage (with guardbands) and projected current stay within limits —
 * this, not thermals, is what slows AVX2/AVX-512 code at Turbo (Key
 * Conclusion 2).
 */

#ifndef ICH_PMU_LIMITS_HH
#define ICH_PMU_LIMITS_HH

#include <vector>

#include "pmu/guardband.hh"

namespace ich
{

/** Maximum-rating limits of the VR / package. */
struct ElectricalLimits {
    double vccMaxVolts = 1.27;
    double iccMaxAmps = 100.0;
};

/** Instantaneous per-core activity snapshot for projections. */
struct CoreActivity {
    bool active = false;   ///< executing instructions (clocks ungated)
    double cdynNf = 0.0;   ///< instantaneous dynamic capacitance
    int gbLevel = 0;       ///< granted/pending guardband level
    /** Highest guardband level among classes executing right now. */
    int activeGbLevel = 0;
};

/**
 * Projects rail voltage and current for a hypothetical operating point.
 */
class ChipPowerModel
{
  public:
    ChipPowerModel(const GuardbandModel &gb, double leakage_per_core_amps,
                   int num_cores);

    /** Rail voltage target: base V(f) plus the sum of core guardbands. */
    double vTargetVolts(double freq_ghz,
                        const std::vector<CoreActivity> &act) const;

    /**
     * Supply current: Σ_active cores Cdyn·V·F plus leakage for powered
     * (non-power-gated) cores.
     */
    double iccAmps(double freq_ghz, double volts,
                   const std::vector<CoreActivity> &act) const;

    /** Package power at the given point (V · Icc). */
    double powerWatts(double freq_ghz,
                      const std::vector<CoreActivity> &act) const;

    /**
     * Highest frequency from @p bins_ghz (ascending) whose projected V
     * and I satisfy @p limits; falls back to the lowest bin.
     */
    double maxFreqGhz(const std::vector<CoreActivity> &act,
                      const ElectricalLimits &limits,
                      const std::vector<double> &bins_ghz) const;

    const GuardbandModel &guardband() const { return gb_; }

  private:
    const GuardbandModel &gb_;
    double leakagePerCoreAmps_;
    int numCores_;
};

} // namespace ich

#endif // ICH_PMU_LIMITS_HH
