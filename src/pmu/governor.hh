/**
 * @file
 * Software frequency-governor model (paper §5.7 and the DFScovert
 * baseline). Three policies as in Linux cpufreq: performance (max turbo),
 * powersave (min bin), userspace (pinned frequency).
 *
 * Governor writes are software actions: they take effect only after
 * `applyLatency` (sysfs write + kernel worker + PMU mailbox), which is the
 * slowness the DFScovert baseline channel inherits.
 */

#ifndef ICH_PMU_GOVERNOR_HH
#define ICH_PMU_GOVERNOR_HH

#include "common/types.hh"

namespace ich
{

enum class GovernorPolicy { kPerformance, kPowersave, kUserspace };

/** Governor configuration/state. */
struct GovernorConfig {
    GovernorPolicy policy = GovernorPolicy::kUserspace;
    double userspaceGhz = 1.4;
    /** Software path latency for a policy/frequency write. */
    Time applyLatency = fromMicroseconds(50);
    /**
     * Periodic governor/P-state re-evaluation interval (ondemand-style
     * sampling), driven by the chip Ticker. 0 keeps the governor purely
     * event-driven — the default, matching the paper's pinned setups.
     */
    Time evalInterval = 0;
};

/** Resolves the governor's requested frequency. */
class Governor
{
  public:
    explicit Governor(const GovernorConfig &cfg) : cfg_(cfg) {}

    GovernorPolicy policy() const { return cfg_.policy; }
    double userspaceGhz() const { return cfg_.userspaceGhz; }
    Time applyLatency() const { return cfg_.applyLatency; }

    /** Frequency the governor asks the PMU for. */
    double
    requestGhz(double min_ghz, double max_turbo_ghz) const
    {
        switch (cfg_.policy) {
          case GovernorPolicy::kPerformance:
            return max_turbo_ghz;
          case GovernorPolicy::kPowersave:
            return min_ghz;
          case GovernorPolicy::kUserspace:
          default:
            return cfg_.userspaceGhz;
        }
    }

    /**
     * Fast-forward query: next periodic evaluation strictly after
     * @p now (the Ticker fires it at k·evalInterval), or kTimeNever for
     * a purely event-driven governor (evalInterval 0). requestGhz() is
     * a pure function of policy state, so scheduled evaluations and
     * writeGovernor applies are the only times a decision can move.
     */
    Time
    nextEvalAfter(Time now) const
    {
        if (cfg_.evalInterval == 0)
            return kTimeNever;
        return (now / cfg_.evalInterval + 1) * cfg_.evalInterval;
    }

    /** Raw state setters (the PMU applies them after applyLatency). */
    void setPolicy(GovernorPolicy p) { cfg_.policy = p; }
    void setUserspaceGhz(double ghz) { cfg_.userspaceGhz = ghz; }

  private:
    GovernorConfig cfg_;
};

} // namespace ich

#endif // ICH_PMU_GOVERNOR_HH
