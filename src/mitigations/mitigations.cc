#include "mitigations/mitigations.hh"

#include "pmu/guardband.hh"

namespace ich
{
namespace mitigations
{

ChipConfig
withPerCoreVr(ChipConfig cfg)
{
    cfg.pmu.perCoreVr = true;
    cfg.pmu.vr = VrConfig::lowDropout();
    // LDO transitions are near-deterministic at this scale; keep a tiny
    // jitter so measurements are not artificially exact.
    cfg.pmu.vr.commandJitter = fromNanoseconds(20);
    cfg.name += "+percore-ldo";
    return cfg;
}

ChipConfig
withImprovedThrottling(ChipConfig cfg)
{
    cfg.core.throttle.perThread = true;
    cfg.name += "+improved-throttling";
    return cfg;
}

ChipConfig
withSecureMode(ChipConfig cfg)
{
    cfg.pmu.secureMode = true;
    cfg.name += "+secure-mode";
    return cfg;
}

double
secureModePowerOverheadPct(const ChipConfig &cfg, double freq_ghz,
                           int max_level)
{
    GuardbandModel gb(LoadLine(cfg.pmu.rllOhm), cfg.pmu.vf);
    double v_base = gb.baseVolts(freq_ghz);
    double v_secure = v_base;
    for (int c = 0; c < cfg.numCores; ++c)
        v_secure += gb.gbVolts(max_level, freq_ghz);
    double ratio = v_secure / v_base;
    return (ratio * ratio - 1.0) * 100.0;
}

std::string
overheadDescription(const std::string &mitigation)
{
    if (mitigation == "per-core-vr")
        return "11%-13% more core area";
    if (mitigation == "improved-throttling")
        return "design/verification effort";
    if (mitigation == "secure-mode")
        return "4%-11% additional power";
    return "n/a";
}

} // namespace mitigations
} // namespace ich
