/**
 * @file
 * The three mitigations of paper §7, expressed as chip-config transforms
 * plus an analytic overhead estimator (Table 1):
 *
 *  - Per-core voltage regulators (LDO PDN): eliminates the cross-core
 *    channel entirely (independent rails, no SVID serialization) and
 *    shrinks thread/SMT throttling periods below practical detectability
 *    (<0.5 µs transitions). Cost: 11–13% core area.
 *  - Improved core throttling: block only the PHI uops of the initiating
 *    thread, eliminating the SMT channel. Cost: design effort only.
 *  - Secure mode: pin the worst-case power-virus guardband, so PHIs never
 *    trigger transitions or throttling — eliminates all three channels at
 *    4–11% extra power (AVX2 / AVX-512 systems).
 */

#ifndef ICH_MITIGATIONS_MITIGATIONS_HH
#define ICH_MITIGATIONS_MITIGATIONS_HH

#include <string>

#include "chip/chip.hh"

namespace ich
{
namespace mitigations
{

/** Replace the shared MBVR rail with per-core LDO domains. */
ChipConfig withPerCoreVr(ChipConfig cfg);

/** Enable per-thread PHI-only IDQ throttling. */
ChipConfig withImprovedThrottling(ChipConfig cfg);

/** Pin the worst-case guardband (no dynamic transitions). */
ChipConfig withSecureMode(ChipConfig cfg);

/**
 * Analytic secure-mode power overhead (%) at the given frequency for a
 * system whose worst-case PHI sits at @p max_level (3 for AVX2-only
 * parts, 4 for AVX-512 parts): P ∝ V², so overhead ≈ (Vsecure/Vbase)²−1.
 */
double secureModePowerOverheadPct(const ChipConfig &cfg, double freq_ghz,
                                  int max_level);

/** Human-readable overhead string for Table 1. */
std::string overheadDescription(const std::string &mitigation);

} // namespace mitigations
} // namespace ich

#endif // ICH_MITIGATIONS_MITIGATIONS_HH
