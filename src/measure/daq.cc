#include "measure/daq.hh"

#include <stdexcept>

namespace ich
{

Daq::Daq(Ticker &ticker, Time sample_interval)
    : ticker_(ticker), interval_(sample_interval)
{
    if (sample_interval == 0)
        throw std::invalid_argument("Daq: zero sample interval");
}

Daq::~Daq()
{
    stop();
}

int
Daq::addChannel(const std::string &name, Probe probe)
{
    probes_.push_back(std::move(probe));
    traces_.push_back(std::make_unique<Trace>(name));
    return static_cast<int>(traces_.size()) - 1;
}

const Trace &
Daq::trace(const std::string &name) const
{
    for (const auto &t : traces_)
        if (t->name() == name)
            return *t;
    throw std::out_of_range("Daq: no trace named " + name);
}

void
Daq::start(Time until)
{
    until_ = until;
    if (running_)
        return;
    Time now = ticker_.eq().now();
    if (now > until_)
        return;
    running_ = true;
    // The sample count is known up front: one per interval plus the
    // immediate sample below. Reserve (capped — a pathological window
    // must not balloon the reservation) so recording never reallocates
    // mid-sweep.
    std::size_t expect = static_cast<std::size_t>(std::min<Time>(
        (until_ - now) / interval_ + 2, Time(1) << 20));
    for (auto &t : traces_)
        t->reserve(expect);
    sampleNow();
    // Phase-align the rate group so ticks land on t0 + k*interval.
    ticker_.add(*this, TickRate{interval_, now % interval_, 0},
                Ticker::Ownership::kTransient);
}

void
Daq::stop()
{
    if (!running_)
        return;
    running_ = false;
    ticker_.remove(*this);
}

void
Daq::tick(Time now)
{
    if (now > until_) {
        stop();
        return;
    }
    sampleNow();
}

void
Daq::sampleNow()
{
    Time now = ticker_.eq().now();
    for (std::size_t i = 0; i < probes_.size(); ++i)
        traces_[i]->add(now, probes_[i]());
}

} // namespace ich
