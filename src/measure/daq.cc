#include "measure/daq.hh"

#include <stdexcept>

namespace ich
{

Daq::Daq(EventQueue &eq, Time sample_interval)
    : eq_(eq), interval_(sample_interval)
{
    if (sample_interval == 0)
        throw std::invalid_argument("Daq: zero sample interval");
}

int
Daq::addChannel(const std::string &name, Probe probe)
{
    probes_.push_back(std::move(probe));
    traces_.push_back(std::make_unique<Trace>(name));
    return static_cast<int>(traces_.size()) - 1;
}

const Trace &
Daq::trace(const std::string &name) const
{
    for (const auto &t : traces_)
        if (t->name() == name)
            return *t;
    throw std::out_of_range("Daq: no trace named " + name);
}

void
Daq::start(Time until)
{
    until_ = until;
    if (!running_) {
        running_ = true;
        sample();
    }
}

void
Daq::stop()
{
    running_ = false;
}

void
Daq::sample()
{
    if (!running_)
        return;
    Time now = eq_.now();
    if (now > until_) {
        running_ = false;
        return;
    }
    for (std::size_t i = 0; i < probes_.size(); ++i)
        traces_[i]->add(now, probes_[i]());
    // Fires once per sample interval for the whole trace.
    eq_.scheduleChecked(now + interval_, [this] { sample(); });
}

} // namespace ich
