/**
 * @file
 * DAQ sampler: periodic multi-channel probe of simulated analog and
 * digital signals (Vcc, Icc, frequency, temperature, IPC), standing in
 * for the NI-DAQ card + sense resistors of Fig. 5. Sampling rate is
 * configurable up to the NI-PCIe-6376's 3.5 MS/s.
 *
 * Sampling rides the shared Ticker as a *transient* member: one
 * rate-group event covers every channel (and any other component at the
 * same rate), and a Daq left attached at a snapshot point fails the
 * save loudly — samplers are measurement equipment, not chip state.
 */

#ifndef ICH_MEASURE_DAQ_HH
#define ICH_MEASURE_DAQ_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ticker.hh"
#include "common/types.hh"
#include "measure/trace.hh"

namespace ich
{

/** Multi-channel periodic sampler. */
class Daq : public Clocked
{
  public:
    using Probe = std::function<double()>;

    Daq(Ticker &ticker, Time sample_interval);
    ~Daq() override;

    /** Register a probe; returns its channel index. */
    int addChannel(const std::string &name, Probe probe);

    /** Start sampling now; stops automatically at @p until. */
    void start(Time until);

    /** Stop sampling immediately. */
    void stop();

    bool running() const { return running_; }

    const Trace &trace(int channel) const { return *traces_.at(channel); }
    const Trace &trace(const std::string &name) const;
    int channels() const { return static_cast<int>(traces_.size()); }

    /** @name Clocked */
    ///@{
    void tick(Time now) override;
    const char *tickName() const override { return "daq"; }
    ///@}

  private:
    Ticker &ticker_;
    Time interval_;
    Time until_ = 0;
    bool running_ = false;
    std::vector<Probe> probes_;
    std::vector<std::unique_ptr<Trace>> traces_;

    void sampleNow();
};

} // namespace ich

#endif // ICH_MEASURE_DAQ_HH
