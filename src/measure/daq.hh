/**
 * @file
 * DAQ sampler: periodic multi-channel probe of simulated analog and
 * digital signals (Vcc, Icc, frequency, temperature, IPC), standing in
 * for the NI-DAQ card + sense resistors of Fig. 5. Sampling rate is
 * configurable up to the NI-PCIe-6376's 3.5 MS/s.
 */

#ifndef ICH_MEASURE_DAQ_HH
#define ICH_MEASURE_DAQ_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "measure/trace.hh"

namespace ich
{

/** Multi-channel periodic sampler. */
class Daq
{
  public:
    using Probe = std::function<double()>;

    Daq(EventQueue &eq, Time sample_interval);

    /** Register a probe; returns its channel index. */
    int addChannel(const std::string &name, Probe probe);

    /** Start sampling now; stops automatically at @p until. */
    void start(Time until);

    /** Stop sampling immediately. */
    void stop();

    bool running() const { return running_; }

    const Trace &trace(int channel) const { return *traces_.at(channel); }
    const Trace &trace(const std::string &name) const;
    int channels() const { return static_cast<int>(traces_.size()); }

  private:
    EventQueue &eq_;
    Time interval_;
    Time until_ = 0;
    bool running_ = false;
    std::vector<Probe> probes_;
    std::vector<std::unique_ptr<Trace>> traces_;

    void sample();
};

} // namespace ich

#endif // ICH_MEASURE_DAQ_HH
