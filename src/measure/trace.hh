/**
 * @file
 * Time-series traces recorded by the DAQ sampler (the software stand-in
 * for the paper's NI-DAQ PCIe-6376 measurement rig, Fig. 5).
 */

#ifndef ICH_MEASURE_TRACE_HH
#define ICH_MEASURE_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace ich
{

/** One sampled point. */
struct TracePoint {
    Time time;
    double value;
};

/** Named sample series. */
class Trace
{
  public:
    explicit Trace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void add(Time t, double v) { points_.push_back({t, v}); }
    const std::vector<TracePoint> &points() const { return points_; }
    std::size_t size() const { return points_.size(); }

    double minValue() const;
    double maxValue() const;
    double meanValue() const;

    /** Value of the last sample at or before @p t (0 if none). */
    double valueAt(Time t) const;

    /** "time_us value" rows, decimated to at most @p max_rows. */
    std::string toRows(std::size_t max_rows = 200) const;

  private:
    std::string name_;
    std::vector<TracePoint> points_;
};

} // namespace ich

#endif // ICH_MEASURE_TRACE_HH
