/**
 * @file
 * Time-series traces recorded by the DAQ sampler (the software stand-in
 * for the paper's NI-DAQ PCIe-6376 measurement rig, Fig. 5).
 *
 * Traces persist on the same CRC-framed columnar chunk format as the
 * sweep result store (state/chunkio.hh): a header frame naming the
 * series, then data frames holding a time column and a raw-IEEE-754
 * value column — bit-exact round trips, torn tails recover the intact
 * sample prefix, corrupt frames are rejected loudly.
 */

#ifndef ICH_MEASURE_TRACE_HH
#define ICH_MEASURE_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace ich
{

/** Chunk kinds inside a columnar trace file. */
constexpr std::uint32_t kTraceChunkHeader = 1;
constexpr std::uint32_t kTraceChunkData = 2;
/** "TRC1": distinguishes a trace header from other chunk-file users. */
constexpr std::uint32_t kTraceFormatTag = 0x31435254u;

/** One sampled point. */
struct TracePoint {
    Time time;
    double value;
};

/** Named sample series. */
class Trace
{
  public:
    explicit Trace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void add(Time t, double v)
    {
        if (!points_.empty() && t < points_.back().time)
            sorted_ = false;
        points_.push_back({t, v});
    }
    const std::vector<TracePoint> &points() const { return points_; }
    std::size_t size() const { return points_.size(); }

    /** Pre-size the sample buffer (DAQ knows the sample count). */
    void reserve(std::size_t n) { points_.reserve(n); }

    /** True while samples have arrived in non-decreasing time order
     *  (always the case for DAQ recordings). */
    bool sorted() const { return sorted_; }

    double minValue() const;
    double maxValue() const;
    double meanValue() const;

    /**
     * Value of the last sample at or before @p t (0 if none).
     * O(log n) binary search while the series is time-sorted; the
     * legacy linear scan only for out-of-order hand-built traces.
     */
    double valueAt(Time t) const;

    /** "time_us value" rows, decimated to at most @p max_rows. */
    std::string toRows(std::size_t max_rows = 200) const;

    /**
     * Spill the series to @p path on the columnar chunk format (see
     * the file comment). Throws state::ArchiveError on I/O failure.
     */
    void saveColumnar(const std::string &path) const;

    /**
     * Load a spilled series. A torn tail yields the intact prefix; a
     * corrupt frame or a non-trace chunk file throws
     * state::ArchiveError.
     */
    static Trace loadColumnar(const std::string &path);

  private:
    std::string name_;
    std::vector<TracePoint> points_;
    bool sorted_ = true;
};

} // namespace ich

#endif // ICH_MEASURE_TRACE_HH
