#include "measure/trace.hh"

#include <algorithm>
#include <sstream>

namespace ich
{

double
Trace::minValue() const
{
    double m = points_.empty() ? 0.0 : points_.front().value;
    for (const auto &p : points_)
        m = std::min(m, p.value);
    return m;
}

double
Trace::maxValue() const
{
    double m = points_.empty() ? 0.0 : points_.front().value;
    for (const auto &p : points_)
        m = std::max(m, p.value);
    return m;
}

double
Trace::meanValue() const
{
    if (points_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : points_)
        sum += p.value;
    return sum / points_.size();
}

double
Trace::valueAt(Time t) const
{
    double v = 0.0;
    for (const auto &p : points_) {
        if (p.time > t)
            break;
        v = p.value;
    }
    return v;
}

std::string
Trace::toRows(std::size_t max_rows) const
{
    std::ostringstream os;
    std::size_t stride = std::max<std::size_t>(
        1, points_.size() / std::max<std::size_t>(1, max_rows));
    for (std::size_t i = 0; i < points_.size(); i += stride) {
        os << toMicroseconds(points_[i].time) << " " << points_[i].value
           << "\n";
    }
    return os.str();
}

} // namespace ich
