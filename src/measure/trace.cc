#include "measure/trace.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "state/chunkio.hh"

namespace ich
{

namespace
{

/** Points per data frame: bounds transient decode memory. */
constexpr std::size_t kTracePointsPerChunk = 65536;

void
put32(state::Buffer &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(state::Buffer &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putString(state::Buffer &out, const std::string &s)
{
    put32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Bounds-checked little-endian reads over one chunk body. */
class Cursor
{
  public:
    explicit Cursor(const state::Buffer &b) : b_(b) {}

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b_[off_ + i]) << (8 * i);
        off_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b_[off_ + i]) << (8 * i);
        off_ += 8;
        return v;
    }

    std::string str()
    {
        std::uint32_t n = u32();
        need(n);
        std::string s(b_.begin() + static_cast<std::ptrdiff_t>(off_),
                      b_.begin() +
                          static_cast<std::ptrdiff_t>(off_ + n));
        off_ += n;
        return s;
    }

    void expectEnd() const
    {
        if (off_ != b_.size())
            throw state::ArchiveError(
                "trace chunk: trailing bytes in body");
    }

  private:
    const state::Buffer &b_;
    std::size_t off_ = 0;

    void need(std::size_t n) const
    {
        if (b_.size() - off_ < n)
            throw state::ArchiveError("trace chunk: truncated body");
    }
};

} // namespace

double
Trace::minValue() const
{
    double m = points_.empty() ? 0.0 : points_.front().value;
    for (const auto &p : points_)
        m = std::min(m, p.value);
    return m;
}

double
Trace::maxValue() const
{
    double m = points_.empty() ? 0.0 : points_.front().value;
    for (const auto &p : points_)
        m = std::max(m, p.value);
    return m;
}

double
Trace::meanValue() const
{
    if (points_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : points_)
        sum += p.value;
    return sum / points_.size();
}

double
Trace::valueAt(Time t) const
{
    if (sorted_) {
        auto it = std::upper_bound(
            points_.begin(), points_.end(), t,
            [](Time lhs, const TracePoint &p) { return lhs < p.time; });
        if (it == points_.begin())
            return 0.0;
        return std::prev(it)->value;
    }
    // Out-of-order hand-built trace: the historical stop-at-first-
    // later-sample scan (kept bit-compatible rather than "fixed" —
    // sorted recordings never take this path).
    double v = 0.0;
    for (const auto &p : points_) {
        if (p.time > t)
            break;
        v = p.value;
    }
    return v;
}

std::string
Trace::toRows(std::size_t max_rows) const
{
    std::ostringstream os;
    // Decimation indexes straight to every strided sample — O(rows),
    // never a scan of the full series.
    std::size_t stride = std::max<std::size_t>(
        1, points_.size() / std::max<std::size_t>(1, max_rows));
    for (std::size_t i = 0; i < points_.size(); i += stride) {
        os << toMicroseconds(points_[i].time) << " " << points_[i].value
           << "\n";
    }
    return os.str();
}

void
Trace::saveColumnar(const std::string &path) const
{
    state::ChunkFileWriter w;
    w.create(path, /*durable=*/false);

    state::Buffer header;
    put32(header, kTraceFormatTag);
    put32(header, 1); // format version
    putString(header, name_);
    put64(header, points_.size());
    w.append(kTraceChunkHeader, header);

    for (std::size_t base = 0; base < points_.size();
         base += kTracePointsPerChunk) {
        std::size_t n =
            std::min(kTracePointsPerChunk, points_.size() - base);
        state::Buffer body;
        body.reserve(8 + 16 * n);
        put64(body, n);
        for (std::size_t i = 0; i < n; ++i)
            put64(body, points_[base + i].time);
        for (std::size_t i = 0; i < n; ++i)
            put64(body, doubleBits(points_[base + i].value));
        w.append(kTraceChunkData, body);
    }
    w.close();
}

Trace
Trace::loadColumnar(const std::string &path)
{
    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;

    if (!scan.next(frame) || frame.kind != kTraceChunkHeader)
        throw state::ArchiveError("trace file '" + path +
                                  "': missing header chunk");
    Cursor h(frame.body);
    if (h.u32() != kTraceFormatTag)
        throw state::ArchiveError("trace file '" + path +
                                  "': not a columnar trace");
    std::uint32_t version = h.u32();
    if (version != 1)
        throw state::ArchiveError("trace file '" + path +
                                  "': unsupported version " +
                                  std::to_string(version));
    Trace t(h.str());
    std::uint64_t declared = h.u64();
    h.expectEnd();
    t.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(declared, 1u << 20)));

    while (scan.next(frame)) {
        if (frame.kind == kTraceChunkHeader)
            throw state::ArchiveError("trace file '" + path +
                                      "': duplicate header chunk");
        if (frame.kind != kTraceChunkData)
            throw state::ArchiveError("trace file '" + path +
                                      "': unknown chunk kind " +
                                      std::to_string(frame.kind));
        Cursor c(frame.body);
        std::uint64_t n = c.u64();
        std::vector<Time> times(static_cast<std::size_t>(n));
        for (auto &tm : times)
            tm = c.u64();
        for (std::size_t i = 0; i < times.size(); ++i)
            t.add(times[i], bitsDouble(c.u64()));
        c.expectEnd();
    }
    // A torn tail (killed mid-save) drops to the intact prefix, same
    // contract as the result store; a complete-but-corrupt frame threw
    // inside next().
    return t;
}

} // namespace ich
