#include "detect/detector.hh"

#include "chip/chip.hh"
#include "detect/cusum.hh"
#include "detect/duty.hh"
#include "detect/sketch.hh"
#include "measure/daq.hh"
#include "state/archive.hh"
#include "state/snapshot.hh"

namespace ich
{
namespace detect
{

void
Detector::saveState(state::SaveContext &ctx) const
{
    state::ArchiveWriter &w = ctx.w();
    w.putU64(samples_);
    w.putU64(alarms_);
    w.putU64(firstAlarm_);
    w.putF64(peakScore_);
    w.putBool(wasAbove_);
}

void
Detector::restoreState(state::SectionReader &r)
{
    samples_ = r.getU64();
    alarms_ = r.getU64();
    firstAlarm_ = r.getU64();
    peakScore_ = r.getF64();
    wasAbove_ = r.getBool();
}

DetectorBank::DetectorBank(Chip &chip, const DetectConfig &cfg)
    : chip_(chip), cfg_(cfg)
{
    // Fixed construction order — the Ticker's persistent-member
    // contract requires a restoring bank to re-register identically.
    if (cfg_.enableSketch)
        detectors_.push_back(std::make_unique<SketchDetector>(
            chip, cfg_.sketch, cfg_.tickInterval));
    if (cfg_.enableCusum)
        detectors_.push_back(
            std::make_unique<CusumDetector>(chip, cfg_.cusum));
    if (cfg_.enableDuty)
        detectors_.push_back(
            std::make_unique<DutyCycleDetector>(chip, cfg_.duty));
    TickRate rate{cfg_.tickInterval, 0, cfg_.tickPriority};
    for (auto &d : detectors_)
        chip.ticker().add(*d, rate, Ticker::Ownership::kPersistent);
}

DetectorBank::~DetectorBank()
{
    for (auto &d : detectors_)
        chip_.ticker().remove(*d);
}

Detector *
DetectorBank::find(const std::string &name)
{
    for (auto &d : detectors_)
        if (name == d->name())
            return d.get();
    return nullptr;
}

exp::MetricMap
DetectorBank::metrics() const
{
    exp::MetricMap m;
    std::uint64_t samples = 0;
    for (const auto &d : detectors_) {
        std::string base = std::string("det_") + d->name();
        m[base + "_score"] = d->score();
        m[base + "_alarms"] = static_cast<double>(d->alarmCount());
        if (d->firstAlarmTime() != kNoAlarm)
            m[base + "_ttd_us"] = toMicroseconds(d->firstAlarmTime());
        samples = d->samples(); // same tick group: identical per detector
    }
    m["det_samples"] = static_cast<double>(samples);
    return m;
}

void
DetectorBank::addDaqChannels(Daq &daq) const
{
    for (const auto &d : detectors_) {
        Detector *dp = d.get();
        daq.addChannel(std::string("det_") + d->name() + "_stat",
                       [dp]() { return dp->statistic(); });
    }
}

void
DetectorBank::saveSections(state::ArchiveWriter &w,
                           state::SaveContext &ctx) const
{
    for (const auto &d : detectors_) {
        w.beginSection(std::string("detect.") + d->name());
        d->saveState(ctx);
        w.endSection();
    }
}

void
DetectorBank::restoreSections(state::ArchiveReader &ar,
                              state::RestoreContext &ctx)
{
    (void)ctx; // detectors own no events — ticks live in the Ticker
    for (auto &d : detectors_) {
        state::SectionReader r =
            ar.open(std::string("detect.") + d->name());
        d->restoreState(r);
        if (r.remaining() != 0)
            throw state::ArchiveError(
                std::string("detect.") + d->name() +
                ": trailing bytes after restore");
    }
}

} // namespace detect
} // namespace ich
