/**
 * @file
 * Probabilistic sketch detector over the throttle-event and
 * frequency-transition streams.
 *
 * The IChannels channels are *periodic*: every transaction asserts
 * core throttling in the same rhythm (TX window + 650 µs reset-time),
 * so the stream of per-core throttle-assert bursts carries a heavy
 * spike at one inter-burst gap. Honest neighbors (Poisson PHI bursts,
 * OS noise) spread their gaps geometrically. The detector folds each
 * observed (core, log2-gap-bucket) — and each frequency-transition gap
 * — into a count-min sketch and scores the *dominance* of the heaviest
 * key: heavyEstimate / totalUpdates. Bounded memory (depth × width
 * counters), line-rate updates, no per-flow state — the Nitrosketch
 * recipe, including optional per-row sampled updates with 1/p
 * increments.
 */

#ifndef ICH_DETECT_SKETCH_HH
#define ICH_DETECT_SKETCH_HH

#include <cstdint>
#include <vector>

#include "detect/detector.hh"

namespace ich
{
namespace detect
{

/**
 * Count-min sketch with optional Nitrosketch-style per-row sampling.
 * Deterministic: row hashes and the sampling stream derive from the
 * constructor seed alone.
 */
class CountMinSketch
{
  public:
    CountMinSketch(int depth, int width, double row_sample_prob,
                   std::uint64_t seed);

    /** Fold @p key in with weight @p w (sampled rows add w/p). */
    void update(std::uint64_t key, double w = 1.0);

    /** Point estimate (min over rows); >= true count when p == 1. */
    double estimate(std::uint64_t key) const;

    /** Total weight folded in (sum of update() weights, unscaled). */
    double totalWeight() const { return total_; }

    std::uint64_t updates() const { return updates_; }
    int depth() const { return depth_; }
    int width() const { return width_; }

    void reset();

    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    int depth_;
    int width_;
    double sampleProb_;
    std::uint64_t seed_;
    std::vector<double> counters_; ///< depth_ rows of width_
    double total_ = 0.0;
    std::uint64_t updates_ = 0;
    std::uint64_t rngState_; ///< splitmix64 stream for row sampling

    std::size_t cell(int row, std::uint64_t key) const;
    double nextUniform();
};

/**
 * Sketch-based periodicity detector. Statistic: share of all folded
 * updates attributed (count-min estimate) to the heaviest key seen so
 * far, in [0, 1]; 0 until SketchParams::minUpdates updates arrived.
 */
class SketchDetector final : public Detector
{
  public:
    SketchDetector(Chip &chip, const SketchParams &p, Time tick_interval);

    const char *name() const override { return "sketch"; }
    double statistic() const override;

    const CountMinSketch &sketch() const { return sketch_; }
    /** Heaviest (core, gap-bucket) key observed (diagnostics). */
    std::uint64_t heavyKey() const { return heavyKey_; }

    void saveState(state::SaveContext &ctx) const override;
    void restoreState(state::SectionReader &r) override;

  protected:
    void observe(Time now) override;

  private:
    SketchParams params_;
    Time tickInterval_;
    CountMinSketch sketch_;
    /** Per-core throttle-assert counters at the previous tick. */
    std::vector<std::uint64_t> lastAsserts_;
    /** Per-core time of the last tick with assert activity (0: none). */
    std::vector<Time> lastActive_;
    std::uint64_t lastPstates_ = 0;
    Time lastPstateActive_ = 0;
    double heavyEstimate_ = 0.0;
    std::uint64_t heavyKey_ = 0;

    void fold(std::uint64_t key);
    std::uint32_t gapBucket(Time now, Time last) const;
};

} // namespace detect
} // namespace ich

#endif // ICH_DETECT_SKETCH_HH
