#include "detect/sketch.hh"

#include <stdexcept>

#include "chip/chip.hh"
#include "state/archive.hh"
#include "state/snapshot.hh"

namespace ich
{
namespace detect
{

namespace
{

/** splitmix64 — the repo's standard cheap deterministic mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

// ----------------------------------------------------- CountMinSketch

CountMinSketch::CountMinSketch(int depth, int width,
                               double row_sample_prob, std::uint64_t seed)
    : depth_(depth), width_(width), sampleProb_(row_sample_prob),
      seed_(seed), rngState_(mix64(seed ^ 0xA11CE5ULL))
{
    if (depth_ <= 0 || width_ <= 0)
        throw std::invalid_argument("CountMinSketch: depth and width "
                                    "must be positive");
    if (!(sampleProb_ > 0.0) || sampleProb_ > 1.0)
        throw std::invalid_argument(
            "CountMinSketch: rowSampleProb must be in (0, 1]");
    counters_.assign(static_cast<std::size_t>(depth_) * width_, 0.0);
}

std::size_t
CountMinSketch::cell(int row, std::uint64_t key) const
{
    std::uint64_t h = mix64(key ^ mix64(seed_ + 0x9E37ULL * (row + 1)));
    return static_cast<std::size_t>(row) * width_ + h % width_;
}

double
CountMinSketch::nextUniform()
{
    rngState_ = mix64(rngState_);
    // 53-bit mantissa fraction in [0, 1).
    return static_cast<double>(rngState_ >> 11) * 0x1.0p-53;
}

void
CountMinSketch::update(std::uint64_t key, double w)
{
    ++updates_;
    total_ += w;
    if (sampleProb_ >= 1.0) {
        for (int row = 0; row < depth_; ++row)
            counters_[cell(row, key)] += w;
        return;
    }
    // Nitrosketch: sample each row independently, add w/p so counter
    // expectations match the exact sketch.
    for (int row = 0; row < depth_; ++row)
        if (nextUniform() < sampleProb_)
            counters_[cell(row, key)] += w / sampleProb_;
}

double
CountMinSketch::estimate(std::uint64_t key) const
{
    double est = counters_[cell(0, key)];
    for (int row = 1; row < depth_; ++row) {
        double c = counters_[cell(row, key)];
        if (c < est)
            est = c;
    }
    return est;
}

void
CountMinSketch::reset()
{
    counters_.assign(counters_.size(), 0.0);
    total_ = 0.0;
    updates_ = 0;
    rngState_ = mix64(seed_ ^ 0xA11CE5ULL);
}

void
CountMinSketch::saveState(state::SaveContext &ctx) const
{
    state::ArchiveWriter &w = ctx.w();
    w.putU32(static_cast<std::uint32_t>(counters_.size()));
    for (double c : counters_)
        w.putF64(c);
    w.putF64(total_);
    w.putU64(updates_);
    w.putU64(rngState_);
}

void
CountMinSketch::restoreState(state::SectionReader &r)
{
    if (r.getU32() != counters_.size())
        throw state::ArchiveError(
            "CountMinSketch: dimension mismatch — the restoring bank "
            "must be constructed with the saved config");
    for (double &c : counters_)
        c = r.getF64();
    total_ = r.getF64();
    updates_ = r.getU64();
    rngState_ = r.getU64();
}

// ------------------------------------------------------ SketchDetector

SketchDetector::SketchDetector(Chip &chip, const SketchParams &p,
                               Time tick_interval)
    : Detector(chip), params_(p), tickInterval_(tick_interval),
      sketch_(p.depth, p.width, p.rowSampleProb, p.seed),
      lastAsserts_(chip.coreCount(), 0),
      lastActive_(chip.coreCount(), 0)
{
}

std::uint32_t
SketchDetector::gapBucket(Time now, Time last) const
{
    // log2 of the gap in ticks: periodic traffic lands one bucket,
    // Poisson traffic spreads geometrically.
    std::uint64_t ticks = (now - last) / tickInterval_;
    std::uint32_t b = 0;
    while (ticks > 1) {
        ticks >>= 1;
        ++b;
    }
    return b;
}

void
SketchDetector::fold(std::uint64_t key)
{
    sketch_.update(key);
    double est = sketch_.estimate(key);
    if (est > heavyEstimate_) {
        heavyEstimate_ = est;
        heavyKey_ = key;
    }
}

double
SketchDetector::statistic() const
{
    if (sketch_.updates() <
        static_cast<std::uint64_t>(params_.minUpdates))
        return 0.0;
    return sketch_.totalWeight() > 0.0
               ? heavyEstimate_ / sketch_.totalWeight()
               : 0.0;
}

void
SketchDetector::observe(Time now)
{
    for (int c = 0; c < chip_.coreCount(); ++c) {
        std::uint64_t asserts = chip_.core(c).throttle().assertCount();
        if (asserts != lastAsserts_[c]) {
            if (lastActive_[c] != 0)
                fold((static_cast<std::uint64_t>(c) << 8) |
                     gapBucket(now, lastActive_[c]));
            lastActive_[c] = now;
            lastAsserts_[c] = asserts;
        }
    }
    std::uint64_t pstates = chip_.pmu().pstateTransitions();
    if (pstates != lastPstates_) {
        if (lastPstateActive_ != 0)
            fold((0xF00ULL << 8) | gapBucket(now, lastPstateActive_));
        lastPstateActive_ = now;
        lastPstates_ = pstates;
    }
    double s = statistic();
    notePeak(s);
    noteAlarmLevel(s >= params_.threshold, now);
}

void
SketchDetector::saveState(state::SaveContext &ctx) const
{
    Detector::saveState(ctx);
    state::ArchiveWriter &w = ctx.w();
    sketch_.saveState(ctx);
    w.putU32(static_cast<std::uint32_t>(lastAsserts_.size()));
    for (std::size_t c = 0; c < lastAsserts_.size(); ++c) {
        w.putU64(lastAsserts_[c]);
        w.putU64(lastActive_[c]);
    }
    w.putU64(lastPstates_);
    w.putU64(lastPstateActive_);
    w.putF64(heavyEstimate_);
    w.putU64(heavyKey_);
}

void
SketchDetector::restoreState(state::SectionReader &r)
{
    Detector::restoreState(r);
    sketch_.restoreState(r);
    if (r.getU32() != lastAsserts_.size())
        throw state::ArchiveError(
            "SketchDetector: core count mismatch");
    for (std::size_t c = 0; c < lastAsserts_.size(); ++c) {
        lastAsserts_[c] = r.getU64();
        lastActive_[c] = r.getU64();
    }
    lastPstates_ = r.getU64();
    lastPstateActive_ = r.getU64();
    heavyEstimate_ = r.getF64();
    heavyKey_ = r.getU64();
}

} // namespace detect
} // namespace ich
