/**
 * @file
 * Online covert-channel detection subsystem (ROADMAP item 4).
 *
 * The paper's mitigation story (tab01) is static: attacks run,
 * mitigations dampen them, nothing *watches* for channel activity at
 * runtime. This subsystem adds the watcher: detectors ride the chip's
 * shared Ticker as Clocked members and sample — read-only — the very
 * observables the IChannels spy exploits: per-core throttle residency
 * and assert counts, P-state/frequency transitions, and package power
 * over RAPL-style windows.
 *
 * Contract (every concrete detector):
 *
 *  - Bounded memory: state is O(config), never O(simulated time).
 *  - Deterministic: no reads of the simulation's Rng (which would
 *    perturb the run) — a detector needing randomness (Nitrosketch
 *    sampling) derives it from its own config seed. Attaching a
 *    detector never changes channel physics: ticks only *read* chip
 *    state, so BER/TP metrics are identical with and without the bank.
 *  - Snapshot-composable: full saveState()/restoreState(), so a bank
 *    attached before a warm-fork snapshot restores bit-exactly in
 *    every forked trial (and across --jobs N / --shard N).
 *
 * Two outputs per detector:
 *
 *  - A threshold-free, monotone *peak score* (score()): the maximum of
 *    the detection statistic over the run. ROC curves threshold this
 *    post-hoc, so one simulated trial serves every operating point and
 *    TPR/FPR are monotone in the threshold by construction.
 *  - Online alarms at the *configured* threshold: alarmCount() and
 *    firstAlarmTime() (time-to-detect), emitted through the
 *    measure/ -> exp/ metric pipeline via DetectorBank::metrics().
 */

#ifndef ICH_DETECT_DETECTOR_HH
#define ICH_DETECT_DETECTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "common/ticker.hh"
#include "common/types.hh"
#include "exp/scenario.hh"
#include "state/fwd.hh"

namespace ich
{

class Chip;
class Daq;
class Simulation;

namespace detect
{

/** firstAlarmTime() when no alarm has fired. */
constexpr Time kNoAlarm = ~static_cast<Time>(0);

/** Count-min / Nitrosketch-style periodicity detector parameters. */
struct SketchParams {
    int depth = 4;    ///< hash rows
    int width = 512;  ///< counters per row
    /**
     * Nitrosketch idiom: update each row independently with this
     * probability, adding 1/p — bounded update cost at line rate. 1.0
     * == exact count-min.
     */
    double rowSampleProb = 1.0;
    /** Hash/sampling seed (detector-local; never the sim Rng). */
    std::uint64_t seed = 0x1CEB00DAULL;
    /** Alarm when the heaviest key's share of updates reaches this. */
    double threshold = 0.20;
    /** Updates required before the dominance score is meaningful. */
    int minUpdates = 48;
};

/** CUSUM change-point parameters (RAPL-window package power). */
struct CusumParams {
    /** Allowed drift (slack) around the learned baseline, watts. */
    double driftWatts = 0.75;
    /** Alarm threshold h on the CUSUM statistic, watt-ticks. */
    double threshold = 1.5;
    /** Ticks used to learn the baseline mean power. */
    int warmupTicks = 64;
};

/** Throttle duty-cycle residency parameters. */
struct DutyParams {
    int windowTicks = 64;
    /** Alarm when a window's worst per-core residency reaches this. */
    double threshold = 0.12;
};

/** Bank-level configuration. */
struct DetectConfig {
    /** Observation sampling period (all detectors share one rate). */
    Time tickInterval = fromMicroseconds(20.0);
    /**
     * Tick priority: high, so detectors observe chip state *after*
     * any same-timestamp housekeeping has applied.
     */
    int tickPriority = 1000;
    bool enableSketch = true;
    bool enableCusum = true;
    bool enableDuty = true;
    SketchParams sketch;
    CusumParams cusum;
    DutyParams duty;
};

/**
 * Base class for online detectors. Subclasses implement observe() (one
 * sampling tick) and the state hooks; alarm bookkeeping and peak-score
 * tracking live here.
 */
class Detector : public Clocked
{
  public:
    explicit Detector(Chip &chip) : chip_(chip) {}

    /** Stable identifier used in metric names and archive sections. */
    virtual const char *name() const = 0;

    /** Threshold-free peak detection statistic over the run so far. */
    double score() const { return peakScore_; }

    /** Alarms fired at the configured threshold. */
    std::uint64_t alarmCount() const { return alarms_; }

    /** Absolute time of the first alarm, or kNoAlarm. */
    Time firstAlarmTime() const { return firstAlarm_; }

    /** Observation ticks delivered. */
    std::uint64_t samples() const { return samples_; }

    /** Current (instantaneous) statistic — Daq probe / figures. */
    virtual double statistic() const = 0;

    /** @name Clocked */
    ///@{
    void
    tick(Time now) override
    {
        ++samples_;
        observe(now);
    }
    const char *tickName() const override { return name(); }
    ///@}

    /** Serialize counters (no events owned — ticks live in the Ticker). */
    virtual void saveState(state::SaveContext &ctx) const;
    virtual void restoreState(state::SectionReader &r);

  protected:
    /** One observation at @p now (read-only chip access). */
    virtual void observe(Time now) = 0;

    /** Track the peak of the threshold-free statistic. */
    void
    notePeak(double s)
    {
        if (s > peakScore_)
            peakScore_ = s;
    }

    /**
     * Feed the alarm edge detector: @p above is "statistic at or over
     * the configured threshold". Counts rising edges; records the
     * first alarm time.
     */
    void
    noteAlarmLevel(bool above, Time now)
    {
        if (above && !wasAbove_) {
            ++alarms_;
            if (firstAlarm_ == kNoAlarm)
                firstAlarm_ = now;
        }
        wasAbove_ = above;
    }

    Chip &chip_;

  private:
    std::uint64_t samples_ = 0;
    std::uint64_t alarms_ = 0;
    Time firstAlarm_ = kNoAlarm;
    double peakScore_ = 0.0;
    bool wasAbove_ = false;
};

/**
 * Owns one set of detectors and their shared Ticker registration.
 *
 * The bank registers every enabled detector with the chip's Ticker as
 * kPersistent members of one rate group, in a fixed order — so a bank
 * constructed with the same config on a restored Simulation satisfies
 * the Ticker's persistent-member contract and the whole arrangement
 * composes with warm-fork snapshots and --shard workers.
 */
class DetectorBank
{
  public:
    DetectorBank(Chip &chip, const DetectConfig &cfg);
    ~DetectorBank();

    DetectorBank(const DetectorBank &) = delete;
    DetectorBank &operator=(const DetectorBank &) = delete;

    const DetectConfig &config() const { return cfg_; }

    std::size_t size() const { return detectors_.size(); }
    Detector &detector(std::size_t i) { return *detectors_.at(i); }
    const Detector &detector(std::size_t i) const
    {
        return *detectors_.at(i);
    }

    /** Look up by Detector::name(); nullptr when absent/disabled. */
    Detector *find(const std::string &name);

    /**
     * Alarm metrics for the exp/ pipeline:
     *   det_<name>_score, det_<name>_alarms, det_<name>_ttd_us
     * (ttd omitted while no alarm fired), plus det_samples.
     */
    exp::MetricMap metrics() const;

    /** Register one Daq channel per detector ("det_<name>_stat"). */
    void addDaqChannels(Daq &daq) const;

    /**
     * Extra-section snapshot hooks (state::snapshot/restore): one
     * "detect.<name>" section per detector. The restoring bank must be
     * constructed with an identical config, attached before the core
     * sections restore (RestoreHooks::attach).
     */
    void saveSections(state::ArchiveWriter &w,
                      state::SaveContext &ctx) const;
    void restoreSections(state::ArchiveReader &ar,
                         state::RestoreContext &ctx);

  private:
    Chip &chip_;
    DetectConfig cfg_;
    std::vector<std::unique_ptr<Detector>> detectors_;
};

} // namespace detect
} // namespace ich

#endif // ICH_DETECT_DETECTOR_HH
