/**
 * @file
 * Throttle duty-cycle residency detector.
 *
 * The crudest — and cheapest — observable the spy leaves behind: while
 * a guardband up-transition is in flight the core's IDQ is blocked 3
 * of 4 cycles, and a covert channel re-triggers that state every
 * transaction. The detector counts, per core, the fraction of
 * observation ticks with throttle activity — the level asserted at the
 * sample instant *or* an assert edge since the previous sample, so
 * pulses shorter than the sampling period still register — inside
 * fixed windows of windowTicks samples; the statistic is the worst
 * per-core residency of the latest completed window. Honest tenants
 * throttle in isolated bursts (low residency); a channel at usable
 * throughput sustains it on its two cores.
 */

#ifndef ICH_DETECT_DUTY_HH
#define ICH_DETECT_DUTY_HH

#include <vector>

#include "detect/detector.hh"

namespace ich
{
namespace detect
{

class DutyCycleDetector final : public Detector
{
  public:
    DutyCycleDetector(Chip &chip, const DutyParams &p);

    const char *name() const override { return "duty"; }

    /** Worst per-core residency of the latest completed window. */
    double statistic() const override { return lastResidency_; }

    void saveState(state::SaveContext &ctx) const override;
    void restoreState(state::SectionReader &r) override;

  protected:
    void observe(Time now) override;

  private:
    DutyParams params_;
    std::vector<std::uint32_t> throttledTicks_; ///< per core, this window
    std::vector<std::uint64_t> lastAsserts_;    ///< per core, last sample
    int windowFill_ = 0;
    double lastResidency_ = 0.0;
};

} // namespace detect
} // namespace ich

#endif // ICH_DETECT_DUTY_HH
