#include "detect/duty.hh"

#include <algorithm>

#include "chip/chip.hh"
#include "state/archive.hh"
#include "state/snapshot.hh"

namespace ich
{
namespace detect
{

DutyCycleDetector::DutyCycleDetector(Chip &chip, const DutyParams &p)
    : Detector(chip), params_(p),
      throttledTicks_(chip.coreCount(), 0),
      lastAsserts_(chip.coreCount(), 0)
{
}

void
DutyCycleDetector::observe(Time now)
{
    for (int c = 0; c < chip_.coreCount(); ++c) {
        const ThrottleUnit &tu = chip_.core(c).throttle();
        std::uint64_t asserts = tu.assertCount();
        if (tu.throttled() || asserts != lastAsserts_[c])
            ++throttledTicks_[c];
        lastAsserts_[c] = asserts;
    }
    if (++windowFill_ < params_.windowTicks)
        return;
    std::uint32_t worst =
        *std::max_element(throttledTicks_.begin(), throttledTicks_.end());
    lastResidency_ =
        static_cast<double>(worst) / params_.windowTicks;
    std::fill(throttledTicks_.begin(), throttledTicks_.end(), 0);
    windowFill_ = 0;
    notePeak(lastResidency_);
    noteAlarmLevel(lastResidency_ >= params_.threshold, now);
}

void
DutyCycleDetector::saveState(state::SaveContext &ctx) const
{
    Detector::saveState(ctx);
    state::ArchiveWriter &w = ctx.w();
    w.putU32(static_cast<std::uint32_t>(throttledTicks_.size()));
    for (std::uint32_t t : throttledTicks_)
        w.putU32(t);
    for (std::uint64_t a : lastAsserts_)
        w.putU64(a);
    w.putI32(windowFill_);
    w.putF64(lastResidency_);
}

void
DutyCycleDetector::restoreState(state::SectionReader &r)
{
    Detector::restoreState(r);
    if (r.getU32() != throttledTicks_.size())
        throw state::ArchiveError(
            "DutyCycleDetector: core count mismatch");
    for (std::uint32_t &t : throttledTicks_)
        t = r.getU32();
    for (std::uint64_t &a : lastAsserts_)
        a = r.getU64();
    windowFill_ = r.getI32();
    lastResidency_ = r.getF64();
}

} // namespace detect
} // namespace ich
