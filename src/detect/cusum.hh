/**
 * @file
 * CUSUM change-point detector on RAPL-window package power.
 *
 * A covert channel modulates the shared rail: every transaction's PHI
 * burst lifts package power above the tenant mix's baseline in a
 * sustained, repeating pattern. The detector learns the baseline mean
 * over a warmup window, then runs a two-sided CUSUM on the per-tick
 * power samples: S+ accrues excursions above (baseline + drift), S-
 * below (baseline - drift). The threshold-free peak statistic is the
 * largest S value reached (never reset), so post-hoc ROC thresholding
 * stays monotone; the online alarm path uses the classic
 * reset-on-alarm recursion at the configured threshold.
 */

#ifndef ICH_DETECT_CUSUM_HH
#define ICH_DETECT_CUSUM_HH

#include "detect/detector.hh"

namespace ich
{
namespace detect
{

class CusumDetector final : public Detector
{
  public:
    CusumDetector(Chip &chip, const CusumParams &p);

    const char *name() const override { return "cusum"; }

    /** max(S+, S-) of the non-resetting statistic, watt-ticks. */
    double statistic() const override;

    double baselineWatts() const { return mu0_; }
    bool warmedUp() const { return warmupLeft_ == 0; }

    void saveState(state::SaveContext &ctx) const override;
    void restoreState(state::SectionReader &r) override;

  protected:
    void observe(Time now) override;

  private:
    CusumParams params_;
    int warmupLeft_;
    double warmupSum_ = 0.0;
    double mu0_ = 0.0; ///< learned baseline mean power, watts
    // Resetting recursion (online alarms at the configured threshold).
    double sPos_ = 0.0;
    double sNeg_ = 0.0;
    // Non-resetting twin (threshold-free peak score for ROC).
    double freePos_ = 0.0;
    double freeNeg_ = 0.0;
};

} // namespace detect
} // namespace ich

#endif // ICH_DETECT_CUSUM_HH
