#include "detect/tenant.hh"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chip/presets.hh"
#include "os/phi_app.hh"

namespace ich
{
namespace detect
{

TenantConfig::TenantConfig() : chip(presets::skylakeServer()) {}

namespace
{

/** Everything attached to one trial's Simulation (detached on reset). */
struct TenantHandles {
    std::unique_ptr<DetectorBank> bank;
    std::vector<std::unique_ptr<Rng>> rngs; ///< one per tenant app
    std::vector<std::unique_ptr<PhiApp>> apps;
};

/** Symbols the attacker's payload packs into (2 bits each). */
std::size_t
payloadSymbols(const TenantConfig &cfg)
{
    return static_cast<std::size_t>((cfg.payloadBits + 1) / 2);
}

/** Attacker transaction period at the configured duty cycle. */
Time
attackerPeriod(const TenantConfig &cfg)
{
    ChannelConfig base;
    return static_cast<Time>(
        std::llround(static_cast<double>(base.period) /
                     cfg.attackerDuty));
}

/** The observation horizon both trial arms share. */
Time
trialHorizon(const TenantConfig &cfg)
{
    return fromMicroseconds(toMicroseconds(attackerPeriod(cfg)) *
                            (payloadSymbols(cfg) + 2));
}

/**
 * Attach the detector bank, the victim, and the honest neighbors.
 * Tenant placement is fixed: the attacker holds cores 0/1, the victim
 * core 2, honest tenant i core 3 + (i mod free) — identical whether or
 * not the attacker is actually present, so present/absent trials
 * differ only in the channel itself.
 */
void
attachTenants(Simulation &sim, const TenantConfig &cfg, Time horizon,
              TenantHandles &h)
{
    h.bank = std::make_unique<DetectorBank>(sim.chip(), cfg.detect);

    auto addApp = [&](double rate, CoreId core, std::uint64_t salt) {
        if (rate <= 0.0)
            return;
        PhiAppConfig app;
        app.phiRatePerSec = rate;
        h.rngs.push_back(std::make_unique<Rng>(cfg.seed * 2654435761ULL +
                                               salt));
        h.apps.push_back(std::make_unique<PhiApp>(
            sim.chip(), *h.rngs.back(), app, core, 0));
        h.apps.back()->start(horizon);
    };

    int cores = cfg.chip.numCores;
    if (cores < 4)
        throw std::invalid_argument(
            "runTenantTrial: need >= 4 cores (attacker pair + victim + "
            "neighbors)");
    addApp(cfg.victimPhiRatePerSec, 2, 0xBEEF);
    int free_cores = cores - 3;
    for (int i = 0; i < cfg.honestTenants; ++i)
        addApp(cfg.honestPhiRatePerSec,
               static_cast<CoreId>(3 + i % free_cores),
               0x1000 + static_cast<std::uint64_t>(i));
}

} // namespace

TenantResult
runTenantTrial(const TenantConfig &cfg)
{
    TenantResult res;
    Time horizon = trialHorizon(cfg);

    if (cfg.attackerPresent) {
        ChannelConfig ccfg;
        ccfg.chip = cfg.chip;
        ccfg.seed = cfg.seed;
        ccfg.period = attackerPeriod(cfg);
        std::unique_ptr<CovertChannel> ch = makeChannel(cfg.kind, ccfg);
        // Calibrate unobserved (quiet conditions), then watch the
        // payload run.
        ch->calibration();
        TenantHandles h;
        CovertChannel::SimHooks hooks;
        hooks.onStart = [&](Simulation &sim) {
            attachTenants(sim, cfg, horizon, h);
        };
        hooks.onFinish = [&](Simulation &sim) {
            (void)sim;
            res.metrics = h.bank->metrics();
            h = TenantHandles{}; // detach before the Simulation dies
        };
        ch->setSimHooks(std::move(hooks));

        BitVec payload;
        std::uint64_t lcg = cfg.seed * 6364136223846793005ULL + 1;
        for (int i = 0; i < cfg.payloadBits; ++i) {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            payload.push_back(static_cast<std::uint8_t>(lcg >> 62 & 1));
        }
        TransmitResult tx = ch->transmit(payload);
        res.metrics["ber"] = tx.ber;
        res.metrics["throughput_bps"] = tx.throughputBps;
    } else {
        ChipConfig chip = cfg.chip;
        // Same pinned operating point the channel would use, so the
        // honest-only power/throttle baseline is comparable.
        chip.pmu.governor.policy = GovernorPolicy::kUserspace;
        chip.pmu.governor.userspaceGhz = ChannelConfig{}.freqGhz;
        Simulation sim(chip, cfg.seed);
        TenantHandles h;
        attachTenants(sim, cfg, horizon, h);
        // run() would return immediately (no thread programs installed);
        // the honest arm must observe for the full shared horizon.
        sim.runFor(horizon);
        res.metrics = h.bank->metrics();
    }
    res.metrics["duty"] = cfg.attackerDuty;
    return res;
}

FrontierPoint
adaptiveDutySearch(const TenantConfig &base, const std::string &detector,
                   double score_budget, int iters, double min_duty)
{
    std::string key = "det_" + detector + "_score";
    auto eval = [&](double duty) {
        TenantConfig cfg = base;
        cfg.attackerPresent = true;
        cfg.attackerDuty = duty;
        TenantResult r = runTenantTrial(cfg);
        FrontierPoint p;
        p.duty = duty;
        p.score = r.metrics.at(key);
        p.throughputBps = r.metrics.at("throughput_bps");
        p.ber = r.metrics.at("ber");
        p.feasible = p.score <= score_budget;
        return p;
    };

    FrontierPoint full = eval(1.0);
    if (full.feasible)
        return full; // the detector budget doesn't bind at all
    FrontierPoint best = eval(min_duty);
    if (!best.feasible)
        return best; // can't hide even at the minimum duty
    double lo = min_duty, hi = 1.0;
    for (int i = 0; i < iters; ++i) {
        FrontierPoint mid = eval(0.5 * (lo + hi));
        if (mid.feasible) {
            best = mid;
            lo = mid.duty;
        } else {
            hi = mid.duty;
        }
    }
    return best;
}

} // namespace detect
} // namespace ich
