#include "detect/cusum.hh"

#include <algorithm>

#include "chip/chip.hh"
#include "state/archive.hh"
#include "state/snapshot.hh"

namespace ich
{
namespace detect
{

CusumDetector::CusumDetector(Chip &chip, const CusumParams &p)
    : Detector(chip), params_(p), warmupLeft_(std::max(1, p.warmupTicks))
{
}

double
CusumDetector::statistic() const
{
    return std::max(freePos_, freeNeg_);
}

void
CusumDetector::observe(Time now)
{
    double p = chip_.powerWatts();
    if (warmupLeft_ > 0) {
        warmupSum_ += p;
        if (--warmupLeft_ == 0)
            mu0_ = warmupSum_ / params_.warmupTicks;
        return;
    }
    double k = params_.driftWatts;
    sPos_ = std::max(0.0, sPos_ + (p - mu0_ - k));
    sNeg_ = std::max(0.0, sNeg_ + (mu0_ - p - k));
    freePos_ = std::max(0.0, freePos_ + (p - mu0_ - k));
    freeNeg_ = std::max(0.0, freeNeg_ + (mu0_ - p - k));
    notePeak(std::max(freePos_, freeNeg_));
    bool above = std::max(sPos_, sNeg_) >= params_.threshold;
    noteAlarmLevel(above, now);
    if (above) {
        // Classic CUSUM restart after an alarm.
        sPos_ = 0.0;
        sNeg_ = 0.0;
    }
}

void
CusumDetector::saveState(state::SaveContext &ctx) const
{
    Detector::saveState(ctx);
    state::ArchiveWriter &w = ctx.w();
    w.putI32(warmupLeft_);
    w.putF64(warmupSum_);
    w.putF64(mu0_);
    w.putF64(sPos_);
    w.putF64(sNeg_);
    w.putF64(freePos_);
    w.putF64(freeNeg_);
}

void
CusumDetector::restoreState(state::SectionReader &r)
{
    Detector::restoreState(r);
    warmupLeft_ = r.getI32();
    warmupSum_ = r.getF64();
    mu0_ = r.getF64();
    sPos_ = r.getF64();
    sNeg_ = r.getF64();
    freePos_ = r.getF64();
    freeNeg_ = r.getF64();
}

} // namespace detect
} // namespace ich
