/**
 * @file
 * N-tenant co-residency trials for detector-vs-attacker campaigns.
 *
 * One trial places, on the server preset, an optional IChannels
 * attacker (sender core 0 / receiver core 1), a victim workload, and a
 * configurable number of honest noisy neighbors (free-running PhiApp
 * tenants) on the remaining cores — then attaches a DetectorBank and
 * reports its alarm metrics alongside the channel's BER/throughput.
 * Attacker-present trials give the ROC its true-positive scores;
 * attacker-absent trials (same tenants, same horizon) give the
 * false-positive scores.
 *
 * The adaptive attacker stretches its transaction period by 1/duty —
 * the paper's pacing contract (TX window + reset-time) still holds, the
 * channel still decodes, but throughput and the detectors' observables
 * both scale down with duty. adaptiveDutySearch() bisects duty against
 * a detector score budget, tracing the capacity-vs-detectability
 * frontier.
 */

#ifndef ICH_DETECT_TENANT_HH
#define ICH_DETECT_TENANT_HH

#include <string>

#include "channels/channel.hh"
#include "detect/detector.hh"

namespace ich
{
namespace detect
{

/** One co-residency trial's population and knobs. */
struct TenantConfig {
    /** Chip preset; defaults to presets::skylakeServer() in the ctor. */
    ChipConfig chip;
    std::uint64_t seed = 1;
    ChannelKind kind = ChannelKind::kCores;
    bool attackerPresent = true;
    /**
     * Attacker duty cycle in (0, 1]: the transaction period is
     * basePeriod / duty, so 1.0 is the paper's full-rate channel.
     */
    double attackerDuty = 1.0;
    /** Payload bits the attacker transfers (2 per transaction). */
    int payloadBits = 64;
    /** Honest PhiApp tenants on cores after the victim. */
    int honestTenants = 4;
    /** Poisson PHI burst rate of each honest tenant. */
    double honestPhiRatePerSec = 2000.0;
    /** Victim: a steady compute tenant on the first free core. */
    double victimPhiRatePerSec = 500.0;
    DetectConfig detect;

    TenantConfig();
};

/** Outcome of one co-residency trial. */
struct TenantResult {
    /**
     * Detector metrics (det_*), plus ber / throughput_bps / duty for
     * attacker-present trials. Flows straight into the exp/ pipeline.
     */
    exp::MetricMap metrics;
};

/**
 * Run one co-residency trial. Deterministic in cfg (tenants draw from
 * Rngs forked off cfg.seed, never the simulation's own stream beyond
 * what the attacker's noise config already uses).
 */
TenantResult runTenantTrial(const TenantConfig &cfg);

/** One point on the capacity-vs-detectability frontier. */
struct FrontierPoint {
    double duty = 0.0;
    double score = 0.0; ///< peak score of the budgeted detector
    double throughputBps = 0.0;
    double ber = 0.0;
    bool feasible = false; ///< score <= budget was achievable
};

/**
 * Adaptive attacker: bisect the duty cycle (strongest-attacker model —
 * it can observe the deployed detector's score) to the largest duty
 * whose @p detector peak score stays within @p score_budget. Runs
 * @p iters probe trials; each probe is one runTenantTrial().
 */
FrontierPoint adaptiveDutySearch(const TenantConfig &base,
                                 const std::string &detector,
                                 double score_budget, int iters = 6,
                                 double min_duty = 1.0 / 16.0);

} // namespace detect
} // namespace ich

#endif // ICH_DETECT_TENANT_HH
