/**
 * @file
 * Umbrella header for the online covert-channel detection subsystem:
 * the Detector/DetectorBank core, the three concrete detectors, and
 * the multi-tenant co-residency campaign helpers.
 */

#ifndef ICH_DETECT_DETECT_HH
#define ICH_DETECT_DETECT_HH

#include "detect/cusum.hh"
#include "detect/detector.hh"
#include "detect/duty.hh"
#include "detect/sketch.hh"
#include "detect/tenant.hh"

#endif // ICH_DETECT_DETECT_HH
