#include "isa/kernel.hh"

namespace ich
{

double
Kernel::cyclesPerIteration() const
{
    const InstTraits &tr = traits(cls);
    return static_cast<double>(unroll) / tr.baseIpc + 1.0;
}

double
Kernel::totalCycles() const
{
    return cyclesPerIteration() * static_cast<double>(iterations);
}

std::uint64_t
Kernel::totalInstructions() const
{
    return static_cast<std::uint64_t>(unroll + 1) * iterations;
}

Kernel
makeKernel(InstClass cls, std::uint64_t iterations, int unroll)
{
    Kernel k;
    k.cls = cls;
    k.iterations = iterations;
    k.unroll = unroll;
    return k;
}

} // namespace ich
