/**
 * @file
 * Thread programs: step lists executed by a hardware thread.
 *
 * Programs express the sender/receiver pseudo-code of Figure 3 —
 * busy-wait on rdtsc for wall-clock synchronization, execute a PHI loop,
 * timestamp with rdtsc, idle through the reset-time — plus hooks for
 * software actions (governor writes) used by the baseline channels.
 */

#ifndef ICH_ISA_PROGRAM_HH
#define ICH_ISA_PROGRAM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hh"
#include "isa/kernel.hh"

namespace ich
{

/**
 * Execute a loop kernel. If recordEveryIterations > 0, the thread appends
 * a Record each time that many iterations retire (chunked timing, used by
 * the SMT receiver's continuously-measuring 64b loop).
 */
struct LoopStep {
    Kernel kernel;
    std::uint64_t recordEveryIterations = 0;
    int tag = 0;
};

/** Busy-wait (rdtsc spin) until the invariant TSC reaches `tsc`. */
struct WaitUntilTscStep {
    Cycles tsc;
};

/** Halt (no instruction execution) for a fixed simulated duration. */
struct IdleStep {
    Time duration;
};

/** Read rdtsc and append a Record with this tag. */
struct MarkStep {
    int tag;
};

/** Invoke a software action (e.g. a governor write). */
struct CallStep {
    std::function<void()> fn;
};

using ProgramStep =
    std::variant<LoopStep, WaitUntilTscStep, IdleStep, MarkStep, CallStep>;

/** rdtsc-style measurement record emitted by Mark/chunked-Loop steps. */
struct Record {
    int tag;
    Cycles tsc;
    Time time;
    /** Loop iterations completed at emit time (chunk records). */
    std::uint64_t iterationsDone;
};

/**
 * A straight-line list of steps. Helper builders keep channel code
 * readable.
 */
class Program
{
  public:
    Program &loop(InstClass cls, std::uint64_t iterations,
                  int unroll = 100);
    Program &loopChunked(InstClass cls, std::uint64_t iterations,
                         std::uint64_t record_every, int tag,
                         int unroll = 100);
    Program &waitUntilTsc(Cycles tsc);
    Program &idle(Time duration);
    Program &mark(int tag);
    Program &call(std::function<void()> fn);

    Program &add(ProgramStep step);

    bool empty() const { return steps_.empty(); }
    std::size_t size() const { return steps_.size(); }
    const ProgramStep &step(std::size_t i) const { return steps_.at(i); }

  private:
    std::vector<ProgramStep> steps_;
};

} // namespace ich

#endif // ICH_ISA_PROGRAM_HH
