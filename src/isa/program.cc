#include "isa/program.hh"

namespace ich
{

Program &
Program::loop(InstClass cls, std::uint64_t iterations, int unroll)
{
    LoopStep step;
    step.kernel = makeKernel(cls, iterations, unroll);
    return add(step);
}

Program &
Program::loopChunked(InstClass cls, std::uint64_t iterations,
                     std::uint64_t record_every, int tag, int unroll)
{
    LoopStep step;
    step.kernel = makeKernel(cls, iterations, unroll);
    step.recordEveryIterations = record_every;
    step.tag = tag;
    return add(step);
}

Program &
Program::waitUntilTsc(Cycles tsc)
{
    return add(WaitUntilTscStep{tsc});
}

Program &
Program::idle(Time duration)
{
    return add(IdleStep{duration});
}

Program &
Program::mark(int tag)
{
    return add(MarkStep{tag});
}

Program &
Program::call(std::function<void()> fn)
{
    return add(CallStep{std::move(fn)});
}

Program &
Program::add(ProgramStep step)
{
    steps_.push_back(std::move(step));
    return *this;
}

} // namespace ich
