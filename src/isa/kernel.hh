/**
 * @file
 * Loop kernels: the Agner-Fog-style micro-benchmarks of the paper's
 * methodology (§5.1), e.g. "a loop of 300 VMULPD instructions".
 *
 * A kernel is `iterations` repetitions of a loop body containing `unroll`
 * instructions of one class plus one cycle of loop overhead. Execution
 * rate is piecewise constant between simulator events, so a hardware
 * thread can integrate progress analytically.
 */

#ifndef ICH_ISA_KERNEL_HH
#define ICH_ISA_KERNEL_HH

#include <cstdint>

#include "isa/inst_class.hh"

namespace ich
{

/** One measured instruction loop. */
struct Kernel {
    InstClass cls = InstClass::kScalar64;
    std::uint64_t iterations = 1000;
    /** Instructions of `cls` per loop body. */
    int unroll = 100;

    /**
     * Unthrottled core cycles for one loop iteration:
     * unroll / IPC(cls) + 1 cycle of loop overhead.
     */
    double cyclesPerIteration() const;

    /** Unthrottled core cycles for the whole kernel. */
    double totalCycles() const;

    /** Instructions retired by the whole kernel (including the branch). */
    std::uint64_t totalInstructions() const;
};

/** Convenience factory. */
Kernel makeKernel(InstClass cls, std::uint64_t iterations,
                  int unroll = 100);

} // namespace ich

#endif // ICH_ISA_KERNEL_HH
