#include "isa/inst_class.hh"

#include <algorithm>
#include <stdexcept>

namespace ich
{

namespace
{

// ΔCdyn values are calibrated against the paper's measurements:
//  - Fig. 6: one core running AVX2 (256b heavy) raises Vcc by ~8 mV at
//    2 GHz and 0.788 V with RLL ≈ 1.9 mΩ ⇒ ΔI ≈ 4.2 A ⇒ ΔCdyn ≈ 2.7 nF.
//  - The other classes scale with width/heaviness, preserving the five
//    distinct guardband levels of Fig. 10.
constexpr InstTraits kTraits[kNumInstClasses] = {
    // name          width heavy lvl ΔCdyn  ipc  avx
    {"64b",          64,  false, 0, 0.00,  2.0, false},
    {"128b_Light",   128, false, 0, 0.00,  1.0, false},
    {"128b_Heavy",   128, true,  1, 1.20,  1.0, false},
    {"256b_Light",   256, false, 2, 1.90,  1.0, true},
    {"256b_Heavy",   256, true,  3, 2.70,  1.0, true},
    {"512b_Light",   512, false, 3, 2.70,  1.0, true},
    {"512b_Heavy",   512, true,  4, 4.50,  1.0, true},
};

} // namespace

const InstTraits &
traits(InstClass cls)
{
    int idx = static_cast<int>(cls);
    if (idx < 0 || idx >= kNumInstClasses)
        throw std::out_of_range("traits: bad InstClass");
    return kTraits[idx];
}

std::string
toString(InstClass cls)
{
    return traits(cls).name;
}

bool
isPhi(InstClass cls)
{
    return traits(cls).guardbandLevel > 0;
}

int
numGuardbandLevels()
{
    int max_lvl = 0;
    for (auto cls : kAllInstClasses)
        max_lvl = std::max(max_lvl, traits(cls).guardbandLevel);
    return max_lvl + 1;
}

} // namespace ich
