/**
 * @file
 * The seven instruction classes of the paper's characterization (§4, §5.5)
 * and their computational-intensity traits.
 *
 * "Heavy" instructions use the floating-point unit or a multiplier
 * (ADDPD, SUBPS, VMULPD, FMA, ...); "Light" ones are non-multiply integer
 * arithmetic, logic, shuffle, blend. Width spans 64-bit scalar to 512-bit
 * vector. Intensity maps to a dynamic-capacitance delta (ΔCdyn) that feeds
 * the guardband calculation (Equation 1) and to a guardband *level*; the
 * seven classes collapse onto five distinct levels, matching the paper's
 * "at least five throttling levels" observation (Key Conclusion 4).
 */

#ifndef ICH_ISA_INST_CLASS_HH
#define ICH_ISA_INST_CLASS_HH

#include <array>
#include <string>

namespace ich
{

/** Instruction class (width × heaviness). */
enum class InstClass {
    kScalar64,    ///< 64-bit scalar ALU (baseline; not a PHI)
    k128Light,    ///< 128-bit SSE logic/shuffle
    k128Heavy,    ///< 128-bit SSE FP/multiply
    k256Light,    ///< 256-bit AVX2 logic (e.g. VORPD-256)
    k256Heavy,    ///< 256-bit AVX2 FP/multiply (e.g. VMULPD-256)
    k512Light,    ///< 512-bit AVX-512 logic
    k512Heavy,    ///< 512-bit AVX-512 FP/multiply (e.g. VMULPD-512)
};

constexpr int kNumInstClasses = 7;

/** All classes in intensity order (handy for sweeps). */
constexpr std::array<InstClass, kNumInstClasses> kAllInstClasses = {
    InstClass::kScalar64,  InstClass::k128Light, InstClass::k128Heavy,
    InstClass::k256Light,  InstClass::k256Heavy, InstClass::k512Light,
    InstClass::k512Heavy,
};

/** Static per-class traits. */
struct InstTraits {
    const char *name;
    int widthBits;
    bool heavy;
    /**
     * Guardband level 0..4. Level 0 needs no guardband over the baseline
     * voltage; level 4 is the worst-case (512b heavy) power virus.
     * 64b and 128b-light share level 0; 256b-heavy and 512b-light share
     * level 3 — seven classes, five levels.
     */
    int guardbandLevel;
    /**
     * Dynamic-capacitance delta over the scalar baseline, in nanofarads
     * per core. Calibrated so one core's AVX2-heavy guardband lands near
     * the ~8 mV step of Fig. 6 at 2 GHz.
     */
    double deltaCdynNf;
    /** Sustained instructions per cycle when unthrottled. */
    double baseIpc;
    /** Uses the (power-gated) AVX unit? */
    bool usesAvxUnit;
};

/** Look up traits for a class. */
const InstTraits &traits(InstClass cls);

/** Short name, e.g. "256b_Heavy". */
std::string toString(InstClass cls);

/** True for power-hungry instructions (anything above level 0). */
bool isPhi(InstClass cls);

/** Number of distinct guardband levels across all classes. */
int numGuardbandLevels();

} // namespace ich

#endif // ICH_ISA_INST_CLASS_HH
