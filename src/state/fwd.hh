/**
 * @file
 * Forward declarations of the snapshot machinery, so component headers
 * can declare saveState()/restoreState() without pulling in the archive
 * implementation.
 */

#ifndef ICH_STATE_FWD_HH
#define ICH_STATE_FWD_HH

namespace ich
{
namespace state
{

class ArchiveWriter;
class ArchiveReader;
class SectionReader;
class SaveContext;
class RestoreContext;

} // namespace state
} // namespace ich

#endif // ICH_STATE_FWD_HH
