#include "state/archive.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "io/fileops.hh"

namespace ich
{
namespace state
{

namespace
{

/** Value type tags (one byte in front of every value). */
enum Tag : std::uint8_t {
    kTagBool = 1,
    kTagU8 = 2,
    kTagU32 = 3,
    kTagU64 = 4,
    kTagI32 = 5,
    kTagF64 = 6,
    kTagString = 7,
};

const char *
tagName(std::uint8_t tag)
{
    switch (tag) {
      case kTagBool: return "bool";
      case kTagU8: return "u8";
      case kTagU32: return "u32";
      case kTagU64: return "u64";
      case kTagI32: return "i32";
      case kTagF64: return "f64";
      case kTagString: return "string";
      default: return "unknown";
    }
}

constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size, std::uint32_t seed)
{
    // Bitwise CRC-32 (reflected, poly 0xEDB88320). Snapshots are taken
    // at quiesce points, not in inner loops; simplicity wins over a
    // lookup table here. A seed of 0 starts a fresh CRC; passing a
    // previous result continues it (~0 un-finalizes the prior call).
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

void
atomicWriteFile(const std::string &path, const Buffer &data)
{
    const std::string tmp = path + ".tmp";
    int fd = io::open(tmp.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644,
                      "archive.write");
    if (fd < 0)
        throw ArchiveError("archive: cannot open '" + tmp +
                           "' for writing [site archive.write]: " +
                           std::strerror(errno));
    auto bail = [&](const std::string &what, int err) {
        if (fd >= 0)
            ::close(fd);
        std::remove(tmp.c_str());
        throw ArchiveError("archive: " + what + " [site archive.write]" +
                           (err ? std::string(": ") + std::strerror(err)
                                : std::string()));
    };
    std::size_t done = 0;
    while (done < data.size()) {
        ssize_t n = io::write(fd, data.data() + done, data.size() - done,
                              "archive.write", tmp.c_str());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            bail("write failed on '" + tmp + "' at byte " +
                     std::to_string(done) + " of " +
                     std::to_string(data.size()),
                 errno);
        }
        if (n == 0)
            // A zero-byte write for a nonzero count cannot make
            // progress; looping on it would spin forever.
            bail("write of " + std::to_string(data.size() - done) +
                     " bytes to '" + tmp + "' returned 0",
                 0);
        done += static_cast<std::size_t>(n);
    }
    // Data must be on disk before the rename publishes the file, or a
    // power cut can leave the *new* name pointing at garbage — atomic
    // replacement is only atomic if the bytes land first.
    if (io::fsync(fd, "archive.write", tmp.c_str()) != 0)
        bail("fsync failed on '" + tmp + "'", errno);
    if (::close(fd) != 0) {
        fd = -1;
        bail("close failed on '" + tmp + "'", errno);
    }
    fd = -1;
    if (io::rename(tmp.c_str(), path.c_str(), "archive.write") != 0) {
        int err = errno;
        std::remove(tmp.c_str());
        throw ArchiveError("archive: cannot rename '" + tmp + "' to '" +
                           path + "' [site archive.write]: " +
                           std::strerror(err));
    }
    // The rename itself lives in the directory: fsync it too, so the
    // new directory entry survives a crash. Failure here is not fatal —
    // the file contents are already durable and the old entry, if any,
    // was equally consistent.
    std::string dir(path);
    std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? std::string(".")
                                     : dir.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

Buffer
readFile(const std::string &path)
{
    int fd = io::open(path.c_str(), O_RDONLY | O_CLOEXEC, 0,
                      "archive.read");
    if (fd < 0)
        throw ArchiveError("archive: cannot open '" + path +
                           "' [site archive.read]: " +
                           std::strerror(errno));
    Buffer data;
    std::uint8_t chunk[65536];
    for (;;) {
        ssize_t n = io::read(fd, chunk, sizeof chunk, "archive.read",
                             path.c_str());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            throw ArchiveError("archive: read failed on '" + path +
                               "' [site archive.read]: " +
                               std::strerror(err));
        }
        if (n == 0)
            break;
        data.insert(data.end(), chunk, chunk + n);
    }
    ::close(fd);
    return data;
}

// ------------------------------------------------------------- writer

void
ArchiveWriter::raw32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ArchiveWriter::raw64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ArchiveWriter::tagged(std::uint8_t tag)
{
    if (!inSection_)
        throw ArchiveError("ArchiveWriter: value outside a section");
    raw8(tag);
}

void
ArchiveWriter::beginSection(const std::string &name)
{
    if (inSection_)
        throw ArchiveError("ArchiveWriter: sections cannot nest");
    inSection_ = true;
    raw32(static_cast<std::uint32_t>(name.size()));
    payload_.insert(payload_.end(), name.begin(), name.end());
    bodyLenPos_ = payload_.size();
    raw32(0); // patched in endSection()
}

void
ArchiveWriter::endSection()
{
    if (!inSection_)
        throw ArchiveError("ArchiveWriter: endSection without begin");
    inSection_ = false;
    std::uint32_t body_len =
        static_cast<std::uint32_t>(payload_.size() - bodyLenPos_ - 4);
    for (int i = 0; i < 4; ++i)
        payload_[bodyLenPos_ + i] =
            static_cast<std::uint8_t>(body_len >> (8 * i));
}

void
ArchiveWriter::putBool(bool v)
{
    tagged(kTagBool);
    raw8(v ? 1 : 0);
}

void
ArchiveWriter::putU8(std::uint8_t v)
{
    tagged(kTagU8);
    raw8(v);
}

void
ArchiveWriter::putU32(std::uint32_t v)
{
    tagged(kTagU32);
    raw32(v);
}

void
ArchiveWriter::putU64(std::uint64_t v)
{
    tagged(kTagU64);
    raw64(v);
}

void
ArchiveWriter::putI32(std::int32_t v)
{
    tagged(kTagI32);
    raw32(static_cast<std::uint32_t>(v));
}

void
ArchiveWriter::putF64(double v)
{
    tagged(kTagF64);
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v, "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof bits);
    raw64(bits);
}

void
ArchiveWriter::putString(const std::string &v)
{
    tagged(kTagString);
    raw32(static_cast<std::uint32_t>(v.size()));
    payload_.insert(payload_.end(), v.begin(), v.end());
}

Buffer
ArchiveWriter::finish() const
{
    if (inSection_)
        throw ArchiveError("ArchiveWriter: finish with an open section");
    Buffer out;
    out.reserve(kHeaderSize + payload_.size());
    auto push32 = [&out](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto push64 = [&out](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    push32(kArchiveMagic);
    push32(kArchiveVersion);
    push64(payload_.size());
    push32(crc32(payload_.data(), payload_.size()));
    out.insert(out.end(), payload_.begin(), payload_.end());
    return out;
}

void
ArchiveWriter::writeFile(const std::string &path) const
{
    atomicWriteFile(path, finish());
}

// ------------------------------------------------------------- reader

SectionReader::SectionReader(std::string name, const std::uint8_t *begin,
                             const std::uint8_t *end)
    : name_(std::move(name)), p_(begin), end_(end)
{
}

void
SectionReader::need(std::size_t n, const char *what) const
{
    if (static_cast<std::size_t>(end_ - p_) < n)
        throw ArchiveError("section '" + name_ + "': truncated " + what);
}

void
SectionReader::expectTag(std::uint8_t tag, const char *what)
{
    need(1, "type tag");
    std::uint8_t got = *p_++;
    if (got != tag)
        throw ArchiveError("section '" + name_ + "': expected " + what +
                           ", found " + tagName(got));
}

std::uint32_t
SectionReader::raw32()
{
    need(4, "value");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
}

std::uint64_t
SectionReader::raw64()
{
    need(8, "value");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
}

bool
SectionReader::getBool()
{
    expectTag(kTagBool, "bool");
    need(1, "value");
    return *p_++ != 0;
}

std::uint8_t
SectionReader::getU8()
{
    expectTag(kTagU8, "u8");
    need(1, "value");
    return *p_++;
}

std::uint32_t
SectionReader::getU32()
{
    expectTag(kTagU32, "u32");
    return raw32();
}

std::uint64_t
SectionReader::getU64()
{
    expectTag(kTagU64, "u64");
    return raw64();
}

std::int32_t
SectionReader::getI32()
{
    expectTag(kTagI32, "i32");
    return static_cast<std::int32_t>(raw32());
}

double
SectionReader::getF64()
{
    expectTag(kTagF64, "f64");
    std::uint64_t bits = raw64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
SectionReader::getString()
{
    expectTag(kTagString, "string");
    std::uint32_t len = raw32();
    need(len, "string body");
    std::string s(reinterpret_cast<const char *>(p_), len);
    p_ += len;
    return s;
}

ArchiveReader::ArchiveReader(Buffer data) : data_(std::move(data))
{
    if (data_.size() < kHeaderSize)
        throw ArchiveError("archive truncated: " +
                           std::to_string(data_.size()) +
                           " bytes is smaller than the header");
    auto read32 = [this](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[at + i]) << (8 * i);
        return v;
    };
    auto read64 = [this](std::size_t at) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[at + i]) << (8 * i);
        return v;
    };
    if (read32(0) != kArchiveMagic)
        throw ArchiveError("not a state archive (bad magic)");
    std::uint32_t version = read32(4);
    if (version != kArchiveVersion)
        throw ArchiveError(
            "archive version mismatch: file has v" +
            std::to_string(version) + ", this build reads v" +
            std::to_string(kArchiveVersion));
    std::uint64_t payload_len = read64(8);
    if (payload_len != data_.size() - kHeaderSize)
        throw ArchiveError("archive truncated: header promises " +
                           std::to_string(payload_len) +
                           " payload bytes, file carries " +
                           std::to_string(data_.size() - kHeaderSize));
    std::uint32_t expect_crc = read32(16);
    std::uint32_t got_crc = crc32(data_.data() + kHeaderSize,
                                  static_cast<std::size_t>(payload_len));
    if (expect_crc != got_crc)
        throw ArchiveError("archive CRC mismatch (corrupt payload)");

    // Index the sections.
    std::size_t pos = kHeaderSize;
    const std::size_t end = data_.size();
    while (pos < end) {
        if (end - pos < 4)
            throw ArchiveError("corrupt section table (name length)");
        std::uint32_t name_len = read32(pos);
        pos += 4;
        if (end - pos < name_len)
            throw ArchiveError("corrupt section table (name)");
        std::string name(reinterpret_cast<const char *>(&data_[pos]),
                         name_len);
        pos += name_len;
        if (end - pos < 4)
            throw ArchiveError("corrupt section table (body length)");
        std::uint32_t body_len = read32(pos);
        pos += 4;
        if (end - pos < body_len)
            throw ArchiveError("corrupt section table (body)");
        if (!index_.emplace(name, std::make_pair(pos, body_len)).second)
            throw ArchiveError("duplicate section '" + name + "'");
        pos += body_len;
    }
}

ArchiveReader
ArchiveReader::fromFile(const std::string &path)
{
    return ArchiveReader(readFile(path));
}

bool
ArchiveReader::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

SectionReader
ArchiveReader::open(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        throw ArchiveError("archive has no section '" + name + "'");
    const std::uint8_t *begin = data_.data() + it->second.first;
    return SectionReader(name, begin, begin + it->second.second);
}

std::vector<std::string>
ArchiveReader::sectionNames() const
{
    std::vector<std::string> names;
    names.reserve(index_.size());
    for (const auto &kv : index_)
        names.push_back(kv.first);
    return names;
}

} // namespace state
} // namespace ich
