/**
 * @file
 * Umbrella header for the snapshot/restore subsystem.
 *
 * The pieces, bottom-up:
 *  - archive.hh   StateArchive: versioned binary container (named
 *                 sections, explicit widths, CRC-checked)
 *  - snapshot.hh  quiesce-point contract, SaveContext/RestoreContext,
 *                 whole-Simulation snapshot()/restore()
 */

#ifndef ICH_STATE_STATE_HH
#define ICH_STATE_STATE_HH

#include "state/archive.hh"
#include "state/snapshot.hh"

#endif // ICH_STATE_STATE_HH
