/**
 * @file
 * Simulator snapshot/restore on top of the StateArchive.
 *
 * Snapshots are taken at *quiesce points*: every thread program has run
 * to completion (or not started), no P-state transition is in flight,
 * and the PDN is settled (no SVID transaction queued or ramping). At
 * such a point the only live events are periodic housekeeping —
 * guardband decay checks, the pending upclock, and the Ticker's
 * rate-group events (RAPL window, periodic governor evaluation,
 * thermal sampling) — and every one of them is owned by a component
 * that can *re-arm* it from its own serialized state. Ticker group
 * clocks are part of the snapshot: persistent Clocked members
 * re-register during construction and each group re-arms at its saved
 * absolute time; transient members (Daq samplers) must be detached
 * first or the save throws. Purely lazy state — power-gate idle
 * closes, thermal integration, perf-counter accrual — carries only its
 * timestamps and needs no events at all. No closure is ever written to
 * the archive.
 *
 * The contract for component authors (see EXPERIMENTS.md "Snapshots"):
 *
 *  1. saveState() writes the component's logical state plus, for each
 *     pending event it owns, SaveContext::putEvent(id) — which records
 *     the event's absolute fire time, priority and insertion sequence.
 *  2. restoreState() reads the same values in the same order and
 *     re-arms each event via RestoreContext::getEvent(r, fn). Re-arms
 *     are deferred and replayed sorted by (time, priority, original
 *     sequence), so same-timestamp events fire in the same order as in
 *     an uninterrupted run — the byte-identical-restore guarantee.
 *  3. snapshot() cross-checks that every live event was accounted for;
 *     untracked events (an attached NoiseInjector, PhiApp or Daq, a
 *     pending governor write) make the snapshot fail loudly instead of
 *     silently dropping behavior.
 */

#ifndef ICH_STATE_SNAPSHOT_HH
#define ICH_STATE_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "state/archive.hh"

namespace ich
{

struct ChipConfig;
class Simulation;

namespace state
{

/** Serialized identity of one pending event. */
struct SavedEvent {
    bool valid = false;
    Time when = 0;
    std::int32_t priority = 0;
    std::uint64_t seq = 0; ///< original insertion sequence (tie order)
};

/**
 * Save-side context: wraps the ArchiveWriter and counts the pending
 * events components claim, so snapshot() can prove nothing live was
 * left untracked.
 */
class SaveContext
{
  public:
    SaveContext(ArchiveWriter &w, const EventQueue &eq) : w_(w), eq_(eq)
    {
    }

    ArchiveWriter &w() { return w_; }
    const EventQueue &eq() const { return eq_; }

    /**
     * Record a pending-event handle (kInvalidEvent or stale handles
     * serialize as not-pending). Fixed-size on disk either way.
     */
    void putEvent(EventId id);

    /** Live events claimed so far via putEvent(). */
    std::size_t trackedEvents() const { return tracked_; }

  private:
    ArchiveWriter &w_;
    const EventQueue &eq_;
    std::size_t tracked_ = 0;
};

/**
 * Restore-side context: collects deferred re-arm requests and replays
 * them in deterministic order once every component has restored.
 */
class RestoreContext
{
  public:
    /** Re-arm callback: schedule at @p when / @p priority, keep the id. */
    using RearmFn = std::function<void(EventQueue &, Time when,
                                       int priority)>;

    explicit RestoreContext(EventQueue &eq) : eq_(eq) {}

    EventQueue &eq() { return eq_; }

    /**
     * Read a SavedEvent from @p r; when it was pending, defer @p fn
     * until finish().
     */
    void getEvent(SectionReader &r, RearmFn fn);

    /**
     * Replay deferred re-arms sorted by (when, priority, original
     * sequence). Call exactly once, after all components restored.
     */
    void finish();

    /** Events re-armed by finish(). */
    std::size_t rearmed() const { return rearmed_; }

  private:
    struct Pending {
        SavedEvent ev;
        RearmFn fn;
    };

    EventQueue &eq_;
    std::vector<Pending> pending_;
    std::size_t rearmed_ = 0;
    bool finished_ = false;
};

/** Serialize / reconstruct a full ChipConfig ("config" section body). */
void putChipConfig(ArchiveWriter &w, const ChipConfig &cfg);
ChipConfig getChipConfig(SectionReader &r);

/**
 * True when @p sim is at a legal snapshot point; otherwise false with a
 * human-readable reason in @p why (when non-null).
 */
bool isQuiesced(const Simulation &sim, std::string *why = nullptr);

/**
 * Run @p sim forward until it quiesces. Throws std::runtime_error when
 * it has not quiesced within @p max_wait of simulated time.
 */
void quiesce(Simulation &sim, Time max_wait = fromSeconds(1.0));

/**
 * Extra archive content supplied by components attached *around* the
 * Simulation — e.g. a detect::DetectorBank riding the chip Ticker. The
 * core sections stay fixed; attachments append their own named
 * sections after them. Any pending event an attachment owns directly
 * must be claimed via SaveContext::putEvent (Ticker-driven members are
 * already covered by the "ticker" section).
 */
struct SnapshotHooks {
    /** Write extra sections (after the core sections). */
    std::function<void(ArchiveWriter &, SaveContext &)> save;
};

/**
 * Mirror of SnapshotHooks for restore(): re-create the attachments on
 * the fresh Simulation, then restore their sections.
 */
struct RestoreHooks {
    /**
     * Called right after the Simulation is constructed, before any
     * section restore. Re-attach persistent Clocked members here, in
     * the same order as before the snapshot, so the Ticker's saved
     * rate groups find matching registrations.
     */
    std::function<void(Simulation &)> attach;
    /**
     * Called after the core sections have restored, before the deferred
     * event re-arms replay — open and restore the sections written by
     * SnapshotHooks::save.
     */
    std::function<void(Simulation &, ArchiveReader &, RestoreContext &)>
        restore;
};

/**
 * Snapshot a quiesced simulation into a self-contained archive (chip
 * config included, so restore() needs nothing else). Throws
 * std::runtime_error when the simulation is not quiesced or when live
 * events remain that no component accounted for.
 */
Buffer snapshot(Simulation &sim);

/** snapshot() including the attachments' extra sections. */
Buffer snapshot(Simulation &sim, const SnapshotHooks &hooks);

/** snapshot() + atomic write to @p path. */
void snapshotToFile(Simulation &sim, const std::string &path);

/**
 * Reconstruct a simulation from a snapshot(). The result continues
 * byte-identically to the simulation the snapshot was taken from.
 * Throws ArchiveError on a corrupt/mismatched archive.
 */
std::unique_ptr<Simulation> restore(const Buffer &buf);

/** restore() re-creating attachments via @p hooks (see RestoreHooks). */
std::unique_ptr<Simulation> restore(const Buffer &buf,
                                    const RestoreHooks &hooks);

/** restore() from a file written by snapshotToFile(). */
std::unique_ptr<Simulation> restoreFromFile(const std::string &path);

} // namespace state
} // namespace ich

#endif // ICH_STATE_SNAPSHOT_HH
