#include "state/chunkio.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ich
{
namespace state
{

namespace
{

constexpr std::size_t kFrameHeaderSize = 4 + 4 + 4; // magic | kind | len
constexpr std::size_t kFrameTrailerSize = 4;        // crc32(body)

void
put32(Buffer &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

void
fsyncParentDir(const std::string &path)
{
    // Same discipline as atomicWriteFile: the new directory entry must
    // survive a crash; failure is non-fatal (contents are durable).
    std::size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace

void
appendChunkFrame(Buffer &out, std::uint32_t kind, const Buffer &body)
{
    put32(out, kChunkFrameMagic);
    put32(out, kind);
    put32(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
    put32(out, crc32(body.data(), body.size()));
}

// ------------------------------------------------------------- writer

ChunkFileWriter::~ChunkFileWriter()
{
    close();
}

void
ChunkFileWriter::create(const std::string &path, bool durable)
{
    close();
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        if (ec)
            throw ArchiveError("chunkio: cannot create '" +
                               p.parent_path().string() +
                               "': " + ec.message());
    }
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        throw ArchiveError("chunkio: cannot create '" + path +
                           "': " + std::strerror(errno));
    path_ = path;
    durable_ = durable;
    if (durable_)
        fsyncParentDir(path_);
}

void
ChunkFileWriter::openAppend(const std::string &path,
                            std::uint64_t valid_bytes, bool durable)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd_ < 0)
        throw ArchiveError("chunkio: cannot open '" + path +
                           "' for append: " + std::strerror(errno));
    // Drop a torn tail so appends resume on a frame boundary.
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw ArchiveError("chunkio: cannot truncate '" + path +
                           "': " + std::strerror(err));
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw ArchiveError("chunkio: cannot seek '" + path +
                           "': " + std::strerror(err));
    }
    path_ = path;
    durable_ = durable;
}

void
ChunkFileWriter::writeAll(const Buffer &bytes)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ArchiveError("chunkio: write failed on '" + path_ +
                               "': " + std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
}

void
ChunkFileWriter::append(std::uint32_t kind, const Buffer &body)
{
    if (fd_ < 0)
        throw ArchiveError("chunkio: append on a closed writer");
    Buffer frame;
    frame.reserve(kFrameHeaderSize + body.size() + kFrameTrailerSize);
    appendChunkFrame(frame, kind, body);
    writeAll(frame);
    if (durable_ && ::fsync(fd_) != 0)
        throw ArchiveError("chunkio: fsync failed on '" + path_ +
                           "': " + std::strerror(errno));
}

void
ChunkFileWriter::sync()
{
    if (fd_ < 0)
        return;
    if (::fsync(fd_) != 0)
        throw ArchiveError("chunkio: fsync failed on '" + path_ +
                           "': " + std::strerror(errno));
}

void
ChunkFileWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ------------------------------------------------------------ scanner

ChunkFileScanner::ChunkFileScanner(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0)
        throw ArchiveError("chunkio: cannot open '" + path +
                           "': " + std::strerror(errno));
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw ArchiveError("chunkio: cannot stat '" + path +
                           "': " + std::strerror(err));
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
}

ChunkFileScanner::~ChunkFileScanner()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ChunkFileScanner::seekTo(std::uint64_t offset)
{
    off_ = offset;
    torn_ = false;
}

bool
ChunkFileScanner::next(ChunkFrame &frame)
{
    if (off_ >= size_)
        return false;
    std::uint64_t avail = size_ - off_;
    if (avail < kFrameHeaderSize + kFrameTrailerSize) {
        torn_ = true;
        return false;
    }
    std::uint8_t hdr[kFrameHeaderSize];
    ssize_t n = ::pread(fd_, hdr, sizeof hdr, static_cast<off_t>(off_));
    if (n != static_cast<ssize_t>(sizeof hdr))
        throw ArchiveError("chunkio: read error on '" + path_ + "'");
    if (get32(hdr) != kChunkFrameMagic)
        throw ArchiveError("chunkio: bad frame magic in '" + path_ +
                           "' at offset " + std::to_string(off_));
    std::uint32_t kind = get32(hdr + 4);
    std::uint32_t body_len = get32(hdr + 8);
    if (avail - kFrameHeaderSize < body_len + kFrameTrailerSize) {
        // The frame header landed but the body/CRC didn't: a torn
        // append, not corruption.
        torn_ = true;
        return false;
    }
    Buffer body(body_len);
    if (body_len > 0) {
        n = ::pread(fd_, body.data(), body_len,
                    static_cast<off_t>(off_ + kFrameHeaderSize));
        if (n != static_cast<ssize_t>(body_len))
            throw ArchiveError("chunkio: read error on '" + path_ + "'");
    }
    std::uint8_t crc_bytes[kFrameTrailerSize];
    n = ::pread(fd_, crc_bytes, sizeof crc_bytes,
                static_cast<off_t>(off_ + kFrameHeaderSize + body_len));
    if (n != static_cast<ssize_t>(sizeof crc_bytes))
        throw ArchiveError("chunkio: read error on '" + path_ + "'");
    if (get32(crc_bytes) != crc32(body.data(), body.size()))
        throw ArchiveError("chunkio: CRC mismatch in '" + path_ +
                           "' at offset " + std::to_string(off_) +
                           " (corrupt chunk)");
    lastOff_ = off_;
    off_ += kFrameHeaderSize + body_len + kFrameTrailerSize;
    valid_ = std::max(valid_, off_);
    frame.kind = kind;
    frame.body = std::move(body);
    return true;
}

} // namespace state
} // namespace ich
