#include "state/chunkio.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "io/fileops.hh"

namespace ich
{
namespace state
{

namespace
{

constexpr std::size_t kFrameHeaderSize = 4 + 4 + 4; // magic | kind | len
constexpr std::size_t kFrameTrailerSize = 4;        // crc32(body)

void
put32(Buffer &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

/**
 * pread exactly @p count bytes at @p off, retrying EINTR and partial
 * reads. The caller guarantees (via the scanned file size) that the
 * bytes exist, so EOF mid-read is an I/O error, not a torn tail.
 */
void
preadExact(int fd, void *buf, std::size_t count, std::uint64_t off,
           const std::string &path)
{
    std::uint8_t *p = static_cast<std::uint8_t *>(buf);
    std::size_t done = 0;
    while (done < count) {
        ssize_t n = io::pread(fd, p + done, count - done,
                              static_cast<off_t>(off + done),
                              "chunk.read", path.c_str());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ArchiveError("chunkio: read failed on '" + path +
                               "' at offset " +
                               std::to_string(off + done) +
                               " [site chunk.read]: " +
                               std::strerror(errno));
        }
        if (n == 0)
            throw ArchiveError("chunkio: unexpected EOF on '" + path +
                               "' at offset " +
                               std::to_string(off + done) +
                               " [site chunk.read]");
        done += static_cast<std::size_t>(n);
    }
}

/**
 * A torn tail can only be the last thing in a file — appends are
 * sequential, so nothing ever lands after an unfinished frame. When an
 * apparent tear is followed by an intact frame, the "tear" is really a
 * corrupted length field about to swallow good data, and silently
 * dropping those frames would be a wrong answer. Scans the tail once
 * (recovery path only); the full-frame CRC makes a false positive a
 * ~2^-32 accident per candidate offset.
 */
void
requireTearIsTail(int fd, const std::string &path,
                  std::uint64_t tear_off, std::uint64_t size)
{
    constexpr std::size_t kMinFrame =
        kFrameHeaderSize + kFrameTrailerSize;
    std::uint64_t tail_len = size - tear_off;
    // The torn frame's header occupies the first bytes of the tail, so
    // a buried intact frame needs at least one more header's worth.
    if (tail_len < kFrameHeaderSize + kMinFrame)
        return;
    Buffer tail(static_cast<std::size_t>(tail_len));
    preadExact(fd, tail.data(), tail.size(), tear_off, path);
    for (std::size_t i = 1; i + kMinFrame <= tail.size(); ++i) {
        if (get32(tail.data() + i) != kChunkFrameMagic)
            continue;
        std::uint32_t len = get32(tail.data() + i + 8);
        if (len > tail.size() - i - kMinFrame)
            continue;
        const std::uint8_t *f = tail.data() + i;
        if (get32(f + kFrameHeaderSize + len) ==
            crc32(f, kFrameHeaderSize + len))
            throw ArchiveError(
                "chunkio: intact frame found after an incomplete frame "
                "in '" + path + "' at offset " +
                std::to_string(tear_off) +
                " (corrupted frame length, not a torn tail)");
    }
}

void
fsyncParentDir(const std::string &path)
{
    // Same discipline as atomicWriteFile: the new directory entry must
    // survive a crash; failure is non-fatal (contents are durable).
    std::size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace

void
appendChunkFrame(Buffer &out, std::uint32_t kind, const Buffer &body)
{
    const std::size_t start = out.size();
    put32(out, kChunkFrameMagic);
    put32(out, kind);
    put32(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
    // The CRC covers the whole frame, header included (see chunkio.hh):
    // a bodyLen or kind bit-flip must fail the checksum, not redefine
    // how the rest of the file parses.
    put32(out, crc32(out.data() + start, out.size() - start));
}

// ------------------------------------------------------------- writer

ChunkFileWriter::~ChunkFileWriter()
{
    close();
}

void
ChunkFileWriter::create(const std::string &path, bool durable)
{
    close();
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        if (ec)
            throw ArchiveError("chunkio: cannot create '" +
                               p.parent_path().string() +
                               "': " + ec.message());
    }
    fd_ = io::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644, "chunk.write");
    if (fd_ < 0)
        throw ArchiveError("chunkio: cannot create '" + path +
                           "' [site chunk.write]: " +
                           std::strerror(errno));
    path_ = path;
    durable_ = durable;
    if (durable_)
        fsyncParentDir(path_);
}

void
ChunkFileWriter::openAppend(const std::string &path,
                            std::uint64_t valid_bytes, bool durable)
{
    close();
    fd_ = io::open(path.c_str(), O_WRONLY | O_CLOEXEC, 0, "chunk.write");
    if (fd_ < 0)
        throw ArchiveError("chunkio: cannot open '" + path +
                           "' for append [site chunk.write]: " +
                           std::strerror(errno));
    // Drop a torn tail so appends resume on a frame boundary.
    if (io::ftruncate(fd_, static_cast<off_t>(valid_bytes),
                      "chunk.write", path.c_str()) != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw ArchiveError("chunkio: cannot truncate '" + path +
                           "' [site chunk.write]: " +
                           std::strerror(err));
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw ArchiveError("chunkio: cannot seek '" + path +
                           "': " + std::strerror(err));
    }
    path_ = path;
    durable_ = durable;
}

void
ChunkFileWriter::writeAll(const Buffer &bytes)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        ssize_t n = io::write(fd_, bytes.data() + done,
                              bytes.size() - done, "chunk.write",
                              path_.c_str());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ArchiveError(
                "chunkio: write failed on '" + path_ +
                "' at byte " + std::to_string(done) + " of " +
                std::to_string(bytes.size()) +
                " [site chunk.write]: " + std::strerror(errno));
        }
        if (n == 0)
            // write() returning 0 for a nonzero count never makes
            // progress; retrying would spin forever.
            throw ArchiveError("chunkio: write of " +
                               std::to_string(bytes.size() - done) +
                               " bytes to '" + path_ +
                               "' returned 0 [site chunk.write]");
        done += static_cast<std::size_t>(n);
    }
}

void
ChunkFileWriter::append(std::uint32_t kind, const Buffer &body)
{
    if (fd_ < 0)
        throw ArchiveError("chunkio: append on a closed writer");
    Buffer frame;
    frame.reserve(kFrameHeaderSize + body.size() + kFrameTrailerSize);
    appendChunkFrame(frame, kind, body);
    writeAll(frame);
    if (durable_ &&
        io::fsync(fd_, "chunk.write", path_.c_str()) != 0)
        throw ArchiveError("chunkio: fsync failed on '" + path_ +
                           "' [site chunk.write]: " +
                           std::strerror(errno));
}

void
ChunkFileWriter::sync()
{
    if (fd_ < 0)
        return;
    if (io::fsync(fd_, "chunk.write", path_.c_str()) != 0)
        throw ArchiveError("chunkio: fsync failed on '" + path_ +
                           "' [site chunk.write]: " +
                           std::strerror(errno));
}

void
ChunkFileWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ------------------------------------------------------------ scanner

ChunkFileScanner::ChunkFileScanner(const std::string &path) : path_(path)
{
    fd_ = io::open(path.c_str(), O_RDONLY | O_CLOEXEC, 0, "chunk.read");
    if (fd_ < 0)
        throw ArchiveError("chunkio: cannot open '" + path +
                           "' [site chunk.read]: " +
                           std::strerror(errno));
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw ArchiveError("chunkio: cannot stat '" + path +
                           "': " + std::strerror(err));
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
}

ChunkFileScanner::~ChunkFileScanner()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ChunkFileScanner::seekTo(std::uint64_t offset)
{
    off_ = offset;
    torn_ = false;
}

bool
ChunkFileScanner::next(ChunkFrame &frame)
{
    if (off_ >= size_)
        return false;
    std::uint64_t avail = size_ - off_;
    if (avail < kFrameHeaderSize + kFrameTrailerSize) {
        torn_ = true;
        return false;
    }
    std::uint8_t hdr[kFrameHeaderSize];
    preadExact(fd_, hdr, sizeof hdr, off_, path_);
    if (get32(hdr) != kChunkFrameMagic)
        throw ArchiveError("chunkio: bad frame magic in '" + path_ +
                           "' at offset " + std::to_string(off_));
    std::uint32_t kind = get32(hdr + 4);
    std::uint32_t body_len = get32(hdr + 8);
    if (avail - kFrameHeaderSize < body_len + kFrameTrailerSize) {
        // The frame header landed but the body/CRC didn't: a torn
        // append — unless intact frames follow, in which case this is
        // a corrupt length field and requireTearIsTail() throws.
        requireTearIsTail(fd_, path_, off_, size_);
        torn_ = true;
        return false;
    }
    Buffer body(body_len);
    if (body_len > 0)
        preadExact(fd_, body.data(), body_len, off_ + kFrameHeaderSize,
                   path_);
    std::uint8_t crc_bytes[kFrameTrailerSize];
    preadExact(fd_, crc_bytes, sizeof crc_bytes,
               off_ + kFrameHeaderSize + body_len, path_);
    if (get32(crc_bytes) !=
        crc32(body.data(), body.size(), crc32(hdr, sizeof hdr)))
        throw ArchiveError("chunkio: CRC mismatch in '" + path_ +
                           "' at offset " + std::to_string(off_) +
                           " (corrupt chunk)");
    lastOff_ = off_;
    off_ += kFrameHeaderSize + body_len + kFrameTrailerSize;
    valid_ = std::max(valid_, off_);
    frame.kind = kind;
    frame.body = std::move(body);
    return true;
}

} // namespace state
} // namespace ich
