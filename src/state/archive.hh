/**
 * @file
 * StateArchive: the versioned binary container for simulator snapshots.
 *
 * Layout (all integers little-endian, widths explicit):
 *
 *   header   u32 magic "ICHS" | u32 version | u64 payloadLen | u32 crc32
 *   payload  sequence of sections:
 *            u32 nameLen | name bytes | u32 bodyLen | body
 *   body     sequence of tagged values: u8 typeTag | value bytes
 *
 * The CRC covers the whole payload, so truncation and bit-rot surface as
 * a clean ArchiveError before any component sees bytes. Every value
 * carries a one-byte type tag, so a reader that drifts out of sync with
 * the writer (schema skew inside one version) fails loudly instead of
 * reinterpreting memory. Doubles are stored as raw IEEE-754 bit
 * patterns, so state round-trips bit-exactly — the foundation of the
 * byte-identical restore guarantee.
 */

#ifndef ICH_STATE_ARCHIVE_HH
#define ICH_STATE_ARCHIVE_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ich
{
namespace state
{

/** Any structural problem with an archive: truncation, CRC, version. */
class ArchiveError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Raw archive bytes (in memory or bound for a .snap file). */
using Buffer = std::vector<std::uint8_t>;

/** "ICHS" */
constexpr std::uint32_t kArchiveMagic = 0x53484349u;
constexpr std::uint32_t kArchiveVersion = 2; ///< v2: Ticker rate-group
                                             ///< section + lazy-decay
                                             ///< PowerGate/PowerLimiter
                                             ///< layouts

/**
 * CRC-32 (IEEE 802.3 polynomial) of @p data. @p seed chains calls over
 * discontiguous buffers: crc32(b, nb, crc32(a, na)) == crc32(a || b).
 */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size,
                    std::uint32_t seed = 0);

/**
 * Write @p data to @p path atomically: the bytes land in @p path.tmp
 * first and are renamed over the target, so a kill mid-write never
 * leaves a truncated file at the final name.
 */
void atomicWriteFile(const std::string &path, const Buffer &data);

/** Read a whole file; throws ArchiveError when unreadable. */
Buffer readFile(const std::string &path);

/**
 * Builds an archive: named sections containing tagged typed values.
 */
class ArchiveWriter
{
  public:
    /** Open a section; sections cannot nest. */
    void beginSection(const std::string &name);
    void endSection();

    /** @name Tagged primitive values (section must be open) */
    ///@{
    void putBool(bool v);
    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI32(std::int32_t v);
    /** Raw IEEE-754 bits: bit-exact round trip, NaN payloads included. */
    void putF64(double v);
    void putString(const std::string &v);
    ///@}

    /** Finished archive (header + payload + CRC). */
    Buffer finish() const;

    /** finish() + atomicWriteFile(). */
    void writeFile(const std::string &path) const;

  private:
    Buffer payload_;
    bool inSection_ = false;
    std::size_t bodyLenPos_ = 0; ///< offset of the open section's bodyLen

    void raw8(std::uint8_t v) { payload_.push_back(v); }
    void raw32(std::uint32_t v);
    void raw64(std::uint64_t v);
    void tagged(std::uint8_t tag);
};

/**
 * Cursor over one section's body; values must be read back in the order
 * (and with the types) they were written.
 */
class SectionReader
{
  public:
    SectionReader(std::string name, const std::uint8_t *begin,
                  const std::uint8_t *end);

    bool getBool();
    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int32_t getI32();
    double getF64();
    std::string getString();

    /** Bytes not yet consumed (0 when fully read). */
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    const std::uint8_t *p_;
    const std::uint8_t *end_;

    void need(std::size_t n, const char *what) const;
    void expectTag(std::uint8_t tag, const char *what);
    std::uint32_t raw32();
    std::uint64_t raw64();
};

/**
 * Parses and validates an archive (magic, version, length, CRC) and
 * indexes its sections by name.
 */
class ArchiveReader
{
  public:
    /** Takes ownership of the bytes; throws ArchiveError when invalid. */
    explicit ArchiveReader(Buffer data);

    static ArchiveReader fromFile(const std::string &path);

    bool has(const std::string &name) const;

    /** Open a section by name; throws ArchiveError when absent. */
    SectionReader open(const std::string &name) const;

    std::vector<std::string> sectionNames() const;

  private:
    Buffer data_;
    /** name -> (payload offset, body length) */
    std::map<std::string, std::pair<std::size_t, std::size_t>> index_;
};

} // namespace state
} // namespace ich

#endif // ICH_STATE_ARCHIVE_HH
