#include "state/snapshot.hh"

#include <algorithm>
#include <stdexcept>

#include "chip/simulation.hh"

namespace ich
{
namespace state
{

// ------------------------------------------------------------ contexts

void
SaveContext::putEvent(EventId id)
{
    SavedEvent ev;
    if (id != EventQueue::kInvalidEvent &&
        eq_.pendingInfo(id, ev.when, ev.priority, ev.seq))
        ev.valid = true;
    w_.putBool(ev.valid);
    w_.putU64(ev.when);
    w_.putI32(ev.priority);
    w_.putU64(ev.seq);
    if (ev.valid)
        ++tracked_;
}

void
RestoreContext::getEvent(SectionReader &r, RearmFn fn)
{
    SavedEvent ev;
    ev.valid = r.getBool();
    ev.when = r.getU64();
    ev.priority = r.getI32();
    ev.seq = r.getU64();
    if (ev.valid)
        pending_.push_back(Pending{ev, std::move(fn)});
}

void
RestoreContext::finish()
{
    if (finished_)
        throw std::logic_error("RestoreContext: finish() called twice");
    finished_ = true;
    // Replay in the original firing order: the queue breaks ties on
    // (time, priority, insertion sequence), so re-arming sorted by the
    // saved sequence hands same-timestamp events fresh sequence numbers
    // in the same relative order the saved run would have fired them.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Pending &a, const Pending &b) {
                         if (a.ev.when != b.ev.when)
                             return a.ev.when < b.ev.when;
                         if (a.ev.priority != b.ev.priority)
                             return a.ev.priority < b.ev.priority;
                         return a.ev.seq < b.ev.seq;
                     });
    for (Pending &p : pending_)
        p.fn(eq_, p.ev.when, p.ev.priority);
    rearmed_ = pending_.size();
    pending_.clear();
}

// --------------------------------------------------------- chip config

void
putChipConfig(ArchiveWriter &w, const ChipConfig &cfg)
{
    w.putString(cfg.name);
    w.putI32(cfg.numCores);
    w.putF64(cfg.tscGhz);

    const CoreConfig &core = cfg.core;
    w.putI32(core.smtThreads);
    w.putI32(core.throttle.windowCycles);
    w.putBool(core.throttle.perThread);
    w.putBool(core.avxGate.present);
    w.putU64(core.avxGate.wakeLatencyMin);
    w.putU64(core.avxGate.wakeLatencyMax);
    w.putU64(core.avxGate.idleCloseDelay);
    w.putF64(core.cdynBaseNf);
    w.putF64(core.leakageAmps);

    const PmuConfig &pmu = cfg.pmu;
    w.putF64(pmu.vf.v0Volts);
    w.putF64(pmu.vf.voltsPerGhz);
    w.putF64(pmu.rllOhm);
    w.putF64(pmu.limits.vccMaxVolts);
    w.putF64(pmu.limits.iccMaxAmps);
    w.putU32(static_cast<std::uint32_t>(pmu.pstate.binsGhz.size()));
    for (double bin : pmu.pstate.binsGhz)
        w.putF64(bin);
    w.putF64(pmu.pstate.minGhz);
    for (double ghz : pmu.pstate.licenseMaxGhz)
        w.putF64(ghz);
    w.putU64(pmu.pstate.transitionLatency);
    w.putU64(pmu.pstate.licenseReleaseDelay);
    w.putU8(static_cast<std::uint8_t>(pmu.governor.policy));
    w.putF64(pmu.governor.userspaceGhz);
    w.putU64(pmu.governor.applyLatency);
    w.putU64(pmu.governor.evalInterval);
    w.putBool(pmu.powerLimit.enabled);
    w.putF64(pmu.powerLimit.limitWatts);
    w.putU64(pmu.powerLimit.evalInterval);
    w.putF64(pmu.powerLimit.raiseBelowFraction);
    w.putU8(static_cast<std::uint8_t>(pmu.vr.kind));
    w.putF64(pmu.vr.slewVoltsPerSecond);
    w.putU64(pmu.vr.commandLatency);
    w.putU64(pmu.vr.settleTime);
    w.putU64(pmu.vr.commandJitter);
    w.putBool(pmu.perCoreVr);
    w.putBool(pmu.secureMode);
    w.putU64(pmu.resetTime);
    w.putU64(pmu.upclockDelay);
    w.putF64(pmu.leakagePerCoreAmps);

    const ThermalConfig &th = cfg.thermal;
    w.putF64(th.ambientCelsius);
    w.putF64(th.tjMaxCelsius);
    w.putF64(th.rThermal);
    w.putF64(th.cThermal);
    w.putU64(th.sampleInterval);
}

ChipConfig
getChipConfig(SectionReader &r)
{
    ChipConfig cfg;
    cfg.name = r.getString();
    cfg.numCores = r.getI32();
    cfg.tscGhz = r.getF64();

    CoreConfig &core = cfg.core;
    core.smtThreads = r.getI32();
    core.throttle.windowCycles = r.getI32();
    core.throttle.perThread = r.getBool();
    core.avxGate.present = r.getBool();
    core.avxGate.wakeLatencyMin = r.getU64();
    core.avxGate.wakeLatencyMax = r.getU64();
    core.avxGate.idleCloseDelay = r.getU64();
    core.cdynBaseNf = r.getF64();
    core.leakageAmps = r.getF64();

    PmuConfig &pmu = cfg.pmu;
    pmu.vf.v0Volts = r.getF64();
    pmu.vf.voltsPerGhz = r.getF64();
    pmu.rllOhm = r.getF64();
    pmu.limits.vccMaxVolts = r.getF64();
    pmu.limits.iccMaxAmps = r.getF64();
    pmu.pstate.binsGhz.resize(r.getU32());
    for (double &bin : pmu.pstate.binsGhz)
        bin = r.getF64();
    pmu.pstate.minGhz = r.getF64();
    for (double &ghz : pmu.pstate.licenseMaxGhz)
        ghz = r.getF64();
    pmu.pstate.transitionLatency = r.getU64();
    pmu.pstate.licenseReleaseDelay = r.getU64();
    pmu.governor.policy = static_cast<GovernorPolicy>(r.getU8());
    pmu.governor.userspaceGhz = r.getF64();
    pmu.governor.applyLatency = r.getU64();
    pmu.governor.evalInterval = r.getU64();
    pmu.powerLimit.enabled = r.getBool();
    pmu.powerLimit.limitWatts = r.getF64();
    pmu.powerLimit.evalInterval = r.getU64();
    pmu.powerLimit.raiseBelowFraction = r.getF64();
    pmu.vr.kind = static_cast<VrKind>(r.getU8());
    pmu.vr.slewVoltsPerSecond = r.getF64();
    pmu.vr.commandLatency = r.getU64();
    pmu.vr.settleTime = r.getU64();
    pmu.vr.commandJitter = r.getU64();
    pmu.perCoreVr = r.getBool();
    pmu.secureMode = r.getBool();
    pmu.resetTime = r.getU64();
    pmu.upclockDelay = r.getU64();
    pmu.leakagePerCoreAmps = r.getF64();

    ThermalConfig &th = cfg.thermal;
    th.ambientCelsius = r.getF64();
    th.tjMaxCelsius = r.getF64();
    th.rThermal = r.getF64();
    th.cThermal = r.getF64();
    th.sampleInterval = r.getU64();
    return cfg;
}

// ----------------------------------------------------- quiesce + save

bool
isQuiesced(const Simulation &sim, std::string *why)
{
    auto fail = [why](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    const Chip &chip = sim.chip();
    for (int c = 0; c < chip.coreCount(); ++c) {
        const Core &core = chip.core(c);
        for (int t = 0; t < core.numThreads(); ++t) {
            const HwThread &thr = core.thread(t);
            if (thr.started() && !thr.done())
                return fail("core " + std::to_string(c) + " smt " +
                            std::to_string(t) +
                            " is still executing a program");
        }
    }
    const CentralPmu &pmu = chip.pmu();
    if (pmu.pstateInFlight())
        return fail("a P-state transition is in flight");
    for (int d = 0; d < pmu.numDomains(); ++d)
        if (pmu.svid(d).busy())
            return fail("SVID domain " + std::to_string(d) +
                        " has transactions queued or ramping");
    if (why)
        why->clear();
    return true;
}

void
quiesce(Simulation &sim, Time max_wait)
{
    const Time deadline = sim.eq().now() + max_wait;
    std::string why;
    while (!isQuiesced(sim, &why)) {
        if (sim.eq().nextEventTime() > deadline || !sim.eq().runOne())
            throw std::runtime_error(
                "state::quiesce: simulation did not quiesce within " +
                std::to_string(toMicroseconds(max_wait)) + " us: " + why);
    }
}

Buffer
snapshot(Simulation &sim)
{
    return snapshot(sim, SnapshotHooks{});
}

Buffer
snapshot(Simulation &sim, const SnapshotHooks &hooks)
{
    std::string why;
    if (!isQuiesced(sim, &why))
        throw std::runtime_error("state::snapshot: not at a quiesce "
                                 "point: " + why);

    ArchiveWriter w;
    w.beginSection("config");
    putChipConfig(w, sim.chip().config());
    w.endSection();

    SaveContext ctx(w, sim.eq());
    w.beginSection("eq");
    sim.eq().saveState(ctx);
    w.endSection();
    w.beginSection("rng");
    sim.rng().saveState(ctx);
    w.endSection();
    w.beginSection("chip");
    sim.chip().saveState(ctx);
    w.endSection();
    w.beginSection("pmu");
    sim.chip().pmu().saveState(ctx);
    w.endSection();
    w.beginSection("ticker");
    sim.chip().ticker().saveState(ctx);
    w.endSection();
    if (hooks.save)
        hooks.save(w, ctx);

    // Event census: every live event must belong to a component that
    // re-arms it on restore. A leftover NoiseInjector/PhiApp/Daq or a
    // pending governor write would otherwise be silently dropped.
    if (ctx.trackedEvents() != sim.eq().size())
        throw std::runtime_error(
            "state::snapshot: " + std::to_string(sim.eq().size()) +
            " live events but only " +
            std::to_string(ctx.trackedEvents()) +
            " tracked by components — detach noise sources, samplers "
            "and pending software writes before snapshotting");
    return w.finish();
}

void
snapshotToFile(Simulation &sim, const std::string &path)
{
    atomicWriteFile(path, snapshot(sim));
}

std::unique_ptr<Simulation>
restore(const Buffer &buf)
{
    return restore(buf, RestoreHooks{});
}

std::unique_ptr<Simulation>
restore(const Buffer &buf, const RestoreHooks &hooks)
{
    ArchiveReader archive(buf);
    SectionReader config = archive.open("config");
    ChipConfig cfg = getChipConfig(config);

    auto sim = std::make_unique<Simulation>(cfg);
    if (hooks.attach)
        hooks.attach(*sim);
    RestoreContext ctx(sim->eq());
    SectionReader eq = archive.open("eq");
    sim->eq().restoreState(eq);
    SectionReader rng = archive.open("rng");
    sim->rng().restoreState(rng);
    SectionReader chip = archive.open("chip");
    sim->chip().restoreState(chip, ctx);
    SectionReader pmu = archive.open("pmu");
    sim->chip().pmu().restoreState(pmu, ctx);
    SectionReader ticker = archive.open("ticker");
    sim->chip().ticker().restoreState(ticker, ctx);
    if (hooks.restore)
        hooks.restore(*sim, archive, ctx);
    ctx.finish();

    if (sim->eq().size() != ctx.rearmed())
        throw ArchiveError("state::restore: event census mismatch after "
                           "re-arm (" + std::to_string(sim->eq().size()) +
                           " live vs " + std::to_string(ctx.rearmed()) +
                           " re-armed)");
    return sim;
}

std::unique_ptr<Simulation>
restoreFromFile(const std::string &path)
{
    return restore(readFile(path));
}

} // namespace state
} // namespace ich
