/**
 * @file
 * CRC-framed append-only chunk files: the shared framing layer under
 * the columnar result store (exp/colstore) and columnar trace spills
 * (measure/trace).
 *
 * A chunk file is a flat sequence of frames:
 *
 *   frame   u32 magic "ICKF" | u32 kind | u32 bodyLen | body | u32 crc32
 *
 * All integers are little-endian with explicit widths, and the CRC
 * (state::crc32, same polynomial as StateArchive) covers the *whole
 * frame* — magic, kind, bodyLen, and body. Covering the header matters:
 * a flipped bit in bodyLen would otherwise masquerade as a torn tail
 * (swallowing every frame after it), and a flipped bit in kind would
 * reinterpret the body under another chunk type — both silent-data-loss
 * modes found by the crash-point torture campaign
 * (bench/torture_crashpoints). `kind` is producer-defined (header/data/
 * footer chunk types).
 *
 * Durability discipline — the append-only complement of
 * atomicWriteFile's write-temp-and-rename:
 *
 *  - A writer appends whole frames; in durable mode every append is
 *    fsync'd (and the directory entry is fsync'd once at creation), so
 *    a completed append survives kill -9.
 *  - A kill mid-append leaves a *torn tail*: an incomplete final frame.
 *    The scanner detects it (not enough bytes for the announced frame),
 *    reports it via tornTail(), and stops cleanly — every frame before
 *    the tear is intact by construction.
 *  - A torn tail is only ever the *last* thing in a file: appends are
 *    sequential, so nothing can land after an unfinished frame. If an
 *    intact frame parses after an apparent tear, the "tear" is really a
 *    corrupted length field, and the scanner raises ArchiveError
 *    instead of silently dropping the good frames behind it.
 *  - A *complete* frame with a bad magic or CRC is corruption, not a
 *    tear, and raises ArchiveError: bytes after it can't be trusted.
 *  - Reopening for append truncates the torn tail first, so the file
 *    returns to a frame boundary before new frames land.
 */

#ifndef ICH_STATE_CHUNKIO_HH
#define ICH_STATE_CHUNKIO_HH

#include <cstdint>
#include <string>

#include "state/archive.hh"

namespace ich
{
namespace state
{

/** "ICKF" — guards every frame boundary. */
constexpr std::uint32_t kChunkFrameMagic = 0x464B4349u;

/** One decoded frame. */
struct ChunkFrame {
    std::uint32_t kind = 0;
    Buffer body;
};

/** Serialize one frame onto @p out (in-memory composition). */
void appendChunkFrame(Buffer &out, std::uint32_t kind, const Buffer &body);

/**
 * Appends frames to a chunk file. Not thread-safe; callers serialize.
 */
class ChunkFileWriter
{
  public:
    ChunkFileWriter() = default;
    ~ChunkFileWriter();
    ChunkFileWriter(const ChunkFileWriter &) = delete;
    ChunkFileWriter &operator=(const ChunkFileWriter &) = delete;

    /**
     * Create (or truncate) @p path, creating parent directories. When
     * @p durable, every append() is fsync'd and the directory entry is
     * fsync'd now, so appended frames survive kill -9.
     */
    void create(const std::string &path, bool durable);

    /**
     * Open an existing file for append, truncating it to
     * @p valid_bytes first (dropping a torn tail so appends resume on
     * a frame boundary). @p valid_bytes comes from a prior scan
     * (ChunkFileScanner::validBytes()).
     */
    void openAppend(const std::string &path, std::uint64_t valid_bytes,
                    bool durable);

    /** Append one frame (and fsync it in durable mode). */
    void append(std::uint32_t kind, const Buffer &body);

    /**
     * fsync the file now regardless of durability mode — lets a
     * non-durable writer amortize one fsync across a batch of appends
     * instead of paying one per frame. No-op on a closed writer.
     */
    void sync();

    void close();
    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    bool durable_ = false;
    std::string path_;

    void writeAll(const Buffer &bytes);
};

/**
 * Sequential frame reader with torn-tail detection.
 */
class ChunkFileScanner
{
  public:
    /** Throws ArchiveError when the file cannot be opened. */
    explicit ChunkFileScanner(const std::string &path);
    ~ChunkFileScanner();
    ChunkFileScanner(const ChunkFileScanner &) = delete;
    ChunkFileScanner &operator=(const ChunkFileScanner &) = delete;

    /**
     * Read the next frame. Returns false at a clean EOF *or* at a torn
     * tail (tornTail() distinguishes). Throws ArchiveError on a
     * complete frame whose magic or CRC is wrong (corruption).
     */
    bool next(ChunkFrame &frame);

    /** True when the file ends in an incomplete frame. */
    bool tornTail() const { return torn_; }

    /** Offset just past the last successfully decoded frame. */
    std::uint64_t validBytes() const { return valid_; }

    /** Offset of the frame returned by the most recent next(). */
    std::uint64_t lastFrameOffset() const { return lastOff_; }

    std::uint64_t fileSize() const { return size_; }

    /** Reposition to a frame offset previously observed. */
    void seekTo(std::uint64_t offset);

  private:
    int fd_ = -1;
    std::string path_;
    std::uint64_t off_ = 0;
    std::uint64_t size_ = 0;
    std::uint64_t valid_ = 0;
    std::uint64_t lastOff_ = 0;
    bool torn_ = false;
};

} // namespace state
} // namespace ich

#endif // ICH_STATE_CHUNKIO_HH
