#include "channels/thread_channel.hh"

#include <stdexcept>

namespace ich
{

std::vector<double>
IccThreadCovert::runOnSimulation(Simulation &sim,
                                 const std::vector<int> &symbols,
                                 bool with_noise)
{
    // Sender and receiver interleave on core 0 / SMT 0 (Figure 3):
    //   wait(epoch_k); sender PHI loop (class = symbol);
    //   rdtsc; receiver 512b_Heavy probe; rdtsc.
    Program prog;
    for (std::size_t k = 0; k < symbols.size(); ++k) {
        prog.waitUntilTsc(epochTsc(sim, k));
        prog.loop(map_.symbolClasses.at(symbols[k]),
                  cfg_.senderIterations);
        prog.mark(static_cast<int>(2 * k));
        prog.loop(map_.threadProbe, cfg_.probeIterations);
        prog.mark(static_cast<int>(2 * k + 1));
    }

    HwThread &thr = sim.chip().core(0).thread(0);
    thr.setProgram(std::move(prog));

    Time horizon = fromMicroseconds(
        toMicroseconds(cfg_.period) * (symbols.size() + 2));
    NoiseHandles noise;
    if (with_noise) {
        // The concurrent app time-shares the channel's core (via the
        // SMT sibling when present): its PHIs raise this core's
        // guardband level and mask the sender's symbols whenever the
        // app's level is higher (Fig. 14b error matrix).
        CoreId app_core = cfg_.chip.core.smtThreads > 1 ? 0 : 1;
        int app_smt = app_core == 0 ? 1 : 0;
        noise = attachNoise(sim, 0, 0, app_core, app_smt, horizon);
        scheduleBursts(sim, symbols.size());
    }
    thr.start();
    sim.run(horizon);

    const auto &recs = thr.records();
    if (recs.size() != 2 * symbols.size())
        throw std::logic_error("IccThreadCovert: missing records");
    std::vector<double> tp_us;
    tp_us.reserve(symbols.size());
    for (std::size_t k = 0; k < symbols.size(); ++k) {
        Time t0 = recs[2 * k].time;
        Time t1 = recs[2 * k + 1].time;
        tp_us.push_back(toMicroseconds(t1 - t0));
    }
    return tp_us;
}

} // namespace ich
