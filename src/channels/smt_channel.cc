#include "channels/smt_channel.hh"

#include <cmath>
#include <stdexcept>

namespace ich
{

namespace
{
/** Receiver decode window after each epoch. */
constexpr double kWindowUs = 60.0;
/** Unroll of the receiver's 64b chunked loop. */
constexpr int kRxUnroll = 20;
} // namespace

IccSMTcovert::IccSMTcovert(ChannelConfig cfg)
    : CovertChannel(std::move(cfg))
{
    if (cfg_.chip.core.smtThreads < 2)
        throw std::invalid_argument(
            "IccSMTcovert requires an SMT-capable chip preset");
}

std::vector<double>
IccSMTcovert::runOnSimulation(Simulation &sim,
                              const std::vector<int> &symbols,
                              bool with_noise)
{
    // Sender: core 0 / SMT 0; Receiver: core 0 / SMT 1.
    Program tx;
    for (std::size_t k = 0; k < symbols.size(); ++k) {
        tx.waitUntilTsc(epochTsc(sim, k));
        tx.loop(map_.symbolClasses.at(symbols[k]), cfg_.senderIterations);
    }

    // Receiver runs one continuous chunked 64b loop spanning the whole
    // transmission, timestamping every chunk.
    double iter_cycles =
        makeKernel(map_.smtProbe, 1, kRxUnroll).cyclesPerIteration();
    double iter_us = iter_cycles * cyclePicos(cfg_.freqGhz) * 1e-6;
    double total_us =
        toMicroseconds(cfg_.period) * (symbols.size() + 1) + 100.0;
    auto total_iters =
        static_cast<std::uint64_t>(std::ceil(total_us / iter_us));

    Program rx;
    rx.loopChunked(map_.smtProbe, total_iters, cfg_.smtChunkIterations,
                   /*tag=*/0, kRxUnroll);

    HwThread &tx_thr = sim.chip().core(0).thread(0);
    HwThread &rx_thr = sim.chip().core(0).thread(1);
    tx_thr.setProgram(std::move(tx));
    rx_thr.setProgram(std::move(rx));

    Time horizon = fromMicroseconds(total_us + 100.0);
    NoiseHandles noise;
    if (with_noise) {
        CoreId app_core = sim.chip().coreCount() > 1 ? 1 : 0;
        noise = attachNoise(sim, 0, 1, app_core, 0, horizon);
    }
    rx_thr.start();
    tx_thr.start();
    sim.run(horizon);

    // Decode: sum of chunk-latency excess (over the nominal chunk time)
    // within each epoch's window ≈ 3/4 of the sender's TP.
    double nominal_chunk_us =
        cfg_.smtChunkIterations * iter_us * 1.001;
    double first_epoch_us =
        toMicroseconds(sim.chip().tscToTime(epochTsc(sim, 0)));
    double period_us = toMicroseconds(cfg_.period);
    const auto &recs = rx_thr.records();
    std::vector<double> tp_us(symbols.size(), 0.0);
    Time prev = 0;
    bool have_prev = false;
    for (const auto &rec : recs) {
        if (have_prev) {
            double chunk_us = toMicroseconds(rec.time - prev);
            double excess = chunk_us - nominal_chunk_us;
            if (excess > 0.0) {
                // Attribute the excess to the epoch whose window covers
                // the chunk's *start*.
                double start_us = toMicroseconds(prev);
                double rel = start_us - first_epoch_us + 2.0;
                if (rel >= 0.0) {
                    auto k = static_cast<std::size_t>(rel / period_us);
                    double into = rel - k * period_us;
                    if (k < symbols.size() && into < kWindowUs + 2.0)
                        tp_us[k] += excess;
                }
            }
        }
        prev = rec.time;
        have_prev = true;
    }
    return tp_us;
}

} // namespace ich
