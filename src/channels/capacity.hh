/**
 * @file
 * Empirical covert-channel capacity estimation (paper's [72],
 * Millen, "Covert Channel Capacity", S&P 1987).
 *
 * The IChannels symbol channel is X ∈ {0..3} (sender intensity level) →
 * Y (receiver TP measurement). From per-symbol TP samples we estimate
 * the mutual information I(X;Y) with a discretized Y, assuming a uniform
 * input distribution; capacity per second follows from the transaction
 * period. A noise-free channel yields the full 2 bits/transaction; noise
 * and mitigations reduce it — secure-mode drives it to ~0.
 */

#ifndef ICH_CHANNELS_CAPACITY_HH
#define ICH_CHANNELS_CAPACITY_HH

#include <array>
#include <vector>

#include "channels/levels.hh"
#include "common/types.hh"

namespace ich
{

/** Per-symbol TP sample sets. */
using SymbolSamples = std::array<std::vector<double>, kNumSymbols>;

/** Estimates I(X;Y) and channel capacity from measurements. */
class CapacityEstimator
{
  public:
    /**
     * Mutual information (bits/transaction) between the transmitted
     * symbol and the measured TP, with Y discretized into @p bins
     * equal-width bins spanning the observed sample range.
     */
    static double mutualInformationBits(const SymbolSamples &samples,
                                        int bins = 64);

    /** Capacity in bits/second given the transaction period. */
    static double capacityBps(const SymbolSamples &samples, Time period,
                              int bins = 64);

    /**
     * Collect per-symbol samples by running @p repeats transactions of
     * each symbol through @p channel (with its configured noise).
     */
    static SymbolSamples measure(class CovertChannel &channel,
                                 int repeats, bool with_noise = true);
};

} // namespace ich

#endif // ICH_CHANNELS_CAPACITY_HH
