/**
 * @file
 * IccThreadCovert (paper §4.1): covert channel between two execution
 * contexts time-sharing the *same hardware thread* (e.g. two sandboxed
 * code regions of one process). Exploits Multi-Throttling-Thread: the
 * receiver's fixed 512b_Heavy probe loop is throttled for a period that
 * depends on the voltage level the sender's PHI loop left behind — lower
 * sender intensity ⇒ more remaining voltage to ramp ⇒ longer probe TP.
 */

#ifndef ICH_CHANNELS_THREAD_CHANNEL_HH
#define ICH_CHANNELS_THREAD_CHANNEL_HH

#include "channels/channel.hh"

namespace ich
{

/** Same-hardware-thread covert channel. */
class IccThreadCovert : public CovertChannel
{
  public:
    explicit IccThreadCovert(ChannelConfig cfg)
        : CovertChannel(std::move(cfg))
    {
    }

    ChannelKind kind() const override { return ChannelKind::kThread; }

  protected:
    std::vector<double>
    runOnSimulation(Simulation &sim, const std::vector<int> &symbols,
                    bool with_noise) override;
};

} // namespace ich

#endif // ICH_CHANNELS_THREAD_CHANNEL_HH
