#include "channels/framing.hh"

#include <algorithm>

namespace ich
{

namespace
{

/** Append @p value as @p bits LSB-first bits. */
void
appendBits(BitVec &out, std::uint32_t value, int bits)
{
    for (int i = 0; i < bits; ++i)
        out.push_back(static_cast<std::uint8_t>((value >> i) & 1));
}

std::uint32_t
readBits(const BitVec &in, std::size_t pos, int bits)
{
    std::uint32_t v = 0;
    for (int i = 0; i < bits; ++i)
        if (pos + i < in.size() && in[pos + i])
            v |= 1u << i;
    return v;
}

constexpr int kSeqBits = 8;
constexpr int kCrcBits = 16;

} // namespace

const char *
toString(FecScheme scheme)
{
    switch (scheme) {
      case FecScheme::kNone:
        return "none";
      case FecScheme::kRepetition3:
        return "repetition-3";
      case FecScheme::kRepetition5:
        return "repetition-5";
      case FecScheme::kHamming74:
        return "hamming(7,4)";
    }
    return "?";
}

FramedLink::FramedLink(CovertChannel &channel, const FramingConfig &cfg)
    : channel_(channel), cfg_(cfg)
{
}

double
FramedLink::codeRate() const
{
    switch (cfg_.fec) {
      case FecScheme::kNone:
        return 1.0;
      case FecScheme::kRepetition3:
        return 3.0;
      case FecScheme::kRepetition5:
        return 5.0;
      case FecScheme::kHamming74:
        return 7.0 / 4.0;
    }
    return 1.0;
}

BitVec
FramedLink::encode(const BitVec &bits) const
{
    BitVec coded;
    switch (cfg_.fec) {
      case FecScheme::kNone:
        coded = bits;
        break;
      case FecScheme::kRepetition3:
        coded = repetitionEncode(bits, 3);
        break;
      case FecScheme::kRepetition5:
        coded = repetitionEncode(bits, 5);
        break;
      case FecScheme::kHamming74:
        coded = hammingEncode(bits);
        break;
    }
    if (cfg_.interleaveDepth > 1)
        coded = interleave(coded, cfg_.interleaveDepth);
    return coded;
}

BitVec
FramedLink::decode(const BitVec &coded_in) const
{
    BitVec coded = cfg_.interleaveDepth > 1
                       ? deinterleave(coded_in, cfg_.interleaveDepth)
                       : coded_in;
    switch (cfg_.fec) {
      case FecScheme::kNone:
        return coded;
      case FecScheme::kRepetition3:
        return repetitionDecode(coded, 3);
      case FecScheme::kRepetition5:
        return repetitionDecode(coded, 5);
      case FecScheme::kHamming74:
        return hammingDecode(coded);
    }
    return coded;
}

FramedResult
FramedLink::transfer(const BitVec &payload)
{
    FramedResult res;
    double ber_sum = 0.0;
    int transmissions = 0;

    std::size_t n_frames =
        (payload.size() + cfg_.frameBits - 1) / cfg_.frameBits;
    BitVec assembled;

    for (std::size_t f = 0; f < n_frames; ++f) {
        // Build the frame: seq + payload slice (zero-padded) + CRC.
        BitVec frame;
        appendBits(frame, static_cast<std::uint32_t>(f & 0xFF),
                   kSeqBits);
        std::size_t lo = f * cfg_.frameBits;
        std::size_t hi = std::min(payload.size(), lo + cfg_.frameBits);
        BitVec body(payload.begin() + lo, payload.begin() + hi);
        body.resize(cfg_.frameBits, 0);
        frame.insert(frame.end(), body.begin(), body.end());
        appendBits(frame, crc16(body), kCrcBits);

        BitVec coded = encode(frame);

        bool delivered = false;
        for (int attempt = 0;
             attempt < cfg_.maxAttempts && !delivered; ++attempt) {
            TransmitResult tx = channel_.transmit(coded);
            ++transmissions;
            ber_sum += tx.ber;
            res.channelBits += tx.sentBits.size();
            res.seconds += tx.seconds;

            BitVec rx = decode(tx.receivedBits);
            if (rx.size() < frame.size())
                continue;
            std::uint32_t seq = readBits(rx, 0, kSeqBits);
            BitVec rx_body(rx.begin() + kSeqBits,
                           rx.begin() + kSeqBits +
                               static_cast<long>(cfg_.frameBits));
            auto rx_crc = static_cast<std::uint16_t>(
                readBits(rx, kSeqBits + cfg_.frameBits, kCrcBits));
            if (seq == (f & 0xFF) && crc16(rx_body) == rx_crc) {
                delivered = true;
                ++res.framesDelivered;
                assembled.insert(assembled.end(), rx_body.begin(),
                                 rx_body.end());
            }
        }
        if (!delivered) {
            res.framesSent = transmissions;
            res.rawBerObserved = ber_sum / transmissions;
            return res; // failure: payload left empty
        }
    }

    assembled.resize(payload.size());
    res.payload = std::move(assembled);
    res.success = true;
    res.framesSent = transmissions;
    res.rawBerObserved =
        transmissions > 0 ? ber_sum / transmissions : 0.0;
    res.goodputBps =
        res.seconds > 0.0 ? payload.size() / res.seconds : 0.0;
    return res;
}

} // namespace ich
