/**
 * @file
 * Error-control coding for noisy covert channels (paper §6.3 "Mitigating
 * the Effects of System Noise": averaging / error detection & correction
 * codes as used by several covert-channel works [17, 24, 57, 70, 92]).
 *
 * Provided schemes: k-repetition with majority vote, Hamming(7,4) single
 * error correction, and CRC-16/CCITT for end-to-end detection.
 */

#ifndef ICH_CHANNELS_CODING_HH
#define ICH_CHANNELS_CODING_HH

#include <cstdint>
#include <vector>

namespace ich
{

using BitVec = std::vector<std::uint8_t>;

/** @name Bit/byte conversion (LSB-first within each byte) */
///@{
BitVec bytesToBits(const std::vector<std::uint8_t> &bytes);
std::vector<std::uint8_t> bitsToBytes(const BitVec &bits);
///@}

/** @name k-repetition code */
///@{
BitVec repetitionEncode(const BitVec &bits, int k);
BitVec repetitionDecode(const BitVec &coded, int k);
///@}

/** @name Hamming(7,4): corrects any single bit error per 7-bit block */
///@{
BitVec hammingEncode(const BitVec &bits);
BitVec hammingDecode(const BitVec &coded);
///@}

/**
 * @name Block interleaving
 * The channel's symbol errors corrupt *pairs* of adjacent bits (one
 * 2-bit symbol), which defeats single-error-correcting codes. Writing
 * the codeword into a depth-row block column-wise and reading row-wise
 * spreads a burst across code blocks: adjacent transmitted bits sit
 * ceil(n/depth) positions apart in the codeword, so choose
 * depth ≈ n / code-block-length (e.g. depth = codedBits/7 for
 * Hamming(7,4)).
 */
///@{
BitVec interleave(const BitVec &bits, int depth);
BitVec deinterleave(const BitVec &bits, int depth);
///@}

/** CRC-16/CCITT-FALSE over a bit vector (MSB-first). */
std::uint16_t crc16(const BitVec &bits);

/** Count positions where @p a and @p b differ (up to the shorter size). */
std::size_t hammingDistance(const BitVec &a, const BitVec &b);

} // namespace ich

#endif // ICH_CHANNELS_CODING_HH
