#include "channels/coding.hh"

#include <algorithm>
#include <stdexcept>

namespace ich
{

BitVec
bytesToBits(const std::vector<std::uint8_t> &bytes)
{
    BitVec bits;
    bits.reserve(bytes.size() * 8);
    for (std::uint8_t b : bytes)
        for (int i = 0; i < 8; ++i)
            bits.push_back((b >> i) & 1);
    return bits;
}

std::vector<std::uint8_t>
bitsToBytes(const BitVec &bits)
{
    std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bits.size(); ++i)
        if (bits[i])
            bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    return bytes;
}

BitVec
repetitionEncode(const BitVec &bits, int k)
{
    if (k < 1)
        throw std::invalid_argument("repetitionEncode: k < 1");
    BitVec out;
    out.reserve(bits.size() * k);
    for (auto b : bits)
        for (int i = 0; i < k; ++i)
            out.push_back(b);
    return out;
}

BitVec
repetitionDecode(const BitVec &coded, int k)
{
    if (k < 1)
        throw std::invalid_argument("repetitionDecode: k < 1");
    BitVec out;
    out.reserve(coded.size() / k);
    for (std::size_t i = 0; i + k <= coded.size(); i += k) {
        int ones = 0;
        for (int j = 0; j < k; ++j)
            ones += coded[i + j];
        out.push_back(ones * 2 > k ? 1 : 0);
    }
    return out;
}

namespace
{

/** Encode one 4-bit nibble to a (p1 p2 d1 p3 d2 d3 d4) block. */
void
hammingEncodeNibble(const std::uint8_t d[4], BitVec &out)
{
    std::uint8_t p1 = d[0] ^ d[1] ^ d[3];
    std::uint8_t p2 = d[0] ^ d[2] ^ d[3];
    std::uint8_t p3 = d[1] ^ d[2] ^ d[3];
    out.push_back(p1);
    out.push_back(p2);
    out.push_back(d[0]);
    out.push_back(p3);
    out.push_back(d[1]);
    out.push_back(d[2]);
    out.push_back(d[3]);
}

} // namespace

BitVec
hammingEncode(const BitVec &bits)
{
    BitVec out;
    out.reserve((bits.size() + 3) / 4 * 7);
    for (std::size_t i = 0; i < bits.size(); i += 4) {
        std::uint8_t d[4] = {0, 0, 0, 0};
        for (std::size_t j = 0; j < 4 && i + j < bits.size(); ++j)
            d[j] = bits[i + j];
        hammingEncodeNibble(d, out);
    }
    return out;
}

BitVec
hammingDecode(const BitVec &coded)
{
    BitVec out;
    out.reserve(coded.size() / 7 * 4);
    for (std::size_t i = 0; i + 7 <= coded.size(); i += 7) {
        std::uint8_t b[7];
        for (int j = 0; j < 7; ++j)
            b[j] = coded[i + j];
        // Syndrome bits: positions 1,2,4 are parity.
        int s1 = b[0] ^ b[2] ^ b[4] ^ b[6];
        int s2 = b[1] ^ b[2] ^ b[5] ^ b[6];
        int s3 = b[3] ^ b[4] ^ b[5] ^ b[6];
        int syndrome = s1 | (s2 << 1) | (s3 << 2);
        if (syndrome != 0)
            b[syndrome - 1] ^= 1;
        out.push_back(b[2]);
        out.push_back(b[4]);
        out.push_back(b[5]);
        out.push_back(b[6]);
    }
    return out;
}

BitVec
interleave(const BitVec &bits, int depth)
{
    if (depth < 1)
        throw std::invalid_argument("interleave: depth < 1");
    std::size_t n = bits.size();
    auto cols = (n + depth - 1) / static_cast<std::size_t>(depth);
    BitVec out;
    out.reserve(n);
    for (std::size_t c = 0; c < cols; ++c)
        for (int r = 0; r < depth; ++r) {
            std::size_t idx = static_cast<std::size_t>(r) * cols + c;
            if (idx < n)
                out.push_back(bits[idx]);
        }
    return out;
}

BitVec
deinterleave(const BitVec &bits, int depth)
{
    if (depth < 1)
        throw std::invalid_argument("deinterleave: depth < 1");
    std::size_t n = bits.size();
    auto cols = (n + depth - 1) / static_cast<std::size_t>(depth);
    BitVec out(n, 0);
    std::size_t pos = 0;
    for (std::size_t c = 0; c < cols; ++c)
        for (int r = 0; r < depth; ++r) {
            std::size_t idx = static_cast<std::size_t>(r) * cols + c;
            if (idx < n && pos < n)
                out[idx] = bits[pos++];
        }
    return out;
}

std::uint16_t
crc16(const BitVec &bits)
{
    std::uint16_t crc = 0xFFFF;
    for (auto bit : bits) {
        bool msb = (crc & 0x8000) != 0;
        crc = static_cast<std::uint16_t>(crc << 1);
        if (msb != (bit != 0))
            crc ^= 0x1021;
    }
    return crc;
}

std::size_t
hammingDistance(const BitVec &a, const BitVec &b)
{
    std::size_t n = std::min(a.size(), b.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < n; ++i)
        if ((a[i] != 0) != (b[i] != 0))
            ++d;
    return d;
}

} // namespace ich
