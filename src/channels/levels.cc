#include "channels/levels.hh"

#include "chip/presets.hh"

namespace ich
{

SymbolMap
symbolMapFor(const ChipConfig &cfg)
{
    SymbolMap map;
    if (presets::hasAvx512(cfg)) {
        // Paper Figure 3: 00→128b_Heavy (L4), 01→256b_Light (L3),
        // 10→256b_Heavy (L2), 11→512b_Heavy (L1).
        map.symbolClasses = {InstClass::k128Heavy, InstClass::k256Light,
                             InstClass::k256Heavy, InstClass::k512Heavy};
        map.threadProbe = InstClass::k512Heavy;
        map.coresProbe = InstClass::k128Heavy;
    } else {
        // AVX2-only parts: shift the ladder down one width; four
        // distinct guardband levels remain (0,1,2,3).
        map.symbolClasses = {InstClass::kScalar64, InstClass::k128Heavy,
                             InstClass::k256Light, InstClass::k256Heavy};
        map.threadProbe = InstClass::k256Heavy;
        map.coresProbe = InstClass::k128Heavy;
    }
    map.smtProbe = InstClass::kScalar64; // 64b loop per Figure 3
    return map;
}

int
packSymbol(int b1, int b0)
{
    return ((b1 & 1) << 1) | (b0 & 1);
}

std::array<int, 2>
unpackSymbol(int symbol)
{
    return {(symbol >> 1) & 1, symbol & 1};
}

} // namespace ich
