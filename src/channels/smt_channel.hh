/**
 * @file
 * IccSMTcovert (paper §4.2): covert channel between two SMT threads of
 * one physical core. Exploits Multi-Throttling-SMT: while the sender's
 * PHI waits for its voltage ramp, the core blocks the shared IDQ→back-end
 * interface 3 of every 4 cycles, so the receiver's scalar 64b loop on the
 * sibling thread slows down for exactly the sender's throttling period —
 * whose length encodes the sender's 2-bit symbol.
 */

#ifndef ICH_CHANNELS_SMT_CHANNEL_HH
#define ICH_CHANNELS_SMT_CHANNEL_HH

#include "channels/channel.hh"

namespace ich
{

/** Cross-SMT covert channel. */
class IccSMTcovert : public CovertChannel
{
  public:
    explicit IccSMTcovert(ChannelConfig cfg);

    ChannelKind kind() const override { return ChannelKind::kSmt; }

  protected:
    std::vector<double>
    runOnSimulation(Simulation &sim, const std::vector<int> &symbols,
                    bool with_noise) override;
};

} // namespace ich

#endif // ICH_CHANNELS_SMT_CHANNEL_HH
