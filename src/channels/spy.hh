/**
 * @file
 * Instruction-class side-channel spy (paper §6.5).
 *
 * The throttling side-effects also work as a *side* channel: attacker
 * code co-located with an unwitting victim (SMT sibling or another core)
 * infers the guardband level — and hence the width/heaviness class — of
 * the instructions the victim executes. This is the paper's synthetic
 * side-channel built "with minimal changes" from the covert-channel PoC.
 */

#ifndef ICH_CHANNELS_SPY_HH
#define ICH_CHANNELS_SPY_HH

#include <vector>

#include "channels/channel.hh"
#include "isa/inst_class.hh"

namespace ich
{

/** Result of one observation run. */
struct SpyResult {
    std::vector<InstClass> victimClasses;
    std::vector<int> actualLevels;
    std::vector<int> inferredLevels;
    double levelAccuracy = 0.0;
};

/**
 * Observes a victim's instruction-class sequence from an SMT sibling or
 * another core.
 */
class InstructionSpy
{
  public:
    /**
     * @param cfg Channel-style configuration (chip, frequency, pacing).
     * @param vantage kSmt (sibling thread) or kCores (other core).
     */
    InstructionSpy(ChannelConfig cfg, ChannelKind vantage);

    /** Observe one victim kernel per epoch and infer its level. */
    SpyResult observe(const std::vector<InstClass> &victim_sequence);

  private:
    ChannelConfig cfg_;
    ChannelKind vantage_;
    std::vector<double> levelMeansUs_;
    bool calibrated_ = false;
    std::uint64_t runCounter_ = 0;

    std::vector<double> measure(const std::vector<InstClass> &seq);
    void calibrate();
};

} // namespace ich

#endif // ICH_CHANNELS_SPY_HH
