/**
 * @file
 * Common covert-channel framework: configuration, transaction pacing,
 * calibration management, and throughput/BER accounting shared by
 * IccThreadCovert, IccSMTcovert and IccCoresCovert (paper §4, §6).
 *
 * Transactions are wall-clock paced (rdtsc epochs, §4.3.3): each symbol
 * occupies one `period`, consisting of a ~40 µs transmit window followed
 * by the 650 µs reset-time that lets the hysteresis decay the guardband
 * back to baseline.
 */

#ifndef ICH_CHANNELS_CHANNEL_HH
#define ICH_CHANNELS_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "channels/calibration.hh"
#include "channels/coding.hh"
#include "channels/levels.hh"
#include "chip/simulation.hh"
#include "os/noise.hh"
#include "os/phi_app.hh"

namespace ich
{

/** Where the two communicating execution contexts live. */
enum class ChannelKind { kThread, kSmt, kCores };

const char *toString(ChannelKind kind);

class CovertChannel;

/** Construct the IChannels covert channel of the given kind. */
std::unique_ptr<CovertChannel> makeChannel(ChannelKind kind,
                                           const struct ChannelConfig &cfg);

/**
 * Deterministic per-transaction application PHI burst (the Fig. 14b
 * error-matrix experiment): one concurrent-app PHI of a fixed class
 * collides with every transaction at a fixed offset into the TX window.
 * Decoding fails exactly when the burst's power level exceeds the
 * channel's symbol level.
 */
struct PerTxnBurst {
    bool enabled = false;
    InstClass cls = InstClass::k256Heavy;
    /** Offset of the burst into each transaction window. */
    Time offset = fromMicroseconds(8.0);
    /** Burst length (a few microseconds of PHI execution). */
    Time duration = fromMicroseconds(4.0);
    CoreId core = 0;
    int smt = 1;
};

/** Channel configuration. */
struct ChannelConfig {
    ChipConfig chip;
    std::uint64_t seed = 1;
    /** Pinned operating frequency (paper characterizes at 1–1.4 GHz). */
    double freqGhz = 1.4;
    /** Transaction period: TX window + reset-time + down-ramp margin. */
    Time period = fromMicroseconds(710);
    /** Receiver start offset after the sender epoch (cross-core sync). */
    Time coresReceiverDelay = fromNanoseconds(150);
    /** Sender PHI loop iterations (sized to outlast its own TP). */
    std::uint64_t senderIterations = 220;
    /** Receiver probe loop iterations (thread/cores channels). */
    std::uint64_t probeIterations = 85;
    /** Receiver chunk size in iterations (SMT channel). */
    std::uint64_t smtChunkIterations = 250;
    /** Training transactions per symbol for calibration. */
    int calibrationRepeats = 8;
    /** OS noise applied to the receiver's hardware thread. */
    NoiseConfig noise;
    /** Concurrent PHI application noise (free-running Poisson bursts). */
    PhiAppConfig app;
    /** Per-transaction colliding app burst (Fig. 14b). */
    PerTxnBurst burst;
};

/** Outcome of one transmit() call. */
struct TransmitResult {
    BitVec sentBits;
    BitVec receivedBits;
    std::vector<int> symbolsSent;
    std::vector<int> symbolsReceived;
    std::vector<double> tpUs; ///< per-transaction receiver measurement
    std::size_t bitErrors = 0;
    double ber = 0.0;
    double seconds = 0.0;        ///< simulated payload transfer time
    double throughputBps = 0.0;  ///< payload bits / seconds
};

/**
 * Base class for the three IChannels covert channels.
 */
class CovertChannel
{
  public:
    explicit CovertChannel(ChannelConfig cfg);
    virtual ~CovertChannel() = default;

    virtual ChannelKind kind() const = 0;

    /**
     * Transmit @p bits (2 per transaction) through the channel and
     * decode them on the receiver side.
     */
    TransmitResult transmit(const BitVec &bits);

    /**
     * Run raw symbol transactions and return the receiver's per-symbol
     * TP measurements (µs). @p with_noise enables the configured OS and
     * application noise sources.
     */
    std::vector<double> runSymbols(const std::vector<int> &symbols,
                                   bool with_noise);

    /** Lazily-computed noise-free calibration. */
    const Calibration &calibration();

    /**
     * Observer hooks around each internally-constructed Simulation:
     * onStart fires right after construction (attach a
     * detect::DetectorBank, extra Daq probes, ...), onFinish right
     * after the run completes, while the Simulation is still alive
     * (harvest detector metrics). Hooks must only *observe* — anything
     * that perturbs channel physics invalidates the calibration.
     * Install them after calibration() if the calibration run should
     * stay unobserved.
     */
    struct SimHooks {
        std::function<void(Simulation &)> onStart;
        std::function<void(Simulation &)> onFinish;
    };
    void setSimHooks(SimHooks hooks) { simHooks_ = std::move(hooks); }

    /** Bits per second the transaction pacing supports. */
    double ratedThroughputBps() const;

    const ChannelConfig &config() const { return cfg_; }
    const SymbolMap &symbolMap() const { return map_; }

  protected:
    ChannelConfig cfg_;
    SymbolMap map_;

    /**
     * Channel-specific plumbing: install sender/receiver programs for
     * the given symbol schedule onto @p sim, and return (after the run)
     * the per-symbol TP measurements.
     */
    virtual std::vector<double>
    runOnSimulation(Simulation &sim, const std::vector<int> &symbols,
                    bool with_noise) = 0;

    /** First epoch (TSC cycles) leaving time for rails to settle. */
    Cycles firstEpochTsc(const Simulation &sim) const;
    /** Epoch k in TSC cycles. */
    Cycles epochTsc(const Simulation &sim, std::size_t k) const;

    /** Chip config with the channel's pinned frequency applied. */
    ChipConfig chipConfigForRun() const;

    /** Attach configured noise sources targeting the given thread. */
    struct NoiseHandles {
        std::unique_ptr<NoiseInjector> injector;
        std::unique_ptr<PhiApp> app;
    };
    NoiseHandles attachNoise(Simulation &sim, CoreId rx_core, int rx_smt,
                             CoreId app_core, int app_smt,
                             Time until) const;

    /**
     * Schedule the configured per-transaction app bursts (no-op when
     * disabled) for @p n_symbols transactions on @p sim.
     */
    void scheduleBursts(Simulation &sim, std::size_t n_symbols) const;

  private:
    std::optional<Calibration> calibration_;
    SimHooks simHooks_;
    std::uint64_t runCounter_ = 0;
};

} // namespace ich

#endif // ICH_CHANNELS_CHANNEL_HH
