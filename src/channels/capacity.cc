#include "channels/capacity.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "channels/channel.hh"

namespace ich
{

double
CapacityEstimator::mutualInformationBits(const SymbolSamples &samples,
                                         int bins)
{
    if (bins < 2)
        throw std::invalid_argument("mutualInformation: bins < 2");

    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
    std::size_t total = 0;
    for (const auto &s : samples) {
        if (s.empty())
            throw std::invalid_argument(
                "mutualInformation: empty symbol sample set");
        total += s.size();
        for (double v : s) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    if (hi <= lo)
        return 0.0; // degenerate: Y carries no information
    // Widen slightly so the max lands inside the last bin.
    hi += (hi - lo) * 1e-9 + 1e-12;

    // Joint counts: P(x, y-bin), uniform over observed symbols.
    std::vector<std::vector<double>> joint(
        kNumSymbols, std::vector<double>(bins, 0.0));
    for (int x = 0; x < kNumSymbols; ++x) {
        double w = 1.0 / (kNumSymbols *
                          static_cast<double>(samples[x].size()));
        for (double v : samples[x]) {
            int b = static_cast<int>((v - lo) / (hi - lo) * bins);
            b = std::clamp(b, 0, bins - 1);
            joint[x][b] += w;
        }
    }

    // I(X;Y) = Σ p(x,y) log2( p(x,y) / (p(x)p(y)) ), p(x)=1/4.
    std::vector<double> py(bins, 0.0);
    for (int x = 0; x < kNumSymbols; ++x)
        for (int b = 0; b < bins; ++b)
            py[b] += joint[x][b];

    double mi = 0.0;
    double px = 1.0 / kNumSymbols;
    for (int x = 0; x < kNumSymbols; ++x) {
        for (int b = 0; b < bins; ++b) {
            double pxy = joint[x][b];
            if (pxy <= 0.0 || py[b] <= 0.0)
                continue;
            mi += pxy * std::log2(pxy / (px * py[b]));
        }
    }
    return std::max(0.0, mi);
}

double
CapacityEstimator::capacityBps(const SymbolSamples &samples, Time period,
                               int bins)
{
    return mutualInformationBits(samples, bins) / toSeconds(period);
}

SymbolSamples
CapacityEstimator::measure(CovertChannel &channel, int repeats,
                           bool with_noise)
{
    std::vector<int> schedule;
    for (int r = 0; r < repeats; ++r)
        for (int s = 0; s < kNumSymbols; ++s)
            schedule.push_back(s);
    std::vector<double> tp = channel.runSymbols(schedule, with_noise);

    SymbolSamples samples;
    for (std::size_t i = 0; i < schedule.size(); ++i)
        samples[schedule[i]].push_back(tp[i]);
    return samples;
}

} // namespace ich
