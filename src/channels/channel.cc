#include "channels/channel.hh"

#include <algorithm>
#include <stdexcept>

#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"

namespace ich
{

const char *
toString(ChannelKind kind)
{
    switch (kind) {
      case ChannelKind::kThread:
        return "IccThreadCovert";
      case ChannelKind::kSmt:
        return "IccSMTcovert";
      case ChannelKind::kCores:
        return "IccCoresCovert";
    }
    return "?";
}

std::unique_ptr<CovertChannel>
makeChannel(ChannelKind kind, const ChannelConfig &cfg)
{
    switch (kind) {
      case ChannelKind::kThread:
        return std::make_unique<IccThreadCovert>(cfg);
      case ChannelKind::kSmt:
        return std::make_unique<IccSMTcovert>(cfg);
      case ChannelKind::kCores:
        return std::make_unique<IccCoresCovert>(cfg);
    }
    throw std::invalid_argument("makeChannel: unknown ChannelKind");
}

CovertChannel::CovertChannel(ChannelConfig cfg)
    : cfg_(std::move(cfg)), map_(symbolMapFor(cfg_.chip))
{
}

ChipConfig
CovertChannel::chipConfigForRun() const
{
    ChipConfig chip = cfg_.chip;
    chip.pmu.governor.policy = GovernorPolicy::kUserspace;
    chip.pmu.governor.userspaceGhz = cfg_.freqGhz;
    return chip;
}

Cycles
CovertChannel::firstEpochTsc(const Simulation &sim) const
{
    (void)sim;
    // Leave 50 us for initial rail settling and program start skew.
    return static_cast<Cycles>(toMicroseconds(fromMicroseconds(50.0)) *
                               cfg_.chip.tscGhz * 1e3);
}

Cycles
CovertChannel::epochTsc(const Simulation &sim, std::size_t k) const
{
    double period_cycles =
        static_cast<double>(cfg_.period) * cfg_.chip.tscGhz / 1000.0;
    return firstEpochTsc(sim) +
           static_cast<Cycles>(period_cycles * static_cast<double>(k));
}

double
CovertChannel::ratedThroughputBps() const
{
    return kBitsPerSymbol / toSeconds(cfg_.period);
}

CovertChannel::NoiseHandles
CovertChannel::attachNoise(Simulation &sim, CoreId rx_core, int rx_smt,
                           CoreId app_core, int app_smt, Time until) const
{
    NoiseHandles handles;
    if (cfg_.noise.interruptRatePerSec > 0.0 ||
        cfg_.noise.contextSwitchRatePerSec > 0.0) {
        handles.injector = std::make_unique<NoiseInjector>(
            sim.chip(), sim.rng(), cfg_.noise, rx_core, rx_smt);
        handles.injector->start(until);
    }
    if (cfg_.app.phiRatePerSec > 0.0) {
        handles.app = std::make_unique<PhiApp>(sim.chip(), sim.rng(),
                                               cfg_.app, app_core,
                                               app_smt);
        handles.app->start(until);
    }
    return handles;
}

void
CovertChannel::scheduleBursts(Simulation &sim,
                              std::size_t n_symbols) const
{
    if (!cfg_.burst.enabled)
        return;
    Chip *chip = &sim.chip();
    // Two events per transmitted symbol — the per-trial hot path.
    for (std::size_t k = 0; k < n_symbols; ++k) {
        Time when = chip->tscToTime(epochTsc(sim, k)) + cfg_.burst.offset;
        sim.eq().scheduleChecked(when, [this, chip] {
            chip->phiStarted(cfg_.burst.core, cfg_.burst.smt,
                             cfg_.burst.cls);
            chip->eventQueue().scheduleInChecked(
                cfg_.burst.duration, [this, chip] {
                    chip->kernelEnded(cfg_.burst.core, cfg_.burst.smt,
                                      cfg_.burst.cls);
                });
        });
    }
}

std::vector<double>
CovertChannel::runSymbols(const std::vector<int> &symbols, bool with_noise)
{
    if (symbols.empty())
        return {};
    Simulation sim(chipConfigForRun(), cfg_.seed + (++runCounter_));
    if (simHooks_.onStart)
        simHooks_.onStart(sim);
    std::vector<double> tp = runOnSimulation(sim, symbols, with_noise);
    if (simHooks_.onFinish)
        simHooks_.onFinish(sim);
    return tp;
}

const Calibration &
CovertChannel::calibration()
{
    if (!calibration_) {
        std::vector<int> training;
        for (int r = 0; r < cfg_.calibrationRepeats; ++r)
            for (int s = 0; s < kNumSymbols; ++s)
                training.push_back(s);
        std::vector<double> tp = runSymbols(training, /*with_noise=*/false);
        calibration_ = Calibration::fit(training, tp);
    }
    return *calibration_;
}

TransmitResult
CovertChannel::transmit(const BitVec &bits)
{
    TransmitResult res;
    res.sentBits = bits;

    // Pack bits into 2-bit symbols (zero-padded).
    for (std::size_t i = 0; i < bits.size(); i += 2) {
        int b0 = bits[i];
        int b1 = i + 1 < bits.size() ? bits[i + 1] : 0;
        res.symbolsSent.push_back(packSymbol(b1, b0));
    }

    const Calibration &cal = calibration();
    res.tpUs = runSymbols(res.symbolsSent, /*with_noise=*/true);
    if (res.tpUs.size() != res.symbolsSent.size())
        throw std::logic_error("CovertChannel: TP count mismatch");

    for (double tp : res.tpUs)
        res.symbolsReceived.push_back(cal.decode(tp));

    for (std::size_t i = 0; i < res.symbolsReceived.size(); ++i) {
        auto rx = unpackSymbol(res.symbolsReceived[i]);
        res.receivedBits.push_back(static_cast<std::uint8_t>(rx[1]));
        if (2 * i + 1 < bits.size())
            res.receivedBits.push_back(static_cast<std::uint8_t>(rx[0]));
    }
    res.receivedBits.resize(bits.size());

    res.bitErrors = hammingDistance(res.sentBits, res.receivedBits);
    res.ber = bits.empty()
                  ? 0.0
                  : static_cast<double>(res.bitErrors) / bits.size();
    res.seconds = res.symbolsSent.size() * toSeconds(cfg_.period);
    res.throughputBps =
        res.seconds > 0.0 ? bits.size() / res.seconds : 0.0;
    return res;
}

} // namespace ich
