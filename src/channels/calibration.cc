#include "channels/calibration.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ich
{

Calibration
Calibration::fit(const std::vector<int> &symbols,
                 const std::vector<double> &tp_us)
{
    if (symbols.size() != tp_us.size() || symbols.empty())
        throw std::invalid_argument("Calibration::fit: bad training data");

    Calibration cal;
    std::array<double, kNumSymbols> sum{};
    std::array<double, kNumSymbols> sum_sq{};
    std::array<int, kNumSymbols> n{};
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        int s = symbols[i];
        if (s < 0 || s >= kNumSymbols)
            throw std::invalid_argument("Calibration::fit: bad symbol");
        sum[s] += tp_us[i];
        sum_sq[s] += tp_us[i] * tp_us[i];
        ++n[s];
    }
    for (int s = 0; s < kNumSymbols; ++s) {
        if (n[s] == 0)
            throw std::invalid_argument(
                "Calibration::fit: symbol missing from training set");
        cal.means_[s] = sum[s] / n[s];
        double var = sum_sq[s] / n[s] - cal.means_[s] * cal.means_[s];
        cal.stddevs_[s] = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    return cal;
}

int
Calibration::decode(double tp_us) const
{
    int best = 0;
    double best_dist = std::numeric_limits<double>::max();
    for (int s = 0; s < kNumSymbols; ++s) {
        double d = std::fabs(tp_us - means_[s]);
        if (d < best_dist) {
            best_dist = d;
            best = s;
        }
    }
    return best;
}

double
Calibration::minSeparationUs() const
{
    std::array<double, kNumSymbols> sorted = means_;
    std::sort(sorted.begin(), sorted.end());
    double min_gap = std::numeric_limits<double>::max();
    for (int s = 1; s < kNumSymbols; ++s)
        min_gap = std::min(min_gap, sorted[s] - sorted[s - 1]);
    return min_gap;
}

} // namespace ich
