/**
 * @file
 * Receiver calibration: learn the per-symbol throttling-period ranges
 * (the L1..L4 ranges of Figures 3 and 13) from a training sequence, then
 * decode by nearest mean. The ranges are well separated (> 2 K TSC cycles
 * in the paper's low-noise characterization), so nearest-mean is
 * equivalent to the threshold ranges of Figure 3.
 */

#ifndef ICH_CHANNELS_CALIBRATION_HH
#define ICH_CHANNELS_CALIBRATION_HH

#include <array>
#include <vector>

#include "channels/levels.hh"

namespace ich
{

/** Learned per-symbol TP statistics and the decode rule. */
class Calibration
{
  public:
    /**
     * Fit from training data: @p tp_us[i] was measured when symbol
     * @p symbols[i] was sent.
     */
    static Calibration fit(const std::vector<int> &symbols,
                           const std::vector<double> &tp_us);

    /** Decode one measured TP to the nearest symbol mean. */
    int decode(double tp_us) const;

    double meanUs(int symbol) const { return means_.at(symbol); }
    double stddevUs(int symbol) const { return stddevs_.at(symbol); }

    /**
     * Smallest gap between adjacent symbol means (µs). Zero-ish means
     * the channel carries no information (e.g. under secure-mode).
     */
    double minSeparationUs() const;

  private:
    std::array<double, kNumSymbols> means_{};
    std::array<double, kNumSymbols> stddevs_{};
};

} // namespace ich

#endif // ICH_CHANNELS_CALIBRATION_HH
