#include "channels/cores_channel.hh"

#include <stdexcept>

namespace ich
{

IccCoresCovert::IccCoresCovert(ChannelConfig cfg)
    : CovertChannel(std::move(cfg))
{
    if (cfg_.chip.numCores < 2)
        throw std::invalid_argument(
            "IccCoresCovert requires at least two cores");
}

std::vector<double>
IccCoresCovert::runOnSimulation(Simulation &sim,
                                const std::vector<int> &symbols,
                                bool with_noise)
{
    // Sender: core 0 / SMT 0; Receiver: core 1 / SMT 0. Both busy-wait
    // on rdtsc for their epoch (§4.3.3); the receiver starts a few
    // hundred cycles after the sender so its voltage request queues
    // behind the sender's on the SVID bus.
    double delay_cycles = static_cast<double>(cfg_.coresReceiverDelay) *
                          cfg_.chip.tscGhz / 1000.0;

    Program tx;
    Program rx;
    for (std::size_t k = 0; k < symbols.size(); ++k) {
        Cycles epoch = epochTsc(sim, k);
        tx.waitUntilTsc(epoch);
        tx.loop(map_.symbolClasses.at(symbols[k]), cfg_.senderIterations);

        rx.waitUntilTsc(epoch + static_cast<Cycles>(delay_cycles));
        rx.mark(static_cast<int>(2 * k));
        rx.loop(map_.coresProbe, cfg_.probeIterations);
        rx.mark(static_cast<int>(2 * k + 1));
    }

    HwThread &tx_thr = sim.chip().core(0).thread(0);
    HwThread &rx_thr = sim.chip().core(1).thread(0);
    tx_thr.setProgram(std::move(tx));
    rx_thr.setProgram(std::move(rx));

    Time horizon = fromMicroseconds(
        toMicroseconds(cfg_.period) * (symbols.size() + 2));
    NoiseHandles noise;
    if (with_noise) {
        // App noise shares the sender's core via its SMT sibling when
        // available, else time-multiplexes on the receiver core.
        int app_core = cfg_.chip.core.smtThreads > 1 ? 0 : 1;
        int app_smt = cfg_.chip.core.smtThreads > 1 ? 1 : 0;
        noise = attachNoise(sim, 1, 0, app_core, app_smt, horizon);
    }
    tx_thr.start();
    rx_thr.start();
    sim.run(horizon);

    const auto &recs = rx_thr.records();
    if (recs.size() != 2 * symbols.size())
        throw std::logic_error("IccCoresCovert: missing records");
    std::vector<double> tp_us;
    tp_us.reserve(symbols.size());
    for (std::size_t k = 0; k < symbols.size(); ++k)
        tp_us.push_back(
            toMicroseconds(recs[2 * k + 1].time - recs[2 * k].time));
    return tp_us;
}

} // namespace ich
