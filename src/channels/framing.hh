/**
 * @file
 * Reliable framed transfer over a covert channel (paper §6.3).
 *
 * The paper lists three noise-handling strategies attackers use:
 * repeated transmission/averaging, error detection & correction codes,
 * and transmitting only during low-noise periods. FramedLink packages
 * them into a protocol: payloads are split into frames
 * (header + payload + CRC-16), protected by a selectable FEC scheme, and
 * retransmitted until the CRC verifies or the retry budget is exhausted.
 */

#ifndef ICH_CHANNELS_FRAMING_HH
#define ICH_CHANNELS_FRAMING_HH

#include <cstdint>

#include "channels/channel.hh"
#include "channels/coding.hh"

namespace ich
{

/** Forward error correction applied to each frame. */
enum class FecScheme { kNone, kRepetition3, kRepetition5, kHamming74 };

const char *toString(FecScheme scheme);

/** Framed-link configuration. */
struct FramingConfig {
    FecScheme fec = FecScheme::kHamming74;
    /** Payload bits per frame (before FEC). */
    std::size_t frameBits = 64;
    /** Maximum transmissions per frame (1 = no retry). */
    int maxAttempts = 4;
    /**
     * Block-interleaver depth (1 = off). The channel's symbol errors
     * flip *adjacent bit pairs*; interleaving spreads them across
     * Hamming blocks so single-error correction applies.
     */
    int interleaveDepth = 1;
};

/** Result of a framed transfer. */
struct FramedResult {
    BitVec payload;           ///< decoded payload (empty on failure)
    bool success = false;     ///< all frames CRC-verified
    int framesSent = 0;       ///< total frame transmissions (w/ retries)
    int framesDelivered = 0;  ///< frames accepted by the receiver
    std::size_t channelBits = 0; ///< raw bits pushed through the channel
    double seconds = 0.0;        ///< simulated channel time consumed
    /** Payload bits per second including coding + retry overhead. */
    double goodputBps = 0.0;
    double rawBerObserved = 0.0; ///< mean BER across transmissions
};

/**
 * Reliable transfer layer over any CovertChannel.
 */
class FramedLink
{
  public:
    FramedLink(CovertChannel &channel, const FramingConfig &cfg);

    /** Transfer @p payload; returns the receiver-side reconstruction. */
    FramedResult transfer(const BitVec &payload);

    /** Coding expansion factor of the configured FEC. */
    double codeRate() const;

    const FramingConfig &config() const { return cfg_; }

  private:
    CovertChannel &channel_;
    FramingConfig cfg_;

    BitVec encode(const BitVec &bits) const;
    BitVec decode(const BitVec &coded) const;
};

} // namespace ich

#endif // ICH_CHANNELS_FRAMING_HH
