#include "channels/spy.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ich
{

namespace
{
constexpr double kWindowUs = 60.0;
constexpr int kRxUnroll = 20;
} // namespace

InstructionSpy::InstructionSpy(ChannelConfig cfg, ChannelKind vantage)
    : cfg_(std::move(cfg)), vantage_(vantage)
{
    if (vantage_ == ChannelKind::kThread)
        throw std::invalid_argument(
            "InstructionSpy: vantage must be kSmt or kCores");
    if (vantage_ == ChannelKind::kSmt && cfg_.chip.core.smtThreads < 2)
        throw std::invalid_argument("InstructionSpy: chip has no SMT");
    if (vantage_ == ChannelKind::kCores && cfg_.chip.numCores < 2)
        throw std::invalid_argument("InstructionSpy: chip has one core");
}

std::vector<double>
InstructionSpy::measure(const std::vector<InstClass> &seq)
{
    ChipConfig chip = cfg_.chip;
    chip.pmu.governor.policy = GovernorPolicy::kUserspace;
    chip.pmu.governor.userspaceGhz = cfg_.freqGhz;
    Simulation sim(chip, cfg_.seed + (++runCounter_));
    SymbolMap map = symbolMapFor(chip);

    double period_cycles =
        static_cast<double>(cfg_.period) * chip.tscGhz / 1000.0;
    Cycles first = static_cast<Cycles>(50.0 * chip.tscGhz * 1e3);
    auto epoch = [&](std::size_t k) {
        return first + static_cast<Cycles>(period_cycles * k);
    };

    // Victim (unwitting "sender"): one kernel per epoch.
    Program victim;
    for (std::size_t k = 0; k < seq.size(); ++k) {
        victim.waitUntilTsc(epoch(k));
        victim.loop(seq[k], cfg_.senderIterations);
    }

    HwThread &victim_thr = sim.chip().core(0).thread(0);
    victim_thr.setProgram(std::move(victim));

    std::vector<double> tp_us(seq.size(), 0.0);
    Time horizon = fromMicroseconds(toMicroseconds(cfg_.period) *
                                    (seq.size() + 2));

    if (vantage_ == ChannelKind::kSmt) {
        double iter_cycles =
            makeKernel(map.smtProbe, 1, kRxUnroll).cyclesPerIteration();
        double iter_us = iter_cycles * cyclePicos(cfg_.freqGhz) * 1e-6;
        double total_us =
            toMicroseconds(cfg_.period) * (seq.size() + 1) + 100.0;
        auto iters =
            static_cast<std::uint64_t>(std::ceil(total_us / iter_us));
        Program rx;
        rx.loopChunked(map.smtProbe, iters, cfg_.smtChunkIterations, 0,
                       kRxUnroll);
        HwThread &rx_thr = sim.chip().core(0).thread(1);
        rx_thr.setProgram(std::move(rx));
        rx_thr.start();
        victim_thr.start();
        sim.run(horizon);

        double nominal = cfg_.smtChunkIterations * iter_us * 1.001;
        double first_us = toMicroseconds(sim.chip().tscToTime(epoch(0)));
        double period_us = toMicroseconds(cfg_.period);
        Time prev = 0;
        bool have_prev = false;
        for (const auto &rec : rx_thr.records()) {
            if (have_prev) {
                double excess =
                    toMicroseconds(rec.time - prev) - nominal;
                if (excess > 0.0) {
                    double rel =
                        toMicroseconds(prev) - first_us + 2.0;
                    if (rel >= 0.0) {
                        auto k = static_cast<std::size_t>(rel /
                                                          period_us);
                        double into = rel - k * period_us;
                        if (k < seq.size() && into < kWindowUs + 2.0)
                            tp_us[k] += excess;
                    }
                }
            }
            prev = rec.time;
            have_prev = true;
        }
    } else {
        double delay_cycles =
            static_cast<double>(cfg_.coresReceiverDelay) * chip.tscGhz /
            1000.0;
        Program rx;
        for (std::size_t k = 0; k < seq.size(); ++k) {
            rx.waitUntilTsc(epoch(k) +
                            static_cast<Cycles>(delay_cycles));
            rx.mark(static_cast<int>(2 * k));
            rx.loop(map.coresProbe, cfg_.probeIterations);
            rx.mark(static_cast<int>(2 * k + 1));
        }
        HwThread &rx_thr = sim.chip().core(1).thread(0);
        rx_thr.setProgram(std::move(rx));
        victim_thr.start();
        rx_thr.start();
        sim.run(horizon);
        const auto &recs = rx_thr.records();
        if (recs.size() != 2 * seq.size())
            throw std::logic_error("InstructionSpy: missing records");
        for (std::size_t k = 0; k < seq.size(); ++k)
            tp_us[k] = toMicroseconds(recs[2 * k + 1].time -
                                      recs[2 * k].time);
    }
    return tp_us;
}

void
InstructionSpy::calibrate()
{
    // One representative class per guardband level, several repeats.
    std::vector<InstClass> reps;
    std::vector<int> levels;
    for (auto cls : kAllInstClasses) {
        int lvl = traits(cls).guardbandLevel;
        if (static_cast<std::size_t>(lvl) >= reps.size()) {
            reps.push_back(cls);
            levels.push_back(lvl);
        }
    }
    constexpr int kRepeats = 6;
    std::vector<InstClass> seq;
    for (int r = 0; r < kRepeats; ++r)
        for (auto cls : reps)
            seq.push_back(cls);
    std::vector<double> tp = measure(seq);

    levelMeansUs_.assign(numGuardbandLevels(), 0.0);
    std::vector<int> counts(numGuardbandLevels(), 0);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        int lvl = traits(seq[i]).guardbandLevel;
        levelMeansUs_[lvl] += tp[i];
        ++counts[lvl];
    }
    for (std::size_t l = 0; l < levelMeansUs_.size(); ++l)
        if (counts[l] > 0)
            levelMeansUs_[l] /= counts[l];
    calibrated_ = true;
}

SpyResult
InstructionSpy::observe(const std::vector<InstClass> &victim_sequence)
{
    if (!calibrated_)
        calibrate();

    SpyResult res;
    res.victimClasses = victim_sequence;
    std::vector<double> tp = measure(victim_sequence);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < victim_sequence.size(); ++i) {
        int actual = traits(victim_sequence[i]).guardbandLevel;
        int best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t l = 0; l < levelMeansUs_.size(); ++l) {
            double d = std::fabs(tp[i] - levelMeansUs_[l]);
            if (d < best_d) {
                best_d = d;
                best = static_cast<int>(l);
            }
        }
        res.actualLevels.push_back(actual);
        res.inferredLevels.push_back(best);
        if (best == actual)
            ++correct;
    }
    res.levelAccuracy = victim_sequence.empty()
                            ? 0.0
                            : static_cast<double>(correct) /
                                  victim_sequence.size();
    return res;
}

} // namespace ich
