/**
 * @file
 * Symbol (2-bit) to instruction-class mapping of Figure 3.
 *
 * The sender encodes two secret bits per transaction as the computational
 * intensity of the PHI loop it executes:
 *   00 → L4 (lowest intensity) ... 11 → L1 (512b_Heavy, highest).
 * The receiver executes a fixed probe class whose throttling period
 * reveals the sender's level. Probe class depends on where the receiver
 * runs (same thread / SMT sibling / other core), also per Figure 3.
 *
 * On parts without AVX-512 (Haswell, Coffee Lake) the map shifts down one
 * width so four distinct guardband levels remain available.
 */

#ifndef ICH_CHANNELS_LEVELS_HH
#define ICH_CHANNELS_LEVELS_HH

#include <array>

#include "chip/chip.hh"
#include "isa/inst_class.hh"

namespace ich
{

/** Bits conveyed per covert transaction. */
constexpr int kBitsPerSymbol = 2;
constexpr int kNumSymbols = 4;

/** Class assignment for the four symbols plus the receiver probes. */
struct SymbolMap {
    /** symbolClasses[s] is the sender loop class for symbol s (0..3). */
    std::array<InstClass, kNumSymbols> symbolClasses;
    InstClass threadProbe; ///< same-hardware-thread receiver loop
    InstClass smtProbe;    ///< co-located SMT receiver loop
    InstClass coresProbe;  ///< cross-core receiver loop
};

/** Symbol map suited to @p cfg's ISA (AVX-512 or not). */
SymbolMap symbolMapFor(const ChipConfig &cfg);

/** Pack a bit pair (b1 = bits[i+1], b0 = bits[i]) into a symbol value. */
int packSymbol(int b1, int b0);

/** Unpack symbol into (b1, b0). */
std::array<int, 2> unpackSymbol(int symbol);

} // namespace ich

#endif // ICH_CHANNELS_LEVELS_HH
