/**
 * @file
 * IccCoresCovert (paper §4.3): covert channel between threads on two
 * different physical cores. Exploits Multi-Throttling-Cores: sender and
 * receiver synchronize via the wall clock (rdtsc) and execute PHIs within
 * a few hundred cycles of each other; because the central PMU serializes
 * voltage transitions on the shared rail, the receiver's 128b_Heavy probe
 * stays throttled until the *sender's* transition (length ∝ the sender's
 * 2-bit symbol) and its own both complete.
 */

#ifndef ICH_CHANNELS_CORES_CHANNEL_HH
#define ICH_CHANNELS_CORES_CHANNEL_HH

#include "channels/channel.hh"

namespace ich
{

/** Cross-core covert channel. */
class IccCoresCovert : public CovertChannel
{
  public:
    explicit IccCoresCovert(ChannelConfig cfg);

    ChannelKind kind() const override { return ChannelKind::kCores; }

  protected:
    std::vector<double>
    runOnSimulation(Simulation &sim, const std::vector<int> &symbols,
                    bool with_noise) override;
};

} // namespace ich

#endif // ICH_CHANNELS_CORES_CHANNEL_HH
