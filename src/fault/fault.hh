/**
 * @file
 * Deterministic, seeded fault injection for the durability stack.
 *
 * A FaultPlan scripts faults by *site* and *occurrence count*: "on the
 * 3rd write at site chunk.write, tear the frame at a seeded byte and
 * SIGKILL". Plans are parsed from a compact spec string so they travel
 * through env vars and CLI flags unchanged — which is what makes a
 * failing torture cycle reproducible with one copy-pasteable line.
 *
 *   spec   := [seed=S;] rule (';' rule)*
 *   rule   := site=SITE:op=OP:occ=N:fault=KIND[:arg=A][:path=SUB]
 *
 *   SITE   injection site tag ("chunk.write", "archive.write",
 *          "shard.post-sync", ... or "*")
 *   OP     syscall class at the site: open|read|write|fsync|truncate|
 *          rename|point ("point" = a process-fault site) or "*"
 *   N      1-based Nth matching call fires the fault once; 0 = every
 *          matching call
 *   KIND   crash | hang | slow | eintr | enospc | eio | short | torn |
 *          bitflip | fsync-drop
 *   A      kind-specific argument (bytes for short/torn, bit index for
 *          bitflip, milliseconds for slow); omitted = derived from the
 *          plan seed via splitmix64, so unspecified faults are still
 *          deterministic
 *   SUB    only fire when the target path contains SUB
 *
 * The injection points are the io::FileOps wrappers (io/fileops.hh) —
 * routed through by state/chunkio and state/archive, and therefore by
 * everything layered on them (exp/colstore, exp/resume, shard scratch)
 * — plus explicit procPoint() calls at named shard-protocol points.
 * With no plan armed every wrapper is a single predicted-not-taken
 * branch in front of the real syscall: the seam is free (BENCH floors
 * are unaffected).
 *
 * Counting mode (ICH_FAULT_COUNT_FILE) records how many times each
 * (site, op) pair is reached during a fault-free run and dumps the
 * totals at process exit — the torture harness uses it to enumerate
 * every injectable crash point of a workload before attacking them.
 */

#ifndef ICH_FAULT_FAULT_HH
#define ICH_FAULT_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ich
{
namespace fault
{

/** No explicit arg in the rule: derive one from the plan seed. */
constexpr std::uint64_t kNoArg = ~0ull;

enum class Kind : int {
    kNone = 0,
    kCrash,     ///< raise(SIGKILL) before the operation
    kHang,      ///< never return (the stall watchdog's prey)
    kSlow,      ///< sleep arg ms (default 200), then proceed normally
    kEintr,     ///< fail with errno = EINTR (must be retried)
    kEnospc,    ///< fail with errno = ENOSPC (must throw loudly)
    kEio,       ///< fail with errno = EIO (must throw loudly)
    kShort,     ///< write only arg bytes (default seeded, >= 1)
    kTorn,      ///< write arg bytes of the buffer, then SIGKILL
    kBitflip,   ///< flip one seeded bit of the buffer, write it all
    kFsyncDrop, ///< report fsync success without syncing
};

const char *kindName(Kind k);

struct Rule {
    std::string site = "*";
    std::string op = "*";
    std::string pathSub; ///< empty: any path
    std::uint64_t occ = 1; ///< 1-based Nth matching call; 0 = every
    Kind kind = Kind::kNone;
    std::uint64_t arg = kNoArg;
};

struct Plan {
    std::uint64_t seed = 1;
    std::vector<Rule> rules;
    std::string spec; ///< the string this plan was parsed from
};

/** Parse @p spec (grammar above). Throws std::invalid_argument. */
Plan parsePlan(const std::string &spec);

/** Arm @p plan process-wide (replacing any armed plan). */
void arm(Plan plan);

/** Disarm: every wrapper returns to the zero-cost pass-through. */
void disarm();

/** Spec string of the armed plan (empty when disarmed). */
std::string armedSpec();

/**
 * Arm from the environment: ICH_FAULT_PLAN holds a plan spec,
 * ICH_FAULT_COUNT_FILE enables counting mode (totals are dumped to the
 * named file at process exit). Harness main()s call this once so any
 * harness binary can be a torture victim. No-op when neither is set.
 */
void armFromEnv();

/** True when a plan is armed or counting mode is on (seam hot path). */
extern std::atomic<bool> gActive;
inline bool active()
{
    return gActive.load(std::memory_order_relaxed);
}

/** What a wrapper should do at one injection point. */
struct Decision {
    Kind kind = Kind::kNone;
    std::uint64_t arg = kNoArg; ///< rule arg (kNoArg: use draw)
    std::uint64_t draw = 0;     ///< seeded 64-bit value for defaults
};

/**
 * Record one (site, op) call and check the armed plan. Returns true —
 * filling @p out — when a rule fires here. Thread-safe; occurrence
 * counters are global across threads.
 */
bool decide(const char *site, const char *op, const char *path,
            Decision &out);

/**
 * Process-fault hook for named protocol points (op "point"). Crash,
 * hang and slow execute internally; a torn rule returns true with the
 * seeded tear offset in @p torn_arg so the caller can write a partial
 * frame before dying (raise SIGKILL after the partial write yourself).
 */
bool procPoint(const char *site, std::uint64_t *torn_arg = nullptr);

} // namespace fault
} // namespace ich

#endif // ICH_FAULT_FAULT_HH
