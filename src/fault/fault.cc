#include "fault/fault.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <csignal>

namespace ich
{
namespace fault
{

std::atomic<bool> gActive{false};

namespace
{

std::mutex gMu;
Plan gPlan;
bool gArmed = false;

// Matching-call counters, keyed per rule index (occurrence tracking)
// and per (site, op) pair (counting mode). Both live outside the Plan
// so re-arming the same plan restarts the occurrence clock.
std::vector<std::uint64_t> gHits;
std::vector<bool> gFired;
bool gCounting = false;
std::string gCountFile;
std::map<std::string, std::uint64_t> gCounts;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const char *s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (; *s; ++s) {
        h ^= static_cast<std::uint8_t>(*s);
        h *= 1099511628211ull;
    }
    return h;
}

bool
tagMatches(const std::string &pat, const char *value)
{
    return pat == "*" || pat == value;
}

Kind
parseKind(const std::string &name)
{
    if (name == "crash") return Kind::kCrash;
    if (name == "hang") return Kind::kHang;
    if (name == "slow") return Kind::kSlow;
    if (name == "eintr") return Kind::kEintr;
    if (name == "enospc") return Kind::kEnospc;
    if (name == "eio") return Kind::kEio;
    if (name == "short") return Kind::kShort;
    if (name == "torn") return Kind::kTorn;
    if (name == "bitflip") return Kind::kBitflip;
    if (name == "fsync-drop") return Kind::kFsyncDrop;
    throw std::invalid_argument("fault plan: unknown fault kind '" +
                                name + "'");
}

std::uint64_t
parseNum(const std::string &field, const std::string &text)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument("fault plan: " + field +
                                    ": expected a non-negative "
                                    "integer, got '" +
                                    text + "'");
    return std::stoull(text);
}

void
dumpCountsAtExit()
{
    std::lock_guard<std::mutex> lock(gMu);
    if (!gCounting || gCountFile.empty())
        return;
    std::FILE *f = std::fopen(gCountFile.c_str(), "w");
    if (!f)
        return; // counting is diagnostics; never take the victim down
    for (const auto &kv : gCounts)
        std::fprintf(f, "%s %llu\n", kv.first.c_str(),
                     static_cast<unsigned long long>(kv.second));
    std::fclose(f);
}

void
refreshActive()
{
    gActive.store(gArmed || gCounting, std::memory_order_relaxed);
}

} // namespace

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::kNone: return "none";
      case Kind::kCrash: return "crash";
      case Kind::kHang: return "hang";
      case Kind::kSlow: return "slow";
      case Kind::kEintr: return "eintr";
      case Kind::kEnospc: return "enospc";
      case Kind::kEio: return "eio";
      case Kind::kShort: return "short";
      case Kind::kTorn: return "torn";
      case Kind::kBitflip: return "bitflip";
      case Kind::kFsyncDrop: return "fsync-drop";
    }
    return "none";
}

Plan
parsePlan(const std::string &spec)
{
    Plan plan;
    plan.spec = spec;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string seg = spec.substr(pos, end - pos);
        pos = end + 1;
        if (seg.empty())
            continue;
        if (seg.compare(0, 5, "seed=") == 0) {
            plan.seed = parseNum("seed", seg.substr(5));
            continue;
        }
        Rule rule;
        bool have_site = false, have_fault = false;
        std::size_t fpos = 0;
        while (fpos <= seg.size()) {
            std::size_t fend = seg.find(':', fpos);
            if (fend == std::string::npos)
                fend = seg.size();
            std::string field = seg.substr(fpos, fend - fpos);
            fpos = fend + 1;
            if (field.empty())
                continue;
            std::size_t eq = field.find('=');
            if (eq == std::string::npos)
                throw std::invalid_argument(
                    "fault plan: malformed field '" + field +
                    "' (want key=value)");
            std::string key = field.substr(0, eq);
            std::string val = field.substr(eq + 1);
            if (key == "site") {
                rule.site = val;
                have_site = true;
            } else if (key == "op") {
                rule.op = val;
            } else if (key == "occ") {
                rule.occ = parseNum("occ", val);
            } else if (key == "fault") {
                rule.kind = parseKind(val);
                have_fault = true;
            } else if (key == "arg") {
                rule.arg = parseNum("arg", val);
            } else if (key == "path") {
                rule.pathSub = val;
            } else {
                throw std::invalid_argument(
                    "fault plan: unknown field '" + key + "'");
            }
        }
        if (!have_site || !have_fault)
            throw std::invalid_argument(
                "fault plan: rule '" + seg +
                "' needs at least site= and fault=");
        plan.rules.push_back(std::move(rule));
    }
    if (plan.rules.empty())
        throw std::invalid_argument(
            "fault plan: no rules in '" + spec + "'");
    return plan;
}

void
arm(Plan plan)
{
    std::lock_guard<std::mutex> lock(gMu);
    gPlan = std::move(plan);
    gHits.assign(gPlan.rules.size(), 0);
    gFired.assign(gPlan.rules.size(), false);
    gArmed = true;
    refreshActive();
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(gMu);
    gPlan = Plan{};
    gHits.clear();
    gFired.clear();
    gArmed = false;
    refreshActive();
}

std::string
armedSpec()
{
    std::lock_guard<std::mutex> lock(gMu);
    return gArmed ? gPlan.spec : std::string();
}

void
armFromEnv()
{
    if (const char *count = std::getenv("ICH_FAULT_COUNT_FILE")) {
        std::lock_guard<std::mutex> lock(gMu);
        if (!gCounting) {
            gCounting = true;
            gCountFile = count;
            std::atexit(dumpCountsAtExit);
        }
        refreshActive();
    }
    if (const char *spec = std::getenv("ICH_FAULT_PLAN"))
        arm(parsePlan(spec));
}

bool
decide(const char *site, const char *op, const char *path,
       Decision &out)
{
    std::lock_guard<std::mutex> lock(gMu);
    if (gCounting)
        ++gCounts[std::string(site) + " " + op];
    if (!gArmed)
        return false;
    for (std::size_t i = 0; i < gPlan.rules.size(); ++i) {
        const Rule &r = gPlan.rules[i];
        if (!tagMatches(r.site, site) || !tagMatches(r.op, op))
            continue;
        if (!r.pathSub.empty() &&
            (path == nullptr ||
             std::string(path).find(r.pathSub) == std::string::npos))
            continue;
        std::uint64_t hit = ++gHits[i];
        if (gFired[i])
            continue;
        if (r.occ != 0 && hit != r.occ)
            continue;
        if (r.occ != 0)
            gFired[i] = true;
        out.kind = r.kind;
        out.arg = r.arg;
        out.draw = splitmix64(gPlan.seed ^ fnv1a(site) ^
                              (fnv1a(op) << 1) ^ (hit * 0x9E37ull));
        return true;
    }
    return false;
}

bool
procPoint(const char *site, std::uint64_t *torn_arg)
{
    if (!active())
        return false;
    Decision d;
    if (!decide(site, "point", nullptr, d))
        return false;
    switch (d.kind) {
      case Kind::kCrash:
        std::raise(SIGKILL);
        return false; // unreachable
      case Kind::kHang:
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(1));
      case Kind::kSlow: {
        std::uint64_t ms = d.arg != kNoArg ? d.arg : 200;
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        return false;
      }
      case Kind::kTorn:
        if (torn_arg)
            *torn_arg = d.arg != kNoArg ? d.arg : d.draw;
        return true;
      default:
        // File-op kinds make no sense at a process point; ignore so a
        // wildcard rule aimed at file ops doesn't trip protocol sites.
        return false;
    }
}

} // namespace fault
} // namespace ich
