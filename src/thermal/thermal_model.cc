#include "thermal/thermal_model.hh"

#include <cmath>

#include "state/snapshot.hh"

namespace ich
{

ThermalModel::ThermalModel(const ThermalConfig &cfg)
    : cfg_(cfg), tempC_(cfg.ambientCelsius)
{
}

double
ThermalModel::update(Time now, double watts)
{
    if (now > lastUpdate_) {
        double dt = toSeconds(now - lastUpdate_);
        double tau = cfg_.rThermal * cfg_.cThermal;
        double t_inf = cfg_.ambientCelsius + watts * cfg_.rThermal;
        tempC_ = t_inf + (tempC_ - t_inf) * std::exp(-dt / tau);
        lastUpdate_ = now;
    }
    return tempC_;
}

void
ThermalModel::saveState(state::SaveContext &ctx) const
{
    ctx.w().putF64(tempC_);
    ctx.w().putU64(lastUpdate_);
}

void
ThermalModel::restoreState(state::SectionReader &r)
{
    tempC_ = r.getF64();
    lastUpdate_ = r.getU64();
}

} // namespace ich
