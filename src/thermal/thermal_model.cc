#include "thermal/thermal_model.hh"

#include <cmath>

namespace ich
{

ThermalModel::ThermalModel(const ThermalConfig &cfg)
    : cfg_(cfg), tempC_(cfg.ambientCelsius)
{
}

double
ThermalModel::update(Time now, double watts)
{
    if (now > lastUpdate_) {
        double dt = toSeconds(now - lastUpdate_);
        double tau = cfg_.rThermal * cfg_.cThermal;
        double t_inf = cfg_.ambientCelsius + watts * cfg_.rThermal;
        tempC_ = t_inf + (tempC_ - t_inf) * std::exp(-dt / tau);
        lastUpdate_ = now;
    }
    return tempC_;
}

} // namespace ich
