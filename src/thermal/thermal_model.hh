/**
 * @file
 * Lumped-RC junction-temperature model.
 *
 * dT/dt = (P − (T − Tamb)/Rth) / Cth, integrated in closed form per
 * constant-power segment: T(t) = T∞ + (T0 − T∞)·exp(−t/(Rth·Cth)) with
 * T∞ = Tamb + P·Rth.
 *
 * The paper uses temperature only to *rule out* thermal causes (Key
 * Conclusion 2, Fig. 7b: Tj stays near 60 °C, far below Tjmax = 100 °C,
 * while current limits throttle frequency within tens of microseconds).
 * The multi-second RC time constant here reproduces exactly that
 * separation of timescales.
 */

#ifndef ICH_THERMAL_THERMAL_MODEL_HH
#define ICH_THERMAL_THERMAL_MODEL_HH

#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/** Thermal configuration. */
struct ThermalConfig {
    double ambientCelsius = 35.0;
    double tjMaxCelsius = 100.0;
    /** Junction-to-ambient thermal resistance, °C/W. */
    double rThermal = 1.4;
    /** Thermal capacitance, J/°C (sets the multi-second time constant). */
    double cThermal = 2.0;
    /**
     * Periodic Tj update interval, driven by the chip Ticker. 0 (the
     * default) keeps the model purely lazy: closed-form integration on
     * read, assuming the power seen at the read was constant since the
     * previous one. A nonzero interval bounds that piecewise-constant
     * assumption for workloads that sample temperature sparsely.
     */
    Time sampleInterval = 0;
};

/** One thermal node driven by piecewise-constant power. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalConfig &cfg);

    /**
     * Advance to @p now assuming @p watts was dissipated since the last
     * call, then return the junction temperature.
     */
    double update(Time now, double watts);

    /** Last computed junction temperature (no time advance). */
    double celsius() const { return tempC_; }

    double tjMax() const { return cfg_.tjMaxCelsius; }
    bool overTjMax() const { return tempC_ > cfg_.tjMaxCelsius; }

    /**
     * Fast-forward query: next periodic Tj sample strictly after
     * @p now (the Ticker fires it at k·sampleInterval), or kTimeNever
     * for a purely lazy model (sampleInterval 0). Between samples the
     * node is closed-form — update() integrates the RC decay exactly.
     */
    Time
    nextSampleAfter(Time now) const
    {
        if (cfg_.sampleInterval == 0)
            return kTimeNever;
        return (now / cfg_.sampleInterval + 1) * cfg_.sampleInterval;
    }

    const ThermalConfig &config() const { return cfg_; }

    /** Snapshot hooks (temperature + integration mark). */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    ThermalConfig cfg_;
    double tempC_;
    Time lastUpdate_ = 0;
};

} // namespace ich

#endif // ICH_THERMAL_THERMAL_MODEL_HH
