/**
 * @file
 * io::FileOps — the syscall seam the durability layers route through.
 *
 * Each wrapper takes a *site* tag (and the target path, when it isn't
 * implied by the fd) naming the durability context of the call:
 *
 *   chunk.write    ChunkFileWriter (create/append/fsync/truncate)
 *   chunk.read     ChunkFileScanner (open/pread)
 *   archive.write  atomicWriteFile (open/write/fsync/rename)
 *   archive.read   readFile (open/read)
 *
 * With no fault plan armed (fault::active() false — the overwhelmingly
 * common case) every wrapper is one relaxed atomic load and a
 * predicted-not-taken branch in front of the real syscall: free on the
 * BENCH floors. With a plan armed, the wrapper consults fault::decide()
 * and emulates the scripted failure — returning -1 with the scripted
 * errno, writing fewer bytes than asked, corrupting a bit, skipping an
 * fsync, or killing the process mid-write (a torn write).
 *
 * The wrappers intentionally mirror the POSIX signatures (same return
 * and errno conventions), so call sites stay readable and the fault
 * behaviors exercise exactly the error paths real syscalls can take.
 */

#ifndef ICH_IO_FILEOPS_HH
#define ICH_IO_FILEOPS_HH

#include <cstddef>
#include <sys/types.h>

namespace ich
{
namespace io
{

int open(const char *path, int flags, mode_t mode, const char *site);
ssize_t read(int fd, void *buf, std::size_t count, const char *site,
             const char *path);
ssize_t pread(int fd, void *buf, std::size_t count, off_t offset,
              const char *site, const char *path);
ssize_t write(int fd, const void *buf, std::size_t count,
              const char *site, const char *path);
int fsync(int fd, const char *site, const char *path);
int ftruncate(int fd, off_t length, const char *site, const char *path);
int rename(const char *from, const char *to, const char *site);

} // namespace io
} // namespace ich

#endif // ICH_IO_FILEOPS_HH
