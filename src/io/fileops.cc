#include "io/fileops.hh"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include "fault/fault.hh"

namespace ich
{
namespace io
{

namespace
{

using fault::Decision;
using fault::Kind;
using fault::kNoArg;

/** Fail with @p err the way the real syscall would. */
int
failWith(int err)
{
    errno = err;
    return -1;
}

[[noreturn]] void
die()
{
    // SIGKILL, not abort(): the victim must get no chance to flush or
    // unwind — exactly what a power cut / OOM kill looks like from the
    // recovering process's point of view.
    std::raise(SIGKILL);
    for (;;) {
    }
}

} // namespace

int
open(const char *path, int flags, mode_t mode, const char *site)
{
    if (!fault::active())
        return ::open(path, flags, mode);
    Decision d;
    if (!fault::decide(site, "open", path, d))
        return ::open(path, flags, mode);
    switch (d.kind) {
      case Kind::kCrash: die();
      case Kind::kEnospc: return failWith(ENOSPC);
      case Kind::kEio: return failWith(EIO);
      case Kind::kEintr: return failWith(EINTR);
      default: return ::open(path, flags, mode);
    }
}

ssize_t
read(int fd, void *buf, std::size_t count, const char *site,
     const char *path)
{
    if (!fault::active())
        return ::read(fd, buf, count);
    Decision d;
    if (!fault::decide(site, "read", path, d))
        return ::read(fd, buf, count);
    switch (d.kind) {
      case Kind::kCrash: die();
      case Kind::kEio: return failWith(EIO);
      case Kind::kEintr: return failWith(EINTR);
      default: return ::read(fd, buf, count);
    }
}

ssize_t
pread(int fd, void *buf, std::size_t count, off_t offset,
      const char *site, const char *path)
{
    if (!fault::active())
        return ::pread(fd, buf, count, offset);
    Decision d;
    if (!fault::decide(site, "read", path, d))
        return ::pread(fd, buf, count, offset);
    switch (d.kind) {
      case Kind::kCrash: die();
      case Kind::kEio: return failWith(EIO);
      case Kind::kEintr: return failWith(EINTR);
      default: return ::pread(fd, buf, count, offset);
    }
}

ssize_t
write(int fd, const void *buf, std::size_t count, const char *site,
      const char *path)
{
    if (!fault::active())
        return ::write(fd, buf, count);
    Decision d;
    if (!fault::decide(site, "write", path, d))
        return ::write(fd, buf, count);
    switch (d.kind) {
      case Kind::kCrash:
        die();
      case Kind::kEintr:
        return failWith(EINTR);
      case Kind::kEnospc:
        return failWith(ENOSPC);
      case Kind::kEio:
        return failWith(EIO);
      case Kind::kShort: {
        // A genuinely short count: default seeded in [1, count), an
        // explicit arg taken verbatim (arg=0 exercises the write()==0
        // pathology callers must treat as an error, not a retry).
        if (count <= 1)
            return ::write(fd, buf, count);
        std::size_t k = d.arg != kNoArg
                            ? static_cast<std::size_t>(d.arg)
                            : 1 + static_cast<std::size_t>(
                                      d.draw % (count - 1));
        if (k > count)
            k = count - 1;
        return ::write(fd, buf, k);
      }
      case Kind::kTorn: {
        // Land a strict prefix of the buffer, then die mid-write. The
        // partial bytes stay visible to the recovering process (page
        // cache survives a process kill), modeling a torn append.
        std::size_t k =
            count == 0 ? 0
                       : static_cast<std::size_t>(
                             (d.arg != kNoArg ? d.arg : d.draw) % count);
        if (k > 0) {
            ssize_t ignored = ::write(fd, buf, k);
            (void)ignored;
        }
        die();
      }
      case Kind::kBitflip: {
        if (count == 0)
            return ::write(fd, buf, count);
        std::vector<std::uint8_t> copy(
            static_cast<const std::uint8_t *>(buf),
            static_cast<const std::uint8_t *>(buf) + count);
        std::uint64_t bit =
            (d.arg != kNoArg ? d.arg : d.draw) % (count * 8);
        copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        return ::write(fd, copy.data(), count);
      }
      default:
        return ::write(fd, buf, count);
    }
}

int
fsync(int fd, const char *site, const char *path)
{
    if (!fault::active())
        return ::fsync(fd);
    Decision d;
    if (!fault::decide(site, "fsync", path, d))
        return ::fsync(fd);
    switch (d.kind) {
      case Kind::kCrash: die();
      case Kind::kEio: return failWith(EIO);
      case Kind::kEnospc: return failWith(ENOSPC);
      case Kind::kEintr: return failWith(EINTR);
      case Kind::kFsyncDrop: return 0; // lie: nothing reached disk
      default: return ::fsync(fd);
    }
}

int
ftruncate(int fd, off_t length, const char *site, const char *path)
{
    if (!fault::active())
        return ::ftruncate(fd, length);
    Decision d;
    if (!fault::decide(site, "truncate", path, d))
        return ::ftruncate(fd, length);
    switch (d.kind) {
      case Kind::kCrash: die();
      case Kind::kEio: return failWith(EIO);
      case Kind::kEintr: return failWith(EINTR);
      default: return ::ftruncate(fd, length);
    }
}

int
rename(const char *from, const char *to, const char *site)
{
    if (!fault::active())
        return ::rename(from, to);
    Decision d;
    if (!fault::decide(site, "rename", from, d))
        return ::rename(from, to);
    switch (d.kind) {
      case Kind::kCrash: die();
      case Kind::kEio: return failWith(EIO);
      case Kind::kEnospc: return failWith(ENOSPC);
      default: return ::rename(from, to);
    }
}

} // namespace io
} // namespace ich
