/**
 * @file
 * Concurrent PHI-executing application (paper §6.3 "Noise from Concurrent
 * Applications", Fig. 14b/c): a synthetic app that injects PHI bursts of
 * random power level at a configurable rate while the covert channel runs.
 * Decode errors occur mainly when the app's PHI level exceeds the level
 * the channel is using, because the rail voltage (and hence TP) then
 * reflects the app's level instead of the sender's.
 */

#ifndef ICH_OS_PHI_APP_HH
#define ICH_OS_PHI_APP_HH

#include <cstdint>
#include <vector>

#include "chip/chip.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "isa/inst_class.hh"

namespace ich
{

/** Concurrent-application configuration. */
struct PhiAppConfig {
    /** PHI bursts per second (Fig. 14c sweeps 10..10,000). */
    double phiRatePerSec = 0.0;
    /** Classes the app draws from, uniformly at random. */
    std::vector<InstClass> classes = {
        InstClass::k128Heavy, InstClass::k256Light, InstClass::k256Heavy,
        InstClass::k512Heavy};
    /** Iterations per burst (burst length ≈ a few microseconds). */
    std::uint64_t burstIterations = 40;
    int unroll = 100;
};

/**
 * Runs PHI bursts on a given hardware thread. Bursts are injected as
 * stand-alone voltage-level events via the PMU notification interface of
 * the target core (the app thread itself need not be program-driven),
 * which matches how a concurrent app perturbs the shared rail.
 */
class PhiApp
{
  public:
    PhiApp(Chip &chip, Rng &rng, const PhiAppConfig &cfg, CoreId core,
           int smt);

    /** Begin injecting until @p until. */
    void start(Time until);

    std::uint64_t burstsInjected() const { return bursts_; }

  private:
    Chip &chip_;
    Rng &rng_;
    PhiAppConfig cfg_;
    CoreId core_;
    int smt_;
    Time until_ = 0;
    std::uint64_t bursts_ = 0;

    void scheduleBurst();
};

} // namespace ich

#endif // ICH_OS_PHI_APP_HH
