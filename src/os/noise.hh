/**
 * @file
 * OS noise injection (paper §6.3): Poisson-arriving interrupts and
 * context switches stall a hardware thread for a few microseconds /
 * tens of microseconds respectively, inflating the receiver's measured
 * throttling period and causing decode errors (Fig. 14a).
 */

#ifndef ICH_OS_NOISE_HH
#define ICH_OS_NOISE_HH

#include <cstdint>

#include "chip/chip.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace ich
{

/** Noise-source configuration. */
struct NoiseConfig {
    /** Interrupt arrivals per second per target thread. */
    double interruptRatePerSec = 0.0;
    /** Interrupt service latency bounds (few microseconds, §6.3). */
    Time interruptMin = fromMicroseconds(1.0);
    Time interruptMax = fromMicroseconds(4.0);

    /** Context-switch arrivals per second per target thread. */
    double contextSwitchRatePerSec = 0.0;
    /** Context-switch latency bounds (tens of microseconds, §6.3). */
    Time contextSwitchMin = fromMicroseconds(15.0);
    Time contextSwitchMax = fromMicroseconds(45.0);
};

/**
 * Injects stalls into one hardware thread following two independent
 * Poisson processes.
 */
class NoiseInjector
{
  public:
    NoiseInjector(Chip &chip, Rng &rng, const NoiseConfig &cfg,
                  CoreId core, int smt);

    /** Begin injecting until @p until. */
    void start(Time until);

    std::uint64_t interruptsInjected() const { return irqs_; }
    std::uint64_t contextSwitchesInjected() const { return ctxs_; }

  private:
    Chip &chip_;
    Rng &rng_;
    NoiseConfig cfg_;
    CoreId core_;
    int smt_;
    Time until_ = 0;
    std::uint64_t irqs_ = 0;
    std::uint64_t ctxs_ = 0;

    void scheduleInterrupt();
    void scheduleContextSwitch();
};

} // namespace ich

#endif // ICH_OS_NOISE_HH
