#include "os/noise.hh"

namespace ich
{

NoiseInjector::NoiseInjector(Chip &chip, Rng &rng, const NoiseConfig &cfg,
                             CoreId core, int smt)
    : chip_(chip), rng_(rng), cfg_(cfg), core_(core), smt_(smt)
{
}

void
NoiseInjector::start(Time until)
{
    until_ = until;
    if (cfg_.interruptRatePerSec > 0.0)
        scheduleInterrupt();
    if (cfg_.contextSwitchRatePerSec > 0.0)
        scheduleContextSwitch();
}

void
NoiseInjector::scheduleInterrupt()
{
    Time gap = rng_.exponentialInterarrival(cfg_.interruptRatePerSec);
    Time when = chip_.eventQueue().now() + gap;
    if (when > until_)
        return;
    // One event per injected interrupt; rates reach 10k/s in the grids.
    chip_.eventQueue().scheduleChecked(when, [this] {
        ++irqs_;
        Time dur = rng_.uniformInt(cfg_.interruptMin, cfg_.interruptMax);
        chip_.core(core_).thread(smt_).stallFor(dur);
        scheduleInterrupt();
    });
}

void
NoiseInjector::scheduleContextSwitch()
{
    Time gap = rng_.exponentialInterarrival(cfg_.contextSwitchRatePerSec);
    Time when = chip_.eventQueue().now() + gap;
    if (when > until_)
        return;
    chip_.eventQueue().scheduleChecked(when, [this] {
        ++ctxs_;
        Time dur = rng_.uniformInt(cfg_.contextSwitchMin,
                                   cfg_.contextSwitchMax);
        chip_.core(core_).thread(smt_).stallFor(dur);
        scheduleContextSwitch();
    });
}

} // namespace ich
