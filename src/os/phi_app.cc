#include "os/phi_app.hh"

namespace ich
{

PhiApp::PhiApp(Chip &chip, Rng &rng, const PhiAppConfig &cfg, CoreId core,
               int smt)
    : chip_(chip), rng_(rng), cfg_(cfg), core_(core), smt_(smt)
{
}

void
PhiApp::start(Time until)
{
    until_ = until;
    if (cfg_.phiRatePerSec > 0.0 && !cfg_.classes.empty())
        scheduleBurst();
}

void
PhiApp::scheduleBurst()
{
    Time gap = rng_.exponentialInterarrival(cfg_.phiRatePerSec);
    Time when = chip_.eventQueue().now() + gap;
    if (when > until_)
        return;
    // App-PHI bursts fire at up to 1k/s alongside the covert channel.
    chip_.eventQueue().scheduleChecked(when, [this] {
        ++bursts_;
        InstClass cls = cfg_.classes[rng_.uniformInt(
            0, cfg_.classes.size() - 1)];
        // The burst announces itself to the PMU exactly as an executing
        // loop would: level request at start, hysteresis stamp at end.
        chip_.phiStarted(core_, smt_, cls);
        Kernel k = makeKernel(cls, cfg_.burstIterations, cfg_.unroll);
        double cycles = k.totalCycles();
        Time dur = static_cast<Time>(cycles *
                                     cyclePicos(chip_.freqGhz()));
        chip_.eventQueue().scheduleInChecked(dur, [this, cls] {
            chip_.kernelEnded(core_, smt_, cls);
        });
        scheduleBurst();
    });
}

} // namespace ich
