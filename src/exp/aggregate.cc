#include "exp/aggregate.hh"

#include <set>
#include <stdexcept>

#include "common/stats.hh"

namespace ich
{
namespace exp
{

MetricSummary
MetricSummary::fromSamples(const std::vector<double> &samples)
{
    MetricSummary m;
    if (samples.empty())
        return m;
    Summary s;
    for (double x : samples)
        s.add(x);
    m.count = s.count();
    m.mean = s.mean();
    m.stddev = s.stddev();
    m.min = s.min();
    m.max = s.max();
    m.p50 = s.quantile(0.50);
    m.p90 = s.quantile(0.90);
    m.p99 = s.quantile(0.99);
    return m;
}

const MetricSummary &
SweepResult::pointMetric(std::size_t point, const std::string &name) const
{
    if (point >= aggregates.size())
        throw std::out_of_range("SweepResult::pointMetric: point " +
                                std::to_string(point) + " of " +
                                std::to_string(aggregates.size()));
    const auto &m = aggregates[point].metrics;
    auto it = m.find(name);
    if (it == m.end())
        throw std::out_of_range("SweepResult::pointMetric: no metric '" +
                                name + "'");
    return it->second;
}

std::vector<PointAggregate>
aggregate(const std::vector<ParamPoint> &points,
          const std::vector<TrialRecord> &trials)
{
    // Per-point, per-metric sample lists, filled in trial-index order so
    // the result is independent of how trials were scheduled.
    std::vector<std::map<std::string, std::vector<double>>> samples(
        points.size());
    for (const auto &t : trials) {
        if (t.pointIndex >= points.size())
            throw std::out_of_range("aggregate: trial point out of range");
        for (const auto &kv : t.metrics)
            samples[t.pointIndex][kv.first].push_back(kv.second);
    }

    std::vector<PointAggregate> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        PointAggregate pa;
        pa.point = points[i];
        for (const auto &kv : samples[i])
            pa.metrics[kv.first] = MetricSummary::fromSamples(kv.second);
        out.push_back(std::move(pa));
    }
    return out;
}

MetricSummary
rollup(const SweepResult &result, const std::string &metric)
{
    std::vector<double> all;
    for (const auto &t : result.trials) {
        auto it = t.metrics.find(metric);
        if (it != t.metrics.end())
            all.push_back(it->second);
    }
    return MetricSummary::fromSamples(all);
}

std::vector<std::string>
metricNames(const SweepResult &result)
{
    std::set<std::string> names;
    for (const auto &pa : result.aggregates)
        for (const auto &kv : pa.metrics)
            names.insert(kv.first);
    return std::vector<std::string>(names.begin(), names.end());
}

} // namespace exp
} // namespace ich
