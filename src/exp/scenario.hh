/**
 * @file
 * Declarative experiment scenarios: parameter axes, sweep expansion, and
 * the scenario registry.
 *
 * A ScenarioSpec describes one experiment grid the way the paper's
 * evaluation sections do: a set of parameter axes (cartesian product or
 * zipped lists), a number of seeded trials per grid point, and a trial
 * function mapping (point, seed) to named metrics. Every trial is
 * independent and reproducible from its derived seed, so the SweepRunner
 * can fan trials out across a worker pool without changing results.
 */

#ifndef ICH_EXP_SCENARIO_HH
#define ICH_EXP_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ich
{
namespace exp
{

/**
 * Intern @p s into the process-wide axis-string pool and return the
 * canonical copy. Pointer-stable for the life of the process;
 * thread-safe (interning is cold: grid expansion, store/manifest
 * decode).
 */
const std::string &internString(const std::string &s);

/**
 * Interned axis string: a handle into the intern pool that converts
 * implicitly to `const std::string &`.
 *
 * Axis names and value labels repeat across every point of a grid, yet
 * each ParamPoint used to heap-copy both — the last O(points) memory
 * term (~190 B/point) on every sweep path. An IStr is one pointer;
 * identical strings share one canonical std::string.
 */
class IStr
{
  public:
    IStr() : s_(&internString(std::string())) {}
    IStr(const char *s) : s_(&internString(s)) {}
    IStr(const std::string &s) : s_(&internString(s)) {}

    operator const std::string &() const { return *s_; }
    const std::string &str() const { return *s_; }
    const char *c_str() const { return s_->c_str(); }
    bool empty() const { return s_->empty(); }

    /** Interned-pointer equality == string equality. */
    friend bool operator==(const IStr &a, const IStr &b)
    {
        return a.s_ == b.s_;
    }
    friend bool operator==(const IStr &a, const std::string &b)
    {
        return *a.s_ == b;
    }
    friend bool operator==(const std::string &a, const IStr &b)
    {
        return a == *b.s_;
    }
    friend bool operator==(const IStr &a, const char *b)
    {
        return *a.s_ == b;
    }
    friend bool operator==(const char *a, const IStr &b)
    {
        return *b.s_ == a;
    }
    friend bool operator!=(const IStr &a, const IStr &b)
    {
        return a.s_ != b.s_;
    }

  private:
    const std::string *s_;
};

/** One value on a parameter axis: numeric payload + display label. */
struct ParamValue {
    double value = 0.0;
    IStr label; ///< shown in reports; defaults to the number
};

/** A named parameter axis. */
struct ParamAxis {
    std::string name;
    std::vector<ParamValue> values;
};

/** Numeric axis; labels default to a compact rendering of the value. */
ParamAxis axis(std::string name, const std::vector<double> &values);

/**
 * Labeled axis for categorical parameters (channel kind, FEC scheme…):
 * the value is the category's index unless given explicitly.
 */
ParamAxis axisLabeled(std::string name,
                      const std::vector<std::string> &labels);
ParamAxis axisLabeledValues(
    std::string name,
    const std::vector<std::pair<std::string, double>> &labeled_values);

/** Compact numeric rendering used for default labels and CSV cells. */
std::string formatValue(double v);

/** One point of the expanded sweep: an ordered set of (axis, value). */
class ParamPoint
{
  public:
    struct Entry {
        IStr name;
        ParamValue value;
    };

    void set(const std::string &name, ParamValue v);

    /** Numeric value of @p name; throws std::out_of_range if missing. */
    double get(const std::string &name) const;
    /** Same, rounded to the nearest integer (categorical indices). */
    int getInt(const std::string &name) const;
    /** Display label of @p name; throws std::out_of_range if missing. */
    const std::string &label(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::vector<Entry> &entries() const { return entries_; }

    /** "axis1=v1 axis2=v2" — for logs and error messages. */
    std::string toString() const;

  private:
    std::vector<Entry> entries_;
};

/** How the axes combine into grid points. */
enum class SweepStyle {
    kCartesian, ///< every combination; first axis varies slowest
    kZip,       ///< axes iterated in lockstep (all must be equal length)
};

/** Named metric values produced by one trial (ordered for reporting). */
using MetricMap = std::map<std::string, double>;

/** Everything a trial function gets to see. */
struct TrialContext {
    const ParamPoint &point;
    std::size_t pointIndex = 0; ///< index into the expanded grid
    int trial = 0;              ///< 0..trials-1 within the point
    std::uint64_t seed = 0;     ///< derived from (baseSeed, global index)
    /**
     * Warm-state snapshot for this point (null when the scenario has no
     * warmup). Trial functions fork their Simulation from it via
     * state::restore() and then re-seed the fork's Rng with `seed`, so
     * the per-trial seed contract — and with it --jobs byte-identity —
     * is untouched by warm forking.
     */
    const std::vector<std::uint8_t> *warmSnapshot = nullptr;
};

/** Declarative description of one experiment sweep. */
struct ScenarioSpec {
    std::string name;
    std::string description;
    SweepStyle style = SweepStyle::kCartesian;
    std::vector<ParamAxis> axes;
    int trials = 1;               ///< seeded repetitions per grid point
    std::uint64_t baseSeed = 1;   ///< root of the per-trial seed schedule
    std::function<MetricMap(const TrialContext &)> run;

    /**
     * Optional warm-state forking (see state/snapshot.hh). When set,
     * the runner calls warmup(point) once per unique warmupKey(point)
     * — instead of once per *trial* — and hands the returned snapshot
     * buffer to every trial of matching points via
     * TrialContext::warmSnapshot. The function must be deterministic
     * in the point alone (use a fixed internal seed: trials re-seed
     * after forking), and must return a state::snapshot() archive.
     */
    std::function<std::vector<std::uint8_t>(const ParamPoint &)> warmup;
    /**
     * Groups points that share a warm state (default: every point is
     * its own group). Return a constant to warm the whole grid once.
     */
    std::function<std::string(const ParamPoint &)> warmupKey;
};

/**
 * Expand the spec's axes into the ordered list of grid points.
 * Cartesian expansion nests left-to-right (first axis outermost); zip
 * expansion requires all axes to have the same length. A spec with no
 * axes expands to one empty point.
 */
std::vector<ParamPoint> expandPoints(const ScenarioSpec &spec);

/**
 * Deterministic per-trial seed: splitmix64 of the base seed and the
 * global trial index, so any execution order (serial, pooled, sharded)
 * sees the same seed for the same trial.
 */
std::uint64_t deriveTrialSeed(std::uint64_t base_seed,
                              std::uint64_t trial_index);

/** Name-keyed scenario collection (insertion-ordered). */
class ScenarioRegistry
{
  public:
    /** Register a scenario; throws std::invalid_argument on duplicates. */
    void add(ScenarioSpec spec);

    /** Look up by name; nullptr when absent. */
    const ScenarioSpec *find(const std::string &name) const;

    std::vector<std::string> names() const;
    const std::vector<ScenarioSpec> &scenarios() const { return specs_; }
    std::size_t size() const { return specs_.size(); }

  private:
    std::vector<ScenarioSpec> specs_;
};

} // namespace exp
} // namespace ich

#endif // ICH_EXP_SCENARIO_HH
