#include "exp/report.hh"

#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <stdexcept>

#include "common/table.hh"
#include "exp/colstore.hh"
#include "exp/json.hh"

namespace ich
{
namespace exp
{

namespace
{

std::string
cell(const MetricSummary &m)
{
    if (m.count <= 1)
        return formatValue(m.mean);
    return formatValue(m.mean) + " ±" + formatValue(m.stddev);
}

void
writeSummary(JsonWriter &w, const MetricSummary &m)
{
    w.beginObject();
    w.key("count").value(static_cast<std::uint64_t>(m.count));
    w.key("mean").value(m.mean);
    w.key("stddev").value(m.stddev);
    w.key("min").value(m.min);
    w.key("max").value(m.max);
    w.key("p50").value(m.p50);
    w.key("p90").value(m.p90);
    w.key("p99").value(m.p99);
    w.endObject();
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * The renderers' common denominator: both front ends (materialized
 * SweepResult, store-backed StoreSweepView) reduce to this, so the
 * bytes they produce cannot drift apart. forEachTrial streams every
 * trial record in global-trial-index order; for the store view that is
 * one pass over the column store (ascending points == global order).
 */
struct View {
    const std::string &scenario;
    const std::string &description;
    std::uint64_t baseSeed;
    int trialsPerPoint;
    const std::vector<ParamPoint> &points;
    const std::vector<PointAggregate> &aggregates;
    std::function<void(const std::function<void(const TrialRecord &)> &)>
        forEachTrial;
};

View
viewOf(const SweepResult &r)
{
    return View{r.scenario,
                r.description,
                r.baseSeed,
                r.trialsPerPoint,
                r.points,
                r.aggregates,
                [&r](const std::function<void(const TrialRecord &)> &fn) {
                    for (const auto &t : r.trials)
                        fn(t);
                }};
}

View
viewOf(const StoreSweepView &v)
{
    const ColumnStoreReader &store = v.store;
    return View{v.meta.scenario,
                v.meta.description,
                v.meta.baseSeed,
                v.meta.trialsPerPoint,
                v.meta.points,
                v.agg.aggregates(),
                [&store](
                    const std::function<void(const TrialRecord &)> &fn) {
                    store.forEachPoint(
                        [&fn](std::size_t,
                              const std::vector<TrialRecord> &recs) {
                            for (const auto &t : recs)
                                fn(t);
                        });
                }};
}

std::vector<std::string>
viewMetricNames(const View &v)
{
    std::set<std::string> names;
    for (const auto &pa : v.aggregates)
        for (const auto &kv : pa.metrics)
            names.insert(kv.first);
    return std::vector<std::string>(names.begin(), names.end());
}

std::string
textCore(const View &v)
{
    std::vector<std::string> metrics = viewMetricNames(v);
    std::vector<std::string> header;
    std::vector<std::string> axes;
    if (!v.points.empty())
        for (const auto &e : v.points.front().entries())
            axes.push_back(e.name);
    header.insert(header.end(), axes.begin(), axes.end());
    header.insert(header.end(), metrics.begin(), metrics.end());
    if (header.empty())
        return "(empty sweep)\n";

    Table t(header);
    for (const auto &pa : v.aggregates) {
        std::vector<std::string> row;
        for (const auto &a : axes)
            row.push_back(pa.point.label(a));
        for (const auto &m : metrics) {
            auto it = pa.metrics.find(m);
            row.push_back(it == pa.metrics.end() ? "-" : cell(it->second));
        }
        t.addRow(std::move(row));
    }
    std::string out = t.toString();
    if (v.trialsPerPoint > 1) {
        out += "(" + std::to_string(v.trialsPerPoint) +
               " trials/point, base seed " + std::to_string(v.baseSeed) +
               ")\n";
    }
    return out;
}

std::string
jsonCore(const View &v, bool include_trials)
{
    JsonWriter w;
    w.beginObject();
    w.key("scenario").value(v.scenario);
    w.key("description").value(v.description);
    w.key("base_seed").value(v.baseSeed);
    w.key("trials_per_point").value(v.trialsPerPoint);

    w.key("points").beginArray();
    for (const auto &pa : v.aggregates) {
        w.beginObject();
        w.key("params").beginObject();
        for (const auto &e : pa.point.entries()) {
            w.key(e.name).beginObject();
            w.key("value").value(e.value.value);
            w.key("label").value(e.value.label);
            w.endObject();
        }
        w.endObject();
        w.key("metrics").beginObject();
        for (const auto &kv : pa.metrics) {
            w.key(kv.first);
            writeSummary(w, kv.second);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();

    // Whole-sweep rollups: samples gathered per metric in global trial
    // order — the exact order rollup() uses, so the store-backed path
    // emits the same bits. (Quantiles need every sample, so this is the
    // one reporter stage that is O(trials) doubles, not O(points).)
    std::vector<std::string> names = viewMetricNames(v);
    std::map<std::string, std::vector<double>> samples;
    for (const auto &name : names)
        samples[name]; // fixed key set: only metrics the sweep emitted
    v.forEachTrial([&samples](const TrialRecord &t) {
        for (auto &kv : samples) {
            auto it = t.metrics.find(kv.first);
            if (it != t.metrics.end())
                kv.second.push_back(it->second);
        }
    });
    w.key("rollups").beginObject();
    for (const auto &name : names) {
        w.key(name);
        writeSummary(w, MetricSummary::fromSamples(samples[name]));
    }
    w.endObject();

    if (include_trials) {
        w.key("trials").beginArray();
        v.forEachTrial([&w](const TrialRecord &t) {
            w.beginObject();
            w.key("point").value(
                static_cast<std::uint64_t>(t.pointIndex));
            w.key("trial").value(t.trial);
            w.key("seed").value(t.seed);
            w.key("metrics").beginObject();
            for (const auto &kv : t.metrics)
                w.key(kv.first).value(kv.second);
            w.endObject();
            w.endObject();
        });
        w.endArray();
    }

    w.endObject();
    return w.str();
}

std::string
csvCore(const View &v)
{
    std::vector<std::string> metrics = viewMetricNames(v);
    std::vector<std::string> axes;
    if (!v.points.empty())
        for (const auto &e : v.points.front().entries())
            axes.push_back(e.name);

    std::string out;
    bool first = true;
    for (const auto &a : axes) {
        out += (first ? "" : ",") + csvEscape(a);
        first = false;
    }
    for (const auto &m : metrics) {
        out += (first ? "" : ",") + csvEscape(m + "_mean");
        out += "," + csvEscape(m + "_stddev");
        first = false;
    }
    out += "\n";

    for (const auto &pa : v.aggregates) {
        first = true;
        for (const auto &a : axes) {
            out += (first ? "" : ",") + csvEscape(pa.point.label(a));
            first = false;
        }
        for (const auto &m : metrics) {
            auto it = pa.metrics.find(m);
            std::string mean = "-";
            std::string sd = "-";
            if (it != pa.metrics.end()) {
                mean = formatValue(it->second.mean);
                sd = formatValue(it->second.stddev);
            }
            out += (first ? "" : ",") + mean + "," + sd;
            first = false;
        }
        out += "\n";
    }
    return out;
}

ReportPaths
writeCore(const View &v, const std::string &out_dir,
          const ReportOptions &opts)
{
    namespace fs = std::filesystem;
    fs::path dir(out_dir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        throw std::runtime_error("writeReports: cannot create '" + out_dir +
                                 "': " + ec.message());

    auto write = [](const std::string &path, const std::string &content) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        if (!f)
            throw std::runtime_error("writeReports: cannot open '" + path +
                                     "'");
        f << content;
        if (!f.flush())
            throw std::runtime_error("writeReports: write failed for '" +
                                     path + "'");
    };

    ReportPaths paths;
    if (opts.json) {
        paths.json = (dir / (v.scenario + ".json")).string();
        write(paths.json, jsonCore(v, opts.includeTrials));
    }
    if (opts.csv) {
        paths.csv = (dir / (v.scenario + ".csv")).string();
        write(paths.csv, csvCore(v));
    }
    return paths;
}

} // namespace

std::string
textReport(const SweepResult &result)
{
    return textCore(viewOf(result));
}

std::string
textReport(const StoreSweepView &view)
{
    return textCore(viewOf(view));
}

std::string
jsonReport(const SweepResult &result, bool include_trials)
{
    return jsonCore(viewOf(result), include_trials);
}

std::string
jsonReport(const StoreSweepView &view, bool include_trials)
{
    return jsonCore(viewOf(view), include_trials);
}

std::string
csvReport(const SweepResult &result)
{
    return csvCore(viewOf(result));
}

std::string
csvReport(const StoreSweepView &view)
{
    return csvCore(viewOf(view));
}

ReportPaths
writeReports(const SweepResult &result, const std::string &out_dir,
             const ReportOptions &opts)
{
    return writeCore(viewOf(result), out_dir, opts);
}

ReportPaths
writeReports(const StoreSweepView &view, const std::string &out_dir,
             const ReportOptions &opts)
{
    return writeCore(viewOf(view), out_dir, opts);
}

} // namespace exp
} // namespace ich
