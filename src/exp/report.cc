#include "exp/report.hh"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/table.hh"
#include "exp/json.hh"

namespace ich
{
namespace exp
{

namespace
{

std::string
cell(const MetricSummary &m)
{
    if (m.count <= 1)
        return formatValue(m.mean);
    return formatValue(m.mean) + " ±" + formatValue(m.stddev);
}

void
writeSummary(JsonWriter &w, const MetricSummary &m)
{
    w.beginObject();
    w.key("count").value(static_cast<std::uint64_t>(m.count));
    w.key("mean").value(m.mean);
    w.key("stddev").value(m.stddev);
    w.key("min").value(m.min);
    w.key("max").value(m.max);
    w.key("p50").value(m.p50);
    w.key("p90").value(m.p90);
    w.key("p99").value(m.p99);
    w.endObject();
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
textReport(const SweepResult &result)
{
    std::vector<std::string> metrics = metricNames(result);
    std::vector<std::string> header;
    std::vector<std::string> axes;
    if (!result.points.empty())
        for (const auto &e : result.points.front().entries())
            axes.push_back(e.name);
    header.insert(header.end(), axes.begin(), axes.end());
    header.insert(header.end(), metrics.begin(), metrics.end());
    if (header.empty())
        return "(empty sweep)\n";

    Table t(header);
    for (const auto &pa : result.aggregates) {
        std::vector<std::string> row;
        for (const auto &a : axes)
            row.push_back(pa.point.label(a));
        for (const auto &m : metrics) {
            auto it = pa.metrics.find(m);
            row.push_back(it == pa.metrics.end() ? "-" : cell(it->second));
        }
        t.addRow(std::move(row));
    }
    std::string out = t.toString();
    if (result.trialsPerPoint > 1) {
        out += "(" + std::to_string(result.trialsPerPoint) +
               " trials/point, base seed " +
               std::to_string(result.baseSeed) + ")\n";
    }
    return out;
}

std::string
jsonReport(const SweepResult &result, bool include_trials)
{
    JsonWriter w;
    w.beginObject();
    w.key("scenario").value(result.scenario);
    w.key("description").value(result.description);
    w.key("base_seed").value(result.baseSeed);
    w.key("trials_per_point").value(result.trialsPerPoint);

    w.key("points").beginArray();
    for (const auto &pa : result.aggregates) {
        w.beginObject();
        w.key("params").beginObject();
        for (const auto &e : pa.point.entries()) {
            w.key(e.name).beginObject();
            w.key("value").value(e.value.value);
            w.key("label").value(e.value.label);
            w.endObject();
        }
        w.endObject();
        w.key("metrics").beginObject();
        for (const auto &kv : pa.metrics) {
            w.key(kv.first);
            writeSummary(w, kv.second);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("rollups").beginObject();
    for (const auto &name : metricNames(result)) {
        w.key(name);
        writeSummary(w, rollup(result, name));
    }
    w.endObject();

    if (include_trials) {
        w.key("trials").beginArray();
        for (const auto &t : result.trials) {
            w.beginObject();
            w.key("point").value(
                static_cast<std::uint64_t>(t.pointIndex));
            w.key("trial").value(t.trial);
            w.key("seed").value(t.seed);
            w.key("metrics").beginObject();
            for (const auto &kv : t.metrics)
                w.key(kv.first).value(kv.second);
            w.endObject();
            w.endObject();
        }
        w.endArray();
    }

    w.endObject();
    return w.str();
}

std::string
csvReport(const SweepResult &result)
{
    std::vector<std::string> metrics = metricNames(result);
    std::vector<std::string> axes;
    if (!result.points.empty())
        for (const auto &e : result.points.front().entries())
            axes.push_back(e.name);

    std::string out;
    bool first = true;
    for (const auto &a : axes) {
        out += (first ? "" : ",") + csvEscape(a);
        first = false;
    }
    for (const auto &m : metrics) {
        out += (first ? "" : ",") + csvEscape(m + "_mean");
        out += "," + csvEscape(m + "_stddev");
        first = false;
    }
    out += "\n";

    for (const auto &pa : result.aggregates) {
        first = true;
        for (const auto &a : axes) {
            out += (first ? "" : ",") + csvEscape(pa.point.label(a));
            first = false;
        }
        for (const auto &m : metrics) {
            auto it = pa.metrics.find(m);
            std::string mean = "-";
            std::string sd = "-";
            if (it != pa.metrics.end()) {
                mean = formatValue(it->second.mean);
                sd = formatValue(it->second.stddev);
            }
            out += (first ? "" : ",") + mean + "," + sd;
            first = false;
        }
        out += "\n";
    }
    return out;
}

ReportPaths
writeReports(const SweepResult &result, const std::string &out_dir,
             bool include_trials, bool write_json, bool write_csv)
{
    namespace fs = std::filesystem;
    fs::path dir(out_dir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        throw std::runtime_error("writeReports: cannot create '" + out_dir +
                                 "': " + ec.message());

    auto write = [](const std::string &path, const std::string &content) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        if (!f)
            throw std::runtime_error("writeReports: cannot open '" + path +
                                     "'");
        f << content;
        if (!f.flush())
            throw std::runtime_error("writeReports: write failed for '" +
                                     path + "'");
    };

    ReportPaths paths;
    if (write_json) {
        paths.json = (dir / (result.scenario + ".json")).string();
        write(paths.json, jsonReport(result, include_trials));
    }
    if (write_csv) {
        paths.csv = (dir / (result.scenario + ".csv")).string();
        write(paths.csv, csvReport(result));
    }
    return paths;
}

} // namespace exp
} // namespace ich
