#include "exp/scenario.hh"

#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

namespace ich
{
namespace exp
{

const std::string &
internString(const std::string &s)
{
    // Node-based set: element addresses survive rehash, so the returned
    // reference is stable for the life of the process. Never shrinks —
    // the pool is bounded by the distinct axis names/labels ever seen,
    // not by grid size.
    static std::mutex mu;
    static std::unordered_set<std::string> pool;
    std::lock_guard<std::mutex> lock(mu);
    return *pool.insert(s).first;
}

std::string
formatValue(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

ParamAxis
axis(std::string name, const std::vector<double> &values)
{
    ParamAxis a;
    a.name = std::move(name);
    for (double v : values)
        a.values.push_back({v, formatValue(v)});
    return a;
}

ParamAxis
axisLabeled(std::string name, const std::vector<std::string> &labels)
{
    ParamAxis a;
    a.name = std::move(name);
    for (std::size_t i = 0; i < labels.size(); ++i)
        a.values.push_back({static_cast<double>(i), labels[i]});
    return a;
}

ParamAxis
axisLabeledValues(
    std::string name,
    const std::vector<std::pair<std::string, double>> &labeled_values)
{
    ParamAxis a;
    a.name = std::move(name);
    for (const auto &lv : labeled_values)
        a.values.push_back({lv.second, lv.first});
    return a;
}

void
ParamPoint::set(const std::string &name, ParamValue v)
{
    for (auto &e : entries_) {
        if (e.name == name) {
            e.value = std::move(v);
            return;
        }
    }
    entries_.push_back({name, std::move(v)});
}

double
ParamPoint::get(const std::string &name) const
{
    for (const auto &e : entries_)
        if (e.name == name)
            return e.value.value;
    throw std::out_of_range("ParamPoint: no axis named '" + name + "'");
}

int
ParamPoint::getInt(const std::string &name) const
{
    double v = get(name);
    return static_cast<int>(v < 0 ? v - 0.5 : v + 0.5);
}

const std::string &
ParamPoint::label(const std::string &name) const
{
    for (const auto &e : entries_)
        if (e.name == name)
            return e.value.label;
    throw std::out_of_range("ParamPoint: no axis named '" + name + "'");
}

bool
ParamPoint::has(const std::string &name) const
{
    for (const auto &e : entries_)
        if (e.name == name)
            return true;
    return false;
}

std::string
ParamPoint::toString() const
{
    std::string s;
    for (const auto &e : entries_) {
        if (!s.empty())
            s += " ";
        s += e.name.str() + "=" + e.value.label.str();
    }
    return s;
}

std::vector<ParamPoint>
expandPoints(const ScenarioSpec &spec)
{
    std::vector<ParamPoint> points;
    if (spec.axes.empty()) {
        points.emplace_back();
        return points;
    }
    for (const auto &a : spec.axes)
        if (a.values.empty())
            throw std::invalid_argument("scenario '" + spec.name +
                                        "': axis '" + a.name + "' is empty");

    if (spec.style == SweepStyle::kZip) {
        std::size_t n = spec.axes.front().values.size();
        for (const auto &a : spec.axes) {
            if (a.values.size() != n)
                throw std::invalid_argument(
                    "scenario '" + spec.name +
                    "': zip axes must have equal lengths");
        }
        for (std::size_t i = 0; i < n; ++i) {
            ParamPoint p;
            for (const auto &a : spec.axes)
                p.set(a.name, a.values[i]);
            points.push_back(std::move(p));
        }
        return points;
    }

    // Cartesian: first axis outermost (varies slowest), like the nested
    // for-loops the serial harnesses used to write by hand.
    std::size_t total = 1;
    for (const auto &a : spec.axes)
        total *= a.values.size();
    points.reserve(total);
    for (std::size_t idx = 0; idx < total; ++idx) {
        ParamPoint p;
        std::size_t rem = idx;
        std::size_t stride = total;
        for (const auto &a : spec.axes) {
            stride /= a.values.size();
            std::size_t vi = rem / stride;
            rem %= stride;
            p.set(a.name, a.values[vi]);
        }
        points.push_back(std::move(p));
    }
    return points;
}

std::uint64_t
deriveTrialSeed(std::uint64_t base_seed, std::uint64_t trial_index)
{
    // splitmix64 over base + (index+1) * golden-gamma: statistically
    // independent streams, and identical for a given (base, index) no
    // matter which worker executes the trial.
    std::uint64_t z = base_seed + (trial_index + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

void
ScenarioRegistry::add(ScenarioSpec spec)
{
    if (spec.name.empty())
        throw std::invalid_argument("ScenarioRegistry: unnamed scenario");
    if (find(spec.name))
        throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                    spec.name + "'");
    specs_.push_back(std::move(spec));
}

const ScenarioSpec *
ScenarioRegistry::find(const std::string &name) const
{
    for (const auto &s : specs_)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const auto &s : specs_)
        out.push_back(s.name);
    return out;
}

} // namespace exp
} // namespace ich
