/**
 * @file
 * Minimal deterministic JSON writer for the experiment reporters.
 *
 * Emits pretty-printed JSON with stable number formatting (%.10g, with
 * NaN/Inf mapped to null), so a sweep serialized on any worker count —
 * or re-run from the same seed — produces byte-identical output.
 */

#ifndef ICH_EXP_JSON_HH
#define ICH_EXP_JSON_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace ich
{
namespace exp
{

/** Streaming JSON writer (objects/arrays nest; keys precede values). */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key inside the current object; follow with a value or begin*(). */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Finished document (call after the outermost end*()). */
    std::string str() const;

    static std::string escape(const std::string &s);
    /** Stable rendering of a double (%.10g; NaN/Inf become null). */
    static std::string number(double v);

  private:
    std::ostringstream os_;
    std::vector<bool> hasItem_; ///< per open scope: already emitted item?
    bool pendingKey_ = false;

    void beforeValue();
    void indent();
};

} // namespace exp
} // namespace ich

#endif // ICH_EXP_JSON_HH
