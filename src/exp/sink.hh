/**
 * @file
 * Streaming result-path API: sweeps push completed grid points into
 * ResultSinks instead of materializing a whole-sweep trial vector.
 *
 * The contract, shared by SweepRunner::runStreaming and
 * ShardCoordinator::runStreaming:
 *
 *  - beginSweep(meta) once, before any point.
 *  - acceptPoint(idx, records, n) once per grid point, with the
 *    point's full trial records in trial order (records[t].trial == t).
 *    Points arrive in *completion* order, not index order — sinks that
 *    need index order key off `idx`.
 *  - endSweep() once, only when every point completed. A failed sweep
 *    never calls it, so durable sinks can tell a finished store from
 *    an interrupted one.
 *  - Calls are serialized by the producer; sinks need no locking.
 *
 * Provided sinks:
 *  - MaterializeSink: rebuilds the legacy SweepResult (the
 *    compatibility layer and byte-identity oracle for every streaming
 *    consumer, same discipline as setLegacyChunkEvents()).
 *  - StreamingAggregator: per-point MetricSummary rollups computed the
 *    moment a point completes — O(points × metrics) memory, zero
 *    retained trial records, bit-identical to serial aggregate().
 *  - TeeSink: fan out to several sinks.
 *  - ColumnStoreWriter (exp/colstore.hh): spills records to the
 *    append-only columnar store.
 */

#ifndef ICH_EXP_SINK_HH
#define ICH_EXP_SINK_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "exp/aggregate.hh"
#include "exp/scenario.hh"

namespace ich
{
namespace exp
{

/** Identity of one sweep: everything a sink or store header needs. */
struct SweepMeta {
    std::string scenario;
    std::string description;
    std::uint64_t baseSeed = 0;
    int trialsPerPoint = 1;
    /** FNV-1a fingerprint of the expanded grid (exp/resume.hh). */
    std::uint64_t gridFp = 0;
    /** The expanded grid, in index order. */
    std::vector<ParamPoint> points;

    std::size_t numPoints() const { return points.size(); }
};

/** Consumer of completed grid points (see the file comment). */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    virtual void beginSweep(const SweepMeta &meta) = 0;

    /**
     * One completed point: @p records are its @p count trials in trial
     * order. The pointer is only valid for the duration of the call.
     */
    virtual void acceptPoint(std::size_t point_idx,
                             const TrialRecord *records,
                             std::size_t count) = 0;

    virtual void endSweep() = 0;
};

/** Execution metadata of one streaming sweep. */
struct StreamStats {
    std::size_t points = 0;        ///< grid size
    std::size_t resumedPoints = 0; ///< prefilled from a prior store
    int jobs = 1;
    double wallSeconds = 0.0;
};

/**
 * Rebuilds the monolithic SweepResult: O(total trials) memory, by
 * design. Records land in their global-trial-index slot, so the result
 * is independent of point completion order.
 */
class MaterializeSink final : public ResultSink
{
  public:
    void beginSweep(const SweepMeta &meta) override;
    void acceptPoint(std::size_t point_idx, const TrialRecord *records,
                     std::size_t count) override;
    void endSweep() override {}

    /**
     * The materialized result (header fields, points, trials).
     * Aggregates are *not* computed — callers run the serial
     * aggregate() oracle themselves.
     */
    SweepResult take();

  private:
    SweepResult result_;
    std::size_t trialsPerPoint_ = 1;
};

/**
 * Streams per-point aggregation: when a point completes, its
 * MetricSummary set is computed from the records in trial order —
 * exactly the sample order serial aggregate() uses, so the output is
 * bit-identical. Holds the aggregates (the sweep's actual product) and
 * nothing else.
 */
class StreamingAggregator final : public ResultSink
{
  public:
    void beginSweep(const SweepMeta &meta) override;
    void acceptPoint(std::size_t point_idx, const TrialRecord *records,
                     std::size_t count) override;
    void endSweep() override {}

    const std::vector<PointAggregate> &aggregates() const
    {
        return aggregates_;
    }

    /** Sorted union of metric names seen so far. */
    std::vector<std::string> metricNames() const;

    std::size_t completedPoints() const { return completed_; }

  private:
    std::vector<PointAggregate> aggregates_;
    std::set<std::string> names_;
    std::size_t completed_ = 0;
};

/** Forwards every call to each sink, in order. */
class TeeSink final : public ResultSink
{
  public:
    explicit TeeSink(std::vector<ResultSink *> sinks)
        : sinks_(std::move(sinks))
    {
    }

    void beginSweep(const SweepMeta &meta) override
    {
        for (ResultSink *s : sinks_)
            s->beginSweep(meta);
    }
    void acceptPoint(std::size_t point_idx, const TrialRecord *records,
                     std::size_t count) override
    {
        for (ResultSink *s : sinks_)
            s->acceptPoint(point_idx, records, count);
    }
    void endSweep() override
    {
        for (ResultSink *s : sinks_)
            s->endSweep();
    }

  private:
    std::vector<ResultSink *> sinks_;
};

} // namespace exp
} // namespace ich

#endif // ICH_EXP_SINK_HH
