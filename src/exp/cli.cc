#include "exp/cli.hh"

#include <algorithm>
#include <stdexcept>

namespace ich
{
namespace exp
{

namespace
{

std::uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    try {
        // stoull tolerates signs and whitespace; require plain digits.
        if (text.empty() ||
            text.find_first_not_of("0123456789") != std::string::npos)
            throw std::invalid_argument("not a plain number");
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(flag + ": expected a non-negative "
                                           "integer, got '" +
                                    text + "'");
    }
}

int
parsePositiveInt(const std::string &flag, const std::string &text)
{
    std::uint64_t v = parseU64(flag, text);
    if (v == 0 || v > 1'000'000)
        throw std::invalid_argument(flag + ": value out of range: '" + text +
                                    "'");
    return static_cast<int>(v);
}

} // namespace

CliOptions
parseCli(int argc, const char *const *argv)
{
    CliOptions cli;
    bool saw_out = false;
    auto next = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc)
            throw std::invalid_argument(flag + ": missing value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            cli.jobs = parsePositiveInt(arg, next(i, arg));
        } else if (arg == "--seed") {
            cli.seed = parseU64(arg, next(i, arg));
        } else if (arg == "--trials") {
            cli.trials = parsePositiveInt(arg, next(i, arg));
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--csv") {
            cli.csv = true;
        } else if (arg == "--out") {
            cli.outDir = next(i, arg);
            if (cli.outDir.empty())
                throw std::invalid_argument("--out: empty directory");
            saw_out = true;
        } else if (arg == "--resume") {
            cli.resume = true;
        } else if (arg == "--stream") {
            cli.stream = true;
        } else if (arg == "--render-from") {
            cli.renderFrom = next(i, arg);
            if (cli.renderFrom.empty())
                throw std::invalid_argument(
                    "--render-from: empty directory");
        } else if (arg == "--shard") {
            cli.shard = parsePositiveInt(arg, next(i, arg));
        } else if (arg == "--shard-worker") {
            cli.shardWorker = true;
        } else if (arg == "--shard-in") {
            cli.shardInFd =
                static_cast<int>(parseU64(arg, next(i, arg)));
        } else if (arg == "--shard-out") {
            cli.shardOutFd =
                static_cast<int>(parseU64(arg, next(i, arg)));
        } else if (arg == "--shard-scratch") {
            cli.shardScratch = next(i, arg);
            if (cli.shardScratch.empty())
                throw std::invalid_argument(
                    "--shard-scratch: empty directory");
        } else if (arg == "--shard-kill-after") {
            cli.shardKillAfter = parsePositiveInt(arg, next(i, arg));
        } else if (arg == "--shard-fault") {
            cli.shardFault = next(i, arg);
            if (cli.shardFault.empty())
                throw std::invalid_argument("--shard-fault: empty spec");
        } else if (arg == "--list") {
            cli.list = true;
        } else if (arg == "--help" || arg == "-h") {
            cli.help = true;
        } else if (!arg.empty() && arg[0] == '-') {
            throw std::invalid_argument("unknown flag '" + arg + "'");
        } else {
            cli.scenarios.push_back(arg);
        }
    }
    // --out implies wanting the files — applied after the loop so the
    // implication is flag-order independent; explicit format flags
    // anywhere on the line narrow it.
    if (saw_out && !cli.json && !cli.csv) {
        cli.json = true;
        cli.csv = true;
    }
    return cli;
}

std::string
cliUsage(const std::string &prog)
{
    return "usage: " + prog +
           " [options] [SCENARIO...]\n"
           "  --jobs N, -j N  worker threads (default: hardware "
           "concurrency)\n"
           "  --seed S        override the base seed\n"
           "  --trials N      override trials per grid point\n"
           "  --json          write <scenario>.json to the results dir\n"
           "  --csv           write <scenario>.csv to the results dir\n"
           "  --out DIR       results directory (default: results; "
           "implies --json --csv)\n"
           "  --resume        checkpoint completed points into the "
           "results dir\n"
           "                  and skip points an interrupted run "
           "finished\n"
           "  --stream        memory-bounded results: spill trials to "
           "the columnar\n"
           "                  store and aggregate points as they "
           "complete\n"
           "  --shard N       run sweeps across N worker processes "
           "(byte-identical\n"
           "                  to --jobs 1; combines with --resume)\n"
           "  --render-from DIR\n"
           "                  re-render reports from DIR's column store "
           "without\n"
           "                  re-simulating (store identity must match)\n"
           "  --list          list scenarios and exit\n"
           "  --help, -h      this text\n"
           "With no SCENARIO arguments every scenario runs.\n";
}

RunnerOptions
toRunnerOptions(const CliOptions &cli)
{
    RunnerOptions opts;
    opts.jobs = cli.jobs;
    opts.seed = cli.seed;
    opts.trials = cli.trials;
    if (cli.resume)
        opts.resumeDir = cli.outDir;
    return opts;
}

bool
wantScenario(const CliOptions &cli, const std::string &name)
{
    if (cli.scenarios.empty())
        return true;
    return std::find(cli.scenarios.begin(), cli.scenarios.end(), name) !=
           cli.scenarios.end();
}

} // namespace exp
} // namespace ich
