/**
 * @file
 * Aggregation layer for sweep results: per-(point, metric) summaries
 * (mean/stddev/min/max/percentiles, built on common/stats) plus
 * whole-sweep rollups for headline metrics like BER and throughput.
 *
 * Aggregates are always computed serially from the trial records in
 * global-trial-index order, so a sweep executed on 1 worker and on N
 * workers produces bit-identical aggregates.
 */

#ifndef ICH_EXP_AGGREGATE_HH
#define ICH_EXP_AGGREGATE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.hh"

namespace ich
{
namespace exp
{

/** Summary statistics of one metric across the trials of one point. */
struct MetricSummary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; ///< sample stddev (0 when count < 2)
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    static MetricSummary fromSamples(const std::vector<double> &samples);
};

/** One completed trial. */
struct TrialRecord {
    std::size_t pointIndex = 0;
    int trial = 0;
    std::uint64_t seed = 0;
    MetricMap metrics;
};

/** Aggregated view of one grid point. */
struct PointAggregate {
    ParamPoint point;
    std::map<std::string, MetricSummary> metrics;
};

/** Everything a sweep produced. */
struct SweepResult {
    std::string scenario;
    std::string description;
    std::uint64_t baseSeed = 0;
    int trialsPerPoint = 1;
    std::vector<ParamPoint> points;
    std::vector<TrialRecord> trials;        ///< global-trial-index order
    std::vector<PointAggregate> aggregates; ///< one per point, in order

    /** Execution metadata — informational only, never serialized, so
     *  reports stay byte-identical across worker counts / machines. */
    int jobs = 1;
    double wallSeconds = 0.0;
    /** Points prefilled from a resume manifest instead of re-run. */
    std::size_t resumedPoints = 0;

    /**
     * Aggregate of @p name at grid point @p point. Throws
     * std::out_of_range when the point or the metric does not exist.
     * (Single-point harnesses use pointMetric(0, name) — the point is
     * always spelled out; there is no implicit-first-point accessor.)
     */
    const MetricSummary &pointMetric(std::size_t point,
                                     const std::string &name) const;
};

/**
 * Build the per-point aggregates from @p trials (must be in
 * global-trial-index order; every metric name a point's trials emit is
 * summarized independently).
 */
std::vector<PointAggregate>
aggregate(const std::vector<ParamPoint> &points,
          const std::vector<TrialRecord> &trials);

/**
 * Whole-sweep rollup of @p metric across every trial of every point
 * (e.g. overall BER of a grid, total-throughput percentiles). Points
 * whose trials did not emit the metric contribute nothing.
 */
MetricSummary rollup(const SweepResult &result, const std::string &metric);

/** Sorted union of metric names appearing anywhere in the sweep. */
std::vector<std::string> metricNames(const SweepResult &result);

} // namespace exp
} // namespace ich

#endif // ICH_EXP_AGGREGATE_HH
