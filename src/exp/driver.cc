#include "exp/driver.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "exp/runner.hh"
#include "shard/coordinator.hh"
#include "shard/worker.hh"

namespace ich
{
namespace exp
{

int
harnessSetup(int argc, const char *const *argv,
             const ScenarioRegistry &registry, CliOptions &cli)
{
    std::string prog = argc > 0 ? argv[0] : "harness";
    try {
        cli = parseCli(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n%s", e.what(),
                     cliUsage(prog).c_str());
        return 2;
    }
    if (cli.shardWorker) {
        // Spawned by a ShardCoordinator: become a protocol worker and
        // never return to the harness body.
        if (cli.shardInFd < 0 || cli.shardOutFd < 0 ||
            cli.shardScratch.empty()) {
            std::fprintf(stderr,
                         "error: --shard-worker needs --shard-in, "
                         "--shard-out and --shard-scratch\n");
            return 2;
        }
        shard::WorkerConfig wcfg;
        wcfg.inFd = cli.shardInFd;
        wcfg.outFd = cli.shardOutFd;
        wcfg.scratchDir = cli.shardScratch;
        wcfg.killAfterUnits = cli.shardKillAfter;
        return shard::runWorker(registry, wcfg);
    }
    if (cli.help) {
        std::printf("%s", cliUsage(prog).c_str());
        return 0;
    }
    if (cli.list) {
        for (const auto &spec : registry.scenarios())
            std::printf("%-24s %s\n", spec.name.c_str(),
                        spec.description.c_str());
        return 0;
    }
    for (const auto &name : cli.scenarios) {
        if (!registry.find(name)) {
            std::fprintf(stderr,
                         "error: unknown scenario '%s' (try --list)\n",
                         name.c_str());
            return 2;
        }
    }
    return -1;
}

SweepResult
runAndReport(const ScenarioSpec &spec, const CliOptions &cli)
{
    SweepResult result;
    try {
        if (cli.shard > 0) {
            shard::ShardOptions sopts;
            sopts.workers = cli.shard;
            sopts.seed = cli.seed;
            sopts.trials = cli.trials;
            if (cli.resume)
                sopts.resumeDir = cli.outDir;
            sopts.workerArgs = cli.shardWorkerArgs;
            result = shard::runSharded(spec, std::move(sopts));
        } else {
            SweepRunner runner(toRunnerOptions(cli));
            result = runner.run(spec);
        }
    } catch (const std::exception &e) {
        // A failing trial is fatal for a CLI harness, but must surface
        // as a clean message, not an uncaught-exception abort.
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }

    std::printf("%s: %s\n", result.scenario.c_str(),
                result.description.c_str());
    if (result.resumedPoints > 0)
        std::printf("(resumed: %zu of %zu points restored from the "
                    "manifest)\n",
                    result.resumedPoints, result.points.size());
    std::printf("%s", textReport(result).c_str());
    if (cli.json || cli.csv) {
        // Report-file failures are fatal for a CLI harness, but must
        // surface as a clean message, not an uncaught-exception abort.
        try {
            ReportPaths paths =
                writeReports(result, cli.outDir, /*include_trials=*/true,
                             cli.json, cli.csv);
            if (!paths.json.empty())
                std::printf("wrote %s\n", paths.json.c_str());
            if (!paths.csv.empty())
                std::printf("wrote %s\n", paths.csv.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            std::exit(1);
        }
    }
    std::printf("\n");
    return result;
}

} // namespace exp
} // namespace ich
