#include "exp/driver.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "exp/colstore.hh"
#include "exp/resume.hh"
#include "exp/runner.hh"
#include "fault/fault.hh"
#include "shard/coordinator.hh"
#include "shard/worker.hh"

namespace ich
{
namespace exp
{

namespace
{

/** Captures the SweepMeta published by beginSweep() (stream mode needs
 *  it for the store-backed report view and the returned result). */
class MetaCaptureSink final : public ResultSink
{
  public:
    void beginSweep(const SweepMeta &meta) override { meta_ = meta; }
    void acceptPoint(std::size_t, const TrialRecord *,
                     std::size_t) override
    {
    }
    void endSweep() override {}
    const SweepMeta &meta() const { return meta_; }

  private:
    SweepMeta meta_;
};

shard::ShardOptions
toShardOptions(const CliOptions &cli)
{
    shard::ShardOptions sopts;
    sopts.workers = cli.shard;
    sopts.seed = cli.seed;
    sopts.trials = cli.trials;
    if (cli.resume)
        sopts.resumeDir = cli.outDir;
    sopts.workerArgs = cli.shardWorkerArgs;
    if (const char *stall = std::getenv("ICH_SHARD_STALL_MS")) {
        // Escape hatch for sweeps whose single points legitimately run
        // longer than the 30 s default (0 disables the watchdog).
        try {
            sopts.stallTimeoutMs =
                static_cast<int>(std::stol(stall));
        } catch (const std::exception &) {
            std::fprintf(stderr,
                         "warning: ignoring non-numeric "
                         "ICH_SHARD_STALL_MS='%s'\n",
                         stall);
        }
    }
    return sopts;
}

} // namespace

int
harnessSetup(int argc, const char *const *argv,
             const ScenarioRegistry &registry, CliOptions &cli)
{
    std::string prog = argc > 0 ? argv[0] : "harness";
    try {
        // Every harness can be a fault-injection victim: plans (and
        // the torture harness's crash-point counting mode) arrive via
        // ICH_FAULT_PLAN / ICH_FAULT_COUNT_FILE. No-op when unset.
        fault::armFromEnv();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: ICH_FAULT_PLAN: %s\n", e.what());
        return 2;
    }
    try {
        cli = parseCli(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n%s", e.what(),
                     cliUsage(prog).c_str());
        return 2;
    }
    if (cli.shardWorker) {
        // Spawned by a ShardCoordinator: become a protocol worker and
        // never return to the harness body.
        if (cli.shardInFd < 0 || cli.shardOutFd < 0 ||
            cli.shardScratch.empty()) {
            std::fprintf(stderr,
                         "error: --shard-worker needs --shard-in, "
                         "--shard-out and --shard-scratch\n");
            return 2;
        }
        shard::WorkerConfig wcfg;
        wcfg.inFd = cli.shardInFd;
        wcfg.outFd = cli.shardOutFd;
        wcfg.scratchDir = cli.shardScratch;
        wcfg.killAfterUnits = cli.shardKillAfter;
        wcfg.faultSpec = cli.shardFault;
        return shard::runWorker(registry, wcfg);
    }
    if (cli.help) {
        std::printf("%s", cliUsage(prog).c_str());
        return 0;
    }
    if (cli.list) {
        for (const auto &spec : registry.scenarios())
            std::printf("%-24s %s\n", spec.name.c_str(),
                        spec.description.c_str());
        return 0;
    }
    for (const auto &name : cli.scenarios) {
        if (!registry.find(name)) {
            std::fprintf(stderr,
                         "error: unknown scenario '%s' (try --list)\n",
                         name.c_str());
            return 2;
        }
    }
    return -1;
}

namespace
{

/** Shared report tail: header line, resume note, text table, files. */
template <typename Sweep>
void
printAndWrite(const Sweep &sweep, const CliOptions &cli,
              const std::string &scenario,
              const std::string &description, std::size_t resumed,
              std::size_t num_points)
{
    std::printf("%s: %s\n", scenario.c_str(), description.c_str());
    if (resumed > 0)
        std::printf("(resumed: %zu of %zu points restored from the "
                    "result store)\n",
                    resumed, num_points);
    std::printf("%s", textReport(sweep).c_str());
    if (cli.json || cli.csv) {
        // Report-file failures are fatal for a CLI harness, but must
        // surface as a clean message, not an uncaught-exception abort.
        try {
            ReportOptions ropts;
            ropts.json = cli.json;
            ropts.csv = cli.csv;
            ReportPaths paths = writeReports(sweep, cli.outDir, ropts);
            if (!paths.json.empty())
                std::printf("wrote %s\n", paths.json.c_str());
            if (!paths.csv.empty())
                std::printf("wrote %s\n", paths.csv.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            std::exit(1);
        }
    }
    std::printf("\n");
}

/**
 * --render-from: rebuild the sweep's identity from the registry spec,
 * read the completed points out of the prior run's column store, and
 * render exactly what the live run rendered — no simulation. The
 * returned SweepResult carries the replayed aggregates, so harness
 * epilogues (figure commentary, ROC post-processing) work unchanged.
 */
SweepResult
renderFromStore(const ScenarioSpec &spec, const CliOptions &cli)
{
    SweepMeta meta;
    meta.scenario = spec.name;
    meta.description = spec.description;
    meta.baseSeed = cli.seed.value_or(spec.baseSeed);
    meta.trialsPerPoint = cli.trials.value_or(spec.trials);
    meta.points = expandPoints(spec);
    meta.gridFp = gridFingerprint(meta.points);

    SweepResult result;
    try {
        const std::string store_path =
            resultStorePath(cli.renderFrom, spec.name);
        ColumnStoreReader reader(store_path);
        if (!reader.matches(meta))
            throw std::runtime_error(
                store_path + ": store identity does not match scenario '" +
                spec.name + "' (grid/seed/trials changed since the run)");
        if (reader.completedPoints() != meta.numPoints())
            throw std::runtime_error(
                store_path + ": incomplete sweep (" +
                std::to_string(reader.completedPoints()) + " of " +
                std::to_string(meta.numPoints()) + " points)");

        StreamingAggregator agg;
        agg.beginSweep(meta);
        reader.forEachPoint(
            [&](std::size_t idx, const std::vector<TrialRecord> &recs) {
                agg.acceptPoint(idx, recs.data(), recs.size());
            });
        agg.endSweep();

        result.scenario = meta.scenario;
        result.description = meta.description;
        result.baseSeed = meta.baseSeed;
        result.trialsPerPoint = meta.trialsPerPoint;
        result.points = meta.points;
        result.aggregates = agg.aggregates();

        StoreSweepView view{meta, agg, reader};
        printAndWrite(view, cli, meta.scenario, meta.description, 0,
                      meta.numPoints());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }
    return result;
}

SweepResult
runAndReportStreaming(const ScenarioSpec &spec, const CliOptions &cli)
{
    MetaCaptureSink metacap;
    StreamingAggregator agg;
    std::unique_ptr<ColumnStoreWriter> spill;
    std::vector<ResultSink *> sinks{&metacap, &agg};
    const std::string store_path =
        resultStorePath(cli.outDir, spec.name);
    if (!cli.resume) {
        // With --resume the runner/coordinator already checkpoints
        // every point into this exact path; without it, the driver
        // spills in batch mode so the report view has a store to read.
        spill = std::make_unique<ColumnStoreWriter>(store_path);
        sinks.push_back(spill.get());
    }
    TeeSink tee(std::move(sinks));

    StreamStats stats;
    try {
        if (cli.shard > 0) {
            stats = shard::runShardedStreaming(spec, toShardOptions(cli),
                                               tee);
        } else {
            SweepRunner runner(toRunnerOptions(cli));
            stats = runner.runStreaming(spec, tee);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }

    SweepResult result;
    const SweepMeta &meta = metacap.meta();
    result.scenario = meta.scenario;
    result.description = meta.description;
    result.baseSeed = meta.baseSeed;
    result.trialsPerPoint = meta.trialsPerPoint;
    result.points = meta.points;
    result.aggregates = agg.aggregates();
    result.jobs = stats.jobs;
    result.wallSeconds = stats.wallSeconds;
    result.resumedPoints = stats.resumedPoints;

    try {
        ColumnStoreReader reader(store_path);
        StoreSweepView view{meta, agg, reader};
        printAndWrite(view, cli, meta.scenario, meta.description,
                      stats.resumedPoints, meta.numPoints());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }
    return result;
}

} // namespace

SweepResult
runAndReport(const ScenarioSpec &spec, const CliOptions &cli)
{
    if (!cli.renderFrom.empty())
        return renderFromStore(spec, cli);
    if (cli.stream)
        return runAndReportStreaming(spec, cli);

    SweepResult result;
    try {
        if (cli.shard > 0) {
            result = shard::runSharded(spec, toShardOptions(cli));
        } else {
            SweepRunner runner(toRunnerOptions(cli));
            result = runner.run(spec);
        }
    } catch (const std::exception &e) {
        // A failing trial is fatal for a CLI harness, but must surface
        // as a clean message, not an uncaught-exception abort.
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }

    printAndWrite(result, cli, result.scenario, result.description,
                  result.resumedPoints, result.points.size());
    return result;
}

} // namespace exp
} // namespace ich
