/**
 * @file
 * Reporters for sweep results: the table-style text the bench harnesses
 * have always printed, plus machine-readable JSON and CSV written to a
 * results directory.
 *
 * All three formats are derived only from deterministic sweep content
 * (points, seeds, aggregates) — never from execution metadata like the
 * worker count or wall time — so reports are byte-identical across
 * --jobs settings.
 *
 * Every reporter has two front ends over one shared renderer:
 *
 *  - SweepResult: the materialized path (everything in memory).
 *  - StoreSweepView: the streaming path — aggregates come from a
 *    StreamingAggregator, raw trials and whole-sweep rollups are
 *    re-read from the columnar result store (exp/colstore.hh) in
 *    ascending point order, which *is* global trial order. Output is
 *    byte-identical to the materialized path; memory stays bounded by
 *    one decoded chunk plus the rollup sample vectors.
 */

#ifndef ICH_EXP_REPORT_HH
#define ICH_EXP_REPORT_HH

#include <string>

#include "exp/aggregate.hh"
#include "exp/sink.hh"

namespace ich
{
namespace exp
{

class ColumnStoreReader; // exp/colstore.hh

/**
 * A sweep viewed through its streamed aggregates and its on-disk
 * column store, instead of a materialized SweepResult. Pure view: all
 * three referents must outlive it.
 */
struct StoreSweepView {
    const SweepMeta &meta;
    const StreamingAggregator &agg;
    /** Source of raw trials and rollups (must cover the whole grid). */
    const ColumnStoreReader &store;
};

/**
 * Column-aligned text table: one row per grid point; axis columns show
 * labels, metric columns show "mean" (single trial) or "mean ±stddev".
 */
std::string textReport(const SweepResult &result);
std::string textReport(const StoreSweepView &view);

/**
 * Full JSON document: scenario header, per-point parameter values and
 * metric summaries, whole-sweep rollups, and (optionally) the raw
 * per-trial records with their derived seeds.
 */
std::string jsonReport(const SweepResult &result,
                       bool include_trials = true);
std::string jsonReport(const StoreSweepView &view,
                       bool include_trials = true);

/**
 * Wide CSV: one row per grid point; axis label columns followed by
 * `<metric>_mean` / `<metric>_stddev` columns. (Full percentiles live
 * in the JSON report.)
 */
std::string csvReport(const SweepResult &result);
std::string csvReport(const StoreSweepView &view);

/** Paths produced by writeReports(); empty when a format was skipped. */
struct ReportPaths {
    std::string json;
    std::string csv;
};

/** Format selection for writeReports(). */
struct ReportOptions {
    /** Embed the raw per-trial records in the JSON report. */
    bool includeTrials = true;
    /** Write `<scenario>.json`. */
    bool json = true;
    /** Write `<scenario>.csv`. */
    bool csv = true;
};

/**
 * Write `<scenario>.json` / `<scenario>.csv` into @p out_dir (created,
 * with parents, if missing), for whichever formats @p opts selects.
 * Throws std::runtime_error on I/O failure.
 */
ReportPaths writeReports(const SweepResult &result,
                         const std::string &out_dir,
                         const ReportOptions &opts = {});
ReportPaths writeReports(const StoreSweepView &view,
                         const std::string &out_dir,
                         const ReportOptions &opts = {});

} // namespace exp
} // namespace ich

#endif // ICH_EXP_REPORT_HH
