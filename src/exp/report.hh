/**
 * @file
 * Reporters for sweep results: the table-style text the bench harnesses
 * have always printed, plus machine-readable JSON and CSV written to a
 * results directory.
 *
 * All three formats are derived only from deterministic sweep content
 * (points, seeds, aggregates) — never from execution metadata like the
 * worker count or wall time — so reports are byte-identical across
 * --jobs settings.
 */

#ifndef ICH_EXP_REPORT_HH
#define ICH_EXP_REPORT_HH

#include <string>

#include "exp/aggregate.hh"

namespace ich
{
namespace exp
{

/**
 * Column-aligned text table: one row per grid point; axis columns show
 * labels, metric columns show "mean" (single trial) or "mean ±stddev".
 */
std::string textReport(const SweepResult &result);

/**
 * Full JSON document: scenario header, per-point parameter values and
 * metric summaries, whole-sweep rollups, and (optionally) the raw
 * per-trial records with their derived seeds.
 */
std::string jsonReport(const SweepResult &result,
                       bool include_trials = true);

/**
 * Wide CSV: one row per grid point; axis label columns followed by
 * `<metric>_mean` / `<metric>_stddev` columns. (Full percentiles live
 * in the JSON report.)
 */
std::string csvReport(const SweepResult &result);

/** Paths produced by writeReports(); empty when a format was skipped. */
struct ReportPaths {
    std::string json;
    std::string csv;
};

/**
 * Write `<scenario>.json` / `<scenario>.csv` into @p out_dir (created,
 * with parents, if missing), for whichever formats are selected.
 * Throws std::runtime_error on I/O failure.
 */
ReportPaths writeReports(const SweepResult &result,
                         const std::string &out_dir,
                         bool include_trials = true,
                         bool write_json = true, bool write_csv = true);

} // namespace exp
} // namespace ich

#endif // ICH_EXP_REPORT_HH
