#include "exp/json.hh"

#include <cmath>
#include <cstdio>

namespace ich
{
namespace exp
{

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

void
JsonWriter::indent()
{
    os_ << "\n";
    for (std::size_t i = 0; i < hasItem_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // key() already positioned us
    }
    if (!hasItem_.empty()) {
        if (hasItem_.back())
            os_ << ",";
        indent();
        hasItem_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << "{";
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bool had = hasItem_.back();
    hasItem_.pop_back();
    if (had)
        indent();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << "[";
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bool had = hasItem_.back();
    hasItem_.pop_back();
    if (had)
        indent();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (hasItem_.back())
        os_ << ",";
    indent();
    hasItem_.back() = true;
    os_ << "\"" << escape(k) << "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os_ << "\"" << escape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    os_ << number(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    return os_.str() + "\n";
}

} // namespace exp
} // namespace ich
