#include "exp/resume.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "state/archive.hh"

namespace ich
{
namespace exp
{

namespace
{

constexpr char kManifestMagic[] = "ich-sweep-manifest";
constexpr int kManifestVersion = 1;

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

} // namespace

bool
ResumeManifest::matches(const ResumeManifest &other) const
{
    return scenario == other.scenario && baseSeed == other.baseSeed &&
           trialsPerPoint == other.trialsPerPoint &&
           numPoints == other.numPoints && gridFp == other.gridFp;
}

std::uint64_t
gridFingerprint(const std::vector<ParamPoint> &points)
{
    std::uint64_t h = fnv1a("grid-v1");
    for (const ParamPoint &p : points) {
        h = fnv1a(p.toString(), h);
        for (const auto &e : p.entries()) {
            h = fnv1a(e.value.label, h);
            char bits[32];
            std::snprintf(bits, sizeof bits, "%016" PRIx64,
                          doubleBits(e.value.value));
            h = fnv1a(bits, h);
        }
        h = fnv1a("|", h);
    }
    return h;
}

std::string
manifestPath(const std::string &dir, const std::string &scenario)
{
    return (std::filesystem::path(dir) / (scenario + ".manifest"))
        .string();
}

std::string
warmSnapshotPath(const std::string &dir, const std::string &scenario,
                 const std::string &key)
{
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, fnv1a(key));
    return (std::filesystem::path(dir) /
            (scenario + ".warm-" + hash + ".snap"))
        .string();
}

bool
loadManifest(const std::string &path, ResumeManifest &out)
{
    std::ifstream f(path);
    if (!f)
        return false;
    ResumeManifest m;
    std::string line;

    auto header_value = [&line](const char *key,
                                std::string &value) -> bool {
        std::size_t klen = std::strlen(key);
        if (line.compare(0, klen, key) != 0 || line.size() < klen + 2 ||
            line[klen] != ' ')
            return false;
        value = line.substr(klen + 1);
        return true;
    };

    if (!std::getline(f, line))
        return false;
    {
        std::istringstream is(line);
        std::string magic;
        int version = 0;
        if (!(is >> magic >> version) || magic != kManifestMagic ||
            version != kManifestVersion)
            return false;
    }
    std::string value;
    if (!std::getline(f, line) || !header_value("scenario", value))
        return false;
    m.scenario = value;
    if (!std::getline(f, line) || !header_value("base_seed", value))
        return false;
    m.baseSeed = std::strtoull(value.c_str(), nullptr, 10);
    if (!std::getline(f, line) ||
        !header_value("trials_per_point", value))
        return false;
    m.trialsPerPoint = std::atoi(value.c_str());
    if (!std::getline(f, line) || !header_value("num_points", value))
        return false;
    m.numPoints = std::strtoull(value.c_str(), nullptr, 10);
    if (!std::getline(f, line) || !header_value("grid_fp", value))
        return false;
    m.gridFp = std::strtoull(value.c_str(), nullptr, 16);
    if (m.trialsPerPoint < 1)
        return false;

    bool saw_end = false;
    std::size_t current_point = 0;
    bool in_point = false;
    std::vector<TrialRecord> trials;
    auto close_point = [&]() -> bool {
        if (!in_point)
            return true;
        if (trials.size() !=
            static_cast<std::size_t>(m.trialsPerPoint))
            return false; // partial point: a torn write, drop manifest
        m.points[current_point] = std::move(trials);
        trials.clear();
        in_point = false;
        return true;
    };

    while (std::getline(f, line)) {
        if (line.empty())
            continue;
        std::istringstream is(line);
        std::string tok;
        is >> tok;
        if (tok == "point") {
            if (!close_point())
                return false;
            if (!(is >> current_point) ||
                current_point >= m.numPoints ||
                m.points.count(current_point))
                return false;
            in_point = true;
        } else if (tok == "trial") {
            if (!in_point)
                return false;
            TrialRecord rec;
            rec.pointIndex = current_point;
            std::size_t n_metrics = 0;
            if (!(is >> rec.trial >> rec.seed >> n_metrics))
                return false;
            for (std::size_t i = 0; i < n_metrics; ++i) {
                std::string pair;
                if (!(is >> pair))
                    return false;
                std::size_t eq = pair.rfind('=');
                if (eq == std::string::npos ||
                    pair.size() - eq - 1 != 16)
                    return false;
                rec.metrics[pair.substr(0, eq)] = bitsDouble(
                    std::strtoull(pair.c_str() + eq + 1, nullptr, 16));
            }
            if (rec.trial !=
                static_cast<int>(trials.size()))
                return false;
            trials.push_back(std::move(rec));
        } else if (tok == "end") {
            if (!close_point())
                return false;
            saw_end = true;
        } else {
            return false;
        }
    }
    // A manifest without the trailing "end" marker had its final point
    // records appended but is still structurally sound thanks to the
    // atomic rename; only complete points were ever written, so accept.
    if (!close_point())
        return false;
    (void)saw_end;
    out = std::move(m);
    return true;
}

void
writeManifest(const std::string &path, const ResumeManifest &m)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        if (ec)
            throw std::runtime_error("writeManifest: cannot create '" +
                                     p.parent_path().string() +
                                     "': " + ec.message());
    }

    std::ostringstream os;
    os << kManifestMagic << ' ' << kManifestVersion << '\n';
    os << "scenario " << m.scenario << '\n';
    os << "base_seed " << m.baseSeed << '\n';
    os << "trials_per_point " << m.trialsPerPoint << '\n';
    os << "num_points " << m.numPoints << '\n';
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016" PRIx64, m.gridFp);
    os << "grid_fp " << hex << '\n';
    for (const auto &kv : m.points) {
        os << "point " << kv.first << '\n';
        for (const TrialRecord &rec : kv.second) {
            os << "trial " << rec.trial << ' ' << rec.seed << ' '
               << rec.metrics.size();
            for (const auto &metric : rec.metrics) {
                if (metric.first.find_first_of(" =\n") !=
                    std::string::npos)
                    throw std::runtime_error(
                        "writeManifest: metric name '" + metric.first +
                        "' contains separator characters");
                std::snprintf(hex, sizeof hex, "%016" PRIx64,
                              doubleBits(metric.second));
                os << ' ' << metric.first << '=' << hex;
            }
            os << '\n';
        }
    }
    os << "end\n";

    const std::string text = os.str();
    state::atomicWriteFile(
        path, state::Buffer(text.begin(), text.end()));
}

namespace
{

bool
trialsBitEqual(const std::vector<TrialRecord> &a,
               const std::vector<TrialRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].trial != b[i].trial || a[i].seed != b[i].seed ||
            a[i].metrics.size() != b[i].metrics.size())
            return false;
        auto ma = a[i].metrics.begin();
        for (auto mb = b[i].metrics.begin(); mb != b[i].metrics.end();
             ++ma, ++mb) {
            if (ma->first != mb->first ||
                doubleBits(ma->second) != doubleBits(mb->second))
                return false;
        }
    }
    return true;
}

} // namespace

std::vector<std::size_t>
mergeManifest(ResumeManifest &dst, const ResumeManifest &src)
{
    if (!dst.matches(src))
        throw std::runtime_error(
            "mergeManifest: manifests describe different sweeps "
            "(scenario/seed/trials/grid mismatch)");
    std::vector<std::size_t> added;
    for (const auto &kv : src.points) {
        if (kv.first >= dst.numPoints)
            throw std::runtime_error(
                "mergeManifest: point " + std::to_string(kv.first) +
                " beyond the grid (" + std::to_string(dst.numPoints) +
                " points)");
        if (kv.second.size() !=
            static_cast<std::size_t>(dst.trialsPerPoint))
            throw std::runtime_error(
                "mergeManifest: point " + std::to_string(kv.first) +
                " has " + std::to_string(kv.second.size()) +
                " trials, expected " +
                std::to_string(dst.trialsPerPoint));
        auto it = dst.points.find(kv.first);
        if (it != dst.points.end()) {
            if (!trialsBitEqual(it->second, kv.second))
                throw std::runtime_error(
                    "mergeManifest: duplicate records for point " +
                    std::to_string(kv.first) +
                    " disagree bit-for-bit (corruption or "
                    "nondeterministic trials)");
            continue; // identical duplicate: silent dedupe
        }
        dst.points[kv.first] = kv.second;
        added.push_back(kv.first);
    }
    return added;
}

} // namespace exp
} // namespace ich
