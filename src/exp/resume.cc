#include "exp/resume.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "exp/colstore.hh"
#include "state/archive.hh"

namespace ich
{
namespace exp
{

namespace
{

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

} // namespace

bool
ResumeManifest::matches(const ResumeManifest &other) const
{
    return scenario == other.scenario && baseSeed == other.baseSeed &&
           trialsPerPoint == other.trialsPerPoint &&
           numPoints == other.numPoints && gridFp == other.gridFp;
}

std::uint64_t
gridFingerprint(const std::vector<ParamPoint> &points)
{
    std::uint64_t h = fnv1a("grid-v1");
    for (const ParamPoint &p : points) {
        h = fnv1a(p.toString(), h);
        for (const auto &e : p.entries()) {
            h = fnv1a(e.value.label, h);
            char bits[32];
            std::snprintf(bits, sizeof bits, "%016" PRIx64,
                          doubleBits(e.value.value));
            h = fnv1a(bits, h);
        }
        h = fnv1a("|", h);
    }
    return h;
}

std::string
resultStorePath(const std::string &dir, const std::string &scenario)
{
    return (std::filesystem::path(dir) / (scenario + ".colstore"))
        .string();
}

std::string
warmSnapshotPath(const std::string &dir, const std::string &scenario,
                 const std::string &key)
{
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, fnv1a(key));
    return (std::filesystem::path(dir) /
            (scenario + ".warm-" + hash + ".snap"))
        .string();
}

bool
loadManifest(const std::string &path, ResumeManifest &out)
{
    try {
        ColumnStoreReader reader(path);
        if (reader.trialsPerPoint() < 1)
            return false;
        ResumeManifest m;
        m.scenario = reader.scenario();
        m.baseSeed = reader.baseSeed();
        m.trialsPerPoint = reader.trialsPerPoint();
        m.numPoints = reader.numPoints();
        m.gridFp = reader.gridFp();
        reader.forEachPoint(
            [&m](std::size_t idx,
                 const std::vector<TrialRecord> &records) {
                if (idx >= m.numPoints ||
                    records.size() !=
                        static_cast<std::size_t>(m.trialsPerPoint))
                    throw state::ArchiveError(
                        "colstore: point shape disagrees with the "
                        "header");
                m.points[idx] = records;
            });
        out = std::move(m);
        return true;
    } catch (const state::ArchiveError &) {
        // Missing, corrupt, or not a column store: treat as absent.
        return false;
    }
}

void
writeManifest(const std::string &path, const ResumeManifest &m)
{
    StoreHeader hdr;
    hdr.scenario = m.scenario;
    hdr.description = ""; // presentation only; matches() ignores it
    hdr.baseSeed = m.baseSeed;
    hdr.trialsPerPoint = m.trialsPerPoint;
    hdr.numPoints = m.numPoints;
    hdr.gridFp = m.gridFp;
    state::atomicWriteFile(path, encodeColumnStore(hdr, m.points));
}

namespace
{

bool
trialsBitEqual(const std::vector<TrialRecord> &a,
               const std::vector<TrialRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].trial != b[i].trial || a[i].seed != b[i].seed ||
            a[i].metrics.size() != b[i].metrics.size())
            return false;
        auto ma = a[i].metrics.begin();
        for (auto mb = b[i].metrics.begin(); mb != b[i].metrics.end();
             ++ma, ++mb) {
            if (ma->first != mb->first ||
                doubleBits(ma->second) != doubleBits(mb->second))
                return false;
        }
    }
    return true;
}

} // namespace

std::vector<std::size_t>
mergeManifest(ResumeManifest &dst, const ResumeManifest &src)
{
    if (!dst.matches(src))
        throw std::runtime_error(
            "mergeManifest: manifests describe different sweeps "
            "(scenario/seed/trials/grid mismatch)");
    std::vector<std::size_t> added;
    for (const auto &kv : src.points) {
        if (kv.first >= dst.numPoints)
            throw std::runtime_error(
                "mergeManifest: point " + std::to_string(kv.first) +
                " beyond the grid (" + std::to_string(dst.numPoints) +
                " points)");
        if (kv.second.size() !=
            static_cast<std::size_t>(dst.trialsPerPoint))
            throw std::runtime_error(
                "mergeManifest: point " + std::to_string(kv.first) +
                " has " + std::to_string(kv.second.size()) +
                " trials, expected " +
                std::to_string(dst.trialsPerPoint));
        auto it = dst.points.find(kv.first);
        if (it != dst.points.end()) {
            if (!trialsBitEqual(it->second, kv.second))
                throw std::runtime_error(
                    "mergeManifest: duplicate records for point " +
                    std::to_string(kv.first) +
                    " disagree bit-for-bit (corruption or "
                    "nondeterministic trials)");
            continue; // identical duplicate: silent dedupe
        }
        dst.points[kv.first] = kv.second;
        added.push_back(kv.first);
    }
    return added;
}

} // namespace exp
} // namespace ich
