/**
 * @file
 * Umbrella header for the experiment-orchestration subsystem.
 *
 * The pieces, bottom-up:
 *  - scenario.hh   declarative ScenarioSpec / parameter axes / registry
 *  - sink.hh       streaming ResultSink API (aggregator / tee /
 *                  materializer)
 *  - colstore.hh   append-only columnar result store (spill + resume +
 *                  shard scratch)
 *  - runner.hh     SweepRunner: worker-pool fan-out, deterministic seeds
 *  - aggregate.hh  per-point metric summaries + whole-sweep rollups
 *  - resume.hh     completed-points result store + warm-snapshot cache
 *  - report.hh     text / JSON / CSV reporters (materialized or
 *                  store-backed)
 *  - cli.hh        shared harness flags (--jobs, --seed, --json, --out,
 *                  --resume, --stream)
 *  - driver.hh     run-and-report glue for the bench executables
 */

#ifndef ICH_EXP_EXP_HH
#define ICH_EXP_EXP_HH

#include "exp/aggregate.hh"
#include "exp/cli.hh"
#include "exp/colstore.hh"
#include "exp/driver.hh"
#include "exp/json.hh"
#include "exp/report.hh"
#include "exp/resume.hh"
#include "exp/runner.hh"
#include "exp/scenario.hh"
#include "exp/sink.hh"

#endif // ICH_EXP_EXP_HH
