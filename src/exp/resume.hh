/**
 * @file
 * Resumable-sweep persistence: the completed-points manifest and the
 * on-disk warm-snapshot cache the SweepRunner writes into the result
 * directory when resume mode is on.
 *
 * The manifest is a line-oriented text file recording, for every fully
 * completed grid point, each trial's seed and metrics. Metric values
 * are stored as raw IEEE-754 bit patterns (hex), so a resumed sweep
 * reconstructs them bit-exactly and its aggregates/reports stay
 * byte-identical to an uninterrupted run. A header fingerprinting the
 * grid (scenario, seed, trials, expanded points) guards against
 * resuming into a different sweep.
 *
 * Every write goes through state::atomicWriteFile (write-temp +
 * rename), so a sweep killed mid-flush never leaves a truncated
 * manifest behind: the previous consistent manifest survives and the
 * restart simply redoes the last point.
 */

#ifndef ICH_EXP_RESUME_HH
#define ICH_EXP_RESUME_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/aggregate.hh"
#include "exp/scenario.hh"

namespace ich
{
namespace exp
{

/** Everything a restart needs to trust and reuse prior work. */
struct ResumeManifest {
    std::string scenario;
    std::uint64_t baseSeed = 0;
    int trialsPerPoint = 0;
    std::uint64_t numPoints = 0;
    std::uint64_t gridFp = 0;
    /** Completed points: point index -> its trials in trial order. */
    std::map<std::size_t, std::vector<TrialRecord>> points;

    /** True when @p other describes the same sweep. */
    bool matches(const ResumeManifest &other) const;
};

/** FNV-1a fingerprint of the expanded grid (axes, labels, values). */
std::uint64_t gridFingerprint(const std::vector<ParamPoint> &points);

/** `<dir>/<scenario>.manifest` */
std::string manifestPath(const std::string &dir,
                         const std::string &scenario);

/** `<dir>/<scenario>.warm-<fnv64(key)>.snap` */
std::string warmSnapshotPath(const std::string &dir,
                             const std::string &scenario,
                             const std::string &key);

/**
 * Load a manifest. Returns false when the file is missing or malformed
 * (a malformed manifest is treated as absent: the sweep restarts from
 * scratch rather than failing — resume is an optimization, never a
 * correctness dependency).
 */
bool loadManifest(const std::string &path, ResumeManifest &out);

/** Atomically persist @p m (creates the directory when needed). */
void writeManifest(const std::string &path, const ResumeManifest &m);

/**
 * Merge @p src's completed points into @p dst. Both manifests must
 * describe the same sweep (matches()), or this throws. A point present
 * in both must carry bit-identical trial records: identical duplicates
 * dedupe silently (re-running a point is legitimate after a worker
 * crash), while records that differ in any metric bit, seed, or trial
 * order throw std::runtime_error — diverging duplicates mean
 * corruption or nondeterminism and must never be papered over.
 *
 * Returns the indices of points newly added to @p dst, in ascending
 * order.
 */
std::vector<std::size_t> mergeManifest(ResumeManifest &dst,
                                       const ResumeManifest &src);

} // namespace exp
} // namespace ich

#endif // ICH_EXP_RESUME_HH
