/**
 * @file
 * Resumable-sweep persistence: the completed-points result store and
 * the on-disk warm-snapshot cache the SweepRunner writes into the
 * result directory when resume mode is on.
 *
 * Completed points live in the append-only columnar store
 * (exp/colstore.hh) at resultStorePath() — the same file format the
 * streaming result path spills into, so a finished sweep's store IS
 * its resume checkpoint. Metric values are raw IEEE-754 bit patterns,
 * so a resumed sweep reconstructs them bit-exactly and its
 * aggregates/reports stay byte-identical to an uninterrupted run. The
 * store header fingerprints the grid (scenario, seed, trials, expanded
 * points) and guards against resuming into a different sweep.
 *
 * Checkpointing appends one fsync'd CRC-framed chunk per completed
 * point — O(1) per point, where the old text manifest rewrote the
 * whole file each time (O(points²) over a sweep). A kill mid-append
 * leaves a torn tail that readers drop; every completed point before
 * it survives.
 *
 * The ResumeManifest struct remains the in-memory exchange format for
 * shard-merge and scavenging; loadManifest()/writeManifest() now read
 * and atomically write column stores underneath it.
 */

#ifndef ICH_EXP_RESUME_HH
#define ICH_EXP_RESUME_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/aggregate.hh"
#include "exp/scenario.hh"

namespace ich
{
namespace exp
{

/** Everything a restart needs to trust and reuse prior work. */
struct ResumeManifest {
    std::string scenario;
    std::uint64_t baseSeed = 0;
    int trialsPerPoint = 0;
    std::uint64_t numPoints = 0;
    std::uint64_t gridFp = 0;
    /** Completed points: point index -> its trials in trial order. */
    std::map<std::size_t, std::vector<TrialRecord>> points;

    /** True when @p other describes the same sweep. */
    bool matches(const ResumeManifest &other) const;
};

/** FNV-1a fingerprint of the expanded grid (axes, labels, values). */
std::uint64_t gridFingerprint(const std::vector<ParamPoint> &points);

/** `<dir>/<scenario>.colstore` — the sweep's columnar result store. */
std::string resultStorePath(const std::string &dir,
                            const std::string &scenario);

/** `<dir>/<scenario>.warm-<fnv64(key)>.snap` */
std::string warmSnapshotPath(const std::string &dir,
                             const std::string &scenario,
                             const std::string &key);

/**
 * Load a column store into a ResumeManifest. Returns false when the
 * file is missing or unusable (a corrupt store is treated as absent:
 * the sweep restarts from scratch rather than failing — resume is an
 * optimization, never a correctness dependency). A torn tail is fine:
 * every intact point before it loads.
 */
bool loadManifest(const std::string &path, ResumeManifest &out);

/**
 * Atomically persist @p m as a whole column store (creates the
 * directory when needed). This is the rewrite path for merges; the
 * incremental checkpoint path is ColumnStoreWriter in durable mode.
 */
void writeManifest(const std::string &path, const ResumeManifest &m);

/**
 * Merge @p src's completed points into @p dst. Both manifests must
 * describe the same sweep (matches()), or this throws. A point present
 * in both must carry bit-identical trial records: identical duplicates
 * dedupe silently (re-running a point is legitimate after a worker
 * crash), while records that differ in any metric bit, seed, or trial
 * order throw std::runtime_error — diverging duplicates mean
 * corruption or nondeterminism and must never be papered over.
 *
 * Returns the indices of points newly added to @p dst, in ascending
 * order.
 */
std::vector<std::size_t> mergeManifest(ResumeManifest &dst,
                                       const ResumeManifest &src);

} // namespace exp
} // namespace ich

#endif // ICH_EXP_RESUME_HH
