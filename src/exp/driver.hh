/**
 * @file
 * Harness driver glue: the few lines every sweep executable shares —
 * standard-flag handling (--help/--list/unknown-scenario checks), and
 * run-one-scenario-and-report.
 *
 * A typical harness:
 *
 *   auto reg = buildScenarios();               // fill a ScenarioRegistry
 *   exp::CliOptions cli;
 *   int rc = exp::harnessSetup(argc, argv, reg, cli);
 *   if (rc >= 0) return rc;
 *   for (const auto &spec : reg.scenarios())
 *       if (exp::wantScenario(cli, spec.name)) {
 *           exp::SweepResult r = exp::runAndReport(spec, cli);
 *           // ...harness-specific commentary using r...
 *       }
 */

#ifndef ICH_EXP_DRIVER_HH
#define ICH_EXP_DRIVER_HH

#include <string>

#include "exp/cli.hh"
#include "exp/report.hh"
#include "exp/scenario.hh"

namespace ich
{
namespace exp
{

/**
 * Parse the CLI into @p cli and handle the standard early-exit flags.
 * Returns -1 when the harness should proceed; otherwise the process
 * exit code (0 for --help/--list, 2 for bad flags or unknown scenario
 * names, with the message already printed).
 *
 * `--shard-worker` is also dispatched here: the process becomes a
 * shard-protocol worker over the inherited pipe fds and the returned
 * value is its exit code — so every harness binary is its own worker
 * binary with no extra code.
 */
int harnessSetup(int argc, const char *const *argv,
                 const ScenarioRegistry &registry, CliOptions &cli);

/**
 * Run @p spec with the CLI's runner options, print the scenario header
 * and text report to stdout, and write JSON/CSV reports when requested.
 *
 * With --stream, the sweep runs through the ResultSink path instead:
 * trial records spill to `<out>/<scenario>.colstore` and aggregate as
 * points complete, reports render from the store view, and the
 * returned SweepResult carries header/points/aggregates but an *empty*
 * trials vector — memory stays bounded no matter the grid size. All
 * printed and written report bytes are identical to the default path.
 */
SweepResult runAndReport(const ScenarioSpec &spec, const CliOptions &cli);

} // namespace exp
} // namespace ich

#endif // ICH_EXP_DRIVER_HH
