/**
 * @file
 * The append-only columnar result store: one durable on-disk format
 * for sweep results, --resume checkpoints, and shard worker scratch.
 *
 * A store is a CRC-framed chunk file (state/chunkio.hh) with three
 * chunk kinds:
 *
 *   header  format version + sweep identity (scenario, description,
 *           base seed, trials/point, point count, grid fingerprint)
 *   data    fixed-width columns for a batch of whole points:
 *             dictionary delta: new metric names -> dense u32 ids
 *             u64 pointIndex[] | u32 trial[] | u64 seed[]
 *             per metric column: nameId, presence bitmap,
 *             raw IEEE-754 f64 bits (bit-exact round trip)
 *   footer  totals (records, points, dictionary size) — written only
 *           by endSweep(), so its presence marks a finished sweep
 *
 * Durability model: data chunks always contain *whole* points, and in
 * durable mode every acceptPoint() is flushed + fsync'd. A kill leaves
 * at most a torn final frame, which readers drop — so a restart sees
 * exactly the completed points, O(1) append cost per point (the old
 * text manifest rewrote the whole file per point: O(points²)).
 *
 * Duplicate points (a worker crash can legitimately complete a point
 * twice) must be bit-identical; conflicting duplicates are corruption
 * and raise ArchiveError at read time.
 */

#ifndef ICH_EXP_COLSTORE_HH
#define ICH_EXP_COLSTORE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exp/sink.hh"
#include "state/chunkio.hh"

namespace ich
{
namespace exp
{

/** Chunk kinds inside a column store file. */
constexpr std::uint32_t kColChunkHeader = 1;
constexpr std::uint32_t kColChunkData = 2;
constexpr std::uint32_t kColChunkFooter = 3;

/** On-disk format version (header chunk). */
constexpr std::uint32_t kColFormatVersion = 1;

/**
 * ResultSink that spills points into a column store file.
 *
 * beginSweep() adopts an existing file whose header matches the sweep
 * (appends continue after its valid frames — this is how resume
 * checkpoints and respawned-worker scratch survive), and recreates the
 * file otherwise. endSweep() writes the footer.
 */
class ColumnStoreWriter final : public ResultSink
{
  public:
    struct Options {
        /** Buffered records before a chunk is flushed (batch mode). */
        std::size_t chunkRecords = 4096;
        /**
         * Durable mode: flush + fsync after every acceptPoint(), so a
         * kill -9 never loses a completed point. Off: chunks flush at
         * chunkRecords and on endSweep() (spill-throughput mode).
         */
        bool durable = false;
    };

    explicit ColumnStoreWriter(std::string path);
    ColumnStoreWriter(std::string path, Options opts);
    ~ColumnStoreWriter() override;

    void beginSweep(const SweepMeta &meta) override;
    void acceptPoint(std::size_t point_idx, const TrialRecord *records,
                     std::size_t count) override;
    void endSweep() override;

    /**
     * Flush buffered records and fsync the file now. The batch-durable
     * middle ground: a non-durable writer that sync()s every few
     * points pays one fsync per batch instead of per point, and a kill
     * still loses at most the points since the last sync (torn final
     * frames are dropped by readers as usual).
     */
    void sync();

    /** Points already present when beginSweep() adopted the file. */
    std::size_t adoptedPoints() const { return adoptedPoints_; }

    const std::string &path() const { return path_; }

  private:
    struct PendingRecord {
        std::uint64_t pointIndex;
        std::uint32_t trial;
        std::uint64_t seed;
        /** (dictionary id, value) pairs in metric-name order. */
        std::vector<std::pair<std::uint32_t, double>> metrics;
    };

    std::string path_;
    Options opts_;
    state::ChunkFileWriter file_;
    std::map<std::string, std::uint32_t> nameIds_;
    std::vector<std::string> namesInOrder_;
    std::size_t flushedNames_ = 0; ///< dictionary entries already on disk
    std::vector<PendingRecord> pending_;
    std::uint64_t fileRecords_ = 0; ///< records on disk + pending
    std::uint64_t filePoints_ = 0;  ///< whole points on disk + pending
    std::size_t adoptedPoints_ = 0;
    bool began_ = false;
    bool ended_ = false;
    bool sawFooter_ = false; ///< adopted file already ends in a footer

    void flushChunk();
};

/**
 * Random-access reader over a column store.
 *
 * Construction scans every chunk once (O(file) I/O, O(chunk) transient
 * memory) to validate CRCs, build the metric-name dictionary, and
 * index completed points — the per-point directory is the only
 * retained state, so reading a million-point store costs O(points)
 * index entries, never O(records) materialized trials.
 *
 * Throws state::ArchiveError on: unreadable file, missing/invalid
 * header, CRC mismatch, structurally invalid chunks, or conflicting
 * duplicate points. A torn tail (incomplete final frame) is NOT an
 * error: the tail is dropped and tornTail() reports it.
 */
class ColumnStoreReader
{
  public:
    explicit ColumnStoreReader(const std::string &path);
    ~ColumnStoreReader();
    ColumnStoreReader(const ColumnStoreReader &) = delete;
    ColumnStoreReader &operator=(const ColumnStoreReader &) = delete;

    const std::string &scenario() const { return scenario_; }
    const std::string &description() const { return description_; }
    std::uint64_t baseSeed() const { return baseSeed_; }
    int trialsPerPoint() const { return trialsPerPoint_; }
    std::uint64_t numPoints() const { return numPoints_; }
    std::uint64_t gridFp() const { return gridFp_; }

    /** True when the header identifies the same sweep as @p meta. */
    bool matches(const SweepMeta &meta) const;

    bool tornTail() const { return torn_; }
    /** True when the file ends with a footer whose totals check out. */
    bool cleanFooter() const { return cleanFooter_; }
    /** Bytes of intact frames (openAppend() truncation point). */
    std::uint64_t validBytes() const { return validBytes_; }

    std::size_t completedPoints() const { return directory_.size(); }
    std::uint64_t totalRecords() const { return totalRecords_; }

    /** Dictionary: metric names in id order. */
    const std::vector<std::string> &names() const { return names_; }

    /**
     * Visit every completed point in ascending point-index order (==
     * global-trial-index order, since records are in trial order) —
     * the iteration order that keeps store-backed aggregation and
     * rollups bit-identical to the materialized path. Chunks are
     * decoded on demand with a one-chunk cache: O(chunk) memory.
     */
    void forEachPoint(
        const std::function<void(std::size_t,
                                 const std::vector<TrialRecord> &)> &fn)
        const;

    /** Records of one completed point (trial order). */
    std::vector<TrialRecord> readPoint(std::size_t point_idx) const;

    bool hasPoint(std::size_t point_idx) const
    {
        return directory_.count(point_idx) != 0;
    }

  private:
    struct PointLoc {
        std::uint64_t chunkOffset; ///< frame offset of the data chunk
        std::uint32_t rowStart;    ///< first row of the point
        std::uint32_t rowCount;
    };
    struct DecodedChunk;

    std::string path_;
    std::string scenario_;
    std::string description_;
    std::uint64_t baseSeed_ = 0;
    int trialsPerPoint_ = 0;
    std::uint64_t numPoints_ = 0;
    std::uint64_t gridFp_ = 0;
    std::vector<std::string> names_;
    std::map<std::size_t, PointLoc> directory_;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t validBytes_ = 0;
    bool torn_ = false;
    bool cleanFooter_ = false;

    /** One-chunk decode cache (mutable: logically const reads). */
    mutable std::unique_ptr<DecodedChunk> cache_;

    const DecodedChunk &chunkAt(std::uint64_t offset) const;
    std::vector<TrialRecord> pointAt(const PointLoc &loc) const;
};

/**
 * Sweep identity without the expanded grid — what a store header
 * carries. SweepMeta converts down via storeHeader().
 */
struct StoreHeader {
    std::string scenario;
    std::string description;
    std::uint64_t baseSeed = 0;
    int trialsPerPoint = 1;
    std::uint64_t numPoints = 0;
    std::uint64_t gridFp = 0;
};

StoreHeader storeHeader(const SweepMeta &meta);

/**
 * Encode a whole store in one buffer (header + one data chunk + footer)
 * — the in-memory sibling of ColumnStoreWriter for atomic whole-file
 * rewrites (exp::writeManifest). @p points maps point index -> trial
 * records in trial order.
 */
state::Buffer encodeColumnStore(
    const StoreHeader &header,
    const std::map<std::size_t, std::vector<TrialRecord>> &points);

} // namespace exp
} // namespace ich

#endif // ICH_EXP_COLSTORE_HH
